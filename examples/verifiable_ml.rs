//! Verifiable machine learning — the paper's §1 motivating application:
//! "the owner of the machine-learning model can declare that the model
//! reached a certain accuracy … and use the ZKP primitive to guarantee
//! the validity of the declaration without disclosing any secret
//! information (e.g., parameters) about the model."
//!
//! Here a model owner publishes a MiMC commitment to a private linear
//! model and then proves, for a *public* input vector, that the committed
//! model's score clears a public threshold — without revealing a single
//! weight.
//!
//! ```text
//! cargo run --release --example verifiable_ml
//! ```

use gzkp_curves::bn254::{Bn254, Fr};
use gzkp_ff::Field;
use gzkp_gpu_sim::v100;
use gzkp_groth16::gadgets::{alloc_ranged, mimc_constants, mimc_gadget, mimc_hash};
use gzkp_groth16::r1cs::{ConstraintSystem, LinearCombination, Variable};
use gzkp_groth16::{prove, setup, verify, ProverEngines};
use gzkp_msm::GzkpMsm;
use gzkp_ntt::GzkpNtt;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FEATURES: usize = 8;

/// Commits to the weight vector with a MiMC chain: h ← MiMC(h + wᵢ; 0).
fn commit_weights(weights: &[u64], constants: &[Fr]) -> Fr {
    weights.iter().fold(Fr::zero(), |h, &w| {
        mimc_hash(h + Fr::from_u64(w), Fr::zero(), constants)
    })
}

fn build_circuit(
    weights: &[u64],
    features: &[u64],
    threshold: u64,
    commitment: Fr,
) -> ConstraintSystem<Fr> {
    let constants = mimc_constants::<Fr>();
    let mut cs = ConstraintSystem::<Fr>::new();

    // Public statement: the model commitment and the decision threshold.
    let commit_var = cs.alloc_input(commitment);
    let threshold_var = cs.alloc_input(Fr::from_u64(threshold));

    // Private witness: the weights (range-checked to 16 bits).
    let weight_vars: Vec<(Variable, Fr)> = weights
        .iter()
        .map(|&w| {
            let (v, _bits) = alloc_ranged(&mut cs, w, 16);
            (v, Fr::from_u64(w))
        })
        .collect();

    // Recompute the commitment in-circuit and pin it to the public input.
    let zero_key = cs.alloc(Fr::zero());
    cs.enforce(
        LinearCombination::from_var(zero_key),
        LinearCombination::from_const(Fr::one()),
        LinearCombination::zero(),
    );
    let mut h = (zero_key, Fr::zero());
    for (wv, wval) in &weight_vars {
        let in_val = h.1 + *wval;
        let in_var = cs.alloc(in_val);
        cs.enforce(
            LinearCombination::from_var(h.0).add_term(*wv, Fr::one()),
            LinearCombination::from_const(Fr::one()),
            LinearCombination::from_var(in_var),
        );
        h = mimc_gadget(&mut cs, in_var, in_val, zero_key, Fr::zero(), &constants);
    }
    cs.enforce(
        LinearCombination::from_var(h.0),
        LinearCombination::from_const(Fr::one()),
        LinearCombination::from_var(commit_var),
    );

    // Score = ⟨w, x⟩ with public features folded in as constants (linear).
    let mut score_lc = LinearCombination::zero();
    let mut score_val = Fr::zero();
    for ((wv, wval), &x) in weight_vars.iter().zip(features) {
        score_lc = score_lc.add_term(*wv, Fr::from_u64(x));
        score_val += *wval * Fr::from_u64(x);
    }
    let score_var = cs.alloc(score_val);
    cs.enforce(
        score_lc,
        LinearCombination::from_const(Fr::one()),
        LinearCombination::from_var(score_var),
    );

    // margin = score − threshold must be a small non-negative integer:
    // the 40-bit range check is the inequality proof.
    let margin_u64 = {
        let dot: u64 = weights.iter().zip(features).map(|(w, x)| w * x).sum();
        dot.checked_sub(threshold)
            .expect("model must clear the threshold")
    };
    let (margin_var, _) = alloc_ranged(&mut cs, margin_u64, 40);
    cs.enforce(
        LinearCombination::from_var(score_var).add_term(threshold_var, -Fr::one()),
        LinearCombination::from_const(Fr::one()),
        LinearCombination::from_var(margin_var),
    );
    cs
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2023);
    let constants = mimc_constants::<Fr>();

    // The owner's secret model and its public commitment.
    let weights: Vec<u64> = (0..FEATURES).map(|_| rng.gen_range(1..1000)).collect();
    let commitment = commit_weights(&weights, &constants);
    println!("model committed: {commitment}");

    // A public inference request.
    let features: Vec<u64> = (0..FEATURES).map(|_| rng.gen_range(1..1000)).collect();
    let dot: u64 = weights.iter().zip(&features).map(|(w, x)| w * x).sum();
    let threshold = dot - rng.gen_range(1..1000); // statement holds
    println!("public features {features:?}, threshold {threshold}, true score {dot} (stays private-ish: only 'score ≥ threshold' is proven)");

    let cs = build_circuit(&weights, &features, threshold, commitment);
    cs.is_satisfied().expect("circuit satisfied");
    println!("circuit: {} constraints", cs.num_constraints());

    let (pk, vk) = setup::<Bn254, _>(&cs, &mut rng).expect("setup");
    let ntt = GzkpNtt::auto::<Fr>(v100());
    let msm = GzkpMsm::new(v100());
    let msm2 = GzkpMsm::new(v100());
    let engines = ProverEngines::<Bn254> {
        ntt: &ntt,
        msm_g1: &msm,
        msm_g2: &msm2,
    };
    let (proof, report) = prove(&cs, &pk, &engines, &mut rng).expect("prove");
    println!(
        "proved: POLY {:.2} ms + MSM {:.2} ms (simulated V100)",
        report.poly_ms(),
        report.msm_ms()
    );

    let statement = [commitment, Fr::from_u64(threshold)];
    assert!(verify::<Bn254>(&vk, &proof, &statement));
    println!("verified: the committed model scores ≥ {threshold} on this input");

    // A different commitment (different model) must not verify.
    assert!(!verify::<Bn254>(
        &vk,
        &proof,
        &[commitment + Fr::one(), Fr::from_u64(threshold)]
    ));
    println!("forged model commitment correctly rejected");
}
