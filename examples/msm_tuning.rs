//! Window-size and checkpoint-interval tuning (paper §4.1): GZKP performs
//! profiling-based window configuration because the MSM size is known per
//! application. This example sweeps `k` and the checkpoint interval `M`
//! on the simulated V100 and shows the memory/time tradeoff of
//! Algorithm 1.
//!
//! ```text
//! cargo run --release --example msm_tuning
//! ```

use gzkp_curves::bls12_381::G1Config;
use gzkp_gpu_sim::v100;
use gzkp_msm::{profile_window_size, GzkpMsm, MsmEngine};

fn main() {
    let n = 1 << 20;
    println!("MSM scale: 2^20, BLS12-381 G1, simulated V100\n");

    println!("{:<8} {:>12} {:>14}", "window", "time (ms)", "memory (GB)");
    for k in (8..=18).step_by(2) {
        let e = GzkpMsm {
            window: Some(k),
            ..GzkpMsm::new(v100())
        };
        let t = MsmEngine::<G1Config>::plan_dense(&e, n).total_ms();
        let m = MsmEngine::<G1Config>::memory_bytes(&e, n) as f64 / (1u64 << 30) as f64;
        println!("{:<8} {:>12.3} {:>14.2}", format!("k={k}"), t, m);
    }
    let best = profile_window_size::<G1Config>(&v100(), n);
    println!("\nprofiled best window: k = {best}");

    println!("\ncheckpoint interval M (k = {best}), the Algorithm 1 knob:");
    println!("{:<8} {:>12} {:>14}", "M", "time (ms)", "memory (GB)");
    for m in [1u32, 2, 4, 8, 16] {
        let e = GzkpMsm {
            window: Some(best),
            checkpoint_interval: Some(m),
            ..GzkpMsm::new(v100())
        };
        let t = MsmEngine::<G1Config>::plan_dense(&e, n).total_ms();
        let mem = MsmEngine::<G1Config>::memory_bytes(&e, n) as f64 / (1u64 << 30) as f64;
        println!("{:<8} {:>12.3} {:>14.2}", m, t, mem);
    }
    println!("\nlarger M: less preprocessing memory, more on-the-fly doublings.");
}
