//! Quickstart: prove and verify a tiny statement end-to-end on BN254 with
//! the GZKP engines, and print the simulated stage breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The statement: "I know factors p·q = N" — the hello-world of zkSNARKs.

use gzkp_curves::bn254::{Bn254, Fr};
use gzkp_ff::Field;
use gzkp_gpu_sim::v100;
use gzkp_groth16::r1cs::{ConstraintSystem, LinearCombination};
use gzkp_groth16::{prove_with_telemetry, setup, verify, ProverEngines};
use gzkp_msm::GzkpMsm;
use gzkp_ntt::GzkpNtt;
use gzkp_telemetry::TraceRecorder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. Build the circuit: public N, private (p, q), constraint p·q = N.
    let mut cs = ConstraintSystem::<Fr>::new();
    let n_pub = cs.alloc_input(Fr::from_u64(3 * 73));
    let p = cs.alloc(Fr::from_u64(3));
    let q = cs.alloc(Fr::from_u64(73));
    cs.enforce(
        LinearCombination::from_var(p),
        LinearCombination::from_var(q),
        LinearCombination::from_var(n_pub),
    );
    println!(
        "circuit: {} constraints, {} public inputs, {} witnesses",
        cs.num_constraints(),
        cs.num_inputs,
        cs.num_aux
    );

    // 2. Trusted setup.
    let (pk, vk) = setup::<Bn254, _>(&cs, &mut rng).expect("setup");
    println!(
        "setup done: {} a-query points, domain {}",
        pk.a_query.len(),
        pk.domain_size
    );

    // 3. Prove with the GZKP engines on the simulated V100, recording a
    //    structured trace of the run as we go.
    let ntt = GzkpNtt::auto::<Fr>(v100());
    let msm = GzkpMsm::new(v100());
    let msm_g2 = GzkpMsm::new(v100());
    let engines = ProverEngines::<Bn254> {
        ntt: &ntt,
        msm_g1: &msm,
        msm_g2: &msm_g2,
    };
    let recorder = TraceRecorder::new(v100().name);
    let (proof, report) =
        prove_with_telemetry(&cs, &pk, &engines, &mut rng, &recorder).expect("prove");
    println!(
        "proof generated: POLY {:.3} ms + MSM {:.3} ms (simulated V100)",
        report.poly_ms(),
        report.msm_ms()
    );

    // Persist the trace for `zkprof render` / `zkprof diff`. Keep it
    // under target/ so generated artifacts stay out of the source tree.
    let trace = recorder.finish();
    std::fs::create_dir_all("target").expect("create target dir");
    trace
        .write_to("target/gzkp-trace.json")
        .expect("write trace");
    println!(
        "trace written to target/gzkp-trace.json (schema v{})",
        gzkp_telemetry::SCHEMA_VERSION
    );

    // 4. Verify (real pairings, real milliseconds).
    let t0 = std::time::Instant::now();
    let ok = verify::<Bn254>(&vk, &proof, &[Fr::from_u64(219)]);
    println!("verify({}) in {:?}", ok, t0.elapsed());
    assert!(ok);

    // A wrong public input must fail.
    assert!(!verify::<Bn254>(&vk, &proof, &[Fr::from_u64(220)]));
    println!("wrong statement correctly rejected");
}
