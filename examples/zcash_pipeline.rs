//! The Zcash proving pipeline (paper Table 3): runs the Sapling_Output
//! workload shape through all three systems — Best-CPU (bellman-like),
//! Best-GPU (bellperson-like) and GZKP — on the simulated V100, printing
//! the POLY/MSM split and speedups, plus the Figure 6 bucket skew of the
//! sparse witness.
//!
//! ```text
//! cargo run --release --example zcash_pipeline
//! ```

use gzkp_bench_shim::*;

// The example re-implements the small shared helpers inline so it depends
// only on the library crates.
mod gzkp_bench_shim {
    pub use gzkp_curves::bls12_381::{G1Config, G2Config};
    pub use gzkp_ff::fields::Fr381;
    pub use gzkp_gpu_sim::v100;
    pub use gzkp_msm::{bucket_histogram, CpuMsm, GzkpMsm, MsmEngine, ScalarVec, SubMsmPippenger};
    pub use gzkp_ntt::gpu::GpuNttEngine;
    pub use gzkp_ntt::{BaselineGpuNtt, GzkpNtt};
    pub use gzkp_workloads::zcash::zcash_workloads;
}

fn msm_stage_ms(
    g1: &dyn MsmEngine<G1Config>,
    g2: &dyn MsmEngine<G2Config>,
    sparse: &ScalarVec,
    dense: &ScalarVec,
) -> f64 {
    g1.plan(sparse).total_ms() * 3.0 + g1.plan(dense).total_ms() + g2.plan(sparse).total_ms()
}

fn main() {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    let w = &zcash_workloads()[0]; // Sapling_Output
    println!("workload: {} (N = {})", w.name, w.vector_size);

    let sparse = w.sparse_scalar_vec::<Fr381, _>(&mut rng);
    let dense = w.dense_scalar_vec::<Fr381, _>(&mut rng);
    println!("witness sparsity (0/1 fraction): {:.2}", sparse.sparsity());

    // Figure 6 in miniature: the bucket skew the load balancer handles.
    let hist = bucket_histogram(&sparse, 8);
    let busy: Vec<u64> = hist[1..].iter().copied().filter(|&c| c > 0).collect();
    let max = *busy.iter().max().unwrap();
    let mean = busy.iter().sum::<u64>() as f64 / busy.len() as f64;
    println!(
        "bucket skew: max {max} vs mean {mean:.0} ({:.2}x)",
        max as f64 / mean
    );

    let log_n = w.domain_size().trailing_zeros();
    let dev = v100();

    // POLY: 7 NTTs per proof.
    let bg_ntt = BaselineGpuNtt::new(dev.clone());
    let gz_ntt = GzkpNtt::auto::<Fr381>(dev.clone());
    let poly_bg = 7.0 * GpuNttEngine::<Fr381>::cost(&bg_ntt, log_n).total_ms();
    let poly_gz = 7.0 * GpuNttEngine::<Fr381>::cost(&gz_ntt, log_n).total_ms();

    // MSM: 5 MSMs per proof.
    let cpu = CpuMsm::default();
    let bg = SubMsmPippenger::new(dev.clone());
    let gz = GzkpMsm::new(dev);
    let msm_cpu = msm_stage_ms(&cpu, &cpu, &sparse, &dense);
    let msm_bg = msm_stage_ms(&bg, &bg, &sparse, &dense);
    let msm_gz = msm_stage_ms(&gz, &gz, &sparse, &dense);

    println!(
        "\n{:<12} {:>12} {:>12} {:>12}",
        "stage", "Best-CPU", "bellperson", "GZKP"
    );
    println!(
        "{:<12} {:>12.2} {:>12.2} {:>12.2}",
        "POLY (ms)",
        f64::NAN,
        poly_bg,
        poly_gz
    );
    println!(
        "{:<12} {:>12.2} {:>12.2} {:>12.2}",
        "MSM (ms)", msm_cpu, msm_bg, msm_gz
    );
    let total_bg = poly_bg + msm_bg;
    let total_gz = poly_gz + msm_gz;
    println!(
        "\nGZKP end-to-end speedup vs bellperson: {:.1}x  ({:.2} ms -> {:.2} ms, simulated V100)",
        total_bg / total_gz,
        total_bg,
        total_gz
    );
}
