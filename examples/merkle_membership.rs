//! Merkle-membership proof — the workload class behind the paper's
//! "Merkle-Tree" row in Table 2 and the anonymous-payment use cases of §1.
//!
//! A prover shows knowledge of a leaf in a MiMC-hashed Merkle tree whose
//! root is public, without revealing the leaf or the path.
//!
//! ```text
//! cargo run --release --example merkle_membership
//! ```

use gzkp_curves::bn254::{Bn254, Fr};
use gzkp_ff::Field;
use gzkp_gpu_sim::v100;
use gzkp_groth16::gadgets::{mimc_constants, MerkleMembership};
use gzkp_groth16::r1cs::{Circuit, ConstraintSystem};
use gzkp_groth16::{prove, setup, verify, ProverEngines};
use gzkp_msm::GzkpMsm;
use gzkp_ntt::GzkpNtt;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TREE_DEPTH: usize = 8;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let constants = mimc_constants::<Fr>();

    // Build a random authentication path for a secret leaf.
    let leaf = Fr::random(&mut rng);
    let path: Vec<Fr> = (0..TREE_DEPTH).map(|_| Fr::random(&mut rng)).collect();
    let directions: Vec<bool> = (0..TREE_DEPTH).map(|_| rng.gen()).collect();
    let root = MerkleMembership::compute_root(leaf, &path, &directions, &constants);
    println!("tree depth {TREE_DEPTH}, public root = {root}");

    // Synthesize the circuit.
    let circuit = MerkleMembership {
        leaf,
        path,
        directions,
        root,
    };
    let mut cs = ConstraintSystem::new();
    circuit.synthesize(&mut cs).expect("satisfiable");
    println!(
        "synthesized: {} constraints, {} witness values",
        cs.num_constraints(),
        cs.num_aux
    );

    let (pk, vk) = setup::<Bn254, _>(&cs, &mut rng).expect("setup");

    let ntt = GzkpNtt::auto::<Fr>(v100());
    let msm = GzkpMsm::new(v100());
    let msm_g2 = GzkpMsm::new(v100());
    let engines = ProverEngines::<Bn254> {
        ntt: &ntt,
        msm_g1: &msm,
        msm_g2: &msm_g2,
    };
    let t0 = std::time::Instant::now();
    let (proof, report) = prove(&cs, &pk, &engines, &mut rng).expect("prove");
    println!(
        "proved in {:?} wall; simulated V100: POLY {:.3} ms, MSM {:.3} ms",
        t0.elapsed(),
        report.poly_ms(),
        report.msm_ms()
    );

    assert!(verify::<Bn254>(&vk, &proof, &[root]));
    println!("membership verified — leaf and path stayed private");

    // Proving a different root with the same proof must fail.
    assert!(!verify::<Bn254>(&vk, &proof, &[root + Fr::one()]));
    println!("forged root correctly rejected");
}
