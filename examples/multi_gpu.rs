//! Multi-GPU proof generation (paper Table 4): decomposes the MSM stage
//! across four simulated V100s and distributes the POLY stage's
//! independent NTTs, reporting the scaling vs a single card.
//!
//! ```text
//! cargo run --release --example multi_gpu
//! ```

use gzkp_curves::bls12_381::G1Config;
use gzkp_ff::fields::Fr381;
use gzkp_gpu_sim::kernel::multi_gpu_time_ns;
use gzkp_gpu_sim::v100;
use gzkp_msm::{GzkpMsm, MsmEngine, ScalarVec};
use gzkp_ntt::gpu::GpuNttEngine;
use gzkp_ntt::GzkpNtt;
use gzkp_workloads::zcash::zcash_workloads;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(4);
    let w = &zcash_workloads()[1]; // Sapling_Spend
    println!("workload: {} (N = {})", w.name, w.vector_size);
    let log_n = w.domain_size().trailing_zeros();
    let dev = v100();

    let ntt = GzkpNtt::auto::<Fr381>(dev.clone());
    let msm = GzkpMsm::new(dev.clone());
    let scalars = w.sparse_scalars::<Fr381, _>(&mut rng);

    // Single card: 7 sequential NTTs + 5 MSMs (here: 5× the sparse MSM).
    let ntt_ms = GpuNttEngine::<Fr381>::cost(&ntt, log_n).total_ms();
    let msm_ms = MsmEngine::<G1Config>::plan(&msm, &ScalarVec::from_field(&scalars)).total_ms();
    let single = 7.0 * ntt_ms + 5.0 * msm_ms;

    // Four cards: NTTs in 2 rounds; each MSM split 4 ways + combination.
    let chunk = scalars.len().div_ceil(4);
    let per_card: Vec<f64> = scalars
        .chunks(chunk)
        .map(|c| MsmEngine::<G1Config>::plan(&msm, &ScalarVec::from_field(c)).total_ns())
        .collect();
    let msm4_ms = multi_gpu_time_ns(&dev, &per_card, 4 << 20) / 1e6;
    let quad = 2.0 * ntt_ms + 5.0 * msm4_ms;

    println!("\n{:<22} {:>12}", "configuration", "time (ms)");
    println!("{:<22} {:>12.2}", "1x V100", single);
    println!("{:<22} {:>12.2}", "4x V100", quad);
    println!(
        "\nscaling: {:.2}x with 4 cards (paper Table 4 reports ~2.1x)",
        single / quad
    );
}
