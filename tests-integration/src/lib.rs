//! Cross-crate integration tests and example carriers for the GZKP
//! reproduction workspace. See `tests/` for the tests and `../examples/`
//! for the runnable examples.
