//! Cluster suite: multi-host sharding with checkpointed resume and an
//! admission-control front door.
//!
//! The contract under test (ISSUE 8's acceptance bar): killing a host
//! mid-proof loses zero jobs — interrupted work resumes from its
//! persisted checkpoint on a surviving host and the final proofs are
//! byte-identical to uninterrupted runs — and the front door's
//! weighted fair queuing and per-tenant rate limits hold under
//! saturation without starving anyone.

use gzkp_cluster::{
    groth16_factory, AdmissionError, Cluster, ClusterConfig, ClusterJobOptions, HostConfig,
    TenantSpec,
};
use gzkp_curves::bn254::{Bn254, Fr};
use gzkp_gpu_sim::v100;
use gzkp_groth16::{
    proof_to_bytes,
    prove::{prove, ProverEngines},
    setup, ConstraintSystem, ProofCheckpoint, ProvingKey, VerifyingKey,
};
use gzkp_msm::GzkpMsm;
use gzkp_ntt::GzkpNtt;
use gzkp_workloads::synthetic::synthetic_circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

type Keyed = (
    Arc<ConstraintSystem<Fr>>,
    Arc<ProvingKey<Bn254>>,
    Arc<VerifyingKey<Bn254>>,
);

fn keyed_circuit(constraints: usize, seed: u64) -> Keyed {
    let mut rng = StdRng::seed_from_u64(seed);
    let cs = synthetic_circuit::<Fr, _>(constraints, &mut rng);
    let (pk, vk) = setup::<Bn254, _>(&cs, &mut rng).expect("setup");
    (Arc::new(cs), Arc::new(pk), Arc::new(vk))
}

/// Ground truth: the proof an uninterrupted single-host run produces for
/// this circuit and blinding seed.
fn direct_proof(cs: &ConstraintSystem<Fr>, pk: &ProvingKey<Bn254>, seed: u64) -> Vec<u8> {
    let ntt = GzkpNtt::auto::<Fr>(v100());
    let msm_g1 = GzkpMsm::new(v100());
    let msm_g2 = GzkpMsm::new(v100());
    let engines = ProverEngines::<Bn254> {
        ntt: &ntt,
        msm_g1: &msm_g1,
        msm_g2: &msm_g2,
    };
    let (proof, _) = prove(cs, pk, &engines, &mut StdRng::seed_from_u64(seed)).expect("prove");
    proof_to_bytes(&proof)
}

/// ISSUE 8's headline scenario: two hosts, several jobs in flight, one
/// host killed once a job on it has a persisted mid-proof checkpoint.
/// Every job must still complete, every proof byte-identical to the
/// uninterrupted ground truth, and no host claim may leak.
#[test]
fn host_kill_mid_proof_loses_no_jobs_and_proofs_are_byte_identical() {
    let (cs, pk, vk) = keyed_circuit(192, 11);
    let jobs = 6usize;
    let expected: Vec<Vec<u8>> = (0..jobs)
        .map(|i| direct_proof(&cs, &pk, 100 + i as u64))
        .collect();

    let mut cluster = Cluster::start(ClusterConfig {
        hosts: 2,
        host: HostConfig {
            queue_capacity: 2,
            ..HostConfig::default()
        },
        tenants: vec![TenantSpec::new("zcash", 1.0)],
        ..ClusterConfig::default()
    });
    let ids: Vec<u64> = (0..jobs)
        .map(|i| {
            cluster
                .submit(
                    "zcash",
                    groth16_factory::<Bn254>(
                        cs.clone(),
                        pk.clone(),
                        Some(vk.clone()),
                        100 + i as u64,
                    ),
                    ClusterJobOptions::default(),
                )
                .expect("admitted")
        })
        .collect();

    // Pump until some open job has persisted a checkpoint (POLY done, or
    // partway through the MSMs), then kill the host it runs on. The slot
    // is cleared on completion, so Some(bytes) means mid-proof.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut killed_host = None;
    while killed_host.is_none() {
        assert!(Instant::now() < deadline, "no checkpoint observed in 60s");
        cluster.pump();
        for &id in &ids {
            let (Some(bytes), Some(host)) = (cluster.job_checkpoint(id), cluster.job_host(id))
            else {
                continue;
            };
            let ckpt =
                ProofCheckpoint::<Bn254>::from_bytes(&bytes).expect("persisted checkpoint decodes");
            assert!(ckpt.steps_done() <= 5);
            cluster.kill_host(host);
            killed_host = Some(host);
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    let killed_host = killed_host.unwrap();

    let outcome = cluster.drain(Duration::from_secs(120));

    assert_eq!(outcome.stats.host_kills, 1);
    assert_eq!(outcome.leaked_claims, 0, "kill leaked a host claim");
    assert_eq!(outcome.results.len(), jobs);
    assert!(
        outcome.stats.resumes >= 1,
        "the killed host had in-flight checkpointed work"
    );
    for (i, &id) in ids.iter().enumerate() {
        let result = outcome
            .results
            .iter()
            .find(|r| r.id == id)
            .expect("every admitted job resolves");
        let proof = result
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("job {id} lost to the kill: {e}"));
        assert_eq!(
            proof, &expected[i],
            "job {id} resumed to a different proof than the uninterrupted run"
        );
    }
    let dead = outcome
        .hosts
        .iter()
        .find(|h| h.id == killed_host)
        .expect("host report");
    assert!(dead.killed, "killed host not marked killed in its report");
}

/// Fair share through the full stack: one single-device host, two
/// tenants at 3:1 weights, both backlogged. The early completions must
/// split close to 3:1.
#[test]
fn weighted_tenants_complete_in_fair_ratio_under_saturation() {
    let (cs, pk, _vk) = keyed_circuit(64, 5);
    let mut cluster = Cluster::start(ClusterConfig {
        hosts: 1,
        host: HostConfig {
            queue_capacity: 1,
            ..HostConfig::default()
        },
        tenants: vec![TenantSpec::new("heavy", 3.0), TenantSpec::new("light", 1.0)],
        pending_capacity: 128,
        ..ClusterConfig::default()
    });
    for i in 0..24u64 {
        for tenant in ["heavy", "light"] {
            cluster
                .submit(
                    tenant,
                    groth16_factory::<Bn254>(cs.clone(), pk.clone(), None, i),
                    ClusterJobOptions::default(),
                )
                .expect("admitted");
        }
    }
    let outcome = cluster.drain(Duration::from_secs(180));
    assert_eq!(outcome.stats.failed, 0);
    assert_eq!(outcome.leaked_claims, 0);

    // All 48 eventually finish; fairness shows in the completion order.
    // In the first 32 completions a 3:1 release ratio puts ~24 heavy
    // jobs (but heavy runs dry at 24, so allow the tail to wobble).
    let heavy_early = outcome
        .results
        .iter()
        .take(32)
        .filter(|r| r.tenant == "heavy")
        .count();
    assert!(
        (22..=24).contains(&heavy_early),
        "expected ~24 heavy completions in the first 32, got {heavy_early}"
    );
    let by_tenant = outcome.completed_by_tenant();
    assert_eq!(by_tenant["heavy"], 24);
    assert_eq!(by_tenant["light"], 24);
}

/// A rate-limited tenant sees typed `RateLimited` backpressure with a
/// retry hint, and its limit never starves the unlimited tenant.
#[test]
fn rate_limited_tenant_gets_typed_backpressure_without_starving_others() {
    let (cs, pk, _vk) = keyed_circuit(64, 7);
    let mut cluster = Cluster::start(ClusterConfig {
        hosts: 1,
        tenants: vec![
            TenantSpec::new("metered", 1.0).with_rate(1.0, 2.0),
            TenantSpec::new("unmetered", 1.0),
        ],
        ..ClusterConfig::default()
    });

    // A fixed admission clock makes the bucket deterministic: exactly
    // `burst` metered submissions pass, the rest are rejected with a
    // positive retry hint.
    let now = Instant::now();
    let mut metered_ok = 0u32;
    let mut rejected = 0u32;
    for i in 0..6u64 {
        match cluster.submit_at(
            "metered",
            groth16_factory::<Bn254>(cs.clone(), pk.clone(), None, i),
            ClusterJobOptions::default(),
            now,
        ) {
            Ok(_) => metered_ok += 1,
            Err(AdmissionError::RateLimited {
                tenant,
                retry_after,
            }) => {
                assert_eq!(tenant, "metered");
                assert!(retry_after > Duration::ZERO);
                rejected += 1;
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    assert_eq!(metered_ok, 2, "token bucket admits exactly the burst");
    assert_eq!(rejected, 4);

    for i in 0..8u64 {
        cluster
            .submit_at(
                "unmetered",
                groth16_factory::<Bn254>(cs.clone(), pk.clone(), None, 50 + i),
                ClusterJobOptions::default(),
                now,
            )
            .expect("unlimited tenant is never rate limited");
    }

    let outcome = cluster.drain(Duration::from_secs(120));
    let by_tenant = outcome.completed_by_tenant();
    assert_eq!(by_tenant["unmetered"], 8, "metered tenant starved others");
    assert_eq!(by_tenant["metered"], 2);
    assert_eq!(outcome.stats.rejected_rate_limited, 4);
    assert_eq!(outcome.leaked_claims, 0);
    let metered = &outcome.tenants["metered"];
    assert_eq!(metered.admitted, 2);
    assert_eq!(metered.rate_limited, 4);
}

/// Unknown tenants and front-door saturation are typed too, end to end.
#[test]
fn unknown_tenant_and_saturation_are_typed_at_the_cluster_api() {
    let (cs, pk, _vk) = keyed_circuit(64, 3);
    let mut cluster = Cluster::start(ClusterConfig {
        hosts: 1,
        tenants: vec![TenantSpec::new("only", 1.0)],
        pending_capacity: 2,
        ..ClusterConfig::default()
    });
    let factory = || groth16_factory::<Bn254>(cs.clone(), pk.clone(), None, 1);
    assert!(matches!(
        cluster.submit("ghost", factory(), ClusterJobOptions::default()),
        Err(AdmissionError::UnknownTenant(t)) if t == "ghost"
    ));
    for _ in 0..2 {
        cluster
            .submit("only", factory(), ClusterJobOptions::default())
            .expect("under capacity");
    }
    assert!(matches!(
        cluster.submit("only", factory(), ClusterJobOptions::default()),
        Err(AdmissionError::Saturated {
            pending: 2,
            capacity: 2
        })
    ));
    let outcome = cluster.drain(Duration::from_secs(60));
    assert_eq!(outcome.stats.rejected_saturated, 1);
    assert_eq!(outcome.stats.completed, 2);
    assert_eq!(outcome.leaked_claims, 0);
}
