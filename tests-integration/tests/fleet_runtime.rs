//! Fleet-mode service behavior: per-device worker pinning, work-stealing
//! accounting, proof bit-identity across heterogeneous devices, fleet
//! telemetry, and the shared preprocess store under concurrent eviction
//! pressure.

use gzkp_curves::bls12_381::Bls12_381;
use gzkp_curves::bn254::Bn254;
use gzkp_curves::pairing::PairingConfig;
use gzkp_gpu_sim::{gtx1080ti, v100};
use gzkp_groth16::{proof_from_bytes, proof_to_bytes, prove, setup, verify, ProverEngines};
use gzkp_msm::GzkpMsm;
use gzkp_ntt::gpu::GzkpNtt;
use gzkp_runtime::parse_devices;
use gzkp_service::{Groth16Task, JobOptions, ProofTask, ProvingService, ServiceConfig, TaskOutput};
use gzkp_telemetry::{counters, TelemetrySink};
use gzkp_workloads::synthetic::synthetic_circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Condvar, Mutex};

/// A latch a test can wait on / open.
#[derive(Default)]
struct Latch {
    state: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn open(&self) {
        *self.state.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut st = self.state.lock().unwrap();
        while !*st {
            st = self.cv.wait(st).unwrap();
        }
    }
}

/// Task whose POLY stage blocks until released and that records which
/// device the scheduler bound it to — pins one fleet worker so placement
/// can be observed deterministically.
struct PinProbe {
    started: Arc<Latch>,
    release: Arc<Latch>,
    bound: Arc<Mutex<Vec<&'static str>>>,
}

impl ProofTask for PinProbe {
    fn key_id(&self) -> u64 {
        0
    }
    fn bind_device(&mut self, device: &gzkp_gpu_sim::DeviceConfig) {
        self.bound.lock().unwrap().push(device.name);
    }
    fn poly(&mut self, _sink: &dyn TelemetrySink) -> Result<(), String> {
        self.started.open();
        self.release.wait();
        Ok(())
    }
    fn msm(&mut self, _sink: &dyn TelemetrySink) -> Result<TaskOutput, String> {
        Ok(TaskOutput {
            proof: Vec::new(),
            report: None,
        })
    }
}

/// Trivial instantly-completing task; the payload tags the proof bytes.
struct NopTask(u64);

impl ProofTask for NopTask {
    fn key_id(&self) -> u64 {
        self.0
    }
    fn poly(&mut self, _sink: &dyn TelemetrySink) -> Result<(), String> {
        Ok(())
    }
    fn msm(&mut self, _sink: &dyn TelemetrySink) -> Result<TaskOutput, String> {
        Ok(TaskOutput {
            proof: self.0.to_le_bytes().to_vec(),
            report: None,
        })
    }
}

/// Direct prover bytes for the fleet service to match (always computed on
/// stock V100 engines — proofs must not depend on the device that ran
/// them).
fn direct_proof<P: PairingConfig>(
    cs: &gzkp_groth16::ConstraintSystem<P::Fr>,
    pk: &gzkp_groth16::ProvingKey<P>,
    seed: u64,
) -> Vec<u8>
where
    <P::G1 as gzkp_curves::CurveParams>::Base: gzkp_curves::CoordField,
    <P::G2 as gzkp_curves::CurveParams>::Base: gzkp_curves::CoordField,
{
    let ntt = GzkpNtt::auto::<P::Fr>(v100());
    let msm_g1 = GzkpMsm::new(v100());
    let msm_g2 = GzkpMsm::new(v100());
    let engines = ProverEngines::<P> {
        ntt: &ntt,
        msm_g1: &msm_g1,
        msm_g2: &msm_g2,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let (proof, _) = prove(cs, pk, &engines, &mut rng).unwrap();
    proof_to_bytes(&proof)
}

#[test]
fn fleet_pins_one_worker_per_device() {
    // Two blocking probes on a heterogeneous fleet: each must land on a
    // different worker, and the workers must bind them to the two distinct
    // devices.
    let service = ProvingService::start(ServiceConfig {
        devices: vec![v100(), gtx1080ti()],
        ..ServiceConfig::default()
    });
    let bound = Arc::new(Mutex::new(Vec::new()));
    let mut gates = Vec::new();
    for _ in 0..2 {
        let started = Arc::new(Latch::default());
        let release = Arc::new(Latch::default());
        let handle = service
            .submit(
                Box::new(PinProbe {
                    started: started.clone(),
                    release: release.clone(),
                    bound: bound.clone(),
                }),
                JobOptions::default(),
            )
            .unwrap();
        gates.push((started, release, handle));
    }
    for (started, _, _) in &gates {
        started.wait();
    }
    // Both probes are now in their POLY stage simultaneously, so both
    // pinned workers are live and each bound its own device.
    {
        let mut names = bound.lock().unwrap().clone();
        names.sort_unstable();
        assert_eq!(names, vec!["GTX1080Ti", "V100"]);
    }
    for (_, release, handle) in gates {
        release.open();
        assert!(handle.wait().outcome.is_ok());
    }
    let util = service.fleet_utilization().expect("fleet mode");
    assert_eq!(util.devices.len(), 2);
    for dev in &util.devices {
        assert!(dev.jobs >= 1, "device {} saw no jobs", dev.name);
    }
    service.shutdown();
}

#[test]
fn fleet_proofs_bit_identical_across_heterogeneous_devices() {
    // Proofs scheduled onto whichever device the fleet picks (V100 or
    // 1080 Ti, with rebinds on steals) must be byte-identical to the
    // direct single-V100 prover: every engine computes exact group
    // elements, so placement can never change proof bytes.
    let mut rng = StdRng::seed_from_u64(21);
    let cs_bn = Arc::new(synthetic_circuit::<<Bn254 as PairingConfig>::Fr, _>(
        96, &mut rng,
    ));
    let (pk_bn, vk_bn) = setup::<Bn254, _>(&cs_bn, &mut rng).unwrap();
    let pk_bn = Arc::new(pk_bn);
    let cs_bls = Arc::new(synthetic_circuit::<<Bls12_381 as PairingConfig>::Fr, _>(
        80, &mut rng,
    ));
    let (pk_bls, _) = setup::<Bls12_381, _>(&cs_bls, &mut rng).unwrap();
    let pk_bls = Arc::new(pk_bls);

    let service = ProvingService::start(ServiceConfig {
        devices: vec![v100(), gtx1080ti()],
        ..ServiceConfig::default()
    });
    let store = service.store();
    let mut handles = Vec::new();
    let mut expected = Vec::new();
    for seed in 0..6u64 {
        expected.push(direct_proof::<Bn254>(&cs_bn, &pk_bn, 100 + seed));
        let task = Groth16Task::<Bn254>::new(
            cs_bn.clone(),
            pk_bn.clone(),
            v100(),
            Some(store.clone()),
            100 + seed,
        );
        handles.push(
            service
                .submit(Box::new(task), JobOptions::default())
                .unwrap(),
        );
    }
    for seed in 0..3u64 {
        expected.push(direct_proof::<Bls12_381>(&cs_bls, &pk_bls, 200 + seed));
        let task = Groth16Task::<Bls12_381>::new(
            cs_bls.clone(),
            pk_bls.clone(),
            v100(),
            Some(store.clone()),
            200 + seed,
        );
        handles.push(
            service
                .submit(Box::new(task), JobOptions::default())
                .unwrap(),
        );
    }
    service.drain();

    for (i, (handle, want)) in handles.into_iter().zip(&expected).enumerate() {
        let output = handle.wait().outcome.unwrap();
        assert_eq!(&output.proof, want, "proof {i} differs from direct prover");
        if i == 0 {
            let proof = proof_from_bytes::<Bn254>(&output.proof).unwrap();
            assert!(verify::<Bn254>(&vk_bn, &proof, &cs_bn.input_assignment));
        }
    }

    // Fleet telemetry: per-device lanes under `runtime → dev{n}`, with
    // rolled-up transfer counters on the runtime node.
    let util = service.fleet_utilization().expect("fleet mode");
    assert!(util.devices.iter().map(|d| d.jobs).sum::<u64>() >= 9);
    assert!(util.devices.iter().any(|d| d.h2d_bytes > 0));
    assert!(util.elapsed_ns > 0.0);
    let trace = service.fleet_trace().expect("fleet mode");
    for lane in ["h2d", "kernel", "d2h"] {
        for dev in ["dev0", "dev1"] {
            assert!(
                trace.find(&["runtime", dev, lane]).is_some(),
                "missing runtime→{dev}→{lane} lane"
            );
        }
    }
    let runtime = trace.find(&["runtime"]).unwrap();
    assert!(runtime.counter(counters::RUNTIME_H2D_BYTES).unwrap_or(0.0) > 0.0);
    service.shutdown();
}

#[test]
fn fleet_work_stealing_is_counted_and_safe() {
    // Stealing is a race between the poly worker and an idle peer grabbing
    // the freshly staged MSM, so drive enough instant jobs through a
    // two-device fleet that a steal is (overwhelmingly) certain, and check
    // stolen jobs still resolve with the right payload.
    let mut total_steals = 0u64;
    for round in 0..50 {
        let service = ProvingService::start(ServiceConfig {
            queue_capacity: 64,
            devices: parse_devices("2").expect("spec"),
            ..ServiceConfig::default()
        });
        let handles: Vec<_> = (0..48u64)
            .map(|i| {
                service
                    .submit(Box::new(NopTask(i)), JobOptions::default())
                    .unwrap()
            })
            .collect();
        service.drain();
        for (i, h) in handles.into_iter().enumerate() {
            let output = h.wait().outcome.unwrap();
            assert_eq!(output.proof, (i as u64).to_le_bytes());
        }
        let util = service.fleet_utilization().expect("fleet mode");
        total_steals += util.devices.iter().map(|d| d.steals).sum::<u64>();
        service.shutdown();
        if total_steals > 0 {
            assert!(round < 50);
            break;
        }
    }
    assert!(total_steals > 0, "no steal observed across 2400 jobs");
}

#[test]
fn preprocess_store_eviction_under_concurrent_provers() {
    // Parallel provers sharing a store whose byte budget can't hold even
    // one table set: every insert evicts someone else's tables mid-run.
    // The service must neither deadlock nor serve stale tables — every
    // proof stays byte-identical to the direct prover.
    let mut rng = StdRng::seed_from_u64(31);
    let mut classes = Vec::new();
    for constraints in [64usize, 96, 128] {
        let cs = Arc::new(synthetic_circuit::<<Bn254 as PairingConfig>::Fr, _>(
            constraints,
            &mut rng,
        ));
        let (pk, _) = setup::<Bn254, _>(&cs, &mut rng).unwrap();
        classes.push((cs, Arc::new(pk)));
    }

    let service = ProvingService::start(ServiceConfig {
        workers: 4,
        prep_cache_bytes: 1,
        ..ServiceConfig::default()
    });
    let store = service.store();
    let mut handles = Vec::new();
    let mut expected = Vec::new();
    for seed in 0..4u64 {
        for (cs, pk) in &classes {
            expected.push(direct_proof::<Bn254>(cs, pk, 300 + seed));
            let task = Groth16Task::<Bn254>::new(
                cs.clone(),
                pk.clone(),
                v100(),
                Some(store.clone()),
                300 + seed,
            );
            handles.push(
                service
                    .submit(Box::new(task), JobOptions::default())
                    .unwrap(),
            );
        }
    }
    service.drain();
    for (i, (handle, want)) in handles.into_iter().zip(&expected).enumerate() {
        let output = handle.wait().outcome.unwrap();
        assert_eq!(&output.proof, want, "proof {i} differs under eviction");
    }
    assert!(
        store.evictions() > 0,
        "a 1-byte budget must evict between proving keys"
    );
    assert!(store.misses() > 0);
    service.shutdown();
}
