//! Parallel-prover determinism: the optimized prover (lock-free thread
//! pool, batch-affine bucket accumulation, cached preprocessing,
//! concurrent MSMs) produces *bit-identical* proofs to the serial
//! pre-PR reference at every thread count.
//!
//! Everything lives in ONE test function: the thread count is driven by
//! the `GZKP_THREADS` env override, and env mutation must stay
//! sequential within the test binary.

use gzkp_curves::pairing::PairingConfig;
use gzkp_curves::{bls12_381, bn254, random_points, t753};
use gzkp_ff::fields::Fr753;
use gzkp_ff::Field;
use gzkp_gpu_sim::v100;
use gzkp_groth16::{prove, setup, ConstraintSystem, Proof, ProverEngines, ProvingKey};
use gzkp_msm::{GzkpMsm, MsmEngine, ScalarVec};
use gzkp_ntt::gpu::GpuNttEngine;
use gzkp_ntt::{Direction, GzkpNtt, Radix2Domain};
use gzkp_workloads::synthetic::synthetic_circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs one proof with either the optimized or the serial-reference
/// engine configuration. The rng seed is fixed and the blinding factors
/// are drawn after the MSM stage, so equal proofs mean equal MSM/NTT
/// outputs bit for bit.
fn proof_with<P: PairingConfig>(
    cs: &ConstraintSystem<P::Fr>,
    pk: &ProvingKey<P>,
    optimized: bool,
) -> Proof<P> {
    let (g1, g2) = if optimized {
        (GzkpMsm::new(v100()), GzkpMsm::new(v100()))
    } else {
        (
            GzkpMsm::serial_reference(v100()),
            GzkpMsm::serial_reference(v100()),
        )
    };
    let ntt = GzkpNtt::auto::<P::Fr>(v100());
    let engines = ProverEngines::<P> {
        ntt: &ntt,
        msm_g1: &g1,
        msm_g2: &g2,
    };
    let mut rng = StdRng::seed_from_u64(99);
    prove(cs, pk, &engines, &mut rng).expect("prove").0
}

/// Serial-vs-parallel prover check for one pairing curve across worker
/// counts 1, 2, and 4 (via the `GZKP_THREADS` override).
fn check_curve<P: PairingConfig>(constraints: usize) {
    let mut rng = StdRng::seed_from_u64(5);
    let cs = synthetic_circuit::<P::Fr, _>(constraints, &mut rng);
    let (pk, _vk) = setup::<P, _>(&cs, &mut rng).expect("setup");

    std::env::set_var("GZKP_THREADS", "1");
    let reference = proof_with::<P>(&cs, &pk, false);
    for threads in ["1", "2", "4"] {
        std::env::set_var("GZKP_THREADS", threads);
        let got = proof_with::<P>(&cs, &pk, true);
        assert!(
            got == reference,
            "parallel proof diverged at GZKP_THREADS={threads}"
        );
    }
    std::env::remove_var("GZKP_THREADS");
}

/// MSM + NTT determinism on the pairing-less 753-bit curve.
fn check_t753() {
    let mut rng = StdRng::seed_from_u64(17);
    let pts = random_points::<t753::G1Config, _>(257, &mut rng);
    let scalars: Vec<Fr753> = (0..257).map(|_| Fr753::random(&mut rng)).collect();
    let sv = ScalarVec::from_field(&scalars);
    let domain = Radix2Domain::<Fr753>::new(1 << 8).expect("domain");
    let coeffs: Vec<Fr753> = (0..domain.size).map(|_| Fr753::random(&mut rng)).collect();

    std::env::set_var("GZKP_THREADS", "1");
    let msm_ref = GzkpMsm::serial_reference(v100()).msm(&pts, &sv).result;
    let mut ntt_ref = coeffs.clone();
    GzkpNtt::auto::<Fr753>(v100()).transform(&domain, &mut ntt_ref, Direction::Forward);

    for threads in ["1", "2", "4"] {
        std::env::set_var("GZKP_THREADS", threads);
        let got = GzkpMsm::new(v100()).msm(&pts, &sv).result;
        assert_eq!(
            got.to_affine(),
            msm_ref.to_affine(),
            "t753 MSM diverged at GZKP_THREADS={threads}"
        );
        let mut data = coeffs.clone();
        GzkpNtt::auto::<Fr753>(v100()).transform(&domain, &mut data, Direction::Forward);
        assert_eq!(data, ntt_ref, "t753 NTT diverged at GZKP_THREADS={threads}");
    }
    std::env::remove_var("GZKP_THREADS");
}

#[test]
fn parallel_prover_is_bit_identical_to_serial() {
    check_curve::<bn254::Bn254>(1 << 6);
    check_curve::<bls12_381::Bls12_381>(1 << 5);
    check_t753();
}
