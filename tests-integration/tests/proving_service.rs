//! Proving-service behavior: backpressure, deadlines, cancellation,
//! graceful shutdown, per-job traces, and bit-exact equivalence with the
//! direct prover on both pairing curves.

use gzkp_curves::bls12_381::Bls12_381;
use gzkp_curves::bn254::Bn254;
use gzkp_curves::pairing::PairingConfig;
use gzkp_ff::ext::{Fp12Config, Fp2Config, Fp6Config};
use gzkp_gpu_sim::{v100, FaultPlan, FaultRates};
use gzkp_groth16::{proof_from_bytes, proof_to_bytes, prove, setup, verify, ProverEngines};
use gzkp_msm::GzkpMsm;
use gzkp_ntt::gpu::GzkpNtt;
use gzkp_runtime::HealthPolicy;
use gzkp_service::{
    Groth16Task, JobError, JobOptions, Priority, ProofTask, ProvingService, RetryPolicy,
    ServiceConfig, SubmitError, TaskOutput, VERIFY_VOTE_RUNS,
};
use gzkp_telemetry::TelemetrySink;
use gzkp_workloads::synthetic::synthetic_circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A latch a test can wait on / open.
#[derive(Default)]
struct Latch {
    state: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn open(&self) {
        *self.state.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut st = self.state.lock().unwrap();
        while !*st {
            st = self.cv.wait(st).unwrap();
        }
    }
}

/// Task whose POLY stage blocks until released — pins a worker so queue
/// behavior can be observed deterministically.
struct GateTask {
    started: Arc<Latch>,
    release: Arc<Latch>,
}

impl ProofTask for GateTask {
    fn key_id(&self) -> u64 {
        0
    }
    fn poly(&mut self, _sink: &dyn TelemetrySink) -> Result<(), String> {
        self.started.open();
        self.release.wait();
        Ok(())
    }
    fn msm(&mut self, _sink: &dyn TelemetrySink) -> Result<TaskOutput, String> {
        Ok(TaskOutput {
            proof: Vec::new(),
            report: None,
        })
    }
}

/// Trivial instantly-completing task; the payload tags the proof bytes.
struct NopTask(u64);

impl ProofTask for NopTask {
    fn key_id(&self) -> u64 {
        self.0
    }
    fn poly(&mut self, _sink: &dyn TelemetrySink) -> Result<(), String> {
        Ok(())
    }
    fn msm(&mut self, _sink: &dyn TelemetrySink) -> Result<TaskOutput, String> {
        Ok(TaskOutput {
            proof: self.0.to_le_bytes().to_vec(),
            report: None,
        })
    }
}

fn one_worker(queue_capacity: usize) -> ServiceConfig {
    ServiceConfig {
        queue_capacity,
        workers: 1,
        ..ServiceConfig::default()
    }
}

#[test]
fn backpressure_rejects_when_queue_full() {
    let service = ProvingService::start(one_worker(2));
    let started = Arc::new(Latch::default());
    let release = Arc::new(Latch::default());
    let gate = service
        .submit(
            Box::new(GateTask {
                started: started.clone(),
                release: release.clone(),
            }),
            JobOptions::default(),
        )
        .unwrap();
    // Once the gate occupies the worker, the queue holds waiting jobs only.
    started.wait();
    let a = service
        .submit(Box::new(NopTask(1)), JobOptions::default())
        .unwrap();
    let b = service
        .submit(Box::new(NopTask(2)), JobOptions::default())
        .unwrap();
    let err = service
        .submit(Box::new(NopTask(3)), JobOptions::default())
        .unwrap_err();
    assert_eq!(err, SubmitError::QueueFull { capacity: 2 });

    release.open();
    for h in [gate, a, b] {
        assert!(h.wait().outcome.is_ok());
    }
    let stats = service.shutdown();
    assert_eq!(stats.accepted, 3);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.completed, 3);
}

#[test]
fn deadline_expiry_drops_queued_job() {
    let service = ProvingService::start(one_worker(8));
    let started = Arc::new(Latch::default());
    let release = Arc::new(Latch::default());
    let gate = service
        .submit(
            Box::new(GateTask {
                started: started.clone(),
                release: release.clone(),
            }),
            JobOptions::default(),
        )
        .unwrap();
    started.wait();
    let doomed = service
        .submit(
            Box::new(NopTask(1)),
            JobOptions {
                deadline: Some(Duration::from_millis(1)),
                ..JobOptions::default()
            },
        )
        .unwrap();
    // Let the deadline pass while the only worker is pinned, then release.
    std::thread::sleep(Duration::from_millis(30));
    release.open();
    assert_eq!(doomed.wait().outcome.unwrap_err(), JobError::DeadlineMissed);
    assert!(gate.wait().outcome.is_ok());
    let stats = service.shutdown();
    assert_eq!(stats.deadline_missed, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn cancellation_drops_queued_job() {
    let service = ProvingService::start(one_worker(8));
    let started = Arc::new(Latch::default());
    let release = Arc::new(Latch::default());
    let gate = service
        .submit(
            Box::new(GateTask {
                started: started.clone(),
                release: release.clone(),
            }),
            JobOptions::default(),
        )
        .unwrap();
    started.wait();
    let cancelled = service
        .submit(Box::new(NopTask(1)), JobOptions::default())
        .unwrap();
    cancelled.cancel();
    release.open();
    assert_eq!(cancelled.wait().outcome.unwrap_err(), JobError::Cancelled);
    assert!(gate.wait().outcome.is_ok());
    assert_eq!(service.shutdown().cancelled, 1);
}

#[test]
fn priorities_order_the_queue() {
    let service = ProvingService::start(one_worker(8));
    let started = Arc::new(Latch::default());
    let release = Arc::new(Latch::default());
    let gate = service
        .submit(
            Box::new(GateTask {
                started: started.clone(),
                release: release.clone(),
            }),
            JobOptions::default(),
        )
        .unwrap();
    started.wait();
    // Submit low before high; high must still finish first.
    let low = service
        .submit(
            Box::new(NopTask(1)),
            JobOptions {
                priority: Priority::Low,
                ..JobOptions::default()
            },
        )
        .unwrap();
    let high = service
        .submit(
            Box::new(NopTask(2)),
            JobOptions {
                priority: Priority::High,
                ..JobOptions::default()
            },
        )
        .unwrap();
    release.open();
    assert!(gate.wait().outcome.is_ok());
    let high_result = high.wait();
    let low_result = low.wait();
    assert!(high_result.outcome.is_ok() && low_result.outcome.is_ok());
    assert!(
        high_result.queue_wait <= low_result.queue_wait,
        "high ({:?}) should be scheduled before low ({:?})",
        high_result.queue_wait,
        low_result.queue_wait
    );
    service.shutdown();
}

#[test]
fn failing_task_resolves_as_failed() {
    struct FailTask;
    impl ProofTask for FailTask {
        fn key_id(&self) -> u64 {
            0
        }
        fn poly(&mut self, _sink: &dyn TelemetrySink) -> Result<(), String> {
            Err("no witness".into())
        }
        fn msm(&mut self, _sink: &dyn TelemetrySink) -> Result<TaskOutput, String> {
            unreachable!("poly failed")
        }
    }
    struct PanicTask;
    impl ProofTask for PanicTask {
        fn key_id(&self) -> u64 {
            0
        }
        fn poly(&mut self, _sink: &dyn TelemetrySink) -> Result<(), String> {
            panic!("boom")
        }
        fn msm(&mut self, _sink: &dyn TelemetrySink) -> Result<TaskOutput, String> {
            unreachable!("poly panicked")
        }
    }
    let service = ProvingService::start(one_worker(8));
    let failed = service
        .submit(Box::new(FailTask), JobOptions::default())
        .unwrap();
    let panicked = service
        .submit(Box::new(PanicTask), JobOptions::default())
        .unwrap();
    assert_eq!(
        failed.wait().outcome.unwrap_err(),
        JobError::Failed("no witness".into())
    );
    assert_eq!(
        panicked.wait().outcome.unwrap_err(),
        JobError::Failed("stage panicked: boom".into())
    );
    // A panicking stage must not poison the workers.
    let ok = service
        .submit(Box::new(NopTask(7)), JobOptions::default())
        .unwrap();
    assert!(ok.wait().outcome.is_ok());
    assert_eq!(service.shutdown().failed, 2);
}

#[test]
fn graceful_shutdown_drains_in_flight_jobs() {
    let service = ProvingService::start(ServiceConfig {
        queue_capacity: 64,
        workers: 2,
        ..ServiceConfig::default()
    });
    let handles: Vec<_> = (0..16)
        .map(|i| {
            service
                .submit(Box::new(NopTask(i)), JobOptions::default())
                .unwrap()
        })
        .collect();
    // Shutdown with most jobs still queued: every one must resolve.
    let stats = service.shutdown();
    assert_eq!(stats.completed, 16);
    for (i, h) in handles.into_iter().enumerate() {
        let result = h.wait();
        assert_eq!(result.outcome.unwrap().proof, (i as u64).to_le_bytes());
    }
}

#[test]
fn parked_retry_is_drained_at_shutdown() {
    // Every stage execution faults, so the job can only ever sit parked
    // in a retry backoff; shutdown must return it instead of waiting the
    // backoff out (or dropping it silently).
    let service = ProvingService::start(ServiceConfig {
        workers: 1,
        chaos: Some(FaultPlan {
            rates: FaultRates {
                kernel: 1.0,
                ..FaultRates::default()
            },
            ..FaultPlan::default()
        }),
        retry: RetryPolicy {
            max_retries: 1000,
            backoff: Duration::from_millis(300),
            max_backoff: Duration::from_millis(300),
        },
        ..ServiceConfig::default()
    });
    let handle = service
        .submit(Box::new(NopTask(1)), JobOptions::default())
        .unwrap();
    // Let the job fault and park for its 300 ms backoff.
    std::thread::sleep(Duration::from_millis(50));
    let stats = service.shutdown();
    assert_eq!(handle.wait().outcome.unwrap_err(), JobError::Drained);
    assert_eq!(stats.drained, 1);
    assert!(stats.faults_injected >= 1);
    assert_eq!(stats.completed + stats.failed, 0);
}

#[test]
fn backpressure_still_applies_with_a_quarantined_device() {
    // Two-device fleet with device 1 benched: capacity accounting must
    // not change — both workers keep running (on device 0), and the
    // bounded queue still rejects the overflow submission.
    let service = ProvingService::start(ServiceConfig {
        queue_capacity: 2,
        devices: gzkp_runtime::parse_devices("2").unwrap(),
        health: HealthPolicy {
            probation: Duration::from_secs(60),
            ..HealthPolicy::default()
        },
        ..ServiceConfig::default()
    });
    assert!(service.fleet().unwrap().force_quarantine(1));

    let gates: Vec<_> = (0..2)
        .map(|_| {
            let started = Arc::new(Latch::default());
            let release = Arc::new(Latch::default());
            let handle = service
                .submit(
                    Box::new(GateTask {
                        started: started.clone(),
                        release: release.clone(),
                    }),
                    JobOptions::default(),
                )
                .unwrap();
            started.wait();
            (handle, release)
        })
        .collect();
    let a = service
        .submit(Box::new(NopTask(1)), JobOptions::default())
        .unwrap();
    let b = service
        .submit(Box::new(NopTask(2)), JobOptions::default())
        .unwrap();
    let err = service
        .submit(Box::new(NopTask(3)), JobOptions::default())
        .unwrap_err();
    assert_eq!(err, SubmitError::QueueFull { capacity: 2 });

    for (handle, release) in gates {
        release.open();
        assert!(handle.wait().outcome.is_ok());
    }
    assert!(a.wait().outcome.is_ok() && b.wait().outcome.is_ok());
    let stats = service.shutdown();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.quarantines, 1);
}

/// Task whose proof fails verification the first `rejects` times the
/// guard checks it.
struct RejectingTask {
    rejects: u32,
    checks: AtomicU32,
}

impl ProofTask for RejectingTask {
    fn key_id(&self) -> u64 {
        0
    }
    fn poly(&mut self, _sink: &dyn TelemetrySink) -> Result<(), String> {
        Ok(())
    }
    fn msm(&mut self, _sink: &dyn TelemetrySink) -> Result<TaskOutput, String> {
        Ok(TaskOutput {
            proof: vec![0xAB; 8],
            report: None,
        })
    }
    fn verify_output(&self, _output: &TaskOutput) -> Option<bool> {
        Some(self.checks.fetch_add(1, Ordering::Relaxed) >= self.rejects)
    }
}

#[test]
fn verify_reject_recovers_with_one_reexecution() {
    let service = ProvingService::start(ServiceConfig {
        workers: 1,
        retry: RetryPolicy {
            backoff: Duration::from_millis(1),
            ..RetryPolicy::default()
        },
        ..ServiceConfig::default()
    });
    let handle = service
        .submit(
            Box::new(RejectingTask {
                rejects: 1,
                checks: AtomicU32::new(0),
            }),
            JobOptions::default(),
        )
        .unwrap();
    assert!(handle.wait().outcome.is_ok());
    let stats = service.shutdown();
    assert_eq!(stats.verify_rejects, 1);
    // Two votes cast: the rejected first run and the passing second.
    assert_eq!(stats.verify_votes, 2);
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn verify_reject_fails_only_after_all_votes_reject() {
    let service = ProvingService::start(ServiceConfig {
        workers: 1,
        retry: RetryPolicy {
            backoff: Duration::from_millis(1),
            ..RetryPolicy::default()
        },
        ..ServiceConfig::default()
    });
    let handle = service
        .submit(
            Box::new(RejectingTask {
                rejects: u32::MAX,
                checks: AtomicU32::new(0),
            }),
            JobOptions::default(),
        )
        .unwrap();
    assert_eq!(
        handle.wait().outcome.unwrap_err(),
        JobError::Failed(format!(
            "proof failed verification in {VERIFY_VOTE_RUNS}-run vote"
        ))
    );
    let stats = service.shutdown();
    // Every one of the voted runs was produced, verified, and rejected.
    assert_eq!(stats.verify_rejects, u64::from(VERIFY_VOTE_RUNS));
    assert_eq!(stats.verify_votes, u64::from(VERIFY_VOTE_RUNS));
    assert_eq!(stats.retries, u64::from(VERIFY_VOTE_RUNS) - 1);
    assert_eq!(stats.failed, 1);
}

#[test]
fn retry_lands_on_a_different_device() {
    // Device 0 always faults, device 1 never does — but device 1 starts
    // quarantined, so the first placement must pick device 0, fault, and
    // the retry (after device 1's window expires) must migrate there.
    let service = ProvingService::start(ServiceConfig {
        devices: gzkp_runtime::parse_devices("2").unwrap(),
        chaos: Some(FaultPlan {
            rates: FaultRates {
                kernel: 1.0,
                ..FaultRates::default()
            },
            device_scale: vec![1.0, 0.0],
            ..FaultPlan::default()
        }),
        retry: RetryPolicy {
            max_retries: 4,
            backoff: Duration::from_millis(300),
            max_backoff: Duration::from_millis(300),
        },
        health: HealthPolicy {
            probation: Duration::from_millis(150),
            ..HealthPolicy::default()
        },
        ..ServiceConfig::default()
    });
    assert!(service.fleet().unwrap().force_quarantine(1));
    let handle = service
        .submit(Box::new(NopTask(9)), JobOptions::default())
        .unwrap();
    assert!(handle.wait().outcome.is_ok());
    let stats = service.shutdown();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.faults_injected, 1, "exactly one fault on device 0");
    assert_eq!(stats.retries, 1, "one migration to the clean device");
    assert_eq!(stats.cpu_fallbacks, 0, "device 1 came back in time");
}

/// Direct prover bytes for the service to match.
fn direct_proof<P: PairingConfig>(
    cs: &gzkp_groth16::ConstraintSystem<P::Fr>,
    pk: &gzkp_groth16::ProvingKey<P>,
    seed: u64,
) -> Vec<u8>
where
    <P::G1 as gzkp_curves::CurveParams>::Base: gzkp_curves::CoordField,
    <P::G2 as gzkp_curves::CurveParams>::Base: gzkp_curves::CoordField,
{
    let ntt = GzkpNtt::auto::<P::Fr>(v100());
    let msm_g1 = GzkpMsm::new(v100());
    let msm_g2 = GzkpMsm::new(v100());
    let engines = ProverEngines::<P> {
        ntt: &ntt,
        msm_g1: &msm_g1,
        msm_g2: &msm_g2,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let (proof, _) = prove(cs, pk, &engines, &mut rng).unwrap();
    proof_to_bytes(&proof)
}

fn assert_service_matches_direct<P: PairingConfig>(setup_seed: u64, blind_seed: u64)
where
    <P::G1 as gzkp_curves::CurveParams>::Base: gzkp_curves::CoordField,
    <P::G2 as gzkp_curves::CurveParams>::Base: gzkp_curves::CoordField,
    <P::Fq12C as Fp12Config>::Fp6C: Fp6Config<Fp2C = P::Fq2C>,
    P::Fq2C: Fp2Config,
{
    let mut rng = StdRng::seed_from_u64(setup_seed);
    let cs = Arc::new(synthetic_circuit::<P::Fr, _>(96, &mut rng));
    let (pk, vk) = setup::<P, _>(&cs, &mut rng).unwrap();
    let pk = Arc::new(pk);
    let expected = direct_proof::<P>(&cs, &pk, blind_seed);

    let service = ProvingService::start(ServiceConfig::default());
    let task = Groth16Task::<P>::new(
        cs.clone(),
        pk.clone(),
        v100(),
        Some(service.store()),
        blind_seed,
    );
    let result = service
        .submit(
            Box::new(task),
            JobOptions {
                trace: true,
                ..JobOptions::default()
            },
        )
        .unwrap()
        .wait();
    let output = result.outcome.unwrap();
    assert_eq!(
        output.proof, expected,
        "service proof must be bit-identical"
    );
    let proof = proof_from_bytes::<P>(&output.proof).unwrap();
    assert!(verify::<P>(&vk, &proof, &cs.input_assignment));
    assert!(output.report.is_some());

    // The per-job trace wraps the prover's span tree in service spans.
    let trace = result.trace.expect("trace requested");
    for path in [
        &["service"][..],
        &["service", "queue_wait"][..],
        &["service", "execute", "poly"][..],
        &["service", "execute", "msm", "b_g2"][..],
    ] {
        assert!(trace.find(path).is_some(), "missing span {path:?}");
    }
    assert_eq!(
        trace
            .root
            .counter(gzkp_telemetry::counters::SERVICE_COMPLETED),
        Some(1.0)
    );
    service.shutdown();
}

#[test]
fn service_proof_is_bit_identical_bn254() {
    assert_service_matches_direct::<Bn254>(11, 1234);
}

#[test]
fn service_proof_is_bit_identical_bls12_381() {
    assert_service_matches_direct::<Bls12_381>(12, 5678);
}
