//! Live-observability integration: the metrics registry the service
//! publishes into must agree with the per-job traces and lifetime stats,
//! metrics must never perturb proof bytes, and the flame export must
//! cover a real prover trace.

use gzkp_curves::bn254::{Bn254, Fr};
use gzkp_gpu_sim::v100;
use gzkp_groth16::setup;
use gzkp_service::{prepare, run_service, Groth16Task, JobOptions, ProvingService, ServiceConfig};
use gzkp_telemetry::{counters, folded_stacks, MetricsRegistry, MetricsSnapshot, Trace};
use gzkp_workloads::requests::{
    RequestCurve, RequestPriority, RequestSpec, RequestSystem, RequestWorkload,
};
use gzkp_workloads::synthetic::synthetic_circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Runs `jobs` traced proofs through a metrics-armed service and returns
/// the final snapshot, the per-job traces, and the lifetime stats.
fn run_traced_jobs(jobs: usize) -> (MetricsSnapshot, Vec<Trace>, gzkp_service::ServiceStats) {
    let mut rng = StdRng::seed_from_u64(17);
    let cs = Arc::new(synthetic_circuit::<Fr, _>(64, &mut rng));
    let (pk, _vk) = setup::<Bn254, _>(&cs, &mut rng).unwrap();
    let pk = Arc::new(pk);

    let registry = Arc::new(MetricsRegistry::new());
    let cfg = ServiceConfig {
        metrics: Some(registry.clone()),
        ..ServiceConfig::default()
    };
    let service = ProvingService::start(cfg);
    let handles: Vec<_> = (0..jobs)
        .map(|i| {
            let task = Groth16Task::<Bn254>::new(
                cs.clone(),
                pk.clone(),
                v100(),
                Some(service.store()),
                i as u64,
            );
            service
                .submit(
                    Box::new(task),
                    JobOptions {
                        trace: true,
                        ..JobOptions::default()
                    },
                )
                .unwrap()
        })
        .collect();
    let traces: Vec<Trace> = handles
        .into_iter()
        .map(|h| {
            let result = h.wait();
            result.outcome.expect("job completes");
            result.trace.expect("trace requested")
        })
        .collect();
    let stats = service.shutdown();
    (registry.snapshot(), traces, stats)
}

#[test]
fn metrics_snapshot_is_consistent_with_job_traces_and_stats() {
    let jobs = 4;
    let (snapshot, traces, stats) = run_traced_jobs(jobs);

    // Counters agree with the service's own lifetime stats.
    assert_eq!(
        snapshot.counter(counters::SERVICE_ACCEPTED),
        Some(stats.accepted)
    );
    assert_eq!(
        snapshot.counter(counters::SERVICE_COMPLETED),
        Some(stats.completed)
    );
    assert_eq!(stats.completed, jobs as u64);
    assert_eq!(snapshot.counter_total(counters::SERVICE_FAILED), 0);
    assert_eq!(snapshot.counter_total(counters::SERVICE_DEADLINE_MISSED), 0);

    // Every job recorded exactly one queue wait and one end-to-end
    // latency, and the registry's queue-wait total is the exact sum of
    // the waits each per-job trace carries (both sides record the same
    // `Duration::as_nanos` value).
    let queue_wait = snapshot
        .histogram(counters::SERVICE_QUEUE_WAIT_NS)
        .expect("queue-wait histogram registered");
    assert_eq!(queue_wait.count, jobs as u64);
    let traced_wait: u64 = traces
        .iter()
        .map(|t| {
            t.root
                .counter(counters::SERVICE_QUEUE_WAIT_NS)
                .expect("trace carries queue wait") as u64
        })
        .sum();
    assert_eq!(queue_wait.sum, traced_wait);
    let latency = snapshot
        .histogram(counters::SERVICE_JOB_LATENCY_NS)
        .expect("job-latency histogram registered");
    assert_eq!(latency.count, jobs as u64);
    assert!(latency.sum >= queue_wait.sum, "latency includes queue wait");

    // Both stages recorded one wall-time sample per job.
    for stage in [counters::SPAN_POLY, counters::SPAN_MSM] {
        let h = snapshot
            .histogram_labeled(counters::STAGE_LATENCY_NS, "stage", stage)
            .unwrap_or_else(|| panic!("stage histogram for {stage}"));
        assert_eq!(h.count, jobs as u64, "one {stage} sample per job");
    }

    // The queue drained, and each trace still carries the service spans
    // the snapshot summarizes.
    assert_eq!(snapshot.gauge(counters::SERVICE_QUEUE_DEPTH), Some(0.0));
    for trace in &traces {
        assert!(trace.find(&["service", "queue_wait"]).is_some());
        assert!(trace.find(&["service", "execute", "poly"]).is_some());
        assert!(trace.find(&["service", "execute", "msm"]).is_some());
    }

    // The snapshot survives its own JSON round trip byte-exactly.
    let restored = MetricsSnapshot::from_json(&snapshot.to_json()).expect("round trip");
    assert_eq!(restored.to_json(), snapshot.to_json());
}

fn tiny_workload() -> RequestWorkload {
    RequestWorkload {
        seed: 9,
        requests: vec![RequestSpec {
            curve: RequestCurve::Bn254,
            system: RequestSystem::Groth16,
            constraints: 64,
            count: 3,
            priority: RequestPriority::Normal,
            deadline_ms: None,
        }],
    }
}

#[test]
fn proofs_are_byte_identical_with_metrics_on_and_off() {
    let device = v100();
    let prepared = prepare(&tiny_workload(), &device);
    let fleet_cfg = || ServiceConfig {
        devices: gzkp_runtime::parse_devices("2").unwrap(),
        ..ServiceConfig::default()
    };

    let plain = run_service(&prepared, fleet_cfg(), &device);

    let registry = Arc::new(MetricsRegistry::new());
    let mut cfg = fleet_cfg();
    cfg.metrics = Some(registry.clone());
    let observed = run_service(&prepared, cfg, &device);

    assert_eq!(
        plain.proofs, observed.proofs,
        "metrics must not perturb proof bytes"
    );
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter(counters::SERVICE_COMPLETED), Some(3));
    // Fleet mode registered per-device series for every device.
    let devices = snapshot.label_values("device");
    assert_eq!(devices, vec!["dev0".to_string(), "dev1".to_string()]);
    let staged: u64 = devices
        .iter()
        .filter_map(|d| snapshot.counter_labeled(counters::DEVICE_STAGES, "device", d))
        .sum();
    assert_eq!(staged, 6, "two stages per job across the fleet");
}

#[test]
fn flame_export_covers_the_prover_trace() {
    let (_, traces, _) = run_traced_jobs(1);
    let trace = &traces[0];
    let folded = folded_stacks(trace);
    assert!(!folded.is_empty());

    let mut total = 0u64;
    let mut saw_prover_stack = false;
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("`stack count` lines");
        assert!(
            !stack.is_empty() && stack.split(';').all(|f| !f.is_empty()),
            "well-formed stack: {line}"
        );
        total += count.parse::<u64>().expect("integer self-time");
        if stack.starts_with("service;execute;msm") {
            saw_prover_stack = true;
        }
    }
    assert!(
        saw_prover_stack,
        "prover frames reachable from service root:\n{folded}"
    );

    // Self times sum back to the root span's total (each stack rounds
    // independently, so allow one nanosecond of slack per line).
    let root_ns = trace.find(&["service"]).expect("service span").time_ns;
    let lines = folded.lines().count() as f64;
    assert!(
        (total as f64 - root_ns).abs() <= lines.max(1.0),
        "folded self times ({total}) must sum to the service span ({root_ns})"
    );
}
