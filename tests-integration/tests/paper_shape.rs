//! Paper-shape regression tests: the qualitative claims of the GZKP
//! evaluation must hold in the simulated reproduction — who wins, by
//! roughly what factor, and where the crossovers/OOMs fall. These guard
//! the calibration against accidental regressions.

use gzkp_curves::{bls12_381, bn254, t753};
use gzkp_ff::fields::{Fr254, Fr381, Fr753};
use gzkp_gpu_sim::{gtx1080ti, v100};
use gzkp_msm::{CpuMsm, GzkpMsm, MsmEngine, ScalarVec, StrausMsm, SubMsmPippenger};
use gzkp_ntt::gpu::GpuNttEngine;
use gzkp_ntt::{BaselineGpuNtt, GzkpNtt};
use gzkp_workloads::{SparsityProfile, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Table 5 shape: GZKP NTT beats the bellperson baseline across scales,
/// in the paper's 2.2×–10.3× band (with slack).
#[test]
fn ntt_speedup_band_256bit() {
    let bg = BaselineGpuNtt::new(v100());
    let gz = GzkpNtt::auto::<Fr254>(v100());
    for log_n in [14u32, 18, 20, 24] {
        let s = GpuNttEngine::<Fr254>::cost(&bg, log_n).total_ns()
            / GpuNttEngine::<Fr254>::cost(&gz, log_n).total_ns();
        assert!(s > 1.5 && s < 20.0, "2^{log_n}: speedup {s}");
    }
}

/// Table 5 shape: the 753-bit CPU-vs-GZKP gap is enormous (paper: 218–697×).
#[test]
fn ntt_753_cpu_gap() {
    let gz = GzkpNtt::auto::<Fr753>(v100());
    let t_gpu = GpuNttEngine::<Fr753>::cost(&gz, 20).total_ms();
    let t_cpu = gzkp_bench_cpu_ntt(20);
    let s = t_cpu / t_gpu;
    assert!(s > 100.0, "753-bit speedup {s}");
}

// Local copy of the bench crate's CPU NTT model to avoid a dependency on a
// publish = false bench crate (values asserted in gzkp-bench's own tests).
fn gzkp_bench_cpu_ntt(log_n: u32) -> f64 {
    let n = (1u64 << log_n) as f64;
    let macs = n / 2.0 * log_n as f64 * (2.0 * 414.0 + 2.0 * 4.2);
    95.0 + macs / (0.4 * 28.0 * 0.85) / 1e6
}

/// Table 7 shape: GZKP MSM beats bellperson by mid-single-digit factors at
/// scale, and MINA/Straus by ~an order of magnitude.
#[test]
fn msm_speedup_bands() {
    let bg = SubMsmPippenger::new(v100());
    let straus = StrausMsm::new(v100());
    let gz = GzkpMsm::new(v100());
    for log_n in [18u32, 20, 22] {
        let n = 1usize << log_n;
        let s_bg = MsmEngine::<bls12_381::G1Config>::plan_dense(&bg, n).total_ns()
            / MsmEngine::<bls12_381::G1Config>::plan_dense(&gz, n).total_ns();
        assert!(s_bg > 3.0 && s_bg < 30.0, "2^{log_n} vs BG: {s_bg}");
        let s_mina = MsmEngine::<t753::G1Config>::plan_dense(&straus, n).total_ns()
            / MsmEngine::<t753::G1Config>::plan_dense(&gz, n).total_ns();
        assert!(s_mina > 4.0 && s_mina < 40.0, "2^{log_n} vs MINA: {s_mina}");
    }
}

/// Table 7's "-" rows: Straus exceeds V100 memory at 753-bit beyond 2²²,
/// and the 1080 Ti gives out earlier; GZKP fits everywhere.
#[test]
fn straus_oom_crossover() {
    let s_v100 = StrausMsm::new(v100());
    let gz = GzkpMsm::new(v100());
    assert!(MsmEngine::<t753::G1Config>::fits_in_memory(
        &s_v100,
        1 << 22,
        v100().global_mem_bytes
    ));
    assert!(!MsmEngine::<t753::G1Config>::fits_in_memory(
        &s_v100,
        1 << 24,
        v100().global_mem_bytes
    ));
    let s_ti = StrausMsm::new(gtx1080ti());
    assert!(!MsmEngine::<t753::G1Config>::fits_in_memory(
        &s_ti,
        1 << 22,
        gtx1080ti().global_mem_bytes
    ));
    for log_n in [22u32, 24, 26] {
        assert!(MsmEngine::<t753::G1Config>::fits_in_memory(
            &gz,
            1 << log_n,
            v100().global_mem_bytes
        ));
    }
}

/// §5.2's key claim: with sparse real-world scalars, GZKP's advantage over
/// window-parallel engines grows (the load-imbalance story).
#[test]
fn sparsity_widens_the_gap() {
    let mut rng = StdRng::seed_from_u64(99);
    let n = 1 << 16;
    let dense = WorkloadSpec {
        name: "d",
        vector_size: n,
        sparsity: SparsityProfile::DENSE,
    }
    .sparse_scalar_vec::<Fr381, _>(&mut rng);
    let sparse = WorkloadSpec {
        name: "s",
        vector_size: n,
        sparsity: SparsityProfile::SPARSE,
    }
    .sparse_scalar_vec::<Fr381, _>(&mut rng);
    let bg = SubMsmPippenger::new(v100());
    let gz = GzkpMsm::new(v100());
    let gap = |sv: &ScalarVec| {
        MsmEngine::<bls12_381::G1Config>::plan(&bg, sv).total_ns()
            / MsmEngine::<bls12_381::G1Config>::plan(&gz, sv).total_ns()
    };
    assert!(
        gap(&sparse) > gap(&dense),
        "sparse gap {} must exceed dense gap {}",
        gap(&sparse),
        gap(&dense)
    );
}

/// Fig. 8 ordering: BG > BG w. lib > GZKP-no-GM-shuffle > GZKP at 2²².
#[test]
fn fig8_ablation_ordering() {
    let t = |e: &dyn GpuNttEngine<Fr381>| e.cost(22).total_ns();
    let bg = BaselineGpuNtt::new(v100());
    let bg_lib = BaselineGpuNtt::new(v100()).with_lib();
    let no_shuf = GzkpNtt::no_internal_shuffle::<Fr381>(v100());
    let gz = GzkpNtt::auto::<Fr381>(v100());
    assert!(t(&bg) > t(&bg_lib));
    assert!(t(&bg_lib) > t(&gz));
    assert!(t(&no_shuf) > t(&gz));
}

/// Fig. 10 ordering at 2²⁰ dense: BG > no-LB > no-LB w. lib ≥ GZKP.
#[test]
fn fig10_ablation_ordering() {
    let n = 1 << 20;
    let t = |e: &GzkpMsm| MsmEngine::<bls12_381::G1Config>::plan_dense(e, n).total_ns();
    let bg =
        MsmEngine::<bls12_381::G1Config>::plan_dense(&SubMsmPippenger::new(v100()), n).total_ns();
    let no_lb = t(&GzkpMsm::no_load_balance(v100()));
    let no_lb_lib = t(&GzkpMsm::no_load_balance_with_lib(v100()));
    let full = t(&GzkpMsm::new(v100()));
    assert!(bg > no_lb, "BG {bg} vs no-LB {no_lb}");
    assert!(no_lb > no_lb_lib);
    assert!(no_lb_lib >= full * 0.99);
}

/// The devices differ the right way: everything is slower on the 1080 Ti.
#[test]
fn device_ordering() {
    let gz_v = GzkpNtt::auto::<Fr254>(v100());
    let gz_t = GzkpNtt::auto::<Fr254>(gtx1080ti());
    assert!(
        GpuNttEngine::<Fr254>::cost(&gz_t, 20).total_ns()
            > GpuNttEngine::<Fr254>::cost(&gz_v, 20).total_ns()
    );
    let m_v = GzkpMsm::new(v100());
    let m_t = GzkpMsm::new(gtx1080ti());
    assert!(
        MsmEngine::<bn254::G1Config>::plan_dense(&m_t, 1 << 20).total_ns()
            > MsmEngine::<bn254::G1Config>::plan_dense(&m_v, 1 << 20).total_ns()
    );
}

/// CPU baseline magnitudes track the paper's Table 7 256-bit column
/// (0.07 s … 65.7 s over 2^14 … 2^26) within loose bounds.
#[test]
fn cpu_msm_magnitude_anchors() {
    let cpu = CpuMsm::default();
    let t20 = MsmEngine::<bn254::G1Config>::plan_dense(&cpu, 1 << 20).total_ms() / 1e3;
    assert!(t20 > 0.4 && t20 < 6.0, "2^20: {t20} s (paper 1.48)");
    let t24 = MsmEngine::<bn254::G1Config>::plan_dense(&cpu, 1 << 24).total_ms() / 1e3;
    assert!(t24 > 6.0 && t24 < 70.0, "2^24: {t24} s (paper 17.3)");
}
