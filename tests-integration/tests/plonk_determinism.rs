//! PLONK proof determinism through the shared engines: the proof bytes
//! must be identical at every worker-thread count AND at every device
//! count — a single-device [`GzkpMsm`] and a [`CrossDeviceMsm`] sharding
//! the commitment MSMs across a 2- or 4-device fleet must emit the same
//! transcript bit for bit, because the Fiat–Shamir challenges hash the
//! commitments and any divergence would cascade into a different proof.
//!
//! Everything lives in ONE test function: the thread count is driven by
//! the `GZKP_THREADS` env override, and env mutation must stay
//! sequential within the test binary (see `parallel_determinism.rs`).

use gzkp_curves::pairing::PairingConfig;
use gzkp_curves::{bls12_381, bn254};
use gzkp_gpu_sim::v100;
use gzkp_msm::GzkpMsm;
use gzkp_ntt::GzkpNtt;
use gzkp_plonk::{prove_bytes, setup, verify_bytes, PlonkCircuit};
use gzkp_proof_system::Engines;
use gzkp_runtime::{CrossDeviceMsm, FleetRuntime};
use gzkp_telemetry::NoopSink;
use gzkp_workloads::synthetic::synthetic_circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Proves the same circuit once per (thread count, device count) cell and
/// asserts every run reproduces the single-thread single-device bytes.
fn check_curve<P>(constraints: usize)
where
    P: PairingConfig,
    <P::G1 as gzkp_curves::CurveParams>::Base: gzkp_curves::CoordField,
    <P::G2 as gzkp_curves::CurveParams>::Base: gzkp_curves::CoordField,
    <P::Fq12C as gzkp_ff::ext::Fp12Config>::Fp6C: gzkp_ff::ext::Fp6Config<Fp2C = P::Fq2C>,
    P::Fq2C: gzkp_ff::ext::Fp2Config,
{
    let mut rng = StdRng::seed_from_u64(11);
    let cs = synthetic_circuit::<P::Fr, _>(constraints, &mut rng);
    let circuit = PlonkCircuit::from_r1cs(&cs);
    let (pk, vk) = setup::<P, _>(&circuit, &mut rng).expect("setup");

    let ntt = GzkpNtt::auto::<P::Fr>(v100());
    let local = GzkpMsm::new(v100());

    std::env::set_var("GZKP_THREADS", "1");
    let engines = Engines::<P> {
        ntt: &ntt,
        msm_g1: &local,
        msm_g2: &local,
    };
    let (reference, _) = prove_bytes(&circuit, &pk, &engines, 42, &NoopSink).expect("prove");
    assert!(
        verify_bytes(&vk, circuit.public_inputs(), &reference),
        "reference proof does not verify"
    );

    for threads in ["1", "2", "4"] {
        std::env::set_var("GZKP_THREADS", threads);
        for devs in [1usize, 2, 4] {
            let fleet;
            let cross;
            let engines = if devs == 1 {
                Engines::<P> {
                    ntt: &ntt,
                    msm_g1: &local,
                    msm_g2: &local,
                }
            } else {
                fleet = Arc::new(FleetRuntime::new(vec![v100(); devs]));
                cross = CrossDeviceMsm::new(
                    local.clone(),
                    fleet.clone(),
                    (0..devs).collect(),
                    "plonk.determinism",
                );
                Engines::<P> {
                    ntt: &ntt,
                    msm_g1: &cross,
                    msm_g2: &cross,
                }
            };
            let (got, _) = prove_bytes(&circuit, &pk, &engines, 42, &NoopSink).expect("prove");
            assert!(
                got == reference,
                "PLONK proof diverged at GZKP_THREADS={threads} devices={devs}"
            );
        }
    }
    std::env::remove_var("GZKP_THREADS");
}

#[test]
fn plonk_proof_is_bit_identical_across_threads_and_devices() {
    check_curve::<bn254::Bn254>(1 << 5);
    check_curve::<bls12_381::Bls12_381>(1 << 4);
}
