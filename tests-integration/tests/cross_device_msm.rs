//! Property-based bit-identity of the cross-device MSM path: sharding an
//! MSM's bucket ranges across {2,3,4} simulated devices and merging the
//! partial sums over the P2P fabric must reproduce the single-device
//! [`GzkpMsm`] result *byte for byte* — on both pairing curves, at every
//! worker-thread count, and across repeated runs of the work-stealing
//! pool (different steal interleavings must not change a single bit).
//!
//! Everything lives in ONE test function: the thread count is driven by
//! the `GZKP_THREADS` env override, and env mutation must stay
//! sequential within the test binary (see `parallel_determinism.rs`).

use gzkp_curves::{bls12_381, bn254, compress, random_points, CoordField, CurveParams};
use gzkp_ff::Field;
use gzkp_gpu_sim::v100;
use gzkp_msm::{GzkpMsm, MsmEngine, ScalarVec};
use gzkp_runtime::{CrossDeviceMsm, FleetRuntime};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// One property check: random points/scalars on curve `C`, the reference
/// single-device result, then the cross-device engine at `devs` devices
/// under GZKP_THREADS ∈ {1, 4} — with the 4-thread run repeated so two
/// different steal interleavings of the same shard set are compared.
fn check<C: CurveParams>(seed: u64, n: usize, devs: usize) -> Result<(), String>
where
    C::Base: CoordField,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let pts = random_points::<C, _>(n, &mut rng);
    let scalars: Vec<C::Scalar> = (0..n).map(|_| C::Scalar::random(&mut rng)).collect();
    let sv = ScalarVec::from_field(&scalars);

    let reference = GzkpMsm::new(v100());
    std::env::set_var("GZKP_THREADS", "1");
    let single = compress(
        &MsmEngine::<C>::msm(&reference, &pts, &sv)
            .result
            .to_affine(),
    );

    for threads in ["1", "4", "4"] {
        std::env::set_var("GZKP_THREADS", threads);
        let fleet = Arc::new(FleetRuntime::new(vec![v100(); devs]));
        let engine = CrossDeviceMsm::new(
            reference.clone(),
            fleet.clone(),
            (0..devs).collect(),
            "prop.msm",
        );
        let run = MsmEngine::<C>::msm(&engine, &pts, &sv);
        let got = compress(&run.result.to_affine());
        prop_assert_eq!(
            &got,
            &single,
            "cross-device bytes diverged: devs={} GZKP_THREADS={}",
            devs,
            threads
        );
        // The merge really crossed the P2P path: one transfer per
        // non-primary shard, none for the single-range case.
        prop_assert_eq!(fleet.p2p_transfers(), devs as u64 - 1);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn cross_device_merge_is_bit_identical(seed in 0u64..1000, n in 24usize..128) {
        for devs in [2usize, 3, 4] {
            check::<bn254::G1Config>(seed, n, devs)?;
            check::<bls12_381::G1Config>(seed ^ 0x5a5a, n, devs)?;
        }
        std::env::remove_var("GZKP_THREADS");
    }
}
