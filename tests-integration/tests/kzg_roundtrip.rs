//! Property-based round-trip of the KZG commitment scheme through the
//! shared MSM engine: commit/open/verify must succeed on honest claims
//! and reject tampered ones, on both pairing curves, and the commitment
//! bytes must be identical at every worker-thread count (the SRS MSM
//! rides the same bucket-sorted Pippenger kernels as Groth16, so KZG
//! inherits its bit-determinism guarantees).
//!
//! Everything lives in ONE test function: the thread count is driven by
//! the `GZKP_THREADS` env override, and env mutation must stay
//! sequential within the test binary (see `parallel_determinism.rs`).

use gzkp_curves::pairing::PairingConfig;
use gzkp_curves::{bls12_381, bn254, compress, CoordField, CurveParams};
use gzkp_ff::ext::{Fp12Config, Fp2Config, Fp6Config};
use gzkp_ff::Field;
use gzkp_gpu_sim::v100;
use gzkp_msm::GzkpMsm;
use gzkp_plonk::kzg::{self, KzgSrs};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One property check on curve `P`: random polynomial of `n` coefficients,
/// SRS from a seeded trusted setup, commit + open at a random point, then
/// verify the honest opening and reject two tampered variants. Runs under
/// GZKP_THREADS ∈ {1, 4} and asserts the commitment bytes never change.
fn check<P: PairingConfig>(seed: u64, n: usize) -> Result<(), String>
where
    <P::G1 as CurveParams>::Base: CoordField,
    <P::Fq12C as Fp12Config>::Fp6C: Fp6Config<Fp2C = P::Fq2C>,
    P::Fq2C: Fp2Config,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let srs = KzgSrs::<P>::setup(n, &mut rng);
    let coeffs: Vec<P::Fr> = (0..n).map(|_| P::Fr::random(&mut rng)).collect();
    let point = P::Fr::random(&mut rng);
    let msm = GzkpMsm::new(v100());

    let mut reference_bytes = None;
    for threads in ["1", "4"] {
        std::env::set_var("GZKP_THREADS", threads);
        let commitment = srs.commit(&coeffs, &msm).result.to_affine();
        let bytes = compress(&commitment);
        match &reference_bytes {
            None => reference_bytes = Some(bytes),
            Some(reference) => prop_assert_eq!(
                &bytes,
                reference,
                "KZG commitment bytes diverged at GZKP_THREADS={}",
                threads
            ),
        }

        let opening = kzg::open(&srs, &coeffs, point, &msm);
        prop_assert_eq!(
            opening.value,
            kzg::evaluate_poly(&coeffs, point),
            "opening value disagrees with direct evaluation"
        );
        prop_assert!(
            kzg::verify(&srs, &commitment, point, &opening),
            "honest opening rejected at GZKP_THREADS={}",
            threads
        );

        // Tampered evaluation: claim p(z) + 1.
        let mut bad_value = opening.clone();
        bad_value.value += P::Fr::one();
        prop_assert!(
            !kzg::verify(&srs, &commitment, point, &bad_value),
            "tampered evaluation accepted"
        );

        // Tampered witness: substitute the SRS generator.
        let mut bad_witness = opening.clone();
        bad_witness.witness = srs.g1();
        prop_assert!(
            !kzg::verify(&srs, &commitment, point, &bad_witness),
            "tampered witness accepted"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn kzg_round_trips_and_rejects_tampering(seed in 0u64..1000, n in 2usize..48) {
        check::<bn254::Bn254>(seed, n)?;
        check::<bls12_381::Bls12_381>(seed ^ 0xa5a5, n)?;
        std::env::remove_var("GZKP_THREADS");
    }
}
