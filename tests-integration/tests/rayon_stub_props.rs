//! Property tests for the vendored `rayon` stub's new combinators:
//! `reduce`/`fold` and `par_chunks` must agree with their sequential
//! counterparts on arbitrary inputs — including non-commutative (but
//! associative) operators, which pin the chunk-order guarantee the
//! deterministic prover relies on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

fn rand_vec(len: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen()).collect()
}

fn rand_words(len: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let w = rng.gen_range(0usize..4);
            (0..w)
                .map(|_| char::from(b'a' + rng.gen_range(0u8..26)))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reduce_matches_sequential_sum(len in 0usize..200, seed in 0u64..1000) {
        let xs = rand_vec(len, seed);
        let par: u64 = xs
            .clone()
            .into_par_iter()
            .reduce(|| 0u64, |a, b| a.wrapping_add(b));
        let seq = xs.iter().fold(0u64, |a, b| a.wrapping_add(*b));
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn reduce_preserves_chunk_order(len in 0usize..120, seed in 0u64..1000) {
        // String concatenation is associative but not commutative: any
        // chunk reordering or double-count would change the result.
        let xs = rand_words(len, seed);
        let par = xs
            .clone()
            .into_par_iter()
            .reduce(String::new, |a, b| a + &b);
        let seq: String = xs.concat();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn fold_partials_cover_every_item_once(len in 0usize..200, seed in 0u64..1000) {
        let xs = rand_vec(len, seed);
        let partials: Vec<(u64, u64)> = xs
            .clone()
            .into_par_iter()
            .fold(|| (0u64, 0u64), |(n, s), x| (n + 1, s.wrapping_add(x)))
            .collect();
        let total_n: u64 = partials.iter().map(|(n, _)| n).sum();
        let total_s = partials.iter().fold(0u64, |a, (_, s)| a.wrapping_add(*s));
        prop_assert_eq!(total_n, xs.len() as u64);
        prop_assert_eq!(total_s, xs.iter().fold(0u64, |a, x| a.wrapping_add(*x)));
    }

    #[test]
    fn par_chunks_partition_the_slice(
        len in 0usize..300,
        seed in 0u64..1000,
        chunk in 1usize..40,
    ) {
        let xs = rand_vec(len, seed);
        let chunks: Vec<Vec<u64>> = xs
            .par_chunks(chunk)
            .map(<[u64]>::to_vec)
            .collect();
        // Concatenating the chunks in order reproduces the input exactly.
        let flat: Vec<u64> = chunks.iter().flatten().copied().collect();
        prop_assert_eq!(&flat, &xs);
        // Every chunk but the last has exactly `chunk` elements.
        for (i, c) in chunks.iter().enumerate() {
            if i + 1 < chunks.len() {
                prop_assert_eq!(c.len(), chunk);
            } else {
                prop_assert!(!c.is_empty() && c.len() <= chunk);
            }
        }
    }

    #[test]
    fn indexed_map_preserves_order(len in 0usize..200, seed in 0u64..1000) {
        let xs = rand_vec(len, seed);
        let got: Vec<(usize, u64)> = xs
            .clone()
            .into_par_iter()
            .enumerate()
            .map(|(i, x)| (i, x.wrapping_mul(2)))
            .collect();
        let expect: Vec<(usize, u64)> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| (i, x.wrapping_mul(2)))
            .collect();
        prop_assert_eq!(got, expect);
    }
}
