//! Property-based cross-engine equivalence: every MSM engine computes the
//! same inner product; every NTT engine computes the same transform — over
//! random inputs, on multiple curves and fields.

use gzkp_curves::{bls12_381, bn254, compress, random_points, t753};
use gzkp_ff::fields::{Fr254, Fr381, Fr753};
use gzkp_ff::{Field, PrimeField};
use gzkp_gpu_sim::v100;
use gzkp_msm::{
    naive_msm, CpuMsm, GzkpMsm, MsmEngine, ScalarVec, SignedGzkpMsm, StrausMsm, SubMsmPippenger,
};
use gzkp_ntt::gpu::GpuNttEngine;
use gzkp_ntt::{BaselineGpuNtt, CpuNtt, Direction, GzkpNtt, Radix2Domain, TwiddleMode};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scalars_from_seed<F: PrimeField>(n: usize, seed: u64, sparse: bool) -> Vec<F> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if sparse && i % 3 != 2 {
                F::from_u64((i % 2) as u64)
            } else {
                F::random(&mut rng)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn msm_engines_agree_bn254(seed in 0u64..1000, n in 1usize..80, sparse in any::<bool>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = random_points::<bn254::G1Config, _>(n, &mut rng);
        let scalars = scalars_from_seed::<Fr254>(n, seed ^ 0xabc, sparse);
        let sv = ScalarVec::from_field(&scalars);
        let expect = naive_msm(&pts, &sv);
        prop_assert_eq!(CpuMsm::serial().msm(&pts, &sv).result, expect);
        prop_assert_eq!(CpuMsm::default().msm(&pts, &sv).result, expect);
        prop_assert_eq!(SubMsmPippenger::new(v100()).msm(&pts, &sv).result, expect);
        prop_assert_eq!(StrausMsm::new(v100()).msm(&pts, &sv).result, expect);
        prop_assert_eq!(GzkpMsm::new(v100()).msm(&pts, &sv).result, expect);
        prop_assert_eq!(
            SignedGzkpMsm::new(GzkpMsm::new(v100())).msm(&pts, &sv).result,
            expect
        );
    }

    #[test]
    fn msm_engines_agree_t753(seed in 0u64..1000, n in 1usize..24) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = random_points::<t753::G1Config, _>(n, &mut rng);
        let scalars = scalars_from_seed::<Fr753>(n, seed, false);
        let sv = ScalarVec::from_field(&scalars);
        let expect = naive_msm(&pts, &sv);
        prop_assert_eq!(CpuMsm::serial().msm(&pts, &sv).result, expect);
        prop_assert_eq!(GzkpMsm::new(v100()).msm(&pts, &sv).result, expect);
    }

    #[test]
    fn ntt_engines_agree(seed in 0u64..1000, log_n in 1u32..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 1usize << log_n;
        let d = Radix2Domain::<Fr381>::new(n).unwrap();
        let data: Vec<Fr381> = (0..n).map(|_| Fr381::random(&mut rng)).collect();
        let mut expect = data.clone();
        CpuNtt::reference().transform(&d, &mut expect, Direction::Forward);

        for engine in [
            Box::new(BaselineGpuNtt::new(v100())) as Box<dyn GpuNttEngine<Fr381>>,
            Box::new(GzkpNtt::auto::<Fr381>(v100())),
            Box::new(GzkpNtt::no_internal_shuffle::<Fr381>(v100())),
        ] {
            let mut v = data.clone();
            engine.transform(&d, &mut v, Direction::Forward);
            prop_assert_eq!(&v, &expect, "engine {}", engine.name());
        }
        let mut v = data.clone();
        CpuNtt { mode: TwiddleMode::Recompute, parallel: false }
            .transform(&d, &mut v, Direction::Forward);
        prop_assert_eq!(&v, &expect);
    }

    #[test]
    fn sharded_msm_byte_identical_bn254(seed in 0u64..1000, n in 1usize..80, sparse in any::<bool>()) {
        // Bucket-range sharding (the memory planner's fallback for tasks
        // that exceed device memory) must merge to the exact group element
        // of the unsharded run — compare compressed bytes, not just group
        // equality, for every shard count.
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = random_points::<bn254::G1Config, _>(n, &mut rng);
        let scalars = scalars_from_seed::<Fr254>(n, seed ^ 0x5a5a, sparse);
        let sv = ScalarVec::from_field(&scalars);
        let engine = GzkpMsm::new(v100());
        let whole = compress(&engine.msm(&pts, &sv).result.to_affine());
        for shards in [1usize, 2, 3, 7] {
            let run = engine.msm_sharded(&pts, &sv, shards);
            prop_assert_eq!(
                compress(&run.result.to_affine()),
                whole.clone(),
                "shards {}",
                shards
            );
        }
    }

    #[test]
    fn sharded_msm_byte_identical_bls12_381(seed in 0u64..1000, n in 1usize..80, sparse in any::<bool>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = random_points::<bls12_381::G1Config, _>(n, &mut rng);
        let scalars = scalars_from_seed::<Fr381>(n, seed ^ 0xa5a5, sparse);
        let sv = ScalarVec::from_field(&scalars);
        let engine = GzkpMsm::new(v100());
        let whole = compress(&engine.msm(&pts, &sv).result.to_affine());
        for shards in [1usize, 2, 3, 7] {
            let run = engine.msm_sharded(&pts, &sv, shards);
            prop_assert_eq!(
                compress(&run.result.to_affine()),
                whole.clone(),
                "shards {}",
                shards
            );
        }
    }

    #[test]
    fn msm_linearity(seed in 0u64..1000, n in 2usize..32) {
        // MSM(s, P) + MSM(t, P) == MSM(s + t, P) over Fr (prime-order group).
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = random_points::<bls12_381::G1Config, _>(n, &mut rng);
        let s: Vec<Fr381> = (0..n).map(|_| Fr381::random(&mut rng)).collect();
        let t: Vec<Fr381> = (0..n).map(|_| Fr381::random(&mut rng)).collect();
        let st: Vec<Fr381> = s.iter().zip(&t).map(|(a, b)| *a + *b).collect();
        let e = GzkpMsm::new(v100());
        let r1 = e.msm(&pts, &ScalarVec::from_field(&s)).result;
        let r2 = e.msm(&pts, &ScalarVec::from_field(&t)).result;
        let r3 = e.msm(&pts, &ScalarVec::from_field(&st)).result;
        prop_assert_eq!(r1.add(&r2), r3);
    }
}

#[test]
fn poly_pipeline_cross_engine() {
    // The full 7-NTT POLY stage must agree between the CPU reference and
    // both GPU engines for a real constraint system.
    use gzkp_groth16::qap::{poly_stage, poly_stage_cpu, QapWitness};
    use gzkp_workloads::synthetic::synthetic_circuit;
    let mut rng = StdRng::seed_from_u64(55);
    let cs = synthetic_circuit::<Fr254, _>(700, &mut rng);
    let qap = QapWitness::from_r1cs(&cs).unwrap();
    let expect = poly_stage_cpu(&qap);
    let gz = GzkpNtt::auto::<Fr254>(v100());
    let bg = BaselineGpuNtt::new(v100());
    assert_eq!(poly_stage(&qap, &gz).h, expect);
    assert_eq!(poly_stage(&qap, &bg).h, expect);
}
