//! Proptest satellite for ISSUE 8: proof-checkpoint round-trips across
//! hosts.
//!
//! For random circuits, blinding seeds, interrupt points (after the POLY
//! stage or between any two MSM steps) and kernel thread caps
//! (`GZKP_THREADS` ∈ {1, 4}), serializing the mid-proof checkpoint,
//! decoding it on a "fresh host" (newly constructed engines), and
//! finishing there must yield a proof byte-identical to the
//! uninterrupted single-host run. Covers both supported curves.

use gzkp_gpu_sim::v100;
use gzkp_groth16::prove::{prove, prove_poly, ProverEngines};
use gzkp_groth16::{proof_to_bytes, setup, ProofCheckpoint, MSM_STEPS};
use gzkp_msm::GzkpMsm;
use gzkp_ntt::GzkpNtt;
use gzkp_telemetry::NoopSink;
use gzkp_workloads::synthetic::synthetic_circuit;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// `GZKP_THREADS` is process-global and re-read per parallel call;
/// serialize the cases that set it so the two curves' proptests cannot
/// race each other's caps.
static ENV_LOCK: Mutex<()> = Mutex::new(());

macro_rules! round_trip_case {
    ($curve:ty, $fr:ty, $constraints:expr, $seed:expr, $interrupt:expr, $threads:expr) => {{
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var("GZKP_THREADS", $threads.to_string());

        let mut rng = StdRng::seed_from_u64($seed);
        let cs = synthetic_circuit::<$fr, _>($constraints, &mut rng);
        let (pk, _vk) = setup::<$curve, _>(&cs, &mut rng).expect("setup");
        let blind_seed = $seed.wrapping_mul(0x9e37_79b9).wrapping_add(17);

        // Host A: uninterrupted ground truth, then the interrupted run.
        let ntt_a = GzkpNtt::auto::<$fr>(v100());
        let (g1_a, g2_a) = (GzkpMsm::new(v100()), GzkpMsm::new(v100()));
        let engines_a = ProverEngines::<$curve> {
            ntt: &ntt_a,
            msm_g1: &g1_a,
            msm_g2: &g2_a,
        };
        let (expected, _) = prove(&cs, &pk, &engines_a, &mut StdRng::seed_from_u64(blind_seed))
            .expect("uninterrupted prove");
        let expected = proof_to_bytes(&expected);

        let poly = prove_poly::<$curve>(&cs, &pk, &ntt_a, &NoopSink).expect("poly stage");
        let mut ckpt = ProofCheckpoint::<$curve>::from_poly(blind_seed, poly);
        for step in 0..$interrupt {
            ckpt.run_step(&pk, &engines_a, step, &NoopSink)
                .expect("msm step before interrupt");
        }
        let bytes = ckpt.to_bytes();
        std::env::remove_var("GZKP_THREADS");

        // Host B: decode the wire bytes on fresh engines and finish.
        let resumed = ProofCheckpoint::<$curve>::from_bytes(&bytes).expect("checkpoint decodes");
        prop_assert_eq!(resumed.steps_done(), $interrupt);
        prop_assert_eq!(resumed.seed, blind_seed);
        let mut resumed = resumed;
        let ntt_b = GzkpNtt::auto::<$fr>(v100());
        let (g1_b, g2_b) = (GzkpMsm::new(v100()), GzkpMsm::new(v100()));
        let engines_b = ProverEngines::<$curve> {
            ntt: &ntt_b,
            msm_g1: &g1_b,
            msm_g2: &g2_b,
        };
        while let Some(step) = resumed.next_step() {
            resumed
                .run_step(&pk, &engines_b, step, &NoopSink)
                .expect("resumed msm step");
        }
        let (proof, _) = resumed
            .finish(&pk, &mut StdRng::seed_from_u64(blind_seed))
            .expect("finish on host B");
        prop_assert_eq!(
            proof_to_bytes(&proof),
            expected,
            "resume after {} msm steps with {} threads diverged",
            $interrupt,
            $threads
        );
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn bn254_checkpoint_round_trip_is_byte_identical(
        constraints in 32usize..128,
        seed in any::<u64>(),
        interrupt in 0usize..=MSM_STEPS,
        threads_sel in 0usize..2,
    ) {
        let threads = [1usize, 4][threads_sel];
        round_trip_case!(
            gzkp_curves::bn254::Bn254,
            gzkp_curves::bn254::Fr,
            constraints, seed, interrupt, threads
        );
    }

    #[test]
    fn bls12_381_checkpoint_round_trip_is_byte_identical(
        constraints in 32usize..96,
        seed in any::<u64>(),
        interrupt in 0usize..=MSM_STEPS,
        threads_sel in 0usize..2,
    ) {
        let threads = [1usize, 4][threads_sel];
        round_trip_case!(
            gzkp_curves::bls12_381::Bls12_381,
            gzkp_curves::bls12_381::Fr,
            constraints, seed, interrupt, threads
        );
    }
}
