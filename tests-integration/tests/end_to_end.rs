//! End-to-end Groth16 integration: every engine combination must produce
//! proofs that verify, on both pairing curves.

use gzkp_curves::bls12_381::Bls12_381;
use gzkp_curves::bn254::Bn254;
use gzkp_curves::pairing::PairingConfig;
use gzkp_ff::ext::{Fp12Config, Fp6Config};
use gzkp_ff::Field;
use gzkp_gpu_sim::{gtx1080ti, v100};
use gzkp_groth16::gadgets::{mimc_constants, MerkleMembership};
use gzkp_groth16::r1cs::{Circuit, ConstraintSystem, LinearCombination};
use gzkp_groth16::{prove, prove_plan, setup, verify, ProverEngines};
use gzkp_msm::{CpuMsm, GzkpMsm, MsmEngine, StrausMsm, SubMsmPippenger};
use gzkp_ntt::gpu::GpuNttEngine;
use gzkp_ntt::{BaselineGpuNtt, GzkpNtt};
use gzkp_workloads::synthetic::synthetic_circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Small multiplication circuit over a generic pairing config.
fn mul_circuit<P: PairingConfig>(product: u64, a: u64, b: u64) -> ConstraintSystem<P::Fr> {
    let mut cs = ConstraintSystem::<P::Fr>::new();
    let out = cs.alloc_input(P::Fr::from_u64(product));
    let x = cs.alloc(P::Fr::from_u64(a));
    let y = cs.alloc(P::Fr::from_u64(b));
    cs.enforce(
        LinearCombination::from_var(x),
        LinearCombination::from_var(y),
        LinearCombination::from_var(out),
    );
    cs
}

fn roundtrip_with_engines<P: PairingConfig>(
    ntt: &dyn GpuNttEngine<P::Fr>,
    msm_g1: &dyn MsmEngine<P::G1>,
    msm_g2: &dyn MsmEngine<P::G2>,
    seed: u64,
) where
    <P::Fq12C as Fp12Config>::Fp6C: Fp6Config<Fp2C = P::Fq2C>,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let cs = mul_circuit::<P>(221, 13, 17);
    let (pk, vk) = setup::<P, _>(&cs, &mut rng).unwrap();
    let engines = ProverEngines::<P> {
        ntt,
        msm_g1,
        msm_g2,
    };
    let (proof, report) = prove(&cs, &pk, &engines, &mut rng).unwrap();
    assert!(report.total_ms() > 0.0);
    assert!(verify::<P>(&vk, &proof, &[P::Fr::from_u64(221)]));
    assert!(!verify::<P>(&vk, &proof, &[P::Fr::from_u64(222)]));
    // Tampered proof components must fail.
    let mut bad = proof.clone();
    bad.a = bad.a.neg();
    assert!(!verify::<P>(&vk, &bad, &[P::Fr::from_u64(221)]));
}

#[test]
fn bn254_all_msm_engines() {
    let ntt = GzkpNtt::auto::<gzkp_curves::bn254::Fr>(v100());
    let gzkp1 = GzkpMsm::new(v100());
    let gzkp2 = GzkpMsm::new(v100());
    roundtrip_with_engines::<Bn254>(&ntt, &gzkp1, &gzkp2, 1);

    let cpu1 = CpuMsm::serial();
    let cpu2 = CpuMsm::serial();
    roundtrip_with_engines::<Bn254>(&ntt, &cpu1, &cpu2, 2);

    let bg1 = SubMsmPippenger::new(v100());
    let bg2 = SubMsmPippenger::new(v100());
    roundtrip_with_engines::<Bn254>(&ntt, &bg1, &bg2, 3);

    let st1 = StrausMsm::new(v100());
    let st2 = StrausMsm::new(v100());
    roundtrip_with_engines::<Bn254>(&ntt, &st1, &st2, 4);
}

#[test]
fn bn254_all_ntt_engines() {
    let msm1 = GzkpMsm::new(v100());
    let msm2 = GzkpMsm::new(v100());
    let baseline = BaselineGpuNtt::new(v100());
    roundtrip_with_engines::<Bn254>(&baseline, &msm1, &msm2, 5);
    let no_shuffle = GzkpNtt::no_internal_shuffle::<gzkp_curves::bn254::Fr>(v100());
    roundtrip_with_engines::<Bn254>(&no_shuffle, &msm1, &msm2, 6);
    let ti = GzkpNtt::auto::<gzkp_curves::bn254::Fr>(gtx1080ti());
    roundtrip_with_engines::<Bn254>(&ti, &msm1, &msm2, 7);
}

#[test]
fn bls12_381_roundtrip() {
    let ntt = GzkpNtt::auto::<gzkp_curves::bls12_381::Fr>(v100());
    let msm1 = GzkpMsm::new(v100());
    let msm2 = GzkpMsm::new(v100());
    roundtrip_with_engines::<Bls12_381>(&ntt, &msm1, &msm2, 8);
}

#[test]
fn merkle_membership_proof_bn254() {
    let mut rng = StdRng::seed_from_u64(77);
    type Fr = gzkp_curves::bn254::Fr;
    let constants = mimc_constants::<Fr>();
    let leaf = Fr::random(&mut rng);
    let path: Vec<Fr> = (0..4).map(|_| Fr::random(&mut rng)).collect();
    let directions = vec![true, false, false, true];
    let root = MerkleMembership::compute_root(leaf, &path, &directions, &constants);
    let circuit = MerkleMembership {
        leaf,
        path,
        directions,
        root,
    };
    let mut cs = ConstraintSystem::new();
    circuit.synthesize(&mut cs).unwrap();

    let (pk, vk) = setup::<Bn254, _>(&cs, &mut rng).unwrap();
    let ntt = GzkpNtt::auto::<Fr>(v100());
    let msm1 = GzkpMsm::new(v100());
    let msm2 = GzkpMsm::new(v100());
    let engines = ProverEngines::<Bn254> {
        ntt: &ntt,
        msm_g1: &msm1,
        msm_g2: &msm2,
    };
    let (proof, _) = prove(&cs, &pk, &engines, &mut rng).unwrap();
    assert!(verify::<Bn254>(&vk, &proof, &[root]));
    assert!(!verify::<Bn254>(&vk, &proof, &[root + Fr::one()]));
}

#[test]
fn unsatisfied_circuit_cannot_prove() {
    let mut rng = StdRng::seed_from_u64(9);
    let mut cs = mul_circuit::<Bn254>(221, 13, 18); // 13*18 != 221
    let cs2 = mul_circuit::<Bn254>(221, 13, 17);
    let (pk, _) = setup::<Bn254, _>(&cs2, &mut rng).unwrap();
    let ntt = GzkpNtt::auto::<gzkp_curves::bn254::Fr>(v100());
    let msm1 = GzkpMsm::new(v100());
    let msm2 = GzkpMsm::new(v100());
    let engines = ProverEngines::<Bn254> {
        ntt: &ntt,
        msm_g1: &msm1,
        msm_g2: &msm2,
    };
    assert!(prove(&cs, &pk, &engines, &mut rng).is_err());
    let _ = &mut cs;
}

#[test]
fn prove_plan_reports_both_stages() {
    let mut rng = StdRng::seed_from_u64(10);
    let cs: ConstraintSystem<gzkp_curves::bn254::Fr> = synthetic_circuit(512, &mut rng);
    let ntt = GzkpNtt::auto::<gzkp_curves::bn254::Fr>(v100());
    let msm1 = GzkpMsm::new(v100());
    let msm2 = GzkpMsm::new(v100());
    let engines = ProverEngines::<Bn254> {
        ntt: &ntt,
        msm_g1: &msm1,
        msm_g2: &msm2,
    };
    let report = prove_plan(&cs, &engines).unwrap();
    assert!(report.poly_ms() > 0.0);
    assert!(report.msm_ms() > 0.0);
    // Five MSMs must be present in the report.
    let labels: Vec<&str> = report
        .msm
        .kernels
        .iter()
        .map(|k| k.name.split('.').next().unwrap())
        .collect();
    for want in ["a_query", "b_g1", "h_query", "l_query", "b_g2"] {
        assert!(labels.contains(&want), "missing MSM {want}");
    }
}
