//! Cross-crate telemetry tests: the prover's span tree must match the
//! paper's pipeline shape (7 NTTs in POLY, 5 MSMs), counters must be
//! populated, the JSON trace must round-trip, and the no-op sink path
//! must be bit-identical to the plain prover.

use gzkp_curves::bn254::{Bn254, Fr};
use gzkp_ff::Field;
use gzkp_gpu_sim::v100;
use gzkp_groth16::r1cs::{ConstraintSystem, LinearCombination};
use gzkp_groth16::{prove, prove_with_telemetry, setup, verify, ProveReport, ProverEngines};
use gzkp_msm::GzkpMsm;
use gzkp_ntt::GzkpNtt;
use gzkp_telemetry::{counters, NoopSink, Trace, TraceRecorder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small multiplication circuit with a few constraints and witnesses.
fn sample_cs() -> ConstraintSystem<Fr> {
    let mut cs = ConstraintSystem::new();
    let out = cs.alloc_input(Fr::from_u64(720));
    let a = cs.alloc(Fr::from_u64(6));
    let b = cs.alloc(Fr::from_u64(8));
    let c = cs.alloc(Fr::from_u64(15));
    let ab = cs.alloc(Fr::from_u64(48));
    cs.enforce(
        LinearCombination::from_var(a),
        LinearCombination::from_var(b),
        LinearCombination::from_var(ab),
    );
    cs.enforce(
        LinearCombination::from_var(ab),
        LinearCombination::from_var(c),
        LinearCombination::from_var(out),
    );
    cs.is_satisfied().unwrap();
    cs
}

fn traced_prove() -> Trace {
    let mut rng = StdRng::seed_from_u64(7);
    let cs = sample_cs();
    let (pk, vk) = setup::<Bn254, _>(&cs, &mut rng).expect("setup");
    let ntt = GzkpNtt::auto::<Fr>(v100());
    let msm = GzkpMsm::new(v100());
    let msm_g2 = GzkpMsm::new(v100());
    let engines = ProverEngines::<Bn254> {
        ntt: &ntt,
        msm_g1: &msm,
        msm_g2: &msm_g2,
    };
    let recorder = TraceRecorder::new(v100().name);
    let (proof, _) = prove_with_telemetry(&cs, &pk, &engines, &mut rng, &recorder).expect("prove");
    assert!(verify::<Bn254>(&vk, &proof, &[Fr::from_u64(720)]));
    recorder.finish()
}

#[test]
fn span_tree_matches_paper_pipeline() {
    let trace = traced_prove();

    // POLY: exactly the paper's seven NTTs, in order.
    let poly = trace.find(&["prove", "poly"]).expect("poly span");
    let ntt_names: Vec<&str> = poly.children.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(
        ntt_names,
        ["ntt[0]", "ntt[1]", "ntt[2]", "ntt[3]", "ntt[4]", "ntt[5]", "ntt[6]"]
    );
    for ntt in &poly.children {
        assert!(
            ntt.counter(counters::NTT_FIELD_MULS).unwrap_or(0.0) > 0.0,
            "{} must count field muls",
            ntt.name
        );
        assert!(
            ntt.counter(counters::MAC_OPS).unwrap_or(0.0) > 0.0,
            "{} must roll up kernel MACs",
            ntt.name
        );
        assert!(
            !ntt.kernels.is_empty(),
            "{} must carry kernel reports",
            ntt.name
        );
        assert!(ntt.time_ns > 0.0);
    }

    // MSM: the five inner products of §5.2.
    let msm = trace.find(&["prove", "msm"]).expect("msm span");
    let msm_names: Vec<&str> = msm.children.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(msm_names, ["a", "b_g1", "h", "l", "b_g2"]);
    for child in &msm.children {
        assert!(
            child.counter(counters::MSM_PADD).unwrap_or(0.0) > 0.0,
            "{} must count PADDs",
            child.name
        );
        assert!(
            child.value(counters::PEAK_DEVICE_BYTES).unwrap_or(0.0) > 0.0,
            "{} must report peak device memory",
            child.name
        );
        assert!(!child.kernels.is_empty());
        assert!(
            child
                .histograms
                .iter()
                .any(|h| h.name == "bucket_occupancy"),
            "{} must carry a bucket-occupancy histogram",
            child.name
        );
    }

    // Rollups visible from the root.
    let prove_span = trace.find(&["prove"]).expect("prove span");
    assert!(prove_span.counter_deep(counters::MAC_OPS) > 0.0);
    assert!(prove_span.counter_deep(counters::DRAM_SECTORS) > 0.0);
    assert!(prove_span.time_ns >= poly.time_ns + msm.time_ns);
}

#[test]
fn plonk_span_tree_uses_per_backend_stage_labels() {
    use gzkp_plonk::PlonkCircuit;
    use gzkp_proof_system::Engines;

    let mut rng = StdRng::seed_from_u64(21);
    let cs = sample_cs();
    let circuit = PlonkCircuit::from_r1cs(&cs);
    let (pk, vk) = gzkp_plonk::setup::<Bn254, _>(&circuit, &mut rng).expect("setup");
    let ntt = GzkpNtt::auto::<Fr>(v100());
    let msm = GzkpMsm::new(v100());
    let engines = Engines::<Bn254> {
        ntt: &ntt,
        msm_g1: &msm,
        msm_g2: &msm,
    };
    let recorder = TraceRecorder::new(v100().name);
    let (bytes, _) = gzkp_plonk::prove_bytes(&circuit, &pk, &engines, 9, &recorder).expect("prove");
    assert!(gzkp_plonk::verify_bytes::<Bn254>(
        &vk,
        circuit.public_inputs(),
        &bytes
    ));
    let trace = recorder.finish();

    // The MSM stage carries PLONK's nine commitment/opening MSMs under
    // the per-backend labels `zkprof render`/`zkserve top` look up via
    // `msm_stage_spans`, not Groth16's five (the stage also nests its
    // coset-NTT helper spans, which we skip here).
    let stages = counters::msm_stage_spans(counters::SYSTEM_PLONK);
    let msm_span = trace.find(&["prove", "msm"]).expect("msm span");
    let commits: Vec<_> = msm_span
        .children
        .iter()
        .filter(|c| stages.contains(&c.name.as_str()))
        .collect();
    let names: Vec<&str> = commits.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names.as_slice(), stages);
    for child in commits {
        assert!(
            child.counter(counters::MSM_PADD).unwrap_or(0.0) > 0.0,
            "{} must count PADDs through the shared engine",
            child.name
        );
        assert!(!child.kernels.is_empty());
    }

    // And the rendered view labels the PLONK stages.
    let rendered = gzkp_telemetry::render_trace(&trace);
    assert!(rendered.contains("wires_a"));
    assert!(rendered.contains("open_zw"));
}

#[test]
fn trace_json_roundtrips_through_disk_format() {
    let trace = traced_prove();
    let json = trace.to_json();
    let back = Trace::from_json(&json).expect("parse");
    assert_eq!(back.schema_version, gzkp_telemetry::SCHEMA_VERSION);
    assert_eq!(trace, back);
    // And the rendered view still contains the pipeline stages.
    let rendered = gzkp_telemetry::render_trace(&back);
    assert!(rendered.contains("prove"));
    assert!(rendered.contains("ntt[6]"));
    assert!(rendered.contains("b_g2"));
}

#[test]
fn prove_report_roundtrips_as_json() {
    let mut rng = StdRng::seed_from_u64(11);
    let cs = sample_cs();
    let (pk, _) = setup::<Bn254, _>(&cs, &mut rng).expect("setup");
    let ntt = GzkpNtt::auto::<Fr>(v100());
    let msm = GzkpMsm::new(v100());
    let msm_g2 = GzkpMsm::new(v100());
    let engines = ProverEngines::<Bn254> {
        ntt: &ntt,
        msm_g1: &msm,
        msm_g2: &msm_g2,
    };
    let (_, report) = prove(&cs, &pk, &engines, &mut rng).expect("prove");

    let json = serde_json::to_string_pretty(&report).expect("serialize");
    let back: ProveReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(report.poly.kernels.len(), back.poly.kernels.len());
    assert_eq!(report.msm.kernels.len(), back.msm.kernels.len());
    assert!((report.total_ms() - back.total_ms()).abs() < 1e-12);
    for (k, kb) in report.msm.kernels.iter().zip(&back.msm.kernels) {
        assert_eq!(k.name, kb.name);
        assert!((k.time_ns - kb.time_ns).abs() < 1e-9);
    }
}

#[test]
fn noop_sink_path_is_identical_to_plain_prove() {
    // `prove` delegates to `prove_with_telemetry(&NoopSink)`; verify the
    // explicit no-op path produces the exact same proof and report as a
    // recorded run with the same RNG seed (telemetry must not perturb
    // the computation).
    let cs = sample_cs();
    let mut rng = StdRng::seed_from_u64(3);
    let (pk, _) = setup::<Bn254, _>(&cs, &mut rng).expect("setup");
    let ntt = GzkpNtt::auto::<Fr>(v100());
    let msm = GzkpMsm::new(v100());
    let msm_g2 = GzkpMsm::new(v100());
    let engines = ProverEngines::<Bn254> {
        ntt: &ntt,
        msm_g1: &msm,
        msm_g2: &msm_g2,
    };

    let mut rng1 = StdRng::seed_from_u64(99);
    let (proof1, report1) = prove(&cs, &pk, &engines, &mut rng1).expect("prove");
    let mut rng2 = StdRng::seed_from_u64(99);
    let (proof2, report2) =
        prove_with_telemetry(&cs, &pk, &engines, &mut rng2, &NoopSink).expect("prove");
    let mut rng3 = StdRng::seed_from_u64(99);
    let recorder = TraceRecorder::new("V100");
    let (proof3, report3) =
        prove_with_telemetry(&cs, &pk, &engines, &mut rng3, &recorder).expect("prove");

    assert_eq!(proof1, proof2);
    assert_eq!(proof1, proof3);
    assert_eq!(report1.total_ms(), report2.total_ms());
    assert_eq!(report1.total_ms(), report3.total_ms());
}
