//! Chaos suite: the fault-tolerant fleet under seeded fault injection.
//!
//! The contract under test (ISSUE 5's acceptance bar): with per-stage
//! fault rates up to 20% and one permanently dead device, every
//! submitted job either completes or is *explicitly* rejected — none is
//! lost — and every returned proof is byte-identical to a fault-free
//! run. The injector is seeded, so the same plan replays the same fault
//! trace twice.

use gzkp_gpu_sim::{v100, FaultPlan, FaultRates};
use gzkp_runtime::HealthPolicy;
use gzkp_service::{
    prepare, run_sequential, run_service, JobOptions, ProofTask, ProvingService, RetryPolicy,
    ServiceConfig, TaskOutput,
};
use gzkp_telemetry::TelemetrySink;
use gzkp_workloads::requests::{
    RequestCurve, RequestPriority, RequestSpec, RequestSystem, RequestWorkload,
};
use std::time::Duration;

/// The paper-shaped mixed stream, shrunk to suite-friendly circuits.
fn small_workload() -> RequestWorkload {
    RequestWorkload {
        seed: 42,
        requests: vec![
            RequestSpec {
                curve: RequestCurve::Bn254,
                system: RequestSystem::Groth16,
                constraints: 64,
                count: 3,
                priority: RequestPriority::Normal,
                deadline_ms: None,
            },
            RequestSpec {
                curve: RequestCurve::Bls12_381,
                system: RequestSystem::Groth16,
                constraints: 64,
                count: 2,
                priority: RequestPriority::High,
                deadline_ms: None,
            },
        ],
    }
}

/// Issue 5's headline scenario: two devices, device 1 permanently dead,
/// per-kind rates up to 20%.
fn chaos_cfg(seed: u64) -> ServiceConfig {
    ServiceConfig {
        devices: gzkp_runtime::parse_devices("2").unwrap(),
        chaos: Some(FaultPlan {
            seed,
            rates: FaultRates {
                kernel: 0.2,
                transfer: 0.1,
                hang: 0.02,
                corrupt: 0.1,
                host_kill: 0.0,
            },
            device_scale: Vec::new(),
            dead: vec![1],
        }),
        retry: RetryPolicy {
            max_retries: 24,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
        },
        // Long probation: the dead device stays benched once the breaker
        // trips instead of cycling through probes mid-test.
        health: HealthPolicy {
            quarantine_after: 3,
            probation: Duration::from_secs(60),
            max_probation: Duration::from_secs(60),
        },
        default_deadline: None,
        ..ServiceConfig::default()
    }
}

#[test]
fn chaos_fleet_loses_no_jobs_and_keeps_proofs_byte_identical() {
    let workload = small_workload();
    let device = v100();
    let prepared = prepare(&workload, &device);
    let baseline = run_sequential(&prepared, &device);

    for seed in [5u64, 17, 93] {
        let outcome = run_service(&prepared, chaos_cfg(seed), &device);
        let chaos = outcome.chaos.expect("chaos replay records a summary");
        let stats = outcome.stats.expect("service replay records stats");

        // Zero lost jobs: every request is accounted for explicitly.
        let completed = outcome.proofs.iter().flatten().count();
        assert_eq!(
            completed + outcome.rejected + outcome.deadline_missed + outcome.failed,
            prepared.len(),
            "seed {seed}: a job vanished without an explicit outcome"
        );
        assert_eq!(
            completed,
            prepared.len(),
            "seed {seed}: at these rates the retry budget must absorb every fault \
             (failed {} rejected {})",
            outcome.failed,
            outcome.rejected
        );

        // Recovery happened (the seeds are chosen to actually fault) and
        // never changed a proof: byte-identical to the fault-free run.
        assert!(chaos.injected() > 0, "seed {seed}: no fault injected");
        assert!(stats.retries > 0, "seed {seed}: no stage was retried");
        assert!(
            chaos.dead_hits > 0 && stats.quarantines > 0,
            "seed {seed}: the dead device was never hit ({}) or never \
             quarantined ({})",
            chaos.dead_hits,
            stats.quarantines
        );
        for (i, (got, want)) in outcome.proofs.iter().zip(&baseline.proofs).enumerate() {
            assert_eq!(
                got.as_ref(),
                want.as_ref(),
                "seed {seed}: request {i} diverged from the fault-free proof"
            );
        }
    }
}

/// Trivial instantly-completing task: chaos decisions don't depend on
/// what a stage computes, so the replayability of the fault trace can be
/// checked without paying for real proofs.
struct NopTask(u64);

impl ProofTask for NopTask {
    fn key_id(&self) -> u64 {
        self.0
    }
    fn poly(&mut self, _sink: &dyn TelemetrySink) -> Result<(), String> {
        Ok(())
    }
    fn msm(&mut self, _sink: &dyn TelemetrySink) -> Result<TaskOutput, String> {
        Ok(TaskOutput {
            proof: self.0.to_le_bytes().to_vec(),
            report: None,
        })
    }
}

/// One chaos run over trivial tasks: the injector's sorted event log and
/// per-kind counts. Dead-device hits and retry totals are placement
/// events (racy across thread interleavings) and deliberately excluded.
fn fault_trace(seed: u64) -> (Vec<gzkp_gpu_sim::FaultEvent>, [u64; 4]) {
    let service = ProvingService::start(ServiceConfig {
        chaos: Some(FaultPlan {
            dead: vec![1],
            ..FaultPlan::uniform(seed, 0.2)
        }),
        devices: gzkp_runtime::parse_devices("2").unwrap(),
        retry: RetryPolicy {
            max_retries: 64,
            backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(2),
        },
        default_deadline: None,
        ..ServiceConfig::default()
    });
    let handles: Vec<_> = (0..24)
        .map(|i| {
            service
                .submit(Box::new(NopTask(i)), JobOptions::default())
                .unwrap()
        })
        .collect();
    for h in handles {
        h.wait().outcome.expect("every nop job completes");
    }
    let inj = service.fault_injector().expect("chaos is configured");
    let events = inj.events();
    let s = inj.summary();
    service.shutdown();
    (events, [s.kernel, s.transfer, s.hang, s.corrupt])
}

#[test]
fn same_seed_replays_the_same_fault_trace() {
    for seed in [3u64, 71] {
        let (events_a, counts_a) = fault_trace(seed);
        let (events_b, counts_b) = fault_trace(seed);
        assert!(!events_a.is_empty(), "seed {seed}: no fault drawn");
        assert_eq!(events_a, events_b, "seed {seed}: fault log not replayable");
        assert_eq!(counts_a, counts_b, "seed {seed}: per-kind counts diverged");
    }
    let (events_a, _) = fault_trace(3);
    let (events_c, _) = fault_trace(4);
    assert_ne!(events_a, events_c, "different seeds must draw differently");
}

#[test]
fn dead_fleet_degrades_to_cpu_and_still_proves() {
    let workload = RequestWorkload {
        seed: 7,
        requests: vec![RequestSpec {
            curve: RequestCurve::Bn254,
            system: RequestSystem::Groth16,
            constraints: 64,
            count: 2,
            priority: RequestPriority::Normal,
            deadline_ms: None,
        }],
    };
    let device = v100();
    let prepared = prepare(&workload, &device);
    let baseline = run_sequential(&prepared, &device);

    // The whole (single-device) fleet is dead: no fault rates at all, the
    // only failure mode is the dead device itself.
    let cfg = ServiceConfig {
        devices: gzkp_runtime::parse_devices("1").unwrap(),
        chaos: Some(FaultPlan {
            seed: 1,
            rates: FaultRates::default(),
            device_scale: Vec::new(),
            dead: vec![0],
        }),
        health: HealthPolicy {
            quarantine_after: 1,
            probation: Duration::from_secs(60),
            max_probation: Duration::from_secs(60),
        },
        default_deadline: None,
        ..ServiceConfig::default()
    };
    let outcome = run_service(&prepared, cfg, &device);
    let chaos = outcome.chaos.unwrap();
    let stats = outcome.stats.unwrap();

    assert_eq!(outcome.proofs.iter().flatten().count(), prepared.len());
    assert!(chaos.dead_hits > 0, "first placement must hit the dead GPU");
    assert!(
        stats.quarantines > 0,
        "the dead device must trip the breaker"
    );
    assert!(
        stats.cpu_fallbacks > 0,
        "with the fleet gone, stages must degrade to the host CPU path"
    );
    for (got, want) in outcome.proofs.iter().zip(&baseline.proofs) {
        assert_eq!(got, want, "CPU-fallback proofs must stay byte-identical");
    }
}

/// A splittable-MSM task for the cross-device chaos scenario: when the
/// scheduler grants it several devices it binds a
/// [`gzkp_runtime::CrossDeviceMsm`] over them; its "proof" is the
/// compressed MSM result, so byte-identity directly certifies the
/// partial-bucket merge. The huge cost estimate makes every job urgent
/// under the default deadline, forcing the cross-device path.
struct CrossMsmTask {
    id: u64,
    pts: Vec<gzkp_curves::Affine<gzkp_curves::bn254::G1Config>>,
    sv: gzkp_msm::ScalarVec,
    reference: gzkp_msm::GzkpMsm,
    cross: Option<gzkp_runtime::CrossDeviceMsm>,
}

impl ProofTask for CrossMsmTask {
    fn key_id(&self) -> u64 {
        self.id
    }
    fn poly(&mut self, _sink: &dyn TelemetrySink) -> Result<(), String> {
        Ok(())
    }
    fn msm(&mut self, _sink: &dyn TelemetrySink) -> Result<TaskOutput, String> {
        use gzkp_msm::MsmEngine;
        let run = match &self.cross {
            Some(engine) => engine.msm(&self.pts, &self.sv),
            None => self.reference.msm(&self.pts, &self.sv),
        };
        Ok(TaskOutput {
            proof: gzkp_curves::compress(&run.result.to_affine()),
            report: None,
        })
    }
    fn bind_device(&mut self, _device: &gzkp_gpu_sim::DeviceConfig) {
        self.cross = None;
    }
    fn bind_fleet(
        &mut self,
        fleet: &std::sync::Arc<gzkp_runtime::FleetRuntime>,
        devices: &[usize],
        job_id: u64,
    ) -> bool {
        self.cross = Some(gzkp_runtime::CrossDeviceMsm::new(
            self.reference.clone(),
            fleet.clone(),
            devices.to_vec(),
            format!("job{job_id}.msm"),
        ));
        true
    }
    fn msm_cost_estimate_ns(&self) -> f64 {
        1e12
    }
}

/// ISSUE 7's chaos bar: device 0 — the cross-device *primary* on first
/// placement — is permanently dead, killing each job's first
/// cross-device MSM attempt while the claimed device set is held. Every
/// job must still complete (the dead primary quarantines, the survivors
/// re-run the sharded MSM), every proof must match the single-device
/// bytes, and no device claim may leak.
#[test]
fn dead_device_mid_cross_msm_loses_no_jobs() {
    use gzkp_ff::Field;
    use gzkp_msm::MsmEngine;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(11);
    let pts = gzkp_curves::random_points::<gzkp_curves::bn254::G1Config, _>(96, &mut rng);
    let scalars: Vec<gzkp_curves::bn254::Fr> = (0..96)
        .map(|_| gzkp_curves::bn254::Fr::random(&mut rng))
        .collect();
    let sv = gzkp_msm::ScalarVec::from_field(&scalars);
    let reference = gzkp_msm::GzkpMsm::new(v100());
    let expect = gzkp_curves::compress(&reference.msm(&pts, &sv).result.to_affine());

    let service = ProvingService::start(ServiceConfig {
        devices: vec![v100(); 3],
        cross_device: true,
        chaos: Some(FaultPlan {
            seed: 23,
            rates: FaultRates {
                kernel: 0.1,
                transfer: 0.05,
                hang: 0.0,
                corrupt: 0.0,
                host_kill: 0.0,
            },
            device_scale: Vec::new(),
            dead: vec![0],
        }),
        retry: RetryPolicy {
            max_retries: 24,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
        },
        health: HealthPolicy {
            quarantine_after: 2,
            probation: Duration::from_secs(60),
            max_probation: Duration::from_secs(60),
        },
        ..ServiceConfig::default()
    });

    let handles: Vec<_> = (0..12)
        .map(|i| {
            service
                .submit(
                    Box::new(CrossMsmTask {
                        id: i,
                        pts: pts.clone(),
                        sv: sv.clone(),
                        reference: reference.clone(),
                        cross: None,
                    }),
                    JobOptions::default(),
                )
                .unwrap()
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let out = h
            .wait()
            .outcome
            .unwrap_or_else(|e| panic!("job {i} was lost to the dead device: {e:?}"));
        assert_eq!(
            out.proof, expect,
            "job {i}: cross-device proof bytes diverged under chaos"
        );
    }

    let inj = service.fault_injector().expect("chaos is configured");
    assert!(
        inj.summary().dead_hits > 0,
        "the dead primary was never hit mid-cross-MSM"
    );
    let stats = service.stats();
    assert!(
        stats.quarantines > 0,
        "the dead device must trip the breaker"
    );
    let fleet = service.fleet().expect("fleet mode").clone();
    assert!(
        fleet.p2p_transfers() > 0,
        "no partial-sum merge crossed the P2P path — the cross-device path never ran"
    );
    // Every multi-device claim was released on both the fault and the
    // success paths: nothing stays in flight after the jobs resolve.
    for d in 0..3 {
        assert_eq!(fleet.inflight(d), 0, "device {d} leaked a placement claim");
    }
    service.shutdown();
}
