//! Shared machinery for the paper-table benchmark harnesses.
//!
//! Every `benches/tableN_*.rs` / `benches/figN_*.rs` target prints a
//! human-readable table mirroring the paper's layout and appends a
//! machine-readable JSON record under `target/paper-results/` so
//! `EXPERIMENTS.md` can be regenerated reproducibly.
//!
//! Scale policy: simulated sweeps (driven by the analytic cost models) run
//! the paper's full ranges; anything requiring per-element scalar synthesis
//! defaults to CI-friendly sizes and extends to the paper's maxima under
//! `GZKP_BENCH_FULL=1`.

#![warn(missing_docs)]

use gzkp_gpu_sim::device::{cpu_xeon, field_add_macs, field_mul_macs, DeviceConfig};
use gzkp_telemetry::{Trace, TraceNode};
use serde::Serialize;
use std::io::Write as _;
use std::path::PathBuf;

/// True when the full paper-scale sweep was requested.
pub fn full_mode() -> bool {
    std::env::var("GZKP_BENCH_FULL")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// One printed/recorded result row.
#[derive(Debug, Clone, Serialize)]
pub struct ResultRow {
    /// Experiment id, e.g. `"table5"`.
    pub experiment: String,
    /// Row label, e.g. `"2^20"` or `"Sprout"`.
    pub label: String,
    /// Named measurements in milliseconds (or the unit in `unit`).
    pub values: Vec<(String, f64)>,
    /// Unit of the values.
    pub unit: String,
}

/// Collects rows and writes them as one JSON document per experiment.
#[derive(Debug)]
pub struct Recorder {
    experiment: String,
    rows: Vec<ResultRow>,
}

impl Recorder {
    /// Starts a recorder for the given experiment id.
    pub fn new(experiment: &str) -> Self {
        println!("\n=== {experiment} ===");
        Self {
            experiment: experiment.into(),
            rows: Vec::new(),
        }
    }

    /// Records and prints one row.
    pub fn row(&mut self, label: impl Into<String>, unit: &str, values: Vec<(String, f64)>) {
        let label = label.into();
        let rendered: Vec<String> = values
            .iter()
            .map(|(k, v)| format!("{k}={}", fmt_val(*v)))
            .collect();
        println!("{label:<16} {}", rendered.join("  "));
        self.rows.push(ResultRow {
            experiment: self.experiment.clone(),
            label,
            values,
            unit: unit.into(),
        });
    }

    /// Flushes JSON to `<workspace>/target/paper-results/<experiment>.json`
    /// plus a versioned telemetry trace (`BENCH_<experiment>.json`, one
    /// span per row) that `zkprof render`/`zkprof diff` consume — run a
    /// bench on two commits and diff the two `BENCH_*` files to gate on
    /// regressions.
    pub fn finish(self) {
        // Bench binaries run with the package dir as CWD; anchor at the
        // workspace target directory instead.
        let target = std::env::var("CARGO_TARGET_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target"));
        let dir = target.join("paper-results");
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let path = dir.join(format!("{}.json", self.experiment));
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = writeln!(f, "{}", serde_json::to_string_pretty(&self.rows).unwrap());
            println!("[written {}]", path.display());
        }
        let trace = self.to_trace();
        let trace_path = dir.join(format!("BENCH_{}.json", trace.root.name));
        if trace.write_to(&trace_path).is_ok() {
            println!("[written {}]", trace_path.display());
        }
    }

    /// Converts the recorded rows into a telemetry [`Trace`]: the root
    /// span is the experiment, each row becomes a child span whose
    /// counters are the row's measurements. When the rows are in
    /// milliseconds the first measurement doubles as the span time, so
    /// `zkprof diff` can gate per-row regressions.
    fn to_trace(&self) -> Trace {
        let mut root = TraceNode::new(self.experiment.clone());
        for row in &self.rows {
            let mut node = TraceNode::new(row.label.clone());
            for (name, v) in &row.values {
                node.counters.push((format!("{name} [{}]", row.unit), *v));
            }
            if row.unit == "ms" {
                if let Some((_, v)) = row.values.first() {
                    node.time_ns = v * 1e6;
                }
            }
            root.time_ns += node.time_ns;
            root.children.push(node);
        }
        Trace::new("gzkp-bench", "simulated", root)
    }
}

fn fmt_val(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else if v.abs() >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

/// Formats a speedup column.
pub fn speedup(base: f64, ours: f64) -> f64 {
    if ours > 0.0 {
        base / ours
    } else {
        f64::INFINITY
    }
}

/// Simulated CPU (libsnark-class) NTT time in milliseconds.
///
/// Model: a fixed domain-setup overhead (libsnark recomputes and allocates
/// ω-power structures per call — the reason its small-scale times are flat
/// around ~0.1 s in Table 5) plus `N/2·log N` butterflies at two
/// multiplications each (the per-butterfly ω recomputation of §5.3),
/// parallel over the paper's 28-core host.
pub fn cpu_ntt_ms(log_n: u32, limbs: usize) -> f64 {
    let dev: DeviceConfig = cpu_xeon();
    let n = (1u64 << log_n) as f64;
    let butterflies = n / 2.0 * log_n as f64;
    let macs = butterflies * (2.0 * field_mul_macs(limbs) + 2.0 * field_add_macs(limbs));
    let thr = dev.mac64_per_ns_per_sm * dev.num_sms as f64 * 0.85; // parallel efficiency
    let fixed_ms = 95.0 * (limbs as f64 / 12.0); // domain setup, scaled by element width
    fixed_ms + macs / thr / 1e6
}

/// Simulated host↔device transfer time for `bytes` on one card, in ms.
pub fn h2d_ms(dev: &DeviceConfig, bytes: u64) -> f64 {
    bytes as f64 / dev.interconnect_bytes_per_ns / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_ntt_model_matches_paper_anchors() {
        // Table 5 Best-CPU, 753-bit: 2^14 ≈ 102 ms, 2^20 ≈ 2110 ms,
        // 2^26 ≈ 131441 ms. Accept the right order of magnitude.
        let t14 = cpu_ntt_ms(14, 12);
        let t20 = cpu_ntt_ms(20, 12);
        let t26 = cpu_ntt_ms(26, 12);
        assert!(t14 > 50.0 && t14 < 250.0, "2^14: {t14}");
        assert!(t20 > 700.0 && t20 < 5000.0, "2^20: {t20}");
        assert!(t26 > 50_000.0 && t26 < 300_000.0, "2^26: {t26}");
    }

    #[test]
    fn speedup_helper() {
        assert_eq!(speedup(10.0, 2.0), 5.0);
    }
}
