//! Proving-service throughput benchmark: the mixed-curve request stream
//! of `RequestWorkload::example()` replayed sequentially (prove-in-a-loop
//! on stock engines) versus through the `ProvingService` — the comparison
//! the CI regression gate diffs.
//!
//! Like `prover_e2e`, every number is measured host wall-clock. The
//! service must win on *work avoidance*: its byte-budgeted preprocessing
//! store holds every class's checkpoint tables at once, while the
//! baseline's small process-wide FIFO thrashes under the round-robin
//! arrival order. `GZKP_THREADS=4` caps kernel-level parallelism so both
//! sides price the same simulated-device budget.
//!
//! Modes: `GZKP_BENCH_SMOKE=1` replays the example workload once;
//! the default and `GZKP_BENCH_FULL=1` scale up the per-class counts.

use gzkp_bench::{speedup, Recorder};
use gzkp_gpu_sim::device::v100;
use gzkp_service::{prepare, run_sequential, run_service, ReplayOutcome, ServiceConfig};
use gzkp_telemetry::MetricsRegistry;
use gzkp_workloads::requests::RequestWorkload;
use std::sync::Arc;

fn scaled_example(count_scale: usize) -> RequestWorkload {
    let mut workload = RequestWorkload::example();
    for spec in &mut workload.requests {
        spec.count *= count_scale;
    }
    workload
}

fn outcome_rows(rec: &mut Recorder, label: &str, outcome: &ReplayOutcome) {
    rec.row(
        label,
        "ms",
        vec![
            ("total".into(), outcome.total.as_secs_f64() * 1e3),
            ("p50".into(), outcome.percentile_ms(50.0)),
            ("p95".into(), outcome.percentile_ms(95.0)),
        ],
    );
}

fn main() {
    let smoke = std::env::var("GZKP_BENCH_SMOKE")
        .map(|v| v != "0")
        .unwrap_or(false);
    let count_scale = if smoke {
        1
    } else if gzkp_bench::full_mode() {
        4
    } else {
        2
    };

    // Same thread budget on both sides; 4 matches the repo's standard
    // simulated-device pricing runs.
    std::env::set_var("GZKP_THREADS", "4");

    let device = v100();
    let workload = scaled_example(count_scale);
    let prepared = prepare(&workload, &device);

    let mut rec = Recorder::new("service_throughput");

    // --- Baseline: prove every request in arrival order. ---
    let sequential = run_sequential(&prepared, &device);
    outcome_rows(&mut rec, "sequential", &sequential);

    // --- The proving service, default configuration. ---
    let service = run_service(&prepared, ServiceConfig::default(), &device);
    outcome_rows(&mut rec, "service", &service);

    // --- The same service with the live metrics registry attached: the
    // observability layer must be close to free on the hot path. ---
    let registry = Arc::new(MetricsRegistry::new());
    let observed = run_service(
        &prepared,
        ServiceConfig {
            metrics: Some(registry.clone()),
            ..ServiceConfig::default()
        },
        &device,
    );
    outcome_rows(&mut rec, "service-metrics", &observed);
    std::env::remove_var("GZKP_THREADS");

    let overhead = observed.total.as_secs_f64() / service.total.as_secs_f64();
    rec.row("metrics", "ratio", vec![("overhead".into(), overhead)]);
    // Measured overhead sits in the wall-clock noise floor (≈0%), but a
    // single smoke-mode replay is short enough that scheduler noise can
    // swing the ratio by >10%. The committed-baseline diff gates drift of
    // the ratio row at 25%; this guard only catches the pathological
    // case (a lock or allocation landing on the hot path).
    assert!(
        overhead <= 1.25,
        "metrics overhead {:.1}% exceeds the 25% hard ceiling",
        (overhead - 1.0) * 100.0
    );
    assert_eq!(
        service.proofs, observed.proofs,
        "metrics must not perturb proof bytes"
    );
    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot.counter_total(gzkp_telemetry::counters::SERVICE_COMPLETED),
        prepared.len() as u64,
        "snapshot saw every completion"
    );
    println!(
        "metrics overhead: {:.1}% ({:.1} ms -> {:.1} ms)",
        (overhead - 1.0) * 100.0,
        service.total.as_secs_f64() * 1e3,
        observed.total.as_secs_f64() * 1e3,
    );

    assert_eq!(
        service.rejected, 0,
        "default queue must absorb the whole workload"
    );
    assert_eq!(
        service.deadline_missed, 0,
        "no deadline misses at the default deadline"
    );
    assert_eq!(service.failed, 0, "no failed jobs");
    assert_eq!(
        sequential.proofs, service.proofs,
        "service proofs diverged from the sequential baseline"
    );

    // Machine-independent gate row: fraction of sequential wall-clock the
    // service needs (lower is better, so a *rise* reads as a regression).
    let frac = service.total.as_secs_f64() / sequential.total.as_secs_f64();
    rec.row("gate", "ratio", vec![("vs-sequential".into(), frac)]);
    println!(
        "throughput: sequential {:.2}/s -> service {:.2}/s ({:.2}x, {} proofs)",
        sequential.throughput_per_s(),
        service.throughput_per_s(),
        speedup(sequential.total.as_secs_f64(), service.total.as_secs_f64()),
        prepared.len()
    );
    rec.finish();
}
