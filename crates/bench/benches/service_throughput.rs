//! Proving-service throughput benchmark: the mixed-curve request stream
//! of `RequestWorkload::example()` replayed sequentially (prove-in-a-loop
//! on stock engines) versus through the `ProvingService` — the comparison
//! the CI regression gate diffs.
//!
//! Like `prover_e2e`, every number is measured host wall-clock. The
//! service must win on *work avoidance*: its byte-budgeted preprocessing
//! store holds every class's checkpoint tables at once, while the
//! baseline's small process-wide FIFO thrashes under the round-robin
//! arrival order. `GZKP_THREADS=4` caps kernel-level parallelism so both
//! sides price the same simulated-device budget.
//!
//! Modes: `GZKP_BENCH_SMOKE=1` replays the example workload once;
//! the default and `GZKP_BENCH_FULL=1` scale up the per-class counts.

use gzkp_bench::{speedup, Recorder};
use gzkp_gpu_sim::device::v100;
use gzkp_service::{prepare, run_sequential, run_service, ReplayOutcome, ServiceConfig};
use gzkp_workloads::requests::RequestWorkload;

fn scaled_example(count_scale: usize) -> RequestWorkload {
    let mut workload = RequestWorkload::example();
    for spec in &mut workload.requests {
        spec.count *= count_scale;
    }
    workload
}

fn outcome_rows(rec: &mut Recorder, label: &str, outcome: &ReplayOutcome) {
    rec.row(
        label,
        "ms",
        vec![
            ("total".into(), outcome.total.as_secs_f64() * 1e3),
            ("p50".into(), outcome.percentile_ms(50.0)),
            ("p95".into(), outcome.percentile_ms(95.0)),
        ],
    );
}

fn main() {
    let smoke = std::env::var("GZKP_BENCH_SMOKE")
        .map(|v| v != "0")
        .unwrap_or(false);
    let count_scale = if smoke {
        1
    } else if gzkp_bench::full_mode() {
        4
    } else {
        2
    };

    // Same thread budget on both sides; 4 matches the repo's standard
    // simulated-device pricing runs.
    std::env::set_var("GZKP_THREADS", "4");

    let device = v100();
    let workload = scaled_example(count_scale);
    let prepared = prepare(&workload, &device);

    let mut rec = Recorder::new("service_throughput");

    // --- Baseline: prove every request in arrival order. ---
    let sequential = run_sequential(&prepared, &device);
    outcome_rows(&mut rec, "sequential", &sequential);

    // --- The proving service, default configuration. ---
    let service = run_service(&prepared, ServiceConfig::default(), &device);
    outcome_rows(&mut rec, "service", &service);
    std::env::remove_var("GZKP_THREADS");

    assert_eq!(
        service.rejected, 0,
        "default queue must absorb the whole workload"
    );
    assert_eq!(
        service.deadline_missed, 0,
        "no deadline misses at the default deadline"
    );
    assert_eq!(service.failed, 0, "no failed jobs");
    assert_eq!(
        sequential.proofs, service.proofs,
        "service proofs diverged from the sequential baseline"
    );

    // Machine-independent gate row: fraction of sequential wall-clock the
    // service needs (lower is better, so a *rise* reads as a regression).
    let frac = service.total.as_secs_f64() / sequential.total.as_secs_f64();
    rec.row("gate", "ratio", vec![("vs-sequential".into(), frac)]);
    println!(
        "throughput: sequential {:.2}/s -> service {:.2}/s ({:.2}x, {} proofs)",
        sequential.throughput_per_s(),
        service.throughput_per_s(),
        speedup(sequential.total.as_secs_f64(), service.total.as_secs_f64()),
        prepared.len()
    );
    rec.finish();
}
