//! Ablation sweeps for the design choices DESIGN.md §6 calls out, beyond
//! the paper's own Figures 8/10:
//!
//! 1. NTT batch depth `B` and groups-per-block `G` (the §3 internal
//!    shuffle's two knobs);
//! 2. MSM window size `k` (§4.1's profiling-based configuration);
//! 3. checkpoint interval `M` (Algorithm 1's time/space tradeoff);
//! 4. the §7 extension: HE-style batched-NTT throughput.

use gzkp_bench::Recorder;
use gzkp_curves::bls12_381::G1Config;
use gzkp_ff::fields::{Fr254, Fr381};
use gzkp_gpu_sim::{v100, Backend};
use gzkp_msm::{GzkpMsm, MsmEngine};
use gzkp_ntt::gpu::GpuNttEngine;
use gzkp_ntt::{BatchedNtt, GzkpNtt};

fn ntt_shape_sweep(rec: &mut Recorder) {
    let log_n = 20;
    for b in [4u32, 6, 8] {
        for g in [1u32, 4, 16, 32] {
            let e = GzkpNtt {
                device: v100(),
                backend: Backend::FpLib,
                batch_iters: b,
                groups_per_block: g,
            };
            let t = GpuNttEngine::<Fr254>::cost(&e, log_n).total_ms();
            rec.row(
                format!("ntt-2^{log_n} B={b} G={g}"),
                "ms",
                vec![("time".into(), t)],
            );
        }
    }
}

fn msm_window_sweep(rec: &mut Recorder) {
    let n = 1usize << 20;
    for k in (8..=18).step_by(2) {
        let e = GzkpMsm {
            window: Some(k as u32),
            ..GzkpMsm::new(v100())
        };
        rec.row(
            format!("msm-2^20 k={k}"),
            "ms",
            vec![
                (
                    "time".into(),
                    MsmEngine::<G1Config>::plan_dense(&e, n).total_ms(),
                ),
                (
                    "mem-GB".into(),
                    MsmEngine::<G1Config>::memory_bytes(&e, n) as f64 / (1u64 << 30) as f64,
                ),
            ],
        );
    }
}

fn checkpoint_sweep(rec: &mut Recorder) {
    let n = 1usize << 20;
    for m in [1u32, 2, 4, 8, 16] {
        let e = GzkpMsm {
            window: Some(16),
            checkpoint_interval: Some(m),
            ..GzkpMsm::new(v100())
        };
        rec.row(
            format!("msm-2^20 M={m}"),
            "ms",
            vec![
                (
                    "time".into(),
                    MsmEngine::<G1Config>::plan_dense(&e, n).total_ms(),
                ),
                (
                    "mem-GB".into(),
                    MsmEngine::<G1Config>::memory_bytes(&e, n) as f64 / (1u64 << 30) as f64,
                ),
            ],
        );
    }
}

fn he_batching(rec: &mut Recorder) {
    // §7: throughput of many small NTTs, fused vs sequential.
    let e = GzkpNtt::auto::<Fr381>(v100());
    let single = GpuNttEngine::<Fr381>::cost(&e, 12).total_ms();
    let b = BatchedNtt::new(e);
    for count in [1usize, 8, 64, 512] {
        let fused = b.cost::<Fr381>(12, count).total_ms();
        rec.row(
            format!("he-ntt 2^12 x{count}"),
            "ms",
            vec![
                ("fused".into(), fused),
                ("sequential".into(), single * count as f64),
                (
                    "throughput/s".into(),
                    b.throughput_per_sec::<Fr381>(12, count),
                ),
            ],
        );
    }
}

fn main() {
    let mut rec = Recorder::new("ablation_sweeps");
    ntt_shape_sweep(&mut rec);
    msm_window_sweep(&mut rec);
    checkpoint_sweep(&mut rec);
    he_batching(&mut rec);
    rec.finish();
}
