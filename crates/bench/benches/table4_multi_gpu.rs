//! Table 4: the Zcash workloads on four V100s.
//!
//! Per §5.2: the seven data-independent NTTs are spread across cards (two
//! sequential rounds on four cards); each MSM is decomposed horizontally
//! into four sub-MSMs — one per card, each using all GZKP optimizations —
//! followed by an inter-card combination transfer.

use gzkp_bench::{speedup, Recorder};
use gzkp_curves::bls12_381;
use gzkp_ff::fields::Fr381;
use gzkp_gpu_sim::kernel::multi_gpu_time_ns;
use gzkp_gpu_sim::v100;
use gzkp_msm::{GzkpMsm, MsmEngine, ScalarVec, SubMsmPippenger};
use gzkp_ntt::gpu::GpuNttEngine;
use gzkp_ntt::{BaselineGpuNtt, GzkpNtt};
use gzkp_workloads::zcash::zcash_workloads;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CARDS: usize = 4;

/// Splits a scalar vector into four card-local quarters.
fn quarters(sv_raw: &[gzkp_ff::fields::Fr381]) -> Vec<ScalarVec> {
    let chunk = sv_raw.len().div_ceil(CARDS);
    sv_raw.chunks(chunk).map(ScalarVec::from_field).collect()
}

/// One MSM over four cards: per-card plan + combination transfer
/// (each card ships its partial G1/G2 sums — a few hundred bytes — plus
/// bucket spill; modelled as 1 MB per card).
fn msm4_ms<C: gzkp_curves::CurveParams>(engine: &dyn MsmEngine<C>, parts: &[ScalarVec]) -> f64 {
    let per_card: Vec<f64> = parts.iter().map(|p| engine.plan(p).total_ns()).collect();
    multi_gpu_time_ns(&v100(), &per_card, (CARDS as u64) * (1 << 20)) / 1e6
}

fn main() {
    let mut rec = Recorder::new("table4_multi_gpu");
    let dev = v100();
    let mut rng = StdRng::seed_from_u64(4);

    let bg_ntt = BaselineGpuNtt::new(dev.clone());
    let gzkp_ntt = GzkpNtt::auto::<Fr381>(dev.clone());
    let bg_msm = SubMsmPippenger::new(dev.clone());
    let gzkp_msm = GzkpMsm::new(dev.clone());

    for w in zcash_workloads() {
        let log_n = w.domain_size().trailing_zeros();
        let sparse_raw = w.sparse_scalars::<Fr381, _>(&mut rng);
        let dense_raw = w.dense_scalars::<Fr381, _>(&mut rng);
        let sparse_q = quarters(&sparse_raw);
        let dense_q = quarters(&dense_raw);

        // POLY: 7 NTTs over 4 cards → 2 sequential rounds per card.
        let poly_bg = 2.0 * GpuNttEngine::<Fr381>::cost(&bg_ntt, log_n).total_ms();
        let poly_gzkp = 2.0 * GpuNttEngine::<Fr381>::cost(&gzkp_ntt, log_n).total_ms();

        // MSM: 5 MSMs, each 4-way split.
        let msm_of = |g1: &dyn MsmEngine<bls12_381::G1Config>,
                      g2: &dyn MsmEngine<bls12_381::G2Config>| {
            msm4_ms(g1, &sparse_q) * 2.0
                + msm4_ms(g1, &dense_q)
                + msm4_ms(g1, &sparse_q)
                + msm4_ms(g2, &sparse_q)
        };
        let msm_bg = msm_of(&bg_msm, &bg_msm);
        let msm_gzkp = msm_of(&gzkp_msm, &gzkp_msm);

        let bg = poly_bg + msm_bg;
        let ours = poly_gzkp + msm_gzkp;
        rec.row(
            w.name,
            "ms",
            vec![
                ("BG-POLY".into(), poly_bg),
                ("BG-MSM".into(), msm_bg),
                ("GZKP-POLY".into(), poly_gzkp),
                ("GZKP-MSM".into(), msm_gzkp),
                ("speedup".into(), speedup(bg, ours)),
            ],
        );
    }
    rec.finish();
}
