//! Table 4: the Zcash workloads on multiple V100s — scheduled through the
//! real cross-device runtime ([`gzkp_runtime::FleetRuntime`]) instead of
//! the old closed-form `multi_gpu_time_ns` estimate.
//!
//! Per §5.2: the seven data-independent NTTs are spread across cards
//! (`ceil(7/D)` sequential rounds per card); each MSM is decomposed
//! horizontally into per-card sub-MSMs followed by an inter-card
//! combination — here the combination is a device→device transfer on the
//! fleet's NVLink P2P path into a merge kernel on card 0, overlapping
//! the other cards' remaining work exactly as the command-stream
//! simulator schedules it. Each workload reports BG vs GZKP at four
//! cards plus GZKP's scaling at 1/2/4 devices, all as fleet-timeline
//! makespans.

use gzkp_bench::{speedup, Recorder};
use gzkp_curves::bls12_381;
use gzkp_ff::fields::Fr381;
use gzkp_gpu_sim::v100;
use gzkp_msm::{CurveCost, GzkpMsm, MsmEngine, ScalarVec, SubMsmPippenger};
use gzkp_ntt::gpu::GpuNttEngine;
use gzkp_ntt::{BaselineGpuNtt, GzkpNtt};
use gzkp_runtime::FleetRuntime;
use gzkp_workloads::zcash::zcash_workloads;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Bucket spill each card ships with its partial sums in the inter-card
/// combination (the paper's transfer term; the partial points alone are
/// a few hundred bytes).
const COMBINE_SPILL_BYTES: u64 = 1 << 20;

/// Splits a scalar vector into `cards` card-local slices.
fn slices(sv_raw: &[Fr381], cards: usize) -> Vec<ScalarVec> {
    let chunk = sv_raw.len().div_ceil(cards);
    sv_raw.chunks(chunk).map(ScalarVec::from_field).collect()
}

/// Schedules one horizontally-decomposed MSM on the fleet: card `d` runs
/// a plan-priced sub-MSM over its slice, every card `> 0` ships its
/// partial over the P2P path to card 0, and a combination kernel runs
/// there per arriving partial.
fn fleet_msm<C: gzkp_curves::CurveParams>(
    fleet: &FleetRuntime,
    engine: &dyn MsmEngine<C>,
    parts: &[ScalarVec],
    label: &str,
) {
    let cost = CurveCost::of::<C>();
    let mut done = Vec::new();
    for (d, part) in parts.iter().enumerate() {
        let kernel_ns = engine.plan(part).total_ns();
        let h2d = part.len() as u64 * (cost.affine_bytes() + 8 * part.limbs_per_scalar() as u64);
        done.push(fleet.record_stage(d, &format!("{label}.card{d}"), h2d, kernel_ns, 0));
    }
    for (d, &done_at) in done.iter().enumerate().skip(1) {
        let payload = cost.jacobian_bytes() + COMBINE_SPILL_BYTES;
        fleet.record_p2p(d, 0, &format!("{label}.combine{d}"), payload, done_at);
        fleet.record_stage(0, &format!("{label}.combine{d}"), 0, 10_000.0, 0);
    }
    fleet.record_stage(0, &format!("{label}.result"), 0, 0.0, cost.jacobian_bytes());
}

/// Full-workload makespan on `cards` V100s: `ceil(7/cards)` NTT rounds
/// per card (two at four cards), then the five decomposed MSMs.
fn fleet_prove_ms(
    cards: usize,
    ntt_round_ns: f64,
    msm_g1: &dyn MsmEngine<bls12_381::G1Config>,
    msm_g2: &dyn MsmEngine<bls12_381::G2Config>,
    sparse: &[Fr381],
    dense: &[Fr381],
) -> f64 {
    let fleet = FleetRuntime::new(vec![v100(); cards]);
    let rounds = 7usize.div_ceil(cards);
    for d in 0..cards {
        for r in 0..rounds {
            fleet.record_stage(d, &format!("poly.round{r}.card{d}"), 0, ntt_round_ns, 0);
        }
    }
    let sparse_q = slices(sparse, cards);
    let dense_q = slices(dense, cards);
    fleet_msm(&fleet, msm_g1, &sparse_q, "msm.a");
    fleet_msm(&fleet, msm_g1, &sparse_q, "msm.b_g1");
    fleet_msm(&fleet, msm_g1, &dense_q, "msm.h");
    fleet_msm(&fleet, msm_g1, &sparse_q, "msm.l");
    fleet_msm(&fleet, msm_g2, &sparse_q, "msm.b_g2");
    if cards > 1 {
        assert_eq!(
            fleet.p2p_transfers() as usize,
            5 * (cards - 1),
            "every sub-MSM combination must cross the P2P path"
        );
    }
    fleet.utilization().elapsed_ns / 1e6
}

fn main() {
    let mut rec = Recorder::new("table4_multi_gpu");
    let dev = v100();
    let mut rng = StdRng::seed_from_u64(4);

    let bg_ntt = BaselineGpuNtt::new(dev.clone());
    let gzkp_ntt = GzkpNtt::auto::<Fr381>(dev.clone());
    let bg_msm = SubMsmPippenger::new(dev.clone());
    let gzkp_msm = GzkpMsm::new(dev.clone());

    for w in zcash_workloads() {
        let log_n = w.domain_size().trailing_zeros();
        let sparse = w.sparse_scalars::<Fr381, _>(&mut rng);
        let dense = w.dense_scalars::<Fr381, _>(&mut rng);

        let bg_round = GpuNttEngine::<Fr381>::cost(&bg_ntt, log_n).total_ns();
        let gzkp_round = GpuNttEngine::<Fr381>::cost(&gzkp_ntt, log_n).total_ns();

        let bg = fleet_prove_ms(4, bg_round, &bg_msm, &bg_msm, &sparse, &dense);
        let ours = fleet_prove_ms(4, gzkp_round, &gzkp_msm, &gzkp_msm, &sparse, &dense);
        rec.row(
            w.name,
            "ms",
            vec![
                ("BG-4xV100".into(), bg),
                ("GZKP-4xV100".into(), ours),
                ("speedup".into(), speedup(bg, ours)),
            ],
        );

        // GZKP device scaling: the same proof at 1, 2, and 4 cards.
        let at = |cards| fleet_prove_ms(cards, gzkp_round, &gzkp_msm, &gzkp_msm, &sparse, &dense);
        let (one, two, four) = (at(1), at(2), at(4));
        println!(
            "{:>16}: 1xV100 {one:8.2} ms | 2x {two:8.2} ms ({:.2}x) | 4x {four:8.2} ms ({:.2}x)",
            w.name,
            speedup(one, two),
            speedup(one, four),
        );
        rec.row(
            format!("{}_scaling", w.name),
            "ms",
            vec![
                ("1xV100".into(), one),
                ("2xV100".into(), two),
                ("4xV100".into(), four),
                ("2x-speedup".into(), speedup(one, two)),
                ("4x-speedup".into(), speedup(one, four)),
            ],
        );
    }
    rec.finish();
}
