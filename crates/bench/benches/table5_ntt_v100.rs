//! Table 5: single-NTT latency on the V100 model.
//!
//! Columns mirror the paper: 753-bit (Best-CPU = libsnark model vs GZKP)
//! and 256-bit (Best-GPU = bellperson baseline vs GZKP), sweeping the NTT
//! scale 2^14 … 2^26. All entries are simulated times (see DESIGN.md).

use gzkp_bench::{cpu_ntt_ms, speedup, Recorder};
use gzkp_ff::fields::{Fr254, Fr753};
use gzkp_gpu_sim::v100;
use gzkp_ntt::gpu::GpuNttEngine;
use gzkp_ntt::{BaselineGpuNtt, GzkpNtt};

fn main() {
    let mut rec = Recorder::new("table5_ntt_v100");
    let gzkp753 = GzkpNtt::auto::<Fr753>(v100());
    let gzkp256 = GzkpNtt::auto::<Fr254>(v100());
    let bg256 = BaselineGpuNtt::new(v100());

    for log_n in (14..=26).step_by(2) {
        let cpu753 = cpu_ntt_ms(log_n, 12);
        let g753 = GpuNttEngine::<Fr753>::cost(&gzkp753, log_n).total_ms();
        let bg = GpuNttEngine::<Fr254>::cost(&bg256, log_n).total_ms();
        let g256 = GpuNttEngine::<Fr254>::cost(&gzkp256, log_n).total_ms();
        rec.row(
            format!("2^{log_n}"),
            "ms",
            vec![
                ("753b-BestCPU".into(), cpu753),
                ("753b-GZKP".into(), g753),
                ("753b-speedup".into(), speedup(cpu753, g753)),
                ("256b-BestGPU".into(), bg),
                ("256b-GZKP".into(), g256),
                ("256b-speedup".into(), speedup(bg, g256)),
            ],
        );
    }
    rec.finish();
}
