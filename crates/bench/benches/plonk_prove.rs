//! End-to-end PLONK prover wall-clock benchmark: serial single-thread
//! baseline vs the parallel prover, on a real synthetic circuit lowered
//! to PLONK gates over BN254 — the second proof system riding the same
//! MSM/NTT engines, so this bench doubles as a regression gate on the
//! KZG commitment path.
//!
//! Like `prover_e2e`, the `total` row is measured host wall-clock while
//! the `poly`/`msm` splits come from the simulated stage reports (which
//! are deterministic). Modes: `GZKP_BENCH_SMOKE=1` shrinks the circuit
//! for CI; `GZKP_BENCH_FULL=1` grows it toward paper-ish scales. Fixed
//! proof seed: serial and parallel runs must produce byte-identical
//! proofs, a free determinism cross-check on every bench run.

use gzkp_bench::{speedup, Recorder};
use gzkp_curves::bn254::Bn254;
use gzkp_ff::fields::Fr254 as Fr;
use gzkp_gpu_sim::device::v100;
use gzkp_msm::GzkpMsm;
use gzkp_ntt::gpu::GzkpNtt;
use gzkp_plonk::{prove_bytes, setup, verify_bytes, PlonkCircuit, PlonkProvingKey};
use gzkp_proof_system::Engines;
use gzkp_telemetry::NoopSink;
use gzkp_workloads::synthetic::synthetic_circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// One timed proof: returns (poly_ms, msm_ms, wall_total_ms, bytes).
fn timed_prove(
    circuit: &PlonkCircuit<Fr>,
    pk: &PlonkProvingKey<Bn254>,
    engines: &Engines<'_, Bn254>,
) -> (f64, f64, f64, Vec<u8>) {
    let t0 = Instant::now();
    let (bytes, report) = prove_bytes(circuit, pk, engines, 7, &NoopSink).expect("prove");
    let total_ms = t0.elapsed().as_secs_f64() * 1e3;
    (report.poly_ms(), report.msm_ms(), total_ms, bytes)
}

/// Best-of-`reps` end-to-end run (minimum wall total, with its splits).
fn best_of(
    reps: usize,
    circuit: &PlonkCircuit<Fr>,
    pk: &PlonkProvingKey<Bn254>,
    engines: &Engines<'_, Bn254>,
) -> (f64, f64, f64, Vec<u8>) {
    let mut best: Option<(f64, f64, f64, Vec<u8>)> = None;
    for _ in 0..reps {
        let run = timed_prove(circuit, pk, engines);
        if best.as_ref().is_none_or(|b| run.2 < b.2) {
            best = Some(run);
        }
    }
    best.expect("reps >= 1")
}

fn main() {
    let smoke = std::env::var("GZKP_BENCH_SMOKE")
        .map(|v| v != "0")
        .unwrap_or(false);
    let (constraints, reps) = if smoke {
        (1 << 6, 1)
    } else if gzkp_bench::full_mode() {
        (1 << 11, 3)
    } else {
        (1 << 9, 3)
    };

    let mut rng = StdRng::seed_from_u64(42);
    let cs = synthetic_circuit::<Fr, _>(constraints, &mut rng);
    let circuit = PlonkCircuit::from_r1cs(&cs);
    let (pk, vk) = setup::<Bn254, _>(&circuit, &mut rng).expect("setup");
    let device = v100();

    let mut rec = Recorder::new("plonk_prove");

    // --- Serial baseline: single thread, serial-reference MSM kernels. ---
    std::env::set_var("GZKP_THREADS", "1");
    let s_msm = GzkpMsm::serial_reference(device.clone());
    let s_ntt = GzkpNtt::auto::<Fr>(device.clone());
    let s_engines = Engines::<Bn254> {
        ntt: &s_ntt,
        msm_g1: &s_msm,
        msm_g2: &s_msm,
    };
    let (s_poly, s_msm_ms, s_total, s_bytes) = best_of(reps, &circuit, &pk, &s_engines);
    std::env::remove_var("GZKP_THREADS");
    rec.row(
        "serial",
        "ms",
        vec![
            ("total".into(), s_total),
            ("poly".into(), s_poly),
            ("msm".into(), s_msm_ms),
        ],
    );

    // --- Optimized prover: parallel + batch-affine + cached preprocess. ---
    let p_msm = GzkpMsm::new(device.clone());
    let p_ntt = GzkpNtt::auto::<Fr>(device.clone());
    let p_engines = Engines::<Bn254> {
        ntt: &p_ntt,
        msm_g1: &p_msm,
        msm_g2: &p_msm,
    };
    // Warm-up proof fills the per-key preprocessing cache (one-time setup
    // in the paper's accounting) before the timed runs.
    let _ = timed_prove(&circuit, &pk, &p_engines);
    let (p_poly, p_msm_ms, p_total, p_bytes) = best_of(reps, &circuit, &pk, &p_engines);
    rec.row(
        "parallel",
        "ms",
        vec![
            ("total".into(), p_total),
            ("poly".into(), p_poly),
            ("msm".into(), p_msm_ms),
        ],
    );

    assert_eq!(
        s_bytes, p_bytes,
        "parallel PLONK prover diverged from serial"
    );
    assert!(
        verify_bytes::<Bn254>(&vk, circuit.public_inputs(), &p_bytes),
        "PLONK proof failed verification"
    );

    // Machine-independent gate row: fraction of serial time the optimized
    // prover needs (lower is better, so a *rise* reads as a regression).
    let frac = p_total / s_total;
    rec.row("gate", "ratio", vec![("vs-serial".into(), frac)]);
    println!(
        "speedup: {:.2}x (serial {:.1} ms -> parallel {:.1} ms)",
        speedup(s_total, p_total),
        s_total,
        p_total
    );
    rec.finish();
}
