//! Figure 10: MSM ablation on BLS12-381, V100 model:
//! BG (bellperson-like) → GZKP-no-LB (bucket consolidation only) →
//! GZKP-no-LB w. lib → full GZKP (load-balanced), 2^18 … 2^22, with both
//! dense and sparse (Zcash-like) scalar distributions.

use gzkp_bench::{full_mode, speedup, Recorder};
use gzkp_curves::bls12_381::G1Config;
use gzkp_ff::fields::Fr381;
use gzkp_gpu_sim::v100;
use gzkp_msm::{GzkpMsm, MsmEngine, SubMsmPippenger};
use gzkp_workloads::{SparsityProfile, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rec = Recorder::new("fig10_msm_breakdown");
    let dev = v100();
    let mut rng = StdRng::seed_from_u64(10);
    let bg = SubMsmPippenger::new(dev.clone());
    let no_lb = GzkpMsm::no_load_balance(dev.clone());
    let no_lb_lib = GzkpMsm::no_load_balance_with_lib(dev.clone());
    let gzkp = GzkpMsm::new(dev.clone());

    let max_log = if full_mode() { 24 } else { 22 };
    for log_n in 18..=max_log {
        let n = 1usize << log_n;
        for profile in ["dense", "sparse"] {
            let sparsity = if profile == "dense" {
                SparsityProfile::DENSE
            } else {
                SparsityProfile::SPARSE
            };
            let w = WorkloadSpec {
                name: "fig10",
                vector_size: n,
                sparsity,
            };
            let sv = w.sparse_scalar_vec::<Fr381, _>(&mut rng);
            let t_bg = MsmEngine::<G1Config>::plan(&bg, &sv).total_ms();
            let t_no_lb = MsmEngine::<G1Config>::plan(&no_lb, &sv).total_ms();
            let t_no_lb_lib = MsmEngine::<G1Config>::plan(&no_lb_lib, &sv).total_ms();
            let t_gzkp = MsmEngine::<G1Config>::plan(&gzkp, &sv).total_ms();
            rec.row(
                format!("2^{log_n}/{profile}"),
                "ms",
                vec![
                    ("BG".into(), t_bg),
                    ("GZKP-no-LB".into(), t_no_lb),
                    ("GZKP-no-LB-w-lib".into(), t_no_lb_lib),
                    ("GZKP".into(), t_gzkp),
                    ("total-speedup".into(), speedup(t_bg, t_gzkp)),
                ],
            );
        }
    }
    rec.finish();
}
