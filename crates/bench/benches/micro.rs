//! Criterion micro-benchmarks of the *real* CPU kernels (wall-clock, not
//! simulated): field arithmetic per width, the Dekker FP multiplier, CPU
//! NTT, the four MSM engines' functional paths, PADD/PMUL, pairing, and a
//! small end-to-end Groth16 prove.
//!
//! These complement the paper-table harnesses: they measure what this
//! machine actually executes, providing the ground truth the cost models'
//! *relative* behaviour is sanity-checked against.

use criterion::{criterion_group, BenchmarkId, Criterion};
use gzkp_curves::bn254;
use gzkp_curves::random_points;
use gzkp_ff::dfp::DfpField;
use gzkp_ff::fields::{Fq254, Fq381, Fq753, Fr254};
use gzkp_ff::{Field, PrimeField};
use gzkp_gpu_sim::v100;
use gzkp_msm::{CpuMsm, GzkpMsm, MsmEngine, ScalarVec, StrausMsm, SubMsmPippenger};
use gzkp_ntt::{CpuNtt, Direction, Radix2Domain};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn field_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("field_mul");
    let mut rng = StdRng::seed_from_u64(1);
    macro_rules! bench_field {
        ($name:literal, $f:ty) => {
            let a = <$f>::random(&mut rng);
            let b = <$f>::random(&mut rng);
            g.bench_function($name, |bch| bch.iter(|| std::hint::black_box(a * b)));
        };
    }
    bench_field!("fq254(4 limbs)", Fq254);
    bench_field!("fq381(6 limbs)", Fq381);
    bench_field!("fq753(12 limbs)", Fq753);
    g.finish();

    let mut g = c.benchmark_group("field_other");
    let a = Fq254::random(&mut rng);
    g.bench_function("fq254_add", |bch| bch.iter(|| std::hint::black_box(a + a)));
    g.bench_function("fq254_inverse", |bch| {
        bch.iter(|| std::hint::black_box(a.inverse()))
    });
    g.bench_function("fq254_sqrt", |bch| {
        let sq = a.square();
        bch.iter(|| std::hint::black_box(sq.sqrt()))
    });
    let b = Fq254::random(&mut rng);
    g.bench_function("fq254_dfp_mul", |bch| {
        bch.iter(|| std::hint::black_box(DfpField::mul(a, b)))
    });
    g.finish();
}

fn curve_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("curve");
    let mut rng = StdRng::seed_from_u64(2);
    let p = bn254::G1Projective::generator().mul(&Fr254::random(&mut rng));
    let q = bn254::G1Projective::generator().mul(&Fr254::random(&mut rng));
    let qa = q.to_affine();
    g.bench_function("bn254_padd", |bch| {
        bch.iter(|| std::hint::black_box(p.add(&q)))
    });
    g.bench_function("bn254_padd_mixed", |bch| {
        bch.iter(|| std::hint::black_box(p.add_mixed(&qa)))
    });
    g.bench_function("bn254_pdbl", |bch| {
        bch.iter(|| std::hint::black_box(p.double()))
    });
    let s = Fr254::random(&mut rng);
    g.bench_function("bn254_pmul", |bch| {
        bch.iter(|| std::hint::black_box(p.mul(&s)))
    });
    g.finish();

    let mut g = c.benchmark_group("pairing");
    g.sample_size(10);
    let pa = p.to_affine();
    let qb = bn254::G2Affine::generator();
    g.bench_function("bn254_pairing", |bch| {
        bch.iter(|| std::hint::black_box(bn254::pairing(&pa, &qb)))
    });
    g.finish();
}

fn ntt(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_ntt_fr254");
    let mut rng = StdRng::seed_from_u64(3);
    for log_n in [10u32, 12, 14] {
        let d = Radix2Domain::<Fr254>::new(1 << log_n).unwrap();
        let data: Vec<Fr254> = (0..d.size).map(|_| Fr254::random(&mut rng)).collect();
        let engine = CpuNtt::reference();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("2^{log_n}")),
            &d,
            |bch, d| {
                bch.iter(|| {
                    let mut v = data.clone();
                    engine.transform(d, &mut v, Direction::Forward);
                    std::hint::black_box(v)
                })
            },
        );
    }
    g.finish();
}

fn msm(c: &mut Criterion) {
    let mut g = c.benchmark_group("msm_functional_bn254_g1");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(4);
    let n = 1 << 10;
    let points = random_points::<bn254::G1Config, _>(n, &mut rng);
    let scalars: Vec<Fr254> = (0..n).map(|_| Fr254::random(&mut rng)).collect();
    let sv = ScalarVec::from_field(&scalars);

    let cpu = CpuMsm::default();
    g.bench_function("cpu_pippenger", |bch| {
        bch.iter(|| std::hint::black_box(cpu.msm(&points, &sv).result))
    });
    let bg = SubMsmPippenger::new(v100());
    g.bench_function("submsm_bellperson_like", |bch| {
        bch.iter(|| std::hint::black_box(bg.msm(&points, &sv).result))
    });
    let straus = StrausMsm::new(v100());
    g.bench_function("straus_mina_like", |bch| {
        bch.iter(|| std::hint::black_box(straus.msm(&points, &sv).result))
    });
    let gzkp = GzkpMsm::new(v100());
    g.bench_function("gzkp_consolidated", |bch| {
        bch.iter(|| std::hint::black_box(gzkp.msm(&points, &sv).result))
    });
    g.finish();
}

fn groth16_end_to_end(c: &mut Criterion) {
    use gzkp_curves::bn254::{Bn254, Fr};
    use gzkp_groth16::r1cs::ConstraintSystem;
    use gzkp_groth16::{prove, setup, verify, ProverEngines};
    use gzkp_ntt::GzkpNtt;
    use gzkp_workloads::synthetic::synthetic_circuit;

    let mut g = c.benchmark_group("groth16");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(5);
    let cs: ConstraintSystem<Fr> = synthetic_circuit(256, &mut rng);
    let (pk, vk) = setup::<Bn254, _>(&cs, &mut rng).unwrap();
    let ntt = GzkpNtt::auto::<Fr>(v100());
    let msm_g1 = GzkpMsm::new(v100());
    let msm_g2 = GzkpMsm::new(v100());
    let engines = ProverEngines::<Bn254> {
        ntt: &ntt,
        msm_g1: &msm_g1,
        msm_g2: &msm_g2,
    };
    g.bench_function("prove_256_constraints", |bch| {
        bch.iter(|| {
            let (proof, _) = prove(&cs, &pk, &engines, &mut rng).unwrap();
            std::hint::black_box(proof)
        })
    });
    let (proof, _) = prove(&cs, &pk, &engines, &mut rng).unwrap();
    let inputs: Vec<Fr> = cs.input_assignment.clone();
    g.bench_function("verify", |bch| {
        bch.iter(|| std::hint::black_box(verify::<Bn254>(&vk, &proof, &inputs)))
    });
    g.finish();
}

fn telemetry_overhead(c: &mut Criterion) {
    use gzkp_curves::bn254::{Bn254, Fr};
    use gzkp_groth16::r1cs::ConstraintSystem;
    use gzkp_groth16::{prove_with_telemetry, setup, ProverEngines};
    use gzkp_ntt::GzkpNtt;
    use gzkp_telemetry::{NoopSink, TraceRecorder};
    use gzkp_workloads::synthetic::synthetic_circuit;

    // The prover's telemetry hooks are `sink.enabled()` branches; with the
    // default NoopSink the prove path must cost the same as before the
    // instrumentation existed. Compare against a live TraceRecorder to see
    // what recording actually costs.
    let mut g = c.benchmark_group("telemetry");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(6);
    let cs: ConstraintSystem<Fr> = synthetic_circuit(256, &mut rng);
    let (pk, _) = setup::<Bn254, _>(&cs, &mut rng).unwrap();
    let ntt = GzkpNtt::auto::<Fr>(v100());
    let msm_g1 = GzkpMsm::new(v100());
    let msm_g2 = GzkpMsm::new(v100());
    let engines = ProverEngines::<Bn254> {
        ntt: &ntt,
        msm_g1: &msm_g1,
        msm_g2: &msm_g2,
    };
    g.bench_function("prove_noop_sink", |bch| {
        bch.iter(|| {
            let (proof, _) = prove_with_telemetry(&cs, &pk, &engines, &mut rng, &NoopSink).unwrap();
            std::hint::black_box(proof)
        })
    });
    g.bench_function("prove_trace_recorder", |bch| {
        bch.iter(|| {
            let recorder = TraceRecorder::new("V100");
            let (proof, _) = prove_with_telemetry(&cs, &pk, &engines, &mut rng, &recorder).unwrap();
            std::hint::black_box((proof, recorder.finish()))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    field_ops,
    curve_ops,
    ntt,
    msm,
    groth16_end_to_end,
    telemetry_overhead
);

fn main() {
    benches();
    // Surface every measurement — median and its median absolute
    // deviation — into BENCH_micro.json so `zkprof diff` can gate on the
    // wall-clock numbers and see how noisy each one was.
    let mut rec = gzkp_bench::Recorder::new("micro");
    for r in criterion::take_results() {
        rec.row(
            format!("{}/{}", r.group, r.id),
            "ns",
            vec![("median".into(), r.median_ns), ("mad".into(), r.mad_ns)],
        );
    }
    rec.finish();
}
