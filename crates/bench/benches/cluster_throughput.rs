//! Cluster-scale throughput benchmark: the same request stream replayed
//! through `gzkp_cluster::Cluster` at 1, 2, 4, and 8 simulated hosts —
//! the scaling number ISSUE 8's CI regression gate diffs.
//!
//! As with `fleet_throughput`, the gated number is *simulated*: hosts
//! run in parallel in the deployment being modeled, so the cluster
//! makespan is the maximum over hosts of each host fleet's simulated
//! completion time. Host wall-clock cannot express that parallelism
//! (every simulated host burns the same CPU cores), and the simulated
//! number is machine-independent. With equal-cost jobs and least-loaded
//! placement the makespan must scale near-linearly in host count — the
//! run asserts ≥1.5x at 2 hosts, ≥2.6x at 4, and ≥4.0x at 8 — and every
//! cluster proof must be byte-identical to the sequential baseline's:
//! sharding jobs across hosts may move work, never change it.
//!
//! Modes: `GZKP_BENCH_SMOKE=1` replays 16 jobs; the default and
//! `GZKP_BENCH_FULL=1` scale the job count up.

use gzkp_bench::{speedup, Recorder};
use gzkp_cluster::{workload_factory, Cluster, ClusterConfig, ClusterJobOptions, HostConfig};
use gzkp_gpu_sim::device::v100;
use gzkp_service::{prepare, run_sequential, PreparedWorkload};
use gzkp_workloads::requests::{
    RequestCurve, RequestPriority, RequestSpec, RequestSystem, RequestWorkload,
};
use std::sync::Arc;
use std::time::Duration;

/// Equal-cost BN254 jobs, so least-loaded placement balances perfectly
/// and the scaling number measures the cluster layer, not job skew.
fn cluster_workload(count: usize) -> RequestWorkload {
    RequestWorkload {
        seed: 42,
        requests: vec![RequestSpec {
            curve: RequestCurve::Bn254,
            system: RequestSystem::Groth16,
            constraints: 256,
            count,
            priority: RequestPriority::Normal,
            deadline_ms: None,
        }],
    }
}

/// Replays every prepared request through an `hosts`-host cluster and
/// returns (simulated makespan ns, proofs in request order).
fn run_cluster(prepared: &Arc<PreparedWorkload>, hosts: usize) -> (f64, Vec<Vec<u8>>) {
    let mut cluster = Cluster::start(ClusterConfig {
        hosts,
        host: HostConfig {
            devices: vec![v100()],
            ..HostConfig::default()
        },
        pending_capacity: prepared.len().max(256),
        ..ClusterConfig::default()
    });
    let ids: Vec<u64> = (0..prepared.len())
        .map(|i| {
            cluster
                .submit(
                    "default",
                    workload_factory(prepared.clone(), i, false),
                    ClusterJobOptions::default(),
                )
                .expect("admitted")
        })
        .collect();
    let outcome = cluster.drain(Duration::from_secs(600));
    assert_eq!(outcome.stats.failed, 0, "{hosts}-host cluster failed jobs");
    assert_eq!(
        outcome.leaked_claims, 0,
        "{hosts}-host cluster leaked claims"
    );
    let proofs = ids
        .iter()
        .map(|id| {
            outcome
                .results
                .iter()
                .find(|r| r.id == *id)
                .expect("every job resolves")
                .outcome
                .clone()
                .expect("job completed")
        })
        .collect();
    (outcome.makespan_ns, proofs)
}

fn main() {
    let smoke = std::env::var("GZKP_BENCH_SMOKE")
        .map(|v| v != "0")
        .unwrap_or(false);
    let jobs = if smoke {
        16
    } else if gzkp_bench::full_mode() {
        64
    } else {
        32
    };

    // One thread per prove: a host worker is a device-sized slot.
    std::env::set_var("GZKP_THREADS", "1");

    let device = v100();
    let workload = cluster_workload(jobs);
    let prepared = Arc::new(prepare(&workload, &device));

    let mut rec = Recorder::new("cluster_throughput");

    // --- Baseline: prove every request in arrival order. ---
    let sequential = run_sequential(&prepared, &device);
    rec.row(
        "sequential",
        "ms",
        vec![("total".into(), sequential.total.as_secs_f64() * 1e3)],
    );

    // --- The cluster at 1/2/4/8 hosts. ---
    let host_counts = [1usize, 2, 4, 8];
    let mut makespans = Vec::new();
    for &hosts in &host_counts {
        let (makespan_ns, proofs) = run_cluster(&prepared, hosts);
        for (i, (cluster_proof, baseline)) in proofs.iter().zip(&sequential.proofs).enumerate() {
            assert_eq!(
                Some(cluster_proof),
                baseline.as_ref(),
                "request {i}: {hosts}-host cluster proof diverged from sequential baseline"
            );
        }
        makespans.push(makespan_ns);
    }
    std::env::remove_var("GZKP_THREADS");

    rec.row(
        "sim-makespan",
        "ms",
        host_counts
            .iter()
            .zip(&makespans)
            .map(|(h, ns)| (format!("{h}-host"), ns / 1e6))
            .collect(),
    );

    let sim_rate = |elapsed_ns: f64| jobs as f64 / (elapsed_ns / 1e9);
    let floors = [1.0, 1.5, 2.6, 4.0];
    for ((&hosts, &makespan), &floor) in host_counts.iter().zip(&makespans).zip(&floors) {
        let scaling = speedup(makespans[0], makespan);
        println!(
            "cluster scaling (simulated): {hosts} host(s) {:.1} proofs/s ({scaling:.2}x vs 1 host)",
            sim_rate(makespan)
        );
        assert!(
            scaling >= floor,
            "{hosts} hosts must give >={floor:.1}x simulated throughput over 1 (got {scaling:.2}x)"
        );
    }

    // Machine-independent gate rows: fraction of the 1-host simulated
    // makespan each wider cluster needs (lower is better; a rise is a
    // regression in cluster-level scaling).
    rec.row(
        "gate",
        "ratio",
        host_counts[1..]
            .iter()
            .zip(&makespans[1..])
            .map(|(h, ns)| (format!("{h}host-vs-1host"), ns / makespans[0]))
            .collect(),
    );
    rec.finish();
}
