//! Figure 8: NTT ablation on BLS12-381's 256-bit scalar field, V100 model:
//! BG (bellperson-like) → BG w. lib → GZKP-no-GM-shuffle → GZKP,
//! sweeping 2^18 … 2^24.

use gzkp_bench::{speedup, Recorder};
use gzkp_ff::fields::Fr381;
use gzkp_gpu_sim::v100;
use gzkp_ntt::gpu::GpuNttEngine;
use gzkp_ntt::{BaselineGpuNtt, GzkpNtt};

fn main() {
    let mut rec = Recorder::new("fig8_ntt_breakdown");
    let bg = BaselineGpuNtt::new(v100());
    let bg_lib = BaselineGpuNtt::new(v100()).with_lib();
    let no_shuffle = GzkpNtt::no_internal_shuffle::<Fr381>(v100());
    let gzkp = GzkpNtt::auto::<Fr381>(v100());

    for log_n in 18..=24 {
        let t_bg = GpuNttEngine::<Fr381>::cost(&bg, log_n).total_ms();
        let t_bg_lib = GpuNttEngine::<Fr381>::cost(&bg_lib, log_n).total_ms();
        let t_no_shuf = GpuNttEngine::<Fr381>::cost(&no_shuffle, log_n).total_ms();
        let t_gzkp = GpuNttEngine::<Fr381>::cost(&gzkp, log_n).total_ms();
        rec.row(
            format!("2^{log_n}"),
            "ms",
            vec![
                ("BG".into(), t_bg),
                ("BG-w-lib".into(), t_bg_lib),
                ("GZKP-no-GM-shuffle".into(), t_no_shuf),
                ("GZKP".into(), t_gzkp),
                ("total-speedup".into(), speedup(t_bg, t_gzkp)),
            ],
        );
    }
    rec.finish();
}
