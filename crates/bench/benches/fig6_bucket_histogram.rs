//! Figure 6: bucket-occupancy distribution of the cross-window
//! point-merging step for a Zcash-like sparse scalar vector (scale 2^17,
//! 256-bit scalars), plus the similar-load task grouping GZKP schedules.

use gzkp_bench::Recorder;
use gzkp_ff::fields::Fr381;
use gzkp_msm::bucket_histogram;
use gzkp_workloads::zcash::figure6_config;
use gzkp_workloads::{SparsityProfile, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rec = Recorder::new("fig6_bucket_histogram");
    let (n, k) = figure6_config();
    let mut rng = StdRng::seed_from_u64(6);
    let w = WorkloadSpec {
        name: "zcash-2^17",
        vector_size: n,
        sparsity: SparsityProfile::SPARSE,
    };
    let sv = w.sparse_scalar_vec::<Fr381, _>(&mut rng);
    let hist = bucket_histogram(&sv, k);

    // Bucket 0 is trivial (no merging); the plot covers 1..2^k.
    let body = &hist[1..];
    let nonzero: Vec<u64> = body.iter().copied().filter(|&c| c > 0).collect();
    let max = *nonzero.iter().max().unwrap();
    let min = *nonzero.iter().min().unwrap();
    let mean = nonzero.iter().sum::<u64>() as f64 / nonzero.len() as f64;
    rec.row(
        "stats",
        "points",
        vec![
            ("zero-bucket".into(), hist[0] as f64),
            ("min".into(), min as f64),
            ("mean".into(), mean),
            ("max".into(), max as f64),
            ("max/min".into(), max as f64 / min as f64),
        ],
    );

    // The paper's histogram: group tasks by load into bins (the "similar
    // task groups" GZKP schedules heaviest-first).
    let bins = 10usize;
    let width = ((max - min) as f64 / bins as f64).max(1.0);
    let mut groups = vec![0u64; bins];
    for &c in &nonzero {
        let b = (((c - min) as f64 / width) as usize).min(bins - 1);
        groups[b] += 1;
    }
    for (i, g) in groups.iter().enumerate().rev() {
        rec.row(
            format!(
                "group{} [{}..{})",
                bins - 1 - i,
                min + (i as u64) * width as u64,
                min + ((i + 1) as u64) * width as u64
            ),
            "tasks",
            vec![("num-buckets".into(), *g as f64)],
        );
    }
    rec.finish();
}
