//! Cross-device single-proof benchmark: ONE large proof's MSM stage
//! executed across 1/2/4 simulated V100s through the real runtime path —
//! [`gzkp_runtime::CrossDeviceMsm`] sharding each MSM into bucket ranges,
//! streaming per-device uploads/kernels, and merging partial sums over
//! the NVLink P2P path.
//!
//! This is the complement of `fleet_throughput`: that bench scales a
//! *stream* of proofs across devices (inter-proof parallelism); this one
//! scales a *single* proof (intra-proof parallelism), which is what a
//! near-deadline request needs. The scaling number the CI gate diffs is
//! the fleet's simulated MSM-stage makespan — host wall-clock cannot
//! express device parallelism because the simulated devices share the
//! host's cores (see `fleet_throughput`'s header for the full argument).
//!
//! Invariants asserted every run:
//! * proofs at 1, 2, and 4 devices are byte-identical to the plain
//!   single-device prover's (placement never changes bytes);
//! * 2 V100s give >= 1.6x the simulated single-device MSM makespan;
//! * the P2P path actually carried the partial-sum merges.

use gzkp_bench::{speedup, Recorder};
use gzkp_curves::bn254::{Bn254, Fr};
use gzkp_gpu_sim::device::v100;
use gzkp_groth16::prove::{prove_msm, prove_poly, ProverEngines};
use gzkp_groth16::{proof_to_bytes, setup};
use gzkp_msm::GzkpMsm;
use gzkp_ntt::gpu::GzkpNtt;
use gzkp_runtime::{CrossDeviceMsm, FleetRuntime};
use gzkp_telemetry::NoopSink;
use gzkp_workloads::synthetic::synthetic_circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Proves the prepared circuit once with its five MSMs spread over
/// `devs` simulated V100s; returns the proof bytes and the fleet (whose
/// timelines hold the MSM-stage schedule).
fn prove_across(
    cs: &gzkp_groth16::r1cs::ConstraintSystem<Fr>,
    pk: &gzkp_groth16::ProvingKey<Bn254>,
    devs: usize,
) -> (Vec<u8>, Arc<FleetRuntime>) {
    let fleet = Arc::new(FleetRuntime::new(vec![v100(); devs]));
    let reference = GzkpMsm::new(v100());
    let msm_g1 = CrossDeviceMsm::new(
        reference.clone(),
        fleet.clone(),
        (0..devs).collect(),
        "proof.msm_g1",
    );
    let msm_g2 = CrossDeviceMsm::new(
        reference,
        fleet.clone(),
        (0..devs).collect(),
        "proof.msm_g2",
    );
    let ntt = GzkpNtt::auto::<Fr>(v100());
    let engines = ProverEngines::<Bn254> {
        ntt: &ntt,
        msm_g1: &msm_g1,
        msm_g2: &msm_g2,
    };
    let poly = prove_poly::<Bn254>(cs, pk, &ntt, &NoopSink).expect("poly stage");
    let mut rng = StdRng::seed_from_u64(9);
    let (proof, _report) = prove_msm::<Bn254, _>(pk, &engines, poly, &mut rng, &NoopSink);
    (proof_to_bytes(&proof), fleet)
}

fn main() {
    let smoke = std::env::var("GZKP_BENCH_SMOKE")
        .map(|v| v != "0")
        .unwrap_or(false);
    let log_n = if smoke {
        11
    } else if gzkp_bench::full_mode() {
        14
    } else {
        12
    };

    // Deterministic simulated schedule: the five MSMs issue their
    // device/P2P operations in one fixed order.
    std::env::set_var("GZKP_THREADS", "1");

    let mut rng = StdRng::seed_from_u64(4);
    let cs = synthetic_circuit::<Fr, _>(1 << log_n, &mut rng);
    let (pk, _vk) = setup::<Bn254, _>(&cs, &mut rng).expect("setup");

    // Byte-identity reference: the plain single-device prover.
    let single_msm = GzkpMsm::new(v100());
    let ntt = GzkpNtt::auto::<Fr>(v100());
    let engines = ProverEngines::<Bn254> {
        ntt: &ntt,
        msm_g1: &single_msm,
        msm_g2: &single_msm,
    };
    let poly = prove_poly::<Bn254>(&cs, &pk, &ntt, &NoopSink).expect("poly stage");
    let mut prng = StdRng::seed_from_u64(9);
    let (reference, _) = prove_msm::<Bn254, _>(&pk, &engines, poly, &mut prng, &NoopSink);
    let reference_bytes = proof_to_bytes(&reference);

    let mut rec = Recorder::new("fleet_single_proof");
    let mut makespans = Vec::new();
    for devs in [1usize, 2, 4] {
        let (bytes, fleet) = prove_across(&cs, &pk, devs);
        assert_eq!(
            bytes, reference_bytes,
            "{devs}-device proof bytes diverged from the single-device prover"
        );
        let util = fleet.utilization();
        if devs > 1 {
            assert!(
                fleet.p2p_transfers() > 0,
                "{devs}-device run must merge partials over P2P"
            );
            // The acceptance criterion's timeline: the P2P lane renders
            // populated (`^` cells) alongside the bucket kernels.
            let timeline = gzkp_telemetry::render_timeline(&fleet.trace())
                .expect("fleet trace renders as a timeline");
            assert!(
                timeline.contains('^'),
                "{devs}-device timeline must show a populated p2p lane:\n{timeline}"
            );
        }
        print!("{}", util.render());
        rec.row(
            format!("msm-{devs}xv100"),
            "ms",
            vec![
                ("sim-makespan".into(), util.elapsed_ns / 1e6),
                ("p2p-MB".into(), fleet.p2p_bytes() as f64 / (1 << 20) as f64),
                ("p2p-transfers".into(), fleet.p2p_transfers() as f64),
            ],
        );
        makespans.push(util.elapsed_ns);
    }
    std::env::remove_var("GZKP_THREADS");

    let x2 = speedup(makespans[0], makespans[1]);
    let x4 = speedup(makespans[0], makespans[2]);
    println!(
        "single-proof MSM scaling (simulated, 2^{log_n} constraints): \
         2xV100 {x2:.2}x, 4xV100 {x4:.2}x"
    );
    rec.row(
        "scaling",
        "x",
        vec![("2xv100".into(), x2), ("4xv100".into(), x4)],
    );
    assert!(
        x2 >= 1.6,
        "2 V100s must give >=1.6x on a single large proof's MSM stage (got {x2:.2}x)"
    );

    // Machine-independent gate row: fraction of the single-device
    // simulated makespan the 2-device run needs (lower is better).
    rec.row(
        "gate",
        "ratio",
        vec![("2dev-vs-1dev".into(), makespans[1] / makespans[0])],
    );
    rec.finish();
}
