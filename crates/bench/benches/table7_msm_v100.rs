//! Table 7: single G1 MSM latency on the V100 model.
//!
//! Columns mirror the paper: 753-bit (Best-GPU = MINA/Straus vs GZKP;
//! Straus goes OOM past 2²²), 381-bit (Best-GPU = bellperson vs GZKP),
//! 256-bit (Best-CPU = parallel Pippenger vs GZKP). Dense synthetic
//! scalars, as §5.3 specifies.

use gzkp_bench::{speedup, Recorder};
use gzkp_curves::{bls12_381, bn254, t753};
use gzkp_gpu_sim::v100;
use gzkp_msm::{CpuMsm, GzkpMsm, MsmEngine, StrausMsm, SubMsmPippenger};

fn main() {
    let mut rec = Recorder::new("table7_msm_v100");
    let dev = v100();

    let straus = StrausMsm::new(dev.clone());
    let bg = SubMsmPippenger::new(dev.clone());
    let cpu = CpuMsm::default();
    let gzkp = GzkpMsm::new(dev.clone());

    for log_n in (14..=26).step_by(2) {
        let n = 1usize << log_n;
        // 753-bit column (T753 stands in for MNT4753).
        let mina = if MsmEngine::<t753::G1Config>::fits_in_memory(&straus, n, dev.global_mem_bytes)
        {
            MsmEngine::<t753::G1Config>::plan_dense(&straus, n).total_ms() / 1e3
        } else {
            f64::NAN // the paper's "-" rows
        };
        let g753 = MsmEngine::<t753::G1Config>::plan_dense(&gzkp, n).total_ms() / 1e3;
        // 381-bit column.
        let bg381 = MsmEngine::<bls12_381::G1Config>::plan_dense(&bg, n).total_ms() / 1e3;
        let g381 = MsmEngine::<bls12_381::G1Config>::plan_dense(&gzkp, n).total_ms() / 1e3;
        // 256-bit column.
        let cpu256 = MsmEngine::<bn254::G1Config>::plan_dense(&cpu, n).total_ms() / 1e3;
        let g256 = MsmEngine::<bn254::G1Config>::plan_dense(&gzkp, n).total_ms() / 1e3;
        rec.row(
            format!("2^{log_n}"),
            "s",
            vec![
                ("753b-MINA".into(), mina),
                ("753b-GZKP".into(), g753),
                ("753b-speedup".into(), speedup(mina, g753)),
                ("381b-BG".into(), bg381),
                ("381b-GZKP".into(), g381),
                ("381b-speedup".into(), speedup(bg381, g381)),
                ("256b-BestCPU".into(), cpu256),
                ("256b-GZKP".into(), g256),
                ("256b-speedup".into(), speedup(cpu256, g256)),
            ],
        );
    }
    rec.finish();
}
