//! End-to-end prover wall-clock benchmark: serial pre-PR baseline vs the
//! parallel/batch-affine prover, on a real synthetic circuit over BN254.
//!
//! Unlike the paper-table harnesses (which price the GPU from analytic
//! cost models), every number here is measured host wall-clock from the
//! functional pipeline — this is the bench the CI regression gate diffs.
//!
//! Modes: `GZKP_BENCH_SMOKE=1` shrinks the circuit for CI;
//! `GZKP_BENCH_FULL=1` grows it toward paper-ish scales. The serial
//! baseline runs with `GZKP_THREADS=1`, no preprocessing cache, and no
//! batch-affine accumulation — the exact pre-PR configuration — while the
//! optimized run warms the preprocessing cache first, mirroring the
//! paper's accounting where per-key preprocessing is one-time setup.

use gzkp_bench::{speedup, Recorder};
use gzkp_curves::bn254::Bn254;
use gzkp_curves::CurveParams;
use gzkp_ff::fields::Fr254 as Fr;
use gzkp_gpu_sim::device::v100;
use gzkp_gpu_sim::StageReport;
use gzkp_groth16::{prove, setup, verify, Proof, ProverEngines};
use gzkp_msm::{GzkpMsm, MsmEngine, MsmRun, ScalarVec};
use gzkp_ntt::domain::Radix2Domain;
use gzkp_ntt::gpu::{GpuNttEngine, GzkpNtt};
use gzkp_ntt::Direction;
use gzkp_workloads::synthetic::synthetic_circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Wall-clock-accumulating wrapper around an NTT engine.
struct TimedNtt<'a, F: gzkp_ff::PrimeField> {
    inner: &'a dyn GpuNttEngine<F>,
    ns: AtomicU64,
}

impl<F: gzkp_ff::PrimeField> GpuNttEngine<F> for TimedNtt<'_, F> {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn transform(&self, domain: &Radix2Domain<F>, data: &mut [F], dir: Direction) -> StageReport {
        let t0 = Instant::now();
        let report = self.inner.transform(domain, data, dir);
        self.ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        report
    }
    fn cost(&self, log_n: u32) -> StageReport {
        self.inner.cost(log_n)
    }
}

/// Wall-clock-accumulating wrapper around an MSM engine. With concurrent
/// MSMs the accumulated value is summed engine time (CPU time), which on
/// overlapping executions can exceed the stage's wall-clock share.
struct TimedMsm<'a, C: CurveParams> {
    inner: &'a dyn MsmEngine<C>,
    ns: AtomicU64,
}

impl<C: CurveParams> MsmEngine<C> for TimedMsm<'_, C> {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn msm(&self, points: &[gzkp_curves::Affine<C>], scalars: &ScalarVec) -> MsmRun<C> {
        let t0 = Instant::now();
        let run = self.inner.msm(points, scalars);
        self.ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        run
    }
    fn plan(&self, scalars: &ScalarVec) -> StageReport {
        self.inner.plan(scalars)
    }
    fn plan_dense(&self, n: usize) -> StageReport {
        self.inner.plan_dense(n)
    }
    fn memory_bytes(&self, n: usize) -> u64 {
        self.inner.memory_bytes(n)
    }
}

/// One timed proof: returns (poly_ms, msm_ms, total_ms, proof).
fn timed_prove(
    cs: &gzkp_groth16::ConstraintSystem<Fr>,
    pk: &gzkp_groth16::ProvingKey<Bn254>,
    ntt: &dyn GpuNttEngine<Fr>,
    msm_g1: &dyn MsmEngine<<Bn254 as gzkp_curves::pairing::PairingConfig>::G1>,
    msm_g2: &dyn MsmEngine<<Bn254 as gzkp_curves::pairing::PairingConfig>::G2>,
) -> (f64, f64, f64, Proof<Bn254>) {
    let t_ntt = TimedNtt {
        inner: ntt,
        ns: AtomicU64::new(0),
    };
    let t_g1 = TimedMsm {
        inner: msm_g1,
        ns: AtomicU64::new(0),
    };
    let t_g2 = TimedMsm {
        inner: msm_g2,
        ns: AtomicU64::new(0),
    };
    let engines = ProverEngines::<Bn254> {
        ntt: &t_ntt,
        msm_g1: &t_g1,
        msm_g2: &t_g2,
    };
    // Fixed seed: blinding factors are drawn after the MSMs, so both
    // configurations produce the identical proof — a free determinism
    // cross-check on every bench run.
    let mut rng = StdRng::seed_from_u64(7);
    let t0 = Instant::now();
    let (proof, _report) = prove(cs, pk, &engines, &mut rng).expect("prove");
    let total_ms = t0.elapsed().as_secs_f64() * 1e3;
    let poly_ms = t_ntt.ns.load(Ordering::Relaxed) as f64 / 1e6;
    let msm_ms = (t_g1.ns.load(Ordering::Relaxed) + t_g2.ns.load(Ordering::Relaxed)) as f64 / 1e6;
    (poly_ms, msm_ms, total_ms, proof)
}

/// Best-of-`reps` end-to-end run (minimum total, with its stage split).
fn best_of(
    reps: usize,
    cs: &gzkp_groth16::ConstraintSystem<Fr>,
    pk: &gzkp_groth16::ProvingKey<Bn254>,
    ntt: &dyn GpuNttEngine<Fr>,
    msm_g1: &dyn MsmEngine<<Bn254 as gzkp_curves::pairing::PairingConfig>::G1>,
    msm_g2: &dyn MsmEngine<<Bn254 as gzkp_curves::pairing::PairingConfig>::G2>,
) -> (f64, f64, f64, Proof<Bn254>) {
    let mut best: Option<(f64, f64, f64, Proof<Bn254>)> = None;
    for _ in 0..reps {
        let run = timed_prove(cs, pk, ntt, msm_g1, msm_g2);
        if best.as_ref().is_none_or(|b| run.2 < b.2) {
            best = Some(run);
        }
    }
    best.expect("reps >= 1")
}

fn main() {
    let smoke = std::env::var("GZKP_BENCH_SMOKE")
        .map(|v| v != "0")
        .unwrap_or(false);
    let (constraints, reps) = if smoke {
        (1 << 7, 1)
    } else if gzkp_bench::full_mode() {
        (1 << 12, 3)
    } else {
        (1 << 10, 3)
    };

    let mut rng = StdRng::seed_from_u64(42);
    let cs = synthetic_circuit::<Fr, _>(constraints, &mut rng);
    let (pk, vk) = setup::<Bn254, _>(&cs, &mut rng).expect("setup");
    let device = v100();

    let mut rec = Recorder::new("prover_e2e");

    // --- Serial baseline: the pre-PR prover configuration. ---
    // GZKP_THREADS=1 pins the work-stealing pool so the measurement is a
    // true single-thread baseline on any host.
    std::env::set_var("GZKP_THREADS", "1");
    let s_g1 = GzkpMsm::serial_reference(device.clone());
    let s_g2 = GzkpMsm::serial_reference(device.clone());
    let s_ntt = GzkpNtt::auto::<Fr>(device.clone());
    let (s_poly, s_msm, s_total, s_proof) = best_of(reps, &cs, &pk, &s_ntt, &s_g1, &s_g2);
    std::env::remove_var("GZKP_THREADS");
    rec.row(
        "serial",
        "ms",
        vec![
            ("total".into(), s_total),
            ("poly".into(), s_poly),
            ("msm".into(), s_msm),
        ],
    );

    // --- Optimized prover: parallel + batch-affine + cached preprocess. ---
    let p_g1 = GzkpMsm::new(device.clone());
    let p_g2 = GzkpMsm::new(device.clone());
    let p_ntt = GzkpNtt::auto::<Fr>(device.clone());
    // Warm-up proof fills the per-key preprocessing cache (one-time setup
    // in the paper's accounting) before the timed runs.
    let _ = timed_prove(&cs, &pk, &p_ntt, &p_g1, &p_g2);
    let (p_poly, p_msm, p_total, p_proof) = best_of(reps, &cs, &pk, &p_ntt, &p_g1, &p_g2);
    rec.row(
        "parallel",
        "ms",
        vec![
            ("total".into(), p_total),
            ("poly".into(), p_poly),
            ("msm".into(), p_msm),
        ],
    );

    assert_eq!(s_proof, p_proof, "parallel prover diverged from serial");
    assert!(
        verify::<Bn254>(&vk, &p_proof, &cs.input_assignment),
        "proof failed verification"
    );

    // Machine-independent gate row: fraction of serial time the optimized
    // prover needs (lower is better, so a *rise* reads as a regression).
    let frac = p_total / s_total;
    rec.row("gate", "ratio", vec![("vs-serial".into(), frac)]);
    println!(
        "speedup: {:.2}x (serial {:.1} ms -> parallel {:.1} ms)",
        speedup(s_total, p_total),
        s_total,
        p_total
    );
    rec.finish();
}
