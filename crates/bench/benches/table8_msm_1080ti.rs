//! Table 8: single G1 MSM latency on the GTX 1080 Ti model (2^14 … 2^24);
//! the 753-bit Straus column goes OOM past 2²⁰ on the 11 GB card.

use gzkp_bench::{speedup, Recorder};
use gzkp_curves::{bls12_381, bn254, t753};
use gzkp_gpu_sim::gtx1080ti;
use gzkp_msm::{CpuMsm, GzkpMsm, MsmEngine, StrausMsm, SubMsmPippenger};

fn main() {
    let mut rec = Recorder::new("table8_msm_1080ti");
    let dev = gtx1080ti();

    let straus = StrausMsm::new(dev.clone());
    let bg = SubMsmPippenger::new(dev.clone());
    let cpu = CpuMsm::default();
    let gzkp = GzkpMsm::new(dev.clone());

    for log_n in (14..=24).step_by(2) {
        let n = 1usize << log_n;
        let mina = if MsmEngine::<t753::G1Config>::fits_in_memory(&straus, n, dev.global_mem_bytes)
        {
            MsmEngine::<t753::G1Config>::plan_dense(&straus, n).total_ms() / 1e3
        } else {
            f64::NAN
        };
        let g753 = MsmEngine::<t753::G1Config>::plan_dense(&gzkp, n).total_ms() / 1e3;
        let bg381 = MsmEngine::<bls12_381::G1Config>::plan_dense(&bg, n).total_ms() / 1e3;
        let g381 = MsmEngine::<bls12_381::G1Config>::plan_dense(&gzkp, n).total_ms() / 1e3;
        let cpu256 = MsmEngine::<bn254::G1Config>::plan_dense(&cpu, n).total_ms() / 1e3;
        let g256 = MsmEngine::<bn254::G1Config>::plan_dense(&gzkp, n).total_ms() / 1e3;
        rec.row(
            format!("2^{log_n}"),
            "s",
            vec![
                ("753b-MINA".into(), mina),
                ("753b-GZKP".into(), g753),
                ("753b-speedup".into(), speedup(mina, g753)),
                ("381b-BG".into(), bg381),
                ("381b-GZKP".into(), g381),
                ("381b-speedup".into(), speedup(bg381, g381)),
                ("256b-BestCPU".into(), cpu256),
                ("256b-GZKP".into(), g256),
                ("256b-speedup".into(), speedup(cpu256, g256)),
            ],
        );
    }
    rec.finish();
}
