//! Table 3: end-to-end proof-generation for the Zcash workloads on
//! BLS12-381, V100 model. Best-CPU = bellman (CPU NTT + Pippenger),
//! Best-GPU = bellperson (shuffle NTT + sub-MSM Pippenger).

use gzkp_bench::{cpu_ntt_ms, speedup, Recorder};
use gzkp_curves::bls12_381;
use gzkp_ff::fields::Fr381;
use gzkp_gpu_sim::v100;
use gzkp_msm::{CpuMsm, GzkpMsm, MsmEngine, ScalarVec, SubMsmPippenger};
use gzkp_ntt::gpu::GpuNttEngine;
use gzkp_ntt::{BaselineGpuNtt, GzkpNtt};
use gzkp_workloads::zcash::zcash_workloads;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn msm_stage_ms<EG1, EG2>(e_g1: &EG1, e_g2: &EG2, sparse: &ScalarVec, dense: &ScalarVec) -> f64
where
    EG1: MsmEngine<bls12_381::G1Config>,
    EG2: MsmEngine<bls12_381::G2Config>,
{
    e_g1.plan(sparse).total_ms() * 2.0
        + e_g1.plan(dense).total_ms()
        + e_g1.plan(sparse).total_ms()
        + e_g2.plan(sparse).total_ms()
}

fn main() {
    let mut rec = Recorder::new("table3_zcash");
    let dev = v100();
    let mut rng = StdRng::seed_from_u64(381);

    let bg_ntt = BaselineGpuNtt::new(dev.clone());
    let gzkp_ntt = GzkpNtt::auto::<Fr381>(dev.clone());
    let cpu_msm = CpuMsm::default();
    let bg_msm = SubMsmPippenger::new(dev.clone());
    let gzkp_msm = GzkpMsm::new(dev.clone());

    for w in zcash_workloads() {
        let log_n = w.domain_size().trailing_zeros();
        let sparse = w.sparse_scalar_vec::<Fr381, _>(&mut rng);
        let dense = w.dense_scalar_vec::<Fr381, _>(&mut rng);

        let poly_cpu = 7.0 * cpu_ntt_ms(log_n, 4);
        let poly_bg = 7.0 * GpuNttEngine::<Fr381>::cost(&bg_ntt, log_n).total_ms();
        let poly_gzkp = 7.0 * GpuNttEngine::<Fr381>::cost(&gzkp_ntt, log_n).total_ms();

        let msm_cpu = msm_stage_ms(&cpu_msm, &cpu_msm, &sparse, &dense);
        let msm_bg = msm_stage_ms(&bg_msm, &bg_msm, &sparse, &dense);
        let msm_gzkp = msm_stage_ms(&gzkp_msm, &gzkp_msm, &sparse, &dense);

        let bc = poly_cpu + msm_cpu;
        let bg = poly_bg + msm_bg;
        let ours = poly_gzkp + msm_gzkp;
        rec.row(
            w.name,
            "ms",
            vec![
                ("BC-POLY".into(), poly_cpu),
                ("BC-MSM".into(), msm_cpu),
                ("BG-POLY".into(), poly_bg),
                ("BG-MSM".into(), msm_bg),
                ("GZKP-POLY".into(), poly_gzkp),
                ("GZKP-MSM".into(), msm_gzkp),
                ("speedup-vs-BC".into(), speedup(bc, ours)),
                ("speedup-vs-BG".into(), speedup(bg, ours)),
            ],
        );
    }
    rec.finish();
}
