//! Table 2: end-to-end proof-generation time (POLY + MSM) for the six
//! zkSNARK application workloads on the 753-bit curve, V100 model.
//!
//! Per §5.2 one proof is 7 NTTs + 5 MSMs (a/b₁/h/l in G1, b₂ in G2).
//! Best-CPU = libsnark model (CPU NTT + parallel Pippenger);
//! Best-GPU = MINA (libsnark POLY + Straus MSM on GPU, as in the paper);
//! GZKP = shuffle-less NTT + consolidated load-balanced MSM.

use gzkp_bench::{cpu_ntt_ms, speedup, Recorder};
use gzkp_curves::t753;
use gzkp_ff::fields::Fr753;
use gzkp_gpu_sim::v100;
use gzkp_msm::{CpuMsm, GzkpMsm, MsmEngine, ScalarVec, StrausMsm};
use gzkp_ntt::gpu::GpuNttEngine;
use gzkp_ntt::GzkpNtt;
use gzkp_workloads::apps::zksnark_apps;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The five prover MSMs: four on sparse/dense G1 bases, one on G2.
fn msm_stage_ms<EG1, EG2>(e_g1: &EG1, e_g2: &EG2, sparse: &ScalarVec, dense: &ScalarVec) -> f64
where
    EG1: MsmEngine<t753::G1Config>,
    EG2: MsmEngine<t753::G2Config>,
{
    e_g1.plan(sparse).total_ms() * 2.0 // a-query + b_g1-query
        + e_g1.plan(dense).total_ms() // h-query
        + e_g1.plan(sparse).total_ms() // l-query
        + e_g2.plan(sparse).total_ms() // b_g2-query
}

fn main() {
    let mut rec = Recorder::new("table2_zksnark_apps");
    let dev = v100();
    let mut rng = StdRng::seed_from_u64(2023);

    let gzkp_ntt = GzkpNtt::auto::<Fr753>(dev.clone());
    let cpu_msm = CpuMsm::default();
    let straus = StrausMsm::new(dev.clone());
    let gzkp_msm = GzkpMsm::new(dev.clone());

    for w in zksnark_apps() {
        let log_n = w.domain_size().trailing_zeros();
        let sparse = w.sparse_scalar_vec::<Fr753, _>(&mut rng);
        let dense = w.dense_scalar_vec::<Fr753, _>(&mut rng);

        // POLY: 7 NTTs at the domain size.
        let poly_cpu = 7.0 * cpu_ntt_ms(log_n, 12);
        let poly_gzkp = 7.0 * GpuNttEngine::<Fr753>::cost(&gzkp_ntt, log_n).total_ms();

        // MSM stage per system.
        let msm_cpu = msm_stage_ms(&cpu_msm, &cpu_msm, &sparse, &dense);
        let msm_mina = msm_stage_ms(&straus, &straus, &sparse, &dense);
        let msm_gzkp = msm_stage_ms(&gzkp_msm, &gzkp_msm, &sparse, &dense);

        let bc = poly_cpu + msm_cpu;
        // MINA accelerates MSM only; its POLY time is libsnark's (§5.2).
        let bg = poly_cpu + msm_mina;
        let ours = poly_gzkp + msm_gzkp;
        rec.row(
            w.name,
            "ms",
            vec![
                ("BC-POLY".into(), poly_cpu),
                ("BC-MSM".into(), msm_cpu),
                ("BG-MSM".into(), msm_mina),
                ("GZKP-POLY".into(), poly_gzkp),
                ("GZKP-MSM".into(), msm_gzkp),
                ("speedup-vs-BC".into(), speedup(bc, ours)),
                ("speedup-vs-BG".into(), speedup(bg, ours)),
            ],
        );
    }
    rec.finish();
}
