//! Table 6: single-NTT latency on the GTX 1080 Ti model (2^14 … 2^24).

use gzkp_bench::{cpu_ntt_ms, speedup, Recorder};
use gzkp_ff::fields::{Fr254, Fr753};
use gzkp_gpu_sim::gtx1080ti;
use gzkp_ntt::gpu::GpuNttEngine;
use gzkp_ntt::{BaselineGpuNtt, GzkpNtt};

fn main() {
    let mut rec = Recorder::new("table6_ntt_1080ti");
    let gzkp753 = GzkpNtt::auto::<Fr753>(gtx1080ti());
    let gzkp256 = GzkpNtt::auto::<Fr254>(gtx1080ti());
    let bg256 = BaselineGpuNtt::new(gtx1080ti());

    for log_n in (14..=24).step_by(2) {
        let cpu753 = cpu_ntt_ms(log_n, 12);
        let g753 = GpuNttEngine::<Fr753>::cost(&gzkp753, log_n).total_ms();
        let bg = GpuNttEngine::<Fr254>::cost(&bg256, log_n).total_ms();
        let g256 = GpuNttEngine::<Fr254>::cost(&gzkp256, log_n).total_ms();
        rec.row(
            format!("2^{log_n}"),
            "ms",
            vec![
                ("753b-BestCPU".into(), cpu753),
                ("753b-GZKP".into(), g753),
                ("753b-speedup".into(), speedup(cpu753, g753)),
                ("256b-BestGPU".into(), bg),
                ("256b-GZKP".into(), g256),
                ("256b-speedup".into(), speedup(bg, g256)),
            ],
        );
    }
    rec.finish();
}
