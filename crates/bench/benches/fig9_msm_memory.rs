//! Figure 9: MSM device-memory usage vs scale on the V100 model —
//! GZKP vs MINA (Straus) on the 753-bit curve, GZKP vs bellperson on
//! BLS12-381. GZKP's checkpoint interval adapts to the 32 GB budget, so
//! its curve flattens past 2²² while Straus explodes.

use gzkp_bench::Recorder;
use gzkp_curves::{bls12_381, t753};
use gzkp_gpu_sim::v100;
use gzkp_msm::{GzkpMsm, MsmEngine, StrausMsm, SubMsmPippenger};

fn main() {
    let mut rec = Recorder::new("fig9_msm_memory");
    let dev = v100();
    let straus = StrausMsm::new(dev.clone());
    let bg = SubMsmPippenger::new(dev.clone());
    let gzkp = GzkpMsm::new(dev.clone());
    let gb = |b: u64| b as f64 / (1u64 << 30) as f64;

    for log_n in (14..=26).step_by(2) {
        let n = 1usize << log_n;
        let mina753 = MsmEngine::<t753::G1Config>::memory_bytes(&straus, n);
        let gzkp753 = MsmEngine::<t753::G1Config>::memory_bytes(&gzkp, n);
        let bg381 = MsmEngine::<bls12_381::G1Config>::memory_bytes(&bg, n);
        let gzkp381 = MsmEngine::<bls12_381::G1Config>::memory_bytes(&gzkp, n);
        rec.row(
            format!("2^{log_n}"),
            "GB",
            vec![
                ("MINA-MNT4".into(), gb(mina753)),
                ("GZKP-MNT4".into(), gb(gzkp753)),
                ("bellperson-BLS".into(), gb(bg381)),
                ("GZKP-BLS".into(), gb(gzkp381)),
                (
                    "MINA-OOM".into(),
                    f64::from(u8::from(mina753 > dev.global_mem_bytes)),
                ),
            ],
        );
    }
    rec.finish();
}
