//! Device-fleet throughput benchmark: the single-curve request stream of
//! `RequestWorkload::fleet_example()` replayed through the proving
//! service at one versus two simulated V100s — the scaling number the CI
//! regression gate diffs.
//!
//! Wall-clock rows are recorded like `service_throughput`'s, but the
//! scaling number the gate diffs is the fleet's *simulated* makespan —
//! the completion time of the last command-stream operation across all
//! device timelines. Host wall-clock cannot express device parallelism
//! here: the devices are simulated, so every "device" ultimately burns
//! the same host cores (a one-core CI runner would show 2 devices as
//! *slower* than 1). The simulator's makespan is the number the paper
//! reports, and it is machine-independent. Going from one to two V100s
//! must scale the simulated throughput with device count (the run
//! asserts ≥1.3x), and both fleets must produce proofs byte-identical
//! to the sequential baseline — placement and stealing may move work,
//! never change it.
//!
//! Modes: `GZKP_BENCH_SMOKE=1` replays the example workload once; the
//! default and `GZKP_BENCH_FULL=1` scale up the per-class counts.

use gzkp_bench::{speedup, Recorder};
use gzkp_gpu_sim::device::v100;
use gzkp_runtime::parse_devices;
use gzkp_service::{prepare, run_sequential, run_service, ReplayOutcome, ServiceConfig};
use gzkp_workloads::requests::RequestWorkload;

fn scaled_fleet_workload(count_scale: usize) -> RequestWorkload {
    let mut workload = RequestWorkload::fleet_example();
    for spec in &mut workload.requests {
        spec.count *= count_scale;
    }
    workload
}

fn fleet_cfg(spec: &str) -> ServiceConfig {
    ServiceConfig {
        devices: parse_devices(spec).expect("device spec"),
        // All-up-front submission: disable deadlines so queue depth never
        // converts into spurious misses on a slow runner.
        default_deadline: None,
        ..ServiceConfig::default()
    }
}

fn outcome_rows(rec: &mut Recorder, label: &str, outcome: &ReplayOutcome) {
    rec.row(
        label,
        "ms",
        vec![
            ("total".into(), outcome.total.as_secs_f64() * 1e3),
            ("p50".into(), outcome.percentile_ms(50.0)),
            ("p95".into(), outcome.percentile_ms(95.0)),
        ],
    );
}

fn assert_clean(label: &str, outcome: &ReplayOutcome) {
    assert_eq!(outcome.rejected, 0, "{label}: rejected requests");
    assert_eq!(outcome.deadline_missed, 0, "{label}: deadline misses");
    assert_eq!(outcome.failed, 0, "{label}: failed requests");
}

fn main() {
    let smoke = std::env::var("GZKP_BENCH_SMOKE")
        .map(|v| v != "0")
        .unwrap_or(false);
    let count_scale = if smoke {
        1
    } else if gzkp_bench::full_mode() {
        4
    } else {
        2
    };

    // One thread per prove: a worker is a device-sized execution slot.
    std::env::set_var("GZKP_THREADS", "1");

    let device = v100();
    let workload = scaled_fleet_workload(count_scale);
    let prepared = prepare(&workload, &device);

    let mut rec = Recorder::new("fleet_throughput");

    // --- Baseline: prove every request in arrival order. ---
    let sequential = run_sequential(&prepared, &device);
    outcome_rows(&mut rec, "sequential", &sequential);

    // --- Fleet mode at one and two simulated V100s. ---
    let one = run_service(&prepared, fleet_cfg("1"), &device);
    outcome_rows(&mut rec, "fleet-1xv100", &one);
    let two = run_service(&prepared, fleet_cfg("2"), &device);
    outcome_rows(&mut rec, "fleet-2xv100", &two);
    std::env::remove_var("GZKP_THREADS");

    assert_clean("fleet-1xv100", &one);
    assert_clean("fleet-2xv100", &two);
    assert_eq!(
        sequential.proofs, one.proofs,
        "1-device fleet proofs diverged from the sequential baseline"
    );
    assert_eq!(
        sequential.proofs, two.proofs,
        "2-device fleet proofs diverged from the sequential baseline"
    );

    // Per-device placement of the 2-device run, for the record.
    let one_util = one.fleet.as_ref().expect("fleet mode");
    let util = two.fleet.as_ref().expect("fleet mode");
    print!("{}", util.render());
    rec.row(
        "fleet-2xv100-devices",
        "count",
        vec![
            ("dev0-jobs".into(), util.devices[0].jobs as f64),
            ("dev1-jobs".into(), util.devices[1].jobs as f64),
            (
                "steals".into(),
                util.devices.iter().map(|d| d.steals).sum::<u64>() as f64,
            ),
        ],
    );

    // Simulated makespans: the device-timeline completion times the
    // scaling claim is about (host wall-clock rows above are informative
    // only — simulated devices share the host's cores).
    rec.row(
        "sim-makespan",
        "ms",
        vec![
            ("1xv100".into(), one_util.elapsed_ns / 1e6),
            ("2xv100".into(), util.elapsed_ns / 1e6),
        ],
    );

    let scaling = speedup(one_util.elapsed_ns, util.elapsed_ns);
    let sim_rate = |elapsed_ns: f64| prepared.len() as f64 / (elapsed_ns / 1e9);
    println!(
        "fleet scaling (simulated): 1xV100 {:.1}/s -> 2xV100 {:.1}/s ({scaling:.2}x, {} proofs)",
        sim_rate(one_util.elapsed_ns),
        sim_rate(util.elapsed_ns),
        prepared.len()
    );
    assert!(
        scaling >= 1.3,
        "2 devices must give >=1.3x simulated service throughput over 1 (got {scaling:.2}x)"
    );

    // Machine-independent gate row: fraction of the 1-device simulated
    // makespan the 2-device fleet needs (lower is better; a rise is a
    // regression).
    rec.row(
        "gate",
        "ratio",
        vec![("2dev-vs-1dev".into(), util.elapsed_ns / one_util.elapsed_ns)],
    );
    rec.finish();
}
