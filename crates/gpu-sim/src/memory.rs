//! Global-memory traffic modelling: warp coalescing and an L2 cache model.
//!
//! The engines (NTT/MSM) describe their access patterns; this module turns
//! them into DRAM sector counts. Two levels of fidelity are provided:
//!
//! * **Analytic** — [`coalesced_sectors`] / [`strided_warp_sectors`] compute
//!   exact sector counts for the regular patterns ZKP kernels use. This is
//!   what the cost model consumes (fast enough for 2²⁶-element sweeps).
//! * **Stateful** — [`L2Cache`], a set-associative LRU model used by tests
//!   to validate the analytic formulas on small instances, and by the
//!   bucket-scatter analysis of the MSM preprocessing.

/// Number of DRAM sectors touched by a fully coalesced transfer of `bytes`.
pub fn coalesced_sectors(bytes: u64, sector_bytes: u64) -> u64 {
    bytes.div_ceil(sector_bytes)
}

/// Sectors touched by one warp reading `warp_size` words of `word_bytes`
/// each, where consecutive lanes' addresses are `stride_words` words apart.
///
/// With the paper's column-major layout, lane `k` of a warp reads word `w`
/// of element `i + k·s`; addresses are `s · word_bytes` apart. A 32 B sector
/// then covers `max(1, sector/word/s)` useful lanes.
pub fn strided_warp_sectors(
    warp_size: u64,
    word_bytes: u64,
    stride_words: u64,
    sector_bytes: u64,
) -> u64 {
    debug_assert!(stride_words >= 1);
    let words_per_sector = (sector_bytes / word_bytes).max(1);
    let useful_per_sector = (words_per_sector / stride_words).max(1);
    warp_size.div_ceil(useful_per_sector)
}

/// Total sectors for a kernel phase that moves `total_words` words at a
/// given element stride (column-major layout, warp-granular).
pub fn strided_phase_sectors(
    total_words: u64,
    word_bytes: u64,
    stride_words: u64,
    warp_size: u64,
    sector_bytes: u64,
) -> u64 {
    let warps = total_words.div_ceil(warp_size);
    warps * strided_warp_sectors(warp_size, word_bytes, stride_words, sector_bytes)
}

/// A set-associative, LRU, sector-granular cache model.
///
/// # Examples
///
/// ```
/// use gzkp_gpu_sim::memory::L2Cache;
/// let mut l2 = L2Cache::new(4096, 32, 8); // 4 KB, 32 B sectors, 8-way
/// assert!(!l2.access(0));   // cold miss
/// assert!(l2.access(0));    // hit
/// assert!(l2.access(31));   // same sector
/// assert!(!l2.access(32));  // next sector: miss
/// ```
#[derive(Debug, Clone)]
pub struct L2Cache {
    sector_bytes: u64,
    num_sets: u64,
    ways: usize,
    /// `sets[set][way] = (tag, lru_counter)`; empty ways hold `u64::MAX` tags.
    sets: Vec<Vec<(u64, u64)>>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl L2Cache {
    /// Creates a cache of `capacity_bytes` with the given sector size and
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sectors or ways).
    pub fn new(capacity_bytes: u64, sector_bytes: u64, ways: usize) -> Self {
        assert!(sector_bytes > 0 && ways > 0);
        let sectors = capacity_bytes / sector_bytes;
        assert!(
            sectors as usize >= ways,
            "capacity too small for associativity"
        );
        let num_sets = (sectors / ways as u64).max(1);
        Self {
            sector_bytes,
            num_sets,
            ways,
            sets: vec![Vec::new(); num_sets as usize],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses a byte address; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let sector = addr / self.sector_bytes;
        let set_idx = (sector % self.num_sets) as usize;
        let tag = sector / self.num_sets;
        let set = &mut self.sets[set_idx];
        if let Some(entry) = set.iter_mut().find(|(t, _)| *t == tag) {
            entry.1 = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if set.len() < self.ways {
            set.push((tag, self.clock));
        } else {
            let lru = set
                .iter_mut()
                .min_by_key(|(_, c)| *c)
                .expect("nonempty set");
            *lru = (tag, self.clock);
        }
        false
    }

    /// Accesses a whole warp's worth of addresses; returns sectors missed.
    pub fn access_warp(&mut self, addrs: &[u64]) -> u64 {
        // Dedup sectors within the transaction first (coalescer).
        let mut sectors: Vec<u64> = addrs.iter().map(|a| a / self.sector_bytes).collect();
        sectors.sort_unstable();
        sectors.dedup();
        sectors
            .iter()
            .filter(|&&s| !self.access(s * self.sector_bytes))
            .count() as u64
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far (each miss is one DRAM sector fetch).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resets counters (not contents).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

/// Shared-memory bank-conflict model: given the bank index each lane of a
/// warp touches, the access replays once per maximum bank multiplicity.
pub fn bank_conflict_factor(lane_banks: &[u32], num_banks: u32) -> u32 {
    let mut counts = vec![0u32; num_banks as usize];
    for &b in lane_banks {
        counts[(b % num_banks) as usize] += 1;
    }
    counts.into_iter().max().unwrap_or(1).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_is_minimal() {
        assert_eq!(coalesced_sectors(256, 32), 8);
        assert_eq!(coalesced_sectors(1, 32), 1);
        assert_eq!(coalesced_sectors(0, 32), 0);
    }

    #[test]
    fn stride_one_is_coalesced() {
        // 32 lanes × 8 B contiguous = 256 B = 8 sectors.
        assert_eq!(strided_warp_sectors(32, 8, 1, 32), 8);
    }

    #[test]
    fn large_stride_amplifies_4x() {
        // stride ≥ 4 words of 8 B: every lane lands in its own sector.
        assert_eq!(strided_warp_sectors(32, 8, 4, 32), 32);
        assert_eq!(strided_warp_sectors(32, 8, 1024, 32), 32);
        // stride 2: two lanes share a sector.
        assert_eq!(strided_warp_sectors(32, 8, 2, 32), 16);
    }

    #[test]
    fn analytic_matches_stateful_cold_cache() {
        // Validate strided_warp_sectors against the L2 model with a cold
        // cache: DRAM sectors == analytic count.
        for stride in [1u64, 2, 4, 8] {
            let mut l2 = L2Cache::new(1 << 20, 32, 16);
            let addrs: Vec<u64> = (0..32).map(|k| k * stride * 8).collect();
            let missed = l2.access_warp(&addrs);
            assert_eq!(
                missed,
                strided_warp_sectors(32, 8, stride, 32),
                "stride {stride}"
            );
        }
    }

    #[test]
    fn l2_capacity_eviction() {
        let mut l2 = L2Cache::new(1024, 32, 2); // 32 sectors, 16 sets × 2 ways
                                                // Fill three tags in the same set -> one eviction.
        let set_stride = 16 * 32; // same set every 512 B
        assert!(!l2.access(0));
        assert!(!l2.access(set_stride));
        assert!(!l2.access(2 * set_stride)); // evicts addr 0 (LRU)
        assert!(!l2.access(0)); // miss again
        assert_eq!(l2.misses(), 4);
    }

    #[test]
    fn bank_conflicts() {
        // All lanes on distinct banks: factor 1.
        let distinct: Vec<u32> = (0..32).collect();
        assert_eq!(bank_conflict_factor(&distinct, 32), 1);
        // All lanes on the same bank: factor 32.
        assert_eq!(bank_conflict_factor(&[5; 32], 32), 32);
        // Stride-2: pairs collide.
        let stride2: Vec<u32> = (0..32).map(|i| (i * 2) % 32).collect();
        assert_eq!(bank_conflict_factor(&stride2, 32), 2);
    }
}
