//! Trace-context propagation: the `(job, stage, device)` identity a proof
//! request carries through every layer it touches.
//!
//! The service mints a [`TraceContext`] when it schedules a stage; fleet
//! placement stamps the device on; the command-stream ops, the chaos
//! fault oracle, and the metrics layer all key off the same context. One
//! formatting rule ([`TraceContext::op_label`]) is what makes a timeline
//! op, a fault-log entry, and a per-stage latency sample refer to the
//! same unit of work.

/// Propagated identity of one scheduled proof stage: which job, which
/// pipeline stage, and (once placed) which device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Service-assigned job id.
    pub job: u64,
    /// Pipeline stage label (`"poly"`, `"msm"`; see `telemetry::names`).
    pub stage: &'static str,
    /// Device index the stage is placed on; `None` before placement or on
    /// the host CPU fallback.
    pub device: Option<usize>,
}

impl TraceContext {
    /// Context for a stage of `job` before placement.
    pub fn new(job: u64, stage: &'static str) -> Self {
        TraceContext {
            job,
            stage,
            device: None,
        }
    }

    /// Stamps the placement device onto the context.
    #[must_use]
    pub fn on_device(mut self, device: Option<usize>) -> Self {
        self.device = device;
        self
    }

    /// The command-stream op label this stage's operations carry
    /// (`"job3.msm"`); device lanes already encode the device, so the
    /// label stays device-free and stable across re-placements.
    pub fn op_label(&self) -> String {
        format!("job{}.{}", self.job, self.stage)
    }

    /// Device label for metrics (`"dev0"`), when placed.
    pub fn device_label(&self) -> Option<String> {
        self.device.map(|d| format!("dev{d}"))
    }
}

impl std::fmt::Display for TraceContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.device {
            Some(d) => write!(f, "job{}.{}@dev{d}", self.job, self.stage),
            None => write!(f, "job{}.{}", self.job, self.stage),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        let ctx = TraceContext::new(3, "msm");
        assert_eq!(ctx.op_label(), "job3.msm");
        assert_eq!(ctx.device_label(), None);
        assert_eq!(ctx.to_string(), "job3.msm");
        let placed = ctx.on_device(Some(1));
        assert_eq!(placed.op_label(), "job3.msm", "label is device-free");
        assert_eq!(placed.device_label().as_deref(), Some("dev1"));
        assert_eq!(placed.to_string(), "job3.msm@dev1");
        assert_eq!(placed.on_device(None), ctx);
    }
}
