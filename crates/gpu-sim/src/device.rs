//! Device configurations and arithmetic cost tables.
//!
//! The two presets mirror the paper's evaluation hardware (§5.1): NVIDIA
//! Tesla V100 (32 GB) and GTX 1080 Ti (11 GB). Absolute constants are
//! calibrated so simulated times land in the magnitude range the paper
//! reports; all *comparisons* (GZKP vs baselines) emerge from operation
//! counts, traffic, occupancy and load balance — not from per-engine fudge
//! factors.

use serde::{Deserialize, Serialize};

/// Which finite-field multiplier backend a kernel uses (paper §4.3).
///
/// `FpLib` is GZKP's optimized library that additionally drives the
/// floating-point pipes with Dekker error-free transforms (implemented and
/// verified in `gzkp_ff::dfp`); it raises effective multiply throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Backend {
    /// Plain integer CIOS multiplication (what bellperson/MINA ship).
    Integer,
    /// GZKP's optimized library using idle FP units (the "w. lib" ablation).
    FpLib,
}

impl Backend {
    /// Multiplier-throughput factor relative to the integer path, by 64-bit
    /// limb count. Mirrors `gzkp_ff::dfp::fp_backend_speedup`.
    pub fn speedup(&self, limbs: usize) -> f64 {
        match self {
            Backend::Integer => 1.0,
            Backend::FpLib => match limbs {
                0..=4 => 1.35,
                5..=6 => 1.45,
                _ => 1.6,
            },
        }
    }
}

/// Static description of a simulated GPU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Marketing name, e.g. `"V100"`.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// DRAM bandwidth in bytes per nanosecond (== GB/s).
    pub dram_bytes_per_ns: f64,
    /// Total global memory in bytes (Fig. 9 / Table 7 OOM behaviour).
    pub global_mem_bytes: u64,
    /// L2 cache size in bytes.
    pub l2_bytes: u64,
    /// L2 sector (minimum DRAM transaction) size in bytes — 32 B on Volta.
    pub sector_bytes: u64,
    /// Usable shared memory per SM in bytes.
    pub shared_mem_per_sm: u64,
    /// Number of shared-memory banks (32 on all modern parts).
    pub shared_banks: u32,
    /// Shared-memory bandwidth per SM, bytes/ns (conflict-free).
    pub shared_bytes_per_ns: f64,
    /// Threads per warp.
    pub warp_size: u32,
    /// Hardware limit on threads per block.
    pub max_threads_per_block: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// 64-bit multiply-accumulate throughput per SM, ops per nanosecond
    /// (integer pipeline).
    pub mac64_per_ns_per_sm: f64,
    /// Threads needed per block to saturate an SM's pipelines (below this,
    /// throughput scales down — the idle-warp pathology of Fig. 8).
    pub saturation_threads: u32,
    /// Fixed kernel launch overhead in ns.
    pub kernel_launch_ns: f64,
    /// Per-block hardware scheduling overhead in ns (paid once per block,
    /// pipelined across SMs).
    pub block_sched_ns: f64,
    /// Host↔device / device↔device copy bandwidth, bytes per ns (PCIe/NVLink
    /// class; used by the multi-GPU model of Table 4).
    pub interconnect_bytes_per_ns: f64,
    /// Fixed per-copy latency on the interconnect in ns: driver submission,
    /// DMA descriptor setup and link round-trip. Dominates small copies;
    /// amortized away by the MB-scale transfers the provers issue.
    pub interconnect_latency_ns: f64,
}

/// NVIDIA Tesla V100 (SXM2 32 GB) preset.
pub fn v100() -> DeviceConfig {
    DeviceConfig {
        name: "V100",
        num_sms: 80,
        dram_bytes_per_ns: 900.0,
        global_mem_bytes: 32 * (1 << 30),
        l2_bytes: 6 * (1 << 20),
        sector_bytes: 32,
        shared_mem_per_sm: 48 * 1024,
        shared_banks: 32,
        shared_bytes_per_ns: 128.0,
        warp_size: 32,
        max_threads_per_block: 1024,
        max_blocks_per_sm: 16,
        // 1.38 GHz, 64 INT32 lanes; a 64-bit MAC costs ~4 INT32 ops, and
        // real kernels reach roughly half of peak: 1.38*64/4*0.45 ≈ 10.
        mac64_per_ns_per_sm: 10.0,
        saturation_threads: 256,
        kernel_launch_ns: 5_000.0,
        block_sched_ns: 250.0,
        interconnect_bytes_per_ns: 25.0,
        interconnect_latency_ns: 10_000.0,
    }
}

/// NVIDIA GTX 1080 Ti preset.
pub fn gtx1080ti() -> DeviceConfig {
    DeviceConfig {
        name: "GTX1080Ti",
        num_sms: 28,
        dram_bytes_per_ns: 484.0,
        global_mem_bytes: 11 * (1 << 30),
        l2_bytes: 2816 * 1024,
        sector_bytes: 32,
        shared_mem_per_sm: 48 * 1024,
        shared_banks: 32,
        shared_bytes_per_ns: 96.0,
        warp_size: 32,
        max_threads_per_block: 1024,
        max_blocks_per_sm: 16,
        // 1.58 GHz, 128 FP32/INT lanes but much weaker 64-bit integer path
        // than Volta; Pascal lacks independent INT units.
        mac64_per_ns_per_sm: 7.0,
        saturation_threads: 256,
        kernel_launch_ns: 6_000.0,
        block_sched_ns: 300.0,
        interconnect_bytes_per_ns: 12.0,
        interconnect_latency_ns: 11_000.0,
    }
}

/// The paper's CPU baseline host (§5.1): dual Xeon Gold 5117, 28 physical
/// cores, 2.0 GHz. Modelled through the same scheduler so CPU-vs-GPU
/// comparisons live in one consistent simulated world; each "SM" is a core.
///
/// Calibration anchor: the paper's intro quotes 230 ns per 381-bit modular
/// multiplication on a mainstream server — `field_mul_macs(6) ≈ 90` MACs /
/// 230 ns ≈ 0.4 MAC/ns per core.
pub fn cpu_xeon() -> DeviceConfig {
    DeviceConfig {
        name: "2xXeon5117",
        num_sms: 28,
        dram_bytes_per_ns: 100.0,
        global_mem_bytes: 256 * (1 << 30),
        l2_bytes: 38 * (1 << 20), // L3, effectively
        sector_bytes: 64,
        shared_mem_per_sm: 1 << 20, // L2-per-core stands in; never binding
        shared_banks: 1,
        shared_bytes_per_ns: 1000.0,
        warp_size: 1,
        max_threads_per_block: 1,
        max_blocks_per_sm: 1,
        mac64_per_ns_per_sm: 0.4,
        saturation_threads: 1,
        kernel_launch_ns: 2_000.0, // thread-pool dispatch
        block_sched_ns: 100.0,
        interconnect_bytes_per_ns: 10.0,
        interconnect_latency_ns: 1_000.0,
    }
}

/// Cost of one Montgomery multiplication of `m`-limb values, in 64-bit
/// MAC-equivalents (CIOS: `2m² + m` MACs plus bookkeeping).
pub fn field_mul_macs(m: usize) -> f64 {
    (2 * m * m + m) as f64 * 1.15 // +15% carry/branch bookkeeping
}

/// Cost of one field addition/subtraction in MAC-equivalents.
pub fn field_add_macs(m: usize) -> f64 {
    m as f64 * 0.35
}

/// MAC-equivalents of a Jacobian point addition (PADD): 11M + 5S.
pub fn padd_macs(m: usize) -> f64 {
    16.0 * field_mul_macs(m) + 7.0 * field_add_macs(m)
}

/// MAC-equivalents of a mixed (Jacobian+affine) addition: 7M + 4S.
pub fn padd_mixed_macs(m: usize) -> f64 {
    11.0 * field_mul_macs(m) + 7.0 * field_add_macs(m)
}

/// MAC-equivalents of a Jacobian doubling: 2M + 5S.
pub fn pdbl_macs(m: usize) -> f64 {
    7.0 * field_mul_macs(m) + 11.0 * field_add_macs(m)
}

/// MAC-equivalents of an extension-degree multiplier for G2 points over
/// `Fq2` (Karatsuba: one Fq2 mul = 3 Fq muls), applied by MSM engines when
/// pricing G2 curves.
pub fn fq2_mul_factor() -> f64 {
    3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_sane() {
        let v = v100();
        let g = gtx1080ti();
        assert!(v.num_sms > g.num_sms);
        assert!(v.dram_bytes_per_ns > g.dram_bytes_per_ns);
        assert!(v.global_mem_bytes > g.global_mem_bytes);
        assert_eq!(v.sector_bytes, 32);
    }

    #[test]
    fn cost_tables_monotone() {
        assert!(field_mul_macs(12) > field_mul_macs(6));
        assert!(field_mul_macs(6) > field_mul_macs(4));
        assert!(padd_macs(4) > padd_mixed_macs(4));
        assert!(padd_mixed_macs(4) > pdbl_macs(4) * 0.5);
    }

    #[test]
    fn backend_speedup_bounds() {
        for m in [4usize, 6, 12] {
            let s = Backend::FpLib.speedup(m);
            assert!(s > 1.0 && s < 2.0);
            assert_eq!(Backend::Integer.speedup(m), 1.0);
        }
    }

    #[test]
    fn mul_cost_matches_cios_structure() {
        // 4-limb CIOS: 2*16+4 = 36 MACs before bookkeeping.
        assert!((field_mul_macs(4) - 36.0 * 1.15).abs() < 1e-9);
    }
}
