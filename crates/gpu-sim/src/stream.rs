//! Per-device command streams with events: copy/compute overlap in
//! simulated time.
//!
//! A real GPU exposes (at least) three engines that run concurrently — an
//! H2D copy engine, the SMs, and a D2H copy engine — and CUDA streams
//! order work *within* a stream while letting different streams' work
//! overlap across engines. This module is the deterministic cost-model
//! analogue: a [`DeviceTimeline`] keeps a busy-until cursor per engine and
//! per stream, and each issued operation starts at
//! `max(stream cursor, engine free, awaited events)`.
//!
//! The double-buffered upload pipeline the runtime builds on top of this
//! is the classic CUDA producer/consumer shape: issue copy `i+1` on the
//! copy stream while kernel `i` runs on the compute stream, with an event
//! making kernel `i+1` wait for its data. In the model, exactly as on
//! hardware, the exposed transfer time collapses to whatever compute
//! cannot hide.

use crate::device::DeviceConfig;
use crate::kernel::{simulate_kernel, KernelReport, KernelSpec};
use crate::transfer::{transfer_time_ns, HostMem};
use serde::{Deserialize, Serialize};

/// The concurrent hardware engines of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// Host-to-device DMA engine.
    H2d,
    /// The SMs (kernel execution).
    Compute,
    /// Device-to-host DMA engine.
    D2h,
    /// Device-to-device copy engine (NVLink P2P or host-staged fallback).
    P2p,
}

impl EngineKind {
    /// Stable span/lane label: `"h2d"`, `"kernel"`, `"d2h"`, `"p2p"`.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::H2d => "h2d",
            EngineKind::Compute => "kernel",
            EngineKind::D2h => "d2h",
            EngineKind::P2p => "p2p",
        }
    }

    fn index(self) -> usize {
        match self {
            EngineKind::H2d => 0,
            EngineKind::Compute => 1,
            EngineKind::D2h => 2,
            EngineKind::P2p => 3,
        }
    }
}

/// Handle to a command stream on a [`DeviceTimeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamId(usize);

/// Completion marker of an issued operation; waiting on it from another
/// stream orders that stream after the operation (cudaEvent semantics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    at_ns: f64,
}

impl Event {
    /// Simulated completion time of the recorded operation.
    pub fn at_ns(self) -> f64 {
        self.at_ns
    }

    /// Event completing at an externally computed time. Used to order one
    /// device's streams after another device's work (cross-device P2P):
    /// the destination timeline waits on an event carrying the source
    /// timeline's completion time.
    pub fn at(at_ns: f64) -> Self {
        Event { at_ns }
    }
}

/// One scheduled operation on a device engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamOp {
    /// Operation label (kernel or copy name).
    pub name: String,
    /// Engine the operation ran on.
    pub engine: EngineKind,
    /// Issuing stream index.
    pub stream: usize,
    /// Simulated start time.
    pub start_ns: f64,
    /// Simulated end time.
    pub end_ns: f64,
    /// Bytes moved (copies) or 0 (kernels).
    pub bytes: u64,
}

/// Deterministic per-device schedule of copies and kernels.
///
/// Operations issued on the same stream serialize; operations on different
/// streams overlap unless they contend for the same engine or are ordered
/// by an explicit [`Event`] wait.
#[derive(Debug, Clone)]
pub struct DeviceTimeline {
    device: DeviceConfig,
    engine_free: [f64; 4],
    streams: Vec<f64>,
    ops: Vec<StreamOp>,
    h2d_bytes: u64,
    d2h_bytes: u64,
    p2p_bytes: u64,
}

impl DeviceTimeline {
    /// Empty timeline for `device` with no streams yet.
    pub fn new(device: DeviceConfig) -> Self {
        DeviceTimeline {
            device,
            engine_free: [0.0; 4],
            streams: Vec::new(),
            ops: Vec::new(),
            h2d_bytes: 0,
            d2h_bytes: 0,
            p2p_bytes: 0,
        }
    }

    /// The device this timeline schedules onto.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// Create a new command stream (its cursor starts at time 0).
    pub fn stream(&mut self) -> StreamId {
        self.streams.push(0.0);
        StreamId(self.streams.len() - 1)
    }

    fn issue(
        &mut self,
        stream: StreamId,
        engine: EngineKind,
        name: &str,
        duration_ns: f64,
        bytes: u64,
    ) -> Event {
        let e = engine.index();
        let start = self.streams[stream.0].max(self.engine_free[e]);
        let end = start + duration_ns;
        self.streams[stream.0] = end;
        self.engine_free[e] = end;
        self.ops.push(StreamOp {
            name: name.to_string(),
            engine,
            stream: stream.0,
            start_ns: start,
            end_ns: end,
            bytes,
        });
        Event { at_ns: end }
    }

    /// Block `stream` until `event` has completed (cudaStreamWaitEvent).
    pub fn wait(&mut self, stream: StreamId, event: Event) {
        self.streams[stream.0] = self.streams[stream.0].max(event.at_ns);
    }

    /// Enqueue a host-to-device copy of `bytes` from `mem` host memory.
    pub fn h2d(&mut self, stream: StreamId, name: &str, bytes: u64, mem: HostMem) -> Event {
        let t = transfer_time_ns(&self.device, bytes, mem);
        self.h2d_bytes += bytes;
        self.issue(stream, EngineKind::H2d, name, t, bytes)
    }

    /// Enqueue a device-to-host copy of `bytes` into `mem` host memory.
    pub fn d2h(&mut self, stream: StreamId, name: &str, bytes: u64, mem: HostMem) -> Event {
        let t = transfer_time_ns(&self.device, bytes, mem);
        self.d2h_bytes += bytes;
        self.issue(stream, EngineKind::D2h, name, t, bytes)
    }

    /// Enqueue a device-to-device copy of `bytes` with a pre-computed
    /// duration (priced by [`crate::transfer::d2d_time_ns`], which knows
    /// both link ends; the timeline only knows its own device).
    pub fn d2d(&mut self, stream: StreamId, name: &str, bytes: u64, duration_ns: f64) -> Event {
        self.p2p_bytes += bytes;
        self.issue(stream, EngineKind::P2p, name, duration_ns, bytes)
    }

    /// Enqueue a kernel with a pre-computed duration (e.g. a
    /// [`crate::kernel::StageReport`] total).
    pub fn kernel_ns(&mut self, stream: StreamId, name: &str, duration_ns: f64) -> Event {
        self.issue(stream, EngineKind::Compute, name, duration_ns, 0)
    }

    /// Enqueue a kernel priced through [`simulate_kernel`].
    pub fn kernel(&mut self, stream: StreamId, spec: &KernelSpec) -> (Event, KernelReport) {
        let report = simulate_kernel(&self.device, spec);
        let ev = self.issue(stream, EngineKind::Compute, &spec.name, report.time_ns, 0);
        (ev, report)
    }

    /// Makespan: completion time of the last scheduled operation.
    pub fn elapsed_ns(&self) -> f64 {
        self.ops.iter().fold(0.0, |m, op| m.max(op.end_ns))
    }

    /// Total busy time of one engine (sum of its op durations).
    pub fn busy_ns(&self, engine: EngineKind) -> f64 {
        self.ops
            .iter()
            .filter(|op| op.engine == engine)
            .map(|op| op.end_ns - op.start_ns)
            .sum()
    }

    /// All scheduled operations in issue order.
    pub fn ops(&self) -> &[StreamOp] {
        &self.ops
    }

    /// Total bytes uploaded.
    pub fn h2d_bytes(&self) -> u64 {
        self.h2d_bytes
    }

    /// Total bytes downloaded.
    pub fn d2h_bytes(&self) -> u64 {
        self.d2h_bytes
    }

    /// Total bytes moved device-to-device.
    pub fn p2p_bytes(&self) -> u64 {
        self.p2p_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::v100;

    #[test]
    fn same_stream_serializes() {
        let mut tl = DeviceTimeline::new(v100());
        let s = tl.stream();
        tl.h2d(s, "up", 1 << 20, HostMem::Pinned);
        tl.kernel_ns(s, "k", 50_000.0);
        let copy_t = transfer_time_ns(tl.device(), 1 << 20, HostMem::Pinned);
        assert!((tl.elapsed_ns() - (copy_t + 50_000.0)).abs() < 1e-6);
    }

    #[test]
    fn copies_overlap_compute_across_streams() {
        // Kernel on stream A while stream B uploads: engines are
        // independent, so the makespan is the max, not the sum.
        let mut tl = DeviceTimeline::new(v100());
        let a = tl.stream();
        let b = tl.stream();
        tl.kernel_ns(a, "k", 200_000.0);
        tl.h2d(b, "up", 1 << 20, HostMem::Pinned);
        let copy_t = transfer_time_ns(tl.device(), 1 << 20, HostMem::Pinned);
        assert!(copy_t < 200_000.0);
        assert!((tl.elapsed_ns() - 200_000.0).abs() < 1e-6);
    }

    #[test]
    fn same_engine_contends_across_streams() {
        let mut tl = DeviceTimeline::new(v100());
        let a = tl.stream();
        let b = tl.stream();
        tl.h2d(a, "up0", 1 << 20, HostMem::Pinned);
        tl.h2d(b, "up1", 1 << 20, HostMem::Pinned);
        let copy_t = transfer_time_ns(tl.device(), 1 << 20, HostMem::Pinned);
        assert!((tl.elapsed_ns() - 2.0 * copy_t).abs() < 1e-6);
    }

    #[test]
    fn event_wait_orders_streams() {
        let mut tl = DeviceTimeline::new(v100());
        let copy = tl.stream();
        let exec = tl.stream();
        let ev = tl.h2d(copy, "up", 1 << 24, HostMem::Pinned);
        tl.wait(exec, ev);
        tl.kernel_ns(exec, "k", 10_000.0);
        assert!((tl.elapsed_ns() - (ev.at_ns() + 10_000.0)).abs() < 1e-6);
    }

    #[test]
    fn double_buffered_pipeline_hides_uploads() {
        // Upload i+1 under kernel i; only the first upload is exposed when
        // compute is longer than the copy.
        let mut tl = DeviceTimeline::new(v100());
        let copy = tl.stream();
        let exec = tl.stream();
        let bytes = 1u64 << 20;
        let copy_t = transfer_time_ns(tl.device(), bytes, HostMem::Pinned);
        let kernel_t = copy_t * 3.0;
        let n = 8;
        for i in 0..n {
            let ev = tl.h2d(copy, &format!("up{i}"), bytes, HostMem::Pinned);
            tl.wait(exec, ev);
            tl.kernel_ns(exec, &format!("k{i}"), kernel_t);
        }
        let pipelined = tl.elapsed_ns();
        let serial = (copy_t + kernel_t) * n as f64;
        assert!((pipelined - (copy_t + kernel_t * n as f64)).abs() < 1e-3);
        assert!(pipelined < serial * 0.8);
        assert_eq!(tl.h2d_bytes(), bytes * n as u64);
        assert!(tl.busy_ns(EngineKind::Compute) > tl.busy_ns(EngineKind::H2d));
    }

    #[test]
    fn d2d_runs_on_its_own_engine() {
        // A D2D merge copy must not contend with the H2D upload engine:
        // NVLink P2P has its own port on real hardware.
        let mut tl = DeviceTimeline::new(v100());
        let a = tl.stream();
        let b = tl.stream();
        tl.h2d(a, "up", 1 << 20, HostMem::Pinned);
        tl.d2d(b, "merge", 1 << 20, 30_000.0);
        let copy_t = transfer_time_ns(tl.device(), 1 << 20, HostMem::Pinned);
        assert!((tl.elapsed_ns() - copy_t.max(30_000.0)).abs() < 1e-6);
        assert_eq!(tl.p2p_bytes(), 1 << 20);
        assert_eq!(tl.h2d_bytes(), 1 << 20);
    }

    #[test]
    fn external_event_orders_cross_device_work() {
        // Device B's merge kernel waits on an event carrying device A's
        // completion time — the cross-device ordering primitive.
        let mut a = DeviceTimeline::new(v100());
        let sa = a.stream();
        let done_a = a.kernel_ns(sa, "partial", 500_000.0);

        let mut b = DeviceTimeline::new(v100());
        let sb = b.stream();
        b.wait(sb, Event::at(done_a.at_ns()));
        b.d2d(sb, "recv", 4096, 12_000.0);
        b.kernel_ns(sb, "merge", 8_000.0);
        assert!((b.elapsed_ns() - (500_000.0 + 12_000.0 + 8_000.0)).abs() < 1e-6);
    }

    #[test]
    fn ops_record_lanes() {
        let mut tl = DeviceTimeline::new(v100());
        let s = tl.stream();
        tl.h2d(s, "up", 4096, HostMem::Pageable);
        tl.kernel_ns(s, "k", 1.0);
        tl.d2h(s, "down", 128, HostMem::Pinned);
        let labels: Vec<&str> = tl.ops().iter().map(|o| o.engine.label()).collect();
        assert_eq!(labels, ["h2d", "kernel", "d2h"]);
        assert_eq!(tl.d2h_bytes(), 128);
    }
}
