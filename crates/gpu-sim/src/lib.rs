//! # gzkp-gpu-sim — deterministic GPU cost-model simulator
//!
//! The GZKP paper's results are wall-clock times of CUDA kernels on V100 /
//! GTX 1080 Ti hardware that this environment does not have. Per the
//! substitution documented in `DESIGN.md`, the NTT and MSM engines in this
//! workspace run their *functional* computation in plain Rust (bit-exact,
//! cross-validated) and describe their *execution structure* — grids,
//! blocks, per-block operation counts, global-memory traffic, shared-memory
//! traffic — to this crate, which converts it into simulated time.
//!
//! What is modelled (and why it is enough for the paper's comparisons):
//!
//! * **Wave scheduling with straggler effects** — load imbalance (§4.2) and
//!   tiny-block scheduling overhead (Fig. 8) fall out of `max()` over
//!   blocks in a wave and per-block dispatch cost.
//! * **DRAM sector traffic with warp coalescing** — the shuffle-vs-
//!   shuffle-less NTT comparison (§3) is a traffic ratio; see [`memory`].
//! * **Occupancy** — shared-memory- and thread-limited blocks per SM.
//! * **Arithmetic throughput by limb count and backend** — the integer vs
//!   floating-point (Dekker) finite-field library ablation (§4.3) is a
//!   throughput ratio; see [`device::Backend`].
//! * **Device memory capacity** — Straus/MINA's OOM at 2²² (Table 7) and
//!   the Fig. 9 memory curves check against
//!   [`device::DeviceConfig::global_mem_bytes`].
//!
//! ## Example
//!
//! ```
//! use gzkp_gpu_sim::device::{v100, Backend};
//! use gzkp_gpu_sim::kernel::{simulate_kernel, BlockCost, KernelSpec};
//!
//! let dev = v100();
//! let spec = KernelSpec::uniform(
//!     "demo", 256, 0, Backend::Integer, 4, 160,
//!     BlockCost { mac_ops: 1e6, dram_sectors: 4096, shared_bytes: 0 },
//! );
//! let report = simulate_kernel(&dev, &spec);
//! assert!(report.time_ns > 0.0);
//! ```

#![warn(missing_docs)]

pub mod context;
pub mod device;
pub mod fault;
pub mod kernel;
pub mod memory;
pub mod report;
pub mod stream;
pub mod transfer;

pub use context::TraceContext;
pub use device::{cpu_xeon, gtx1080ti, v100, Backend, DeviceConfig};
pub use fault::{FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultRates, FaultSummary};
pub use kernel::{
    multi_gpu_time_ns, simulate_kernel, BlockCost, KernelReport, KernelSpec, StageReport,
};
pub use report::{render_stage, utilization, Bottleneck, Utilization};
pub use stream::{DeviceTimeline, EngineKind, Event, StreamId, StreamOp};
pub use transfer::{
    d2d_time_ns, link_kind, transfer_bandwidth, transfer_time_ns, CopyDir, HostMem, LinkKind,
};
