//! Kernel descriptions and the wave scheduler.
//!
//! Engines describe each GPU kernel as a grid of [`BlockCost`]s; the
//! scheduler turns that into simulated nanoseconds on a [`DeviceConfig`].
//! The model is a per-wave roofline:
//!
//! * blocks are issued in waves of `num_sms × blocks_per_sm` (occupancy
//!   limited by shared-memory usage, thread count, and the hardware block
//!   limit);
//! * a wave takes `max(compute, DRAM, shared)` time, where compute is
//!   bounded both by aggregate throughput *and* by the slowest block in the
//!   wave — this is what makes **load imbalance** (§4.2) and **sub-optimal
//!   block division** (Fig. 8 discussion) emergent instead of hand-coded;
//! * per-block scheduling overhead and the kernel launch are added on top
//!   (the paper's "non-trivial GPU scheduling overheads" when tasks ≫ SMs).

use crate::device::{Backend, DeviceConfig};
use serde::{Deserialize, Serialize};

/// Cost footprint of one GPU block.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct BlockCost {
    /// 64-bit multiply-accumulate equivalents executed by the block
    /// (through [`crate::device::field_mul_macs`] and friends).
    pub mac_ops: f64,
    /// DRAM sectors moved by the block (after the engine's L2/coalescing
    /// analysis; see [`crate::memory`]).
    pub dram_sectors: u64,
    /// Shared-memory bytes moved, already multiplied by any bank-conflict
    /// replay factor.
    pub shared_bytes: u64,
}

impl BlockCost {
    /// Sums two block costs (useful when fusing phases into one block).
    pub fn merge(&self, other: &BlockCost) -> BlockCost {
        BlockCost {
            mac_ops: self.mac_ops + other.mac_ops,
            dram_sectors: self.dram_sectors + other.dram_sectors,
            shared_bytes: self.shared_bytes + other.shared_bytes,
        }
    }
}

/// A kernel: a grid of blocks plus per-block resource usage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelSpec {
    /// Name shown in reports, e.g. `"ntt.batch2"` or `"msm.point_merge"`.
    pub name: String,
    /// Threads per block (occupancy and saturation).
    pub threads_per_block: u32,
    /// Shared memory per block in bytes (occupancy).
    pub shared_mem_per_block: u64,
    /// Which finite-field backend the kernel's arithmetic uses.
    pub backend: Backend,
    /// 64-bit limb count of the field elements (backend speedup keying).
    pub limbs: usize,
    /// The blocks. Order matters: waves are issued in order, so engines
    /// should sort heavy tasks first when modelling GZKP's heaviest-first
    /// scheduling (§4.2).
    pub blocks: Vec<BlockCost>,
}

impl KernelSpec {
    /// Convenience constructor for a uniform grid.
    pub fn uniform(
        name: impl Into<String>,
        threads_per_block: u32,
        shared_mem_per_block: u64,
        backend: Backend,
        limbs: usize,
        num_blocks: usize,
        per_block: BlockCost,
    ) -> Self {
        Self {
            name: name.into(),
            threads_per_block,
            shared_mem_per_block,
            backend,
            limbs,
            blocks: vec![per_block; num_blocks],
        }
    }

    /// Total DRAM bytes this kernel moves.
    pub fn dram_bytes(&self, dev: &DeviceConfig) -> u64 {
        self.blocks.iter().map(|b| b.dram_sectors).sum::<u64>() * dev.sector_bytes
    }
}

/// Simulated execution report for one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelReport {
    /// Kernel name.
    pub name: String,
    /// Total simulated time in ns.
    pub time_ns: f64,
    /// Portion attributable to compute (MAC throughput).
    pub compute_ns: f64,
    /// Portion attributable to DRAM traffic.
    pub dram_ns: f64,
    /// Portion attributable to shared-memory traffic.
    pub shared_ns: f64,
    /// Launch + per-block scheduling overhead.
    pub overhead_ns: f64,
    /// Number of scheduling waves.
    pub waves: u32,
    /// Occupancy: blocks resident per SM.
    pub blocks_per_sm: u32,
    /// Total 64-bit MAC equivalents across all blocks (telemetry: the
    /// field-multiplication work the kernel performed).
    pub mac_ops: f64,
    /// Total DRAM sectors moved across all blocks (telemetry).
    pub dram_sectors: u64,
}

/// Simulates one kernel on a device.
pub fn simulate_kernel(dev: &DeviceConfig, spec: &KernelSpec) -> KernelReport {
    let speedup = spec.backend.speedup(spec.limbs);
    let sm_thr = dev.mac64_per_ns_per_sm * speedup;

    // Occupancy.
    let by_shared = dev
        .shared_mem_per_sm
        .checked_div(spec.shared_mem_per_block)
        .map_or(dev.max_blocks_per_sm, |b| b.max(1) as u32);
    let by_threads =
        (dev.max_threads_per_block / spec.threads_per_block.max(1)).clamp(1, dev.max_blocks_per_sm);
    let blocks_per_sm = by_shared.min(by_threads).min(dev.max_blocks_per_sm).max(1);
    let wave_capacity = (dev.num_sms * blocks_per_sm) as usize;

    // An SM is saturated by its *resident* threads across all co-resident
    // blocks; too few (e.g. the 2-thread blocks of the baseline NTT's last
    // batch) derate throughput.
    let resident_threads = (blocks_per_sm * spec.threads_per_block) as f64;
    let thread_util = (resident_threads / dev.saturation_threads as f64).clamp(1.0 / 64.0, 1.0);
    // Throughput available to a single block (its share of its SM).
    let per_block_thr = sm_thr * thread_util / blocks_per_sm as f64;

    let mut compute_ns = 0.0;
    let mut dram_ns = 0.0;
    let mut shared_ns = 0.0;
    let mut total_ns = 0.0;
    let mut waves = 0u32;

    for wave in spec.blocks.chunks(wave_capacity) {
        waves += 1;
        let wave_macs: f64 = wave.iter().map(|b| b.mac_ops).sum();
        let wave_sectors: u64 = wave.iter().map(|b| b.dram_sectors).sum();
        let wave_shared: u64 = wave.iter().map(|b| b.shared_bytes).sum();
        let max_block_macs = wave.iter().map(|b| b.mac_ops).fold(0.0f64, f64::max);

        // Aggregate throughput bound vs straggler bound.
        let agg_compute = wave_macs / (sm_thr * dev.num_sms as f64 * thread_util);
        let straggler = max_block_macs / per_block_thr;
        let c = agg_compute.max(straggler);
        let d = (wave_sectors * dev.sector_bytes) as f64 / dev.dram_bytes_per_ns;
        let s = wave_shared as f64 / (dev.shared_bytes_per_ns * dev.num_sms as f64);
        compute_ns += c;
        dram_ns += d;
        shared_ns += s;
        total_ns += c.max(d).max(s);
    }

    // Scheduling: the GigaThread engine dispatches blocks across SMs.
    let overhead_ns =
        dev.kernel_launch_ns + spec.blocks.len() as f64 * dev.block_sched_ns / dev.num_sms as f64;

    KernelReport {
        name: spec.name.clone(),
        time_ns: total_ns + overhead_ns,
        compute_ns,
        dram_ns,
        shared_ns,
        overhead_ns,
        waves,
        blocks_per_sm,
        mac_ops: spec.blocks.iter().map(|b| b.mac_ops).sum(),
        dram_sectors: spec.blocks.iter().map(|b| b.dram_sectors).sum(),
    }
}

/// A sequence of kernels making up a pipeline stage (e.g. "POLY" or "MSM").
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// Stage label.
    pub name: String,
    /// Kernel-level reports, in execution order.
    pub kernels: Vec<KernelReport>,
}

impl StageReport {
    /// Creates an empty stage.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            kernels: Vec::new(),
        }
    }

    /// Simulates and appends a kernel; returns its report time.
    pub fn run(&mut self, dev: &DeviceConfig, spec: &KernelSpec) -> f64 {
        let rep = simulate_kernel(dev, spec);
        let t = rep.time_ns;
        self.kernels.push(rep);
        t
    }

    /// Adds a fixed-cost item (e.g. a host-side step or a transfer).
    pub fn add_fixed(&mut self, name: impl Into<String>, time_ns: f64) {
        self.kernels.push(KernelReport {
            name: name.into(),
            time_ns,
            compute_ns: 0.0,
            dram_ns: 0.0,
            shared_ns: 0.0,
            overhead_ns: time_ns,
            waves: 0,
            blocks_per_sm: 0,
            mac_ops: 0.0,
            dram_sectors: 0,
        });
    }

    /// Total stage time in ns.
    pub fn total_ns(&self) -> f64 {
        self.kernels.iter().map(|k| k.time_ns).sum()
    }

    /// Total stage time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns() / 1e6
    }
}

/// Models a multi-GPU execution (Table 4): per-card stage times run in
/// parallel; cross-card combination traffic is serialized on the
/// interconnect afterwards.
pub fn multi_gpu_time_ns(dev: &DeviceConfig, per_card_ns: &[f64], combine_bytes: u64) -> f64 {
    let slowest = per_card_ns.iter().copied().fold(0.0f64, f64::max);
    slowest + combine_bytes as f64 / dev.interconnect_bytes_per_ns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::v100;

    fn simple_kernel(blocks: usize, macs: f64) -> KernelSpec {
        KernelSpec::uniform(
            "test",
            256,
            0,
            Backend::Integer,
            4,
            blocks,
            BlockCost {
                mac_ops: macs,
                dram_sectors: 0,
                shared_bytes: 0,
            },
        )
    }

    #[test]
    fn more_work_takes_longer() {
        let dev = v100();
        let a = simulate_kernel(&dev, &simple_kernel(80, 1e6));
        let b = simulate_kernel(&dev, &simple_kernel(80, 2e6));
        assert!(b.time_ns > a.time_ns);
    }

    #[test]
    fn load_imbalance_hurts() {
        let dev = v100();
        // Same total work (8e7 MACs over 80 blocks); the skewed variant puts
        // half of it in a single straggler block.
        let balanced = simple_kernel(80, 1e6);
        let total: f64 = balanced.blocks.iter().map(|b| b.mac_ops).sum();
        let mut skewed = simple_kernel(80, (total / 2.0) / 79.0);
        skewed.blocks[0].mac_ops = total / 2.0;
        let total_s: f64 = skewed.blocks.iter().map(|b| b.mac_ops).sum();
        assert!((total - total_s).abs() / total < 1e-9);
        let rb = simulate_kernel(&dev, &balanced);
        let rs = simulate_kernel(&dev, &skewed);
        assert!(
            rs.time_ns > rb.time_ns * 2.0,
            "{} vs {}",
            rs.time_ns,
            rb.time_ns
        );
    }

    #[test]
    fn fp_backend_is_faster() {
        let dev = v100();
        let mut k = simple_kernel(160, 1e6);
        let int_t = simulate_kernel(&dev, &k).time_ns;
        k.backend = Backend::FpLib;
        let fp_t = simulate_kernel(&dev, &k).time_ns;
        assert!(fp_t < int_t);
    }

    #[test]
    fn memory_bound_kernel_limited_by_dram() {
        let dev = v100();
        let k = KernelSpec::uniform(
            "memcpy",
            256,
            0,
            Backend::Integer,
            4,
            80,
            BlockCost {
                mac_ops: 1.0,
                dram_sectors: 1 << 20,
                shared_bytes: 0,
            },
        );
        let r = simulate_kernel(&dev, &k);
        // 80 * 2^20 sectors * 32 B / 900 B/ns ≈ 2.98e6 ns
        assert!(r.dram_ns > r.compute_ns * 100.0);
        assert!((r.time_ns - r.overhead_ns - r.dram_ns).abs() / r.dram_ns < 1e-6);
    }

    #[test]
    fn tiny_blocks_pay_scheduling_overhead() {
        let dev = v100();
        // 65536 blocks of 2 threads (the bellperson last-batch pathology).
        let many_tiny = KernelSpec::uniform(
            "tiny",
            2,
            0,
            Backend::Integer,
            4,
            65536,
            BlockCost {
                mac_ops: 100.0,
                dram_sectors: 0,
                shared_bytes: 0,
            },
        );
        let few_big = KernelSpec::uniform(
            "big",
            256,
            0,
            Backend::Integer,
            4,
            512,
            BlockCost {
                mac_ops: 100.0 * 128.0,
                dram_sectors: 0,
                shared_bytes: 0,
            },
        );
        let rt = simulate_kernel(&dev, &many_tiny);
        let rb = simulate_kernel(&dev, &few_big);
        assert!(rt.time_ns > rb.time_ns, "{} vs {}", rt.time_ns, rb.time_ns);
    }

    #[test]
    fn occupancy_respects_shared_mem() {
        let dev = v100();
        let k = KernelSpec::uniform(
            "shared-heavy",
            128,
            24 * 1024, // only 2 blocks of 24 KB fit in 48 KB
            Backend::Integer,
            4,
            100,
            BlockCost {
                mac_ops: 1000.0,
                dram_sectors: 0,
                shared_bytes: 0,
            },
        );
        let r = simulate_kernel(&dev, &k);
        assert_eq!(r.blocks_per_sm, 2);
    }

    #[test]
    fn stage_accumulates() {
        let dev = v100();
        let mut stage = StageReport::new("POLY");
        stage.run(&dev, &simple_kernel(80, 1e6));
        stage.run(&dev, &simple_kernel(80, 1e6));
        stage.add_fixed("h2d-copy", 1000.0);
        assert_eq!(stage.kernels.len(), 3);
        assert!(stage.total_ns() > 1000.0);
    }

    #[test]
    fn multi_gpu_bounded_by_slowest_plus_transfer() {
        let dev = v100();
        let t = multi_gpu_time_ns(&dev, &[1e6, 2e6, 1.5e6, 0.5e6], 25_000_000);
        assert!((t - (2e6 + 1e6)).abs() < 1.0); // 25 MB / 25 B/ns = 1e6 ns
    }
}
