//! Host↔device transfer cost model (PCIe / NVLink class links).
//!
//! The kernel model in [`crate::kernel`] prices on-device DRAM traffic
//! only; every byte was assumed to already live in device memory. This
//! module adds the missing edge of the roofline: explicit H2D/D2H copy
//! costs with a fixed per-copy latency and a bandwidth that depends on
//! whether the host buffer is pinned (DMA-able as-is) or pageable (the
//! driver stages it through an internal pinned bounce buffer first).
//!
//! Calibration: PCIe 3.0 x16 sustains ~12 GB/s pinned and roughly half
//! that pageable; NVLink-attached V100s see ~25 GB/s to the host. Those
//! are exactly the `interconnect_bytes_per_ns` values the presets already
//! carry for the multi-GPU model, so the same field drives both.

use crate::device::DeviceConfig;
use serde::{Deserialize, Serialize};

/// Effective-bandwidth factor of a pageable-host copy relative to pinned:
/// the driver memcpy through its bounce buffer roughly halves throughput.
pub const PAGEABLE_BW_FACTOR: f64 = 0.45;

/// Where the host side of a copy lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostMem {
    /// Page-locked host memory: the DMA engine reads it directly.
    Pinned,
    /// Ordinary pageable memory: staged through a driver bounce buffer.
    Pageable,
}

impl HostMem {
    /// Bandwidth factor relative to the link's pinned-copy rate.
    pub fn bandwidth_factor(self) -> f64 {
        match self {
            HostMem::Pinned => 1.0,
            HostMem::Pageable => PAGEABLE_BW_FACTOR,
        }
    }
}

/// Direction of a copy across the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CopyDir {
    /// Host to device (uploads: points, scalars, checkpoint tables).
    H2d,
    /// Device to host (downloads: MSM results, proofs).
    D2h,
}

/// Effective copy bandwidth in bytes/ns for `dev`'s link and host memory
/// kind.
pub fn transfer_bandwidth(dev: &DeviceConfig, mem: HostMem) -> f64 {
    dev.interconnect_bytes_per_ns * mem.bandwidth_factor()
}

/// Simulated time to move `bytes` across `dev`'s interconnect:
/// fixed submission/DMA-setup latency plus bytes over effective bandwidth.
pub fn transfer_time_ns(dev: &DeviceConfig, bytes: u64, mem: HostMem) -> f64 {
    dev.interconnect_latency_ns + bytes as f64 / transfer_bandwidth(dev, mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{gtx1080ti, v100};

    #[test]
    fn latency_dominates_small_copies() {
        let dev = v100();
        let t = transfer_time_ns(&dev, 64, HostMem::Pinned);
        assert!(t < dev.interconnect_latency_ns * 1.01);
        assert!(t >= dev.interconnect_latency_ns);
    }

    #[test]
    fn bandwidth_dominates_large_copies() {
        let dev = v100();
        let bytes = 1u64 << 30;
        let t = transfer_time_ns(&dev, bytes, HostMem::Pinned);
        let ideal = bytes as f64 / dev.interconnect_bytes_per_ns;
        assert!(t / ideal < 1.001); // latency is noise at 1 GiB
    }

    #[test]
    fn pageable_slower_than_pinned() {
        let dev = gtx1080ti();
        let bytes = 256u64 << 20;
        let pinned = transfer_time_ns(&dev, bytes, HostMem::Pinned);
        let pageable = transfer_time_ns(&dev, bytes, HostMem::Pageable);
        assert!(pageable > pinned * 1.8);
    }

    #[test]
    fn faster_link_is_faster() {
        let bytes = 1u64 << 28;
        let tv = transfer_time_ns(&v100(), bytes, HostMem::Pinned);
        let tg = transfer_time_ns(&gtx1080ti(), bytes, HostMem::Pinned);
        assert!(tv < tg);
    }
}
