//! Host↔device transfer cost model (PCIe / NVLink class links).
//!
//! The kernel model in [`crate::kernel`] prices on-device DRAM traffic
//! only; every byte was assumed to already live in device memory. This
//! module adds the missing edge of the roofline: explicit H2D/D2H copy
//! costs with a fixed per-copy latency and a bandwidth that depends on
//! whether the host buffer is pinned (DMA-able as-is) or pageable (the
//! driver stages it through an internal pinned bounce buffer first).
//!
//! Calibration: PCIe 3.0 x16 sustains ~12 GB/s pinned and roughly half
//! that pageable; NVLink-attached V100s see ~25 GB/s to the host. Those
//! are exactly the `interconnect_bytes_per_ns` values the presets already
//! carry for the multi-GPU model, so the same field drives both.

use crate::device::DeviceConfig;
use serde::{Deserialize, Serialize};

/// Effective-bandwidth factor of a pageable-host copy relative to pinned:
/// the driver memcpy through its bounce buffer roughly halves throughput.
pub const PAGEABLE_BW_FACTOR: f64 = 0.45;

/// Where the host side of a copy lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostMem {
    /// Page-locked host memory: the DMA engine reads it directly.
    Pinned,
    /// Ordinary pageable memory: staged through a driver bounce buffer.
    Pageable,
}

impl HostMem {
    /// Bandwidth factor relative to the link's pinned-copy rate.
    pub fn bandwidth_factor(self) -> f64 {
        match self {
            HostMem::Pinned => 1.0,
            HostMem::Pageable => PAGEABLE_BW_FACTOR,
        }
    }
}

/// Direction of a copy across the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CopyDir {
    /// Host to device (uploads: points, scalars, checkpoint tables).
    H2d,
    /// Device to host (downloads: MSM results, proofs).
    D2h,
}

/// Effective copy bandwidth in bytes/ns for `dev`'s link and host memory
/// kind.
pub fn transfer_bandwidth(dev: &DeviceConfig, mem: HostMem) -> f64 {
    dev.interconnect_bytes_per_ns * mem.bandwidth_factor()
}

/// Simulated time to move `bytes` across `dev`'s interconnect:
/// fixed submission/DMA-setup latency plus bytes over effective bandwidth.
pub fn transfer_time_ns(dev: &DeviceConfig, bytes: u64, mem: HostMem) -> f64 {
    dev.interconnect_latency_ns + bytes as f64 / transfer_bandwidth(dev, mem)
}

/// Minimum `interconnect_bytes_per_ns` at which an endpoint is considered
/// NVLink-attached. V100 presets carry 25 B/ns (NVLink), GTX 1080 Ti 12
/// B/ns (PCIe 3.0 x16): the classification splits exactly between them.
pub const NVLINK_MIN_BW: f64 = 20.0;

/// Submission latency of a direct NVLink P2P copy. Far below the PCIe
/// host-copy latency: no host round-trip, no driver bounce buffer — just
/// a cudaMemcpyPeer enqueue over the fabric.
pub const NVLINK_P2P_LATENCY_NS: f64 = 2_000.0;

/// How a device-to-device copy is routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Both endpoints sit on the NVLink fabric: direct peer copy.
    NvlinkP2p,
    /// At least one endpoint is PCIe-only: staged through pinned host
    /// memory (D2H on the source, then H2D on the destination).
    HostStaged,
}

/// Classify the link between two devices: NVLink P2P only when *both*
/// endpoints are NVLink-attached, else the copy must bounce via the host.
pub fn link_kind(src: &DeviceConfig, dst: &DeviceConfig) -> LinkKind {
    if src.interconnect_bytes_per_ns >= NVLINK_MIN_BW
        && dst.interconnect_bytes_per_ns >= NVLINK_MIN_BW
    {
        LinkKind::NvlinkP2p
    } else {
        LinkKind::HostStaged
    }
}

/// Simulated time to move `bytes` from `src`'s memory to `dst`'s memory.
///
/// NVLink P2P pays one small submission latency and streams at the
/// slower endpoint's link rate; the host-staged fallback pays the full
/// D2H + H2D round-trip through a pinned bounce buffer.
pub fn d2d_time_ns(src: &DeviceConfig, dst: &DeviceConfig, bytes: u64) -> f64 {
    match link_kind(src, dst) {
        LinkKind::NvlinkP2p => {
            let bw = src
                .interconnect_bytes_per_ns
                .min(dst.interconnect_bytes_per_ns);
            NVLINK_P2P_LATENCY_NS + bytes as f64 / bw
        }
        LinkKind::HostStaged => {
            transfer_time_ns(src, bytes, HostMem::Pinned)
                + transfer_time_ns(dst, bytes, HostMem::Pinned)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{gtx1080ti, v100};

    #[test]
    fn latency_dominates_small_copies() {
        let dev = v100();
        let t = transfer_time_ns(&dev, 64, HostMem::Pinned);
        assert!(t < dev.interconnect_latency_ns * 1.01);
        assert!(t >= dev.interconnect_latency_ns);
    }

    #[test]
    fn bandwidth_dominates_large_copies() {
        let dev = v100();
        let bytes = 1u64 << 30;
        let t = transfer_time_ns(&dev, bytes, HostMem::Pinned);
        let ideal = bytes as f64 / dev.interconnect_bytes_per_ns;
        assert!(t / ideal < 1.001); // latency is noise at 1 GiB
    }

    #[test]
    fn pageable_slower_than_pinned() {
        let dev = gtx1080ti();
        let bytes = 256u64 << 20;
        let pinned = transfer_time_ns(&dev, bytes, HostMem::Pinned);
        let pageable = transfer_time_ns(&dev, bytes, HostMem::Pageable);
        assert!(pageable > pinned * 1.8);
    }

    #[test]
    fn faster_link_is_faster() {
        let bytes = 1u64 << 28;
        let tv = transfer_time_ns(&v100(), bytes, HostMem::Pinned);
        let tg = transfer_time_ns(&gtx1080ti(), bytes, HostMem::Pinned);
        assert!(tv < tg);
    }

    #[test]
    fn v100_pair_classifies_as_nvlink() {
        assert_eq!(link_kind(&v100(), &v100()), LinkKind::NvlinkP2p);
        assert_eq!(link_kind(&v100(), &gtx1080ti()), LinkKind::HostStaged);
        assert_eq!(link_kind(&gtx1080ti(), &gtx1080ti()), LinkKind::HostStaged);
    }

    #[test]
    fn nvlink_p2p_beats_host_staging() {
        // A direct peer copy between V100s must be much cheaper than
        // bouncing the same bytes through host memory.
        let bytes = 64u64 << 20;
        let direct = d2d_time_ns(&v100(), &v100(), bytes);
        let staged = transfer_time_ns(&v100(), bytes, HostMem::Pinned)
            + transfer_time_ns(&v100(), bytes, HostMem::Pinned);
        assert!(direct < staged * 0.6);
    }

    #[test]
    fn pcie_pair_pays_host_round_trip() {
        let bytes = 16u64 << 20;
        let t = d2d_time_ns(&gtx1080ti(), &gtx1080ti(), bytes);
        let staged = 2.0 * transfer_time_ns(&gtx1080ti(), bytes, HostMem::Pinned);
        assert!((t - staged).abs() < 1e-6);
    }

    #[test]
    fn tiny_p2p_copy_is_latency_bound() {
        let t = d2d_time_ns(&v100(), &v100(), 256);
        assert!(t < NVLINK_P2P_LATENCY_NS * 1.01);
        assert!(t >= NVLINK_P2P_LATENCY_NS);
    }
}
