//! Human-readable rendering of simulation reports: per-kernel tables,
//! bottleneck attribution, and device-utilization summaries. Used by the
//! examples and handy when debugging a cost model.

use crate::device::DeviceConfig;
use crate::kernel::{KernelReport, StageReport};
use std::fmt::Write as _;

/// Which resource bounded a kernel's wave time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// MAC throughput (or a straggler block).
    Compute,
    /// DRAM bandwidth.
    Dram,
    /// Shared-memory bandwidth.
    Shared,
    /// Launch/scheduling overhead dominates.
    Overhead,
}

impl Bottleneck {
    /// Classifies a kernel report.
    pub fn of(k: &KernelReport) -> Self {
        let body = k.time_ns - k.overhead_ns;
        if k.overhead_ns > body {
            return Bottleneck::Overhead;
        }
        if k.dram_ns >= k.compute_ns && k.dram_ns >= k.shared_ns {
            Bottleneck::Dram
        } else if k.shared_ns >= k.compute_ns {
            Bottleneck::Shared
        } else {
            Bottleneck::Compute
        }
    }

    /// Short label.
    pub fn label(&self) -> &'static str {
        match self {
            Bottleneck::Compute => "compute",
            Bottleneck::Dram => "dram",
            Bottleneck::Shared => "shared",
            Bottleneck::Overhead => "overhead",
        }
    }
}

/// Renders a stage as an aligned text table with per-kernel bottlenecks.
pub fn render_stage(stage: &StageReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "stage {:<28} {:>10.3} ms",
        stage.name,
        stage.total_ms()
    );
    let _ = writeln!(
        out,
        "  {:<36} {:>10} {:>9} {:>9} {:>9} {:>6}",
        "kernel", "time(us)", "cmp(us)", "dram(us)", "ovh(us)", "bound"
    );
    for k in &stage.kernels {
        let _ = writeln!(
            out,
            "  {:<36} {:>10.1} {:>9.1} {:>9.1} {:>9.1} {:>6}",
            truncate(&k.name, 36),
            k.time_ns / 1e3,
            k.compute_ns / 1e3,
            k.dram_ns / 1e3,
            k.overhead_ns / 1e3,
            Bottleneck::of(k).label()
        );
    }
    out
}

/// Aggregate utilization of a stage on a device: the fraction of the
/// stage's span the respective resource was the binding constraint.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Utilization {
    /// Fraction of time bounded by compute.
    pub compute: f64,
    /// Fraction of time bounded by DRAM.
    pub dram: f64,
    /// Fraction of time bounded by shared memory.
    pub shared: f64,
    /// Fraction of time that is launch/scheduling overhead.
    pub overhead: f64,
}

/// Computes [`Utilization`] for a stage.
pub fn utilization(stage: &StageReport) -> Utilization {
    let total = stage.total_ns();
    if total <= 0.0 {
        return Utilization::default();
    }
    let mut u = Utilization::default();
    for k in &stage.kernels {
        let share = k.time_ns / total;
        match Bottleneck::of(k) {
            Bottleneck::Compute => u.compute += share,
            Bottleneck::Dram => u.dram += share,
            Bottleneck::Shared => u.shared += share,
            Bottleneck::Overhead => u.overhead += share,
        }
    }
    u
}

/// One-line device summary ("V100: 80 SMs, 900 GB/s, 32 GB").
pub fn device_summary(dev: &DeviceConfig) -> String {
    format!(
        "{}: {} SMs, {:.0} GB/s DRAM, {} GB global, {} KB shared/SM",
        dev.name,
        dev.num_sms,
        dev.dram_bytes_per_ns,
        dev.global_mem_bytes >> 30,
        dev.shared_mem_per_sm >> 10,
    )
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        // Take whole chars: byte-slicing panics mid-codepoint on
        // non-ASCII kernel names.
        let cut: String = s.chars().take(n.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{v100, Backend};
    use crate::kernel::{simulate_kernel, BlockCost, KernelSpec, StageReport};

    fn stage_with(macs: f64, sectors: u64) -> StageReport {
        let dev = v100();
        let mut st = StageReport::new("test");
        st.run(
            &dev,
            &KernelSpec::uniform(
                "k",
                256,
                0,
                Backend::Integer,
                4,
                160,
                BlockCost {
                    mac_ops: macs,
                    dram_sectors: sectors,
                    shared_bytes: 0,
                },
            ),
        );
        st
    }

    #[test]
    fn bottleneck_classification() {
        let compute_bound = stage_with(1e7, 1);
        assert_eq!(
            Bottleneck::of(&compute_bound.kernels[0]),
            Bottleneck::Compute
        );
        let dram_bound = stage_with(1.0, 1 << 22);
        assert_eq!(Bottleneck::of(&dram_bound.kernels[0]), Bottleneck::Dram);
        let overhead_bound = stage_with(1.0, 1);
        assert_eq!(
            Bottleneck::of(&overhead_bound.kernels[0]),
            Bottleneck::Overhead
        );
    }

    #[test]
    fn utilization_sums_to_one() {
        let mut st = stage_with(1e7, 1);
        let more = stage_with(1.0, 1 << 22);
        st.kernels.extend(more.kernels);
        let u = utilization(&st);
        let total = u.compute + u.dram + u.shared + u.overhead;
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        assert!(u.compute > 0.0 && u.dram > 0.0);
    }

    #[test]
    fn render_contains_kernels() {
        let st = stage_with(1e6, 100);
        let text = render_stage(&st);
        assert!(text.contains("stage test"));
        assert!(text.contains("bound"));
        assert!(text.lines().count() >= 3);
    }

    #[test]
    fn truncate_handles_multibyte_names() {
        // Regression: `&s[..n-1]` sliced bytes and panicked when the cut
        // landed inside a multi-byte char.
        let name = "ntt.bufferfly·größe·φ·大规模·12345678901234567890";
        let t = truncate(name, 36);
        assert!(t.chars().count() <= 36, "{t}");
        assert!(t.ends_with('…'));
        assert_eq!(truncate("короткий", 36), "короткий");
        // Exercise the render path end to end with a non-ASCII kernel name.
        let mut st = stage_with(1e6, 100);
        st.kernels[0].name = name.to_string();
        let text = render_stage(&st);
        assert!(text.contains("größe"));
    }

    #[test]
    fn device_summary_mentions_name() {
        let s = device_summary(&v100());
        assert!(s.contains("V100") && s.contains("80 SMs"));
        // Regression: kernel simulation is deterministic.
        let dev = v100();
        let spec = KernelSpec::uniform(
            "det",
            128,
            0,
            Backend::FpLib,
            6,
            320,
            BlockCost {
                mac_ops: 5e5,
                dram_sectors: 2048,
                shared_bytes: 4096,
            },
        );
        let a = simulate_kernel(&dev, &spec).time_ns;
        let b = simulate_kernel(&dev, &spec).time_ns;
        assert_eq!(a, b);
    }
}
