//! Deterministic, seed-driven fault injection for chaos testing.
//!
//! A production fleet sees transient kernel faults, transfer timeouts,
//! hung devices and — worst of all — silent data corruption. The
//! simulator cannot wait for real hardware to misbehave, so this module
//! injects those failures *deterministically*: every decision is a pure
//! hash of `(seed, job, stage, attempt)`, which makes a chaos run
//! replayable — the same [`FaultPlan`] seed produces the same fault
//! sequence on every run, regardless of thread interleaving, as long as
//! the per-device rate scales are uniform (a non-uniform scale ties the
//! draw threshold to the placement decision, which worker races may
//! change).
//!
//! The injector never touches engine code. The scheduler that owns a
//! stage asks [`FaultInjector::roll`] *before* running it and acts on the
//! answer: fail the stage, corrupt its output, or run it untouched.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// The failure taxonomy the injector can produce (DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultKind {
    /// A kernel aborted mid-flight (ECC error, illegal address, driver
    /// reset). The stage fails; re-running it succeeds.
    KernelFault,
    /// A host↔device copy exceeded its deadline. The stage fails without
    /// producing output.
    TransferTimeout,
    /// The device stopped responding entirely. The stage fails and the
    /// device should be treated as unhealthy (hard quarantine signal).
    DeviceHang,
    /// The stage *appears* to succeed but its output has a flipped limb —
    /// only a verify-before-return guard catches this.
    SilentCorruption,
    /// An entire simulated host vanished (power loss, kernel panic,
    /// preemption). A cluster-level fault: every stage in flight on the
    /// host fails and its queued work must move to a surviving host —
    /// stage schedulers never draw it; the cluster dispatcher rolls it
    /// via [`FaultInjector::roll_host_kill`].
    HostKill,
}

impl FaultKind {
    fn index(self) -> u64 {
        match self {
            FaultKind::KernelFault => 0,
            FaultKind::TransferTimeout => 1,
            FaultKind::DeviceHang => 2,
            FaultKind::SilentCorruption => 3,
            FaultKind::HostKill => 4,
        }
    }

    /// Short label used in error messages and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::KernelFault => "kernel-fault",
            FaultKind::TransferTimeout => "transfer-timeout",
            FaultKind::DeviceHang => "device-hang",
            FaultKind::SilentCorruption => "silent-corruption",
            FaultKind::HostKill => "host-kill",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-kind injection probabilities, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Probability of a [`FaultKind::KernelFault`] per stage execution.
    pub kernel: f64,
    /// Probability of a [`FaultKind::TransferTimeout`].
    pub transfer: f64,
    /// Probability of a [`FaultKind::DeviceHang`].
    pub hang: f64,
    /// Probability of a [`FaultKind::SilentCorruption`] (only drawn for
    /// stages that produce corruptible output).
    pub corrupt: f64,
    /// Probability of a [`FaultKind::HostKill`] per cluster scheduler
    /// tick per host. Zero by default and *not* covered by
    /// [`FaultRates::uniform`]: host kills are a cluster-level event
    /// that single-host chaos runs never draw.
    pub host_kill: f64,
}

impl FaultRates {
    /// The same rate for every *stage-level* fault kind
    /// ([`FaultRates::host_kill`] stays zero).
    pub fn uniform(rate: f64) -> Self {
        Self {
            kernel: rate,
            transfer: rate,
            hang: rate,
            corrupt: rate,
            host_kill: 0.0,
        }
    }
}

/// A reproducible chaos scenario: the seed, the per-kind rates, optional
/// per-device rate multipliers, and the set of permanently dead devices.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of every injection decision.
    pub seed: u64,
    /// Baseline per-kind rates.
    pub rates: FaultRates,
    /// Per-device multiplier applied to every rate (`1.0` when absent).
    /// Non-uniform scales make the fault sequence depend on placement;
    /// keep them uniform when a replayable trace matters.
    pub device_scale: Vec<f64>,
    /// Devices that fail every stage placed on them, forever — the
    /// "straggler that never comes back" of the chaos suite.
    pub dead: Vec<usize>,
}

impl FaultPlan {
    /// A plan with the same rate for every kind and no dead devices.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            rates: FaultRates::uniform(rate),
            device_scale: Vec::new(),
            dead: Vec::new(),
        }
    }

    /// Parses the `zkserve --chaos` spec: `seed[,key=value...]` with keys
    /// `rate` (all kinds), `kernel`, `transfer`, `hang`, `corrupt`
    /// (fractions) and `dead` (`+`-separated device indices).
    ///
    /// ```
    /// use gzkp_gpu_sim::fault::FaultPlan;
    /// let plan = FaultPlan::parse("42,kernel=0.2,hang=0.05,dead=1").unwrap();
    /// assert_eq!(plan.seed, 42);
    /// assert_eq!(plan.rates.kernel, 0.2);
    /// assert_eq!(plan.dead, vec![1]);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut parts = spec.split(',');
        let seed_tok = parts.next().unwrap_or("");
        let seed: u64 = seed_tok
            .trim()
            .parse()
            .map_err(|_| format!("chaos spec must start with a seed, got {seed_tok:?}"))?;
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::default()
        };
        let parse_rate = |key: &str, val: &str| -> Result<f64, String> {
            let r: f64 = val
                .parse()
                .map_err(|_| format!("{key}: not a number: {val:?}"))?;
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("{key}: rate {r} outside [0, 1]"));
            }
            Ok(r)
        };
        for tok in parts {
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {tok:?}"))?;
            match key.trim() {
                "rate" => plan.rates = FaultRates::uniform(parse_rate("rate", val)?),
                "kernel" => plan.rates.kernel = parse_rate("kernel", val)?,
                "transfer" => plan.rates.transfer = parse_rate("transfer", val)?,
                "hang" => plan.rates.hang = parse_rate("hang", val)?,
                "corrupt" => plan.rates.corrupt = parse_rate("corrupt", val)?,
                "hostkill" => plan.rates.host_kill = parse_rate("hostkill", val)?,
                "dead" => {
                    for d in val.split('+') {
                        plan.dead.push(
                            d.parse()
                                .map_err(|_| format!("dead: not a device index: {d:?}"))?,
                        );
                    }
                }
                other => return Err(format!("unknown chaos key {other:?}")),
            }
        }
        Ok(plan)
    }

    fn scale(&self, device: Option<usize>) -> f64 {
        device
            .and_then(|d| self.device_scale.get(d).copied())
            .unwrap_or(1.0)
    }
}

/// One injected fault, as recorded in the replayable log. Dead-device
/// hits are *not* logged (they are placement events, not draws), so two
/// runs of the same seeded plan produce identical logs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultEvent {
    /// Scheduler-assigned job id.
    pub job: u64,
    /// Stage label the fault hit (`"poly"`, `"msm"`, …).
    pub stage: String,
    /// The job's fault-attempt index when the draw happened.
    pub attempt: u32,
    /// What was injected.
    pub kind: FaultKind,
}

/// Aggregate injection counts for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Injected [`FaultKind::KernelFault`]s.
    pub kernel: u64,
    /// Injected [`FaultKind::TransferTimeout`]s.
    pub transfer: u64,
    /// Injected [`FaultKind::DeviceHang`]s.
    pub hang: u64,
    /// Injected [`FaultKind::SilentCorruption`]s.
    pub corrupt: u64,
    /// Injected [`FaultKind::HostKill`]s (cluster runs only).
    pub host_kill: u64,
    /// Stages refused because their device is in [`FaultPlan::dead`].
    pub dead_hits: u64,
}

impl FaultSummary {
    /// Total hash-drawn injections (dead-device hits excluded).
    pub fn injected(&self) -> u64 {
        self.kernel + self.transfer + self.hang + self.corrupt + self.host_kill
    }
}

/// The deterministic fault oracle one scheduler owns.
///
/// Thread-safe; decisions are pure functions of the plan and the roll
/// arguments, so concurrent rolls never race each other's outcomes.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    counts: [AtomicU64; 5],
    dead_hits: AtomicU64,
    log: Mutex<Vec<FaultEvent>>,
}

/// SplitMix64 — a tiny, well-mixed deterministic hash finalizer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over the stage label, so the draw distinguishes stages without
/// relying on `DefaultHasher` stability.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl FaultInjector {
    /// Builds the oracle for one chaos run.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            counts: Default::default(),
            dead_hits: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Uniform draw in `[0, 1)` for one `(job, stage, attempt, kind)`
    /// decision — device-independent, so the fault sequence survives
    /// placement races.
    fn unit(&self, job: u64, stage: &str, attempt: u32, kind: FaultKind) -> f64 {
        let mut h = self.plan.seed;
        for word in [job, fnv1a(stage), u64::from(attempt), kind.index()] {
            h = splitmix64(h ^ word);
        }
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decides the fate of one stage execution.
    ///
    /// `device` is the placement (pass `None` off-fleet or on the host
    /// CPU fallback, which is never injected with device faults but keeps
    /// drawing stage faults when `device` is `Some`). A device listed in
    /// [`FaultPlan::dead`] always returns [`FaultKind::DeviceHang`]
    /// without consuming a draw or logging an event. `corruptible` gates
    /// the [`FaultKind::SilentCorruption`] draw to stages whose output
    /// the caller can actually corrupt.
    pub fn roll(
        &self,
        device: Option<usize>,
        job: u64,
        stage: &str,
        attempt: u32,
        corruptible: bool,
    ) -> Option<FaultKind> {
        if let Some(d) = device {
            if self.plan.dead.contains(&d) {
                self.dead_hits.fetch_add(1, Ordering::Relaxed);
                return Some(FaultKind::DeviceHang);
            }
        }
        let scale = self.plan.scale(device);
        let candidates = [
            (FaultKind::DeviceHang, self.plan.rates.hang),
            (FaultKind::TransferTimeout, self.plan.rates.transfer),
            (FaultKind::KernelFault, self.plan.rates.kernel),
            (FaultKind::SilentCorruption, self.plan.rates.corrupt),
        ];
        for (kind, rate) in candidates {
            if kind == FaultKind::SilentCorruption && !corruptible {
                continue;
            }
            if self.unit(job, stage, attempt, kind) < rate * scale {
                self.counts[kind.index() as usize].fetch_add(1, Ordering::Relaxed);
                self.log
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(FaultEvent {
                        job,
                        stage: stage.to_string(),
                        attempt,
                        kind,
                    });
                return Some(kind);
            }
        }
        None
    }

    /// [`FaultInjector::roll`] keyed by a propagated [`TraceContext`].
    ///
    /// Delegates to `roll` with the context's fields, so the draw
    /// sequence is identical to calling `roll` directly — existing chaos
    /// seeds keep producing the same fault logs.
    pub fn roll_ctx(
        &self,
        ctx: &crate::context::TraceContext,
        attempt: u32,
        corruptible: bool,
    ) -> Option<FaultKind> {
        self.roll(ctx.device, ctx.job, ctx.stage, attempt, corruptible)
    }

    /// Decides whether the cluster kills `host` at scheduler tick
    /// `tick`. Drawn from the same seeded hash stream as stage faults
    /// (keyed on the tick, the `"host"` stage label, and the host index),
    /// so a cluster chaos run replays the identical kill sequence. Stage
    /// schedulers never call this — only the cluster dispatcher does,
    /// once per `(host, tick)` pair.
    pub fn roll_host_kill(&self, host: usize, tick: u64) -> bool {
        let rate = self.plan.rates.host_kill;
        if rate <= 0.0 {
            return false;
        }
        if self.unit(tick, "host", host as u32, FaultKind::HostKill) < rate {
            self.counts[FaultKind::HostKill.index() as usize].fetch_add(1, Ordering::Relaxed);
            self.log
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(FaultEvent {
                    job: tick,
                    stage: format!("host{host}"),
                    attempt: host as u32,
                    kind: FaultKind::HostKill,
                });
            return true;
        }
        false
    }

    /// Whether `device` is in the plan's dead set.
    pub fn is_dead(&self, device: usize) -> bool {
        self.plan.dead.contains(&device)
    }

    /// Aggregate injection counts.
    pub fn summary(&self) -> FaultSummary {
        FaultSummary {
            kernel: self.counts[0].load(Ordering::Relaxed),
            transfer: self.counts[1].load(Ordering::Relaxed),
            hang: self.counts[2].load(Ordering::Relaxed),
            corrupt: self.counts[3].load(Ordering::Relaxed),
            host_kill: self.counts[4].load(Ordering::Relaxed),
            dead_hits: self.dead_hits.load(Ordering::Relaxed),
        }
    }

    /// The injection log, sorted by `(job, stage, attempt, kind)` so two
    /// runs of the same plan compare equal regardless of scheduling
    /// order.
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut log = self
            .log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        log.sort();
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_placement_independent() {
        let a = FaultInjector::new(FaultPlan::uniform(42, 0.3));
        let b = FaultInjector::new(FaultPlan::uniform(42, 0.3));
        for job in 0..50u64 {
            for stage in ["poly", "msm"] {
                for attempt in 0..4 {
                    assert_eq!(
                        a.roll(Some(0), job, stage, attempt, true),
                        b.roll(Some(1), job, stage, attempt, true),
                        "job {job} {stage} attempt {attempt}"
                    );
                }
            }
        }
        assert_eq!(a.events(), b.events());
        assert_eq!(a.summary(), b.summary());
        assert!(a.summary().injected() > 0, "30% over 400 draws must fire");
    }

    #[test]
    fn seed_changes_the_sequence() {
        let a = FaultInjector::new(FaultPlan::uniform(1, 0.3));
        let b = FaultInjector::new(FaultPlan::uniform(2, 0.3));
        for job in 0..60u64 {
            a.roll(None, job, "msm", 0, true);
            b.roll(None, job, "msm", 0, true);
        }
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn rate_zero_never_fires_rate_one_always_fires() {
        let never = FaultInjector::new(FaultPlan::uniform(7, 0.0));
        let always = FaultInjector::new(FaultPlan::uniform(7, 1.0));
        for job in 0..20u64 {
            assert_eq!(never.roll(Some(0), job, "poly", 0, true), None);
            // Hang has the highest priority in the draw order.
            assert_eq!(
                always.roll(Some(0), job, "poly", 0, true),
                Some(FaultKind::DeviceHang)
            );
        }
        assert_eq!(never.summary().injected(), 0);
        assert_eq!(always.summary().hang, 20);
    }

    #[test]
    fn corruption_requires_a_corruptible_stage() {
        let plan = FaultPlan {
            seed: 3,
            rates: FaultRates {
                corrupt: 1.0,
                ..FaultRates::default()
            },
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.roll(Some(0), 1, "poly", 0, false), None);
        assert_eq!(
            inj.roll(Some(0), 1, "msm", 0, true),
            Some(FaultKind::SilentCorruption)
        );
    }

    #[test]
    fn dead_device_always_hangs_without_consuming_draws() {
        let plan = FaultPlan {
            seed: 9,
            rates: FaultRates::uniform(0.0),
            dead: vec![1],
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan);
        for job in 0..5u64 {
            assert_eq!(
                inj.roll(Some(1), job, "poly", 0, false),
                Some(FaultKind::DeviceHang)
            );
            assert_eq!(inj.roll(Some(0), job, "poly", 0, false), None);
        }
        let s = inj.summary();
        assert_eq!(s.dead_hits, 5);
        assert_eq!(s.injected(), 0, "dead hits are not draws");
        assert!(inj.events().is_empty(), "dead hits are not logged");
        assert!(inj.is_dead(1) && !inj.is_dead(0));
    }

    #[test]
    fn device_scale_shifts_the_threshold_not_the_draw() {
        let mut plan = FaultPlan::uniform(11, 0.5);
        plan.device_scale = vec![1.0, 0.0];
        let inj = FaultInjector::new(plan);
        let mut dev0_fired = 0;
        for job in 0..40u64 {
            if inj.roll(Some(0), job, "msm", 0, false).is_some() {
                dev0_fired += 1;
            }
            assert_eq!(inj.roll(Some(1), job, "msm", 0, false), None);
        }
        assert!(dev0_fired > 0, "scale 1.0 must keep firing");
    }

    #[test]
    fn roll_ctx_matches_roll() {
        use crate::context::TraceContext;
        let a = FaultInjector::new(FaultPlan::uniform(42, 0.3));
        let b = FaultInjector::new(FaultPlan::uniform(42, 0.3));
        for job in 0..30u64 {
            for stage in ["poly", "msm"] {
                let ctx = TraceContext::new(job, stage).on_device(Some(0));
                assert_eq!(
                    a.roll_ctx(&ctx, 0, stage == "msm"),
                    b.roll(Some(0), job, stage, 0, stage == "msm"),
                );
            }
        }
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn parse_round_trips_the_cli_spec() {
        assert_eq!(FaultPlan::parse("5").unwrap(), FaultPlan::uniform(5, 0.0));
        let plan = FaultPlan::parse("42,rate=0.1,hang=0.02,dead=1+3").unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rates.kernel, 0.1);
        assert_eq!(plan.rates.hang, 0.02);
        assert_eq!(plan.dead, vec![1, 3]);
        let plan = FaultPlan::parse("7,hostkill=0.25").unwrap();
        assert_eq!(plan.rates.host_kill, 0.25);
        assert_eq!(plan.rates.kernel, 0.0, "hostkill leaves stage rates alone");
        for bad in ["", "x", "1,rate=2", "1,rate=x", "1,bogus=1", "1,dead=x"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn host_kill_draws_are_deterministic_and_separate_from_stage_faults() {
        let mut plan = FaultPlan::uniform(13, 0.0);
        plan.rates.host_kill = 0.3;
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        let mut fired = 0;
        for tick in 0..60u64 {
            for host in 0..3usize {
                let hit = a.roll_host_kill(host, tick);
                assert_eq!(hit, b.roll_host_kill(host, tick), "host {host} tick {tick}");
                fired += u64::from(hit);
            }
        }
        assert!(fired > 0, "30% over 180 draws must fire");
        assert_eq!(a.summary().host_kill, fired);
        assert_eq!(a.summary().injected(), fired);
        assert_eq!(a.events(), b.events());
        // Stage rolls stay untouched by the host-kill rate.
        assert_eq!(a.roll(Some(0), 1, "msm", 0, true), None);
        // And a zero host-kill rate never fires or logs.
        let quiet = FaultInjector::new(FaultPlan::uniform(13, 0.0));
        for tick in 0..50 {
            assert!(!quiet.roll_host_kill(0, tick));
        }
        assert_eq!(quiet.summary().host_kill, 0);
    }
}
