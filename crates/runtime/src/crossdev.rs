//! Cross-device single-proof MSM: one MSM's bucket-range shards executed
//! on *distinct* devices with partial sums merged over the simulated
//! NVLink P2P path — the runtime realization of the paper's multi-GPU
//! scaling (Table 4), shaped like SZKP's cross-chip partitioning with
//! on-fabric aggregation.
//!
//! Bit-identity contract: the window size `k`, checkpoint interval `M`,
//! checkpoint tables, bucket loads and range boundaries are all frozen
//! once by the *reference* engine ([`gzkp_msm::GzkpMsm::shard_task`]);
//! the claimed devices only price kernels and carry traffic. Each
//! partial is an exact group element and partials merge in range order,
//! so the result is byte-identical to the reference engine's own
//! single-device run for every device count, placement, thread count
//! and work-steal interleaving.

use crate::fleet::FleetRuntime;
use crate::planner::FleetMsmPlan;
use gzkp_curves::{Affine, CurveParams};
use gzkp_gpu_sim::kernel::StageReport;
use gzkp_msm::gzkp::MSM_HOST_OVERHEAD_NS;
use gzkp_msm::{GzkpMsm, MsmEngine, MsmRun, MsmStats, ScalarVec};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Simulated time of one partial-sum merge addition on the primary
/// device: a single full Jacobian PADD is launch-latency-dominated.
pub const P2P_MERGE_KERNEL_NS: f64 = 10_000.0;

/// An [`MsmEngine`] that runs each MSM as bucket-range shards across the
/// devices it was bound to, recording uploads/kernels on every device's
/// command streams and the partial-sum merges on the fleet's P2P path.
///
/// Functionally it computes exactly what its reference [`GzkpMsm`]
/// computes; only the simulated schedule differs. Slots into
/// `gzkp_groth16::ProverEngines` unchanged.
pub struct CrossDeviceMsm {
    reference: GzkpMsm,
    fleet: Arc<FleetRuntime>,
    devices: Vec<usize>,
    label: String,
    calls: AtomicU64,
}

impl CrossDeviceMsm {
    /// Binds `reference`'s MSMs to `devices` (fleet indices, primary
    /// first) of `fleet`.
    ///
    /// # Panics
    ///
    /// Panics on an empty device list.
    pub fn new(
        reference: GzkpMsm,
        fleet: Arc<FleetRuntime>,
        devices: Vec<usize>,
        label: impl Into<String>,
    ) -> Self {
        assert!(!devices.is_empty(), "cross-device MSM needs devices");
        CrossDeviceMsm {
            reference,
            fleet,
            devices,
            label: label.into(),
            calls: AtomicU64::new(0),
        }
    }

    /// The devices this engine schedules onto, primary first.
    pub fn devices(&self) -> &[usize] {
        &self.devices
    }

    /// A clone of the reference engine re-priced for fleet device `dev`.
    fn engine_on(&self, dev: usize) -> GzkpMsm {
        GzkpMsm {
            device: self.fleet.config(dev).clone(),
            ..self.reference.clone()
        }
    }
}

impl<C: CurveParams> MsmEngine<C> for CrossDeviceMsm {
    fn name(&self) -> String {
        format!("GZKP-crossdev(x{})", self.devices.len())
    }

    fn msm(&self, points: &[Affine<C>], scalars: &ScalarVec) -> MsmRun<C> {
        assert_eq!(points.len(), scalars.len());
        let n = points.len();
        let plan = FleetMsmPlan::for_task::<C>(&self.reference, n, &self.devices);
        let task = self.reference.shard_task::<C>(points, scalars, plan.shards);
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        let label = format!("{}.x{}", self.label, call);

        // Functional partials, computed with the reference fold config —
        // exact group elements, deterministic at every thread count.
        let partials: Vec<(gzkp_curves::Projective<C>, MsmStats)> = (0..task.num_ranges())
            .into_par_iter()
            .map(|i| task.partial(&self.reference, scalars, i))
            .collect();

        // Simulated schedule: each device streams its passes on its own
        // upload/execute streams (pass i+1's upload hides under pass i's
        // kernel), then every non-primary partial crosses the P2P path
        // and a merge addition runs on the primary once it lands.
        let mut report = StageReport::new(format!(
            "msm-crossdev(x{} dev, x{} shards)",
            self.devices.len(),
            task.num_ranges()
        ));
        report.add_fixed("host-sync+transfer", MSM_HOST_OVERHEAD_NS);
        let primary = plan.primary();
        let mut done_at = vec![0.0f64; task.num_ranges()];
        for dev in &plan.devices {
            let engines = self.engine_on(*dev);
            for i in plan.shards_for(*dev) {
                let kernel_ns = task.range_kernel_ns(&engines, i);
                done_at[i] = self.fleet.record_stage(
                    *dev,
                    &format!("{label}.shard{i}"),
                    task.pass_bytes_for(i),
                    kernel_ns,
                    0,
                );
                report.add_fixed(format!("shard{i}@dev{dev}"), kernel_ns);
            }
            self.fleet
                .record_shards(*dev, plan.shards_for(*dev).len() as u64);
        }
        let mut p2p_ns = 0.0f64;
        for (i, &dev) in plan.assignments.iter().enumerate() {
            if dev == primary {
                continue;
            }
            let arrival = self.fleet.record_p2p(
                dev,
                primary,
                &format!("{label}.merge{i}"),
                task.partial_bytes(),
                done_at[i],
            );
            p2p_ns = p2p_ns.max(arrival - done_at[i]);
            self.fleet.record_stage(
                primary,
                &format!("{label}.merge{i}"),
                0,
                P2P_MERGE_KERNEL_NS,
                0,
            );
        }
        if p2p_ns > 0.0 {
            report.add_fixed("p2p-merge (slowest link)", p2p_ns);
        }
        // Merged result reads back from the primary only.
        self.fleet.record_stage(
            primary,
            &format!("{label}.result"),
            0,
            0.0,
            task.partial_bytes(),
        );

        let merged = task.merge(&partials.iter().map(|(p, _)| *p).collect::<Vec<_>>());
        let mut stats = MsmStats {
            shards: task.num_ranges() as u64,
            ..MsmStats::default()
        };
        for (_, s) in &partials {
            stats.batch_padds += s.batch_padds;
            stats.batch_inversions += s.batch_inversions;
        }
        MsmRun {
            result: merged,
            report,
            stats,
        }
    }

    fn emit_msm_telemetry(
        &self,
        points: &[Affine<C>],
        scalars: &ScalarVec,
        run: &MsmRun<C>,
        sink: &dyn gzkp_telemetry::TelemetrySink,
    ) {
        MsmEngine::<C>::emit_msm_telemetry(&self.reference, points, scalars, run, sink);
    }

    fn plan(&self, scalars: &ScalarVec) -> StageReport {
        MsmEngine::<C>::plan(&self.reference, scalars)
    }

    fn plan_dense(&self, n: usize) -> StageReport {
        MsmEngine::<C>::plan_dense(&self.reference, n)
    }

    fn memory_bytes(&self, n: usize) -> u64 {
        MsmEngine::<C>::memory_bytes(&self.reference, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gzkp_curves::bn254::{Fr, G1Config};
    use gzkp_curves::random_points;
    use gzkp_ff::Field;
    use gzkp_gpu_sim::device::v100;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, seed: u64) -> (Vec<Affine<G1Config>>, ScalarVec) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = random_points::<G1Config, _>(n, &mut rng);
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        (pts, ScalarVec::from_field(&scalars))
    }

    #[test]
    fn cross_device_result_matches_single_device_bytes() {
        let (pts, sv) = setup(96, 7);
        let reference = GzkpMsm::new(v100());
        let single = reference.msm(&pts, &sv);
        for devs in [2usize, 3, 4] {
            let fleet = Arc::new(FleetRuntime::new(vec![v100(); devs]));
            let engine = CrossDeviceMsm::new(
                reference.clone(),
                fleet.clone(),
                (0..devs).collect(),
                "job0.msm",
            );
            let run = MsmEngine::<G1Config>::msm(&engine, &pts, &sv);
            assert_eq!(
                gzkp_curves::compress(&run.result.to_affine()),
                gzkp_curves::compress(&single.result.to_affine()),
                "{devs} devices"
            );
            assert_eq!(run.stats.shards, devs as u64);
            // Every device computed, and the partial merges crossed P2P.
            assert_eq!(fleet.p2p_transfers(), devs as u64 - 1);
            let util = fleet.utilization();
            for d in 0..devs {
                assert!(util.devices[d].kernel_ns > 0.0, "dev{d} idle");
            }
        }
    }

    #[test]
    fn p2p_merges_overlap_remote_kernels() {
        // With two devices, dev1's merge transfer must not serialize
        // after dev0's whole schedule: the makespan stays close to one
        // device's share of the kernels, not their sum. Needs enough
        // points that kernels dominate launch/link latency.
        let (pts, sv) = setup(4096, 8);
        let reference = GzkpMsm::new(v100());
        let solo_fleet = Arc::new(FleetRuntime::new(vec![v100()]));
        let solo = CrossDeviceMsm::new(reference.clone(), solo_fleet.clone(), vec![0], "job0.msm");
        MsmEngine::<G1Config>::msm(&solo, &pts, &sv);
        let solo_ns = solo_fleet.utilization().elapsed_ns;

        let fleet = Arc::new(FleetRuntime::new(vec![v100(), v100()]));
        let dual = CrossDeviceMsm::new(reference, fleet.clone(), vec![0, 1], "job0.msm");
        MsmEngine::<G1Config>::msm(&dual, &pts, &sv);
        let dual_ns = fleet.utilization().elapsed_ns;
        assert!(
            dual_ns < solo_ns,
            "2 devices {dual_ns} should beat 1 device {solo_ns}"
        );
    }
}
