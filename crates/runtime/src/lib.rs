//! # gzkp-runtime — the device-fleet runtime
//!
//! Multi-GPU execution layer for the proving service: place proof stages
//! onto a heterogeneous fleet of simulated devices, pipeline proof `i+1`'s
//! uploads under proof `i`'s kernels on per-device command streams, and
//! shard MSMs that exceed a single device's memory into bucket-range
//! partials merged on the host (bit-identical to the unsharded result;
//! the functional splitting lives in `gzkp_msm::GzkpMsm::msm_sharded`,
//! this crate owns the planning and placement policy around it).
//!
//! Five pieces:
//!
//! * [`spec`] — parsing of `zkserve --devices N[,spec]` fleet descriptions
//!   into [`gzkp_gpu_sim::DeviceConfig`]s;
//! * [`fleet`] — [`FleetRuntime`]: per-device [`gzkp_gpu_sim::DeviceTimeline`]s
//!   with copy/compute/download/P2P streams, throughput-weighted
//!   least-loaded and deadline-aware placement, steal accounting,
//!   device↔device transfers ([`FleetRuntime::record_p2p`], NVLink or
//!   host-staged), per-device utilization snapshots and a
//!   `runtime→dev{n}→{h2d,kernel,d2h,p2p}` telemetry trace;
//! * [`planner`] — [`MsmShardPlan`]: the memory check deciding whether an
//!   MSM runs whole or as device-sized bucket-range shards, and
//!   [`FleetMsmPlan`]: its multi-device extension assigning every shard
//!   a device;
//! * [`crossdev`] — [`CrossDeviceMsm`]: the MSM engine executing one
//!   proof's shards across devices with P2P partial-sum merging;
//! * [`health`] — [`DeviceHealth`]: the consecutive-failure circuit
//!   breaker (quarantine + probation re-probe) behind
//!   [`FleetRuntime::place_available`].
//!
//! ## Example
//!
//! ```
//! use gzkp_runtime::{parse_devices, FleetRuntime};
//!
//! let fleet = FleetRuntime::new(parse_devices("2,v100").unwrap());
//! let dev = fleet.place();
//! fleet.record_stage(dev, "proof0.msm", 64 << 20, 2.0e6, 128);
//! fleet.complete(dev);
//! let util = fleet.utilization();
//! assert_eq!(util.devices.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod crossdev;
pub mod fleet;
pub mod health;
pub mod planner;
pub mod spec;

pub use crossdev::CrossDeviceMsm;
pub use fleet::{
    DeviceUtilization, FleetRuntime, FleetUtilization, HealthEvent, HealthEventKind, URGENCY_MARGIN,
};
pub use health::{DeviceHealth, HealthPolicy, HealthState};
pub use planner::{FleetMsmPlan, MsmShardPlan};
pub use spec::{device_by_name, fleet_label, parse_devices};
