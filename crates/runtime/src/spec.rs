//! Fleet descriptions: the `--devices N[,spec]` grammar.
//!
//! Two forms, matching how operators describe a box:
//!
//! * a count with an optional model — `"2"` (two V100s), `"3,1080ti"`;
//! * an explicit heterogeneous list — `"v100,1080ti"`.

use gzkp_gpu_sim::device::{cpu_xeon, gtx1080ti, v100, DeviceConfig};

/// Upper bound on fleet size; a typo like `--devices 21080ti` should fail,
/// not allocate two thousand timelines.
pub const MAX_DEVICES: usize = 64;

/// Looks up a device preset by its spec name (case-insensitive).
/// Accepted: `v100`, `1080ti`/`gtx1080ti`, `cpu`/`xeon`.
pub fn device_by_name(name: &str) -> Option<DeviceConfig> {
    match name.trim().to_ascii_lowercase().as_str() {
        "v100" => Some(v100()),
        "1080ti" | "gtx1080ti" => Some(gtx1080ti()),
        "cpu" | "xeon" => Some(cpu_xeon()),
        _ => None,
    }
}

/// Parses a `--devices` fleet description into device configs.
///
/// * `"N"` — `N` V100s;
/// * `"N,<model>"` — `N` copies of the named preset;
/// * `"<model>,<model>,…"` — exactly those devices, in order.
///
/// # Errors
///
/// A human-readable message naming the offending token: unknown model
/// names, a zero or over-[`MAX_DEVICES`] count, or an empty spec.
pub fn parse_devices(spec: &str) -> Result<Vec<DeviceConfig>, String> {
    let tokens: Vec<&str> = spec.split(',').map(str::trim).collect();
    if tokens.iter().any(|t| t.is_empty()) {
        return Err(format!("empty device entry in spec {spec:?}"));
    }
    if let Ok(count) = tokens[0].parse::<usize>() {
        if count == 0 || count > MAX_DEVICES {
            return Err(format!(
                "device count must be 1..={MAX_DEVICES}, got {count}"
            ));
        }
        let template = match tokens.len() {
            1 => v100(),
            2 => device_by_name(tokens[1]).ok_or_else(|| {
                format!(
                    "unknown device model {:?} (try v100, 1080ti, cpu)",
                    tokens[1]
                )
            })?,
            _ => {
                return Err(format!(
                    "count form takes at most one model: {spec:?} (use e.g. \"2,v100\")"
                ))
            }
        };
        return Ok(vec![template; count]);
    }
    let devices = tokens
        .iter()
        .map(|t| {
            device_by_name(t)
                .ok_or_else(|| format!("unknown device model {t:?} (try v100, 1080ti, cpu)"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    if devices.len() > MAX_DEVICES {
        return Err(format!(
            "device list has {} entries, max is {MAX_DEVICES}",
            devices.len()
        ));
    }
    Ok(devices)
}

/// Short human label for a fleet, e.g. `"2xV100"` or `"V100+GTX1080Ti"`.
pub fn fleet_label(devices: &[DeviceConfig]) -> String {
    if devices.is_empty() {
        return "empty".to_string();
    }
    if devices.iter().all(|d| d.name == devices[0].name) {
        return format!("{}x{}", devices.len(), devices[0].name);
    }
    devices.iter().map(|d| d.name).collect::<Vec<_>>().join("+")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_defaults_to_v100() {
        let fleet = parse_devices("3").unwrap();
        assert_eq!(fleet.len(), 3);
        assert!(fleet.iter().all(|d| d.name == "V100"));
    }

    #[test]
    fn count_with_model() {
        let fleet = parse_devices("2,1080ti").unwrap();
        assert_eq!(fleet.len(), 2);
        assert!(fleet.iter().all(|d| d.name == "GTX1080Ti"));
    }

    #[test]
    fn heterogeneous_list_preserves_order() {
        let fleet = parse_devices("v100, 1080ti ,cpu").unwrap();
        let names: Vec<&str> = fleet.iter().map(|d| d.name).collect();
        assert_eq!(names, ["V100", "GTX1080Ti", "2xXeon5117"]);
    }

    #[test]
    fn bad_specs_name_the_problem() {
        assert!(parse_devices("").unwrap_err().contains("empty"));
        assert!(parse_devices("0").unwrap_err().contains("count"));
        assert!(parse_devices("9999").unwrap_err().contains("count"));
        assert!(parse_devices("2,a100").unwrap_err().contains("a100"));
        assert!(parse_devices("v100,,cpu").unwrap_err().contains("empty"));
        assert!(parse_devices("2,v100,cpu")
            .unwrap_err()
            .contains("count form"));
        assert!(parse_devices("titan").unwrap_err().contains("titan"));
    }

    #[test]
    fn labels() {
        assert_eq!(fleet_label(&parse_devices("2").unwrap()), "2xV100");
        assert_eq!(
            fleet_label(&parse_devices("v100,1080ti").unwrap()),
            "V100+GTX1080Ti"
        );
    }
}
