//! Device health tracking: a consecutive-failure circuit breaker with a
//! probation re-probe (DESIGN.md §13).
//!
//! Each device moves through three states:
//!
//! ```text
//!            N consecutive failures, or a hard fault (hang)
//!   Healthy ────────────────────────────────────────────────▶ Quarantined
//!      ▲                                                          │
//!      │ probe succeeds                     probation window over  │
//!      └────────────────────── Probation ◀────────────────────────┘
//!                                  │
//!                                  │ probe fails (window doubles,
//!                                  ▼  capped at `max_probation`)
//!                              Quarantined
//! ```
//!
//! While **Quarantined** the device accepts no placements. After the
//! probation window elapses the device becomes **Probation**: the next
//! stage placed on it is the probe. A successful probe restores
//! **Healthy** (and resets the backoff window); a failed probe
//! re-quarantines with a doubled window, so a permanently dead device
//! converges to one probe per `max_probation` instead of eating a stream
//! of retries.

use std::time::{Duration, Instant};

/// Tunables of the circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive soft failures that trip the breaker. Hard faults
    /// (device hang) trip it immediately.
    pub quarantine_after: u32,
    /// Initial quarantine window before the first probation probe.
    pub probation: Duration,
    /// Upper bound on the doubling quarantine window.
    pub max_probation: Duration,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            quarantine_after: 3,
            probation: Duration::from_millis(250),
            max_probation: Duration::from_secs(8),
        }
    }
}

/// Where a device sits in the circuit-breaker state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Accepting placements normally.
    Healthy,
    /// Rejecting placements until the probation window elapses.
    Quarantined,
    /// Window elapsed; the next placement is the re-probe.
    Probation,
}

/// Per-device circuit-breaker state. Not thread-safe by itself — the
/// fleet wraps each cell in a mutex.
#[derive(Debug, Clone)]
pub struct DeviceHealth {
    policy: HealthPolicy,
    consecutive: u32,
    state: HealthState,
    /// When the current quarantine window ends (meaningful in
    /// `Quarantined`).
    until: Instant,
    /// Current backoff window; doubles on each failed probe.
    window: Duration,
    /// Times this device has entered quarantine.
    quarantines: u64,
    /// When the device left `Healthy` (set on quarantine entry, cleared
    /// by the successful probe that restores it).
    degraded_since: Option<Instant>,
    /// Wall-clock time spent degraded over closed intervals.
    degraded_total: Duration,
}

impl DeviceHealth {
    /// A healthy device under `policy`.
    pub fn new(policy: HealthPolicy) -> Self {
        DeviceHealth {
            policy,
            consecutive: 0,
            state: HealthState::Healthy,
            until: Instant::now(),
            window: policy.probation,
            quarantines: 0,
            degraded_since: None,
            degraded_total: Duration::ZERO,
        }
    }

    /// The state at `now`, resolving an expired quarantine window to
    /// [`HealthState::Probation`].
    pub fn state(&mut self, now: Instant) -> HealthState {
        if self.state == HealthState::Quarantined && now >= self.until {
            self.state = HealthState::Probation;
        }
        self.state
    }

    /// Whether the device accepts a placement at `now` (healthy, or due
    /// for its probation probe).
    pub fn available(&mut self, now: Instant) -> bool {
        self.state(now) != HealthState::Quarantined
    }

    /// Records a successful stage: closes the breaker and resets the
    /// backoff window. Returns `true` when this success *recovered* the
    /// device (it was quarantined or probing rather than healthy).
    pub fn on_success(&mut self, now: Instant) -> bool {
        let recovered = self.state(now) != HealthState::Healthy;
        if let Some(since) = self.degraded_since.take() {
            self.degraded_total += now.saturating_duration_since(since);
        }
        self.consecutive = 0;
        self.state = HealthState::Healthy;
        self.window = self.policy.probation;
        recovered
    }

    /// Records a failed stage. `hard` marks faults that indicate the
    /// device itself is gone (a hang) and trips the breaker immediately.
    /// Returns `true` when this failure newly quarantined the device.
    pub fn on_failure(&mut self, now: Instant, hard: bool) -> bool {
        let probing = self.state(now) == HealthState::Probation;
        self.consecutive += 1;
        let trip = hard || probing || self.consecutive >= self.policy.quarantine_after;
        if !trip || self.state == HealthState::Quarantined {
            return false;
        }
        if probing {
            // A failed probe doubles the window — a dead device converges
            // to one probe per max_probation.
            self.window = (self.window * 2).min(self.policy.max_probation);
        }
        self.enter_quarantine(now);
        true
    }

    /// Quarantines immediately regardless of failure history (operator
    /// action, or a fault plan marking the device dead).
    pub fn force_quarantine(&mut self, now: Instant) -> bool {
        if self.state == HealthState::Quarantined {
            return false;
        }
        self.enter_quarantine(now);
        true
    }

    fn enter_quarantine(&mut self, now: Instant) {
        self.state = HealthState::Quarantined;
        self.until = now + self.window;
        self.consecutive = 0;
        self.quarantines += 1;
        if self.degraded_since.is_none() {
            self.degraded_since = Some(now);
        }
    }

    /// Times this device has entered quarantine.
    pub fn quarantine_count(&self) -> u64 {
        self.quarantines
    }

    /// Total wall-clock nanoseconds the device has spent degraded
    /// (quarantined or awaiting its recovery probe), including the
    /// still-open interval if it is degraded at `now`.
    pub fn quarantined_ns(&self, now: Instant) -> u64 {
        let open = self
            .degraded_since
            .map(|since| now.saturating_duration_since(since))
            .unwrap_or(Duration::ZERO);
        (self.degraded_total + open).as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> HealthPolicy {
        HealthPolicy {
            quarantine_after: 3,
            probation: Duration::from_millis(100),
            max_probation: Duration::from_millis(400),
        }
    }

    #[test]
    fn soft_failures_trip_after_threshold() {
        let mut h = DeviceHealth::new(policy());
        let t0 = Instant::now();
        assert!(!h.on_failure(t0, false));
        assert!(!h.on_failure(t0, false));
        assert!(h.available(t0), "still healthy below the threshold");
        assert!(h.on_failure(t0, false), "third strike quarantines");
        assert!(!h.available(t0));
        assert_eq!(h.quarantine_count(), 1);
    }

    #[test]
    fn success_resets_the_streak() {
        let mut h = DeviceHealth::new(policy());
        let t0 = Instant::now();
        h.on_failure(t0, false);
        h.on_failure(t0, false);
        assert!(!h.on_success(t0), "healthy device does not 'recover'");
        h.on_failure(t0, false);
        h.on_failure(t0, false);
        assert!(h.available(t0), "streak restarted after a success");
    }

    #[test]
    fn hard_fault_trips_immediately() {
        let mut h = DeviceHealth::new(policy());
        let t0 = Instant::now();
        assert!(h.on_failure(t0, true));
        assert_eq!(h.state(t0), HealthState::Quarantined);
    }

    #[test]
    fn probation_reopens_and_probe_outcome_decides() {
        let mut h = DeviceHealth::new(policy());
        let t0 = Instant::now();
        h.on_failure(t0, true);
        assert!(!h.available(t0));
        let later = t0 + Duration::from_millis(150);
        assert_eq!(h.state(later), HealthState::Probation);
        assert!(h.available(later), "probation admits the probe");
        // Successful probe → healthy with the window reset, reported as
        // a recovery.
        assert!(h.on_success(later));
        assert_eq!(h.state(later), HealthState::Healthy);
    }

    #[test]
    fn quarantined_time_accumulates_until_recovery() {
        let mut h = DeviceHealth::new(policy());
        let t0 = Instant::now();
        assert_eq!(h.quarantined_ns(t0), 0);
        h.on_failure(t0, true);
        let mid = t0 + Duration::from_millis(200);
        assert_eq!(h.quarantined_ns(mid), 200_000_000, "open interval counts");
        // Recovery closes the interval; time stops accumulating.
        assert!(h.on_success(mid));
        let later = mid + Duration::from_millis(500);
        assert_eq!(h.quarantined_ns(later), 200_000_000);
        // A second quarantine accumulates on top.
        h.on_failure(later, true);
        assert_eq!(
            h.quarantined_ns(later + Duration::from_millis(100)),
            300_000_000
        );
    }

    #[test]
    fn failed_probe_doubles_the_window_up_to_the_cap() {
        let mut h = DeviceHealth::new(policy());
        let mut now = Instant::now();
        h.on_failure(now, true); // window 100ms
        for expected_ms in [200u64, 400, 400, 400] {
            now += Duration::from_millis(500);
            assert_eq!(h.state(now), HealthState::Probation);
            assert!(h.on_failure(now, false), "failed probe re-quarantines");
            assert_eq!(h.window, Duration::from_millis(expected_ms));
        }
        assert_eq!(h.quarantine_count(), 5);
    }

    #[test]
    fn force_quarantine_is_idempotent() {
        let mut h = DeviceHealth::new(policy());
        let t0 = Instant::now();
        assert!(h.force_quarantine(t0));
        assert!(!h.force_quarantine(t0), "already quarantined");
        assert_eq!(h.quarantine_count(), 1);
    }
}
