//! The fleet runtime: per-device command streams, throughput-weighted
//! placement, steal/shard accounting, utilization snapshots and the
//! `runtime→dev{n}→{h2d,kernel,d2h}` telemetry trace.
//!
//! Each device gets three streams on its [`DeviceTimeline`]: an upload
//! stream, an execute stream and a download stream. A stage recorded via
//! [`FleetRuntime::record_stage`] issues its H2D copy on the upload
//! stream, makes the execute stream wait on the copy's event, runs the
//! kernel, and drains the result on the download stream — so the *next*
//! stage's upload overlaps this stage's kernel exactly like the CUDA
//! double-buffered producer/consumer pipeline the simulator models.

use crate::health::{DeviceHealth, HealthPolicy, HealthState};
use gzkp_gpu_sim::device::DeviceConfig;
use gzkp_gpu_sim::stream::{DeviceTimeline, EngineKind, Event, StreamId};
use gzkp_gpu_sim::transfer::{d2d_time_ns, link_kind, HostMem, LinkKind};
use gzkp_telemetry::counters;
use gzkp_telemetry::metrics::{Counter, Gauge, MetricsRegistry};
use gzkp_telemetry::trace::{Trace, TraceNode};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// What happened to a device, for the fault/quarantine history shown in
/// the `zkserve` fleet table and as `!` markers in `zkprof render
/// --timeline` health lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthEventKind {
    /// A retryable stage failure (kernel fault, transfer timeout).
    SoftFault,
    /// A device-gone failure (hang) — trips the breaker immediately.
    HardFault,
    /// The circuit breaker tripped; the device stopped taking placements.
    Quarantined,
    /// A probation probe succeeded; the device is healthy again.
    Recovered,
}

impl HealthEventKind {
    /// Short label used in tables and timeline health-lane spans.
    pub fn label(self) -> &'static str {
        match self {
            HealthEventKind::SoftFault => "soft-fault",
            HealthEventKind::HardFault => "hard-fault",
            HealthEventKind::Quarantined => "quarantined",
            HealthEventKind::Recovered => "recovered",
        }
    }
}

/// One entry in a device's fault/quarantine history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthEvent {
    /// What happened.
    pub kind: HealthEventKind,
    /// Position on the device's *simulated* timeline when it happened —
    /// the marker coordinate for `zkprof render --timeline`.
    pub sim_ns: f64,
}

/// Lock-free per-device metric handles, attached once by
/// [`FleetRuntime::attach_metrics`]. All series carry a
/// `device="dev{n}"` label.
struct DeviceCells {
    stages: Counter,
    steals: Counter,
    shards: Counter,
    h2d_bytes: Counter,
    d2h_bytes: Counter,
    p2p_bytes: Counter,
    busy_ns: Gauge,
    elapsed_ns: Gauge,
    quarantine_ns: Gauge,
    quarantines: Counter,
}

/// Relative sustained throughput of a device: SM count times per-SM MAC
/// rate. Only ratios matter — it weights the least-loaded placement so a
/// V100 absorbs ~4x the jobs of a 1080 Ti before the fleet looks balanced.
pub fn throughput_weight(config: &DeviceConfig) -> f64 {
    f64::from(config.num_sms) * config.mac64_per_ns_per_sm
}

/// Safety factor of [`FleetRuntime::place_for_deadline`]'s urgency test:
/// a job is urgent when its slack is less than its modeled remaining
/// cost times this margin (queueing, retries and host overhead are not
/// in the model, so cutting it to 1.0 would declare urgency only after
/// the deadline is already at risk).
pub const URGENCY_MARGIN: f64 = 2.0;

/// The four streams a device schedules stages onto.
struct Lanes {
    timeline: DeviceTimeline,
    upload: StreamId,
    execute: StreamId,
    download: StreamId,
    p2p: StreamId,
}

/// One device's runtime state: its timeline plus placement counters.
struct DeviceRuntime {
    config: DeviceConfig,
    lanes: Mutex<Lanes>,
    /// Stages currently placed but not yet completed (placement load).
    inflight: AtomicU64,
    /// Total stages ever placed on this device.
    jobs: AtomicU64,
    /// Jobs this device stole from another device's queue.
    steals: AtomicU64,
    /// Bucket-range MSM shards executed on this device.
    shards: AtomicU64,
    /// Circuit-breaker state (see [`crate::health`]).
    health: Mutex<DeviceHealth>,
    /// Fault/quarantine history, in record order.
    events: Mutex<Vec<HealthEvent>>,
    /// Live metric handles, when a registry is attached.
    cells: OnceLock<DeviceCells>,
}

impl DeviceRuntime {
    fn new(config: DeviceConfig, policy: HealthPolicy) -> Self {
        let mut timeline = DeviceTimeline::new(config.clone());
        let upload = timeline.stream();
        let execute = timeline.stream();
        let download = timeline.stream();
        let p2p = timeline.stream();
        DeviceRuntime {
            config,
            lanes: Mutex::new(Lanes {
                timeline,
                upload,
                execute,
                download,
                p2p,
            }),
            inflight: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            shards: AtomicU64::new(0),
            health: Mutex::new(DeviceHealth::new(policy)),
            events: Mutex::new(Vec::new()),
            cells: OnceLock::new(),
        }
    }
}

/// Utilization snapshot of one device, against the fleet makespan.
#[derive(Debug, Clone)]
pub struct DeviceUtilization {
    /// Device index (`dev{index}` in spans).
    pub index: usize,
    /// Device model name.
    pub name: String,
    /// Stages placed on this device.
    pub jobs: u64,
    /// Jobs stolen from other devices' queues.
    pub steals: u64,
    /// Bucket-range MSM shards executed here.
    pub shards: u64,
    /// Times this device entered quarantine.
    pub quarantines: u64,
    /// Bytes uploaded.
    pub h2d_bytes: u64,
    /// Bytes downloaded.
    pub d2h_bytes: u64,
    /// Bytes moved device↔device through this device's P2P port
    /// (each transfer shows on both endpoints; fleet totals are counted
    /// once, see [`FleetRuntime::p2p_bytes`]).
    pub p2p_bytes: u64,
    /// Upload-engine busy time.
    pub h2d_ns: f64,
    /// Compute-engine busy time.
    pub kernel_ns: f64,
    /// Download-engine busy time.
    pub d2h_ns: f64,
    /// P2P-engine busy time.
    pub p2p_ns: f64,
    /// This device's own makespan.
    pub elapsed_ns: f64,
    /// Compute busy time over the *fleet* makespan — the number an
    /// operator reads to spot a starved or oversubscribed device.
    pub busy_frac: f64,
    /// Wall-clock nanoseconds this device has spent quarantined.
    pub quarantine_ns: u64,
    /// Fault/quarantine history, in record order (empty on clean runs).
    pub history: Vec<HealthEvent>,
}

/// Fleet-wide utilization: the makespan plus one row per device.
#[derive(Debug, Clone)]
pub struct FleetUtilization {
    /// Completion time of the last operation on any device.
    pub elapsed_ns: f64,
    /// Per-device rows, in device order.
    pub devices: Vec<DeviceUtilization>,
}

impl FleetUtilization {
    /// Text table for `zkserve` reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<18} {:>5} {:>6} {:>6} {:>5} {:>10} {:>9} {:>12} {:>7}",
            "device", "jobs", "steals", "shards", "quar", "h2d MB", "p2p MB", "kernel ms", "util"
        );
        for d in &self.devices {
            let _ = writeln!(
                out,
                "{:<18} {:>5} {:>6} {:>6} {:>5} {:>10.1} {:>9.1} {:>12.3} {:>6.1}%",
                format!("dev{} {}", d.index, d.name),
                d.jobs,
                d.steals,
                d.shards,
                d.quarantines,
                d.h2d_bytes as f64 / (1024.0 * 1024.0),
                d.p2p_bytes as f64 / (1024.0 * 1024.0),
                d.kernel_ns / 1e6,
                d.busy_frac * 100.0,
            );
            if !d.history.is_empty() {
                let events: Vec<String> = d
                    .history
                    .iter()
                    .map(|e| format!("{}@{:.1}ms", e.kind.label(), e.sim_ns / 1e6))
                    .collect();
                let _ = writeln!(out, "{:<18} history: {}", "", events.join(" "));
            }
        }
        let _ = writeln!(out, "fleet makespan {:.3} ms", self.elapsed_ns / 1e6);
        out
    }
}

/// A fleet of simulated devices with per-device command streams.
///
/// Thread-safe: placement counters are atomics and each device's timeline
/// sits behind its own mutex, so service workers pinned to different
/// devices never contend.
pub struct FleetRuntime {
    devices: Vec<DeviceRuntime>,
    /// Fleet-wide D2D traffic, counted once per transfer (each endpoint's
    /// timeline also shows the op, so summing per-device port bytes would
    /// double-count).
    p2p_bytes: AtomicU64,
    p2p_transfers: AtomicU64,
}

impl FleetRuntime {
    /// Builds a fleet over `configs` (one timeline per device).
    ///
    /// # Panics
    ///
    /// Panics on an empty config list — a fleet without devices cannot
    /// place anything.
    pub fn new(configs: Vec<DeviceConfig>) -> Self {
        Self::with_health_policy(configs, HealthPolicy::default())
    }

    /// Builds a fleet with an explicit circuit-breaker policy.
    ///
    /// # Panics
    ///
    /// Panics on an empty config list.
    pub fn with_health_policy(configs: Vec<DeviceConfig>, policy: HealthPolicy) -> Self {
        assert!(!configs.is_empty(), "fleet needs at least one device");
        FleetRuntime {
            devices: configs
                .into_iter()
                .map(|c| DeviceRuntime::new(c, policy))
                .collect(),
            p2p_bytes: AtomicU64::new(0),
            p2p_transfers: AtomicU64::new(0),
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the fleet has no devices (never true; see [`Self::new`]).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The configuration of device `dev`.
    pub fn config(&self, dev: usize) -> &DeviceConfig {
        &self.devices[dev].config
    }

    /// Current placement load of device `dev`: `(inflight + 1)` stages
    /// normalized by [`throughput_weight`] — "how long until this device
    /// would get to one more job".
    pub fn load(&self, dev: usize) -> f64 {
        let d = &self.devices[dev];
        (d.inflight.load(Ordering::Relaxed) + 1) as f64 / throughput_weight(&d.config)
    }

    /// Stages placed but not yet completed on device `dev`.
    pub fn inflight(&self, dev: usize) -> u64 {
        self.devices[dev].inflight.load(Ordering::Relaxed)
    }

    /// Places one stage on the least-loaded device (throughput-weighted,
    /// lowest index on ties) and returns its index. Pair with
    /// [`Self::complete`] when the stage finishes.
    pub fn place(&self) -> usize {
        let mut best = 0;
        let mut best_load = self.load(0);
        for dev in 1..self.devices.len() {
            let load = self.load(dev);
            if load < best_load {
                best = dev;
                best_load = load;
            }
        }
        self.assign(best);
        best
    }

    /// Records a stage placed on an externally-chosen device (a worker
    /// pinned to `dev`, or a steal decided by the scheduler).
    pub fn assign(&self, dev: usize) {
        self.devices[dev].inflight.fetch_add(1, Ordering::Relaxed);
        self.devices[dev].jobs.fetch_add(1, Ordering::Relaxed);
    }

    /// Attaches per-device live-metric series (`device="dev{n}"` labels)
    /// to `registry`. Idempotent; before this is called every recording
    /// path skips metrics at the cost of one `OnceLock` load.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        for (i, d) in self.devices.iter().enumerate() {
            let dev = format!("dev{i}");
            let _ = d.cells.set(DeviceCells {
                stages: registry.counter_with(counters::DEVICE_STAGES, "device", &dev),
                steals: registry.counter_with(counters::RUNTIME_STEALS, "device", &dev),
                shards: registry.counter_with(counters::RUNTIME_SHARDS, "device", &dev),
                h2d_bytes: registry.counter_with(counters::RUNTIME_H2D_BYTES, "device", &dev),
                d2h_bytes: registry.counter_with(counters::RUNTIME_D2H_BYTES, "device", &dev),
                p2p_bytes: registry.counter_with(counters::RUNTIME_P2P_BYTES, "device", &dev),
                busy_ns: registry.gauge_with(counters::DEVICE_BUSY_NS, "device", &dev),
                elapsed_ns: registry.gauge_with(counters::DEVICE_ELAPSED_NS, "device", &dev),
                quarantine_ns: registry.gauge_with(counters::DEVICE_QUARANTINE_NS, "device", &dev),
                quarantines: registry.counter_with(counters::QUARANTINE_EVENTS, "device", &dev),
            });
        }
    }

    /// Marks one placed stage on `dev` as finished.
    pub fn complete(&self, dev: usize) {
        self.devices[dev].inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Counts a work steal *by* device `dev` (the thief).
    pub fn record_steal(&self, dev: usize) {
        self.devices[dev].steals.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = self.devices[dev].cells.get() {
            c.steals.inc();
        }
    }

    /// Counts `count` bucket-range MSM shards executed on device `dev`.
    pub fn record_shards(&self, dev: usize, count: u64) {
        self.devices[dev].shards.fetch_add(count, Ordering::Relaxed);
        if let Some(c) = self.devices[dev].cells.get() {
            c.shards.add(count);
        }
    }

    /// Simulated elapsed time on `dev`'s timeline right now.
    fn elapsed_sim_ns(&self, dev: usize) -> f64 {
        self.devices[dev]
            .lanes
            .lock()
            .expect("fleet lanes mutex")
            .timeline
            .elapsed_ns()
    }

    fn push_event(&self, dev: usize, kind: HealthEventKind, sim_ns: f64) {
        self.devices[dev]
            .events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(HealthEvent { kind, sim_ns });
    }

    /// Refreshes `dev`'s quarantine-time gauge from its breaker state.
    fn refresh_quarantine_gauge(&self, dev: usize, now: Instant) {
        if let Some(c) = self.devices[dev].cells.get() {
            c.quarantine_ns
                .set(self.health(dev).quarantined_ns(now) as f64);
        }
    }

    fn health(&self, dev: usize) -> std::sync::MutexGuard<'_, DeviceHealth> {
        // A panic between lock and unlock cannot corrupt the breaker
        // state (all updates are single assignments), so recover rather
        // than propagate the poison to every other worker.
        self.devices[dev]
            .health
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Records a successful stage on `dev`: closes its circuit breaker.
    /// Returns `true` when this success recovered a degraded device (the
    /// event is added to the device's history).
    pub fn record_success(&self, dev: usize) -> bool {
        let now = Instant::now();
        let recovered = self.health(dev).on_success(now);
        if recovered {
            self.push_event(dev, HealthEventKind::Recovered, self.elapsed_sim_ns(dev));
        }
        self.refresh_quarantine_gauge(dev, now);
        recovered
    }

    /// Records a failed stage on `dev`. `hard` marks device-gone faults
    /// (hangs) that trip the breaker immediately. Returns `true` when the
    /// failure newly quarantined the device.
    pub fn record_failure(&self, dev: usize, hard: bool) -> bool {
        let now = Instant::now();
        let newly = self.health(dev).on_failure(now, hard);
        let sim_ns = self.elapsed_sim_ns(dev);
        self.push_event(
            dev,
            if hard {
                HealthEventKind::HardFault
            } else {
                HealthEventKind::SoftFault
            },
            sim_ns,
        );
        if newly {
            self.push_event(dev, HealthEventKind::Quarantined, sim_ns);
            if let Some(c) = self.devices[dev].cells.get() {
                c.quarantines.inc();
            }
        }
        self.refresh_quarantine_gauge(dev, now);
        newly
    }

    /// Quarantines `dev` immediately (operator action). Returns `true`
    /// when the device was not already quarantined.
    pub fn force_quarantine(&self, dev: usize) -> bool {
        let now = Instant::now();
        let newly = self.health(dev).force_quarantine(now);
        if newly {
            self.push_event(dev, HealthEventKind::Quarantined, self.elapsed_sim_ns(dev));
            if let Some(c) = self.devices[dev].cells.get() {
                c.quarantines.inc();
            }
        }
        self.refresh_quarantine_gauge(dev, now);
        newly
    }

    /// Whether `dev` currently accepts placements (healthy, or due for
    /// its probation probe).
    pub fn available(&self, dev: usize) -> bool {
        self.health(dev).available(Instant::now())
    }

    /// The circuit-breaker state of `dev` right now.
    pub fn health_state(&self, dev: usize) -> HealthState {
        self.health(dev).state(Instant::now())
    }

    /// Times `dev` has entered quarantine.
    pub fn quarantine_count(&self, dev: usize) -> u64 {
        self.health(dev).quarantine_count()
    }

    /// Total quarantine entries across the fleet.
    pub fn quarantine_events(&self) -> u64 {
        (0..self.devices.len())
            .map(|d| self.quarantine_count(d))
            .sum()
    }

    /// Health-aware placement: the least-loaded *available* device,
    /// preferring one different from `avoid` (the device a stage just
    /// failed on). Falls back to `avoid` itself when it is the only
    /// available device; returns `None` when the whole fleet is
    /// quarantined — the caller degrades to the host CPU path. Does
    /// **not** call [`Self::assign`]; the caller places explicitly.
    pub fn place_available(&self, avoid: Option<usize>) -> Option<usize> {
        let mut best: Option<usize> = None;
        for dev in 0..self.devices.len() {
            if Some(dev) == avoid || !self.available(dev) {
                continue;
            }
            if best.is_none_or(|b| self.load(dev) < self.load(b)) {
                best = Some(dev);
            }
        }
        best.or_else(|| avoid.filter(|&d| self.available(d)))
    }

    /// Deadline-aware device claim. `remaining_cost_ns` is the job's
    /// modeled remaining work (simulated nanoseconds on one device);
    /// `slack_ns` is the wall-clock budget left before its deadline
    /// (`None` = no deadline). A job whose slack comfortably covers its
    /// cost gets the least-loaded available device, like any other; one
    /// whose slack is tighter than `remaining_cost_ns ×`
    /// [`URGENCY_MARGIN`] is *urgent* and claims up to `max_devices`
    /// available devices — fastest first — so a near-deadline large
    /// proof can take the whole fleet and split its MSMs across it.
    ///
    /// Every returned device is already [`Self::assign`]ed; pair each
    /// with [`Self::complete`]. Returns an empty list when the whole
    /// fleet is quarantined.
    pub fn place_for_deadline(
        &self,
        remaining_cost_ns: f64,
        slack_ns: Option<f64>,
        max_devices: usize,
    ) -> Vec<usize> {
        let mut avail: Vec<usize> = (0..self.devices.len())
            .filter(|&d| self.available(d))
            .collect();
        if avail.is_empty() {
            return Vec::new();
        }
        let urgent = slack_ns.is_some_and(|s| s < remaining_cost_ns * URGENCY_MARGIN);
        if !urgent || max_devices <= 1 {
            let mut best = avail[0];
            for &dev in &avail[1..] {
                if self.load(dev) < self.load(best) {
                    best = dev;
                }
            }
            self.assign(best);
            return vec![best];
        }
        avail.sort_by(|&a, &b| {
            throughput_weight(&self.devices[b].config)
                .total_cmp(&throughput_weight(&self.devices[a].config))
                .then(a.cmp(&b))
        });
        avail.truncate(max_devices);
        for &dev in &avail {
            self.assign(dev);
        }
        avail
    }

    /// Total device↔device bytes the fleet has routed (each transfer
    /// counted once, regardless of link class).
    pub fn p2p_bytes(&self) -> u64 {
        self.p2p_bytes.load(Ordering::Relaxed)
    }

    /// Total device↔device transfers the fleet has routed.
    pub fn p2p_transfers(&self) -> u64 {
        self.p2p_transfers.load(Ordering::Relaxed)
    }

    /// Schedules a device→device partial-sum transfer: `bytes` leave
    /// `src` no earlier than `after_ns` (the completion of the kernel
    /// that produced them), cross the link, and land on `dst`, whose
    /// execute stream is then ordered after the arrival — so a merge
    /// kernel recorded on `dst` right after this call starts when the
    /// partial is actually resident. NVLink pairs copy directly over
    /// their P2P engines; mixed links pay the host-staged D2H + H2D
    /// round-trip (see [`gzkp_gpu_sim::d2d_time_ns`]). The op shows on
    /// both endpoints' `p2p` lanes. Returns the simulated arrival time.
    pub fn record_p2p(
        &self,
        src: usize,
        dst: usize,
        label: &str,
        bytes: u64,
        after_ns: f64,
    ) -> f64 {
        assert_ne!(src, dst, "P2P transfer needs two distinct devices");
        let link = link_kind(&self.devices[src].config, &self.devices[dst].config);
        let dur = d2d_time_ns(&self.devices[src].config, &self.devices[dst].config, bytes);
        let name = format!(
            "{label}.{}",
            match link {
                LinkKind::NvlinkP2p => "p2p",
                LinkKind::HostStaged => "p2p-staged",
            }
        );
        // Lock both devices' lanes in index order so concurrent merges
        // between overlapping device pairs cannot deadlock.
        let (lo, hi) = (src.min(dst), src.max(dst));
        let guard_lo = self.devices[lo].lanes.lock().expect("fleet lanes mutex");
        let guard_hi = self.devices[hi].lanes.lock().expect("fleet lanes mutex");
        let (mut src_lanes, mut dst_lanes) = if src == lo {
            (guard_lo, guard_hi)
        } else {
            (guard_hi, guard_lo)
        };
        let sp = src_lanes.p2p;
        src_lanes.timeline.wait(sp, Event::at(after_ns));
        let sent = src_lanes.timeline.d2d(sp, &name, bytes, dur);
        // Mirror on the destination port, aligned to the send: both ends'
        // engines must be free, so the arrival is the later completion.
        let dp = dst_lanes.p2p;
        dst_lanes.timeline.wait(dp, Event::at(sent.at_ns() - dur));
        let received = dst_lanes.timeline.d2d(dp, &name, bytes, dur);
        let arrival = sent.at_ns().max(received.at_ns());
        let ex = dst_lanes.execute;
        dst_lanes.timeline.wait(ex, Event::at(arrival));
        drop(src_lanes);
        drop(dst_lanes);
        self.p2p_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.p2p_transfers.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = self.devices[src].cells.get() {
            c.p2p_bytes.add(bytes);
        }
        arrival
    }

    /// Schedules one proof stage on device `dev`: upload `h2d_bytes` of
    /// pinned host memory, run `kernel_ns` of compute ordered after the
    /// upload, download `d2h_bytes` ordered after the kernel. Returns the
    /// simulated completion time. Because uploads go on a dedicated
    /// stream, the next stage's H2D overlaps this stage's kernel.
    pub fn record_stage(
        &self,
        dev: usize,
        label: &str,
        h2d_bytes: u64,
        kernel_ns: f64,
        d2h_bytes: u64,
    ) -> f64 {
        let mut lanes = self.devices[dev].lanes.lock().expect("fleet lanes mutex");
        let Lanes {
            ref mut timeline,
            upload,
            execute,
            download,
            ..
        } = *lanes;
        let mut last = 0.0f64;
        if h2d_bytes > 0 {
            let ev = timeline.h2d(upload, &format!("{label}.h2d"), h2d_bytes, HostMem::Pinned);
            timeline.wait(execute, ev);
            last = ev.at_ns();
        }
        if kernel_ns > 0.0 {
            let ev = timeline.kernel_ns(execute, &format!("{label}.kernel"), kernel_ns);
            last = ev.at_ns();
        }
        if d2h_bytes > 0 {
            // Drain on the download stream so the execute stream is free
            // for the next kernel the moment this one retires.
            let ev = timeline.kernel_ns(execute, &format!("{label}.sync"), 0.0);
            timeline.wait(download, ev);
            let ev = timeline.d2h(
                download,
                &format!("{label}.d2h"),
                d2h_bytes,
                HostMem::Pinned,
            );
            last = ev.at_ns();
        }
        if let Some(c) = self.devices[dev].cells.get() {
            c.stages.inc();
            c.h2d_bytes.add(h2d_bytes);
            c.d2h_bytes.add(d2h_bytes);
            c.busy_ns.set(lanes.timeline.busy_ns(EngineKind::Compute));
            c.elapsed_ns.set(lanes.timeline.elapsed_ns());
        }
        last
    }

    /// [`FleetRuntime::record_stage`] keyed by a propagated
    /// [`gzkp_gpu_sim::TraceContext`]: the stage's timeline ops are
    /// labeled `job{id}.{stage}.{h2d,kernel,d2h}`, so the command
    /// streams, the fault log and the metrics all name the same unit of
    /// work.
    pub fn record_stage_ctx(
        &self,
        ctx: &gzkp_gpu_sim::TraceContext,
        h2d_bytes: u64,
        kernel_ns: f64,
        d2h_bytes: u64,
    ) -> f64 {
        let dev = ctx
            .device
            .expect("record_stage_ctx requires a placed context");
        self.record_stage(dev, &ctx.op_label(), h2d_bytes, kernel_ns, d2h_bytes)
    }

    /// Utilization snapshot: per-device engine busy times and counters
    /// against the fleet makespan.
    pub fn utilization(&self) -> FleetUtilization {
        let now = Instant::now();
        let mut rows = Vec::with_capacity(self.devices.len());
        for (index, d) in self.devices.iter().enumerate() {
            let lanes = d.lanes.lock().expect("fleet lanes mutex");
            let row = DeviceUtilization {
                index,
                name: d.config.name.to_string(),
                jobs: d.jobs.load(Ordering::Relaxed),
                steals: d.steals.load(Ordering::Relaxed),
                shards: d.shards.load(Ordering::Relaxed),
                quarantines: self.quarantine_count(index),
                h2d_bytes: lanes.timeline.h2d_bytes(),
                d2h_bytes: lanes.timeline.d2h_bytes(),
                p2p_bytes: lanes.timeline.p2p_bytes(),
                h2d_ns: lanes.timeline.busy_ns(EngineKind::H2d),
                kernel_ns: lanes.timeline.busy_ns(EngineKind::Compute),
                d2h_ns: lanes.timeline.busy_ns(EngineKind::D2h),
                p2p_ns: lanes.timeline.busy_ns(EngineKind::P2p),
                elapsed_ns: lanes.timeline.elapsed_ns(),
                busy_frac: 0.0,
                quarantine_ns: self.health(index).quarantined_ns(now),
                history: d
                    .events
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            };
            // A snapshot is also a good moment to bring the live gauges
            // up to date for devices that stopped recording stages.
            if let Some(c) = d.cells.get() {
                c.busy_ns.set(row.kernel_ns);
                c.elapsed_ns.set(row.elapsed_ns);
                c.quarantine_ns.set(row.quarantine_ns as f64);
            }
            rows.push(row);
        }
        let elapsed_ns = rows.iter().fold(0.0f64, |m, r| m.max(r.elapsed_ns));
        for r in &mut rows {
            r.busy_frac = if elapsed_ns > 0.0 {
                r.kernel_ns / elapsed_ns
            } else {
                0.0
            };
        }
        FleetUtilization {
            elapsed_ns,
            devices: rows,
        }
    }

    /// The fleet's telemetry trace: a `runtime` span whose `dev{n}`
    /// children carry one lane span per engine (`h2d`, `kernel`, `d2h`),
    /// each lane holding its scheduled operations as child spans stamped
    /// with a [`counters::SPAN_START_NS`] gauge — what `zkprof render
    /// --timeline` aligns into per-device ASCII rows.
    pub fn trace(&self) -> Trace {
        let util = self.utilization();
        let mut runtime = TraceNode::new(counters::SPAN_RUNTIME);
        runtime.time_ns = util.elapsed_ns;
        let mut total_h2d = 0u64;
        let mut total_d2h = 0u64;
        let mut total_steals = 0u64;
        let mut total_shards = 0u64;
        let mut total_quarantines = 0u64;
        for (d, row) in self.devices.iter().zip(&util.devices) {
            total_h2d += row.h2d_bytes;
            total_d2h += row.d2h_bytes;
            total_steals += row.steals;
            total_shards += row.shards;
            total_quarantines += row.quarantines;
            let mut node = TraceNode::new(format!("dev{}", row.index));
            node.time_ns = row.elapsed_ns;
            node.counters
                .push(("runtime.jobs".to_string(), row.jobs as f64));
            node.counters
                .push((counters::RUNTIME_STEALS.to_string(), row.steals as f64));
            node.counters
                .push((counters::RUNTIME_SHARDS.to_string(), row.shards as f64));
            if row.quarantines > 0 {
                node.counters.push((
                    counters::QUARANTINE_EVENTS.to_string(),
                    row.quarantines as f64,
                ));
            }
            node.counters.push((
                counters::RUNTIME_H2D_BYTES.to_string(),
                row.h2d_bytes as f64,
            ));
            node.counters.push((
                counters::RUNTIME_D2H_BYTES.to_string(),
                row.d2h_bytes as f64,
            ));
            if row.p2p_bytes > 0 {
                node.counters.push((
                    counters::RUNTIME_P2P_BYTES.to_string(),
                    row.p2p_bytes as f64,
                ));
            }
            let lanes = d.lanes.lock().expect("fleet lanes mutex");
            for engine in [
                EngineKind::H2d,
                EngineKind::Compute,
                EngineKind::D2h,
                EngineKind::P2p,
            ] {
                // The P2P lane appears only when the device actually
                // routed D2D traffic, so clean single-device traces stay
                // byte-identical to pre-P2P ones.
                if engine == EngineKind::P2p
                    && !lanes.timeline.ops().iter().any(|o| o.engine == engine)
                {
                    continue;
                }
                let mut lane = TraceNode::new(engine.label());
                lane.time_ns = lanes.timeline.busy_ns(engine);
                for op in lanes.timeline.ops().iter().filter(|o| o.engine == engine) {
                    let mut span = TraceNode::new(op.name.clone());
                    span.time_ns = op.end_ns - op.start_ns;
                    span.values
                        .push((counters::SPAN_START_NS.to_string(), op.start_ns));
                    if op.bytes > 0 {
                        span.counters.push(("bytes".to_string(), op.bytes as f64));
                    }
                    lane.children.push(span);
                }
                node.children.push(lane);
            }
            // Fault/quarantine markers ride in a fourth `health` lane —
            // only when events exist, so clean-run traces stay
            // byte-identical to pre-observability ones.
            let events = d.events.lock().unwrap_or_else(PoisonError::into_inner);
            if !events.is_empty() {
                let mut lane = TraceNode::new(counters::SPAN_HEALTH);
                for e in events.iter() {
                    let mut span = TraceNode::new(e.kind.label());
                    span.values
                        .push((counters::SPAN_START_NS.to_string(), e.sim_ns));
                    lane.children.push(span);
                }
                node.children.push(lane);
            }
            drop(events);
            runtime.children.push(node);
        }
        runtime
            .counters
            .push((counters::RUNTIME_H2D_BYTES.to_string(), total_h2d as f64));
        runtime
            .counters
            .push((counters::RUNTIME_D2H_BYTES.to_string(), total_d2h as f64));
        runtime
            .counters
            .push((counters::RUNTIME_STEALS.to_string(), total_steals as f64));
        runtime
            .counters
            .push((counters::RUNTIME_SHARDS.to_string(), total_shards as f64));
        if total_quarantines > 0 {
            runtime.counters.push((
                counters::QUARANTINE_EVENTS.to_string(),
                total_quarantines as f64,
            ));
        }
        let p2p_transfers = self.p2p_transfers();
        if p2p_transfers > 0 {
            runtime.counters.push((
                counters::RUNTIME_P2P_BYTES.to_string(),
                self.p2p_bytes() as f64,
            ));
            runtime.counters.push((
                counters::RUNTIME_P2P_TRANSFERS.to_string(),
                p2p_transfers as f64,
            ));
        }
        let mut root = TraceNode::new("root");
        root.time_ns = runtime.time_ns;
        root.children.push(runtime);
        Trace::new(
            "gzkp",
            crate::spec::fleet_label(
                &self
                    .devices
                    .iter()
                    .map(|d| d.config.clone())
                    .collect::<Vec<_>>(),
            ),
            root,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_devices;
    use gzkp_gpu_sim::device::{gtx1080ti, v100};
    use gzkp_gpu_sim::transfer::transfer_time_ns;

    #[test]
    fn placement_weights_by_throughput() {
        // V100 ≈ 800 weight, 1080 Ti ≈ 196: the first four stages land on
        // the V100 before the 1080 Ti looks cheaper.
        let fleet = FleetRuntime::new(vec![v100(), gtx1080ti()]);
        let picks: Vec<usize> = (0..5).map(|_| fleet.place()).collect();
        assert_eq!(picks, [0, 0, 0, 0, 1]);
        // Completion frees capacity: after the V100 drains it wins again.
        for _ in 0..4 {
            fleet.complete(0);
        }
        assert_eq!(fleet.place(), 0);
        assert_eq!(fleet.inflight(1), 1);
    }

    #[test]
    fn stage_uploads_pipeline_under_kernels() {
        let fleet = FleetRuntime::new(vec![v100()]);
        let bytes = 64u64 << 20;
        let copy_t = transfer_time_ns(fleet.config(0), bytes, HostMem::Pinned);
        let kernel_t = copy_t * 3.0;
        let n = 6;
        let mut done = 0.0;
        for i in 0..n {
            done = fleet.record_stage(0, &format!("proof{i}"), bytes, kernel_t, 0);
        }
        let serial = (copy_t + kernel_t) * f64::from(n);
        // Only the first upload is exposed; the rest hide under compute.
        assert!((done - (copy_t + kernel_t * f64::from(n))).abs() < 1e-3);
        assert!(done < serial * 0.8);
    }

    #[test]
    fn downloads_do_not_block_the_next_kernel() {
        let fleet = FleetRuntime::new(vec![v100()]);
        let big = 256u64 << 20;
        let d2h_t = transfer_time_ns(fleet.config(0), big, HostMem::Pinned);
        let kernel_t = 50_000.0;
        fleet.record_stage(0, "a", 0, kernel_t, big);
        let done = fleet.record_stage(0, "b", 0, kernel_t, 0);
        // Kernel b starts right after kernel a even though a's (huge)
        // download is still in flight on the download stream.
        assert!(d2h_t > kernel_t);
        assert!((done - 2.0 * kernel_t).abs() < 1e-6);
    }

    #[test]
    fn utilization_rolls_up_engines() {
        let fleet = FleetRuntime::new(parse_devices("2").unwrap());
        fleet.assign(0);
        fleet.record_stage(0, "p", 1 << 20, 2.0e6, 4096);
        fleet.complete(0);
        fleet.record_steal(1);
        fleet.record_shards(0, 3);
        let util = fleet.utilization();
        assert_eq!(util.devices.len(), 2);
        let d0 = &util.devices[0];
        assert_eq!((d0.jobs, d0.shards), (1, 3));
        assert_eq!(d0.h2d_bytes, 1 << 20);
        assert_eq!(d0.d2h_bytes, 4096);
        assert!(d0.kernel_ns > 0.0 && d0.busy_frac > 0.0 && d0.busy_frac <= 1.0);
        assert_eq!(util.devices[1].steals, 1);
        assert_eq!(util.devices[1].jobs, 0);
        assert!((util.elapsed_ns - d0.elapsed_ns).abs() < 1e-9);
        let table = util.render();
        assert!(table.contains("dev0 V100"));
        assert!(table.contains("util"));
    }

    #[test]
    fn p2p_transfer_orders_destination_after_source_kernel() {
        let fleet = FleetRuntime::new(vec![v100(), v100()]);
        // dev1 computes a partial; its bytes cross to dev0; a merge
        // kernel on dev0 must start only after arrival.
        let done1 = fleet.record_stage(1, "job0.msm.shard1", 1 << 20, 2.0e6, 0);
        let bytes = 4096u64;
        let arrival = fleet.record_p2p(1, 0, "job0.msm.merge1", bytes, done1);
        let dur = gzkp_gpu_sim::d2d_time_ns(fleet.config(1), fleet.config(0), bytes);
        assert!((arrival - (done1 + dur)).abs() < 1e-6);
        let merged = fleet.record_stage(0, "job0.msm.merge1", 0, 10_000.0, 0);
        assert!((merged - (arrival + 10_000.0)).abs() < 1e-6);
        assert_eq!(fleet.p2p_bytes(), bytes);
        assert_eq!(fleet.p2p_transfers(), 1);
        // Both endpoints show the transfer on their P2P port.
        let util = fleet.utilization();
        assert_eq!(util.devices[0].p2p_bytes, bytes);
        assert_eq!(util.devices[1].p2p_bytes, bytes);
        assert!(util.devices[0].p2p_ns > 0.0);
        // The trace grows a p2p lane on both devices, NVLink-named, and
        // fleet-level counters count the transfer once.
        let trace = fleet.trace();
        for dev in ["dev0", "dev1"] {
            let lane = trace.find(&["runtime", dev, "p2p"]).expect("p2p lane");
            assert_eq!(lane.children.len(), 1);
            assert!(lane.children[0].name.ends_with(".p2p"));
        }
        let runtime = trace.find(&["runtime"]).unwrap();
        assert_eq!(
            runtime.counter(counters::RUNTIME_P2P_BYTES),
            Some(bytes as f64)
        );
        assert_eq!(runtime.counter(counters::RUNTIME_P2P_TRANSFERS), Some(1.0));
    }

    #[test]
    fn pcie_pair_routes_host_staged() {
        let fleet = FleetRuntime::new(vec![gtx1080ti(), gtx1080ti()]);
        fleet.record_p2p(0, 1, "job0.msm.merge0", 4096, 0.0);
        let trace = fleet.trace();
        let lane = trace.find(&["runtime", "dev0", "p2p"]).unwrap();
        assert!(lane.children[0].name.ends_with(".p2p-staged"));
    }

    #[test]
    fn clean_trace_has_no_p2p_lane_or_counters() {
        let fleet = FleetRuntime::new(vec![v100(), v100()]);
        fleet.record_stage(0, "p", 1024, 1.0e6, 0);
        let trace = fleet.trace();
        assert!(trace.find(&["runtime", "dev0", "p2p"]).is_none());
        let runtime = trace.find(&["runtime"]).unwrap();
        assert_eq!(runtime.counter(counters::RUNTIME_P2P_BYTES), None);
        assert_eq!(runtime.counter(counters::RUNTIME_P2P_TRANSFERS), None);
    }

    #[test]
    fn relaxed_deadline_takes_one_device_urgent_takes_fleet() {
        let fleet = FleetRuntime::new(vec![v100(), gtx1080ti(), v100()]);
        // Plenty of slack: a single least-loaded device, like place().
        let calm = fleet.place_for_deadline(1.0e9, Some(10.0e9), usize::MAX);
        assert_eq!(calm, vec![0]);
        for &d in &calm {
            fleet.complete(d);
        }
        // No deadline at all is never urgent.
        let none = fleet.place_for_deadline(1.0e9, None, usize::MAX);
        assert_eq!(none.len(), 1);
        for &d in &none {
            fleet.complete(d);
        }
        // Slack under cost × margin: claim every available device,
        // fastest first.
        let urgent = fleet.place_for_deadline(1.0e9, Some(1.5e9), usize::MAX);
        assert_eq!(urgent, vec![0, 2, 1], "V100s first, then the 1080 Ti");
        assert!(urgent.iter().all(|&d| fleet.inflight(d) >= 1));
        for &d in &urgent {
            fleet.complete(d);
        }
        // The claim cap holds, and quarantined devices are skipped.
        assert!(fleet.record_failure(0, true));
        let capped = fleet.place_for_deadline(1.0e9, Some(0.5e9), 2);
        assert_eq!(capped, vec![2, 1]);
    }

    #[test]
    fn quarantine_steers_placement_and_surfaces_in_reports() {
        use crate::health::HealthPolicy;
        use std::time::Duration;
        let policy = HealthPolicy {
            quarantine_after: 2,
            probation: Duration::from_secs(60),
            max_probation: Duration::from_secs(60),
        };
        let fleet = FleetRuntime::with_health_policy(vec![v100(), v100()], policy);
        assert_eq!(fleet.place_available(None), Some(0));
        // Retry placement avoids the device the stage just failed on.
        assert_eq!(fleet.place_available(Some(0)), Some(1));
        // A hang hard-quarantines immediately; soft failures need two.
        assert!(fleet.record_failure(1, true));
        assert!(!fleet.available(1));
        assert_eq!(
            fleet.place_available(Some(0)),
            Some(0),
            "fall back to avoid"
        );
        assert!(!fleet.record_failure(0, false));
        assert!(fleet.record_failure(0, false));
        assert_eq!(fleet.place_available(None), None, "whole fleet down");
        assert_eq!(fleet.quarantine_events(), 2);
        let util = fleet.utilization();
        assert_eq!(util.devices[0].quarantines, 1);
        assert!(util.render().contains("quar"));
        let trace = fleet.trace();
        let runtime = trace.find(&["runtime"]).unwrap();
        assert_eq!(runtime.counter(counters::QUARANTINE_EVENTS), Some(2.0));
    }

    #[test]
    fn healthy_fleet_trace_omits_quarantine_counter() {
        let fleet = FleetRuntime::new(vec![v100()]);
        fleet.record_stage(0, "p", 1024, 1.0e6, 0);
        let trace = fleet.trace();
        let runtime = trace.find(&["runtime"]).unwrap();
        assert_eq!(runtime.counter(counters::QUARANTINE_EVENTS), None);
    }

    #[test]
    fn trace_exposes_device_lanes_with_start_gauges() {
        let fleet = FleetRuntime::new(vec![v100(), v100()]);
        fleet.record_stage(0, "proof0.msm", 8 << 20, 1.5e6, 1024);
        fleet.record_stage(1, "proof1.msm", 8 << 20, 1.5e6, 1024);
        fleet.record_steal(1);
        fleet.record_shards(1, 2);
        let trace = fleet.trace();
        for dev in ["dev0", "dev1"] {
            for lane in ["h2d", "kernel", "d2h"] {
                let node = trace
                    .find(&["runtime", dev, lane])
                    .unwrap_or_else(|| panic!("missing runtime→{dev}→{lane}"));
                assert!(!node.children.is_empty(), "{dev}/{lane} has no ops");
                for op in &node.children {
                    assert!(op.value(counters::SPAN_START_NS).is_some());
                }
            }
        }
        let up = trace.find(&["runtime", "dev0", "h2d"]).unwrap();
        assert_eq!(up.children[0].counter("bytes"), Some((8 << 20) as f64));
        let runtime = trace.find(&["runtime"]).unwrap();
        assert_eq!(
            runtime.counter(counters::RUNTIME_H2D_BYTES),
            Some(2.0 * (8 << 20) as f64)
        );
        assert_eq!(runtime.counter(counters::RUNTIME_STEALS), Some(1.0));
        assert_eq!(runtime.counter(counters::RUNTIME_SHARDS), Some(2.0));
        assert_eq!(trace.device, "2xV100");
        // Round-trips through the on-disk schema unchanged.
        let back = Trace::from_json(&trace.to_json()).unwrap();
        assert_eq!(back, trace);
    }
}
