//! The memory planner: decide whether an MSM runs whole on a device or as
//! bucket-range shards, and report the numbers behind the decision.
//!
//! The functional machinery (shard count search, per-pass footprint,
//! bucket-range execution) lives on [`GzkpMsm`]; this wrapper packages the
//! decision with its evidence so schedulers and reports can show *why* a
//! task was split.

use gzkp_curves::CurveParams;
use gzkp_msm::{GzkpMsm, MsmEngine};

/// A sizing decision for one MSM task on one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsmShardPlan {
    /// Points in the task.
    pub n: usize,
    /// Bucket-range shards the task will run as (1 = whole).
    pub shards: usize,
    /// Footprint of the unsharded run (checkpoint tables + point vector +
    /// workspace), in bytes.
    pub whole_bytes: u64,
    /// Peak per-pass footprint of the sharded run, in bytes.
    pub sharded_bytes: u64,
    /// The device's global memory, in bytes.
    pub device_mem_bytes: u64,
}

impl MsmShardPlan {
    /// Sizes an MSM of `n` points of curve `C` against `engine`'s device.
    pub fn for_task<C: CurveParams>(engine: &GzkpMsm, n: usize) -> Self {
        let shards = engine.shard_plan::<C>(n);
        MsmShardPlan {
            n,
            shards,
            whole_bytes: MsmEngine::<C>::memory_bytes(engine, n),
            sharded_bytes: engine.sharded_memory_bytes::<C>(n, shards),
            device_mem_bytes: engine.device.global_mem_bytes,
        }
    }

    /// Whether the task must be split to fit.
    pub fn is_sharded(&self) -> bool {
        self.shards > 1
    }

    /// Whether the planned configuration fits the device.
    pub fn fits(&self) -> bool {
        if self.shards == 1 {
            self.whole_bytes <= self.device_mem_bytes
        } else {
            self.sharded_bytes <= self.device_mem_bytes
        }
    }
}

/// A multi-device execution plan for one MSM: the single-device sizing
/// decision extended with a device assignment for every bucket-range
/// shard. The shard count is the larger of the memory-driven split (the
/// task must fit each device) and the claimed device count (every device
/// should get work); shards are assigned round-robin in range order —
/// ranges are balanced by entry load, so each device receives a nearly
/// equal share at any shard count, and the merge order stays the range
/// order regardless of placement (which is what keeps the merged result
/// bit-identical to the single-device run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetMsmPlan {
    /// The single-device sizing this plan extends (memory evidence).
    pub base: MsmShardPlan,
    /// Claimed fleet device indices, primary first (partials merge
    /// toward the primary).
    pub devices: Vec<usize>,
    /// Total bucket-range shards.
    pub shards: usize,
    /// Fleet device index executing each shard, in range/merge order.
    pub assignments: Vec<usize>,
}

impl FleetMsmPlan {
    /// Plans an MSM of `n` points of curve `C` across `devices` (fleet
    /// indices, primary first), sized against the reference `engine`.
    ///
    /// # Panics
    ///
    /// Panics on an empty device list — plan against at least the
    /// primary device.
    pub fn for_task<C: CurveParams>(engine: &GzkpMsm, n: usize, devices: &[usize]) -> Self {
        assert!(!devices.is_empty(), "fleet plan needs at least one device");
        let base = MsmShardPlan::for_task::<C>(engine, n);
        let shards = base.shards.max(devices.len());
        let assignments = (0..shards).map(|i| devices[i % devices.len()]).collect();
        FleetMsmPlan {
            base,
            devices: devices.to_vec(),
            shards,
            assignments,
        }
    }

    /// Whether the plan spreads one proof's MSM over multiple devices.
    pub fn is_cross_device(&self) -> bool {
        self.devices.len() > 1
    }

    /// The primary device: partial sums merge toward it and the result
    /// reads back from it.
    pub fn primary(&self) -> usize {
        self.devices[0]
    }

    /// Shard indices assigned to fleet device `dev`, in range order.
    pub fn shards_for(&self, dev: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| (d == dev).then_some(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gzkp_curves::{bn254, t753};
    use gzkp_gpu_sim::device::{gtx1080ti, v100};

    #[test]
    fn small_tasks_run_whole() {
        let engine = GzkpMsm::new(v100());
        let plan = MsmShardPlan::for_task::<bn254::G1Config>(&engine, 1 << 16);
        assert_eq!(plan.shards, 1);
        assert!(!plan.is_sharded());
        assert!(plan.fits());
    }

    #[test]
    fn fleet_plan_round_robins_shards_over_devices() {
        let engine = GzkpMsm::new(v100());
        let plan = FleetMsmPlan::for_task::<bn254::G1Config>(&engine, 1 << 16, &[2, 0, 1]);
        assert!(plan.is_cross_device());
        assert_eq!(plan.primary(), 2);
        // A fitting task still gets one shard per claimed device.
        assert_eq!(plan.base.shards, 1);
        assert_eq!(plan.shards, 3);
        assert_eq!(plan.assignments, vec![2, 0, 1]);
        assert_eq!(plan.shards_for(0), vec![1]);
        // A single claimed device degenerates to the base plan.
        let solo = FleetMsmPlan::for_task::<bn254::G1Config>(&engine, 1 << 16, &[1]);
        assert!(!solo.is_cross_device());
        assert_eq!(solo.shards, solo.base.shards);
    }

    #[test]
    fn fleet_plan_keeps_memory_driven_shards() {
        // When memory forces more shards than there are devices, the
        // device assignment wraps and every shard still has an owner.
        let engine = GzkpMsm::new(gtx1080ti());
        let plan = FleetMsmPlan::for_task::<t753::G1Config>(&engine, 1 << 25, &[0, 1]);
        assert!(plan.base.shards > 2);
        assert_eq!(plan.shards, plan.base.shards);
        assert_eq!(plan.assignments.len(), plan.shards);
        assert!(!plan.shards_for(0).is_empty() && !plan.shards_for(1).is_empty());
    }

    #[test]
    fn oversized_753bit_task_shards_to_fit_a_1080ti() {
        // 2^25 points at 753 bits: the whole-task footprint exceeds the
        // 1080 Ti's 11 GB, so the planner splits it into passes that fit.
        let engine = GzkpMsm::new(gtx1080ti());
        let plan = MsmShardPlan::for_task::<t753::G1Config>(&engine, 1 << 25);
        assert!(plan.whole_bytes > plan.device_mem_bytes);
        assert!(plan.is_sharded());
        assert!(plan.fits());
        assert!(plan.sharded_bytes <= plan.device_mem_bytes);
        // The same task runs whole on a 32 GB V100 only if it fits there;
        // either way the plan is internally consistent.
        let v = MsmShardPlan::for_task::<t753::G1Config>(&GzkpMsm::new(v100()), 1 << 25);
        assert!(v.shards < plan.shards || plan.shards >= 2);
    }
}
