//! The memory planner: decide whether an MSM runs whole on a device or as
//! bucket-range shards, and report the numbers behind the decision.
//!
//! The functional machinery (shard count search, per-pass footprint,
//! bucket-range execution) lives on [`GzkpMsm`]; this wrapper packages the
//! decision with its evidence so schedulers and reports can show *why* a
//! task was split.

use gzkp_curves::CurveParams;
use gzkp_msm::{GzkpMsm, MsmEngine};

/// A sizing decision for one MSM task on one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsmShardPlan {
    /// Points in the task.
    pub n: usize,
    /// Bucket-range shards the task will run as (1 = whole).
    pub shards: usize,
    /// Footprint of the unsharded run (checkpoint tables + point vector +
    /// workspace), in bytes.
    pub whole_bytes: u64,
    /// Peak per-pass footprint of the sharded run, in bytes.
    pub sharded_bytes: u64,
    /// The device's global memory, in bytes.
    pub device_mem_bytes: u64,
}

impl MsmShardPlan {
    /// Sizes an MSM of `n` points of curve `C` against `engine`'s device.
    pub fn for_task<C: CurveParams>(engine: &GzkpMsm, n: usize) -> Self {
        let shards = engine.shard_plan::<C>(n);
        MsmShardPlan {
            n,
            shards,
            whole_bytes: MsmEngine::<C>::memory_bytes(engine, n),
            sharded_bytes: engine.sharded_memory_bytes::<C>(n, shards),
            device_mem_bytes: engine.device.global_mem_bytes,
        }
    }

    /// Whether the task must be split to fit.
    pub fn is_sharded(&self) -> bool {
        self.shards > 1
    }

    /// Whether the planned configuration fits the device.
    pub fn fits(&self) -> bool {
        if self.shards == 1 {
            self.whole_bytes <= self.device_mem_bytes
        } else {
            self.sharded_bytes <= self.device_mem_bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gzkp_curves::{bn254, t753};
    use gzkp_gpu_sim::device::{gtx1080ti, v100};

    #[test]
    fn small_tasks_run_whole() {
        let engine = GzkpMsm::new(v100());
        let plan = MsmShardPlan::for_task::<bn254::G1Config>(&engine, 1 << 16);
        assert_eq!(plan.shards, 1);
        assert!(!plan.is_sharded());
        assert!(plan.fits());
    }

    #[test]
    fn oversized_753bit_task_shards_to_fit_a_1080ti() {
        // 2^25 points at 753 bits: the whole-task footprint exceeds the
        // 1080 Ti's 11 GB, so the planner splits it into passes that fit.
        let engine = GzkpMsm::new(gtx1080ti());
        let plan = MsmShardPlan::for_task::<t753::G1Config>(&engine, 1 << 25);
        assert!(plan.whole_bytes > plan.device_mem_bytes);
        assert!(plan.is_sharded());
        assert!(plan.fits());
        assert!(plan.sharded_bytes <= plan.device_mem_bytes);
        // The same task runs whole on a 32 GB V100 only if it fits there;
        // either way the plan is internally consistent.
        let v = MsmShardPlan::for_task::<t753::G1Config>(&GzkpMsm::new(v100()), 1 << 25);
        assert!(v.shards < plan.shards || plan.shards >= 2);
    }
}
