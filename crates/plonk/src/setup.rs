//! PLONK circuit setup: the universal powers-of-tau SRS plus per-circuit
//! preprocessing (selector polynomials, the copy-constraint permutation
//! σ, and their commitments).
//!
//! Setup is host-side and engine-independent: polynomial interpolation
//! runs through the reference CPU NTT and the eight preprocessing
//! commitments are computed as `p(τ)·G1` (the setup still holds τ at
//! that point, so one scalar multiplication replaces each MSM). The
//! *prover's* commitments — wires, permutation accumulator, quotient
//! chunks, openings — are the ones that run through the shared
//! [`gzkp_msm::MsmEngine`] stack.

use crate::circuit::PlonkCircuit;
use crate::kzg::{evaluate_poly, KzgSrs};
use gzkp_curves::pairing::PairingConfig;
use gzkp_curves::{batch_to_affine, Affine, Projective};
use gzkp_ff::{Field, PrimeField};
use gzkp_ntt::{CpuNtt, Direction, Radix2Domain};
use rand::Rng;

/// Degree headroom the SRS needs beyond the domain size: the blinded
/// permutation accumulator has `n + 3` coefficients (degree `n + 2`),
/// the largest polynomial any stage commits.
pub const SRS_HEADROOM: usize = 3;

/// Verifier-side key material for one circuit shape.
#[derive(Clone)]
pub struct PlonkVerifyingKey<P: PairingConfig> {
    /// Domain size (number of gate rows, a power of two).
    pub n: usize,
    /// Number of public inputs.
    pub num_public: usize,
    /// Coset shift of the second wire column's identity permutation.
    pub k1: P::Fr,
    /// Coset shift of the third wire column's identity permutation.
    pub k2: P::Fr,
    /// Commitments to `q_L, q_R, q_O, q_M, q_C`.
    pub selector_comms: [Affine<P::G1>; 5],
    /// Commitments to `σ₁, σ₂, σ₃`.
    pub sigma_comms: [Affine<P::G1>; 3],
    /// The G1 generator.
    pub g1: Affine<P::G1>,
    /// The G2 generator.
    pub g2: Affine<P::G2>,
    /// `τ·G2` — the verifier's half of the KZG pairing check.
    pub tau_g2: Affine<P::G2>,
}

/// Prover-side key material: the SRS plus the preprocessed circuit
/// polynomials in both coefficient and evaluation form (the quotient
/// construction consumes evaluations, the opening stage coefficients).
pub struct PlonkProvingKey<P: PairingConfig> {
    /// Domain size.
    pub n: usize,
    /// Number of public inputs.
    pub num_public: usize,
    /// The powers-of-tau SRS (length `n + SRS_HEADROOM`).
    pub srs: KzgSrs<P>,
    /// Coset shifts `k1`, `k2` (column identities are `X`, `k1·X`,
    /// `k2·X`).
    pub k1: P::Fr,
    /// See [`PlonkProvingKey::k1`].
    pub k2: P::Fr,
    /// Selector polynomials `q_L, q_R, q_O, q_M, q_C`, coefficient form.
    pub selectors: [Vec<P::Fr>; 5],
    /// Permutation polynomials `σ₁, σ₂, σ₃`, coefficient form.
    pub sigma_coeffs: [Vec<P::Fr>; 3],
    /// Permutation values on the domain: `σ_col(ωʳᵒʷ)`.
    pub sigma_evals: [Vec<P::Fr>; 3],
    /// Wire variable indices per row (padded to `n` with the zero var).
    pub wires: [Vec<usize>; 3],
    /// Embedded verifying key (the prover's transcript absorbs it so
    /// both sides derive identical challenges).
    pub vk: PlonkVerifyingKey<P>,
}

/// Finds the coset shifts: `k1` with `k1ⁿ ≠ 1` (so `k1·H` misses `H`)
/// and `k2` with `k2ⁿ ≠ 1` and `(k2/k1)ⁿ ≠ 1` (so the three cosets are
/// pairwise disjoint). Small integers are searched deterministically.
fn coset_shifts<F: PrimeField>(n: usize) -> (F, F) {
    let in_coset = |a: &F, b: &F| -> bool {
        // a/b lands in H iff (a/b)^n == 1.
        (*a * b.inverse().expect("nonzero shift")).pow(&[n as u64]) == F::one()
    };
    let one = F::one();
    let mut k1 = F::from_u64(2);
    while in_coset(&k1, &one) {
        k1 += one;
    }
    let mut k2 = k1 + one;
    while in_coset(&k2, &one) || in_coset(&k2, &k1) {
        k2 += one;
    }
    (k1, k2)
}

/// Interpolates evaluation-form `values` (length `n`) into coefficient
/// form through the reference CPU NTT.
fn interpolate<F: PrimeField>(domain: &Radix2Domain<F>, values: &[F]) -> Vec<F> {
    let mut coeffs = values.to_vec();
    CpuNtt::reference().transform(domain, &mut coeffs, Direction::Inverse);
    coeffs
}

/// Runs per-circuit setup: samples τ, builds the SRS, preprocesses the
/// selectors and the copy-constraint permutation, and commits to them.
///
/// # Errors
///
/// Fails when the domain size exceeds the field's two-adicity.
#[allow(clippy::type_complexity)]
pub fn setup<P: PairingConfig, R: Rng + ?Sized>(
    circuit: &PlonkCircuit<P::Fr>,
    rng: &mut R,
) -> Result<(PlonkProvingKey<P>, PlonkVerifyingKey<P>), String> {
    let n = circuit.domain_size();
    let domain = Radix2Domain::<P::Fr>::new(n)
        .ok_or_else(|| format!("domain size {n} exceeds the field's two-adicity"))?;

    // Padded selector evaluation vectors and wire index columns.
    let mut selector_evals: [Vec<P::Fr>; 5] = std::array::from_fn(|_| vec![P::Fr::zero(); n]);
    let mut wires: [Vec<usize>; 3] = std::array::from_fn(|_| vec![0usize; n]);
    for (row, gate) in circuit.gates.iter().enumerate() {
        selector_evals[0][row] = gate.q_l;
        selector_evals[1][row] = gate.q_r;
        selector_evals[2][row] = gate.q_o;
        selector_evals[3][row] = gate.q_m;
        selector_evals[4][row] = gate.q_c;
        wires[0][row] = gate.a;
        wires[1][row] = gate.b;
        wires[2][row] = gate.c;
    }

    let (k1, k2) = coset_shifts::<P::Fr>(n);
    let shifts = [P::Fr::one(), k1, k2];
    let omegas = Radix2Domain::powers(domain.omega, n);

    // Copy-constraint permutation: collect each variable's slot
    // positions and rotate within the cycle; σ_col(row) is the identity
    // value (k_col·ω^row) of the *next* slot holding the same variable.
    let mut positions: Vec<Vec<(usize, usize)>> = vec![Vec::new(); circuit.num_variables()];
    for col in 0..3 {
        for row in 0..n {
            positions[wires[col][row]].push((col, row));
        }
    }
    let mut sigma_evals: [Vec<P::Fr>; 3] = std::array::from_fn(|_| vec![P::Fr::zero(); n]);
    for cycle in &positions {
        for (i, &(col, row)) in cycle.iter().enumerate() {
            let (ncol, nrow) = cycle[(i + 1) % cycle.len()];
            sigma_evals[col][row] = shifts[ncol] * omegas[nrow];
        }
    }

    let selectors: [Vec<P::Fr>; 5] =
        std::array::from_fn(|i| interpolate(&domain, &selector_evals[i]));
    let sigma_coeffs: [Vec<P::Fr>; 3] =
        std::array::from_fn(|i| interpolate(&domain, &sigma_evals[i]));

    // SRS + preprocessing commitments (setup-side: evaluate at τ, one
    // scalar multiplication per polynomial).
    let tau = P::Fr::random(rng);
    let srs = KzgSrs::<P>::setup_with_tau(tau, n + SRS_HEADROOM);
    let g1 = Projective::<P::G1>::generator();
    let commit_at_tau = |coeffs: &[P::Fr]| g1.mul(&evaluate_poly(coeffs, tau));
    let comms = batch_to_affine(
        &selectors
            .iter()
            .chain(sigma_coeffs.iter())
            .map(|c| commit_at_tau(c))
            .collect::<Vec<_>>(),
    );

    let vk = PlonkVerifyingKey {
        n,
        num_public: circuit.num_public,
        k1,
        k2,
        selector_comms: std::array::from_fn(|i| comms[i]),
        sigma_comms: std::array::from_fn(|i| comms[5 + i]),
        g1: srs.g1(),
        g2: srs.g2,
        tau_g2: srs.tau_g2,
    };
    let pk = PlonkProvingKey {
        n,
        num_public: circuit.num_public,
        srs,
        k1,
        k2,
        selectors,
        sigma_coeffs,
        sigma_evals,
        wires,
        vk: vk.clone(),
    };
    Ok((pk, vk))
}
