//! The PLONK verifier: constant work (a handful of field ops per public
//! input, two scalar-polynomial identities, and one two-pairing check)
//! regardless of circuit size.
//!
//! Verification replays the prover's Fiat–Shamir transcript over the
//! proof's commitments, then checks:
//!
//! 1. **the quotient identity at ζ** — the claimed evaluations satisfy
//!    `gate + PI(ζ) + α·(perm₁ − perm₂) + α²·L₁(ζ)·(z̄ − 1) = Z_H(ζ)·t̄`,
//!    where `PI(ζ)` and `L₁(ζ)` are computed directly from the public
//!    inputs via the barycentric Lagrange form; and
//! 2. **the batched KZG opening** — one random-combination pairing check
//!    covers all thirteen openings at ζ plus the shifted opening of `z`
//!    at ζω:
//!    `e(W_ζ + u·W_ζω, [τ]₂) = e(ζ·W_ζ + u·ζω·W_ζω + F − E, [1]₂)`.

use crate::proof::PlonkProof;
use crate::prove::base_transcript;
use crate::setup::PlonkVerifyingKey;
use gzkp_curves::pairing::{multi_pairing, Gt, PairingConfig};
use gzkp_curves::serialize::CoordField;
use gzkp_curves::{CurveParams, Projective};
use gzkp_ff::ext::{Fp12Config, Fp2Config, Fp6Config};
use gzkp_ff::{batch_inverse, Field};
use gzkp_ntt::Radix2Domain;

/// Verifies a PLONK proof against the verifying key and public inputs.
pub fn verify<P: PairingConfig>(
    vk: &PlonkVerifyingKey<P>,
    public_inputs: &[P::Fr],
    proof: &PlonkProof<P>,
) -> bool
where
    <P::G1 as CurveParams>::Base: CoordField,
    <P::Fq12C as Fp12Config>::Fp6C: Fp6Config<Fp2C = P::Fq2C>,
    P::Fq2C: Fp2Config,
{
    if public_inputs.len() != vk.num_public {
        return false;
    }
    let n = vk.n;
    let Some(domain) = Radix2Domain::<P::Fr>::new(n) else {
        return false;
    };

    // Replay the transcript to the prover's challenge points.
    let mut t = base_transcript(vk, public_inputs);
    for comm in &proof.wire_comms {
        t.absorb_point("wire", comm);
    }
    let beta: P::Fr = t.challenge("beta");
    let gamma: P::Fr = t.challenge("gamma");
    t.absorb_point("z", &proof.z_comm);
    let alpha: P::Fr = t.challenge("alpha");
    for comm in &proof.t_comms {
        t.absorb_point("t", comm);
    }
    let zeta: P::Fr = t.challenge("zeta");
    for e in proof.evals.in_order() {
        t.absorb_scalar("eval", &e);
    }
    let v: P::Fr = t.challenge("v");
    t.absorb_point("w", &proof.w_z);
    t.absorb_point("w", &proof.w_zw);
    let u: P::Fr = t.challenge("u");

    // Z_H(ζ), L₁(ζ), and PI(ζ) in barycentric form. A ζ on the domain
    // (Z_H(ζ) = 0) is rejected outright: the quotient identity is not
    // checkable there and an honest transcript hits it with negligible
    // probability.
    let zh = zeta.pow(&[n as u64]) - P::Fr::one();
    if zh.is_zero() {
        return false;
    }
    let n_inv = match P::Fr::from_u64(n as u64).inverse() {
        Some(inv) => inv,
        None => return false,
    };
    let omegas = Radix2Domain::powers(domain.omega, public_inputs.len().max(1));
    let mut denoms: Vec<P::Fr> = (0..=public_inputs.len())
        .map(|j| {
            if j == 0 {
                zeta - P::Fr::one() // for L₁(ζ)
            } else {
                zeta - omegas[j - 1] // for L_{j-1}(ζ)
            }
        })
        .collect();
    batch_inverse(&mut denoms);
    let l1 = zh * n_inv * denoms[0];
    let mut pi_eval = P::Fr::zero();
    for (j, pi) in public_inputs.iter().enumerate() {
        let lagrange = zh * n_inv * omegas[j] * denoms[j + 1];
        pi_eval -= *pi * lagrange;
    }

    // Identity 1: the quotient relation at ζ over the claimed evals.
    let e = &proof.evals;
    let gate = e.q_l * e.a + e.q_r * e.b + e.q_o * e.c + e.q_m * e.a * e.b + e.q_c + pi_eval;
    let perm1 = (e.a + beta * zeta + gamma)
        * (e.b + beta * vk.k1 * zeta + gamma)
        * (e.c + beta * vk.k2 * zeta + gamma)
        * e.z;
    let perm2 = (e.a + beta * e.s1 + gamma)
        * (e.b + beta * e.s2 + gamma)
        * (e.c + beta * e.s3 + gamma)
        * e.z_omega;
    let alpha_sq = alpha * alpha;
    let lhs = gate + alpha * (perm1 - perm2) + alpha_sq * l1 * (e.z - P::Fr::one());
    if lhs != zh * e.t {
        return false;
    }

    // Identity 2: the batched KZG opening. Commitments in the prover's
    // batch order; T's commitment is recombined from the three chunks.
    let zeta_chunk = zeta.pow(&[(n + 2) as u64]);
    let zeta_chunk2 = zeta_chunk * zeta_chunk;
    let t_comm = proof.t_comms[0]
        .to_projective()
        .add(&proof.t_comms[1].mul(&zeta_chunk))
        .add(&proof.t_comms[2].mul(&zeta_chunk2));
    let comms: [Projective<P::G1>; 13] = [
        proof.wire_comms[0].to_projective(),
        proof.wire_comms[1].to_projective(),
        proof.wire_comms[2].to_projective(),
        proof.z_comm.to_projective(),
        vk.sigma_comms[0].to_projective(),
        vk.sigma_comms[1].to_projective(),
        vk.sigma_comms[2].to_projective(),
        vk.selector_comms[0].to_projective(),
        vk.selector_comms[1].to_projective(),
        vk.selector_comms[2].to_projective(),
        vk.selector_comms[3].to_projective(),
        vk.selector_comms[4].to_projective(),
        t_comm,
    ];
    let evals = e.in_order();
    let mut f_acc = Projective::<P::G1>::identity();
    let mut e_scalar = P::Fr::zero();
    let mut v_pow = P::Fr::one();
    for (comm, eval) in comms.iter().zip(evals.iter().take(13)) {
        f_acc = f_acc.add(&comm.mul(&v_pow));
        e_scalar += v_pow * *eval;
        v_pow *= v;
    }
    // The shifted opening of z at ζω rides with weight u.
    f_acc = f_acc.add(&proof.z_comm.mul(&u));
    e_scalar += u * e.z_omega;

    let zeta_omega = zeta * domain.omega;
    let lhs_g1 = proof.w_z.to_projective().add(&proof.w_zw.mul(&u));
    let rhs_g1 = proof
        .w_z
        .mul(&zeta)
        .add(&proof.w_zw.mul(&(u * zeta_omega)))
        .add(&f_acc)
        .add(&vk.g1.mul(&e_scalar).neg());

    multi_pairing::<P>(&[
        (lhs_g1.to_affine(), vk.tau_g2),
        (rhs_g1.to_affine().neg(), vk.g2),
    ]) == Gt::<P>::one()
}

/// Verifies serialized proof bytes. Malformed bytes verify as `false`,
/// never panic.
pub fn verify_bytes<P: PairingConfig>(
    vk: &PlonkVerifyingKey<P>,
    public_inputs: &[P::Fr],
    bytes: &[u8],
) -> bool
where
    <P::G1 as CurveParams>::Base: CoordField,
    <P::Fq12C as Fp12Config>::Fp6C: Fp6Config<Fp2C = P::Fq2C>,
    P::Fq2C: Fp2Config,
{
    match PlonkProof::<P>::from_bytes(bytes) {
        Ok(proof) => verify(vk, public_inputs, &proof),
        Err(_) => false,
    }
}
