//! [`ProofSystem`] implementation for KZG-committed PLONK: a thin static
//! adapter over the crate's split prover
//! ([`crate::prove::prove_poly`] / [`crate::prove::PlonkCheckpoint`]) and
//! verifier, so the generic service-side task types (`SystemTask<S>`,
//! `CheckpointingTask<S>`) schedule PLONK jobs through exactly the code
//! paths they use for Groth16.
//!
//! `prove_msm` drives the checkpoint state machine from step 0 to
//! completion — it *is* the checkpoint path with no interruptions — so
//! monolithic and stepwise proofs are byte-identical by construction.

use crate::circuit::PlonkCircuit;
use crate::prove::{prove_poly, PlonkCheckpoint, PlonkPolyArtifacts, MSM_STEPS};
use crate::setup::{PlonkProvingKey, PlonkVerifyingKey};
use crate::verify::verify_bytes;
use gzkp_curves::pairing::PairingConfig;
use gzkp_curves::{CoordField, CurveParams};
use gzkp_ff::ext::{Fp12Config, Fp2Config, Fp6Config};
use gzkp_gpu_sim::StageReport;
use gzkp_ntt::gpu::GpuNttEngine;
use gzkp_proof_system::{Engines, ProofSystem, ProofSystemKind, ProveReport};
use gzkp_telemetry::TelemetrySink;
use std::marker::PhantomData;

/// Marker type selecting the KZG/PLONK backend over curve family `P`.
pub struct PlonkSystem<P: PairingConfig>(PhantomData<P>);

impl<P: PairingConfig> ProofSystem for PlonkSystem<P>
where
    <P::G1 as CurveParams>::Base: CoordField,
    <P::G2 as CurveParams>::Base: CoordField,
    <P::Fq12C as Fp12Config>::Fp6C: Fp6Config<Fp2C = P::Fq2C>,
    P::Fq2C: Fp2Config,
{
    type Pairing = P;
    type Circuit = PlonkCircuit<P::Fr>;
    type ProvingKey = PlonkProvingKey<P>;
    type VerifyingKey = PlonkVerifyingKey<P>;
    type PolyArtifacts = PlonkPolyArtifacts<P>;
    type Checkpoint = PlonkCheckpoint<P>;

    const KIND: ProofSystemKind = ProofSystemKind::Plonk;

    fn total_msm_steps() -> usize {
        MSM_STEPS
    }

    fn prove_poly(
        circuit: &Self::Circuit,
        pk: &Self::ProvingKey,
        ntt: &dyn GpuNttEngine<P::Fr>,
        sink: &dyn TelemetrySink,
    ) -> Result<Self::PolyArtifacts, String> {
        prove_poly::<P>(circuit, pk, ntt, sink)
    }

    fn poly_report(poly: &Self::PolyArtifacts) -> &StageReport {
        &poly.report
    }

    fn poly_scalar_bytes(poly: &Self::PolyArtifacts) -> u64 {
        poly.scalar_bytes()
    }

    fn prove_msm(
        pk: &Self::ProvingKey,
        engines: &Engines<'_, P>,
        poly: Self::PolyArtifacts,
        seed: u64,
        sink: &dyn TelemetrySink,
    ) -> Result<(Vec<u8>, ProveReport), String> {
        let mut ckpt = PlonkCheckpoint::from_poly(seed, poly);
        while let Some(step) = ckpt.next_step() {
            ckpt.run_step(pk, engines, step, sink)?;
        }
        let (proof, report) = ckpt.finish()?;
        Ok((proof.to_bytes(), report))
    }

    fn verify_bytes(vk: &Self::VerifyingKey, circuit: &Self::Circuit, proof: &[u8]) -> bool {
        verify_bytes::<P>(vk, circuit.public_inputs(), proof)
    }

    fn witness_elems(circuit: &Self::Circuit) -> usize {
        circuit.num_variables()
    }

    fn poly_d2h_elems(pk: &Self::ProvingKey) -> usize {
        // Three wire polynomials come back from the POLY-stage INTTs.
        3 * pk.n
    }

    fn g1_msm_sizes(pk: &Self::ProvingKey) -> Vec<usize> {
        // The nine commitment MSMs: three wires (n+2), z (n+3), three
        // quotient chunks (n+2), and the two opening witnesses (≤ n+2).
        vec![
            pk.n + 2,
            pk.n + 2,
            pk.n + 2,
            pk.n + 3,
            pk.n + 2,
            pk.n + 2,
            pk.n + 2,
            pk.n + 2,
            pk.n + 2,
        ]
    }

    fn g2_msm_sizes(_pk: &Self::ProvingKey) -> Vec<usize> {
        // KZG commitments are G1-only; G2 appears only in verification.
        Vec::new()
    }

    fn checkpoint_from_poly(seed: u64, poly: Self::PolyArtifacts) -> Self::Checkpoint {
        PlonkCheckpoint::from_poly(seed, poly)
    }

    fn checkpoint_to_bytes(ckpt: &Self::Checkpoint) -> Vec<u8> {
        ckpt.to_bytes()
    }

    fn checkpoint_from_bytes(bytes: &[u8]) -> Result<Self::Checkpoint, String> {
        PlonkCheckpoint::from_bytes(bytes)
    }

    fn checkpoint_seed(ckpt: &Self::Checkpoint) -> u64 {
        ckpt.seed
    }

    fn checkpoint_scalar_bytes(ckpt: &Self::Checkpoint) -> u64 {
        ckpt.scalar_bytes()
    }

    fn checkpoint_steps_done(ckpt: &Self::Checkpoint) -> usize {
        ckpt.steps_done()
    }

    fn checkpoint_next_step(ckpt: &Self::Checkpoint) -> Option<usize> {
        ckpt.next_step()
    }

    fn checkpoint_poly_report(ckpt: &Self::Checkpoint) -> StageReport {
        ckpt.poly_report().clone()
    }

    fn checkpoint_run_step(
        ckpt: &mut Self::Checkpoint,
        pk: &Self::ProvingKey,
        engines: &Engines<'_, P>,
        step: usize,
        sink: &dyn TelemetrySink,
    ) -> Result<(), String> {
        ckpt.run_step(pk, engines, step, sink)
    }

    fn checkpoint_finish(
        ckpt: Self::Checkpoint,
        pk: &Self::ProvingKey,
    ) -> Result<(Vec<u8>, ProveReport), String> {
        let _ = pk;
        let (proof, report) = ckpt.finish()?;
        Ok((proof.to_bytes(), report))
    }
}
