//! PLONK arithmetization: gates over three wire columns, plus the
//! R1CS → PLONK migration the workloads use so one circuit definition
//! drives both backends.
//!
//! Row semantics (standard PLONK gate):
//!
//! ```text
//! q_L·a + q_R·b + q_O·c + q_M·a·b + q_C + PI = 0
//! ```
//!
//! where `a`, `b`, `c` are the row's three wire values and `PI` is the
//! public-input polynomial, `PI(ωʲ) = −pubⱼ` on the first `ℓ` rows and 0
//! elsewhere. Copy constraints (the same variable appearing in several
//! wire slots) are enforced by the permutation argument in the prover —
//! the circuit only records *which variable* sits in each slot.

use gzkp_ff::PrimeField;
use gzkp_groth16::r1cs::{ConstraintSystem, LinearCombination};

/// Selector values and wire variable indices of one gate row.
#[derive(Debug, Clone)]
pub struct PlonkGate<F: PrimeField> {
    /// Left-wire selector.
    pub q_l: F,
    /// Right-wire selector.
    pub q_r: F,
    /// Output-wire selector.
    pub q_o: F,
    /// Multiplication selector.
    pub q_m: F,
    /// Constant selector.
    pub q_c: F,
    /// Variable in the left wire slot.
    pub a: usize,
    /// Variable in the right wire slot.
    pub b: usize,
    /// Variable in the output wire slot.
    pub c: usize,
}

impl<F: PrimeField> PlonkGate<F> {
    /// An all-zero gate wired to the zero variable (domain padding).
    pub fn empty() -> Self {
        Self {
            q_l: F::zero(),
            q_r: F::zero(),
            q_o: F::zero(),
            q_m: F::zero(),
            q_c: F::zero(),
            a: 0,
            b: 0,
            c: 0,
        }
    }
}

/// A witnessed PLONK circuit: variable values plus the gate list.
///
/// Variable 0 is the dedicated constant-zero wire (every unused slot
/// points at it, and a `q_L = 1` gate pins its value); public-input
/// variables occupy indices `1..=num_public` and the first `num_public`
/// gate rows, one PI gate each.
#[derive(Debug, Clone)]
pub struct PlonkCircuit<F: PrimeField> {
    /// Number of public inputs.
    pub num_public: usize,
    /// Value of every variable (index 0 is the zero wire).
    pub values: Vec<F>,
    /// The gate rows, PI gates first.
    pub gates: Vec<PlonkGate<F>>,
}

/// Smallest domain the quotient construction supports: the coset
/// division needs `deg t = 3n + 5 < 4n`, i.e. `n > 5`, and domains are
/// powers of two.
pub const MIN_DOMAIN: usize = 8;

impl<F: PrimeField> PlonkCircuit<F> {
    /// Creates an empty circuit with `num_public` public inputs already
    /// allocated (variables `1..=num_public`, one PI gate row each).
    pub fn new(public_inputs: &[F]) -> Self {
        let mut circuit = Self {
            num_public: public_inputs.len(),
            values: Vec::with_capacity(1 + public_inputs.len()),
            gates: Vec::new(),
        };
        circuit.values.push(F::zero());
        for (j, value) in public_inputs.iter().enumerate() {
            circuit.values.push(*value);
            let mut gate = PlonkGate::empty();
            gate.q_l = F::one();
            gate.a = 1 + j;
            circuit.gates.push(gate);
        }
        circuit
    }

    /// Allocates a new witness variable with `value`.
    pub fn alloc(&mut self, value: F) -> usize {
        self.values.push(value);
        self.values.len() - 1
    }

    /// Appends a gate row.
    pub fn push_gate(&mut self, gate: PlonkGate<F>) {
        self.gates.push(gate);
    }

    /// The public-input values, in allocation order.
    pub fn public_inputs(&self) -> &[F] {
        &self.values[1..1 + self.num_public]
    }

    /// Domain size: gate count rounded up to a power of two, at least
    /// [`MIN_DOMAIN`]. Padding rows are all-zero gates wired to the zero
    /// variable.
    pub fn domain_size(&self) -> usize {
        self.gates.len().max(MIN_DOMAIN).next_power_of_two()
    }

    /// Number of variables (witness upload size for H2D modeling).
    pub fn num_variables(&self) -> usize {
        self.values.len()
    }

    /// The PI contribution on row `row`: `−pub_row` on PI rows, zero
    /// elsewhere.
    pub fn pi_at(&self, row: usize) -> F {
        if row < self.num_public {
            -self.values[1 + row]
        } else {
            F::zero()
        }
    }

    /// Checks every gate equation against the witness.
    ///
    /// # Errors
    ///
    /// Reports the first violated row.
    pub fn is_satisfied(&self) -> Result<(), String> {
        for (row, gate) in self.gates.iter().enumerate() {
            let a = self.values[gate.a];
            let b = self.values[gate.b];
            let c = self.values[gate.c];
            let acc = gate.q_l * a
                + gate.q_r * b
                + gate.q_o * c
                + gate.q_m * a * b
                + gate.q_c
                + self.pi_at(row);
            if !acc.is_zero() {
                return Err(format!("gate {row} unsatisfied"));
            }
        }
        Ok(())
    }

    /// Migrates a satisfied R1CS constraint system to PLONK gates — the
    /// plonkit-style path that lets every existing workload circuit run
    /// under both backends.
    ///
    /// Each R1CS constraint `⟨A,z⟩·⟨B,z⟩ = ⟨C,z⟩` becomes chains of
    /// addition gates accumulating the three linear combinations plus
    /// one multiplication gate tying them together. R1CS variable `j`
    /// maps to PLONK variable `j + 1` (slot 0 is PLONK's zero wire;
    /// R1CS's constant-one variable becomes an ordinary witness pinned
    /// to 1 by a `q_L·x + q_C = 0` gate).
    pub fn from_r1cs(cs: &ConstraintSystem<F>) -> Self {
        let mut circuit = Self::new(&cs.input_assignment);
        // R1CS constant-one variable, pinned by a gate.
        let one_var = circuit.alloc(F::one());
        circuit.push_gate(PlonkGate {
            q_l: F::one(),
            q_c: -F::one(),
            a: one_var,
            ..PlonkGate::empty()
        });
        // Remaining R1CS variables in index order: inputs are already
        // allocated at 1..=num_inputs; aux follow.
        for value in &cs.aux_assignment {
            circuit.alloc(*value);
        }
        // R1CS var j → PLONK var: 0 → one_var, input i → i, aux k →
        // one_var + k + 1.
        let map = |j: usize| -> usize {
            if j == 0 {
                one_var
            } else if j <= cs.num_inputs {
                j
            } else {
                one_var + (j - cs.num_inputs)
            }
        };
        let z = cs.full_assignment();
        let wire_of_lc = |circuit: &mut Self, lc: &LinearCombination<F>| -> usize {
            match lc.terms.as_slice() {
                [] => 0, // the zero wire
                [(j, coeff)] if *coeff == F::one() => map(*j),
                terms => {
                    // acc₀ = c₀·v₀; accₖ = accₖ₋₁ + cₖ·vₖ.
                    let mut acc_val = terms[0].1 * z[terms[0].0];
                    let mut acc = circuit.alloc(acc_val);
                    circuit.push_gate(PlonkGate {
                        q_l: terms[0].1,
                        q_o: -F::one(),
                        a: map(terms[0].0),
                        c: acc,
                        ..PlonkGate::empty()
                    });
                    for (j, coeff) in &terms[1..] {
                        acc_val += *coeff * z[*j];
                        let next = circuit.alloc(acc_val);
                        circuit.push_gate(PlonkGate {
                            q_l: F::one(),
                            q_r: *coeff,
                            q_o: -F::one(),
                            a: acc,
                            b: map(*j),
                            c: next,
                            ..PlonkGate::empty()
                        });
                        acc = next;
                    }
                    acc
                }
            }
        };
        for (lc_a, lc_b, lc_c) in &cs.constraints {
            let wa = wire_of_lc(&mut circuit, lc_a);
            let wb = wire_of_lc(&mut circuit, lc_b);
            let wc = wire_of_lc(&mut circuit, lc_c);
            circuit.push_gate(PlonkGate {
                q_m: F::one(),
                q_o: -F::one(),
                a: wa,
                b: wb,
                c: wc,
                ..PlonkGate::empty()
            });
        }
        circuit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gzkp_curves::bn254::Fr;
    use gzkp_ff::Field;
    use gzkp_groth16::r1cs::{ConstraintSystem, LinearCombination};

    #[test]
    fn r1cs_migration_satisfies() {
        // A multiplication with a linear combination thrown in:
        // (x + 2)·y = 45 with x = 3, y = 9.
        let mut cs = ConstraintSystem::<Fr>::new();
        let n = cs.alloc_input(Fr::from_u64(45));
        let x = cs.alloc(Fr::from_u64(3));
        let y = cs.alloc(Fr::from_u64(9));
        cs.enforce(
            LinearCombination::from_var(x).add_term(gzkp_groth16::Variable::ONE, Fr::from_u64(2)),
            LinearCombination::from_var(y),
            LinearCombination::from_var(n),
        );
        cs.is_satisfied().unwrap();
        let circuit = PlonkCircuit::from_r1cs(&cs);
        circuit.is_satisfied().unwrap();
        assert_eq!(circuit.public_inputs(), &[Fr::from_u64(45)]);
        assert!(circuit.domain_size() >= MIN_DOMAIN);
    }

    #[test]
    fn unsatisfied_gate_is_reported() {
        let mut circuit = PlonkCircuit::new(&[Fr::from_u64(3)]);
        let v = circuit.alloc(Fr::from_u64(9));
        circuit.push_gate(PlonkGate {
            q_l: Fr::one(),
            q_c: Fr::one(),
            a: v,
            ..PlonkGate::empty()
        });
        let err = circuit.is_satisfied().unwrap_err();
        assert!(err.contains("unsatisfied"), "{err}");
    }
}
