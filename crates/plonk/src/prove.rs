//! The PLONK prover, structured as the same POLY → MSM pipeline the
//! service schedules for Groth16, with a step-granular checkpoint the
//! cluster can migrate between hosts.
//!
//! * **POLY stage** ([`prove_poly`]): satisfiability check, wire column
//!   extraction, and three interpolation NTTs through the pluggable
//!   [`GpuNttEngine`].
//! * **MSM stage**: four checkpointable commit steps, every commitment an
//!   MSM against the powers-of-tau SRS through the pluggable
//!   [`gzkp_msm::MsmEngine`] (so the shard planner, preprocess cache, and
//!   cross-device merging all apply):
//!   0. `wires` — blind and commit the three wire polynomials;
//!   1. `perm_z` — derive β, γ, build and commit the permutation
//!      accumulator (one more engine NTT);
//!   2. `quotient` — derive α, evaluate the gate + copy-constraint
//!      identity on the 4n coset (a batch of engine NTTs), divide by
//!      `Z_H`, commit the three quotient chunks;
//!   3. `open` — derive ζ, evaluate, batch with v, commit the two KZG
//!      opening witnesses.
//!
//! Determinism: all blinding comes from `StdRng` generators seeded as a
//! fixed function of the job seed and the step index, drawn at fixed
//! points — so proofs are byte-identical across `GZKP_THREADS`, device
//! counts, and checkpoint/resume boundaries (the monolithic [`prove`]
//! literally drives the same state machine). Fiat–Shamir challenges are
//! re-derived on every step by replaying the transcript over the
//! commitments riding in the checkpoint, so a resuming host needs no
//! hidden state.
//!
//! ## Checkpoint wire format (version 1)
//!
//! ```text
//! "GZKPPLK" ++ version:u8
//! fr_bits:u32 fr_limbs:u32 g1_coord_len:u32 g2_coord_len:u32  // curve shape guard
//! seed:u64  done:u8 (bit i ⇒ commit step i complete)
//! poly_report: len:u64 ++ JSON      msm_report: len:u64 ++ JSON
//! public_inputs, wire_values ×3, wire_coeffs ×3, z_coeffs, t_parts ×3:
//!     n:u64 ++ n·NUM_LIMBS little-endian u64 limbs each
//! if done₀: 3 point sections (len:u64 ++ compressed affine)
//! if done₁: 1 point section
//! if done₂: 3 point sections
//! if done₃: evals (14-scalar field vector) ++ 2 point sections
//! ```
//!
//! Decoding validates the magic, version, curve shape, every scalar
//! (canonical range) and every point (curve equation) — a checkpoint from
//! the wrong curve or a truncated stream returns an error, never a panic.

use crate::circuit::PlonkCircuit;
use crate::kzg::{divide_at_point, evaluate_poly};
use crate::proof::{PlonkEvals, PlonkProof};
use crate::setup::{PlonkProvingKey, PlonkVerifyingKey};
use crate::transcript::Transcript;
use gzkp_curves::pairing::PairingConfig;
use gzkp_curves::serialize::{compress, decompress, CoordField};
use gzkp_curves::{Affine, CurveParams};
use gzkp_ff::{batch_inverse, Field, PrimeField};
use gzkp_gpu_sim::StageReport;
use gzkp_msm::ScalarVec;
use gzkp_ntt::gpu::GpuNttEngine;
use gzkp_ntt::{CpuNtt, Direction, Radix2Domain};
use gzkp_proof_system::{Engines, ProveReport};
use gzkp_telemetry::{self as telemetry, TelemetrySink};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Current checkpoint wire-format version.
pub const CHECKPOINT_VERSION: u8 = 1;

/// Number of checkpointable commit steps.
pub const MSM_STEPS: usize = 4;

const MAGIC: &[u8; 7] = b"GZKPPLK";

/// Span names of the nine commitment MSMs, from the telemetry registry's
/// per-backend stage table (so `zkprof` labels PLONK stages as PLONK).
const STAGES: [&str; 9] = telemetry::counters::PLONK_MSM_STAGES;

/// Human-readable labels of the four commit steps (logs and errors).
const STEP_LABELS: [&str; MSM_STEPS] = ["wires", "perm_z", "quotient", "open"];

/// Human-readable label of commit step `step`.
///
/// # Panics
///
/// Panics if `step >= MSM_STEPS`.
pub fn step_label(step: usize) -> &'static str {
    STEP_LABELS[step]
}

/// The per-step blinding RNG: a fixed function of the job seed and the
/// step index, so a resuming host re-derives exactly the generator the
/// original host would have used for the steps it replays.
fn step_rng(seed: u64, step: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (step as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Output of the PLONK POLY stage: the wire columns in value and
/// coefficient form, ready for the commit steps.
pub struct PlonkPolyArtifacts<P: PairingConfig> {
    /// POLY-stage simulated report (three interpolation NTTs).
    pub report: StageReport,
    wire_values: [Vec<P::Fr>; 3],
    wire_coeffs: [Vec<P::Fr>; 3],
    public_inputs: Vec<P::Fr>,
}

impl<P: PairingConfig> PlonkPolyArtifacts<P> {
    /// H2D bytes of the scalar state the MSM stage consumes (values feed
    /// the permutation accumulator, coefficients the commitments).
    pub fn scalar_bytes(&self) -> u64 {
        let per = (P::Fr::NUM_LIMBS * 8) as u64;
        let elems: usize = self
            .wire_values
            .iter()
            .chain(self.wire_coeffs.iter())
            .map(Vec::len)
            .sum::<usize>()
            + self.public_inputs.len();
        elems as u64 * per
    }
}

/// Stage 1 of the prover: checks satisfiability, extracts the wire
/// columns, and interpolates them through three engine NTTs inside a
/// `poly` span.
///
/// # Errors
///
/// Fails when the circuit is unsatisfied or does not match `pk`.
pub fn prove_poly<P: PairingConfig>(
    circuit: &PlonkCircuit<P::Fr>,
    pk: &PlonkProvingKey<P>,
    ntt: &dyn GpuNttEngine<P::Fr>,
    sink: &dyn TelemetrySink,
) -> Result<PlonkPolyArtifacts<P>, String> {
    circuit.is_satisfied()?;
    if circuit.domain_size() != pk.n {
        return Err(format!(
            "circuit domain {} does not match key domain {}",
            circuit.domain_size(),
            pk.n
        ));
    }
    if circuit.num_public != pk.num_public {
        return Err("public-input count does not match key".to_string());
    }
    let domain = Radix2Domain::<P::Fr>::new(pk.n).ok_or("domain exceeds two-adicity")?;

    let wire_values: [Vec<P::Fr>; 3] = std::array::from_fn(|col| {
        pk.wires[col]
            .iter()
            .map(|&var| circuit.values[var])
            .collect()
    });

    let mut report = StageReport::new("POLY");
    let mut wire_coeffs: [Vec<P::Fr>; 3] = std::array::from_fn(|_| Vec::new());
    {
        let _poly_span = telemetry::span(sink, telemetry::counters::SPAN_POLY);
        for (col, values) in wire_values.iter().enumerate() {
            let label = format!("ntt[{col}]");
            let mut coeffs = values.clone();
            let r = {
                let _ntt_span = telemetry::span(sink, &label);
                ntt.transform_traced(&domain, &mut coeffs, Direction::Inverse, sink)
            };
            report.kernels.extend(r.kernels);
            wire_coeffs[col] = coeffs;
        }
    }

    Ok(PlonkPolyArtifacts {
        report,
        wire_values,
        wire_coeffs,
        public_inputs: circuit.public_inputs().to_vec(),
    })
}

/// Adds `(Σ bᵢ·Xⁱ)·Z_H` to a length-`n` coefficient vector: blinding
/// that vanishes on the domain, so the quotient numerator stays an exact
/// multiple of `Z_H`.
fn blind<F: Field>(coeffs: &mut Vec<F>, n: usize, blinds: &[F]) {
    coeffs.resize(n + blinds.len(), F::zero());
    for (i, b) in blinds.iter().enumerate() {
        coeffs[n + i] += *b;
        coeffs[i] -= *b;
    }
}

/// Rebuilds the transcript to the state right after the verifying key
/// and public inputs are bound. Prover and verifier both start here.
pub(crate) fn base_transcript<P: PairingConfig>(
    vk: &PlonkVerifyingKey<P>,
    public_inputs: &[P::Fr],
) -> Transcript
where
    <P::G1 as CurveParams>::Base: CoordField,
{
    let mut t = Transcript::new("gzkp-plonk-v1");
    t.absorb_bytes("n", &(vk.n as u64).to_le_bytes());
    t.absorb_scalar("k1", &vk.k1);
    t.absorb_scalar("k2", &vk.k2);
    for comm in &vk.selector_comms {
        t.absorb_point("q", comm);
    }
    for comm in &vk.sigma_comms {
        t.absorb_point("sigma", comm);
    }
    for pi in public_inputs {
        t.absorb_scalar("pi", pi);
    }
    t
}

/// Commits each `(span, coeffs)` job concurrently through the G1 engine,
/// then (after the join, so the span tree stays deterministic) emits each
/// job's telemetry under its span and folds its kernels — span-prefixed —
/// into `msm_report`. Mirrors the concurrent-MSM pattern of the Groth16
/// prover.
fn commit_batch<P: PairingConfig>(
    pk: &PlonkProvingKey<P>,
    engines: &Engines<'_, P>,
    jobs: &[(&'static str, &[P::Fr])],
    msm_report: &mut StageReport,
    sink: &dyn TelemetrySink,
) -> Vec<Affine<P::G1>> {
    let runs: Vec<_> = jobs
        .into_par_iter()
        .map(|(_, coeffs)| pk.srs.commit(coeffs, engines.msm_g1))
        .collect();
    let mut out = Vec::with_capacity(runs.len());
    for ((label, coeffs), run) in jobs.iter().zip(runs) {
        if !coeffs.is_empty() {
            let _span = telemetry::span(sink, label);
            engines.msm_g1.emit_msm_telemetry(
                &pk.srs.g1_powers[..coeffs.len()],
                &ScalarVec::from_field(coeffs),
                &run,
                sink,
            );
        }
        for mut k in run.report.kernels {
            k.name = format!("{label}.{}", k.name);
            msm_report.kernels.push(k);
        }
        out.push(run.result.to_affine());
    }
    out
}

/// Fiat–Shamir challenges recovered by replaying a checkpoint's
/// transcript; each is present once the step that derives it has its
/// prerequisite commitments recorded.
#[derive(Default)]
struct ReplayedChallenges<F> {
    beta: Option<F>,
    gamma: Option<F>,
    alpha: Option<F>,
    zeta: Option<F>,
}

/// Resumable mid-proof PLONK state: the POLY artifacts plus the output
/// of every commit step already executed. See the module docs for the
/// serialized form.
pub struct PlonkCheckpoint<P: PairingConfig> {
    /// Seed of the job's blinding RNG family (see the module docs).
    pub seed: u64,
    poly_report: StageReport,
    msm_report: StageReport,
    public_inputs: Vec<P::Fr>,
    wire_values: [Vec<P::Fr>; 3],
    /// Blinded after step 0 (length n+2 each).
    wire_coeffs: [Vec<P::Fr>; 3],
    wire_comms: Option<[Affine<P::G1>; 3]>,
    /// Blinded accumulator coefficients after step 1 (length n+3).
    z_coeffs: Vec<P::Fr>,
    z_comm: Option<Affine<P::G1>>,
    /// Quotient chunks after step 2 (length n+2 each).
    t_parts: [Vec<P::Fr>; 3],
    t_comms: Option<[Affine<P::G1>; 3]>,
    evals: Option<PlonkEvals<P::Fr>>,
    w_z_comm: Option<Affine<P::G1>>,
    w_zw_comm: Option<Affine<P::G1>>,
}

impl<P: PairingConfig> PlonkCheckpoint<P> {
    /// Opens a checkpoint right after the POLY stage: no steps done.
    pub fn from_poly(seed: u64, poly: PlonkPolyArtifacts<P>) -> Self {
        Self {
            seed,
            poly_report: poly.report,
            msm_report: StageReport::new("MSM"),
            public_inputs: poly.public_inputs,
            wire_values: poly.wire_values,
            wire_coeffs: poly.wire_coeffs,
            wire_comms: None,
            z_coeffs: Vec::new(),
            z_comm: None,
            t_parts: std::array::from_fn(|_| Vec::new()),
            t_comms: None,
            evals: None,
            w_z_comm: None,
            w_zw_comm: None,
        }
    }

    /// Per-step completion flags, in execution order.
    pub fn completed(&self) -> [bool; MSM_STEPS] {
        [
            self.wire_comms.is_some(),
            self.z_comm.is_some(),
            self.t_comms.is_some(),
            self.w_z_comm.is_some(),
        ]
    }

    /// Number of commit steps already executed.
    pub fn steps_done(&self) -> usize {
        self.completed().iter().filter(|&&d| d).count()
    }

    /// The first step still to run, or `None` when only
    /// [`PlonkCheckpoint::finish`] remains.
    pub fn next_step(&self) -> Option<usize> {
        self.completed().iter().position(|&d| !d)
    }

    /// The POLY stage report captured at checkpoint time.
    pub fn poly_report(&self) -> &StageReport {
        &self.poly_report
    }

    /// H2D bytes of the checkpointed scalar state.
    pub fn scalar_bytes(&self) -> u64 {
        let per = (P::Fr::NUM_LIMBS * 8) as u64;
        let elems: usize = self
            .wire_values
            .iter()
            .chain(self.wire_coeffs.iter())
            .chain(self.t_parts.iter())
            .map(Vec::len)
            .sum::<usize>()
            + self.z_coeffs.len()
            + self.public_inputs.len();
        elems as u64 * per
    }

    /// Replays the transcript across the first `steps` steps' recorded
    /// commitments — every challenge is a pure function of the verifying
    /// key, public inputs, and commitments riding in the checkpoint, so
    /// any host derives the same values. Absorbs and squeezes interleave
    /// in exactly the live protocol's order (the sponge is stateful, so
    /// a challenge squeezed at a different point is a different value).
    fn transcript_through(
        &self,
        pk: &PlonkProvingKey<P>,
        steps: usize,
    ) -> (Transcript, ReplayedChallenges<P::Fr>)
    where
        <P::G1 as CurveParams>::Base: CoordField,
    {
        let mut t = base_transcript(&pk.vk, &self.public_inputs);
        let mut ch = ReplayedChallenges::default();
        if steps >= 1 {
            for comm in self.wire_comms.as_ref().expect("wires committed") {
                t.absorb_point("wire", comm);
            }
            ch.beta = Some(t.challenge("beta"));
            ch.gamma = Some(t.challenge("gamma"));
        }
        if steps >= 2 {
            t.absorb_point("z", self.z_comm.as_ref().expect("z committed"));
            ch.alpha = Some(t.challenge("alpha"));
        }
        if steps >= 3 {
            for comm in self.t_comms.as_ref().expect("t committed") {
                t.absorb_point("t", comm);
            }
            ch.zeta = Some(t.challenge("zeta"));
        }
        (t, ch)
    }

    /// Executes commit step `step`. A step already done is a no-op, so
    /// replays after a resume are harmless; steps must otherwise run in
    /// order (each consumes the previous step's transcript state).
    ///
    /// # Errors
    ///
    /// Fails if `step` is out of range or a prerequisite step is missing.
    pub fn run_step(
        &mut self,
        pk: &PlonkProvingKey<P>,
        engines: &Engines<'_, P>,
        step: usize,
        sink: &dyn TelemetrySink,
    ) -> Result<(), String>
    where
        <P::G1 as CurveParams>::Base: CoordField,
    {
        if step >= MSM_STEPS {
            return Err(format!("plonk step {step} out of range (0..{MSM_STEPS})"));
        }
        if self.completed()[step] {
            return Ok(());
        }
        if step > 0 && !self.completed()[step - 1] {
            return Err(format!(
                "plonk step {step} ({}) scheduled before step {}",
                STEP_LABELS[step],
                step - 1
            ));
        }
        match step {
            0 => self.step_wires(pk, engines, sink),
            1 => self.step_perm_z(pk, engines, sink),
            2 => self.step_quotient(pk, engines, sink),
            _ => self.step_open(pk, engines, sink),
        }
    }

    /// Step 0: blind the three wire polynomials and commit them.
    fn step_wires(
        &mut self,
        pk: &PlonkProvingKey<P>,
        engines: &Engines<'_, P>,
        sink: &dyn TelemetrySink,
    ) -> Result<(), String>
    where
        <P::G1 as CurveParams>::Base: CoordField,
    {
        let mut rng = step_rng(self.seed, 0);
        for coeffs in self.wire_coeffs.iter_mut() {
            let blinds = [P::Fr::random(&mut rng), P::Fr::random(&mut rng)];
            blind(coeffs, pk.n, &blinds);
        }
        let jobs: [(&'static str, &[P::Fr]); 3] = [
            (STAGES[0], &self.wire_coeffs[0]),
            (STAGES[1], &self.wire_coeffs[1]),
            (STAGES[2], &self.wire_coeffs[2]),
        ];
        let comms = commit_batch(pk, engines, &jobs, &mut self.msm_report, sink);
        self.wire_comms = Some([comms[0], comms[1], comms[2]]);
        Ok(())
    }

    /// Step 1: derive β, γ; build, blind, and commit the permutation
    /// accumulator `z`.
    fn step_perm_z(
        &mut self,
        pk: &PlonkProvingKey<P>,
        engines: &Engines<'_, P>,
        sink: &dyn TelemetrySink,
    ) -> Result<(), String>
    where
        <P::G1 as CurveParams>::Base: CoordField,
    {
        let (_, ch) = self.transcript_through(pk, 1);
        let beta = ch.beta.expect("beta replayed");
        let gamma = ch.gamma.expect("gamma replayed");

        let n = pk.n;
        let domain = Radix2Domain::<P::Fr>::new(n).ok_or("domain exceeds two-adicity")?;
        let omegas = Radix2Domain::powers(domain.omega, n);
        let shifts = [P::Fr::one(), pk.k1, pk.k2];

        // Row ratios Π (w + β·id + γ) / (w + β·σ + γ); denominators are
        // batch-inverted (one inversion for the whole column).
        let mut nums = vec![P::Fr::one(); n];
        let mut dens = vec![P::Fr::one(); n];
        for row in 0..n {
            for (col, shift) in shifts.iter().enumerate() {
                let w = self.wire_values[col][row];
                nums[row] *= w + beta * *shift * omegas[row] + gamma;
                dens[row] *= w + beta * pk.sigma_evals[col][row] + gamma;
            }
        }
        batch_inverse(&mut dens);
        let mut z_vals = Vec::with_capacity(n);
        let mut acc = P::Fr::one();
        for row in 0..n {
            z_vals.push(acc);
            acc = acc * nums[row] * dens[row];
        }

        // Interpolate through the engine, then blind with a degree-2
        // masker (z is opened at two points, ζ and ζω).
        let mut z_coeffs = z_vals;
        {
            let _span = telemetry::span(sink, "perm_z_ntt");
            let r = engines
                .ntt
                .transform_traced(&domain, &mut z_coeffs, Direction::Inverse, sink);
            for mut k in r.kernels {
                k.name = format!("{}.{}", STAGES[3], k.name);
                self.msm_report.kernels.push(k);
            }
        }
        let mut rng = step_rng(self.seed, 1);
        let blinds = [
            P::Fr::random(&mut rng),
            P::Fr::random(&mut rng),
            P::Fr::random(&mut rng),
        ];
        blind(&mut z_coeffs, n, &blinds);
        self.z_coeffs = z_coeffs;

        let jobs: [(&'static str, &[P::Fr]); 1] = [(STAGES[3], &self.z_coeffs)];
        let comms = commit_batch(pk, engines, &jobs, &mut self.msm_report, sink);
        self.z_comm = Some(comms[0]);
        Ok(())
    }

    /// Step 2: derive α, evaluate the full constraint identity on the 4n
    /// coset, divide by `Z_H` pointwise (exact: the numerator is a
    /// multiple of `Z_H` and `deg t = 3n+5 < 4n`), and commit the three
    /// quotient chunks.
    fn step_quotient(
        &mut self,
        pk: &PlonkProvingKey<P>,
        engines: &Engines<'_, P>,
        sink: &dyn TelemetrySink,
    ) -> Result<(), String>
    where
        <P::G1 as CurveParams>::Base: CoordField,
    {
        let (_, ch) = self.transcript_through(pk, 2);
        let beta = ch.beta.expect("beta replayed");
        let gamma = ch.gamma.expect("gamma replayed");
        let alpha = ch.alpha.expect("alpha replayed");

        let n = pk.n;
        let domain = Radix2Domain::<P::Fr>::new(n).ok_or("domain exceeds two-adicity")?;
        let big = Radix2Domain::<P::Fr>::new(4 * n).ok_or("4n domain exceeds two-adicity")?;

        // PI and L1 in coefficient form (host-side; tiny next to the 4n
        // NTT batch below).
        let mut pi_coeffs = vec![P::Fr::zero(); n];
        for (j, pi) in self.public_inputs.iter().enumerate() {
            pi_coeffs[j] = -*pi;
        }
        CpuNtt::reference().transform(&domain, &mut pi_coeffs, Direction::Inverse);
        let n_inv = P::Fr::from_u64(n as u64)
            .inverse()
            .ok_or("domain size not invertible")?;
        // L1 = (1/n)·Σ Xⁱ (the Lagrange base at ω⁰).
        let l1_coeffs = vec![n_inv; n];

        // Extend everything to evaluations on the 4n coset through the
        // engine — the quotient's POLY-style NTT batch.
        let mut coset_kernels = Vec::new();
        let mut coset_evals = |coeffs: &[P::Fr], label: &str| -> Vec<P::Fr> {
            let mut data = coeffs.to_vec();
            data.resize(4 * n, P::Fr::zero());
            big.coset_scale(&mut data);
            let r = {
                let _span = telemetry::span(sink, label);
                engines
                    .ntt
                    .transform_traced(&big, &mut data, Direction::Forward, sink)
            };
            coset_kernels.extend(r.kernels);
            data
        };
        let a_ev = coset_evals(&self.wire_coeffs[0], "coset[a]");
        let b_ev = coset_evals(&self.wire_coeffs[1], "coset[b]");
        let c_ev = coset_evals(&self.wire_coeffs[2], "coset[c]");
        let z_ev = coset_evals(&self.z_coeffs, "coset[z]");
        let s_ev: [Vec<P::Fr>; 3] =
            std::array::from_fn(|i| coset_evals(&pk.sigma_coeffs[i], "coset[sigma]"));
        let q_ev: [Vec<P::Fr>; 5] =
            std::array::from_fn(|i| coset_evals(&pk.selectors[i], "coset[q]"));
        let pi_ev = coset_evals(&pi_coeffs, "coset[pi]");
        let l1_ev = coset_evals(&l1_coeffs, "coset[l1]");

        // Z_H and X on the coset, computed incrementally; Z_H never
        // vanishes off the domain, so the batch inversion is total.
        let g = big.coset_gen;
        let g_n = g.pow(&[n as u64]);
        let omega_n = big.omega.pow(&[n as u64]);
        let mut zh_inv = Vec::with_capacity(4 * n);
        let mut xs = Vec::with_capacity(4 * n);
        let mut zpow = g_n;
        let mut x = g;
        for _ in 0..4 * n {
            zh_inv.push(zpow - P::Fr::one());
            xs.push(x);
            zpow *= omega_n;
            x *= big.omega;
        }
        batch_inverse(&mut zh_inv);

        // Pointwise numerator / Z_H. `z(ωX)` on the coset is a rotation
        // by 4 positions (the domain's ω is ω₄ₙ⁴).
        let shifts = [P::Fr::one(), pk.k1, pk.k2];
        let alpha_sq = alpha * alpha;
        let mut t_evals = vec![P::Fr::zero(); 4 * n];
        for i in 0..4 * n {
            let (a, b, c) = (a_ev[i], b_ev[i], c_ev[i]);
            let gate = q_ev[0][i] * a
                + q_ev[1][i] * b
                + q_ev[2][i] * c
                + q_ev[3][i] * a * b
                + q_ev[4][i]
                + pi_ev[i];
            let x = xs[i];
            let perm1 = (a + beta * shifts[0] * x + gamma)
                * (b + beta * shifts[1] * x + gamma)
                * (c + beta * shifts[2] * x + gamma)
                * z_ev[i];
            let perm2 = (a + beta * s_ev[0][i] + gamma)
                * (b + beta * s_ev[1][i] + gamma)
                * (c + beta * s_ev[2][i] + gamma)
                * z_ev[(i + 4) % (4 * n)];
            let boundary = l1_ev[i] * (z_ev[i] - P::Fr::one());
            t_evals[i] = (gate + alpha * (perm1 - perm2) + alpha_sq * boundary) * zh_inv[i];
        }

        // Back to coefficients and split into three chunks of n+2.
        {
            let r = {
                let _span = telemetry::span(sink, "coset[t_inv]");
                engines
                    .ntt
                    .transform_traced(&big, &mut t_evals, Direction::Inverse, sink)
            };
            coset_kernels.extend(r.kernels);
        }
        big.coset_unscale(&mut t_evals);
        for mut k in coset_kernels {
            k.name = format!("quotient.{}", k.name);
            self.msm_report.kernels.push(k);
        }
        let chunk = n + 2;
        self.t_parts = std::array::from_fn(|i| t_evals[i * chunk..(i + 1) * chunk].to_vec());

        let jobs: [(&'static str, &[P::Fr]); 3] = [
            (STAGES[4], &self.t_parts[0]),
            (STAGES[5], &self.t_parts[1]),
            (STAGES[6], &self.t_parts[2]),
        ];
        let comms = commit_batch(pk, engines, &jobs, &mut self.msm_report, sink);
        self.t_comms = Some([comms[0], comms[1], comms[2]]);
        Ok(())
    }

    /// Step 3: derive ζ and v, evaluate every committed polynomial, and
    /// commit the two KZG opening witnesses.
    fn step_open(
        &mut self,
        pk: &PlonkProvingKey<P>,
        engines: &Engines<'_, P>,
        sink: &dyn TelemetrySink,
    ) -> Result<(), String>
    where
        <P::G1 as CurveParams>::Base: CoordField,
    {
        let (mut t, ch) = self.transcript_through(pk, 3);
        let zeta = ch.zeta.expect("zeta replayed");

        let n = pk.n;
        let domain = Radix2Domain::<P::Fr>::new(n).ok_or("domain exceeds two-adicity")?;

        // Combined quotient T = t_lo + ζⁿ⁺²·t_mid + ζ²⁽ⁿ⁺²⁾·t_hi.
        let zeta_chunk = zeta.pow(&[(n + 2) as u64]);
        let zeta_chunk2 = zeta_chunk * zeta_chunk;
        let mut t_combined = self.t_parts[0].clone();
        for (i, coeff) in self.t_parts[1].iter().enumerate() {
            t_combined[i] += zeta_chunk * *coeff;
        }
        for (i, coeff) in self.t_parts[2].iter().enumerate() {
            t_combined[i] += zeta_chunk2 * *coeff;
        }

        // The batched polynomials, in canonical order.
        let batch: [&[P::Fr]; 13] = [
            &self.wire_coeffs[0],
            &self.wire_coeffs[1],
            &self.wire_coeffs[2],
            &self.z_coeffs,
            &pk.sigma_coeffs[0],
            &pk.sigma_coeffs[1],
            &pk.sigma_coeffs[2],
            &pk.selectors[0],
            &pk.selectors[1],
            &pk.selectors[2],
            &pk.selectors[3],
            &pk.selectors[4],
            &t_combined,
        ];
        let mut eval_list = [P::Fr::zero(); 14];
        for (i, coeffs) in batch.iter().enumerate() {
            eval_list[i] = evaluate_poly(coeffs, zeta);
        }
        eval_list[13] = evaluate_poly(&self.z_coeffs, zeta * domain.omega);
        let evals = PlonkEvals::from_order(eval_list);
        for e in evals.in_order() {
            t.absorb_scalar("eval", &e);
        }
        let v: P::Fr = t.challenge("v");

        // W_ζ = (Σ vⁱ·Pᵢ − Σ vⁱ·ȳᵢ)/(X − ζ): combine coefficients first,
        // then one synthetic division covers the whole batch.
        let max_len = batch.iter().map(|c| c.len()).max().unwrap_or(0);
        let mut combined = vec![P::Fr::zero(); max_len];
        let mut v_pow = P::Fr::one();
        for coeffs in batch {
            for (i, c) in coeffs.iter().enumerate() {
                combined[i] += v_pow * *c;
            }
            v_pow *= v;
        }
        let (w_z, _) = divide_at_point(&combined, zeta);
        let (w_zw, _) = divide_at_point(&self.z_coeffs, zeta * domain.omega);

        let jobs: [(&'static str, &[P::Fr]); 2] = [(STAGES[7], &w_z), (STAGES[8], &w_zw)];
        let comms = commit_batch(pk, engines, &jobs, &mut self.msm_report, sink);
        self.evals = Some(evals);
        self.w_z_comm = Some(comms[0]);
        self.w_zw_comm = Some(comms[1]);
        Ok(())
    }

    /// Assembles the proof and report from a fully-stepped checkpoint.
    ///
    /// # Errors
    ///
    /// Fails if any step has not run yet.
    pub fn finish(self) -> Result<(PlonkProof<P>, ProveReport), String> {
        if let Some(step) = self.next_step() {
            return Err(format!(
                "cannot finish: plonk step {step} ({}) not yet run",
                STEP_LABELS[step]
            ));
        }
        Ok((
            PlonkProof {
                wire_comms: self.wire_comms.expect("wires committed"),
                z_comm: self.z_comm.expect("z committed"),
                t_comms: self.t_comms.expect("t committed"),
                w_z: self.w_z_comm.expect("opening committed"),
                w_zw: self.w_zw_comm.expect("shifted opening committed"),
                evals: self.evals.expect("evaluations recorded"),
            },
            ProveReport {
                poly: self.poly_report,
                msm: self.msm_report,
            },
        ))
    }
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend((bytes.len() as u64).to_le_bytes());
    out.extend(bytes);
}

fn put_fvec<F: PrimeField>(out: &mut Vec<u8>, v: &[F]) {
    out.extend((v.len() as u64).to_le_bytes());
    for e in v {
        for limb in e.to_limbs() {
            out.extend(limb.to_le_bytes());
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("checkpoint truncated at offset {}", self.pos))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn section(&mut self) -> Result<&'a [u8], String> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| "section length overflow".to_string())?;
        self.take(len)
    }

    fn fvec<F: PrimeField>(&mut self) -> Result<Vec<F>, String> {
        let n = usize::try_from(self.u64()?).map_err(|_| "field vec overflow".to_string())?;
        let total = n
            .checked_mul(F::NUM_LIMBS * 8)
            .ok_or_else(|| "field vec overflow".to_string())?;
        let raw = self.take(total)?;
        let mut out = Vec::with_capacity(n);
        for (i, elem) in raw.chunks_exact(F::NUM_LIMBS * 8).enumerate() {
            let limbs: Vec<u64> = elem
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            out.push(
                F::from_limbs(&limbs).ok_or_else(|| format!("field element {i}: non-canonical"))?,
            );
        }
        Ok(out)
    }
}

fn report_from_json(bytes: &[u8], which: &str) -> Result<StageReport, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| format!("{which} report is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| format!("{which} report: {e:?}"))
}

impl<P: PairingConfig> PlonkCheckpoint<P>
where
    <P::G1 as CurveParams>::Base: CoordField,
    <P::G2 as CurveParams>::Base: CoordField,
{
    fn curve_shape() -> [u32; 4] {
        [
            P::Fr::MODULUS_BITS,
            P::Fr::NUM_LIMBS as u32,
            <P::G1 as CurveParams>::Base::encoded_len() as u32,
            <P::G2 as CurveParams>::Base::encoded_len() as u32,
        ]
    }

    /// Serializes to the versioned byte format (module docs).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.scalar_bytes() as usize);
        out.extend(MAGIC);
        out.push(CHECKPOINT_VERSION);
        for word in Self::curve_shape() {
            out.extend(word.to_le_bytes());
        }
        out.extend(self.seed.to_le_bytes());
        let done = self
            .completed()
            .iter()
            .enumerate()
            .fold(0u8, |m, (i, &d)| if d { m | (1 << i) } else { m });
        out.push(done);
        put_bytes(
            &mut out,
            serde_json::to_string(&self.poly_report)
                .expect("report serializes")
                .as_bytes(),
        );
        put_bytes(
            &mut out,
            serde_json::to_string(&self.msm_report)
                .expect("report serializes")
                .as_bytes(),
        );
        put_fvec(&mut out, &self.public_inputs);
        for v in &self.wire_values {
            put_fvec(&mut out, v);
        }
        for v in &self.wire_coeffs {
            put_fvec(&mut out, v);
        }
        put_fvec(&mut out, &self.z_coeffs);
        for v in &self.t_parts {
            put_fvec(&mut out, v);
        }
        if let Some(comms) = &self.wire_comms {
            for c in comms {
                put_bytes(&mut out, &compress(c));
            }
        }
        if let Some(c) = &self.z_comm {
            put_bytes(&mut out, &compress(c));
        }
        if let Some(comms) = &self.t_comms {
            for c in comms {
                put_bytes(&mut out, &compress(c));
            }
        }
        if let Some(evals) = &self.evals {
            put_fvec(&mut out, &evals.in_order());
            put_bytes(&mut out, &compress(&self.w_z_comm.expect("open done")));
            put_bytes(&mut out, &compress(&self.w_zw_comm.expect("open done")));
        }
        out
    }

    /// Decodes a checkpoint, validating the magic, version, curve shape,
    /// every scalar (canonical range), and every point (curve equation).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field; never panics
    /// on attacker-controlled input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC {
            return Err("not a GZKP plonk checkpoint (bad magic)".into());
        }
        let version = r.u8()?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"
            ));
        }
        let shape = [r.u32()?, r.u32()?, r.u32()?, r.u32()?];
        if shape != Self::curve_shape() {
            return Err(format!(
                "checkpoint curve shape {shape:?} does not match target curve {:?}",
                Self::curve_shape()
            ));
        }
        let seed = r.u64()?;
        let done = r.u8()?;
        if done >= 1 << MSM_STEPS {
            return Err(format!("invalid completion mask {done:#x}"));
        }
        // Steps complete strictly in order, so the mask must be a prefix.
        if (done & (done + 1)) != 0 {
            return Err(format!("non-contiguous completion mask {done:#x}"));
        }
        let poly_report = report_from_json(r.section()?, "poly")?;
        let msm_report = report_from_json(r.section()?, "msm")?;
        let public_inputs = r.fvec::<P::Fr>()?;
        let wire_values = [r.fvec()?, r.fvec()?, r.fvec()?];
        let wire_coeffs = [r.fvec()?, r.fvec()?, r.fvec()?];
        let z_coeffs = r.fvec()?;
        let t_parts = [r.fvec()?, r.fvec()?, r.fvec()?];
        let read_point = |r: &mut Reader<'_>, which: &str| -> Result<Affine<P::G1>, String> {
            decompress::<P::G1>(r.section()?)
                .ok_or_else(|| format!("{which} commitment: invalid point"))
        };
        let wire_comms = if done & 1 != 0 {
            Some([
                read_point(&mut r, "wire a")?,
                read_point(&mut r, "wire b")?,
                read_point(&mut r, "wire c")?,
            ])
        } else {
            None
        };
        let z_comm = if done & 2 != 0 {
            Some(read_point(&mut r, "z")?)
        } else {
            None
        };
        let t_comms = if done & 4 != 0 {
            Some([
                read_point(&mut r, "t_lo")?,
                read_point(&mut r, "t_mid")?,
                read_point(&mut r, "t_hi")?,
            ])
        } else {
            None
        };
        let (evals, w_z_comm, w_zw_comm) = if done & 8 != 0 {
            let ev = r.fvec::<P::Fr>()?;
            let ev: [P::Fr; 14] = ev
                .try_into()
                .map_err(|_| "evaluation list must have 14 entries".to_string())?;
            (
                Some(PlonkEvals::from_order(ev)),
                Some(read_point(&mut r, "w_z")?),
                Some(read_point(&mut r, "w_zw")?),
            )
        } else {
            (None, None, None)
        };
        if r.pos != bytes.len() {
            return Err(format!(
                "{} trailing bytes after checkpoint",
                bytes.len() - r.pos
            ));
        }
        Ok(Self {
            seed,
            poly_report,
            msm_report,
            public_inputs,
            wire_values,
            wire_coeffs,
            wire_comms,
            z_coeffs,
            z_comm,
            t_parts,
            t_comms,
            evals,
            w_z_comm,
            w_zw_comm,
        })
    }
}

/// Generates a PLONK proof end to end: POLY stage then the four commit
/// steps, inside a `prove` span. Drives the same checkpoint state
/// machine the service's stepwise path runs, so both paths produce
/// byte-identical proofs for the same `seed`.
///
/// # Errors
///
/// Fails when the circuit is unsatisfied or does not match `pk`.
pub fn prove<P: PairingConfig>(
    circuit: &PlonkCircuit<P::Fr>,
    pk: &PlonkProvingKey<P>,
    engines: &Engines<'_, P>,
    seed: u64,
    sink: &dyn TelemetrySink,
) -> Result<(PlonkProof<P>, ProveReport), String>
where
    <P::G1 as CurveParams>::Base: CoordField,
{
    let _prove_span = telemetry::span(sink, telemetry::counters::SPAN_PROVE);
    let poly = prove_poly(circuit, pk, engines.ntt, sink)?;
    let mut ckpt = PlonkCheckpoint::from_poly(seed, poly);
    {
        let _msm_span = telemetry::span(sink, telemetry::counters::SPAN_MSM);
        while let Some(step) = ckpt.next_step() {
            ckpt.run_step(pk, engines, step, sink)?;
        }
    }
    ckpt.finish()
}

/// [`prove`], returning the serialized proof bytes.
///
/// # Errors
///
/// Same conditions as [`prove`].
pub fn prove_bytes<P: PairingConfig>(
    circuit: &PlonkCircuit<P::Fr>,
    pk: &PlonkProvingKey<P>,
    engines: &Engines<'_, P>,
    seed: u64,
    sink: &dyn TelemetrySink,
) -> Result<(Vec<u8>, ProveReport), String>
where
    <P::G1 as CurveParams>::Base: CoordField,
{
    let (proof, report) = prove(circuit, pk, engines, seed, sink)?;
    Ok((proof.to_bytes(), report))
}
