//! # gzkp-plonk — KZG-committed PLONK on the GZKP engine stack
//!
//! The second proof system served by the GZKP pipeline. Where Groth16
//! reduces R1CS to a QAP and runs five query MSMs against a per-circuit
//! trusted setup, PLONK arithmetizes into gate + copy constraints over
//! three wire columns and commits to witness polynomials under a
//! *universal* powers-of-tau KZG setup — but both backends decompose into
//! the same two stages the engine stack schedules:
//!
//! * **POLY** — a batch of NTTs ([`prove_poly`] interpolates the wire
//!   columns; the quotient step later runs a 4n-coset NTT batch);
//! * **MSM** — a sequence of checkpointable steps, each one or more MSMs
//!   through the shared [`gzkp_msm::MsmEngine`] (shard planner,
//!   preprocess cache, cross-device merging included).
//!
//! [`PlonkSystem`] packages the backend behind the
//! [`gzkp_proof_system::ProofSystem`] trait, so the proving service,
//! fleet placement, checkpointed cluster jobs, and telemetry all serve
//! mixed Groth16 + PLONK streams through one front door.
//!
//! Modules:
//!
//! * [`kzg`] — the polynomial-commitment scheme: SRS, commit (an engine
//!   MSM), open, verify, batch-verify.
//! * [`circuit`] — PLONK gates plus the R1CS → PLONK migration so every
//!   existing workload circuit runs under both backends.
//! * [`setup`] — per-circuit preprocessing (selectors, permutation).
//! * [`prove`] — the four-step prover and its portable checkpoint.
//! * [`verify`] — constant-time verification (two identities, two
//!   pairings).
//! * [`transcript`] — the deterministic Fiat–Shamir transcript.

#![warn(missing_docs)]

pub mod circuit;
pub mod kzg;
pub mod proof;
pub mod prove;
pub mod setup;
pub mod system;
pub mod transcript;
pub mod verify;

pub use circuit::{PlonkCircuit, PlonkGate, MIN_DOMAIN};
pub use kzg::{KzgOpening, KzgSrs};
pub use proof::{PlonkEvals, PlonkProof};
pub use prove::{prove, prove_bytes, prove_poly, PlonkCheckpoint, PlonkPolyArtifacts, MSM_STEPS};
pub use setup::{setup, PlonkProvingKey, PlonkVerifyingKey};
pub use system::PlonkSystem;
pub use verify::{verify, verify_bytes};

#[cfg(test)]
mod tests {
    use super::*;
    use gzkp_curves::bn254::{Bn254, Fr};
    use gzkp_ff::Field;
    use gzkp_gpu_sim::v100;
    use gzkp_msm::GzkpMsm;
    use gzkp_ntt::gpu::GzkpNtt;
    use gzkp_proof_system::Engines;
    use gzkp_telemetry::NoopSink;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn squares_circuit() -> PlonkCircuit<Fr> {
        // Public x₀ = 3; enforce xᵢ₊₁ = xᵢ² for a few rounds.
        let mut circuit = PlonkCircuit::new(&[Fr::from_u64(3)]);
        let mut cur = Fr::from_u64(3);
        let mut var = 1; // the public input's variable
        for _ in 0..6 {
            let next = cur * cur;
            let next_var = circuit.alloc(next);
            circuit.push_gate(PlonkGate {
                q_m: Fr::one(),
                q_o: -Fr::one(),
                a: var,
                b: var,
                c: next_var,
                ..PlonkGate::empty()
            });
            cur = next;
            var = next_var;
        }
        circuit
    }

    fn engines_for(dev: gzkp_gpu_sim::device::DeviceConfig) -> (GzkpNtt, GzkpMsm, GzkpMsm) {
        (
            GzkpNtt::auto::<Fr>(dev.clone()),
            GzkpMsm::new(dev.clone()),
            GzkpMsm::new(dev),
        )
    }

    #[test]
    fn prove_verify_round_trip() {
        let circuit = squares_circuit();
        let mut rng = StdRng::seed_from_u64(11);
        let (pk, vk) = setup::<Bn254, _>(&circuit, &mut rng).unwrap();
        let (ntt, msm_g1, msm_g2) = engines_for(v100());
        let engines = Engines::<Bn254> {
            ntt: &ntt,
            msm_g1: &msm_g1,
            msm_g2: &msm_g2,
        };
        let (proof, report) = prove(&circuit, &pk, &engines, 42, &NoopSink).unwrap();
        assert!(verify(&vk, circuit.public_inputs(), &proof));
        assert!(report.total_ms() > 0.0);

        // Serialization round-trips and verifies.
        let bytes = proof.to_bytes();
        assert_eq!(bytes.len(), PlonkProof::<Bn254>::encoded_len());
        assert!(verify_bytes(&vk, circuit.public_inputs(), &bytes));
    }

    #[test]
    fn wrong_public_input_rejected() {
        let circuit = squares_circuit();
        let mut rng = StdRng::seed_from_u64(12);
        let (pk, vk) = setup::<Bn254, _>(&circuit, &mut rng).unwrap();
        let (ntt, msm_g1, msm_g2) = engines_for(v100());
        let engines = Engines::<Bn254> {
            ntt: &ntt,
            msm_g1: &msm_g1,
            msm_g2: &msm_g2,
        };
        let (proof, _) = prove(&circuit, &pk, &engines, 1, &NoopSink).unwrap();
        assert!(!verify(&vk, &[Fr::from_u64(4)], &proof));
        assert!(!verify(&vk, &[], &proof));
    }

    #[test]
    fn tampered_proof_bytes_rejected() {
        let circuit = squares_circuit();
        let mut rng = StdRng::seed_from_u64(13);
        let (pk, vk) = setup::<Bn254, _>(&circuit, &mut rng).unwrap();
        let (ntt, msm_g1, msm_g2) = engines_for(v100());
        let engines = Engines::<Bn254> {
            ntt: &ntt,
            msm_g1: &msm_g1,
            msm_g2: &msm_g2,
        };
        let (bytes, _) = prove_bytes(&circuit, &pk, &engines, 7, &NoopSink).unwrap();
        // Flip one bit in each region (a point early on, a scalar at the
        // end): decoding either fails or the proof no longer verifies.
        for pos in [1, bytes.len() - 3] {
            let mut bad = bytes.clone();
            bad[pos] ^= 1;
            assert!(
                !verify_bytes(&vk, circuit.public_inputs(), &bad),
                "tampered byte {pos} must not verify"
            );
        }
        assert!(!verify_bytes(&vk, circuit.public_inputs(), &bytes[1..]));
    }

    #[test]
    fn checkpoint_resume_matches_monolithic() {
        let circuit = squares_circuit();
        let mut rng = StdRng::seed_from_u64(14);
        let (pk, vk) = setup::<Bn254, _>(&circuit, &mut rng).unwrap();
        let (ntt, msm_g1, msm_g2) = engines_for(v100());
        let engines = Engines::<Bn254> {
            ntt: &ntt,
            msm_g1: &msm_g1,
            msm_g2: &msm_g2,
        };
        let (expected, _) = prove_bytes(&circuit, &pk, &engines, 9, &NoopSink).unwrap();

        for interrupt_after in 0..=MSM_STEPS {
            let poly = prove_poly::<Bn254>(&circuit, &pk, &ntt, &NoopSink).unwrap();
            let mut ckpt = PlonkCheckpoint::from_poly(9, poly);
            for step in 0..interrupt_after {
                ckpt.run_step(&pk, &engines, step, &NoopSink).unwrap();
            }
            // Serialize mid-flight, "move hosts", resume on fresh engines.
            let bytes = ckpt.to_bytes();
            let mut resumed = PlonkCheckpoint::<Bn254>::from_bytes(&bytes).unwrap();
            assert_eq!(resumed.steps_done(), interrupt_after);
            assert_eq!(resumed.seed, 9);
            let (ntt2, g1b, g2b) = engines_for(v100());
            let engines2 = Engines::<Bn254> {
                ntt: &ntt2,
                msm_g1: &g1b,
                msm_g2: &g2b,
            };
            while let Some(step) = resumed.next_step() {
                resumed.run_step(&pk, &engines2, step, &NoopSink).unwrap();
            }
            let (proof, report) = resumed.finish().unwrap();
            assert_eq!(
                proof.to_bytes(),
                expected,
                "interrupted after {interrupt_after} plonk steps"
            );
            assert!(report.total_ms() > 0.0);
            assert!(verify(&vk, circuit.public_inputs(), &proof));
        }
    }

    #[test]
    fn corrupt_checkpoints_rejected() {
        let circuit = squares_circuit();
        let mut rng = StdRng::seed_from_u64(15);
        let (pk, _vk) = setup::<Bn254, _>(&circuit, &mut rng).unwrap();
        let (ntt, _, _) = engines_for(v100());
        let poly = prove_poly::<Bn254>(&circuit, &pk, &ntt, &NoopSink).unwrap();
        let bytes = PlonkCheckpoint::from_poly(0, poly).to_bytes();

        let err = PlonkCheckpoint::<gzkp_curves::bls12_381::Bls12_381>::from_bytes(&bytes)
            .err()
            .expect("wrong-curve decode must fail");
        assert!(err.contains("curve shape"), "{err}");

        assert!(PlonkCheckpoint::<Bn254>::from_bytes(&[]).is_err());
        assert!(PlonkCheckpoint::<Bn254>::from_bytes(b"GZKPPLKx").is_err());
        for cut in [8, 24, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                PlonkCheckpoint::<Bn254>::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(PlonkCheckpoint::<Bn254>::from_bytes(&trailing).is_err());
    }

    #[test]
    fn r1cs_migrated_circuit_proves() {
        use gzkp_groth16::r1cs::{ConstraintSystem, LinearCombination};
        let mut cs = ConstraintSystem::<Fr>::new();
        let out = cs.alloc_input(Fr::from_u64(45));
        let x = cs.alloc(Fr::from_u64(3));
        let y = cs.alloc(Fr::from_u64(9));
        cs.enforce(
            LinearCombination::from_var(x).add_term(gzkp_groth16::Variable::ONE, Fr::from_u64(2)),
            LinearCombination::from_var(y),
            LinearCombination::from_var(out),
        );
        let circuit = PlonkCircuit::from_r1cs(&cs);
        let mut rng = StdRng::seed_from_u64(16);
        let (pk, vk) = setup::<Bn254, _>(&circuit, &mut rng).unwrap();
        let (ntt, msm_g1, msm_g2) = engines_for(v100());
        let engines = Engines::<Bn254> {
            ntt: &ntt,
            msm_g1: &msm_g1,
            msm_g2: &msm_g2,
        };
        let (proof, _) = prove(&circuit, &pk, &engines, 3, &NoopSink).unwrap();
        assert!(verify(&vk, circuit.public_inputs(), &proof));
    }
}
