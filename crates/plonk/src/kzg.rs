//! KZG polynomial commitments over the workspace pairing curves.
//!
//! A trusted setup samples τ and publishes the powers-of-tau SRS
//! `{τ^i·G1}` plus `[1]₂, [τ]₂`. Committing to a polynomial is then one
//! MSM of its coefficients against the SRS — which this module runs
//! through the *existing* [`MsmEngine`] abstraction, so KZG commitments
//! get the same bucket-sorted Pippenger kernels, shard planner, cache,
//! and cross-device merging as the Groth16 query MSMs, and show up in
//! `zkprof render --timeline` identically.
//!
//! Openings use the standard witness polynomial
//! `q(X) = (p(X) − p(z)) / (X − z)` (synthetic division — exact because
//! `z` is a root of the numerator) and verify through the pairing check
//! `e(C + z·W − y·G1, G2) · e(−W, τ·G2) = 1`.

use gzkp_curves::pairing::{multi_pairing, Gt, PairingConfig};
use gzkp_curves::{batch_to_affine, Affine, CoordField, CurveParams, Projective};
use gzkp_ff::ext::{Fp12Config, Fp2Config, Fp6Config};
use gzkp_ff::{Field, PrimeField};
use gzkp_msm::{MsmEngine, MsmRun, ScalarVec};
use rand::Rng;

/// The powers-of-tau structured reference string, prover side plus the
/// two G2 elements the verifier needs.
pub struct KzgSrs<P: PairingConfig> {
    /// `τ^i · G1` for `i = 0..max_powers`.
    pub g1_powers: Vec<Affine<P::G1>>,
    /// The G2 generator (`[1]₂`).
    pub g2: Affine<P::G2>,
    /// `τ · G2`.
    pub tau_g2: Affine<P::G2>,
}

impl<P: PairingConfig> KzgSrs<P> {
    /// Runs the trusted setup: samples τ from `rng` and computes the
    /// powers. τ is dropped on return ("toxic waste").
    pub fn setup<R: Rng + ?Sized>(max_powers: usize, rng: &mut R) -> Self {
        let tau = P::Fr::random(rng);
        Self::setup_with_tau(tau, max_powers)
    }

    /// Setup from an explicit τ — used by the PLONK circuit setup, which
    /// also needs τ to commit to its selector/permutation polynomials
    /// cheaply (one scalar multiplication each) before discarding it.
    pub fn setup_with_tau(tau: P::Fr, max_powers: usize) -> Self {
        let g1 = Projective::<P::G1>::generator();
        let mut power = P::Fr::one();
        let mut powers = Vec::with_capacity(max_powers);
        for _ in 0..max_powers {
            powers.push(g1.mul(&power));
            power *= tau;
        }
        let g2 = Projective::<P::G2>::generator();
        Self {
            g1_powers: batch_to_affine(&powers),
            g2: g2.to_affine(),
            tau_g2: g2.mul(&tau).to_affine(),
        }
    }

    /// Highest polynomial degree the SRS can commit to.
    pub fn max_degree(&self) -> usize {
        self.g1_powers.len().saturating_sub(1)
    }

    /// The G1 generator (`τ⁰ · G1`).
    pub fn g1(&self) -> Affine<P::G1> {
        self.g1_powers[0]
    }

    /// Commits to `coeffs` (coefficient form, low degree first) as one
    /// MSM through `msm` — the engine decides windows, shards, and
    /// placement exactly as for a Groth16 query MSM.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` exceeds the SRS size.
    pub fn commit(&self, coeffs: &[P::Fr], msm: &dyn MsmEngine<P::G1>) -> MsmRun<P::G1> {
        assert!(
            coeffs.len() <= self.g1_powers.len(),
            "polynomial degree {} exceeds SRS degree {}",
            coeffs.len().saturating_sub(1),
            self.max_degree()
        );
        if coeffs.is_empty() {
            // An empty polynomial commits to the identity; synthesize a
            // zero-cost run rather than asking the engine for a 0-MSM.
            return MsmRun {
                result: Projective::identity(),
                report: gzkp_gpu_sim::StageReport::new("MSM"),
                stats: Default::default(),
            };
        }
        msm.msm(
            &self.g1_powers[..coeffs.len()],
            &ScalarVec::from_field(coeffs),
        )
    }
}

/// An opening of a committed polynomial at one point.
#[derive(Debug, Clone)]
pub struct KzgOpening<P: PairingConfig> {
    /// The claimed evaluation `p(z)`.
    pub value: P::Fr,
    /// Commitment to the witness polynomial `(p(X) − p(z))/(X − z)`.
    pub witness: Affine<P::G1>,
}

/// Evaluates `coeffs` at `point` (Horner).
pub fn evaluate_poly<F: Field>(coeffs: &[F], point: F) -> F {
    let mut acc = F::zero();
    for c in coeffs.iter().rev() {
        acc = acc * point + *c;
    }
    acc
}

/// Divides `p(X) − p(z)` by `(X − z)`: returns `(quotient, p(z))`. The
/// division is exact by construction (synthetic division at a root).
pub fn divide_at_point<F: Field>(coeffs: &[F], z: F) -> (Vec<F>, F) {
    if coeffs.is_empty() {
        return (Vec::new(), F::zero());
    }
    let mut quotient = vec![F::zero(); coeffs.len() - 1];
    let mut carry = F::zero();
    for (i, c) in coeffs.iter().enumerate().rev() {
        let next = *c + carry * z;
        if i == 0 {
            return (quotient, next);
        }
        quotient[i - 1] = next;
        carry = next;
    }
    unreachable!("loop returns at i == 0");
}

/// Opens `coeffs` at `point`: evaluates and commits the witness
/// polynomial through `msm`.
pub fn open<P: PairingConfig>(
    srs: &KzgSrs<P>,
    coeffs: &[P::Fr],
    point: P::Fr,
    msm: &dyn MsmEngine<P::G1>,
) -> KzgOpening<P> {
    let (quotient, value) = divide_at_point(coeffs, point);
    KzgOpening {
        value,
        witness: srs.commit(&quotient, msm).result.to_affine(),
    }
}

/// Verifies one opening: `e(C + z·W − y·G1, G2) · e(−W, τ·G2) = 1`.
pub fn verify<P: PairingConfig>(
    srs: &KzgSrs<P>,
    commitment: &Affine<P::G1>,
    point: P::Fr,
    opening: &KzgOpening<P>,
) -> bool
where
    <P::G1 as CurveParams>::Base: CoordField,
    <P::Fq12C as Fp12Config>::Fp6C: Fp6Config<Fp2C = P::Fq2C>,
    P::Fq2C: Fp2Config,
{
    let lhs = commitment
        .to_projective()
        .add(&opening.witness.mul(&point))
        .add(&srs.g1().mul(&opening.value).neg())
        .to_affine();
    multi_pairing::<P>(&[(lhs, srs.g2), (opening.witness.neg(), srs.tau_g2)]) == Gt::<P>::one()
}

/// One claim for [`batch_verify`]: (commitment, point, opening).
pub type KzgClaim<P> = (
    Affine<<P as PairingConfig>::G1>,
    <P as PairingConfig>::Fr,
    KzgOpening<P>,
);

/// Batch-verifies openings of several commitments at (possibly distinct)
/// points with one random linear combination — two pairings total
/// instead of two per opening. `rng` supplies the combination
/// coefficients; a cheating batch passes with probability ≤ |batch|/2¹²⁶.
pub fn batch_verify<P: PairingConfig, R: Rng + ?Sized>(
    srs: &KzgSrs<P>,
    claims: &[KzgClaim<P>],
    rng: &mut R,
) -> bool
where
    <P::G1 as CurveParams>::Base: CoordField,
    <P::Fq12C as Fp12Config>::Fp6C: Fp6Config<Fp2C = P::Fq2C>,
    P::Fq2C: Fp2Config,
{
    if claims.is_empty() {
        return true;
    }
    // Σ rᵢ·(Cᵢ + zᵢ·Wᵢ − yᵢ·G1) paired with G2, plus Σ rᵢ·Wᵢ paired with
    // −τ·G2, must cancel.
    let mut acc = Projective::<P::G1>::identity();
    let mut wit = Projective::<P::G1>::identity();
    for (commitment, point, opening) in claims {
        let r =
            P::Fr::from_limbs(&[rng.gen(), rng.gen::<u64>() >> 2, 0, 0][..P::Fr::NUM_LIMBS.min(4)])
                .unwrap_or_else(P::Fr::one);
        let term = commitment
            .to_projective()
            .add(&opening.witness.mul(point))
            .add(&srs.g1().mul(&opening.value).neg());
        acc = acc.add(&term.mul(&r));
        wit = wit.add(&opening.witness.mul(&r));
    }
    multi_pairing::<P>(&[
        (acc.to_affine(), srs.g2),
        (wit.to_affine().neg(), srs.tau_g2),
    ]) == Gt::<P>::one()
}
