//! Deterministic Fiat–Shamir transcript.
//!
//! The workspace has no external hash dependency (the build environment
//! is offline), so challenges are squeezed from a small deterministic
//! 64-bit mixing sponge over the absorbed bytes — the same splitmix-style
//! permutation the scalar engines use for test data. This is *not* a
//! cryptographic hash and the simulated system makes no soundness claim
//! from it; what matters here is the protocol shape (absorb commitments →
//! squeeze challenge, in a fixed order) and bit-for-bit determinism
//! across platforms, thread counts, and hosts, which the sponge provides
//! by construction (little-endian byte chunks, no floats, no
//! pointer-dependent state).

use gzkp_curves::serialize::{compress, CoordField};
use gzkp_curves::{Affine, CurveParams};
use gzkp_ff::PrimeField;

/// splitmix64's finalizer: the sponge's mixing permutation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A running Fiat–Shamir state. Every absorb folds the label and payload
/// into four 64-bit lanes; every challenge squeezes two lanes (under a
/// fresh label) into a 126-bit field element.
#[derive(Debug, Clone)]
pub struct Transcript {
    state: [u64; 4],
    counter: u64,
}

impl Transcript {
    /// Fresh transcript bound to a protocol label.
    pub fn new(label: &str) -> Self {
        let mut t = Self {
            state: [
                0x6a09_e667_f3bc_c908,
                0xbb67_ae85_84ca_a73b,
                0x3c6e_f372_fe94_f82b,
                0xa54f_f53a_5f1d_36f1,
            ],
            counter: 0,
        };
        t.absorb_bytes("protocol", label.as_bytes());
        t
    }

    /// Folds `bytes` (with its domain-separating `label`) into the state.
    pub fn absorb_bytes(&mut self, label: &str, bytes: &[u8]) {
        for (i, chunk) in label
            .as_bytes()
            .chunks(8)
            .chain(bytes.chunks(8))
            .enumerate()
        {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            let lane = i % 4;
            self.state[lane] =
                mix(self.state[lane] ^ u64::from_le_bytes(word).wrapping_add(self.counter));
            self.counter = self.counter.wrapping_add(1);
        }
        // Cross-lane diffusion so absorb order matters across lanes too.
        let folded = mix(self.state[0] ^ self.state[1] ^ self.state[2] ^ self.state[3]);
        self.state[0] ^= folded;
    }

    /// Absorbs a scalar field element via its canonical limbs.
    pub fn absorb_scalar<F: PrimeField>(&mut self, label: &str, value: &F) {
        let mut bytes = Vec::with_capacity(F::NUM_LIMBS * 8);
        for limb in value.to_limbs() {
            bytes.extend(limb.to_le_bytes());
        }
        self.absorb_bytes(label, &bytes);
    }

    /// Absorbs a curve point via its compressed encoding.
    pub fn absorb_point<C: CurveParams>(&mut self, label: &str, point: &Affine<C>)
    where
        C::Base: CoordField,
    {
        self.absorb_bytes(label, &compress(point));
    }

    /// Squeezes a challenge: a uniform-ish 126-bit field element, never
    /// zero (zero challenges would degenerate the permutation argument).
    pub fn challenge<F: PrimeField>(&mut self, label: &str) -> F {
        self.absorb_bytes(label, b"");
        let lo = mix(self.state[0].wrapping_add(self.counter));
        let hi = mix(self.state[1] ^ lo);
        self.counter = self.counter.wrapping_add(1);
        self.state[2] ^= lo;
        self.state[3] ^= hi;
        // 126 bits fits every workspace scalar field without reduction
        // bias concerns mattering for the simulation.
        let c = F::from_limbs(&[lo, hi >> 2, 0, 0][..F::NUM_LIMBS.min(4)]).unwrap_or_else(F::one);
        if c.is_zero() {
            F::one()
        } else {
            c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Transcript;
    use gzkp_curves::bn254::Fr;

    #[test]
    fn deterministic_and_order_sensitive() {
        let run = |order: &[&[u8]]| {
            let mut t = Transcript::new("test");
            for (i, bytes) in order.iter().enumerate() {
                t.absorb_bytes(if i == 0 { "x" } else { "y" }, bytes);
            }
            t.challenge::<Fr>("c")
        };
        assert_eq!(run(&[b"aa", b"bb"]), run(&[b"aa", b"bb"]));
        assert_ne!(run(&[b"aa", b"bb"]), run(&[b"bb", b"aa"]));
    }

    #[test]
    fn successive_challenges_differ() {
        let mut t = Transcript::new("test");
        t.absorb_bytes("seed", b"payload");
        let a = t.challenge::<Fr>("c");
        let b = t.challenge::<Fr>("c");
        assert_ne!(a, b);
    }
}
