//! The PLONK proof object and its portable byte encoding.

use gzkp_curves::pairing::PairingConfig;
use gzkp_curves::serialize::{compress, decompress, CoordField};
use gzkp_curves::{Affine, CurveParams};
use gzkp_ff::{Field, PrimeField};

/// The 13 polynomial evaluations at the opening point ζ (in batch
/// order), plus the permutation accumulator's evaluation at ζω.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlonkEvals<F: PrimeField> {
    /// `a(ζ)` — left wire.
    pub a: F,
    /// `b(ζ)` — right wire.
    pub b: F,
    /// `c(ζ)` — output wire.
    pub c: F,
    /// `z(ζ)` — permutation accumulator.
    pub z: F,
    /// `σ₁(ζ)`.
    pub s1: F,
    /// `σ₂(ζ)`.
    pub s2: F,
    /// `σ₃(ζ)`.
    pub s3: F,
    /// `q_L(ζ)`.
    pub q_l: F,
    /// `q_R(ζ)`.
    pub q_r: F,
    /// `q_O(ζ)`.
    pub q_o: F,
    /// `q_M(ζ)`.
    pub q_m: F,
    /// `q_C(ζ)`.
    pub q_c: F,
    /// `T(ζ)` where `T = t_lo + ζⁿ⁺²·t_mid + ζ²⁽ⁿ⁺²⁾·t_hi`.
    pub t: F,
    /// `z(ζω)` — the shifted opening.
    pub z_omega: F,
}

impl<F: PrimeField> PlonkEvals<F> {
    /// The evaluations in their canonical (batch/transcript) order, the
    /// shifted opening last.
    pub fn in_order(&self) -> [F; 14] {
        [
            self.a,
            self.b,
            self.c,
            self.z,
            self.s1,
            self.s2,
            self.s3,
            self.q_l,
            self.q_r,
            self.q_o,
            self.q_m,
            self.q_c,
            self.t,
            self.z_omega,
        ]
    }

    /// Rebuilds from the canonical order (inverse of
    /// [`PlonkEvals::in_order`]).
    pub fn from_order(v: [F; 14]) -> Self {
        Self {
            a: v[0],
            b: v[1],
            c: v[2],
            z: v[3],
            s1: v[4],
            s2: v[5],
            s3: v[6],
            q_l: v[7],
            q_r: v[8],
            q_o: v[9],
            q_m: v[10],
            q_c: v[11],
            t: v[12],
            z_omega: v[13],
        }
    }
}

/// A PLONK proof: nine G1 commitments plus fourteen scalars — constant
/// size regardless of circuit size, like the Groth16 proof it rides the
/// same service queues with.
#[derive(Debug, Clone)]
pub struct PlonkProof<P: PairingConfig> {
    /// Commitments to the three blinded wire polynomials.
    pub wire_comms: [Affine<P::G1>; 3],
    /// Commitment to the blinded permutation accumulator.
    pub z_comm: Affine<P::G1>,
    /// Commitments to the three quotient chunks.
    pub t_comms: [Affine<P::G1>; 3],
    /// KZG witness for the batched opening at ζ.
    pub w_z: Affine<P::G1>,
    /// KZG witness for the opening of `z` at ζω.
    pub w_zw: Affine<P::G1>,
    /// The claimed evaluations.
    pub evals: PlonkEvals<P::Fr>,
}

impl<P: PairingConfig> PartialEq for PlonkProof<P> {
    fn eq(&self, other: &Self) -> bool {
        self.wire_comms == other.wire_comms
            && self.z_comm == other.z_comm
            && self.t_comms == other.t_comms
            && self.w_z == other.w_z
            && self.w_zw == other.w_zw
            && self.evals == other.evals
    }
}
impl<P: PairingConfig> Eq for PlonkProof<P> {}

impl<P: PairingConfig> PlonkProof<P>
where
    <P::G1 as CurveParams>::Base: CoordField,
{
    /// The points in serialization order.
    fn points(&self) -> [Affine<P::G1>; 9] {
        [
            self.wire_comms[0],
            self.wire_comms[1],
            self.wire_comms[2],
            self.z_comm,
            self.t_comms[0],
            self.t_comms[1],
            self.t_comms[2],
            self.w_z,
            self.w_zw,
        ]
    }

    /// Serialized length for curve family `P`.
    pub fn encoded_len() -> usize {
        let point = <P::G1 as CurveParams>::Base::encoded_len() + 1;
        9 * point + 14 * P::Fr::NUM_LIMBS * 8
    }

    /// Serializes: nine compressed G1 points then fourteen little-endian
    /// limb-encoded scalars.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::encoded_len());
        for p in self.points() {
            out.extend(compress(&p));
        }
        for e in self.evals.in_order() {
            for limb in e.to_limbs() {
                out.extend(limb.to_le_bytes());
            }
        }
        out
    }

    /// Deserializes, validating length, every point (curve equation),
    /// and every scalar (canonical range).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() != Self::encoded_len() {
            return Err(format!(
                "plonk proof length {} != expected {}",
                bytes.len(),
                Self::encoded_len()
            ));
        }
        let point_len = <P::G1 as CurveParams>::Base::encoded_len() + 1;
        let mut points = [Affine::<P::G1>::identity(); 9];
        let mut pos = 0;
        for (i, slot) in points.iter_mut().enumerate() {
            *slot = decompress::<P::G1>(&bytes[pos..pos + point_len])
                .ok_or_else(|| format!("plonk proof point {i}: invalid encoding"))?;
            pos += point_len;
        }
        let mut evals = [P::Fr::zero(); 14];
        let per = P::Fr::NUM_LIMBS;
        for (i, slot) in evals.iter_mut().enumerate() {
            let limbs: Vec<u64> = bytes[pos..pos + per * 8]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            *slot = P::Fr::from_limbs(&limbs)
                .ok_or_else(|| format!("plonk proof eval {i}: non-canonical scalar"))?;
            pos += per * 8;
        }
        Ok(Self {
            wire_comms: [points[0], points[1], points[2]],
            z_comm: points[3],
            t_comms: [points[4], points[5], points[6]],
            w_z: points[7],
            w_zw: points[8],
            evals: PlonkEvals::from_order(evals),
        })
    }
}
