//! Radix-2 evaluation domains over NTT-friendly prime fields.
//!
//! A [`Radix2Domain`] bundles the primitive root of unity, its inverse, the
//! `1/N` scaling factor and the coset generator used by the Groth16 POLY
//! stage (the `H(x) = (A·B − C)/Z` division happens on a multiplicative
//! coset so `Z` never vanishes).

use gzkp_ff::PrimeField;

/// A power-of-two evaluation domain in a prime field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Radix2Domain<F: PrimeField> {
    /// Domain size `N = 2^log_n`.
    pub size: usize,
    /// `log2(N)`.
    pub log_n: u32,
    /// Primitive `N`-th root of unity ω.
    pub omega: F,
    /// `ω⁻¹`.
    pub omega_inv: F,
    /// `N⁻¹` (inverse-NTT scaling).
    pub size_inv: F,
    /// Multiplicative-coset generator `g` (the field's generator).
    pub coset_gen: F,
    /// `g⁻¹`.
    pub coset_gen_inv: F,
}

impl<F: PrimeField> Radix2Domain<F> {
    /// Creates a domain of the given size.
    ///
    /// Returns `None` if `size` is not a power of two or exceeds the field's
    /// two-adicity.
    pub fn new(size: usize) -> Option<Self> {
        if !size.is_power_of_two() || size == 0 {
            return None;
        }
        let log_n = size.trailing_zeros();
        let omega = F::root_of_unity(size as u64)?;
        let coset_gen = F::multiplicative_generator();
        Some(Self {
            size,
            log_n,
            omega,
            omega_inv: omega.inverse().expect("root nonzero"),
            size_inv: F::from_u64(size as u64).inverse().expect("N < p"),
            coset_gen,
            coset_gen_inv: coset_gen.inverse().expect("generator nonzero"),
        })
    }

    /// Smallest domain that can hold `n` values.
    pub fn at_least(n: usize) -> Option<Self> {
        Self::new(n.next_power_of_two())
    }

    /// Precomputes the half-size twiddle table `[ω⁰, ω¹, …, ω^{N/2−1}]`.
    ///
    /// Iteration `i` of the Cooley–Tukey loop uses `tw[j · N / 2^{i+1}]`,
    /// so one table serves every iteration — the layout GZKP's
    /// preprocessing stores once, without redundancy (§5.3).
    pub fn twiddles(&self) -> Vec<F> {
        Self::powers(self.omega, self.size / 2)
    }

    /// Twiddles for the inverse transform.
    pub fn inv_twiddles(&self) -> Vec<F> {
        Self::powers(self.omega_inv, self.size / 2)
    }

    /// `[base⁰, …, base^{n−1}]`.
    pub fn powers(base: F, n: usize) -> Vec<F> {
        let mut out = Vec::with_capacity(n);
        let mut acc = F::one();
        for _ in 0..n {
            out.push(acc);
            acc *= base;
        }
        out
    }

    /// Evaluates the vanishing polynomial `Z(x) = x^N − 1` at `x`.
    pub fn eval_vanishing(&self, x: F) -> F {
        x.pow(&[self.size as u64]) - F::one()
    }

    /// Scales a vector by successive coset-generator powers in place
    /// (entering the coset before a forward NTT).
    pub fn coset_scale(&self, data: &mut [F]) {
        let mut p = F::one();
        for v in data.iter_mut() {
            *v *= p;
            p *= self.coset_gen;
        }
    }

    /// Undoes [`Self::coset_scale`] (after an inverse NTT on the coset).
    pub fn coset_unscale(&self, data: &mut [F]) {
        let mut p = F::one();
        for v in data.iter_mut() {
            *v *= p;
            p *= self.coset_gen_inv;
        }
    }
}

/// In-place bit-reversal permutation (the standard pre-pass of the
/// iterative Cooley–Tukey schedule in Figure 2 of the paper).
pub fn bit_reverse_permute<T>(data: &mut [T]) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    let log_n = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits().wrapping_shr(64 - log_n) as usize;
        if j > i {
            data.swap(i, j);
        }
    }
}

/// Naive O(N²) DFT used as the ground-truth oracle in tests.
pub fn naive_dft<F: PrimeField>(coeffs: &[F], omega: F) -> Vec<F> {
    let n = coeffs.len();
    (0..n)
        .map(|k| {
            let wk = omega.pow(&[k as u64]);
            let mut acc = F::zero();
            let mut x = F::one();
            for c in coeffs {
                acc += *c * x;
                x *= wk;
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gzkp_ff::fields::Fr254;
    use gzkp_ff::Field;

    #[test]
    fn domain_creation() {
        let d = Radix2Domain::<Fr254>::new(1024).unwrap();
        assert_eq!(d.log_n, 10);
        assert_eq!(d.omega.pow(&[1024]), Fr254::one());
        assert_ne!(d.omega.pow(&[512]), Fr254::one());
        assert!(Radix2Domain::<Fr254>::new(1000).is_none());
        assert!(Radix2Domain::<Fr254>::new(1 << 40).is_none());
    }

    #[test]
    fn at_least_rounds_up() {
        let d = Radix2Domain::<Fr254>::at_least(1000).unwrap();
        assert_eq!(d.size, 1024);
    }

    #[test]
    fn twiddle_table_consistent() {
        let d = Radix2Domain::<Fr254>::new(64).unwrap();
        let tw = d.twiddles();
        assert_eq!(tw.len(), 32);
        assert_eq!(tw[0], Fr254::one());
        for j in 1..32 {
            assert_eq!(tw[j], tw[j - 1] * d.omega);
        }
    }

    #[test]
    fn bit_reverse_involution() {
        let mut v: Vec<u32> = (0..64).collect();
        let orig = v.clone();
        bit_reverse_permute(&mut v);
        assert_ne!(v, orig);
        bit_reverse_permute(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn coset_scale_roundtrip() {
        let d = Radix2Domain::<Fr254>::new(16).unwrap();
        let mut v: Vec<Fr254> = (1..17).map(Fr254::from_u64).collect();
        let orig = v.clone();
        d.coset_scale(&mut v);
        assert_ne!(v, orig);
        d.coset_unscale(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn vanishing_poly_zero_on_domain() {
        let d = Radix2Domain::<Fr254>::new(8).unwrap();
        for k in 0..8u64 {
            assert!(d.eval_vanishing(d.omega.pow(&[k])).is_zero());
        }
        assert!(!d.eval_vanishing(d.coset_gen).is_zero());
    }
}
