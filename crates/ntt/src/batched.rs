//! Batched NTT execution — the paper's §7 extension direction.
//!
//! ZKP wants the *latency* of one big NTT (all SMs on one transform);
//! homomorphic encryption wants *throughput* over many small independent
//! NTTs ("NTT batching"). §7 observes that GZKP's small-group task
//! granularity makes it suitable for the batched regime; this module
//! realizes that: `B` independent transforms are fused into one kernel
//! per iteration-batch, multiplying the grid size and keeping the device
//! saturated where a lone small NTT would leave most SMs idle.

use crate::batch::{batched_transform, fixed_batches};
use crate::cpu::Direction;
use crate::domain::Radix2Domain;
use crate::gpu::GzkpNtt;
use gzkp_ff::PrimeField;
use gzkp_gpu_sim::kernel::{simulate_kernel, KernelSpec, StageReport};

/// A throughput-oriented wrapper around [`GzkpNtt`] that executes many
/// independent same-size transforms as fused kernels.
#[derive(Debug, Clone)]
pub struct BatchedNtt {
    /// The underlying GZKP engine (device, backend, B/G configuration).
    pub engine: GzkpNtt,
}

impl BatchedNtt {
    /// Wraps an engine.
    pub fn new(engine: GzkpNtt) -> Self {
        Self { engine }
    }

    /// Functional transform of `count` independent vectors (all must have
    /// the domain's length), returning the fused-execution report.
    ///
    /// # Panics
    ///
    /// Panics if any vector length differs from the domain size.
    pub fn transform_many<F: PrimeField>(
        &self,
        domain: &Radix2Domain<F>,
        data: &mut [Vec<F>],
        dir: Direction,
    ) -> StageReport {
        let batches = fixed_batches(domain.log_n, self.engine.batch_iters);
        for v in data.iter_mut() {
            batched_transform(domain, v, dir, &batches);
        }
        self.cost::<F>(domain.log_n, data.len())
    }

    /// Fused-execution cost for `count` transforms of size `2^log_n`:
    /// the per-iteration-batch kernels of the single-NTT plan with their
    /// grids replicated `count`×, so one launch covers every transform.
    pub fn cost<F: PrimeField>(&self, log_n: u32, count: usize) -> StageReport {
        let dev = &self.engine.device;
        let mut out = StageReport::new(format!("ntt-batched-{count}x2^{log_n}"));
        for spec in self.kernel_specs::<F>(log_n) {
            let mut big = spec.clone();
            big.blocks = spec
                .blocks
                .iter()
                .cycle()
                .take(spec.blocks.len() * count.max(1))
                .copied()
                .collect();
            out.kernels.push(simulate_kernel(dev, &big));
        }
        out
    }

    /// The uniform per-batch kernel specs of a single transform (used by
    /// [`Self::cost`] to build the fused grids).
    fn kernel_specs<F: PrimeField>(&self, log_n: u32) -> Vec<KernelSpec> {
        // GzkpNtt's stage() is private; regenerate equivalent specs from
        // its public configuration. This mirrors gpu::GzkpNtt::stage and is
        // kept in sync by the `fused_consistent_with_single` test below.
        crate::gpu::gzkp_kernel_specs::<F>(&self.engine, log_n)
    }

    /// Transforms per second at the fused-execution rate.
    pub fn throughput_per_sec<F: PrimeField>(&self, log_n: u32, count: usize) -> f64 {
        let t_ns = self.cost::<F>(log_n, count).total_ns();
        count as f64 / (t_ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuNtt;
    use crate::gpu::GpuNttEngine;
    use gzkp_ff::fields::Fr254;
    use gzkp_ff::Field;
    use gzkp_gpu_sim::v100;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn functional_matches_single() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Radix2Domain::<Fr254>::new(256).unwrap();
        let mut data: Vec<Vec<Fr254>> = (0..4)
            .map(|_| (0..256).map(|_| Fr254::random(&mut rng)).collect())
            .collect();
        let expect: Vec<Vec<Fr254>> = data
            .iter()
            .map(|v| {
                let mut w = v.clone();
                CpuNtt::reference().transform(&d, &mut w, Direction::Forward);
                w
            })
            .collect();
        let b = BatchedNtt::new(GzkpNtt::auto::<Fr254>(v100()));
        b.transform_many(&d, &mut data, Direction::Forward);
        assert_eq!(data, expect);
    }

    #[test]
    fn fused_consistent_with_single() {
        // count = 1 must cost (nearly) the same as the plain engine.
        let e = GzkpNtt::auto::<Fr254>(v100());
        let single = GpuNttEngine::<Fr254>::cost(&e, 16).total_ns();
        let fused = BatchedNtt::new(e).cost::<Fr254>(16, 1).total_ns();
        let ratio = fused / single;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn batching_improves_small_ntt_throughput() {
        // §7: small NTTs underutilize the GPU; fusing 64 of them must be
        // far cheaper than 64 sequential launches.
        let e = GzkpNtt::auto::<Fr254>(v100());
        let single = GpuNttEngine::<Fr254>::cost(&e, 12).total_ns();
        let b = BatchedNtt::new(e);
        let fused64 = b.cost::<Fr254>(12, 64).total_ns();
        assert!(
            fused64 < 64.0 * single * 0.5,
            "fused {fused64} vs 64x single {}",
            64.0 * single
        );
        // Throughput grows with batch size until saturation.
        let t1 = b.throughput_per_sec::<Fr254>(12, 1);
        let t64 = b.throughput_per_sec::<Fr254>(12, 64);
        assert!(t64 > 4.0 * t1, "t1 {t1} vs t64 {t64}");
    }
}
