//! CPU NTT engines — the paper's "Best-CPU" baselines and the workspace's
//! functional reference.
//!
//! Two modes model the two CPU systems the paper compares against:
//!
//! * **Precomputed twiddles** (bellman-like): one table of `N/2` roots,
//!   classic iterative Cooley–Tukey. Scales as `N log N`.
//! * **Recomputed twiddles** (libsnark-like): the per-butterfly `ω^j`
//!   recomputation the paper identifies as libsnark's redundant work
//!   ("GZKP avoids this cost by preprocessing … libsnark fails to scale
//!   linearly", §5.3). Each butterfly pays an extra multiplication chain.

use crate::domain::{bit_reverse_permute, Radix2Domain};
use gzkp_ff::PrimeField;
use rayon::prelude::*;

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Coefficients → evaluations.
    Forward,
    /// Evaluations → coefficients (includes the `1/N` scaling).
    Inverse,
}

/// Twiddle-factor strategy of the CPU engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwiddleMode {
    /// Single precomputed table of `N/2` roots (bellman-like; also the
    /// strategy GZKP's GPU preprocessing uses).
    Precomputed,
    /// Recompute `ω^j` by a running product per (iteration, sub-block) —
    /// the libsnark behaviour whose cost the paper calls out.
    Recompute,
}

/// The CPU NTT engine.
#[derive(Debug, Clone, Copy)]
pub struct CpuNtt {
    /// Twiddle strategy.
    pub mode: TwiddleMode,
    /// Use all cores via rayon (the paper's CPU baselines are parallel).
    pub parallel: bool,
}

impl Default for CpuNtt {
    fn default() -> Self {
        Self {
            mode: TwiddleMode::Precomputed,
            parallel: false,
        }
    }
}

impl CpuNtt {
    /// Reference sequential engine with precomputed twiddles.
    pub fn reference() -> Self {
        Self::default()
    }

    /// libsnark-like configuration (recomputed twiddles, parallel).
    pub fn libsnark_like() -> Self {
        Self {
            mode: TwiddleMode::Recompute,
            parallel: true,
        }
    }

    /// In-place NTT over the domain.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != domain.size`.
    pub fn transform<F: PrimeField>(
        &self,
        domain: &Radix2Domain<F>,
        data: &mut [F],
        dir: Direction,
    ) {
        assert_eq!(data.len(), domain.size, "data length must match domain");
        let n = data.len();
        if n == 1 {
            return;
        }
        bit_reverse_permute(data);
        match self.mode {
            TwiddleMode::Precomputed => {
                let tw = match dir {
                    Direction::Forward => domain.twiddles(),
                    Direction::Inverse => domain.inv_twiddles(),
                };
                self.iterations_precomputed(data, &tw);
            }
            TwiddleMode::Recompute => {
                let omega = match dir {
                    Direction::Forward => domain.omega,
                    Direction::Inverse => domain.omega_inv,
                };
                self.iterations_recompute(data, omega);
            }
        }
        if dir == Direction::Inverse {
            let s = domain.size_inv;
            if self.parallel {
                data.par_iter_mut().for_each(|v| *v *= s);
            } else {
                for v in data.iter_mut() {
                    *v *= s;
                }
            }
        }
    }

    /// Forward NTT on a multiplicative coset.
    pub fn coset_forward<F: PrimeField>(&self, domain: &Radix2Domain<F>, data: &mut [F]) {
        domain.coset_scale(data);
        self.transform(domain, data, Direction::Forward);
    }

    /// Inverse NTT from a multiplicative coset.
    pub fn coset_inverse<F: PrimeField>(&self, domain: &Radix2Domain<F>, data: &mut [F]) {
        self.transform(domain, data, Direction::Inverse);
        domain.coset_unscale(data);
    }

    fn iterations_precomputed<F: PrimeField>(&self, data: &mut [F], tw: &[F]) {
        let n = data.len();
        let log_n = n.trailing_zeros();
        for i in 0..log_n {
            let half = 1usize << i; // butterfly distance
            let step = n / (2 * half); // twiddle index stride
            let chunk = 2 * half;
            let work = |block: &mut [F]| {
                for j in 0..half {
                    let w = tw[j * step];
                    let t = block[j + half] * w;
                    block[j + half] = block[j] - t;
                    block[j] += t;
                }
            };
            if self.parallel && n >= 1 << 14 {
                data.par_chunks_mut(chunk).for_each(work);
            } else {
                data.chunks_mut(chunk).for_each(work);
            }
        }
    }

    fn iterations_recompute<F: PrimeField>(&self, data: &mut [F], omega: F) {
        let n = data.len();
        let log_n = n.trailing_zeros();
        for i in 0..log_n {
            let half = 1usize << i;
            // ω for this iteration: primitive 2^{i+1}-th root.
            let w_len = omega.pow(&[(n / (2 * half)) as u64]);
            let chunk = 2 * half;
            let work = |block: &mut [F]| {
                // libsnark-style: running product recomputed per sub-block.
                let mut w = F::one();
                for j in 0..half {
                    let t = block[j + half] * w;
                    block[j + half] = block[j] - t;
                    block[j] += t;
                    w *= w_len;
                }
            };
            if self.parallel && n >= 1 << 14 {
                data.par_chunks_mut(chunk).for_each(work);
            } else {
                data.chunks_mut(chunk).for_each(work);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::naive_dft;
    use gzkp_ff::fields::{Fr254, Fr381, Fr753};
    use gzkp_ff::Field;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_vec<F: PrimeField>(n: usize, seed: u64) -> Vec<F> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| F::random(&mut rng)).collect()
    }

    #[test]
    fn matches_naive_dft() {
        let d = Radix2Domain::<Fr254>::new(32).unwrap();
        let coeffs = random_vec::<Fr254>(32, 1);
        let expect = naive_dft(&coeffs, d.omega);
        let mut got = coeffs.clone();
        CpuNtt::reference().transform(&d, &mut got, Direction::Forward);
        assert_eq!(got, expect);
    }

    #[test]
    fn recompute_mode_matches_precomputed() {
        let d = Radix2Domain::<Fr254>::new(256).unwrap();
        let coeffs = random_vec::<Fr254>(256, 2);
        let mut a = coeffs.clone();
        let mut b = coeffs;
        CpuNtt {
            mode: TwiddleMode::Precomputed,
            parallel: false,
        }
        .transform(&d, &mut a, Direction::Forward);
        CpuNtt {
            mode: TwiddleMode::Recompute,
            parallel: false,
        }
        .transform(&d, &mut b, Direction::Forward);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_sequential() {
        let d = Radix2Domain::<Fr254>::new(1 << 14).unwrap();
        let coeffs = random_vec::<Fr254>(1 << 14, 3);
        let mut a = coeffs.clone();
        let mut b = coeffs;
        CpuNtt {
            mode: TwiddleMode::Precomputed,
            parallel: false,
        }
        .transform(&d, &mut a, Direction::Forward);
        CpuNtt {
            mode: TwiddleMode::Precomputed,
            parallel: true,
        }
        .transform(&d, &mut b, Direction::Forward);
        assert_eq!(a, b);
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for size in [2usize, 8, 64, 1024] {
            let d = Radix2Domain::<Fr381>::new(size).unwrap();
            let coeffs = random_vec::<Fr381>(size, size as u64);
            let mut v = coeffs.clone();
            let ntt = CpuNtt::reference();
            ntt.transform(&d, &mut v, Direction::Forward);
            ntt.transform(&d, &mut v, Direction::Inverse);
            assert_eq!(v, coeffs);
        }
    }

    #[test]
    fn roundtrip_753_bit_field() {
        let d = Radix2Domain::<Fr753>::new(128).unwrap();
        let coeffs = random_vec::<Fr753>(128, 9);
        let mut v = coeffs.clone();
        let ntt = CpuNtt::reference();
        ntt.transform(&d, &mut v, Direction::Forward);
        ntt.transform(&d, &mut v, Direction::Inverse);
        assert_eq!(v, coeffs);
    }

    #[test]
    fn coset_roundtrip() {
        let d = Radix2Domain::<Fr254>::new(64).unwrap();
        let coeffs = random_vec::<Fr254>(64, 4);
        let mut v = coeffs.clone();
        let ntt = CpuNtt::reference();
        ntt.coset_forward(&d, &mut v);
        ntt.coset_inverse(&d, &mut v);
        assert_eq!(v, coeffs);
    }

    #[test]
    fn coset_evaluations_avoid_vanishing_zeros() {
        // Z(x) = x^N - 1 vanishes on the domain but not on the coset, so
        // coset evaluations of Z must all be nonzero (the property Groth16's
        // division step relies on).
        let d = Radix2Domain::<Fr254>::new(16).unwrap();
        // Z has coefficients [-1, 0, ..., 0, 1] of degree N => use 2N domain.
        let d2 = Radix2Domain::<Fr254>::new(32).unwrap();
        let mut z = vec![Fr254::zero(); 32];
        z[0] = -Fr254::one();
        z[16] = Fr254::one();
        CpuNtt::reference().coset_forward(&d2, &mut z);
        assert!(z.iter().all(|v| !v.is_zero()));
        let _ = d;
    }

    #[test]
    fn convolution_theorem() {
        // NTT(a) ∘ NTT(b) == NTT(a * b) for polynomial product a*b.
        let d = Radix2Domain::<Fr254>::new(16).unwrap();
        let a = random_vec::<Fr254>(8, 5);
        let b = random_vec::<Fr254>(8, 6);
        // Naive product (degree < 15 fits in 16).
        let mut prod = vec![Fr254::zero(); 16];
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                prod[i + j] += ai * bj;
            }
        }
        let ntt = CpuNtt::reference();
        let mut ea = a.clone();
        ea.resize(16, Fr254::zero());
        let mut eb = b.clone();
        eb.resize(16, Fr254::zero());
        ntt.transform(&d, &mut ea, Direction::Forward);
        ntt.transform(&d, &mut eb, Direction::Forward);
        let mut ep: Vec<Fr254> = ea.iter().zip(&eb).map(|(x, y)| *x * *y).collect();
        ntt.transform(&d, &mut ep, Direction::Inverse);
        assert_eq!(ep, prod);
    }
}
