//! # gzkp-ntt — the POLY stage
//!
//! Number-theoretic transforms over the paper's scalar fields, in three
//! engine families (all bit-identical, cross-validated):
//!
//! * [`cpu::CpuNtt`] — sequential/parallel CPU reference with precomputed
//!   or per-butterfly-recomputed twiddles (the "Best-CPU" baselines);
//! * [`gpu::BaselineGpuNtt`] — the shuffle-based GPU baseline
//!   (bellperson-like, "BG" in Figure 8);
//! * [`gpu::GzkpNtt`] — the paper's §3 shuffle-less, cache-friendly design
//!   with internal shuffling and flexible block assignment.
//!
//! GPU engines return [`gzkp_gpu_sim::StageReport`]s with simulated times
//! (see DESIGN.md for the hardware substitution).
//!
//! ## Example
//!
//! ```
//! use gzkp_ntt::domain::Radix2Domain;
//! use gzkp_ntt::cpu::{CpuNtt, Direction};
//! use gzkp_ff::fields::Fr254;
//! use gzkp_ff::Field;
//!
//! let domain = Radix2Domain::<Fr254>::new(8).unwrap();
//! let mut data: Vec<Fr254> = (0..8).map(Fr254::from_u64).collect();
//! let original = data.clone();
//! let ntt = CpuNtt::reference();
//! ntt.transform(&domain, &mut data, Direction::Forward);
//! ntt.transform(&domain, &mut data, Direction::Inverse);
//! assert_eq!(data, original);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod batched;
pub mod cpu;
pub mod domain;
pub mod gpu;

pub use batched::BatchedNtt;
pub use cpu::{CpuNtt, Direction, TwiddleMode};
pub use domain::Radix2Domain;
pub use gpu::{BaselineGpuNtt, GpuNttEngine, GzkpNtt};
