//! Shared batched-iteration machinery for the GPU NTT engines.
//!
//! Both GPU engines execute the Cooley–Tukey iterations in *batches* of `B`
//! consecutive iterations (§2.2): a batch starting at iteration `s`
//! decomposes into `N/2^B` independent groups, each owning the `2^B`
//! elements `{h·2^{s+B} + j·2^s + l : j = 0..2^B}` (stride `2^s`). The
//! engines differ only in how groups are mapped to blocks and how the data
//! reaches shared memory; the butterfly math here is common — which is also
//! what guarantees both engines are bit-identical to the CPU reference.

use crate::cpu::Direction;
use crate::domain::{bit_reverse_permute, Radix2Domain};
use gzkp_ff::PrimeField;
use rayon::prelude::*;

/// Transforms below this size run single-threaded: the butterfly work of
/// a tiny batch would not cover the fork/join overhead.
const PAR_MIN_LEN: usize = 1 << 12;

/// One batch of iterations: `[start, start + iters)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Batch {
    /// First iteration index (also `log2` of the element stride).
    pub start: u32,
    /// Number of iterations fused in this batch.
    pub iters: u32,
}

impl Batch {
    /// Elements per independent group.
    pub fn group_size(&self) -> usize {
        1 << self.iters
    }

    /// Number of independent groups at scale `n`.
    pub fn num_groups(&self, n: usize) -> usize {
        n >> self.iters
    }

    /// Element stride inside a group.
    pub fn stride(&self) -> usize {
        1 << self.start
    }
}

/// Splits `log_n` iterations into batches of at most `max_iters`.
///
/// This mirrors the fixed grouping of the baseline (bellperson groups every
/// 8 iterations; the remainder forms a short final batch — the source of
/// its tiny-block pathology at awkward scales, §5.3).
pub fn fixed_batches(log_n: u32, max_iters: u32) -> Vec<Batch> {
    let mut out = Vec::new();
    let mut s = 0;
    while s < log_n {
        let iters = max_iters.min(log_n - s);
        out.push(Batch { start: s, iters });
        s += iters;
    }
    out
}

/// Processes every group of one batch functionally (gather → local
/// butterflies → scatter). `tw` is the half-size twiddle table.
///
/// The `outer`-element blocks are the batch's independent groups
/// (§2.2's shuffle-less decomposition): no butterfly crosses a block
/// boundary and the twiddle index depends only on the intra-block
/// position, so large batches fan the blocks out across cores. Each
/// block runs the identical math either way — bit-identical results at
/// any thread count.
pub fn process_batch<F: PrimeField>(data: &mut [F], tw: &[F], batch: Batch) {
    let n = data.len();
    let outer = 1usize << (batch.start + batch.iters); // group period
    if n >= PAR_MIN_LEN && n > outer {
        data.par_chunks_mut(outer)
            .for_each(|block| process_block(block, tw, n, batch));
    } else {
        for block in data.chunks_mut(outer) {
            process_block(block, tw, n, batch);
        }
    }
}

/// One group period of [`process_batch`]: gathers each strided group of
/// the block, applies the fused butterflies, scatters back.
fn process_block<F: PrimeField>(block: &mut [F], tw: &[F], n: usize, batch: Batch) {
    let stride = batch.stride();
    let mut buf = vec![F::zero(); batch.group_size()];
    for l in 0..stride {
        for (j, slot) in buf.iter_mut().enumerate() {
            *slot = block[j * stride + l];
        }
        group_butterflies(&mut buf, tw, n, batch.start, batch.iters, l);
        for (j, slot) in buf.iter().enumerate() {
            block[j * stride + l] = *slot;
        }
    }
}

/// Applies `iters` butterfly iterations to one group's local buffer.
///
/// For global iteration `i = start + ii`, the butterfly pairing local
/// indices `j` and `j + 2^ii` uses twiddle `ω^{((jj·2^start) + l)·N/2^{i+1}}`
/// where `jj = j mod 2^ii`.
pub fn group_butterflies<F: PrimeField>(
    buf: &mut [F],
    tw: &[F],
    n: usize,
    start: u32,
    iters: u32,
    l: usize,
) {
    for ii in 0..iters {
        let half = 1usize << ii;
        let i = start + ii;
        let tw_stride = n >> (i + 1);
        for chunk in (0..buf.len()).step_by(2 * half) {
            for jj in 0..half {
                let j = chunk + jj;
                let tw_idx = ((jj << start) + l) * tw_stride;
                let w = tw[tw_idx];
                let t = buf[j + half] * w;
                buf[j + half] = buf[j] - t;
                buf[j] += t;
            }
        }
    }
}

/// Full functional transform through the batch pipeline; used by both GPU
/// engines (their cost models differ, the math does not).
pub fn batched_transform<F: PrimeField>(
    domain: &Radix2Domain<F>,
    data: &mut [F],
    dir: Direction,
    batches: &[Batch],
) {
    assert_eq!(data.len(), domain.size);
    if data.len() == 1 {
        return;
    }
    bit_reverse_permute(data);
    let tw = match dir {
        Direction::Forward => domain.twiddles(),
        Direction::Inverse => domain.inv_twiddles(),
    };
    for b in batches {
        process_batch(data, &tw, *b);
    }
    if dir == Direction::Inverse {
        let s = domain.size_inv;
        if data.len() >= PAR_MIN_LEN {
            data.par_chunks_mut(PAR_MIN_LEN).for_each(|chunk| {
                for v in chunk {
                    *v *= s;
                }
            });
        } else {
            for v in data.iter_mut() {
                *v *= s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuNtt;
    use gzkp_ff::fields::Fr254;
    use gzkp_ff::Field;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_batch_structure() {
        let b = fixed_batches(20, 8);
        assert_eq!(b.len(), 3);
        assert_eq!(b[0], Batch { start: 0, iters: 8 });
        assert_eq!(b[1], Batch { start: 8, iters: 8 });
        assert_eq!(
            b[2],
            Batch {
                start: 16,
                iters: 4
            }
        );
        let b18 = fixed_batches(18, 8);
        assert_eq!(
            b18[2],
            Batch {
                start: 16,
                iters: 2
            }
        ); // the 2-thread case
    }

    #[test]
    fn batched_matches_cpu_various_batchings() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Radix2Domain::<Fr254>::new(1 << 10).unwrap();
        let coeffs: Vec<Fr254> = (0..d.size).map(|_| Fr254::random(&mut rng)).collect();
        let mut expect = coeffs.clone();
        CpuNtt::reference().transform(&d, &mut expect, Direction::Forward);
        for max_iters in [1u32, 2, 3, 5, 8, 10] {
            let mut got = coeffs.clone();
            let batches = fixed_batches(d.log_n, max_iters);
            batched_transform(&d, &mut got, Direction::Forward, &batches);
            assert_eq!(got, expect, "batching with max_iters={max_iters}");
        }
    }

    #[test]
    fn batched_inverse_roundtrip() {
        let mut rng = StdRng::seed_from_u64(8);
        let d = Radix2Domain::<Fr254>::new(256).unwrap();
        let coeffs: Vec<Fr254> = (0..256).map(|_| Fr254::random(&mut rng)).collect();
        let mut v = coeffs.clone();
        let batches = fixed_batches(8, 3);
        batched_transform(&d, &mut v, Direction::Forward, &batches);
        batched_transform(&d, &mut v, Direction::Inverse, &batches);
        assert_eq!(v, coeffs);
    }
}
