//! GPU NTT engines on the simulator: the shuffle-based baseline
//! (bellperson-like, "BG" in Figure 8) and GZKP's shuffle-less design (§3).
//!
//! Both engines compute bit-identical results through the shared batch
//! machinery in [`crate::batch`]; what differs — and what the simulator
//! prices — is the execution structure:
//!
//! | | baseline (BG) | GZKP |
//! |---|---|---|
//! | batching | fixed 8 iterations | configurable `B` (default 6) |
//! | groups per block | 1 | `G ≥ 4` (shared-memory limited) |
//! | between batches | global-memory shuffle kernel | nothing (stable layout) |
//! | strided loads | avoided via shuffle | turned into coalesced chunk loads by the internal shuffle |
//! | awkward last batch | `2^{N−rem}` blocks of `2^{rem−1}` threads | `G` grows so blocks stay saturated |

use crate::batch::{batched_transform, fixed_batches, Batch};
use crate::cpu::Direction;
use crate::domain::Radix2Domain;
use gzkp_ff::PrimeField;
use gzkp_gpu_sim::device::{field_add_macs, field_mul_macs, Backend, DeviceConfig};
use gzkp_gpu_sim::kernel::{BlockCost, KernelSpec, StageReport};
use gzkp_gpu_sim::memory::strided_phase_sectors;
use gzkp_telemetry::{counters as telemetry_counters, emit_stage, TelemetrySink};

/// Host-side synchronization cost the baseline pays per kernel: bellperson
/// drives each shuffle/butterfly batch from the host with a device sync in
/// between. Calibration anchor: Table 5's bellperson floor (~0.37 ms at
/// 2^14 across 3 kernels).
pub const BASELINE_HOST_SYNC_NS: f64 = 100_000.0;

/// Common interface of the simulated GPU NTT engines.
pub trait GpuNttEngine<F: PrimeField>: Send + Sync {
    /// Engine label for reports.
    fn name(&self) -> String;

    /// Functional in-place transform, returning the simulated execution
    /// report for the configured device.
    fn transform(&self, domain: &Radix2Domain<F>, data: &mut [F], dir: Direction) -> StageReport;

    /// Analytic cost for an `2^log_n` transform without touching data
    /// (large-scale sweeps; identical cost model as [`Self::transform`]).
    fn cost(&self, log_n: u32) -> StageReport;

    /// [`Self::transform`] plus telemetry: kernels, rolled-up MAC/DRAM
    /// counters, and the butterfly field-multiplication count flow into
    /// `sink`. With a disabled sink (`gzkp_telemetry::NoopSink`) this is
    /// one branch on top of `transform`.
    fn transform_traced(
        &self,
        domain: &Radix2Domain<F>,
        data: &mut [F],
        dir: Direction,
        sink: &dyn TelemetrySink,
    ) -> StageReport {
        let report = self.transform(domain, data, dir);
        if sink.enabled() {
            emit_stage(sink, &report);
            // Each of the log N iterations performs N/2 butterflies of one
            // field multiplication.
            let muls = domain.log_n as f64 * (domain.size as f64) / 2.0;
            sink.counter(telemetry_counters::NTT_FIELD_MULS, muls);
        }
        report
    }
}

/// Words (64-bit limbs) per element for field `F`.
fn limbs<F: PrimeField>() -> usize {
    F::NUM_LIMBS
}

/// DRAM sectors to read OR write `n` elements of `m` limbs, fully coalesced.
fn elem_sectors(n: usize, m: usize, dev: &DeviceConfig) -> u64 {
    ((n * m * 8) as u64).div_ceil(dev.sector_bytes)
}

/// Twiddle-table DRAM traffic for a batch: each iteration `i` touches
/// `2^i` distinct values (≤ N/2 total); re-reads hit L2, so we charge each
/// distinct value once per batch (first touch), bounded by table size.
fn twiddle_sectors(batch: Batch, n: usize, m: usize, dev: &DeviceConfig) -> u64 {
    let distinct: usize = (0..batch.iters)
        .map(|ii| (1usize << (batch.start + ii)).min(n / 2))
        .sum();
    elem_sectors(distinct.min(n / 2), m, dev)
}

/// MAC cost of the butterflies of one batch over the whole vector:
/// `iters · N/2` butterflies of 1 mul + 2 adds.
fn batch_macs(batch: Batch, n: usize, m: usize) -> f64 {
    let butterflies = batch.iters as f64 * (n as f64) / 2.0;
    butterflies * (field_mul_macs(m) + 2.0 * field_add_macs(m))
}

// ---------------------------------------------------------------------------
// Baseline engine (bellperson-like)
// ---------------------------------------------------------------------------

/// The shuffle-based GPU baseline: between batches it physically reorders
/// the vector in global memory so every batch reads contiguously; each
/// independent group maps to its own block.
#[derive(Debug, Clone)]
pub struct BaselineGpuNtt {
    /// Device preset to simulate on.
    pub device: DeviceConfig,
    /// Finite-field backend (Integer = stock bellperson; FpLib = the
    /// "BG w. lib" ablation of Fig. 8).
    pub backend: Backend,
    /// Iterations fused per batch (bellperson uses 8).
    pub batch_iters: u32,
}

impl BaselineGpuNtt {
    /// Stock configuration on the given device.
    pub fn new(device: DeviceConfig) -> Self {
        Self {
            device,
            backend: Backend::Integer,
            batch_iters: 8,
        }
    }

    /// Enables the optimized finite-field library ("BG w. lib").
    pub fn with_lib(mut self) -> Self {
        self.backend = Backend::FpLib;
        self
    }

    fn stage(&self, log_n: u32, m: usize) -> StageReport {
        let n = 1usize << log_n;
        let dev = &self.device;
        let mut stage = StageReport::new(format!("ntt-baseline-2^{log_n}"));
        let batches = fixed_batches(log_n, self.batch_iters);
        for (bi, batch) in batches.iter().enumerate() {
            if bi > 0 {
                // Global-memory shuffle: contiguous read, strided scatter
                // write whose per-warp coalescing degrades with the batch
                // stride (this is the 42%–81% per-batch overhead of §2.2).
                let read = elem_sectors(n, m, dev);
                let write = strided_phase_sectors(
                    (n * m) as u64,
                    8,
                    (batch.stride() as u64).min(64),
                    dev.warp_size as u64,
                    dev.sector_bytes,
                );
                let threads = 256u32;
                let blocks = (n / threads as usize).max(1);
                let per_block = BlockCost {
                    mac_ops: 0.0,
                    dram_sectors: (read + write) / blocks as u64,
                    shared_bytes: 0,
                };
                stage.run(
                    dev,
                    &KernelSpec::uniform(
                        format!("shuffle.{bi}"),
                        threads,
                        0,
                        self.backend,
                        m,
                        blocks,
                        per_block,
                    ),
                );
            }
            // Butterfly kernel: one group per block (bellperson's mapping).
            let gsize = batch.group_size();
            let blocks = batch.num_groups(n);
            let threads = (gsize / 2).max(1) as u32;
            let shared = (gsize * m * 8) as u64;
            let macs = batch_macs(*batch, n, m) / blocks as f64;
            let io = 2 * elem_sectors(gsize, m, dev); // post-shuffle: contiguous
            let tw = twiddle_sectors(*batch, n, m, dev) / blocks as u64;
            let per_block = BlockCost {
                mac_ops: macs,
                dram_sectors: io + tw,
                shared_bytes: 2 * (gsize * m * 8) as u64,
            };
            stage.run(
                dev,
                &KernelSpec::uniform(
                    format!("butterfly.{bi}(s={},B={})", batch.start, batch.iters),
                    threads,
                    shared,
                    self.backend,
                    m,
                    blocks,
                    per_block,
                ),
            );
        }
        let kernels = stage.kernels.len() as f64;
        stage.add_fixed("host-sync", kernels * BASELINE_HOST_SYNC_NS);
        stage
    }
}

impl<F: PrimeField> GpuNttEngine<F> for BaselineGpuNtt {
    fn name(&self) -> String {
        match self.backend {
            Backend::Integer => "BG".into(),
            Backend::FpLib => "BG w. lib".into(),
        }
    }

    fn transform(&self, domain: &Radix2Domain<F>, data: &mut [F], dir: Direction) -> StageReport {
        let batches = fixed_batches(domain.log_n, self.batch_iters);
        batched_transform(domain, data, dir, &batches);
        self.stage(domain.log_n, limbs::<F>())
    }

    fn cost(&self, log_n: u32) -> StageReport {
        self.stage(log_n, limbs::<F>())
    }
}

// ---------------------------------------------------------------------------
// GZKP engine (§3)
// ---------------------------------------------------------------------------

/// GZKP's shuffle-less NTT: the global layout never changes; each block
/// takes `G` small independent groups whose union forms `2^B` contiguous
/// length-`G` chunks, loads them coalesced, and performs the stride
/// permutation *internally* while staging into shared memory.
#[derive(Debug, Clone)]
pub struct GzkpNtt {
    /// Device preset to simulate on.
    pub device: DeviceConfig,
    /// Finite-field backend (FpLib is GZKP's own library; Integer is the
    /// "GZKP-no-GM-shuffle" ablation when combined with `groups = 1`).
    pub backend: Backend,
    /// Iterations fused per batch (`B`).
    pub batch_iters: u32,
    /// Independent groups per block (`G`); ≥ 4 gives full L2-line
    /// utilization, 1 reproduces the strided-access ablation.
    pub groups_per_block: u32,
}

impl GzkpNtt {
    /// Full GZKP configuration auto-sized for the field's limb count: picks
    /// `B` and `G ≥ 4` so a block's `G·2^B` elements fit in shared memory.
    pub fn auto<F: PrimeField>(device: DeviceConfig) -> Self {
        let m = F::NUM_LIMBS;
        let budget = (device.shared_mem_per_sm as usize * 9 / 10) / (m * 8);
        let mut b = 6u32;
        let mut g;
        loop {
            g = (budget >> b).min(32);
            if g >= 4 || b == 2 {
                break;
            }
            b -= 1;
        }
        Self {
            device,
            backend: Backend::FpLib,
            batch_iters: b,
            groups_per_block: g.max(1) as u32,
        }
    }

    /// Re-tunes this engine for a different device, preserving the
    /// backend choice. Fleet schedulers move POLY stages between
    /// heterogeneous devices; `B` and `G` must be re-derived from the new
    /// device's shared-memory budget rather than carried over.
    pub fn rebind<F: PrimeField>(&self, device: DeviceConfig) -> Self {
        let mut tuned = Self::auto::<F>(device);
        tuned.backend = self.backend;
        tuned
    }

    /// The "GZKP-no-GM-shuffle" ablation (Fig. 8): shuffle-less layout but
    /// one large group per block and no internal shuffle, so global loads
    /// stay strided.
    pub fn no_internal_shuffle<F: PrimeField>(device: DeviceConfig) -> Self {
        let mut s = Self::auto::<F>(device);
        s.batch_iters += s.groups_per_block.trailing_zeros().min(2);
        s.groups_per_block = 1;
        s.backend = Backend::Integer;
        s
    }

    /// Batch plan: fixed `B`-iteration batches; the *final* short batch is
    /// absorbed by enlarging `G`, so blocks stay big (the "flexible GPU
    /// block assignment" of §5.3).
    fn batches(&self, log_n: u32) -> Vec<Batch> {
        fixed_batches(log_n, self.batch_iters)
    }

    fn stage(&self, log_n: u32, m: usize) -> StageReport {
        let mut stage = StageReport::new(format!("ntt-gzkp-2^{log_n}"));
        for spec in build_gzkp_specs(self, log_n, m) {
            stage.run(&self.device, &spec);
        }
        stage
    }
}

/// Builds the per-iteration-batch kernel specs of the GZKP NTT plan
/// (shared by the latency engine and the §7 batched-throughput mode).
fn build_gzkp_specs(engine: &GzkpNtt, log_n: u32, m: usize) -> Vec<KernelSpec> {
    let n = 1usize << log_n;
    let dev = &engine.device;
    let mut specs = Vec::new();
    for (bi, batch) in engine.batches(log_n).iter().enumerate() {
        let gsize = batch.group_size();
        // Grow G for short batches to keep block size constant.
        let target_elems = (engine.groups_per_block as usize) << engine.batch_iters;
        let g = (target_elems / gsize)
            .max(engine.groups_per_block as usize)
            .min(batch.stride().max(1).max(engine.groups_per_block as usize));
        let elems_per_block = (g * gsize).min(n);
        let blocks = (n / elems_per_block).max(1);
        let threads = ((elems_per_block / 2).max(1) as u32).min(dev.max_threads_per_block);
        let shared = (elems_per_block * m * 8) as u64;

        // Global traffic: 2^B chunks of G contiguous elements, read and
        // written once per batch; amplification only when G < 4.
        let io = if batch.start == 0 || g >= 4 {
            2 * elem_sectors(elems_per_block, m, dev)
        } else {
            2 * strided_phase_sectors(
                (elems_per_block * m) as u64,
                8,
                (4 / g.max(1)) as u64,
                dev.warp_size as u64,
                dev.sector_bytes,
            )
            .max(2 * elem_sectors(elems_per_block, m, dev))
        };
        // G = 1 ablation: strided global access, amplification up to 4x.
        let io = if g == 1 && batch.start > 0 {
            2 * strided_phase_sectors(
                (elems_per_block * m) as u64,
                8,
                (batch.stride() as u64).min(4),
                dev.warp_size as u64,
                dev.sector_bytes,
            )
        } else {
            io
        };
        let tw = twiddle_sectors(*batch, n, m, dev) / blocks as u64;
        let macs = batch_macs(*batch, n, m) / blocks as f64;
        let per_block = BlockCost {
            mac_ops: macs,
            dram_sectors: io + tw,
            // Internal shuffle: one extra staging pass through shared
            // memory in each direction.
            shared_bytes: 4 * (elems_per_block * m * 8) as u64,
        };
        specs.push(KernelSpec::uniform(
            format!("butterfly.{bi}(s={},B={},G={g})", batch.start, batch.iters),
            threads,
            shared,
            engine.backend,
            m,
            blocks,
            per_block,
        ));
    }
    specs
}

/// Public spec accessor for the batched-throughput wrapper.
pub fn gzkp_kernel_specs<F: PrimeField>(engine: &GzkpNtt, log_n: u32) -> Vec<KernelSpec> {
    build_gzkp_specs(engine, log_n, F::NUM_LIMBS)
}

impl<F: PrimeField> GpuNttEngine<F> for GzkpNtt {
    fn name(&self) -> String {
        if self.groups_per_block == 1 {
            "GZKP-no-GM-shuffle".into()
        } else {
            "GZKP".into()
        }
    }

    fn transform(&self, domain: &Radix2Domain<F>, data: &mut [F], dir: Direction) -> StageReport {
        let batches = self.batches(domain.log_n);
        batched_transform(domain, data, dir, &batches);
        self.stage(domain.log_n, limbs::<F>())
    }

    fn cost(&self, log_n: u32) -> StageReport {
        self.stage(log_n, limbs::<F>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuNtt;
    use gzkp_ff::fields::{Fr254, Fr753};
    use gzkp_gpu_sim::device::v100;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_vec<F: PrimeField>(n: usize, seed: u64) -> Vec<F> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| F::random(&mut rng)).collect()
    }

    #[test]
    fn engines_match_cpu_reference() {
        let d = Radix2Domain::<Fr254>::new(1 << 12).unwrap();
        let coeffs = rand_vec::<Fr254>(1 << 12, 1);
        let mut expect = coeffs.clone();
        CpuNtt::reference().transform(&d, &mut expect, Direction::Forward);

        let mut a = coeffs.clone();
        BaselineGpuNtt::new(v100()).transform(&d, &mut a, Direction::Forward);
        assert_eq!(a, expect);

        let mut b = coeffs.clone();
        GzkpNtt::auto::<Fr254>(v100()).transform(&d, &mut b, Direction::Forward);
        assert_eq!(b, expect);

        let mut c = coeffs;
        GzkpNtt::no_internal_shuffle::<Fr254>(v100()).transform(&d, &mut c, Direction::Forward);
        assert_eq!(c, expect);
    }

    #[test]
    fn inverse_roundtrip_on_gpu_engines() {
        let d = Radix2Domain::<Fr753>::new(256).unwrap();
        let coeffs = rand_vec::<Fr753>(256, 2);
        let engine = GzkpNtt::auto::<Fr753>(v100());
        let mut v = coeffs.clone();
        GpuNttEngine::<Fr753>::transform(&engine, &d, &mut v, Direction::Forward);
        GpuNttEngine::<Fr753>::transform(&engine, &d, &mut v, Direction::Inverse);
        assert_eq!(v, coeffs);
    }

    #[test]
    fn gzkp_beats_baseline_at_scale() {
        // The headline §3 result: shuffle-less + internal shuffle wins.
        let base = BaselineGpuNtt::new(v100());
        let gzkp = GzkpNtt::auto::<Fr254>(v100());
        let t_base = GpuNttEngine::<Fr254>::cost(&base, 20).total_ns();
        let t_gzkp = GpuNttEngine::<Fr254>::cost(&gzkp, 20).total_ns();
        assert!(
            t_gzkp * 1.5 < t_base,
            "GZKP {t_gzkp} ns should clearly beat baseline {t_base} ns"
        );
    }

    #[test]
    fn lib_backend_improves_baseline() {
        let bg = BaselineGpuNtt::new(v100());
        let bg_lib = BaselineGpuNtt::new(v100()).with_lib();
        let t = GpuNttEngine::<Fr254>::cost(&bg, 22).total_ns();
        let t_lib = GpuNttEngine::<Fr254>::cost(&bg_lib, 22).total_ns();
        assert!(t_lib < t);
    }

    #[test]
    fn auto_parameters_respect_shared_memory() {
        let e = GzkpNtt::auto::<Fr753>(v100());
        let elems = (e.groups_per_block as usize) << e.batch_iters;
        assert!(elems * 12 * 8 <= 48 * 1024);
        assert!(e.groups_per_block >= 4);
    }

    #[test]
    fn cost_scales_roughly_linearly() {
        // §5.3: GZKP NTT time is ~linear in N (per-element cost flat).
        let e = GzkpNtt::auto::<Fr254>(v100());
        let t18 = GpuNttEngine::<Fr254>::cost(&e, 18).total_ns();
        let t22 = GpuNttEngine::<Fr254>::cost(&e, 22).total_ns();
        let ratio = t22 / t18; // 16× data, 22/18 more iterations ≈ 19.5×
        assert!(ratio > 10.0 && ratio < 30.0, "ratio {ratio}");
    }
}
