//! # gzkp-proof-system — the backend-agnostic prover surface
//!
//! The engine stack (NTT, MSM, telemetry, service, fleet, cluster) only
//! *happened* to be Groth16-shaped: every scheduling decision it makes is
//! really about a POLY stage (a batch of NTTs) followed by a sequence of
//! MSM steps whose partial results can be checkpointed. This crate names
//! that contract. A [`ProofSystem`] packages one zkSNARK backend —
//! Groth16 in `gzkp-groth16`, KZG/PLONK in `gzkp-plonk` — behind static
//! entry points for the two prover stages, verification, and the
//! step-granular checkpoint surface the cluster layer migrates across
//! hosts.
//!
//! The service's `SystemTask<S>` / `CheckpointingTask<S>` are generic
//! over this trait, which is what lets mixed Groth16+PLONK request
//! streams flow through one queue, one fleet placement policy, and one
//! cluster front door.
//!
//! Determinism contract: `prove_msm` (and the checkpoint path, which must
//! be byte-for-byte the same computation) receives an RNG **seed**, not an
//! RNG — every backend draws its blinding randomness at fixed points from
//! seeded generators so the same seed yields identical proof bytes at any
//! `GZKP_THREADS` value, on any simulated device, and across host
//! migration.

#![warn(missing_docs)]

use gzkp_curves::pairing::PairingConfig;
use gzkp_gpu_sim::StageReport;
use gzkp_msm::MsmEngine;
use gzkp_ntt::gpu::GpuNttEngine;
use gzkp_telemetry::TelemetrySink;

/// Which proof system a job, cache entry, or telemetry series belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProofSystemKind {
    /// The Groth16 zkSNARK (QAP-based; 5 MSM steps).
    Groth16,
    /// KZG-committed PLONK (gate + copy constraints; 4 commit steps).
    Plonk,
}

impl ProofSystemKind {
    /// Wire/label name of the system (`groth16` / `plonk`) — used for
    /// workload JSON, telemetry labels, and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            ProofSystemKind::Groth16 => "groth16",
            ProofSystemKind::Plonk => "plonk",
        }
    }

    /// Parses the wire name produced by [`ProofSystemKind::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "groth16" => Some(ProofSystemKind::Groth16),
            "plonk" => Some(ProofSystemKind::Plonk),
            _ => None,
        }
    }

    /// Small integer tag for cache keys (`PreprocessStore` keys carry it
    /// so Groth16 and PLONK preprocessing of the same points never
    /// collide).
    pub fn cache_tag(self) -> u8 {
        match self {
            ProofSystemKind::Groth16 => 0,
            ProofSystemKind::Plonk => 1,
        }
    }
}

/// Engine selection for a prover, shared by every backend.
///
/// The prover is placement-agnostic: it never asks an engine *where* it
/// runs, so single-device engines and the multi-device
/// `gzkp_runtime::CrossDeviceMsm` (bucket-range shards on distinct
/// devices, partial sums merged over the P2P path) slot in here
/// unchanged — and because each backend draws its blinding randomness
/// from a seeded RNG at fixed points relative to the MSMs, identical
/// engine results mean byte-identical proofs regardless of placement.
pub struct Engines<'a, P: PairingConfig> {
    /// NTT engine for the POLY stage.
    pub ntt: &'a dyn GpuNttEngine<P::Fr>,
    /// MSM engine for G1 inner products.
    pub msm_g1: &'a dyn MsmEngine<P::G1>,
    /// MSM engine for G2 inner products.
    pub msm_g2: &'a dyn MsmEngine<P::G2>,
}

/// Timing record of one proof generation, split by the paper's two
/// stages. Identical layout for every backend so `zkprof diff` can
/// compare across systems.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ProveReport {
    /// POLY-stage simulated report (NTTs + pointwise kernels).
    pub poly: StageReport,
    /// MSM/commit-stage simulated report.
    pub msm: StageReport,
}

impl ProveReport {
    /// POLY time in milliseconds.
    pub fn poly_ms(&self) -> f64 {
        self.poly.total_ms()
    }
    /// MSM time in milliseconds.
    pub fn msm_ms(&self) -> f64 {
        self.msm.total_ms()
    }
    /// End-to-end proof generation time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.poly_ms() + self.msm_ms()
    }
}

/// One zkSNARK backend, split along the POLY/MSM boundary the service
/// pipelines and extended with the step-granular checkpoint surface the
/// cluster migrates between hosts.
///
/// All methods are static (the system type is a marker): per-proof state
/// travels through [`ProofSystem::PolyArtifacts`] and
/// [`ProofSystem::Checkpoint`] values, which keeps the service's task
/// types `Send` without backend-specific bounds. Curve/serialization
/// bounds live on each backend's `impl`, not here, so generic service
/// code needs only `S: ProofSystem`.
pub trait ProofSystem: 'static {
    /// The pairing-friendly curve family the system proves over.
    type Pairing: PairingConfig;
    /// The satisfied, synthesized circuit (with witness) being proven.
    type Circuit: Send + Sync + 'static;
    /// Prover-side key material.
    type ProvingKey: Send + Sync + 'static;
    /// Verifier-side key material.
    type VerifyingKey: Send + Sync + 'static;
    /// Output of the POLY stage, consumed by the MSM stage.
    type PolyArtifacts: Send + 'static;
    /// Resumable mid-MSM state with a portable byte encoding.
    type Checkpoint: Send + 'static;

    /// Which system this is (labels, cache tags, workload routing).
    const KIND: ProofSystemKind;

    /// Number of checkpointable MSM steps the MSM stage runs.
    fn total_msm_steps() -> usize;

    /// Stage 1 — POLY: satisfiability check, witness reduction, and the
    /// backend's NTT batch, emitted under a `poly` telemetry span.
    ///
    /// # Errors
    ///
    /// Fails when the circuit is unsatisfied or exceeds the NTT domain.
    fn prove_poly(
        circuit: &Self::Circuit,
        pk: &Self::ProvingKey,
        ntt: &dyn GpuNttEngine<<Self::Pairing as PairingConfig>::Fr>,
        sink: &dyn TelemetrySink,
    ) -> Result<Self::PolyArtifacts, String>;

    /// The POLY stage report captured inside the artifacts.
    fn poly_report(poly: &Self::PolyArtifacts) -> &StageReport;

    /// Bytes of packed scalars the MSM stage uploads to the device — the
    /// stage's H2D footprint for transfer-pipelining schedulers.
    fn poly_scalar_bytes(poly: &Self::PolyArtifacts) -> u64;

    /// Stage 2 — the MSM/commit steps, blinding (from `seed`), and proof
    /// assembly, returning the serialized proof and the stage report.
    /// Must be byte-for-byte the computation the checkpoint path runs, so
    /// monolithic and checkpointed proofs are identical.
    ///
    /// # Errors
    ///
    /// Fails when the artifacts do not match `pk`.
    fn prove_msm(
        pk: &Self::ProvingKey,
        engines: &Engines<'_, Self::Pairing>,
        poly: Self::PolyArtifacts,
        seed: u64,
        sink: &dyn TelemetrySink,
    ) -> Result<(Vec<u8>, ProveReport), String>;

    /// Verifies serialized proof bytes against the circuit's public
    /// inputs. Malformed bytes verify as `false`, never panic.
    fn verify_bytes(vk: &Self::VerifyingKey, circuit: &Self::Circuit, proof: &[u8]) -> bool;

    /// Number of witness elements the POLY stage uploads (H2D sizing).
    fn witness_elems(circuit: &Self::Circuit) -> usize;

    /// Number of field elements the POLY stage downloads (D2H sizing).
    fn poly_d2h_elems(pk: &Self::ProvingKey) -> usize;

    /// Sizes of the G1 MSMs the MSM stage will run (deadline-urgency
    /// cost estimation and shard accounting).
    fn g1_msm_sizes(pk: &Self::ProvingKey) -> Vec<usize>;

    /// Sizes of the G2 MSMs the MSM stage will run.
    fn g2_msm_sizes(pk: &Self::ProvingKey) -> Vec<usize>;

    /// Opens a checkpoint right after the POLY stage (no MSM steps done).
    fn checkpoint_from_poly(seed: u64, poly: Self::PolyArtifacts) -> Self::Checkpoint;

    /// Serializes a checkpoint to its versioned portable byte format.
    fn checkpoint_to_bytes(ckpt: &Self::Checkpoint) -> Vec<u8>;

    /// Decodes a checkpoint, validating magic/version/curve shape and
    /// every stored point.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field; never panics
    /// on attacker-controlled input.
    fn checkpoint_from_bytes(bytes: &[u8]) -> Result<Self::Checkpoint, String>;

    /// The blinding-RNG seed carried inside the checkpoint.
    fn checkpoint_seed(ckpt: &Self::Checkpoint) -> u64;

    /// H2D bytes of the checkpointed scalar state (mirrors
    /// [`ProofSystem::poly_scalar_bytes`]).
    fn checkpoint_scalar_bytes(ckpt: &Self::Checkpoint) -> u64;

    /// Number of MSM steps already executed.
    fn checkpoint_steps_done(ckpt: &Self::Checkpoint) -> usize;

    /// The first MSM step still to run, or `None` when only
    /// [`ProofSystem::checkpoint_finish`] remains.
    fn checkpoint_next_step(ckpt: &Self::Checkpoint) -> Option<usize>;

    /// The POLY stage report captured at checkpoint time.
    fn checkpoint_poly_report(ckpt: &Self::Checkpoint) -> StageReport;

    /// Executes MSM step `step`, recording its partial result and kernel
    /// reports into the checkpoint. Re-running a done step is a no-op.
    ///
    /// # Errors
    ///
    /// Fails if `step` is out of range.
    fn checkpoint_run_step(
        ckpt: &mut Self::Checkpoint,
        pk: &Self::ProvingKey,
        engines: &Engines<'_, Self::Pairing>,
        step: usize,
        sink: &dyn TelemetrySink,
    ) -> Result<(), String>;

    /// Blinding and proof assembly from a fully-stepped checkpoint,
    /// byte-identical to the tail of [`ProofSystem::prove_msm`].
    ///
    /// # Errors
    ///
    /// Fails if any MSM step has not run yet.
    fn checkpoint_finish(
        ckpt: Self::Checkpoint,
        pk: &Self::ProvingKey,
    ) -> Result<(Vec<u8>, ProveReport), String>;
}

#[cfg(test)]
mod tests {
    use super::ProofSystemKind;

    #[test]
    fn kind_names_round_trip() {
        for kind in [ProofSystemKind::Groth16, ProofSystemKind::Plonk] {
            assert_eq!(ProofSystemKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(ProofSystemKind::parse("stark"), None);
    }

    #[test]
    fn cache_tags_are_distinct() {
        assert_ne!(
            ProofSystemKind::Groth16.cache_tag(),
            ProofSystemKind::Plonk.cache_tag()
        );
    }
}
