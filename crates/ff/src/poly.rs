//! Dense univariate polynomials over a prime field.
//!
//! The Groth16 QAP machinery works in evaluation form for speed, but the
//! protocol's correctness arguments are statements about polynomials;
//! this module provides the coefficient-form arithmetic used by tests,
//! examples and the setup's consistency checks: addition, multiplication,
//! evaluation, exact division, and division by the domain's vanishing
//! polynomial `x^N − 1`.

use crate::traits::PrimeField;
use core::fmt;
use core::ops::{Add, Mul, Neg, Sub};

/// A dense polynomial, little-endian coefficients (index = degree).
///
/// The representation is kept normalized: no trailing zero coefficients
/// (the zero polynomial is an empty vector).
///
/// # Examples
///
/// ```
/// use gzkp_ff::poly::DensePolynomial;
/// use gzkp_ff::fields::Fr254;
/// use gzkp_ff::Field;
///
/// // (x + 1)(x - 1) = x² - 1
/// let a = DensePolynomial::new(vec![Fr254::one(), Fr254::one()]);
/// let b = DensePolynomial::new(vec![-Fr254::one(), Fr254::one()]);
/// let p = &a * &b;
/// assert_eq!(p.degree(), Some(2));
/// assert_eq!(p.evaluate(Fr254::from_u64(3)), Fr254::from_u64(8));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct DensePolynomial<F: PrimeField> {
    coeffs: Vec<F>,
}

impl<F: PrimeField> fmt::Debug for DensePolynomial<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Poly(deg={:?})", self.degree())
    }
}

impl<F: PrimeField> DensePolynomial<F> {
    /// Builds a polynomial from coefficients (normalizing trailing zeros).
    pub fn new(mut coeffs: Vec<F>) -> Self {
        while coeffs.last().is_some_and(|c| c.is_zero()) {
            coeffs.pop();
        }
        Self { coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Self { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: F) -> Self {
        Self::new(vec![c])
    }

    /// The vanishing polynomial `x^n − 1` of a radix-2 domain.
    pub fn vanishing(n: usize) -> Self {
        let mut coeffs = vec![F::zero(); n + 1];
        coeffs[0] = -F::one();
        coeffs[n] = F::one();
        Self { coeffs }
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Borrow of the coefficient slice (little-endian).
    pub fn coeffs(&self) -> &[F] {
        &self.coeffs
    }

    /// Horner evaluation at `x`.
    pub fn evaluate(&self, x: F) -> F {
        let mut acc = F::zero();
        for c in self.coeffs.iter().rev() {
            acc = acc * x + *c;
        }
        acc
    }

    /// Schoolbook multiplication (tests and setup-scale inputs; use the
    /// NTT engines for anything large).
    pub fn mul_naive(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![F::zero(); self.coeffs.len() + other.coeffs.len() - 1];
        for (i, a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, b) in other.coeffs.iter().enumerate() {
                out[i + j] += *a * *b;
            }
        }
        Self::new(out)
    }

    /// Polynomial long division: returns `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "division by zero polynomial");
        if self.coeffs.len() < divisor.coeffs.len() {
            return (Self::zero(), self.clone());
        }
        let mut rem = self.coeffs.clone();
        let d_lead_inv = divisor
            .coeffs
            .last()
            .unwrap()
            .inverse()
            .expect("nonzero leading coefficient");
        let d_deg = divisor.coeffs.len() - 1;
        let mut quot = vec![F::zero(); rem.len() - d_deg];
        for i in (d_deg..rem.len()).rev() {
            let q = rem[i] * d_lead_inv;
            if q.is_zero() {
                continue;
            }
            quot[i - d_deg] = q;
            for (j, dc) in divisor.coeffs.iter().enumerate() {
                let idx = i - d_deg + j;
                rem[idx] -= q * *dc;
            }
        }
        (Self::new(quot), Self::new(rem))
    }

    /// Exact division by the vanishing polynomial `x^n − 1`, exploiting
    /// its sparse structure (O(len) instead of O(len·n)).
    ///
    /// Returns `None` if the division is not exact — which is precisely
    /// the Groth16 soundness condition: `A·B − C` divides by `Z` iff the
    /// witness satisfies every constraint.
    pub fn divide_by_vanishing(&self, n: usize) -> Option<Self> {
        if self.is_zero() {
            return Some(Self::zero());
        }
        if self.coeffs.len() <= n {
            return None; // degree < n and nonzero: not divisible
        }
        // For x^n − 1: q[i] = a[i+n] + q[i+n] working from the top.
        let qlen = self.coeffs.len() - n;
        let mut q = vec![F::zero(); qlen];
        for i in (0..qlen).rev() {
            q[i] = self.coeffs[i + n] + if i + n < qlen { q[i + n] } else { F::zero() };
        }
        // Remainder check: r[i] = a[i] + q[i] must vanish for i < n.
        for (i, &ci) in self.coeffs.iter().enumerate().take(n) {
            let qi = if i < qlen { q[i] } else { F::zero() };
            if ci + qi != F::zero() {
                return None;
            }
        }
        Some(Self::new(q))
    }

    /// Lagrange interpolation through `(x_i, y_i)` pairs with distinct
    /// `x_i`. O(n²); test/setup scale only.
    ///
    /// # Panics
    ///
    /// Panics if two `x` values coincide.
    pub fn interpolate(points: &[(F, F)]) -> Self {
        let mut acc = Self::zero();
        for (i, (xi, yi)) in points.iter().enumerate() {
            // basis_i(x) = Π_{j≠i} (x − x_j)/(x_i − x_j)
            let mut basis = Self::constant(F::one());
            let mut denom = F::one();
            for (j, (xj, _)) in points.iter().enumerate() {
                if i == j {
                    continue;
                }
                basis = basis.mul_naive(&Self::new(vec![-*xj, F::one()]));
                denom *= *xi - *xj;
            }
            let scale = *yi * denom.inverse().expect("distinct interpolation points");
            let scaled = Self::new(basis.coeffs.iter().map(|c| *c * scale).collect());
            acc = &acc + &scaled;
        }
        acc
    }
}

impl<F: PrimeField> Add for &DensePolynomial<F> {
    type Output = DensePolynomial<F>;
    fn add(self, other: Self) -> DensePolynomial<F> {
        let n = self.coeffs.len().max(other.coeffs.len());
        let coeffs = (0..n)
            .map(|i| {
                self.coeffs.get(i).copied().unwrap_or_else(F::zero)
                    + other.coeffs.get(i).copied().unwrap_or_else(F::zero)
            })
            .collect();
        DensePolynomial::new(coeffs)
    }
}

impl<F: PrimeField> Sub for &DensePolynomial<F> {
    type Output = DensePolynomial<F>;
    fn sub(self, other: Self) -> DensePolynomial<F> {
        let n = self.coeffs.len().max(other.coeffs.len());
        let coeffs = (0..n)
            .map(|i| {
                self.coeffs.get(i).copied().unwrap_or_else(F::zero)
                    - other.coeffs.get(i).copied().unwrap_or_else(F::zero)
            })
            .collect();
        DensePolynomial::new(coeffs)
    }
}

impl<F: PrimeField> Mul for &DensePolynomial<F> {
    type Output = DensePolynomial<F>;
    fn mul(self, other: Self) -> DensePolynomial<F> {
        self.mul_naive(other)
    }
}

impl<F: PrimeField> Neg for &DensePolynomial<F> {
    type Output = DensePolynomial<F>;
    fn neg(self) -> DensePolynomial<F> {
        DensePolynomial::new(self.coeffs.iter().map(|c| -*c).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::Fr254;
    use crate::traits::Field;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    type P = DensePolynomial<Fr254>;

    fn random_poly(deg: usize, seed: u64) -> P {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coeffs: Vec<Fr254> = (0..=deg).map(|_| Fr254::random(&mut rng)).collect();
        // ensure exact degree
        if coeffs[deg].is_zero() {
            coeffs[deg] = Fr254::one();
        }
        P::new(coeffs)
    }

    #[test]
    fn normalization() {
        let p = P::new(vec![Fr254::one(), Fr254::zero(), Fr254::zero()]);
        assert_eq!(p.degree(), Some(0));
        assert!(P::new(vec![Fr254::zero()]).is_zero());
        assert_eq!(P::zero().degree(), None);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = random_poly(7, 1);
        let b = random_poly(4, 2);
        let s = &a + &b;
        assert_eq!(&s - &b, a);
    }

    #[test]
    fn mul_degree_and_eval() {
        let a = random_poly(5, 3);
        let b = random_poly(3, 4);
        let p = &a * &b;
        assert_eq!(p.degree(), Some(8));
        let x = Fr254::from_u64(11);
        assert_eq!(p.evaluate(x), a.evaluate(x) * b.evaluate(x));
    }

    #[test]
    fn div_rem_identity() {
        let a = random_poly(9, 5);
        let d = random_poly(4, 6);
        let (q, r) = a.div_rem(&d);
        assert!(r.degree() < d.degree());
        let back = &(&q * &d) + &r;
        assert_eq!(back, a);
    }

    #[test]
    fn vanishing_division_exact() {
        let n = 8;
        let q = random_poly(5, 7);
        let prod = &q * &P::vanishing(n);
        let q2 = prod.divide_by_vanishing(n).expect("exact");
        assert_eq!(q2, q);
    }

    #[test]
    fn vanishing_division_detects_nonexact() {
        let n = 8;
        let q = random_poly(5, 8);
        let mut prod = &q * &P::vanishing(n);
        // Corrupt one low coefficient.
        let mut coeffs = prod.coeffs().to_vec();
        coeffs[2] += Fr254::one();
        prod = P::new(coeffs);
        assert!(prod.divide_by_vanishing(n).is_none());
    }

    #[test]
    fn vanishing_matches_long_division() {
        let n = 4;
        let a = random_poly(11, 9);
        let z = P::vanishing(n);
        let (q, r) = a.div_rem(&z);
        match a.divide_by_vanishing(n) {
            Some(q2) => {
                assert!(r.is_zero());
                assert_eq!(q2, q);
            }
            None => assert!(!r.is_zero()),
        }
    }

    #[test]
    fn interpolation_roundtrip() {
        let p = random_poly(6, 10);
        let points: Vec<(Fr254, Fr254)> = (0..7)
            .map(|i| {
                let x = Fr254::from_u64(100 + i);
                (x, p.evaluate(x))
            })
            .collect();
        assert_eq!(P::interpolate(&points), p);
    }

    #[test]
    fn interpolation_constant() {
        let pts = [(Fr254::from_u64(1), Fr254::from_u64(9))];
        let p = P::interpolate(&pts);
        assert_eq!(p, P::constant(Fr254::from_u64(9)));
    }
}
