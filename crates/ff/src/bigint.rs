//! Fixed-width little-endian big integers backed by `[u64; N]`.
//!
//! These are the raw limb containers underneath the Montgomery prime fields
//! in [`crate::fp`]. All arithmetic here is plain integer arithmetic (no
//! modular reduction); everything is `const fn`-friendly where the field
//! parameter derivation needs it.

use core::cmp::Ordering;
use core::fmt;

/// A fixed-width little-endian unsigned big integer with `N` 64-bit limbs.
///
/// Limb 0 is the least significant. `BigInt<4>` holds 256 bits, `BigInt<6>`
/// 384 bits, `BigInt<12>` 768 bits, which cover the paper's 256-, 381- and
/// 753-bit fields respectively.
///
/// # Examples
///
/// ```
/// use gzkp_ff::bigint::BigInt;
/// let a = BigInt::<4>::from_u64(7);
/// let b = BigInt::<4>::from_u64(5);
/// assert!(a > b);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct BigInt<const N: usize>(pub [u64; N]);

impl<const N: usize> Default for BigInt<N> {
    fn default() -> Self {
        Self::ZERO
    }
}

/// `(a + b + carry)` returning `(low, high)` where `high` is the new carry.
#[inline(always)]
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// `(a - b - borrow)` returning `(low, borrow_out)` with `borrow_out` in {0,1}.
#[inline(always)]
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub(b as u128 + borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

/// `a + b * c + carry` returning `(low, high)`. The multiply-accumulate core
/// of CIOS Montgomery multiplication.
#[inline(always)]
pub const fn mac(a: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + (b as u128) * (c as u128) + carry as u128;
    (t as u64, (t >> 64) as u64)
}

impl<const N: usize> BigInt<N> {
    /// The zero value.
    pub const ZERO: Self = Self([0u64; N]);

    /// The one value.
    pub const ONE: Self = {
        let mut limbs = [0u64; N];
        limbs[0] = 1;
        Self(limbs)
    };

    /// Creates a big integer from a single `u64`.
    pub const fn from_u64(x: u64) -> Self {
        let mut limbs = [0u64; N];
        limbs[0] = x;
        Self(limbs)
    }

    /// Creates a big integer from a little-endian limb array.
    pub const fn new(limbs: [u64; N]) -> Self {
        Self(limbs)
    }

    /// Returns true if every limb is zero.
    pub const fn is_zero(&self) -> bool {
        let mut i = 0;
        while i < N {
            if self.0[i] != 0 {
                return false;
            }
            i += 1;
        }
        true
    }

    /// Returns true if the integer is even.
    pub const fn is_even(&self) -> bool {
        self.0[0] & 1 == 0
    }

    /// Returns true if the integer is odd.
    pub const fn is_odd(&self) -> bool {
        self.0[0] & 1 == 1
    }

    /// Constant-friendly comparison: -1, 0, 1 as i8.
    pub const fn const_cmp(&self, other: &Self) -> i8 {
        let mut i = N;
        while i > 0 {
            i -= 1;
            if self.0[i] < other.0[i] {
                return -1;
            }
            if self.0[i] > other.0[i] {
                return 1;
            }
        }
        0
    }

    /// In-place addition; returns the carry out (0 or 1).
    pub const fn const_add(mut self, other: &Self) -> (Self, u64) {
        let mut carry = 0;
        let mut i = 0;
        while i < N {
            let (lo, c) = adc(self.0[i], other.0[i], carry);
            self.0[i] = lo;
            carry = c;
            i += 1;
        }
        (self, carry)
    }

    /// In-place subtraction; returns the borrow out (0 or 1).
    pub const fn const_sub(mut self, other: &Self) -> (Self, u64) {
        let mut borrow = 0;
        let mut i = 0;
        while i < N {
            let (lo, b) = sbb(self.0[i], other.0[i], borrow);
            self.0[i] = lo;
            borrow = b;
            i += 1;
        }
        (self, borrow)
    }

    /// Doubles the integer, returning the carry-out bit.
    pub const fn const_double(mut self) -> (Self, u64) {
        let mut carry = 0;
        let mut i = 0;
        while i < N {
            let next = self.0[i] >> 63;
            self.0[i] = (self.0[i] << 1) | carry;
            carry = next;
            i += 1;
        }
        (self, carry)
    }

    /// Adds `other` in place, returning the carry out.
    pub fn add_with_carry(&mut self, other: &Self) -> u64 {
        let (r, c) = self.const_add(other);
        *self = r;
        c
    }

    /// Subtracts `other` in place, returning the borrow out.
    pub fn sub_with_borrow(&mut self, other: &Self) -> u64 {
        let (r, b) = self.const_sub(other);
        *self = r;
        b
    }

    /// Halves the integer (logical shift right by one bit).
    pub fn div2(&mut self) {
        let mut carry = 0u64;
        for i in (0..N).rev() {
            let next = self.0[i] & 1;
            self.0[i] = (self.0[i] >> 1) | (carry << 63);
            carry = next;
        }
    }

    /// Halves the integer with an incoming top bit (used after an addition
    /// that overflowed into a carry).
    pub fn div2_with_top_bit(&mut self, top: u64) {
        self.div2();
        if top != 0 {
            self.0[N - 1] |= 1u64 << 63;
        }
    }

    /// Multiplies by two in place, returning the shifted-out top bit.
    pub fn mul2(&mut self) -> u64 {
        let (r, c) = self.const_double();
        *self = r;
        c
    }

    /// Returns the bit at position `i` (little-endian bit order).
    pub const fn bit(&self, i: usize) -> bool {
        if i >= 64 * N {
            return false;
        }
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of significant bits (position of the highest set bit + 1).
    pub const fn num_bits(&self) -> u32 {
        let mut i = N;
        while i > 0 {
            i -= 1;
            if self.0[i] != 0 {
                return (i as u32) * 64 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }

    /// Extracts `count` bits starting at bit offset `start` as a `u64`.
    /// `count` must be at most 64. Bits past the top are zero.
    ///
    /// This is the window extraction used by Pippenger-style MSM.
    pub fn bits_at(&self, start: usize, count: usize) -> u64 {
        debug_assert!(count <= 64);
        if start >= 64 * N || count == 0 {
            return 0;
        }
        let limb = start / 64;
        let shift = start % 64;
        let mut v = self.0[limb] >> shift;
        if shift != 0 && limb + 1 < N {
            v |= self.0[limb + 1] << (64 - shift);
        }
        if count < 64 {
            v &= (1u64 << count) - 1;
        }
        v
    }

    /// Little-endian bytes of the integer.
    pub fn to_bytes_le(&self) -> Vec<u8> {
        self.0.iter().flat_map(|l| l.to_le_bytes()).collect()
    }

    /// Parses from little-endian bytes, ignoring missing high bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than `8 * N`.
    pub fn from_bytes_le(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= 8 * N, "too many bytes for BigInt<{N}>");
        let mut limbs = [0u64; N];
        for (i, chunk) in bytes.chunks(8).enumerate() {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            limbs[i] = u64::from_le_bytes(b);
        }
        Self(limbs)
    }

    /// Parses a hexadecimal string (optionally `0x`-prefixed, big-endian
    /// digits as conventionally written).
    ///
    /// # Panics
    ///
    /// Panics on invalid hex digits or if the value does not fit in `N` limbs.
    pub fn from_hex(s: &str) -> Self {
        let s = s.trim().trim_start_matches("0x").trim_start_matches("0X");
        let mut limbs = [0u64; N];
        let digits: Vec<u8> = s
            .bytes()
            .filter(|b| !b.is_ascii_whitespace() && *b != b'_')
            .map(|b| match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => panic!("invalid hex digit {}", b as char),
            })
            .collect();
        assert!(
            digits.len() <= N * 16,
            "hex literal too long for BigInt<{N}>"
        );
        for (i, d) in digits.iter().rev().enumerate() {
            limbs[i / 16] |= (*d as u64) << (4 * (i % 16));
        }
        Self(limbs)
    }

    /// Parses a decimal string.
    ///
    /// # Panics
    ///
    /// Panics on non-digit characters or overflow of `N` limbs.
    pub fn from_decimal(s: &str) -> Self {
        let mut acc = Self::ZERO;
        for b in s.trim().bytes() {
            assert!(b.is_ascii_digit(), "invalid decimal digit {}", b as char);
            // acc = acc * 10 + digit
            let mut carry = 0u64;
            for limb in acc.0.iter_mut() {
                let t = (*limb as u128) * 10 + carry as u128;
                *limb = t as u64;
                carry = (t >> 64) as u64;
            }
            assert_eq!(carry, 0, "decimal literal too long for BigInt<{N}>");
            let (r, c) = acc.const_add(&Self::from_u64((b - b'0') as u64));
            assert_eq!(c, 0, "decimal literal too long for BigInt<{N}>");
            acc = r;
        }
        acc
    }

    /// Formats as a `0x`-prefixed big-endian hex string without leading zeros.
    pub fn to_hex(&self) -> String {
        let mut s = String::from("0x");
        let mut started = false;
        for limb in self.0.iter().rev() {
            if started {
                s.push_str(&format!("{limb:016x}"));
            } else if *limb != 0 {
                s.push_str(&format!("{limb:x}"));
                started = true;
            }
        }
        if !started {
            s.push('0');
        }
        s
    }

    /// Widening full multiplication into `lo` and `hi` halves.
    pub fn widening_mul(&self, other: &Self) -> (Self, Self) {
        let mut t = vec![0u64; 2 * N];
        for i in 0..N {
            let mut carry = 0u64;
            for j in 0..N {
                let (lo, hi) = mac(t[i + j], self.0[i], other.0[j], carry);
                t[i + j] = lo;
                carry = hi;
            }
            t[i + N] = carry;
        }
        let mut lo = [0u64; N];
        let mut hi = [0u64; N];
        lo.copy_from_slice(&t[..N]);
        hi.copy_from_slice(&t[N..]);
        (Self(lo), Self(hi))
    }

    /// Interprets the limbs as a dynamic-width integer (see [`crate::dynmont`]).
    pub fn to_dyn(&self) -> Vec<u64> {
        self.0.to_vec()
    }
}

impl<const N: usize> Ord for BigInt<N> {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.const_cmp(other) {
            -1 => Ordering::Less,
            0 => Ordering::Equal,
            _ => Ordering::Greater,
        }
    }
}

impl<const N: usize> PartialOrd for BigInt<N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const N: usize> fmt::Debug for BigInt<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({})", self.to_hex())
    }
}

impl<const N: usize> fmt::Display for BigInt<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl<const N: usize> fmt::LowerHex for BigInt<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex().trim_start_matches("0x"))
    }
}

impl<const N: usize> From<u64> for BigInt<N> {
    fn from(x: u64) -> Self {
        Self::from_u64(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type B4 = BigInt<4>;

    #[test]
    fn zero_one_roundtrip() {
        assert!(B4::ZERO.is_zero());
        assert!(!B4::ONE.is_zero());
        assert!(B4::ZERO.is_even());
        assert!(B4::ONE.is_odd());
        assert_eq!(B4::from_u64(42).0[0], 42);
    }

    #[test]
    fn add_sub_inverse() {
        let a = B4::from_hex("0xffffffffffffffffffffffffffffffff");
        let b = B4::from_u64(12345);
        let (sum, c) = a.const_add(&b);
        assert_eq!(c, 0);
        let (back, borrow) = sum.const_sub(&b);
        assert_eq!(borrow, 0);
        assert_eq!(back, a);
    }

    #[test]
    fn add_carries_out() {
        let max = B4::new([u64::MAX; 4]);
        let (r, c) = max.const_add(&B4::ONE);
        assert_eq!(c, 1);
        assert!(r.is_zero());
    }

    #[test]
    fn sub_borrows() {
        let (r, b) = B4::ZERO.const_sub(&B4::ONE);
        assert_eq!(b, 1);
        assert_eq!(r, B4::new([u64::MAX; 4]));
    }

    #[test]
    fn hex_roundtrip() {
        let a = B4::from_hex("0x1a0111ea397fe69a4b1ba7b6434bacd7");
        assert_eq!(a.to_hex(), "0x1a0111ea397fe69a4b1ba7b6434bacd7");
        assert_eq!(B4::ZERO.to_hex(), "0x0");
    }

    #[test]
    fn decimal_parse() {
        let a = B4::from_decimal(
            "21888242871839275222246405745257275088548364400416034343698204186575808495617",
        );
        assert_eq!(
            a.to_hex(),
            "0x30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001"
        );
    }

    #[test]
    fn bit_access() {
        let a = B4::from_u64(0b1011);
        assert!(a.bit(0));
        assert!(a.bit(1));
        assert!(!a.bit(2));
        assert!(a.bit(3));
        assert!(!a.bit(200));
        assert_eq!(a.num_bits(), 4);
    }

    #[test]
    fn bits_at_window_extraction() {
        let a = B4::from_hex("0xabcdef0123456789abcdef0123456789");
        assert_eq!(a.bits_at(0, 4), 0x9);
        assert_eq!(a.bits_at(4, 8), 0x78);
        // Window crossing a limb boundary.
        assert_eq!(a.bits_at(60, 8), ((a.0[1] << 4) | (a.0[0] >> 60)) & 0xff);
    }

    #[test]
    fn double_and_div2() {
        let mut a = B4::from_hex("0x8000000000000000000000000000000000000001");
        let orig = a;
        let top = a.mul2();
        assert_eq!(top, 0);
        a.div2();
        assert_eq!(a, orig);
    }

    #[test]
    fn widening_mul_small() {
        let a = B4::from_u64(u64::MAX);
        let (lo, hi) = a.widening_mul(&a);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(lo.0, [1, u64::MAX - 1, 0, 0]);
        assert!(hi.is_zero());
    }

    #[test]
    fn bytes_roundtrip() {
        let a = B4::from_hex("0x123456789abcdef0fedcba9876543210");
        let b = B4::from_bytes_le(&a.to_bytes_le());
        assert_eq!(a, b);
    }

    #[test]
    fn ordering() {
        let a = B4::from_u64(5);
        let b = B4::from_hex("0x100000000000000000");
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }
}
