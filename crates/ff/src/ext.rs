//! Extension-field towers: quadratic `Fp2`, cubic `Fp6`, quadratic `Fp12`.
//!
//! These are the towers used by pairing-friendly curves (BN254 and
//! BLS12-381 both use `Fp12 = Fp6[w]/(w²−v)`, `Fp6 = Fp2[v]/(v³−ξ)`,
//! `Fp2 = Fp[u]/(u²−β)`). The configuration traits carry the non-residues
//! and Frobenius coefficients; the curve crates provide them (computed
//! lazily from the modulus, not hardcoded).

use crate::traits::{Field, PrimeField};
use core::fmt;
use core::iter::{Product, Sum};
use core::marker::PhantomData;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use rand::Rng;

/// Configuration of a quadratic extension `Fp2 = Fp[u] / (u² − β)`.
pub trait Fp2Config:
    'static + Copy + Clone + Default + PartialEq + Eq + Send + Sync + fmt::Debug + core::hash::Hash
{
    /// The base prime field.
    type Fp: PrimeField;
    /// The quadratic non-residue β.
    fn nonresidue() -> Self::Fp;
}

/// An element `c0 + c1·u` of a quadratic extension field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fp2<C: Fp2Config> {
    /// Constant coefficient.
    pub c0: C::Fp,
    /// Coefficient of `u`.
    pub c1: C::Fp,
    #[doc(hidden)]
    pub _marker: PhantomData<C>,
}

impl<C: Fp2Config> Fp2<C> {
    /// Builds an element from its two coefficients.
    pub fn new(c0: C::Fp, c1: C::Fp) -> Self {
        Self {
            c0,
            c1,
            _marker: PhantomData,
        }
    }

    /// Multiplies by the non-residue β of the *next* tower level, i.e. maps
    /// `x ↦ x·u... ` — not needed at this level; see [`Fp6Config`].
    pub fn mul_by_fp(&self, fp: &C::Fp) -> Self {
        Self::new(self.c0 * fp, self.c1 * fp)
    }

    /// Conjugation `c0 − c1·u`, which is the `p`-power Frobenius on `Fp2`.
    pub fn conjugate(&self) -> Self {
        Self::new(self.c0, -self.c1)
    }

    /// `p^power`-Frobenius: conjugates when `power` is odd.
    pub fn frobenius_map(&self, power: usize) -> Self {
        if power % 2 == 1 {
            self.conjugate()
        } else {
            *self
        }
    }

    /// Norm map to the base field: `c0² − β·c1²`.
    pub fn norm(&self) -> C::Fp {
        self.c0.square() - C::nonresidue() * self.c1.square()
    }
}

impl<C: Fp2Config> Fp2<C>
where
    C::Fp: crate::traits::PrimeField,
{
    /// Square root in `Fp2 = Fp[u]/(u² + 1)` via the complex method.
    ///
    /// Requires the nonresidue to be `−1` (true for BN254, BLS12-381 and
    /// T753's towers); returns `None` for non-squares.
    ///
    /// # Panics
    ///
    /// Panics if the tower's nonresidue is not `−1`.
    pub fn sqrt(&self) -> Option<Self> {
        use crate::traits::PrimeField;
        assert_eq!(
            C::nonresidue(),
            -C::Fp::one(),
            "Fp2::sqrt requires u\u{b2} = -1 towers"
        );
        if self.is_zero() {
            return Some(*self);
        }
        if self.c1.is_zero() {
            // sqrt(a): in Fp if a is a QR, else sqrt(-a)*u (since (cu)\u{b2} = -c\u{b2}).
            return match self.c0.sqrt() {
                Some(r) => Some(Self::new(r, C::Fp::zero())),
                None => (-self.c0).sqrt().map(|r| Self::new(C::Fp::zero(), r)),
            };
        }
        // (x + yu)\u{b2} = (x\u{b2} - y\u{b2}) + 2xy*u: solve with the norm
        // m = sqrt(a\u{b2} + b\u{b2}), which must be a QR in Fp.
        let m = (self.c0.square() + self.c1.square()).sqrt()?;
        let two_inv = C::Fp::from_u64(2).inverse().expect("char != 2");
        let mut x2 = (self.c0 + m) * two_inv;
        let x = match x2.sqrt() {
            Some(x) if !x.is_zero() => x,
            _ => {
                x2 = (self.c0 - m) * two_inv;
                x2.sqrt()?
            }
        };
        if x.is_zero() {
            return None;
        }
        let y = self.c1 * two_inv * x.inverse().expect("x nonzero");
        let cand = Self::new(x, y);
        (cand.square() == *self).then_some(cand)
    }
}

impl<C: Fp2Config> fmt::Display for Fp2<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} + {}*u)", self.c0, self.c1)
    }
}

impl<C: Fp2Config> Add for Fp2<C> {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self::new(self.c0 + o.c0, self.c1 + o.c1)
    }
}
impl<'a, C: Fp2Config> Add<&'a Fp2<C>> for Fp2<C> {
    type Output = Self;
    fn add(self, o: &'a Self) -> Self {
        self + *o
    }
}
impl<C: Fp2Config> Sub for Fp2<C> {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        Self::new(self.c0 - o.c0, self.c1 - o.c1)
    }
}
impl<'a, C: Fp2Config> Sub<&'a Fp2<C>> for Fp2<C> {
    type Output = Self;
    fn sub(self, o: &'a Self) -> Self {
        self - *o
    }
}
impl<C: Fp2Config> Mul for Fp2<C> {
    type Output = Self;
    #[inline]
    fn mul(self, o: Self) -> Self {
        // Karatsuba: 3 base-field muls.
        let v0 = self.c0 * o.c0;
        let v1 = self.c1 * o.c1;
        let c0 = v0 + C::nonresidue() * v1;
        let c1 = (self.c0 + self.c1) * (o.c0 + o.c1) - v0 - v1;
        Self::new(c0, c1)
    }
}
impl<'a, C: Fp2Config> Mul<&'a Fp2<C>> for Fp2<C> {
    type Output = Self;
    fn mul(self, o: &'a Self) -> Self {
        self * *o
    }
}
impl<C: Fp2Config> Neg for Fp2<C> {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.c0, -self.c1)
    }
}
impl<C: Fp2Config> AddAssign for Fp2<C> {
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}
impl<C: Fp2Config> SubAssign for Fp2<C> {
    fn sub_assign(&mut self, o: Self) {
        *self = *self - o;
    }
}
impl<C: Fp2Config> MulAssign for Fp2<C> {
    fn mul_assign(&mut self, o: Self) {
        *self = *self * o;
    }
}
impl<C: Fp2Config> Sum for Fp2<C> {
    fn sum<I: Iterator<Item = Self>>(it: I) -> Self {
        it.fold(Self::zero(), |a, b| a + b)
    }
}
impl<C: Fp2Config> Product for Fp2<C> {
    fn product<I: Iterator<Item = Self>>(it: I) -> Self {
        it.fold(Self::one(), |a, b| a * b)
    }
}

impl<C: Fp2Config> Field for Fp2<C> {
    fn zero() -> Self {
        Self::new(C::Fp::zero(), C::Fp::zero())
    }
    fn one() -> Self {
        Self::new(C::Fp::one(), C::Fp::zero())
    }
    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }
    fn square(&self) -> Self {
        // Complex squaring adapted to general β: 2 muls + schoolbook fixups.
        let a = self.c0;
        let b = self.c1;
        let beta = C::nonresidue();
        let v0 = a * b;
        let c0 = (a + b) * (a + beta * b) - v0 - beta * v0;
        let c1 = v0.double();
        Self::new(c0, c1)
    }
    fn double(&self) -> Self {
        Self::new(self.c0.double(), self.c1.double())
    }
    fn inverse(&self) -> Option<Self> {
        let norm = self.norm();
        norm.inverse()
            .map(|ninv| Self::new(self.c0 * ninv, -(self.c1 * ninv)))
    }
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::new(C::Fp::random(rng), C::Fp::random(rng))
    }
    fn from_u64(x: u64) -> Self {
        Self::new(C::Fp::from_u64(x), C::Fp::zero())
    }
    fn characteristic() -> Vec<u64> {
        C::Fp::characteristic()
    }
    fn extension_degree() -> usize {
        2
    }
}

/// Configuration of a cubic extension `Fp6 = Fp2[v] / (v³ − ξ)`.
pub trait Fp6Config:
    'static + Copy + Clone + Default + PartialEq + Eq + Send + Sync + fmt::Debug + core::hash::Hash
{
    /// The quadratic sub-tower.
    type Fp2C: Fp2Config;
    /// The cubic non-residue ξ ∈ Fp2.
    fn nonresidue() -> Fp2<Self::Fp2C>;
    /// `ξ^((p^i − 1)/3)` for `i` in `0..6`.
    fn frobenius_c1(power: usize) -> Fp2<Self::Fp2C>;
    /// `ξ^((2·p^i − 2)/3)` for `i` in `0..6`.
    fn frobenius_c2(power: usize) -> Fp2<Self::Fp2C>;
}

/// An element `c0 + c1·v + c2·v²` of a cubic extension over `Fp2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fp6<C: Fp6Config> {
    /// Constant coefficient.
    pub c0: Fp2<C::Fp2C>,
    /// Coefficient of `v`.
    pub c1: Fp2<C::Fp2C>,
    /// Coefficient of `v²`.
    pub c2: Fp2<C::Fp2C>,
    #[doc(hidden)]
    pub _marker: PhantomData<C>,
}

impl<C: Fp6Config> Fp6<C> {
    /// Builds an element from its three coefficients.
    pub fn new(c0: Fp2<C::Fp2C>, c1: Fp2<C::Fp2C>, c2: Fp2<C::Fp2C>) -> Self {
        Self {
            c0,
            c1,
            c2,
            _marker: PhantomData,
        }
    }

    /// Multiplication by `v`: `(c0,c1,c2) ↦ (ξ·c2, c0, c1)`.
    pub fn mul_by_nonresidue(&self) -> Self {
        Self::new(C::nonresidue() * self.c2, self.c0, self.c1)
    }

    /// `p^power`-Frobenius endomorphism.
    pub fn frobenius_map(&self, power: usize) -> Self {
        Self::new(
            self.c0.frobenius_map(power),
            self.c1.frobenius_map(power) * C::frobenius_c1(power % 6),
            self.c2.frobenius_map(power) * C::frobenius_c2(power % 6),
        )
    }
}

impl<C: Fp6Config> fmt::Display for Fp6<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} + {}*v + {}*v^2)", self.c0, self.c1, self.c2)
    }
}

impl<C: Fp6Config> Add for Fp6<C> {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self::new(self.c0 + o.c0, self.c1 + o.c1, self.c2 + o.c2)
    }
}
impl<'a, C: Fp6Config> Add<&'a Fp6<C>> for Fp6<C> {
    type Output = Self;
    fn add(self, o: &'a Self) -> Self {
        self + *o
    }
}
impl<C: Fp6Config> Sub for Fp6<C> {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        Self::new(self.c0 - o.c0, self.c1 - o.c1, self.c2 - o.c2)
    }
}
impl<'a, C: Fp6Config> Sub<&'a Fp6<C>> for Fp6<C> {
    type Output = Self;
    fn sub(self, o: &'a Self) -> Self {
        self - *o
    }
}
impl<C: Fp6Config> Mul for Fp6<C> {
    type Output = Self;
    #[inline]
    fn mul(self, o: Self) -> Self {
        // Toom-style interpolation (6 Fp2 muls), standard v³ = ξ folding.
        let v0 = self.c0 * o.c0;
        let v1 = self.c1 * o.c1;
        let v2 = self.c2 * o.c2;
        let xi = C::nonresidue();
        let c0 = v0 + xi * ((self.c1 + self.c2) * (o.c1 + o.c2) - v1 - v2);
        let c1 = (self.c0 + self.c1) * (o.c0 + o.c1) - v0 - v1 + xi * v2;
        let c2 = (self.c0 + self.c2) * (o.c0 + o.c2) - v0 - v2 + v1;
        Self::new(c0, c1, c2)
    }
}
impl<'a, C: Fp6Config> Mul<&'a Fp6<C>> for Fp6<C> {
    type Output = Self;
    fn mul(self, o: &'a Self) -> Self {
        self * *o
    }
}
impl<C: Fp6Config> Neg for Fp6<C> {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.c0, -self.c1, -self.c2)
    }
}
impl<C: Fp6Config> AddAssign for Fp6<C> {
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}
impl<C: Fp6Config> SubAssign for Fp6<C> {
    fn sub_assign(&mut self, o: Self) {
        *self = *self - o;
    }
}
impl<C: Fp6Config> MulAssign for Fp6<C> {
    fn mul_assign(&mut self, o: Self) {
        *self = *self * o;
    }
}
impl<C: Fp6Config> Sum for Fp6<C> {
    fn sum<I: Iterator<Item = Self>>(it: I) -> Self {
        it.fold(Self::zero(), |a, b| a + b)
    }
}
impl<C: Fp6Config> Product for Fp6<C> {
    fn product<I: Iterator<Item = Self>>(it: I) -> Self {
        it.fold(Self::one(), |a, b| a * b)
    }
}

impl<C: Fp6Config> Field for Fp6<C> {
    fn zero() -> Self {
        Self::new(Fp2::zero(), Fp2::zero(), Fp2::zero())
    }
    fn one() -> Self {
        Self::new(Fp2::one(), Fp2::zero(), Fp2::zero())
    }
    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero() && self.c2.is_zero()
    }
    fn square(&self) -> Self {
        *self * *self
    }
    fn double(&self) -> Self {
        Self::new(self.c0.double(), self.c1.double(), self.c2.double())
    }
    fn inverse(&self) -> Option<Self> {
        // Standard cubic-extension inversion via the adjoint.
        let xi = C::nonresidue();
        let a = self.c0.square() - xi * (self.c1 * self.c2);
        let b = xi * self.c2.square() - self.c0 * self.c1;
        let c = self.c1.square() - self.c0 * self.c2;
        let t = xi * (self.c2 * b + self.c1 * c) + self.c0 * a;
        t.inverse()
            .map(|tinv| Self::new(a * tinv, b * tinv, c * tinv))
    }
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::new(Fp2::random(rng), Fp2::random(rng), Fp2::random(rng))
    }
    fn from_u64(x: u64) -> Self {
        Self::new(Fp2::from_u64(x), Fp2::zero(), Fp2::zero())
    }
    fn characteristic() -> Vec<u64> {
        Fp2::<C::Fp2C>::characteristic()
    }
    fn extension_degree() -> usize {
        6
    }
}

/// Configuration of the top quadratic extension `Fp12 = Fp6[w] / (w² − v)`.
pub trait Fp12Config:
    'static + Copy + Clone + Default + PartialEq + Eq + Send + Sync + fmt::Debug + core::hash::Hash
{
    /// The cubic sub-tower.
    type Fp6C: Fp6Config;
    /// `ξ^((p^i − 1)/6)` for `i` in `0..12`.
    fn frobenius_c1(power: usize) -> Fp2<<Self::Fp6C as Fp6Config>::Fp2C>;
}

/// An element `c0 + c1·w` of the 12th-degree tower (the pairing target group
/// lives in its cyclotomic subgroup).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fp12<C: Fp12Config> {
    /// Constant coefficient.
    pub c0: Fp6<C::Fp6C>,
    /// Coefficient of `w`.
    pub c1: Fp6<C::Fp6C>,
    #[doc(hidden)]
    pub _marker: PhantomData<C>,
}

impl<C: Fp12Config> Fp12<C> {
    /// Builds an element from its two `Fp6` coefficients.
    pub fn new(c0: Fp6<C::Fp6C>, c1: Fp6<C::Fp6C>) -> Self {
        Self {
            c0,
            c1,
            _marker: PhantomData,
        }
    }

    /// Conjugation `c0 − c1·w` — the `p⁶`-Frobenius, and the inverse on the
    /// cyclotomic subgroup (unitary elements).
    pub fn conjugate(&self) -> Self {
        Self::new(self.c0, -self.c1)
    }

    /// `p^power`-Frobenius endomorphism.
    pub fn frobenius_map(&self, power: usize) -> Self {
        let c0 = self.c0.frobenius_map(power);
        let c1 = self.c1.frobenius_map(power);
        let coeff = C::frobenius_c1(power % 12);
        Self::new(c0, Fp6::new(c1.c0 * coeff, c1.c1 * coeff, c1.c2 * coeff))
    }

    /// Sparse multiplication by an element with coefficients
    /// `(c0, c1, 0; c3=0, c4, 0)` in the line-evaluation shape `(ell_0, ell_vw, ell_vv)`
    /// used by Miller loops: `self * (a + b·v·w... )`.
    ///
    /// We keep the general multiply for clarity; pairings here are
    /// correctness infrastructure, not a benchmarked hot path.
    pub fn mul_by_line(
        &self,
        l00: Fp2<<C::Fp6C as Fp6Config>::Fp2C>,
        l11: Fp2<<C::Fp6C as Fp6Config>::Fp2C>,
        l12: Fp2<<C::Fp6C as Fp6Config>::Fp2C>,
    ) -> Self {
        let other = Self::new(
            Fp6::new(l00, Fp2::zero(), Fp2::zero()),
            Fp6::new(l11, l12, Fp2::zero()),
        );
        *self * other
    }
}

impl<C: Fp12Config> fmt::Display for Fp12<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} + {}*w)", self.c0, self.c1)
    }
}

impl<C: Fp12Config> Add for Fp12<C> {
    type Output = Self;
    fn add(self, o: Self) -> Self {
        Self::new(self.c0 + o.c0, self.c1 + o.c1)
    }
}
impl<'a, C: Fp12Config> Add<&'a Fp12<C>> for Fp12<C> {
    type Output = Self;
    fn add(self, o: &'a Self) -> Self {
        self + *o
    }
}
impl<C: Fp12Config> Sub for Fp12<C> {
    type Output = Self;
    fn sub(self, o: Self) -> Self {
        Self::new(self.c0 - o.c0, self.c1 - o.c1)
    }
}
impl<'a, C: Fp12Config> Sub<&'a Fp12<C>> for Fp12<C> {
    type Output = Self;
    fn sub(self, o: &'a Self) -> Self {
        self - *o
    }
}
impl<C: Fp12Config> Mul for Fp12<C> {
    type Output = Self;
    #[inline]
    fn mul(self, o: Self) -> Self {
        // Karatsuba with w² = v.
        let v0 = self.c0 * o.c0;
        let v1 = self.c1 * o.c1;
        let c0 = v0 + v1.mul_by_nonresidue();
        let c1 = (self.c0 + self.c1) * (o.c0 + o.c1) - v0 - v1;
        Self::new(c0, c1)
    }
}
impl<'a, C: Fp12Config> Mul<&'a Fp12<C>> for Fp12<C> {
    type Output = Self;
    fn mul(self, o: &'a Self) -> Self {
        self * *o
    }
}
impl<C: Fp12Config> Neg for Fp12<C> {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.c0, -self.c1)
    }
}
impl<C: Fp12Config> AddAssign for Fp12<C> {
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}
impl<C: Fp12Config> SubAssign for Fp12<C> {
    fn sub_assign(&mut self, o: Self) {
        *self = *self - o;
    }
}
impl<C: Fp12Config> MulAssign for Fp12<C> {
    fn mul_assign(&mut self, o: Self) {
        *self = *self * o;
    }
}
impl<C: Fp12Config> Sum for Fp12<C> {
    fn sum<I: Iterator<Item = Self>>(it: I) -> Self {
        it.fold(Self::zero(), |a, b| a + b)
    }
}
impl<C: Fp12Config> Product for Fp12<C> {
    fn product<I: Iterator<Item = Self>>(it: I) -> Self {
        it.fold(Self::one(), |a, b| a * b)
    }
}

impl<C: Fp12Config> Field for Fp12<C> {
    fn zero() -> Self {
        Self::new(Fp6::zero(), Fp6::zero())
    }
    fn one() -> Self {
        Self::new(Fp6::one(), Fp6::zero())
    }
    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }
    fn square(&self) -> Self {
        // Complex squaring with w² = v.
        let v0 = self.c0 * self.c1;
        let c0 = (self.c0 + self.c1) * (self.c0 + self.c1.mul_by_nonresidue())
            - v0
            - v0.mul_by_nonresidue();
        let c1 = v0.double();
        Self::new(c0, c1)
    }
    fn double(&self) -> Self {
        Self::new(self.c0.double(), self.c1.double())
    }
    fn inverse(&self) -> Option<Self> {
        let t = self.c0.square() - self.c1.square().mul_by_nonresidue();
        t.inverse()
            .map(|tinv| Self::new(self.c0 * tinv, -(self.c1 * tinv)))
    }
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::new(Fp6::random(rng), Fp6::random(rng))
    }
    fn from_u64(x: u64) -> Self {
        Self::new(Fp6::from_u64(x), Fp6::zero())
    }
    fn characteristic() -> Vec<u64> {
        Fp6::<C::Fp6C>::characteristic()
    }
    fn extension_degree() -> usize {
        12
    }
}
