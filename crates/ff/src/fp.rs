//! Static Montgomery-form prime fields `Fp<P, N>`.
//!
//! A field is declared by implementing [`FpParams`] with just the modulus, a
//! small multiplicative generator (quadratic non-residue) and the 2-adicity.
//! All Montgomery constants (`R`, `R²`, `-p⁻¹ mod 2⁶⁴`) are derived at
//! compile time by `const fn`; the two-adic root of unity is derived lazily
//! at first use and cached.
//!
//! The multiplication kernel is the CIOS (Coarsely Integrated Operand
//! Scanning) Montgomery multiplication the paper's finite-field library is
//! built around (§4.3), specialized per limb count by monomorphization.

use crate::bigint::{adc, mac, sbb, BigInt};
use crate::traits::{Field, PrimeField};
use core::fmt;
use core::hash::{Hash, Hasher};
use core::iter::{Product, Sum};
use core::marker::PhantomData;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use rand::Rng;

/// Compile-time parameters of a prime field with `N` 64-bit limbs.
///
/// Only the modulus and two small seeds are supplied; everything else is
/// derived. Implementors are zero-sized marker types.
pub trait FpParams<const N: usize>:
    'static
    + Copy
    + Clone
    + Default
    + PartialEq
    + Eq
    + Send
    + Sync
    + core::fmt::Debug
    + core::hash::Hash
{
    /// The prime modulus.
    const MODULUS: BigInt<N>;
    /// Largest `s` such that `2^s` divides `MODULUS - 1`.
    const TWO_ADICITY: u32;
    /// A small multiplicative generator of the field (must be a quadratic
    /// non-residue); verified by `Fp::<Self, N>::self_check()` in tests.
    const GENERATOR: u64;
    /// Human-readable field name for diagnostics.
    const NAME: &'static str;
}

/// `-p^{-1} mod 2^64` for CIOS reduction.
pub const fn mont_inv<const N: usize>(modulus: &BigInt<N>) -> u64 {
    // Newton iteration doubles correct low bits each step; p0 is odd.
    let p0 = modulus.0[0];
    let mut inv = 1u64;
    let mut i = 0;
    while i < 63 {
        inv = inv.wrapping_mul(inv).wrapping_mul(p0);
        i += 1;
    }
    inv.wrapping_neg()
}

/// `2^(64·N·pow) mod p` computed by repeated doubling (const-friendly).
pub const fn compute_r<const N: usize>(modulus: &BigInt<N>, pow: usize) -> BigInt<N> {
    // Start from 1 and double 64*N*pow times, reducing mod p.
    let mut acc = BigInt::<N>::ONE;
    // Reduce the initial 1 is unnecessary (p > 1).
    let total = 64 * N * pow;
    let mut i = 0;
    while i < total {
        let (doubled, carry) = acc.const_double();
        acc = doubled;
        // If we overflowed 2^(64N) or acc >= p, subtract p.
        if carry != 0 || acc.const_cmp(modulus) >= 0 {
            let (r, _) = acc.const_sub(modulus);
            acc = r;
        }
        i += 1;
    }
    acc
}

/// An element of the prime field defined by `P`, stored in Montgomery form.
///
/// # Examples
///
/// ```
/// use gzkp_ff::{Field, PrimeField};
/// use gzkp_ff::fields::Fr254;
/// let a = Fr254::from_u64(3);
/// let b = a.inverse().unwrap();
/// assert_eq!(a * b, Fr254::one());
/// ```
pub struct Fp<P, const N: usize>(pub BigInt<N>, pub PhantomData<P>);

impl<P: FpParams<N>, const N: usize> Fp<P, N> {
    /// `R = 2^(64N) mod p` — the Montgomery form of one.
    pub const R: BigInt<N> = compute_r::<N>(&P::MODULUS, 1);
    /// `R² mod p` — used to convert into Montgomery form.
    pub const R2: BigInt<N> = compute_r::<N>(&P::MODULUS, 2);
    /// `-p^{-1} mod 2^64`.
    pub const INV: u64 = mont_inv::<N>(&P::MODULUS);

    /// The zero element.
    pub const ZERO: Self = Self(BigInt::ZERO, PhantomData);
    /// The one element (Montgomery form of 1).
    pub const ONE: Self = Self(Self::R, PhantomData);

    /// Constructs from a raw Montgomery-form representation.
    ///
    /// Intended for constants and serialization internals; prefer
    /// [`Field::from_u64`] / [`PrimeField::from_limbs`] elsewhere.
    pub const fn from_mont_limbs(limbs: [u64; N]) -> Self {
        Self(BigInt(limbs), PhantomData)
    }

    /// The raw Montgomery representation.
    pub const fn mont_limbs(&self) -> &BigInt<N> {
        &self.0
    }

    /// CIOS Montgomery multiplication: computes `a * b * R^{-1} mod p`.
    #[inline]
    fn mont_mul(a: &BigInt<N>, b: &BigInt<N>) -> BigInt<N> {
        let m = &P::MODULUS.0;
        let mut t = [0u64; N];
        let mut t_n = 0u64;
        let mut t_n1;
        for i in 0..N {
            let bi = b.0[i];
            let mut carry = 0u64;
            for (tj, &aj) in t.iter_mut().zip(a.0.iter()) {
                let (lo, hi) = mac(*tj, aj, bi, carry);
                *tj = lo;
                carry = hi;
            }
            let (lo, hi) = adc(t_n, carry, 0);
            t_n = lo;
            t_n1 = hi;

            let k = t[0].wrapping_mul(Self::INV);
            let (_, mut carry) = mac(t[0], k, m[0], 0);
            for j in 1..N {
                let (lo, hi) = mac(t[j], k, m[j], carry);
                t[j - 1] = lo;
                carry = hi;
            }
            let (lo, hi) = adc(t_n, carry, 0);
            t[N - 1] = lo;
            t_n = t_n1 + hi;
        }
        let mut out = BigInt(t);
        if t_n != 0 || out.const_cmp(&P::MODULUS) >= 0 {
            let (r, _) = out.const_sub(&P::MODULUS);
            out = r;
        }
        out
    }

    /// Reduces a value already `< 2p` after addition.
    #[inline]
    fn reduce(mut v: BigInt<N>, carry: u64) -> BigInt<N> {
        if carry != 0 || v.const_cmp(&P::MODULUS) >= 0 {
            let (r, _) = v.const_sub(&P::MODULUS);
            v = r;
        }
        v
    }

    /// Montgomery squaring (currently delegates to `mont_mul`; the dedicated
    /// SOS squaring saves ~25% and is modelled separately in the GPU cost
    /// tables).
    #[inline]
    fn mont_square(a: &BigInt<N>) -> BigInt<N> {
        Self::mont_mul(a, a)
    }

    /// Verifies derived constants and parameter sanity. Called from tests of
    /// every concrete field.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent (wrong 2-adicity, generator
    /// is a quadratic residue, modulus even, ...).
    pub fn self_check() {
        assert!(P::MODULUS.is_odd(), "{}: modulus must be odd", P::NAME);
        // 2-adicity: 2^TWO_ADICITY divides p-1, 2^(TWO_ADICITY+1) does not.
        let (pm1, _) = P::MODULUS.const_sub(&BigInt::ONE);
        let mut t = pm1;
        for _ in 0..P::TWO_ADICITY {
            assert!(t.is_even(), "{}: 2-adicity overstated", P::NAME);
            t.div2();
        }
        assert!(t.is_odd(), "{}: 2-adicity understated", P::NAME);
        // Generator must be a non-residue: g^((p-1)/2) == -1.
        let mut half = pm1;
        half.div2();
        let g = Self::from_u64(P::GENERATOR);
        let legendre = g.pow(&half.0);
        assert_eq!(
            legendre,
            -Self::ONE,
            "{}: GENERATOR {} is a quadratic residue",
            P::NAME,
            P::GENERATOR
        );
        // Root of unity has exact order 2^TWO_ADICITY.
        let root = Self::two_adic_root_of_unity();
        let mut w = root;
        for _ in 0..P::TWO_ADICITY - 1 {
            w = w.square();
        }
        assert_ne!(w, Self::ONE, "{}: root order too small", P::NAME);
        assert_eq!(w.square(), Self::ONE, "{}: root order too large", P::NAME);
    }
}

// --- manual trait impls (avoid bounds-on-derive problems with PhantomData) ---

impl<P: FpParams<N>, const N: usize> Copy for Fp<P, N> {}
impl<P: FpParams<N>, const N: usize> Clone for Fp<P, N> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<P: FpParams<N>, const N: usize> PartialEq for Fp<P, N> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl<P: FpParams<N>, const N: usize> Eq for Fp<P, N> {}
impl<P: FpParams<N>, const N: usize> Hash for Fp<P, N> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0 .0.hash(state);
    }
}
impl<P: FpParams<N>, const N: usize> Default for Fp<P, N> {
    fn default() -> Self {
        Self::ZERO
    }
}
impl<P: FpParams<N>, const N: usize> PartialOrd for Fp<P, N> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P: FpParams<N>, const N: usize> Ord for Fp<P, N> {
    /// Compares by canonical (non-Montgomery) integer representation.
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        let a = Self::mont_mul(&self.0, &BigInt::ONE);
        let b = Self::mont_mul(&other.0, &BigInt::ONE);
        a.cmp(&b)
    }
}

impl<P: FpParams<N>, const N: usize> fmt::Debug for Fp<P, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let canon = Self::mont_mul(&self.0, &BigInt::ONE);
        write!(f, "{}({})", P::NAME, canon.to_hex())
    }
}

impl<P: FpParams<N>, const N: usize> fmt::Display for Fp<P, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let canon = Self::mont_mul(&self.0, &BigInt::ONE);
        write!(f, "{}", canon.to_hex())
    }
}

impl<P: FpParams<N>, const N: usize> Add for Fp<P, N> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        let (sum, carry) = self.0.const_add(&rhs.0);
        Self(Self::reduce(sum, carry), PhantomData)
    }
}
impl<'a, P: FpParams<N>, const N: usize> Add<&'a Fp<P, N>> for Fp<P, N> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: &'a Self) -> Self {
        self + *rhs
    }
}
impl<P: FpParams<N>, const N: usize> Sub for Fp<P, N> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        let (diff, borrow) = self.0.const_sub(&rhs.0);
        if borrow != 0 {
            let (fixed, _) = diff.const_add(&P::MODULUS);
            Self(fixed, PhantomData)
        } else {
            Self(diff, PhantomData)
        }
    }
}
impl<'a, P: FpParams<N>, const N: usize> Sub<&'a Fp<P, N>> for Fp<P, N> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: &'a Self) -> Self {
        self - *rhs
    }
}
impl<P: FpParams<N>, const N: usize> Mul for Fp<P, N> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self(Self::mont_mul(&self.0, &rhs.0), PhantomData)
    }
}
impl<'a, P: FpParams<N>, const N: usize> Mul<&'a Fp<P, N>> for Fp<P, N> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: &'a Self) -> Self {
        self * *rhs
    }
}
impl<P: FpParams<N>, const N: usize> Neg for Fp<P, N> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        if self.0.is_zero() {
            self
        } else {
            let (r, _) = P::MODULUS.const_sub(&self.0);
            Self(r, PhantomData)
        }
    }
}
impl<P: FpParams<N>, const N: usize> AddAssign for Fp<P, N> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl<P: FpParams<N>, const N: usize> SubAssign for Fp<P, N> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl<P: FpParams<N>, const N: usize> MulAssign for Fp<P, N> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}
impl<P: FpParams<N>, const N: usize> Sum for Fp<P, N> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}
impl<P: FpParams<N>, const N: usize> Product for Fp<P, N> {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, |a, b| a * b)
    }
}

impl<P: FpParams<N>, const N: usize> Field for Fp<P, N> {
    fn zero() -> Self {
        Self::ZERO
    }
    fn one() -> Self {
        Self::ONE
    }
    fn is_zero(&self) -> bool {
        self.0.is_zero()
    }
    #[inline]
    fn square(&self) -> Self {
        Self(Self::mont_square(&self.0), PhantomData)
    }
    #[inline]
    fn double(&self) -> Self {
        let (d, carry) = self.0.const_double();
        Self(Self::reduce(d, carry), PhantomData)
    }

    /// Binary extended-Euclid inversion in the Montgomery domain
    /// (Guajardo–Kumar–Paar–Pelzl variant): for input `aR` produces `a⁻¹R`.
    fn inverse(&self) -> Option<Self> {
        if self.is_zero() {
            return None;
        }
        let one = BigInt::<N>::ONE;
        let mut u = self.0;
        let mut v = P::MODULUS;
        let mut b = Self(Self::R2, PhantomData); // tracks u's cofactor
        let mut c = Self::ZERO; // tracks v's cofactor
        while u != one && v != one {
            while u.is_even() {
                u.div2();
                if b.0.is_even() {
                    b.0.div2();
                } else {
                    let carry = b.0.add_with_carry(&P::MODULUS);
                    b.0.div2_with_top_bit(carry);
                }
            }
            while v.is_even() {
                v.div2();
                if c.0.is_even() {
                    c.0.div2();
                } else {
                    let carry = c.0.add_with_carry(&P::MODULUS);
                    c.0.div2_with_top_bit(carry);
                }
            }
            if u.const_cmp(&v) >= 0 {
                u.sub_with_borrow(&v);
                b -= c;
            } else {
                v.sub_with_borrow(&u);
                c -= b;
            }
        }
        Some(if u == one { b } else { c })
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Rejection sampling on the canonical range, then convert to
        // Montgomery form by multiplying with R².
        loop {
            let mut limbs = [0u64; N];
            for l in limbs.iter_mut() {
                *l = rng.gen();
            }
            // Mask the top limb down to the modulus bit length to make the
            // accept probability at least 1/2.
            let top_bits = P::MODULUS.num_bits() as usize - 64 * (N - 1);
            if top_bits < 64 {
                limbs[N - 1] &= (1u64 << top_bits) - 1;
            }
            let candidate = BigInt(limbs);
            if candidate.const_cmp(&P::MODULUS) < 0 {
                return Self(Self::mont_mul(&candidate, &Self::R2), PhantomData);
            }
        }
    }

    fn from_u64(x: u64) -> Self {
        Self(Self::mont_mul(&BigInt::from_u64(x), &Self::R2), PhantomData)
    }

    fn characteristic() -> Vec<u64> {
        P::MODULUS.0.to_vec()
    }
}

impl<P: FpParams<N>, const N: usize> PrimeField for Fp<P, N> {
    const NUM_LIMBS: usize = N;
    const MODULUS_BITS: u32 = P::MODULUS.num_bits();
    const TWO_ADICITY: u32 = P::TWO_ADICITY;

    fn to_limbs(&self) -> Vec<u64> {
        Self::mont_mul(&self.0, &BigInt::ONE).0.to_vec()
    }

    fn from_limbs(limbs: &[u64]) -> Option<Self> {
        if limbs.len() > N && limbs[N..].iter().any(|&l| l != 0) {
            return None;
        }
        let mut arr = [0u64; N];
        arr[..limbs.len().min(N)].copy_from_slice(&limbs[..limbs.len().min(N)]);
        let v = BigInt(arr);
        if v.const_cmp(&P::MODULUS) >= 0 {
            return None;
        }
        Some(Self(Self::mont_mul(&v, &Self::R2), PhantomData))
    }

    fn two_adic_root_of_unity() -> Self {
        // g^((p-1)/2^s); cached per concrete field via a type-keyed map is
        // overkill — the pow is ~MODULUS_BITS squarings, and every NTT caller
        // caches twiddles anyway.
        let (pm1, _) = P::MODULUS.const_sub(&BigInt::ONE);
        let mut exp = pm1;
        for _ in 0..P::TWO_ADICITY {
            exp.div2();
        }
        Self::from_u64(P::GENERATOR).pow(&exp.0)
    }

    fn multiplicative_generator() -> Self {
        Self::from_u64(P::GENERATOR)
    }

    /// Tonelli–Shanks square root.
    fn sqrt(&self) -> Option<Self> {
        if self.is_zero() {
            return Some(*self);
        }
        // Legendre symbol check: a^((p-1)/2) must be 1.
        let (pm1, _) = P::MODULUS.const_sub(&BigInt::ONE);
        let mut half = pm1;
        half.div2();
        if self.pow(&half.0) != Self::ONE {
            return None;
        }
        // Write p - 1 = q * 2^s with q odd.
        let mut q = pm1;
        for _ in 0..P::TWO_ADICITY {
            q.div2();
        }
        let mut z = Self::two_adic_root_of_unity();
        let mut m = P::TWO_ADICITY;
        let mut t = self.pow(&q.0);
        // r = a^((q+1)/2)
        let (q1, _) = q.const_add(&BigInt::ONE);
        let mut q1h = q1;
        q1h.div2();
        let mut r = self.pow(&q1h.0);
        while t != Self::ONE {
            // Find least i with t^(2^i) = 1.
            let mut i = 0u32;
            let mut t2 = t;
            while t2 != Self::ONE {
                t2 = t2.square();
                i += 1;
                if i == m {
                    return None;
                }
            }
            let mut b = z;
            for _ in 0..(m - i - 1) {
                b = b.square();
            }
            m = i;
            z = b.square();
            t *= z;
            r *= b;
        }
        debug_assert_eq!(r.square(), *self);
        Some(r)
    }
}

// --- serde: canonical little-endian limb encoding ---

impl<P: FpParams<N>, const N: usize> serde::Serialize for Fp<P, N> {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.to_limbs().serialize(serializer)
    }
}

impl<'de, P: FpParams<N>, const N: usize> serde::Deserialize<'de> for Fp<P, N> {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let limbs = Vec::<u64>::deserialize(deserializer)?;
        Self::from_limbs(&limbs)
            .ok_or_else(|| serde::de::Error::custom("field element out of range"))
    }
}

/// Subtraction helper exposing the raw borrow; used by extension-field
/// lazy-reduction experiments.
#[inline]
pub fn raw_sub<const N: usize>(a: &BigInt<N>, b: &BigInt<N>) -> (BigInt<N>, u64) {
    let mut out = *a;
    let mut borrow = 0;
    for i in 0..N {
        let (lo, bo) = sbb(out.0[i], b.0[i], borrow);
        out.0[i] = lo;
        borrow = bo;
    }
    (out, borrow)
}
