//! Core field traits shared by the whole workspace.

use core::fmt::{Debug, Display};
use core::hash::Hash;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use rand::Rng;

/// An element of a finite field (prime field or extension tower).
///
/// The trait deliberately stays small: it is what the NTT, MSM, curve and
/// Groth16 layers need, nothing more. All implementors are plain-old-data
/// (`Copy`) and thread-safe.
pub trait Field:
    'static
    + Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + Eq
    + Hash
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + for<'a> Add<&'a Self, Output = Self>
    + for<'a> Sub<&'a Self, Output = Self>
    + for<'a> Mul<&'a Self, Output = Self>
    + Sum<Self>
    + Product<Self>
{
    /// The additive identity.
    fn zero() -> Self;

    /// The multiplicative identity.
    fn one() -> Self;

    /// Whether this element is the additive identity.
    fn is_zero(&self) -> bool;

    /// Whether this element is the multiplicative identity.
    fn is_one(&self) -> bool {
        *self == Self::one()
    }

    /// `self * self`.
    fn square(&self) -> Self;

    /// `self + self`.
    fn double(&self) -> Self;

    /// Multiplicative inverse, or `None` for zero.
    fn inverse(&self) -> Option<Self>;

    /// Exponentiation by a little-endian u64-limb exponent.
    fn pow(&self, exp: &[u64]) -> Self {
        let mut res = Self::one();
        let mut found_one = false;
        for i in (0..64 * exp.len()).rev() {
            if found_one {
                res = res.square();
            }
            if (exp[i / 64] >> (i % 64)) & 1 == 1 {
                res *= *self;
                found_one = true;
            }
        }
        res
    }

    /// Uniformly random element.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;

    /// Embeds a small integer.
    fn from_u64(x: u64) -> Self;

    /// Characteristic of the field as little-endian limbs.
    fn characteristic() -> Vec<u64>;

    /// Extension degree over the prime subfield (1 for `Fp`, 2 for `Fp2`, …).
    /// Cost models use this to price extension-field arithmetic.
    fn extension_degree() -> usize {
        1
    }

    /// 64-bit limbs of one prime-subfield element (cost-model keying).
    fn base_limbs() -> usize {
        Self::characteristic().len()
    }
}

/// A prime field `F_p`, with the extra structure the NTT/MSM/Groth16 stack
/// relies on: a canonical integer representation, two-adic roots of unity,
/// and square roots.
pub trait PrimeField: Field + PartialOrd + Ord {
    /// Number of 64-bit limbs in the canonical representation.
    const NUM_LIMBS: usize;

    /// Bits in the modulus (254 for ALT-BN128 Fr, 255 BLS12-381 Fr, 753 for T753 Fq).
    const MODULUS_BITS: u32;

    /// Largest `s` with `2^s | p - 1`; the field supports NTTs up to size `2^s`.
    const TWO_ADICITY: u32;

    /// Canonical little-endian limb representation (out of Montgomery form).
    fn to_limbs(&self) -> Vec<u64>;

    /// Builds an element from little-endian limbs; `None` if `>= p`.
    fn from_limbs(limbs: &[u64]) -> Option<Self>;

    /// A generator of the `2^TWO_ADICITY` roots of unity.
    fn two_adic_root_of_unity() -> Self;

    /// Returns a primitive `n`-th root of unity for power-of-two `n`,
    /// or `None` when `n` exceeds `2^TWO_ADICITY`.
    fn root_of_unity(n: u64) -> Option<Self> {
        if !n.is_power_of_two() {
            return None;
        }
        let log_n = n.trailing_zeros();
        if log_n > Self::TWO_ADICITY {
            return None;
        }
        let mut omega = Self::two_adic_root_of_unity();
        for _ in log_n..Self::TWO_ADICITY {
            omega = omega.square();
        }
        Some(omega)
    }

    /// A fixed multiplicative generator (quadratic non-residue).
    fn multiplicative_generator() -> Self;

    /// Square root via Tonelli–Shanks, if one exists.
    fn sqrt(&self) -> Option<Self>;

    /// Whether the canonical representation is larger than `(p-1)/2`.
    fn is_odd_repr(&self) -> bool {
        self.to_limbs()[0] & 1 == 1
    }
}

/// Batch inversion via Montgomery's trick: inverts all non-zero entries in
/// place using a single field inversion and `3(n-1)` multiplications.
/// Zero entries are left untouched.
///
/// # Examples
///
/// ```
/// # use gzkp_ff::{Field, batch_inverse};
/// # use gzkp_ff::fields::Fr254;
/// let mut v = vec![Fr254::from_u64(2), Fr254::zero(), Fr254::from_u64(8)];
/// batch_inverse(&mut v);
/// assert_eq!(v[0] * Fr254::from_u64(2), Fr254::one());
/// assert!(v[1].is_zero());
/// ```
pub fn batch_inverse<F: Field>(values: &mut [F]) {
    batch_inverse_count(values);
}

/// [`batch_inverse`] that also reports how many non-zero entries were
/// inverted — i.e. how many individual field inversions Montgomery's
/// trick amortized into the single one performed here. The MSM's
/// batch-affine accumulator feeds the count into its savings telemetry.
pub fn batch_inverse_count<F: Field>(values: &mut [F]) -> usize {
    // Prefix products of the non-zero entries.
    let mut prod = Vec::with_capacity(values.len());
    let mut acc = F::one();
    for v in values.iter() {
        if !v.is_zero() {
            prod.push(acc);
            acc *= *v;
        }
    }
    let inverted = prod.len();
    let mut inv = match acc.inverse() {
        Some(i) => i,
        None => return 0, // all zero
    };
    for v in values.iter_mut().rev() {
        if v.is_zero() {
            continue;
        }
        let p = prod.pop().expect("prefix product stack in sync");
        let new_v = inv * p;
        inv *= *v;
        *v = new_v;
    }
    inverted
}
