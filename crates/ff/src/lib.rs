//! # gzkp-ff — finite-field substrate
//!
//! Large-prime-field arithmetic for the GZKP reproduction (see the
//! workspace `DESIGN.md`). The paper's proof generation is dominated by
//! modular multiplications and additions of 256-/381-/753-bit integers
//! (§1, §4.3); this crate provides:
//!
//! * [`bigint`] — fixed-width `[u64; N]` big integers;
//! * [`fp`] — static Montgomery prime fields with compile-time derived
//!   constants, instantiated for all paper fields in [`fields`];
//! * [`dynmont`] — dynamic-modulus arithmetic (parameter generation,
//!   pairing exponents);
//! * [`dfp`] — the paper's §4.3 floating-point multiplier backend
//!   (Dekker/FMA error-free transforms), bit-equal to the integer path;
//! * [`ext`] — the `Fp2`/`Fp6`/`Fp12` towers pairings are built on.
//!
//! ## Quickstart
//!
//! ```
//! use gzkp_ff::{Field, PrimeField};
//! use gzkp_ff::fields::Fr254;
//!
//! let a = Fr254::from_u64(6);
//! let b = Fr254::from_u64(7);
//! assert_eq!((a * b).to_limbs()[0], 42);
//!
//! // NTT-friendliness: a primitive 2^10-th root of unity.
//! let w = Fr254::root_of_unity(1 << 10).unwrap();
//! assert_eq!(w.pow(&[1 << 10]), Fr254::one());
//! ```

#![warn(missing_docs)]

pub mod bigint;
pub mod dfp;
pub mod dynmont;
pub mod ext;
pub mod fields;
pub mod fp;
pub mod poly;
pub mod traits;

pub use bigint::BigInt;
pub use fp::{Fp, FpParams};
pub use traits::{batch_inverse, batch_inverse_count, Field, PrimeField};
