//! Floating-point large-integer multiplication backend (paper §4.3).
//!
//! GZKP's finite-field library exploits the GPU's floating-point units —
//! otherwise idle during integer-heavy ZKP workloads — for modular
//! multiplication. Large integers are split into base-2⁵² limbs, converted
//! to `f64`, and multiplied with *error-free transformations* (Dekker's
//! two-product, realized here through FMA), so no rounding is ever lost.
//!
//! This module is the CPU realization of that backend:
//!
//! * [`two_product`] / [`two_sum`] — the error-free building blocks;
//! * [`DfpInt`] — a base-2⁵² float-limb integer;
//! * [`dfp_full_mul`] — exact widening multiplication where every partial
//!   product is formed by the FP pipeline;
//! * [`DfpField`] — a wrapper executing a full modular multiplication with
//!   the FP multiplier plus integer Montgomery reduction, bit-for-bit equal
//!   to [`crate::fp::Fp`] (property-tested).
//!
//! In the GPU simulator the backend choice only changes the per-operation
//! *cost* (the "BG w. lib" and "w. lib" ablations of Figures 8 and 10); the
//! functional kernels always run the integer path. This module exists so the
//! claimed technique is actually implemented and verified, not just priced.

use crate::bigint::BigInt;
use crate::fp::{Fp, FpParams};
use core::marker::PhantomData;

/// Number of bits per floating-point limb (the paper chooses base `2^52`).
pub const DFP_LIMB_BITS: u32 = 52;
/// Mask with the low 52 bits set.
pub const DFP_LIMB_MASK: u64 = (1u64 << DFP_LIMB_BITS) - 1;

/// Dekker/FMA two-product: returns `(hi, lo)` with `hi + lo == a * b`
/// exactly, where `hi = fl(a*b)`.
///
/// Requires `a`, `b` integral with at most 52 significant bits each so that
/// both halves are exactly representable.
#[inline]
pub fn two_product(a: f64, b: f64) -> (f64, f64) {
    let hi = a * b;
    let lo = a.mul_add(b, -hi);
    (hi, lo)
}

/// Knuth two-sum: returns `(s, e)` with `s + e == a + b` exactly,
/// where `s = fl(a+b)`.
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// An unsigned integer stored as base-2⁵² limbs in `f64` values.
///
/// Every limb is an integer in `[0, 2^52)`, hence exactly representable.
#[derive(Debug, Clone, PartialEq)]
pub struct DfpInt {
    /// Little-endian base-2⁵² limbs.
    pub limbs: Vec<f64>,
}

impl DfpInt {
    /// Converts from 64-bit limbs (little-endian) into 52-bit float limbs.
    pub fn from_u64_limbs(limbs: &[u64]) -> Self {
        let total_bits = limbs.len() * 64;
        let n_limbs = total_bits.div_ceil(DFP_LIMB_BITS as usize);
        let mut out = Vec::with_capacity(n_limbs);
        for k in 0..n_limbs {
            let start = k * DFP_LIMB_BITS as usize;
            let limb = start / 64;
            let shift = start % 64;
            let mut v = limbs.get(limb).copied().unwrap_or(0) >> shift;
            if shift != 0 {
                v |= limbs.get(limb + 1).copied().unwrap_or(0) << (64 - shift);
            }
            out.push((v & DFP_LIMB_MASK) as f64);
        }
        Self { limbs: out }
    }

    /// Converts back to 64-bit limbs (little-endian), producing `out_len` limbs.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `out_len` limbs.
    pub fn to_u64_limbs(&self, out_len: usize) -> Vec<u64> {
        let mut out = vec![0u64; out_len];
        for (k, &f) in self.limbs.iter().enumerate() {
            let v = f as u64;
            debug_assert_eq!(v as f64, f, "limb not integral");
            let start = k * DFP_LIMB_BITS as usize;
            let limb = start / 64;
            let shift = start % 64;
            if limb < out_len {
                out[limb] |= v << shift;
            } else {
                assert_eq!(v, 0, "value does not fit in {out_len} limbs");
            }
            if shift + DFP_LIMB_BITS as usize > 64 {
                let hi = v >> (64 - shift);
                if limb + 1 < out_len {
                    out[limb + 1] |= hi;
                } else {
                    assert_eq!(hi, 0, "value does not fit in {out_len} limbs");
                }
            }
        }
        out
    }
}

/// Exact widening multiplication of two float-limb integers.
///
/// Each partial product is computed on the floating-point pipeline with
/// [`two_product`]; the exact `(hi, lo)` halves are accumulated per output
/// column in `i128` (the role the paper's carry-resolution pass plays on the
/// GPU) and carry-propagated back into base-2⁵² limbs.
pub fn dfp_full_mul(a: &DfpInt, b: &DfpInt) -> DfpInt {
    let n = a.limbs.len() + b.limbs.len();
    let mut cols = vec![0i128; n + 2];
    let scale = (1u128 << DFP_LIMB_BITS) as f64; // 2^52
    for (i, &ai) in a.limbs.iter().enumerate() {
        for (j, &bj) in b.limbs.iter().enumerate() {
            let (hi, lo) = two_product(ai, bj);
            // hi is a multiple of no particular power, but hi/2^52 splits it
            // across columns i+j and i+j+1 exactly: hi = h1*2^52 + h0 with
            // h1 = floor(hi / 2^52) exactly representable.
            let h1 = (hi / scale).floor();
            let h0 = hi - h1 * scale;
            cols[i + j] += h0 as i128;
            cols[i + j + 1] += h1 as i128;
            // |lo| < ulp(hi) <= 2^52, always fits one column.
            cols[i + j] += lo as i128;
        }
    }
    // Carry propagation in base 2^52 (signed-safe: lo terms can be negative).
    let mut out = Vec::with_capacity(n + 2);
    let base = 1i128 << DFP_LIMB_BITS;
    let mut carry: i128 = 0;
    for c in cols {
        let mut v = c + carry;
        carry = v.div_euclid(base);
        v = v.rem_euclid(base);
        out.push(v as f64);
    }
    assert_eq!(carry, 0, "dfp_full_mul overflow");
    while out.len() > 1 && *out.last().unwrap() == 0.0 {
        out.pop();
    }
    DfpInt { limbs: out }
}

/// A modular-multiplication engine that routes the O(m²) multiply through
/// the floating-point pipeline and reduces with integer Montgomery REDC.
///
/// Produces results bit-identical to [`Fp`]'s integer CIOS path.
#[derive(Debug, Default, Clone, Copy)]
pub struct DfpField<P, const N: usize>(PhantomData<P>);

impl<P: FpParams<N>, const N: usize> DfpField<P, N> {
    /// Multiplies two field elements using the floating-point multiplier.
    ///
    /// Inputs and output are in Montgomery form, matching `Fp`'s invariant.
    pub fn mul(a: Fp<P, N>, b: Fp<P, N>) -> Fp<P, N> {
        // 1. Full 2N-limb product on the FP pipeline.
        let fa = DfpInt::from_u64_limbs(&a.0 .0);
        let fb = DfpInt::from_u64_limbs(&b.0 .0);
        let prod = dfp_full_mul(&fa, &fb);
        let wide = prod.to_u64_limbs(2 * N);
        // 2. Integer Montgomery reduction (textbook REDC on the wide product).
        Fp(Self::redc(&wide), PhantomData)
    }

    /// Textbook Montgomery reduction of a `2N`-limb value `< p·R`.
    fn redc(wide: &[u64]) -> BigInt<N> {
        use crate::bigint::{adc, mac};
        let m = &P::MODULUS.0;
        let inv = Fp::<P, N>::INV;
        let mut t = wide.to_vec();
        t.push(0);
        let mut carry2 = 0u64;
        for i in 0..N {
            let k = t[i].wrapping_mul(inv);
            let (_, mut carry) = mac(t[i], k, m[0], 0);
            for j in 1..N {
                let (lo, hi) = mac(t[i + j], k, m[j], carry);
                t[i + j] = lo;
                carry = hi;
            }
            let (lo, c) = adc(t[i + N], carry, carry2);
            t[i + N] = lo;
            carry2 = c;
        }
        let mut out = [0u64; N];
        out.copy_from_slice(&t[N..2 * N]);
        let mut r = BigInt(out);
        if carry2 != 0 || t[2 * N] != 0 || r.const_cmp(&P::MODULUS) >= 0 {
            let (s, _) = r.const_sub(&P::MODULUS);
            r = s;
        }
        r
    }

    /// Squares a field element on the FP pipeline.
    pub fn square(a: Fp<P, N>) -> Fp<P, N> {
        Self::mul(a, a)
    }
}

/// Relative cost model of the two multiplier backends, by limb count.
///
/// The FP path issues `ceil(64m/52)²` FMA pairs against the integer path's
/// `m² + m(m+1)` 64×64 MULs, but on Volta-class parts the FP64/FP32 pipes
/// add throughput the integer units don't have, for a net gain the paper
/// reports as ~1.3–1.6× at ZKP bit widths. The GPU simulator consumes this
/// ratio; see `gzkp-gpu-sim::device`.
pub fn fp_backend_speedup(limbs_64: usize) -> f64 {
    match limbs_64 {
        0..=4 => 1.35, // 256-bit
        5..=6 => 1.45, // 381-bit
        _ => 1.6,      // 753-bit: integer-pipe pressure highest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::{Fq254, Fr254};
    use crate::traits::Field;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn two_product_exactness() {
        // 52-bit integral operands: hi+lo must equal the exact product.
        let a = ((1u64 << 52) - 3) as f64;
        let b = ((1u64 << 52) - 12345) as f64;
        let (hi, lo) = two_product(a, b);
        let exact = ((1u128 << 52) - 3) * ((1u128 << 52) - 12345);
        let recon = hi as i128 + lo as i128; // both halves integral here? hi may not be.
                                             // hi + lo is exact in real arithmetic; compare via i128 reconstruction
                                             // through column splitting as dfp_full_mul does.
        let scale = (1u128 << 52) as f64;
        let h1 = (hi / scale).floor();
        let h0 = hi - h1 * scale;
        let total = (h1 as i128) * (1i128 << 52) + h0 as i128 + lo as i128;
        assert_eq!(total as u128, exact);
        let _ = recon;
    }

    #[test]
    fn two_sum_exactness() {
        // fl(2^53 + 1) rounds to 2^53; two_sum must recover the lost 1.
        let a = 9007199254740992.0; // 2^53
        let b = 1.0;
        let (s, e) = two_sum(a, b);
        assert_eq!(s, 9007199254740992.0);
        assert_eq!(e, 1.0);
        // And a case with a negative error term.
        let (s2, e2) = two_sum(9007199254740992.0, 3.0);
        assert_eq!(s2, 9007199254740996.0); // rounds up (ties-to-even)
        assert_eq!(e2, -1.0);
    }

    #[test]
    fn dfpint_roundtrip() {
        let limbs = [
            0xdeadbeefcafebabe_u64,
            0x0123456789abcdef,
            0xffffffffffffffff,
            0x1,
        ];
        let d = DfpInt::from_u64_limbs(&limbs);
        assert_eq!(d.to_u64_limbs(4), limbs.to_vec());
    }

    #[test]
    fn full_mul_matches_integer() {
        let a = [0xffffffffffffffff_u64, 0xfffffffffffffffe];
        let b = [0x123456789abcdef0_u64, 0xfedcba9876543210];
        let fa = DfpInt::from_u64_limbs(&a);
        let fb = DfpInt::from_u64_limbs(&b);
        let prod = dfp_full_mul(&fa, &fb).to_u64_limbs(4);
        let ia = BigInt::<2>(a);
        let ib = BigInt::<2>(b);
        let (lo, hi) = ia.widening_mul(&ib);
        assert_eq!(&prod[..2], &lo.0);
        assert_eq!(&prod[2..], &hi.0);
    }

    #[test]
    fn dfp_field_mul_matches_cios() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let a = Fr254::random(&mut rng);
            let b = Fr254::random(&mut rng);
            assert_eq!(super::DfpField::mul(a, b), a * b);
        }
        for _ in 0..200 {
            let a = Fq254::random(&mut rng);
            let b = Fq254::random(&mut rng);
            assert_eq!(super::DfpField::mul(a, b), a * b);
        }
    }

    #[test]
    fn speedup_monotone_in_width() {
        assert!(fp_backend_speedup(12) >= fp_backend_speedup(6));
        assert!(fp_backend_speedup(6) >= fp_backend_speedup(4));
    }
}
