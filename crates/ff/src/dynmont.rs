//! Dynamic-width big-integer arithmetic with runtime moduli.
//!
//! The static fields in [`crate::fp`] need their modulus at compile time.
//! Two places in the system cannot provide that:
//!
//! 1. the offline parameter generator (`tools/genparams`) searching for the
//!    753-bit `T753` primes, which needs Miller–Rabin over candidate moduli;
//! 2. the pairing final exponentiation, whose hard-part exponent
//!    `(p⁴ − p² + 1) / r` is a ~762-bit integer computed at runtime.
//!
//! Numbers here are little-endian `Vec<u64>` with no required normalization
//! (trailing zero limbs are fine). A [`MontCtx`] provides fast modular
//! multiplication and exponentiation for any odd modulus.

use crate::bigint::{adc, mac, sbb};

/// Removes trailing zero limbs (keeps at least one limb).
pub fn normalize(v: &mut Vec<u64>) {
    while v.len() > 1 && *v.last().unwrap() == 0 {
        v.pop();
    }
}

/// Compares two little-endian limb slices as integers.
pub fn cmp_slices(a: &[u64], b: &[u64]) -> core::cmp::Ordering {
    let n = a.len().max(b.len());
    for i in (0..n).rev() {
        let ai = a.get(i).copied().unwrap_or(0);
        let bi = b.get(i).copied().unwrap_or(0);
        match ai.cmp(&bi) {
            core::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    core::cmp::Ordering::Equal
}

/// Returns `a + b`.
pub fn add(a: &[u64], b: &[u64]) -> Vec<u64> {
    let n = a.len().max(b.len());
    let mut out = Vec::with_capacity(n + 1);
    let mut carry = 0;
    for i in 0..n {
        let (lo, c) = adc(
            a.get(i).copied().unwrap_or(0),
            b.get(i).copied().unwrap_or(0),
            carry,
        );
        out.push(lo);
        carry = c;
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// Returns `a - b`.
///
/// # Panics
///
/// Panics if `b > a`.
pub fn sub(a: &[u64], b: &[u64]) -> Vec<u64> {
    assert!(
        cmp_slices(a, b) != core::cmp::Ordering::Less,
        "dynmont::sub underflow"
    );
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0;
    for (i, &ai) in a.iter().enumerate() {
        let (lo, bo) = sbb(ai, b.get(i).copied().unwrap_or(0), borrow);
        out.push(lo);
        borrow = bo;
    }
    debug_assert_eq!(borrow, 0);
    normalize(&mut out);
    out
}

/// Returns `a * b` (schoolbook).
pub fn mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u64;
        for (j, &bj) in b.iter().enumerate() {
            let (lo, hi) = mac(out[i + j], ai, bj, carry);
            out[i + j] = lo;
            carry = hi;
        }
        out[i + b.len()] = carry;
    }
    normalize(&mut out);
    out
}

/// Returns true if the value is zero.
pub fn is_zero(a: &[u64]) -> bool {
    a.iter().all(|&l| l == 0)
}

/// Number of significant bits.
pub fn num_bits(a: &[u64]) -> u32 {
    for i in (0..a.len()).rev() {
        if a[i] != 0 {
            return i as u32 * 64 + 64 - a[i].leading_zeros();
        }
    }
    0
}

/// Shifts left by `bits`.
pub fn shl(a: &[u64], bits: u32) -> Vec<u64> {
    let limb_shift = (bits / 64) as usize;
    let bit_shift = bits % 64;
    let mut out = vec![0u64; a.len() + limb_shift + 1];
    for (i, &limb) in a.iter().enumerate() {
        out[i + limb_shift] |= limb << bit_shift;
        if bit_shift != 0 {
            out[i + limb_shift + 1] |= limb >> (64 - bit_shift);
        }
    }
    normalize(&mut out);
    out
}

/// Shifts right by `bits`.
pub fn shr(a: &[u64], bits: u32) -> Vec<u64> {
    let limb_shift = (bits / 64) as usize;
    let bit_shift = bits % 64;
    if limb_shift >= a.len() {
        return vec![0];
    }
    let mut out = vec![0u64; a.len() - limb_shift];
    for i in 0..out.len() {
        out[i] = a[i + limb_shift] >> bit_shift;
        if bit_shift != 0 && i + limb_shift + 1 < a.len() {
            out[i] |= a[i + limb_shift + 1] << (64 - bit_shift);
        }
    }
    normalize(&mut out);
    out
}

/// Computes `(a / d, a % d)` by binary long division.
///
/// This is a simple shift-and-subtract division: O(bits · limbs). It is only
/// used on one-off computations (pairing exponent derivation, parameter
/// generation), never on hot paths.
///
/// # Panics
///
/// Panics if `d` is zero.
pub fn div_rem(a: &[u64], d: &[u64]) -> (Vec<u64>, Vec<u64>) {
    assert!(!is_zero(d), "division by zero");
    let abits = num_bits(a);
    let dbits = num_bits(d);
    if abits < dbits {
        let mut r = a.to_vec();
        normalize(&mut r);
        return (vec![0], r);
    }
    let mut rem = a.to_vec();
    normalize(&mut rem);
    let shift = abits - dbits;
    let mut quot = vec![0u64; (shift as usize / 64) + 1];
    let mut dd = shl(d, shift);
    for i in (0..=shift).rev() {
        if cmp_slices(&rem, &dd) != core::cmp::Ordering::Less {
            rem = sub(&rem, &dd);
            quot[i as usize / 64] |= 1u64 << (i % 64);
        }
        dd = shr(&dd, 1);
    }
    normalize(&mut quot);
    normalize(&mut rem);
    (quot, rem)
}

/// Reduces `a mod m`.
pub fn rem(a: &[u64], m: &[u64]) -> Vec<u64> {
    div_rem(a, m).1
}

/// A Montgomery multiplication context for an arbitrary odd modulus.
///
/// # Examples
///
/// ```
/// use gzkp_ff::dynmont::MontCtx;
/// let ctx = MontCtx::new(&[101]);
/// // 7^10 mod 101 == 65
/// assert_eq!(ctx.modpow(&[7], &[10]), vec![65]);
/// ```
#[derive(Debug, Clone)]
pub struct MontCtx {
    modulus: Vec<u64>,
    /// -m^{-1} mod 2^64
    inv: u64,
    /// R^2 mod m where R = 2^{64·len}
    r2: Vec<u64>,
    /// R mod m (Montgomery form of one)
    r1: Vec<u64>,
}

impl MontCtx {
    /// Builds a context for the given odd modulus.
    ///
    /// # Panics
    ///
    /// Panics if the modulus is even or zero.
    pub fn new(modulus: &[u64]) -> Self {
        let mut modulus = modulus.to_vec();
        normalize(&mut modulus);
        assert!(!is_zero(&modulus), "modulus must be nonzero");
        assert!(modulus[0] & 1 == 1, "modulus must be odd");
        let n = modulus.len();
        // inv = -modulus^{-1} mod 2^64 via Newton iteration.
        let mut inv = 1u64;
        for _ in 0..63 {
            inv = inv.wrapping_mul(inv).wrapping_mul(modulus[0]);
        }
        inv = inv.wrapping_neg();
        // R mod m and R^2 mod m by long division.
        let mut r_raw = vec![0u64; n + 1];
        r_raw[n] = 1;
        let r1 = rem(&r_raw, &modulus);
        let mut r2_raw = vec![0u64; 2 * n + 1];
        r2_raw[2 * n] = 1;
        let r2 = rem(&r2_raw, &modulus);
        Self {
            modulus,
            inv,
            r2,
            r1,
        }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &[u64] {
        &self.modulus
    }

    fn limbs(&self) -> usize {
        self.modulus.len()
    }

    fn pad(&self, a: &[u64]) -> Vec<u64> {
        let mut v = a.to_vec();
        v.resize(self.limbs(), 0);
        v
    }

    /// CIOS Montgomery multiplication of two padded, reduced operands.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let n = self.limbs();
        let m = &self.modulus;
        let mut t = vec![0u64; n + 2];
        for &bi in b.iter().take(n) {
            let mut carry = 0u64;
            for j in 0..n {
                let (lo, hi) = mac(t[j], a[j], bi, carry);
                t[j] = lo;
                carry = hi;
            }
            let (lo, hi) = adc(t[n], carry, 0);
            t[n] = lo;
            t[n + 1] = hi;
            let k = t[0].wrapping_mul(self.inv);
            let (_, mut carry) = mac(t[0], k, m[0], 0);
            for j in 1..n {
                let (lo, hi) = mac(t[j], k, m[j], carry);
                t[j - 1] = lo;
                carry = hi;
            }
            let (lo, hi) = adc(t[n], carry, 0);
            t[n - 1] = lo;
            t[n] = t[n + 1] + hi;
        }
        let mut out = t[..n].to_vec();
        if t[n] != 0 || cmp_slices(&out, m) != core::cmp::Ordering::Less {
            // subtract modulus once (t[n] can be at most 1)
            let mut borrow = 0;
            for j in 0..n {
                let (lo, bo) = sbb(out[j], m[j], borrow);
                out[j] = lo;
                borrow = bo;
            }
        }
        out
    }

    /// Converts to Montgomery form.
    pub fn to_mont(&self, a: &[u64]) -> Vec<u64> {
        let a = rem(a, &self.modulus);
        self.mont_mul(&self.pad(&a), &self.pad(&self.r2))
    }

    /// Converts out of Montgomery form.
    pub fn from_mont(&self, a: &[u64]) -> Vec<u64> {
        let mut one = vec![0u64; self.limbs()];
        one[0] = 1;
        let mut out = self.mont_mul(&self.pad(a), &one);
        normalize(&mut out);
        out
    }

    /// Modular multiplication of plain (non-Montgomery) values.
    pub fn mulmod(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// Modular exponentiation `base^exp mod m` of plain values.
    pub fn modpow(&self, base: &[u64], exp: &[u64]) -> Vec<u64> {
        let base_m = self.to_mont(base);
        let mut acc = self.pad(&self.r1); // 1 in Montgomery form
        let bits = num_bits(exp);
        for i in (0..bits).rev() {
            acc = self.mont_mul(&acc, &acc);
            if (exp[(i / 64) as usize] >> (i % 64)) & 1 == 1 {
                acc = self.mont_mul(&acc, &base_m);
            }
        }
        self.from_mont(&acc)
    }
}

/// Deterministic Miller–Rabin primality test.
///
/// Uses the first `rounds` small-prime bases plus a few pseudo-random bases
/// derived from the candidate itself, which is ample for the one-shot
/// parameter generation this crate performs (we are generating benchmark
/// parameters, not defending against adversarially chosen composites).
pub fn is_probable_prime(n: &[u64], rounds: usize) -> bool {
    let mut n = n.to_vec();
    normalize(&mut n);
    if is_zero(&n) {
        return false;
    }
    if n.len() == 1 {
        if n[0] < 2 {
            return false;
        }
        for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
            if n[0] == p {
                return true;
            }
            if n[0].is_multiple_of(p) {
                return false;
            }
        }
    }
    if n[0] & 1 == 0 {
        return false;
    }
    // Trial division by small primes.
    for p in [
        3u64, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89,
        97, 101, 103, 107, 109, 113,
    ] {
        let r = rem(&n, &[p]);
        if is_zero(&r) {
            return cmp_slices(&n, &[p]) == core::cmp::Ordering::Equal;
        }
    }

    // Write n - 1 = d * 2^s.
    let n_minus_1 = sub(&n, &[1]);
    let mut d = n_minus_1.clone();
    let mut s = 0u32;
    while d[0] & 1 == 0 {
        d = shr(&d, 1);
        s += 1;
    }
    let ctx = MontCtx::new(&n);
    let bases: Vec<u64> = {
        let small = [
            2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
        ];
        let mut v: Vec<u64> = small.iter().copied().take(rounds).collect();
        // Derive extra bases from the candidate when more rounds requested.
        let mut seed = n[0] ^ 0x9e3779b97f4a7c15;
        while v.len() < rounds {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            v.push((seed >> 16) | 3);
        }
        v
    };
    'witness: for &a in &bases {
        if cmp_slices(&[a], &n_minus_1) != core::cmp::Ordering::Less {
            continue;
        }
        let mut x = ctx.modpow(&[a], &d);
        if cmp_slices(&x, &[1]) == core::cmp::Ordering::Equal
            || cmp_slices(&x, &n_minus_1) == core::cmp::Ordering::Equal
        {
            continue 'witness;
        }
        for _ in 0..s.saturating_sub(1) {
            x = ctx.mulmod(&x, &x);
            if cmp_slices(&x, &n_minus_1) == core::cmp::Ordering::Equal {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = vec![u64::MAX, u64::MAX, 5];
        let b = vec![1, 2, 3];
        let s = add(&a, &b);
        assert_eq!(sub(&s, &b), vec![u64::MAX, u64::MAX, 5]);
    }

    #[test]
    fn mul_matches_u128() {
        let a = vec![0xdeadbeefcafebabe];
        let b = vec![0x123456789abcdef];
        let p = mul(&a, &b);
        let expect = (0xdeadbeefcafebabe_u128) * (0x123456789abcdef_u128);
        assert_eq!(p[0], expect as u64);
        assert_eq!(p.get(1).copied().unwrap_or(0), (expect >> 64) as u64);
    }

    #[test]
    fn div_rem_small() {
        let (q, r) = div_rem(&[1000], &[7]);
        assert_eq!(q, vec![142]);
        assert_eq!(r, vec![6]);
    }

    #[test]
    fn div_rem_multiword() {
        // a = q*d + r with q, d multiword; reconstruct and compare.
        let d = vec![0x1234567890abcdef, 0xfedcba0987654321];
        let q = vec![0xaaaaaaaaaaaaaaaa, 0x5555];
        let r = vec![42];
        let a = add(&mul(&q, &d), &r);
        let (q2, r2) = div_rem(&a, &d);
        assert_eq!(q2, q);
        assert_eq!(r2, r);
    }

    #[test]
    fn shifts() {
        let a = vec![0x8000000000000001];
        assert_eq!(shl(&a, 1), vec![2, 1]);
        assert_eq!(shr(&shl(&a, 65), 65), vec![0x8000000000000001]);
    }

    #[test]
    fn mont_mul_small_modulus() {
        let ctx = MontCtx::new(&[97]);
        assert_eq!(ctx.mulmod(&[13], &[29]), vec![13 * 29 % 97]);
        assert_eq!(ctx.modpow(&[3], &[96]), vec![1]); // Fermat
    }

    #[test]
    fn modpow_big_modulus() {
        // BN254 r: check Fermat's little theorem a^(r-1) = 1 mod r.
        let r = crate::bigint::BigInt::<4>::from_hex(
            "0x30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001",
        );
        let ctx = MontCtx::new(&r.0);
        let r_minus_1 = sub(&r.0, &[1]);
        assert_eq!(ctx.modpow(&[5], &r_minus_1), vec![1]);
    }

    #[test]
    fn primality_small() {
        assert!(is_probable_prime(&[2], 8));
        assert!(is_probable_prime(&[3], 8));
        assert!(!is_probable_prime(&[1], 8));
        assert!(!is_probable_prime(&[0], 8));
        assert!(is_probable_prime(&[65537], 8));
        assert!(!is_probable_prime(&[65536], 8));
        assert!(!is_probable_prime(&[561], 8)); // Carmichael
        assert!(is_probable_prime(&[0xffffffffffffffc5], 8)); // largest 64-bit prime
    }

    #[test]
    fn primality_known_curve_moduli() {
        let bn_r = crate::bigint::BigInt::<4>::from_hex(
            "0x30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001",
        );
        assert!(is_probable_prime(&bn_r.0, 12));
        let bls_q = crate::bigint::BigInt::<6>::from_hex(
            "0x1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab",
        );
        assert!(is_probable_prime(&bls_q.0, 12));
    }

    #[test]
    fn mont_roundtrip_multiword() {
        let m = vec![0xffffffffffffffc5, 0xdeadbeef, 1]; // odd, 3 limbs
        let m = if m[0] & 1 == 1 { m } else { add(&m, &[1]) };
        let ctx = MontCtx::new(&m);
        let a = vec![123456789, 987654321];
        let am = ctx.to_mont(&a);
        assert_eq!(ctx.from_mont(&am), a);
    }
}
