//! Property-based tests of the finite-field substrate: bigint arithmetic
//! against the dynamic-width reference, field axioms under random
//! operation sequences, Montgomery-domain consistency, and the Dekker
//! floating-point multiplier against the integer CIOS path.

use gzkp_ff::bigint::BigInt;
use gzkp_ff::dfp::{dfp_full_mul, DfpField, DfpInt};
use gzkp_ff::dynmont;
use gzkp_ff::fields::{Fq381, Fq753, Fr254};
use gzkp_ff::{Field, PrimeField};
use proptest::prelude::*;

fn arb_bigint4() -> impl Strategy<Value = BigInt<4>> {
    prop::array::uniform4(any::<u64>()).prop_map(BigInt)
}

fn arb_fr254() -> impl Strategy<Value = Fr254> {
    prop::array::uniform4(any::<u64>()).prop_map(|mut limbs| {
        limbs[3] &= (1 << 62) - 1; // below 2^254 < p·4, then reduce by retry
        loop {
            if let Some(f) = Fr254::from_limbs(&limbs) {
                return f;
            }
            limbs[3] >>= 1;
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bigint_add_matches_dynmont(a in arb_bigint4(), b in arb_bigint4()) {
        let (sum, carry) = a.const_add(&b);
        let mut expect = dynmont::add(&a.0, &b.0);
        expect.resize(5, 0);
        prop_assert_eq!(&sum.0[..], &expect[..4]);
        prop_assert_eq!(carry, expect[4]);
    }

    #[test]
    fn bigint_mul_matches_dynmont(a in arb_bigint4(), b in arb_bigint4()) {
        let (lo, hi) = a.widening_mul(&b);
        let mut expect = dynmont::mul(&a.0, &b.0);
        expect.resize(8, 0);
        prop_assert_eq!(&lo.0[..], &expect[..4]);
        prop_assert_eq!(&hi.0[..], &expect[4..]);
    }

    #[test]
    fn bigint_shift_roundtrip(a in arb_bigint4(), s in 0u32..255) {
        let shifted = dynmont::shl(&a.0, s);
        let back = dynmont::shr(&shifted, s);
        let mut orig = a.0.to_vec();
        dynmont::normalize(&mut orig);
        prop_assert_eq!(back, orig);
    }

    #[test]
    fn bigint_divrem_reconstructs(a in arb_bigint4(), d in arb_bigint4()) {
        prop_assume!(!d.is_zero());
        let (q, r) = dynmont::div_rem(&a.0, &d.0);
        prop_assert_eq!(dynmont::cmp_slices(&r, &d.0), std::cmp::Ordering::Less);
        let back = dynmont::add(&dynmont::mul(&q, &d.0), &r);
        let mut orig = a.0.to_vec();
        dynmont::normalize(&mut orig);
        prop_assert_eq!(back, orig);
    }

    #[test]
    fn field_ring_axioms(a in arb_fr254(), b in arb_fr254(), c in arb_fr254()) {
        prop_assert_eq!((a + b) * c, a * c + b * c);
        prop_assert_eq!(a * (b * c), (a * b) * c);
        prop_assert_eq!(a - b, -(b - a));
        prop_assert_eq!(a.double(), a + a);
        prop_assert_eq!(a.square(), a * a);
    }

    #[test]
    fn field_inverse_and_pow(a in arb_fr254()) {
        if let Some(inv) = a.inverse() {
            prop_assert_eq!(a * inv, Fr254::one());
            // a^(p-2) == a^{-1}
            let p = Fr254::characteristic();
            let mut pm2 = BigInt::<4>::new([p[0], p[1], p[2], p[3]]);
            pm2.sub_with_borrow(&BigInt::from_u64(2));
            prop_assert_eq!(a.pow(&pm2.0), inv);
        } else {
            prop_assert!(a.is_zero());
        }
    }

    #[test]
    fn canonical_roundtrip(a in arb_fr254()) {
        let limbs = a.to_limbs();
        prop_assert_eq!(Fr254::from_limbs(&limbs).unwrap(), a);
        // Canonical representation is strictly below the modulus.
        let canon = BigInt::<4>::new([limbs[0], limbs[1], limbs[2], limbs[3]]);
        let p = Fr254::characteristic();
        prop_assert!(canon < BigInt::<4>::new([p[0], p[1], p[2], p[3]]));
    }

    #[test]
    fn sqrt_of_square_exists(a in arb_fr254()) {
        let sq = a.square();
        let r = sq.sqrt().expect("square must have a root");
        prop_assert!(r == a || r == -a);
    }

    #[test]
    fn dfp_matches_integer_backend(a in arb_fr254(), b in arb_fr254()) {
        prop_assert_eq!(DfpField::mul(a, b), a * b);
    }

    #[test]
    fn dfp_full_mul_matches_widening(a in arb_bigint4(), b in arb_bigint4()) {
        let fa = DfpInt::from_u64_limbs(&a.0);
        let fb = DfpInt::from_u64_limbs(&b.0);
        let prod = dfp_full_mul(&fa, &fb).to_u64_limbs(8);
        let (lo, hi) = a.widening_mul(&b);
        prop_assert_eq!(&prod[..4], &lo.0[..]);
        prop_assert_eq!(&prod[4..], &hi.0[..]);
    }

    #[test]
    fn batch_inverse_matches_elementwise(seed in any::<u64>(), n in 0usize..40) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let vals: Vec<Fr254> = (0..n).map(|_| Fr254::random(&mut rng)).collect();
        let mut batched = vals.clone();
        let count = gzkp_ff::batch_inverse_count(&mut batched);
        prop_assert_eq!(count, vals.iter().filter(|v| !v.is_zero()).count());
        for (orig, inv) in vals.iter().zip(&batched) {
            match orig.inverse() {
                Some(expect) => prop_assert_eq!(*inv, expect),
                None => prop_assert!(inv.is_zero()),
            }
        }
    }

    #[test]
    fn batch_inverse_leaves_zeros(seed in any::<u64>(), mask in any::<u32>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        // Zero out a random subset of 32 entries; they must stay zero and
        // must not perturb their neighbours.
        let vals: Vec<Fr254> = (0..32)
            .map(|i| if mask >> i & 1 == 1 { Fr254::zero() } else { Fr254::random(&mut rng) })
            .collect();
        let mut batched = vals.clone();
        let count = gzkp_ff::batch_inverse_count(&mut batched);
        prop_assert_eq!(count, vals.iter().filter(|v| !v.is_zero()).count());
        for (orig, inv) in vals.iter().zip(&batched) {
            if orig.is_zero() {
                prop_assert!(inv.is_zero());
            } else {
                prop_assert_eq!(*orig * *inv, Fr254::one());
            }
        }
    }

    #[test]
    fn window_extraction_consistent(a in arb_bigint4(), k in 1usize..17, t in 0usize..40) {
        // bits_at must match a shift-and-mask reference via dynmont.
        let start = t * k;
        let got = a.bits_at(start, k);
        let shifted = dynmont::shr(&a.0, start as u32);
        let expect = shifted.first().copied().unwrap_or(0) & ((1u64 << k) - 1);
        prop_assert_eq!(got, expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn wide_field_axioms_381(seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Fq381::random(&mut rng);
        let b = Fq381::random(&mut rng);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a + b).square(), a.square() + a * b + a * b + b.square());
        if !a.is_zero() {
            prop_assert_eq!(a * a.inverse().unwrap(), Fq381::one());
        }
    }

    #[test]
    fn wide_field_axioms_753(seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Fq753::random(&mut rng);
        let b = Fq753::random(&mut rng);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!(a + b - b, a);
        if !a.is_zero() {
            prop_assert_eq!(a * a.inverse().unwrap(), Fq753::one());
        }
        prop_assert_eq!(DfpField::mul(a, b), a * b);
    }
}
