//! CPU Pippenger — the paper's "Best-CPU" MSM baseline (libsnark/bellman
//! class): window-serial, bucket accumulation with mixed additions, running
//! -sum reduction, optionally window-parallel across cores.

use crate::batch_affine::{accumulate_batch_affine, BatchAffineStats};
use crate::engine::{bucket_reduce, CurveCost, MsmEngine, MsmRun, MsmStats};
use crate::scalars::{default_window_size, ScalarVec};
use gzkp_curves::{Affine, CurveParams, Projective};
use gzkp_gpu_sim::device::{cpu_xeon, Backend, DeviceConfig};
use gzkp_gpu_sim::kernel::{BlockCost, KernelSpec, StageReport};
use rayon::prelude::*;

/// CPU Pippenger engine.
#[derive(Debug, Clone)]
pub struct CpuMsm {
    /// Window size `k`; `None` selects `default_window_size(n)` per call.
    pub window: Option<u32>,
    /// Use all cores (window-parallel), as libsnark's multicore prover does.
    pub parallel: bool,
    /// Batch-affine bucket accumulation (Montgomery-batched inversions);
    /// `false` keeps the classic mixed Jacobian additions.
    pub batch_affine: bool,
    /// Host model used by the cost reports.
    pub device: DeviceConfig,
}

impl Default for CpuMsm {
    fn default() -> Self {
        Self {
            window: None,
            parallel: true,
            batch_affine: true,
            device: cpu_xeon(),
        }
    }
}

impl CpuMsm {
    /// Single-threaded variant with classic mixed additions (reference
    /// in tests and the pre-optimization baseline).
    pub fn serial() -> Self {
        Self {
            parallel: false,
            batch_affine: false,
            ..Self::default()
        }
    }

    fn k_for(&self, n: usize) -> u32 {
        self.window.unwrap_or_else(|| default_window_size(n))
    }

    /// One window's bucket accumulation + reduction.
    fn window_sum<C: CurveParams>(
        &self,
        points: &[Affine<C>],
        scalars: &ScalarVec,
        t: usize,
        k: u32,
    ) -> (Projective<C>, BatchAffineStats) {
        let mut stats = BatchAffineStats::default();
        if self.batch_affine {
            let mut buckets = vec![Affine::<C>::identity(); (1usize << k) - 1];
            let entries: Vec<(u32, u32)> = (0..points.len())
                .filter_map(|i| {
                    let d = scalars.window(i, t, k);
                    (d != 0).then(|| ((d - 1) as u32, i as u32))
                })
                .collect();
            accumulate_batch_affine(&mut buckets, points, &entries, &mut stats);
            let projective: Vec<Projective<C>> =
                buckets.iter().map(Affine::to_projective).collect();
            return (bucket_reduce(&projective), stats);
        }
        let mut buckets = vec![Projective::<C>::identity(); (1usize << k) - 1];
        for (i, p) in points.iter().enumerate() {
            let d = scalars.window(i, t, k);
            if d != 0 {
                buckets[(d - 1) as usize] = buckets[(d - 1) as usize].add_mixed(p);
            }
        }
        (bucket_reduce(&buckets), stats)
    }

    fn stage<C: CurveParams>(&self, n: usize, nonzero_per_window: &[u64]) -> StageReport {
        let cost = CurveCost::of::<C>();
        let k = self.k_for(n);
        let mut stage = StageReport::new("cpu-pippenger");
        // One "block" per window per core-chunk; each window does its
        // bucket pass plus a 2·2^k reduction.
        let blocks: Vec<BlockCost> = nonzero_per_window
            .iter()
            .map(|&nz| BlockCost {
                mac_ops: nz as f64 * cost.padd_mixed() + 2.0 * (1u64 << k) as f64 * cost.padd(),
                dram_sectors: (nz * cost.affine_bytes()) / self.device.sector_bytes,
                shared_bytes: 0,
            })
            .collect();
        let mut spec = KernelSpec {
            name: format!("pippenger(k={k})"),
            threads_per_block: 1,
            shared_mem_per_block: 0,
            backend: Backend::Integer,
            limbs: cost.speedup_limbs(),
            blocks,
        };
        if !self.parallel {
            // Serial: merge every window into one block on one core.
            let total = spec
                .blocks
                .iter()
                .fold(BlockCost::default(), |a, b| a.merge(b));
            spec.blocks = vec![total];
        }
        stage.run(&self.device, &spec);
        stage
    }
}

impl<C: CurveParams> MsmEngine<C> for CpuMsm {
    fn name(&self) -> String {
        if self.parallel {
            "Best-CPU".into()
        } else {
            "CPU-serial".into()
        }
    }

    fn msm(&self, points: &[Affine<C>], scalars: &ScalarVec) -> MsmRun<C> {
        assert_eq!(points.len(), scalars.len());
        let n = points.len();
        let k = self.k_for(n);
        let windows = scalars.num_windows(k);
        let window_sums: Vec<(Projective<C>, BatchAffineStats)> = if self.parallel {
            (0..windows)
                .into_par_iter()
                .map(|t| self.window_sum(points, scalars, t, k))
                .collect()
        } else {
            (0..windows)
                .map(|t| self.window_sum(points, scalars, t, k))
                .collect()
        };
        let mut stats = MsmStats::default();
        for (_, s) in &window_sums {
            stats.batch_padds += s.padds;
            stats.batch_inversions += s.inversions;
        }
        // Window reduction: fold from the top, k doublings per step.
        let mut acc = Projective::<C>::identity();
        for (w, _) in window_sums.iter().rev() {
            for _ in 0..k {
                acc = acc.double();
            }
            acc = acc.add(w);
        }
        let report = <Self as MsmEngine<C>>::plan(self, scalars);
        MsmRun {
            result: acc,
            report,
            stats,
        }
    }

    fn plan(&self, scalars: &ScalarVec) -> StageReport {
        let k = self.k_for(scalars.len());
        let loads = crate::scalars::window_loads(scalars, k);
        self.stage::<C>(scalars.len(), &loads)
    }

    fn plan_dense(&self, n: usize) -> StageReport {
        let k = self.k_for(n);
        // Dense uniform digits: a (2^k − 1)/2^k fraction is non-zero.
        let bits = <C::Scalar as gzkp_ff::PrimeField>::MODULUS_BITS;
        let windows = bits.div_ceil(k) as usize;
        let nz = (n as f64 * (1.0 - 1.0 / (1u64 << k) as f64)) as u64;
        self.stage::<C>(n, &vec![nz; windows])
    }

    fn memory_bytes(&self, n: usize) -> u64 {
        let cost = CurveCost::of::<C>();
        let k = self.k_for(n);
        n as u64 * (cost.affine_bytes() + 8 * 4)
            + (1u64 << k) * cost.jacobian_bytes() * rayon::current_num_threads() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::naive_msm;
    use gzkp_curves::bn254::{Fr, G1Config};
    use gzkp_curves::random_points;
    use gzkp_ff::Field;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_naive_oracle() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100;
        let pts = random_points::<G1Config, _>(n, &mut rng);
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let sv = ScalarVec::from_field(&scalars);
        let expect = naive_msm(&pts, &sv);
        let serial = CpuMsm::serial().msm(&pts, &sv);
        assert_eq!(serial.result, expect);
        let parallel = CpuMsm::default().msm(&pts, &sv);
        assert_eq!(parallel.result, expect);
    }

    #[test]
    fn handles_zero_and_one_scalars() {
        let mut rng = StdRng::seed_from_u64(12);
        let pts = random_points::<G1Config, _>(8, &mut rng);
        let mut scalars: Vec<Fr> = (0..8).map(|_| Fr::random(&mut rng)).collect();
        scalars[0] = Fr::zero();
        scalars[3] = Fr::one();
        scalars[7] = Fr::zero();
        let sv = ScalarVec::from_field(&scalars);
        assert_eq!(CpuMsm::serial().msm(&pts, &sv).result, naive_msm(&pts, &sv));
    }

    #[test]
    fn all_zero_scalars_give_identity() {
        let mut rng = StdRng::seed_from_u64(13);
        let pts = random_points::<G1Config, _>(4, &mut rng);
        let sv = ScalarVec::from_field(&[Fr::zero(); 4]);
        assert!(CpuMsm::serial().msm(&pts, &sv).result.is_identity());
    }

    #[test]
    fn window_size_invariance() {
        let mut rng = StdRng::seed_from_u64(14);
        let pts = random_points::<G1Config, _>(32, &mut rng);
        let scalars: Vec<Fr> = (0..32).map(|_| Fr::random(&mut rng)).collect();
        let sv = ScalarVec::from_field(&scalars);
        let expect = naive_msm(&pts, &sv);
        for k in [1u32, 3, 8, 13, 16] {
            let e = CpuMsm {
                window: Some(k),
                parallel: false,
                ..CpuMsm::default()
            };
            assert_eq!(e.msm(&pts, &sv).result, expect, "k={k}");
        }
    }

    #[test]
    fn works_on_g2() {
        use gzkp_curves::bn254::G2Config;
        let mut rng = StdRng::seed_from_u64(15);
        let pts = random_points::<G2Config, _>(16, &mut rng);
        let scalars: Vec<Fr> = (0..16).map(|_| Fr::random(&mut rng)).collect();
        let sv = ScalarVec::from_field(&scalars);
        assert_eq!(CpuMsm::serial().msm(&pts, &sv).result, naive_msm(&pts, &sv));
    }
}
