//! Byte-budgeted LRU store for GZKP checkpoint tables.
//!
//! [`crate::GzkpMsm`] ships a small process-wide FIFO cache good enough
//! for one prover working on one key. A proving *service* juggles many
//! `(curve, proving-key)` pairs at once, where that FIFO thrashes: an
//! interleaved request mix touching more point vectors than the FIFO
//! holds re-runs Algorithm 1's `levels·M·k` doublings per point on every
//! proof. [`PreprocessStore`] replaces it with an explicitly sized cache:
//! entries are keyed by the point vector's identity and table shape,
//! charged by their actual table footprint, and evicted
//! least-recently-used once the byte budget is exceeded. Attach one to an
//! engine via [`crate::GzkpMsm`]'s `store` field; engines without one
//! keep the legacy FIFO behavior.

use gzkp_curves::{Affine, CurveParams};
use std::any::{Any, TypeId};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Identity of one checkpoint-table computation: the proof system the
/// tables serve, the curve, the point vector (by address, length, and a
/// sampled content fingerprint guarding against address reuse), plus the
/// `(k, M, windows)` table shape. The system tag keeps mixed
/// Groth16 + PLONK streams from sharing entries whose lifetimes differ
/// (a PLONK SRS prefix and a Groth16 query can alias the same base
/// pointer) and makes per-backend hit accounting meaningful.
#[derive(PartialEq, Eq)]
pub(crate) struct PreKey {
    system: u8,
    curve: TypeId,
    ptr: usize,
    len: usize,
    k: u32,
    m: u32,
    windows: usize,
    fingerprint: u64,
}

impl PreKey {
    pub(crate) fn of<C: CurveParams>(
        points: &[Affine<C>],
        k: u32,
        m: u32,
        windows: usize,
        system: u8,
    ) -> Self {
        let mut h = DefaultHasher::new();
        points.len().hash(&mut h);
        for idx in [0, points.len() / 2, points.len().saturating_sub(1)] {
            if let Some(p) = points.get(idx) {
                p.hash(&mut h);
            }
        }
        Self {
            system,
            curve: TypeId::of::<C>(),
            ptr: points.as_ptr() as usize,
            len: points.len(),
            k,
            m,
            windows,
            fingerprint: h.finish(),
        }
    }
}

struct Entry {
    key: PreKey,
    bytes: u64,
    last_used: u64,
    tables: Arc<dyn Any + Send + Sync>,
}

struct StoreInner {
    entries: Vec<Entry>,
    bytes: u64,
    clock: u64,
}

/// A byte-budgeted, least-recently-used cache of checkpoint tables shared
/// by every engine holding an `Arc` to it.
///
/// Lookups bump the entry's LRU stamp; inserts evict the stalest entries
/// until the store fits its budget again. The entry being inserted is
/// never evicted by its own insert, so a single table larger than the
/// whole budget still serves the proof that built it (and is dropped by
/// the next insert).
pub struct PreprocessStore {
    budget: u64,
    inner: Mutex<StoreInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PreprocessStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreprocessStore")
            .field("budget", &self.budget)
            .field("bytes", &self.bytes_used())
            .field("entries", &self.len())
            .finish()
    }
}

impl PreprocessStore {
    /// Empty store with the given byte budget.
    pub fn new(budget_bytes: u64) -> Self {
        Self {
            budget: budget_bytes,
            inner: Mutex::new(StoreInner {
                entries: Vec::new(),
                bytes: 0,
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Locks the entry map, recovering from poison: the store is shared
    /// by every prover in a service, and a worker panicking mid-stage
    /// (between lock and unlock here is only reads and Vec edits that
    /// keep `bytes`/`entries` consistent at every step) must not take the
    /// whole cache down with it.
    fn lock_inner(&self) -> MutexGuard<'_, StoreInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Bytes currently charged to resident tables.
    pub fn bytes_used(&self) -> u64 {
        self.lock_inner().bytes
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.lock_inner().entries.len()
    }

    /// Whether the store holds no tables.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found a resident table.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build their table.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Tables evicted to stay within budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Fetches the tables for `key`, building (outside the lock) and
    /// inserting them on a miss. `bytes` is the footprint charged to the
    /// budget.
    pub(crate) fn get_or_insert<C: CurveParams>(
        &self,
        key: PreKey,
        bytes: u64,
        build: impl FnOnce() -> Vec<Vec<Affine<C>>>,
    ) -> Arc<Vec<Vec<Affine<C>>>> {
        {
            let mut st = self.lock_inner();
            st.clock += 1;
            let clock = st.clock;
            if let Some(e) = st.entries.iter_mut().find(|e| e.key == key) {
                if let Ok(hit) = Arc::downcast::<Vec<Vec<Affine<C>>>>(e.tables.clone()) {
                    e.last_used = clock;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return hit;
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let tables = Arc::new(build());
        let mut st = self.lock_inner();
        // A racing builder may have inserted the same key meanwhile; keep
        // the resident copy and drop ours (both are deterministic).
        if let Some(e) = st.entries.iter_mut().find(|e| e.key == key) {
            if let Ok(hit) = Arc::downcast::<Vec<Vec<Affine<C>>>>(e.tables.clone()) {
                return hit;
            }
        }
        st.clock += 1;
        let clock = st.clock;
        st.entries.push(Entry {
            key,
            bytes,
            last_used: clock,
            tables: tables.clone(),
        });
        st.bytes += bytes;
        while st.bytes > self.budget && st.entries.len() > 1 {
            let (victim, _) = st
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.last_used != clock)
                .min_by_key(|(_, e)| e.last_used)
                .expect("len > 1 and at most one entry carries the current stamp");
            let evicted = st.entries.remove(victim);
            st.bytes -= evicted.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gzkp_curves::bn254::G1Config;
    use gzkp_curves::random_points;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tables_for(points: &[Affine<G1Config>]) -> Vec<Vec<Affine<G1Config>>> {
        vec![points.to_vec()]
    }

    fn must_hit() -> Vec<Vec<Affine<G1Config>>> {
        panic!("lookup must hit the store")
    }

    #[test]
    fn hit_returns_same_tables() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = random_points::<G1Config, _>(8, &mut rng);
        let store = PreprocessStore::new(1 << 20);
        let a = store.get_or_insert(PreKey::of(&pts, 8, 1, 32, 0), 100, || tables_for(&pts));
        let b = store.get_or_insert(PreKey::of(&pts, 8, 1, 32, 0), 100, must_hit);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((store.hits(), store.misses()), (1, 1));
    }

    #[test]
    fn distinct_shapes_are_distinct_entries() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = random_points::<G1Config, _>(8, &mut rng);
        let store = PreprocessStore::new(1 << 20);
        store.get_or_insert(PreKey::of(&pts, 8, 1, 32, 0), 10, || tables_for(&pts));
        store.get_or_insert(PreKey::of(&pts, 9, 1, 29, 0), 10, || tables_for(&pts));
        assert_eq!(store.len(), 2);
        assert_eq!(store.bytes_used(), 20);
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let mut rng = StdRng::seed_from_u64(3);
        let vecs: Vec<Vec<Affine<G1Config>>> = (0..3)
            .map(|_| random_points::<G1Config, _>(4, &mut rng))
            .collect();
        let store = PreprocessStore::new(250);
        store.get_or_insert(PreKey::of(&vecs[0], 8, 1, 32, 0), 100, || {
            tables_for(&vecs[0])
        });
        store.get_or_insert(PreKey::of(&vecs[1], 8, 1, 32, 0), 100, || {
            tables_for(&vecs[1])
        });
        // Touch entry 0 so entry 1 is the LRU victim.
        store.get_or_insert(PreKey::of(&vecs[0], 8, 1, 32, 0), 100, must_hit);
        store.get_or_insert(PreKey::of(&vecs[2], 8, 1, 32, 0), 100, || {
            tables_for(&vecs[2])
        });
        assert_eq!(store.len(), 2);
        assert_eq!(store.evictions(), 1);
        assert!(store.bytes_used() <= 250);
        // Entry 0 survived (hit), entry 1 was evicted (rebuilds).
        store.get_or_insert(PreKey::of(&vecs[0], 8, 1, 32, 0), 100, must_hit);
        let mut rebuilt = false;
        store.get_or_insert(PreKey::of(&vecs[1], 8, 1, 32, 0), 100, || {
            rebuilt = true;
            tables_for(&vecs[1])
        });
        assert!(rebuilt, "entry 1 must have been evicted");
    }

    #[test]
    fn system_tags_split_entries_and_evict_independently() {
        // The same point vector and table shape under two proof systems
        // (Groth16 = tag 0, PLONK = tag 1) must be two distinct entries —
        // a PLONK SRS prefix aliasing a Groth16 query pointer must not
        // serve the other backend's tables.
        let mut rng = StdRng::seed_from_u64(6);
        let pts = random_points::<G1Config, _>(8, &mut rng);
        let store = PreprocessStore::new(250);
        store.get_or_insert(PreKey::of(&pts, 8, 1, 32, 0), 100, || tables_for(&pts));
        store.get_or_insert(PreKey::of(&pts, 8, 1, 32, 1), 100, || tables_for(&pts));
        assert_eq!(store.len(), 2, "per-system entries must not alias");
        assert_eq!(store.misses(), 2);
        // Touch the Groth16 entry, then overflow the budget: the PLONK
        // entry is the LRU victim while the hot Groth16 entry survives.
        store.get_or_insert(PreKey::of(&pts, 8, 1, 32, 0), 100, must_hit);
        let extra = random_points::<G1Config, _>(4, &mut rng);
        store.get_or_insert(PreKey::of(&extra, 8, 1, 32, 0), 100, || tables_for(&extra));
        assert_eq!(store.evictions(), 1);
        store.get_or_insert(PreKey::of(&pts, 8, 1, 32, 0), 100, must_hit);
        let mut rebuilt = false;
        store.get_or_insert(PreKey::of(&pts, 8, 1, 32, 1), 100, || {
            rebuilt = true;
            tables_for(&pts)
        });
        assert!(rebuilt, "the cold PLONK entry must have been evicted");
    }

    #[test]
    fn panicking_holder_does_not_poison_the_store() {
        let mut rng = StdRng::seed_from_u64(5);
        let pts = random_points::<G1Config, _>(8, &mut rng);
        let store = Arc::new(PreprocessStore::new(1 << 20));
        store.get_or_insert(PreKey::of(&pts, 8, 1, 32, 0), 100, || tables_for(&pts));
        // A worker panicking while holding the entry-map lock (stage
        // panics are caught per-job by the service, the thread lives on)
        // marks the mutex poisoned…
        let poisoner = store.clone();
        std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("worker died holding the store lock");
        })
        .join()
        .unwrap_err();
        assert!(store.inner.is_poisoned(), "precondition: lock is poisoned");
        // …but other provers must keep hitting the cache, not panic.
        let hit = store.get_or_insert(PreKey::of(&pts, 8, 1, 32, 0), 100, must_hit);
        assert_eq!(hit.len(), 1);
        assert_eq!(store.len(), 1);
        assert_eq!(store.bytes_used(), 100);
    }

    #[test]
    fn oversized_entry_is_kept_for_its_builder() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts = random_points::<G1Config, _>(4, &mut rng);
        let store = PreprocessStore::new(10);
        let t = store.get_or_insert(PreKey::of(&pts, 8, 1, 32, 0), 1000, || tables_for(&pts));
        assert_eq!(t.len(), 1);
        assert_eq!(store.len(), 1, "sole entry may exceed the budget");
    }
}
