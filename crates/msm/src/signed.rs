//! Signed-digit bucket MSM — an extension beyond the paper.
//!
//! Rewriting each window digit into the balanced range
//! `[−2^{k−1}, 2^{k−1})` (with carry into the next window) halves the
//! bucket count: a negative digit subtracts the point from bucket `|d|`
//! instead of adding it to bucket `d`. Point negation is free on
//! short-Weierstrass curves (flip `y`), so the same consolidation work
//! feeds half as many point-merging tasks, and the prefix-sum bucket
//! reduction halves. Modern MSM implementations (post-GZKP) ship this;
//! here it composes with GZKP's cross-window consolidation.

use crate::engine::{bucket_reduce, MsmEngine, MsmRun};
use crate::gzkp::GzkpMsm;
use crate::scalars::ScalarVec;
use gzkp_curves::{Affine, CurveParams, Projective};
use gzkp_ff::PrimeField;
use gzkp_gpu_sim::kernel::StageReport;

/// GZKP's consolidated MSM with balanced signed digits.
#[derive(Debug, Clone)]
pub struct SignedGzkpMsm {
    /// The underlying GZKP configuration (device, backend, window, M, LB).
    pub inner: GzkpMsm,
}

impl SignedGzkpMsm {
    /// Wraps a GZKP engine configuration.
    pub fn new(inner: GzkpMsm) -> Self {
        Self { inner }
    }

    /// Balanced signed-digit decomposition: returns `windows + 1` digits
    /// per scalar with `Σ dₜ·2^{t·k}` equal to the scalar.
    pub fn signed_digits(scalars: &ScalarVec, i: usize, k: u32) -> Vec<i64> {
        let windows = scalars.num_windows(k);
        let half = 1i64 << (k - 1);
        let full = 1i64 << k;
        let mut out = Vec::with_capacity(windows + 1);
        let mut carry = 0i64;
        for t in 0..windows {
            let raw = scalars.window(i, t, k) as i64 + carry;
            if raw >= half {
                out.push(raw - full);
                carry = 1;
            } else {
                out.push(raw);
                carry = 0;
            }
        }
        out.push(carry);
        out
    }

    fn k_of(&self, n: usize) -> u32 {
        self.inner
            .window
            .unwrap_or_else(|| crate::scalars::default_window_size(n))
    }

    /// Per-bucket `(entries, doublings)` over the halved signed range.
    fn signed_loads(&self, scalars: &ScalarVec, k: u32, m: u32) -> Vec<(u64, u64)> {
        let windows = scalars.num_windows(k) + 1;
        let mut loads = vec![(0u64, 0u64); 1usize << (k - 1)];
        for i in 0..scalars.len() {
            for (t, d) in Self::signed_digits(scalars, i, k).into_iter().enumerate() {
                if d != 0 {
                    let e = &mut loads[(d.unsigned_abs() - 1) as usize];
                    e.0 += 1;
                    if !(t as u32).is_multiple_of(m) {
                        e.1 += k as u64;
                    }
                }
            }
        }
        let _ = windows;
        loads
    }
}

impl<C: CurveParams> MsmEngine<C> for SignedGzkpMsm {
    fn name(&self) -> String {
        "GZKP+signed".into()
    }

    fn msm(&self, points: &[Affine<C>], scalars: &ScalarVec) -> MsmRun<C> {
        assert_eq!(points.len(), scalars.len());
        let n = points.len();
        let k = self.k_of(n);
        let windows = scalars.num_windows(k) + 1; // +1 for the carry digit
        let m = self.inner.interval_for::<C>(n, windows);
        let pre = self.inner.preprocess(points, k, m, windows);

        // Precompute the digit matrix once (windows+1 digits per scalar).
        let digits: Vec<Vec<i64>> = (0..n).map(|i| Self::signed_digits(scalars, i, k)).collect();

        let mut buckets = vec![Projective::<C>::identity(); 1usize << (k - 1)];
        let mut temp: Vec<Projective<C>> = Vec::new();
        for t in 0..windows {
            let level = (t as u32 / m) as usize;
            let rem = t as u32 % m;
            if m > 1 {
                if rem == 0 {
                    temp = pre[level].iter().map(|p| p.to_projective()).collect();
                } else {
                    for p in temp.iter_mut() {
                        for _ in 0..k {
                            *p = p.double();
                        }
                    }
                }
            }
            for (i, drow) in digits.iter().enumerate() {
                let d = drow[t];
                if d == 0 {
                    continue;
                }
                let idx = (d.unsigned_abs() - 1) as usize;
                let add_point = |slot: &mut Projective<C>, negate: bool| {
                    if m == 1 {
                        let p = if negate {
                            pre[level][i].neg()
                        } else {
                            pre[level][i]
                        };
                        *slot = slot.add_mixed(&p);
                    } else {
                        let p = if negate { temp[i].neg() } else { temp[i] };
                        *slot = slot.add(&p);
                    }
                };
                add_point(&mut buckets[idx], d < 0);
            }
        }
        let result = bucket_reduce(&buckets);
        let loads = self.signed_loads(scalars, k, m);
        let report = self.inner.stage::<C>(n, k, windows, &loads);
        MsmRun {
            result,
            report,
            stats: Default::default(),
        }
    }

    fn plan(&self, scalars: &ScalarVec) -> StageReport {
        let n = scalars.len();
        let k = self.k_of(n);
        let windows = scalars.num_windows(k) + 1;
        let m = self.inner.interval_for::<C>(n, windows);
        let loads = self.signed_loads(scalars, k, m);
        self.inner.stage::<C>(n, k, windows, &loads)
    }

    fn plan_dense(&self, n: usize) -> StageReport {
        let k = self.k_of(n);
        let bits = <C::Scalar as PrimeField>::MODULUS_BITS;
        let windows = bits.div_ceil(k) as usize + 1;
        let m = self.inner.interval_for::<C>(n, windows);
        // Dense digits spread uniformly over the halved bucket range.
        let buckets = 1usize << (k - 1);
        let entries =
            (n as f64 * windows as f64 * (1.0 - 1.0 / (1u64 << k) as f64)) as u64 / buckets as u64;
        let dbl = (entries as f64 * k as f64 * (m as f64 - 1.0) / m as f64) as u64;
        self.inner
            .stage::<C>(n, k, windows, &vec![(entries, dbl); buckets])
    }

    fn memory_bytes(&self, n: usize) -> u64 {
        // Buckets halve relative to the unsigned engine; the rest matches.
        let base = MsmEngine::<C>::memory_bytes(&self.inner, n);
        let k = self.k_of(n);
        let bucket_bytes = ((1u64 << k) - 1) * crate::engine::CurveCost::of::<C>().jacobian_bytes();
        base - bucket_bytes / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::naive_msm;
    use gzkp_curves::bn254::{Fr, G1Config};
    use gzkp_curves::random_points;
    use gzkp_ff::Field;
    use gzkp_gpu_sim::v100;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn signed_digits_reconstruct_scalar() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = Fr::random(&mut rng);
        let sv = ScalarVec::from_field(&[s]);
        for k in [4u32, 8, 13, 16] {
            let digits = SignedGzkpMsm::signed_digits(&sv, 0, k);
            let half = 1i64 << (k - 1);
            assert!(digits.iter().all(|&d| (-half..=half).contains(&d)));
            // Reconstruct: Σ d·2^{tk} via i128 accumulation per limb window.
            let mut acc = [0i128; 6];
            for (t, &d) in digits.iter().enumerate() {
                let bit = t * k as usize;
                acc[bit / 64] += (d as i128) << (bit % 64);
            }
            // Normalize carries.
            let mut limbs = [0u64; 6];
            let mut carry: i128 = 0;
            for (i, a) in acc.iter().enumerate() {
                let v = a + carry;
                limbs[i] = v as u64;
                carry = (v - (v as u64 as i128)) >> 64;
            }
            assert_eq!(&limbs[..4], &gzkp_ff::PrimeField::to_limbs(&s)[..], "k={k}");
            assert_eq!(limbs[4], 0);
        }
    }

    #[test]
    fn matches_naive_oracle() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 60;
        let pts = random_points::<G1Config, _>(n, &mut rng);
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let sv = ScalarVec::from_field(&scalars);
        let run = SignedGzkpMsm::new(GzkpMsm::new(v100())).msm(&pts, &sv);
        assert_eq!(run.result, naive_msm(&pts, &sv));
    }

    #[test]
    fn matches_with_checkpoint_streaming() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20;
        let pts = random_points::<G1Config, _>(n, &mut rng);
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let sv = ScalarVec::from_field(&scalars);
        let expect = naive_msm(&pts, &sv);
        for m in [2u32, 5] {
            let e = SignedGzkpMsm::new(GzkpMsm {
                checkpoint_interval: Some(m),
                window: Some(8),
                ..GzkpMsm::new(v100())
            });
            assert_eq!(e.msm(&pts, &sv).result, expect, "M={m}");
        }
    }

    #[test]
    fn handles_extreme_scalars() {
        // -1 mod r has all-maximal digits; 0 and 1 are the sparse cases.
        let pts = random_points::<G1Config, _>(3, &mut StdRng::seed_from_u64(4));
        let scalars = vec![-Fr::one(), Fr::zero(), Fr::one()];
        let sv = ScalarVec::from_field(&scalars);
        let run = SignedGzkpMsm::new(GzkpMsm::new(v100())).msm(&pts, &sv);
        assert_eq!(run.result, naive_msm(&pts, &sv));
    }

    #[test]
    fn reduces_bucket_memory() {
        let signed = SignedGzkpMsm::new(GzkpMsm::new(v100()));
        let unsigned = GzkpMsm::new(v100());
        let n = 1 << 16;
        assert!(
            MsmEngine::<G1Config>::memory_bytes(&signed, n)
                < MsmEngine::<G1Config>::memory_bytes(&unsigned, n)
        );
    }
}
