//! Batch-affine bucket accumulation.
//!
//! Pippenger's bucket phase spends almost all of its PADDs folding the
//! points that share a bucket digit into that bucket's accumulator.
//! Production MSM implementations (bellperson, cuZK) do those additions
//! in *affine* coordinates — ~6 field muls per PADD instead of ~14 for
//! mixed Jacobian — by amortizing the chord/tangent inversion over many
//! independent additions with Montgomery's trick.
//!
//! This module schedules that amortization as a **tree reduction**: the
//! entries of every bucket in a task's range are laid out contiguously
//! (CSR via counting sort), then rounds of pairwise additions halve each
//! bucket's pending list, and each round batches *all* pairs across
//! *all* buckets of the range into one [`gzkp_ff::batch_inverse`] call.
//! The number of inversions is therefore `⌈log₂(max bucket load)⌉` per
//! task rather than one per addition, and because every intermediate is
//! an exact affine point the result is independent of thread count and
//! schedule — bit-identical to the serial accumulator.

use gzkp_curves::group::{batch_add_affine_pairs, Affine};
use gzkp_curves::CurveParams;

/// Work counters for one batch-affine accumulation, feeding the
/// `msm.batch_inversions` / `msm.batch_inv_saved` telemetry counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchAffineStats {
    /// Non-trivial affine additions performed (each would have cost one
    /// field inversion without batching).
    pub padds: u64,
    /// Field inversions actually performed (one per reduction round).
    pub inversions: u64,
}

impl BatchAffineStats {
    /// Inversions amortized away by Montgomery batching.
    pub fn saved(&self) -> u64 {
        self.padds.saturating_sub(self.inversions)
    }

    /// Accumulates another task's counters into this one.
    pub fn merge(&mut self, other: &Self) {
        self.padds += other.padds;
        self.inversions += other.inversions;
    }
}

/// Folds `entries` — `(local bucket index, source point index)` pairs —
/// into `buckets` using tree rounds of batched affine additions.
///
/// A non-identity accumulator already present in `buckets[b]` joins that
/// bucket's pending list, so the function composes across windows and
/// repeated calls. Entry order within a bucket does not affect the
/// result (the group is abelian and every intermediate is exact), but
/// the reduction schedule is a pure function of the input layout, so
/// identical inputs give bit-identical outputs on every run.
pub fn accumulate_batch_affine<C: CurveParams>(
    buckets: &mut [Affine<C>],
    sources: &[Affine<C>],
    entries: &[(u32, u32)],
    stats: &mut BatchAffineStats,
) {
    let nb = buckets.len();
    if nb == 0 {
        return;
    }
    // Counting sort into CSR: per-bucket segment lengths, then a flat
    // array holding each bucket's pending points contiguously (existing
    // accumulator first, then entries in input order).
    let mut lens = vec![0u32; nb];
    for &(b, _) in entries {
        lens[b as usize] += 1;
    }
    for (len, acc) in lens.iter_mut().zip(buckets.iter()) {
        if !acc.infinity {
            *len += 1;
        }
    }
    let mut starts = vec![0u32; nb + 1];
    for b in 0..nb {
        starts[b + 1] = starts[b] + lens[b];
    }
    let total = starts[nb] as usize;
    let mut flat: Vec<Affine<C>> = vec![Affine::identity(); total];
    let mut cursor: Vec<u32> = starts[..nb].to_vec();
    for (b, acc) in buckets.iter().enumerate() {
        if !acc.infinity {
            flat[cursor[b] as usize] = *acc;
            cursor[b] += 1;
        }
    }
    for &(b, i) in entries {
        let c = &mut cursor[b as usize];
        flat[*c as usize] = sources[i as usize];
        *c += 1;
    }

    // Tree rounds: pair up each segment's points, batch every pair in
    // the range into one inversion, carry odd leftovers unchanged.
    let mut ps: Vec<Affine<C>> = Vec::new();
    let mut qs: Vec<Affine<C>> = Vec::new();
    loop {
        ps.clear();
        qs.clear();
        for b in 0..nb {
            let seg = &flat[starts[b] as usize..(starts[b] + lens[b]) as usize];
            for pair in seg.chunks_exact(2) {
                ps.push(pair[0]);
                qs.push(pair[1]);
            }
        }
        if ps.is_empty() {
            break;
        }
        let (sums, amortized) = batch_add_affine_pairs(&ps, &qs);
        stats.padds += amortized as u64;
        if amortized > 0 {
            stats.inversions += 1;
        }
        // Rebuild the CSR with halved segments: pair results in order,
        // then the carried odd element.
        let mut next_lens = vec![0u32; nb];
        let mut next_starts = vec![0u32; nb + 1];
        for b in 0..nb {
            next_lens[b] = lens[b] / 2 + lens[b] % 2;
            next_starts[b + 1] = next_starts[b] + next_lens[b];
        }
        let mut next_flat: Vec<Affine<C>> = vec![Affine::identity(); next_starts[nb] as usize];
        let mut sums_it = sums.into_iter();
        for b in 0..nb {
            let out = &mut next_flat[next_starts[b] as usize..];
            let npairs = (lens[b] / 2) as usize;
            for slot in out.iter_mut().take(npairs) {
                *slot = sums_it.next().expect("one sum per pair");
            }
            if lens[b] % 2 == 1 {
                out[npairs] = flat[(starts[b] + lens[b] - 1) as usize];
            }
        }
        flat = next_flat;
        starts = next_starts;
        lens = next_lens;
    }

    for (b, bucket) in buckets.iter_mut().enumerate() {
        *bucket = if lens[b] == 1 {
            flat[starts[b] as usize]
        } else {
            Affine::identity()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gzkp_curves::bn254::G1Config;
    use gzkp_curves::group::{random_points, Projective};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn reference<C: CurveParams>(
        buckets: &[Affine<C>],
        sources: &[Affine<C>],
        entries: &[(u32, u32)],
    ) -> Vec<Affine<C>> {
        let mut acc: Vec<Projective<C>> = buckets.iter().map(Affine::to_projective).collect();
        for &(b, i) in entries {
            acc[b as usize] = acc[b as usize].add_mixed(&sources[i as usize]);
        }
        acc.iter().map(Projective::to_affine).collect()
    }

    #[test]
    fn matches_serial_mixed_addition() {
        let mut rng = StdRng::seed_from_u64(77);
        let sources = random_points::<G1Config, _>(64, &mut rng);
        for nb in [1usize, 3, 7, 16] {
            let mut buckets = vec![Affine::<G1Config>::identity(); nb];
            // Seed a couple of buckets with existing accumulators.
            buckets[0] = sources[63];
            if nb > 2 {
                buckets[nb - 1] = sources[62];
            }
            let entries: Vec<(u32, u32)> = (0..48)
                .map(|_| (rng.gen_range(0..nb) as u32, rng.gen_range(0..62u32)))
                .collect();
            let expect = reference(&buckets, &sources, &entries);
            let mut stats = BatchAffineStats::default();
            accumulate_batch_affine(&mut buckets, &sources, &entries, &mut stats);
            assert_eq!(buckets, expect, "nb={nb}");
            assert!(stats.padds >= stats.inversions, "nb={nb}");
        }
    }

    #[test]
    fn duplicate_entries_force_doubling_paths() {
        // Repeating the same source point in one bucket exercises the
        // tangent (doubling) branch of the batched addition.
        let mut rng = StdRng::seed_from_u64(78);
        let sources = random_points::<G1Config, _>(4, &mut rng);
        let entries: Vec<(u32, u32)> = vec![(0, 1); 8].into_iter().chain(vec![(1, 2); 3]).collect();
        let mut buckets = vec![Affine::<G1Config>::identity(); 2];
        let expect = reference(&buckets, &sources, &entries);
        let mut stats = BatchAffineStats::default();
        accumulate_batch_affine(&mut buckets, &sources, &entries, &mut stats);
        assert_eq!(buckets, expect);
        // 8 copies reduce in 3 rounds, 3 copies in 2; rounds overlap so
        // the inversion count stays at the deeper tree's depth.
        assert_eq!(stats.inversions, 3);
    }

    #[test]
    fn empty_inputs_are_noops() {
        let mut stats = BatchAffineStats::default();
        let mut buckets: Vec<Affine<G1Config>> = Vec::new();
        accumulate_batch_affine(&mut buckets, &[], &[], &mut stats);
        let mut buckets = vec![Affine::<G1Config>::identity(); 4];
        accumulate_batch_affine(&mut buckets, &[], &[], &mut stats);
        assert!(buckets.iter().all(Affine::is_identity));
        assert_eq!(stats, BatchAffineStats::default());
    }
}
