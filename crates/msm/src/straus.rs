//! The Straus-algorithm GPU engine ("MINA" — gpu-groth16-prover-like).
//!
//! Straus precomputes, for every point, the full digit table
//! `d·Pᵢ (1 ≤ d < 2^k)`; the main loop then interleaves `k` doublings of
//! the accumulator with one table lookup + addition per point per window.
//! The precomputation is the scheme's Achilles heel the paper calls out
//! (§4.1): "the amount of pre-computation grows too fast with large N, even
//! with a small k" — at 753-bit and `2²²` points, the table alone exceeds
//! the V100's 32 GB (the "-" entries of Table 7 and the steep curve of
//! Figure 9).

use crate::engine::{CurveCost, MsmEngine, MsmRun};
use crate::scalars::ScalarVec;
use gzkp_curves::{batch_to_affine, Affine, CurveParams, Projective};
use gzkp_ff::PrimeField;
use gzkp_gpu_sim::device::{Backend, DeviceConfig};
use gzkp_gpu_sim::kernel::{BlockCost, KernelSpec, StageReport};

/// Latency penalty on the main-loop accumulation: each GPU thread owns a
/// private accumulator updated by a *dependent* chain of PADDs (lookup →
/// add → next lookup), which cannot pipeline the way Pippenger's
/// independent bucket merges can. Calibration anchor: Table 7's MINA row
/// at 2²² (≈28 s) vs. the raw operation count.
pub const SERIAL_CHAIN_PENALTY: f64 = 5.0;

/// The MINA-like Straus MSM engine.
#[derive(Debug, Clone)]
pub struct StrausMsm {
    /// Simulated device.
    pub device: DeviceConfig,
    /// Finite-field backend.
    pub backend: Backend,
    /// Digit width of the precomputed tables (MINA-class provers keep this
    /// small precisely because the table is per-point).
    pub window: u32,
}

impl StrausMsm {
    /// Stock configuration (k = 5, integer backend).
    pub fn new(device: DeviceConfig) -> Self {
        Self {
            device,
            backend: Backend::Integer,
            window: 5,
        }
    }

    fn table_entries(&self) -> u64 {
        (1u64 << self.window) - 1
    }

    fn stage<C: CurveParams>(&self, n: usize, windows: usize) -> StageReport {
        let cost = CurveCost::of::<C>();
        let dev = &self.device;
        let k = self.window;
        let mut stage = StageReport::new("msm-straus");
        stage.add_fixed("host-sync+transfer", crate::gzkp::MSM_HOST_OVERHEAD_NS);

        // Precompute kernel: (2^k − 1) additions per point (chained).
        let pre_blocks = (n.div_ceil(256)).max(1);
        let pre_per_block = BlockCost {
            mac_ops: (256.0) * self.table_entries() as f64 * cost.padd_mixed(),
            dram_sectors: (256 * self.table_entries() * cost.affine_bytes()) / dev.sector_bytes,
            shared_bytes: 0,
        };
        stage.run(
            dev,
            &KernelSpec::uniform(
                format!("straus.precompute(k={k})"),
                256,
                0,
                self.backend,
                cost.speedup_limbs(),
                pre_blocks,
                pre_per_block,
            ),
        );

        // Main loop: chunks of points accumulate across all windows; the
        // table lookups are data-dependent gathers (poorly coalesced) and
        // the per-thread accumulator chains serialize (see
        // [`SERIAL_CHAIN_PENALTY`]).
        let chunk = (n / (2 * dev.num_sms as usize)).clamp(256, 4096);
        let blocks_n = n.div_ceil(chunk);
        let per_block = BlockCost {
            mac_ops: (windows as f64 * (chunk as f64 * cost.padd() + k as f64 * cost.pdbl())
                + chunk as f64 * cost.padd())
                * SERIAL_CHAIN_PENALTY,
            // Random table gathers: one sector per coordinate word group.
            dram_sectors: windows as u64 * chunk as u64 * cost.affine_bytes() / dev.sector_bytes
                * 4, // ×4 gather amplification
            shared_bytes: 0,
        };
        stage.run(
            dev,
            &KernelSpec::uniform(
                format!("straus.main(k={k},w={windows})"),
                256,
                0,
                self.backend,
                cost.speedup_limbs(),
                blocks_n,
                per_block,
            ),
        );
        stage
    }
}

impl<C: CurveParams> MsmEngine<C> for StrausMsm {
    fn name(&self) -> String {
        "MINA(Straus)".into()
    }

    fn msm(&self, points: &[Affine<C>], scalars: &ScalarVec) -> MsmRun<C> {
        assert_eq!(points.len(), scalars.len());
        let n = points.len();
        let k = self.window;
        let windows = scalars.num_windows(k);

        // Functional Straus: per-point digit tables, then the interleaved
        // double-and-add over windows from the top.
        let tables: Vec<Vec<Affine<C>>> = points
            .iter()
            .map(|p| {
                let mut row = Vec::with_capacity(self.table_entries() as usize);
                let mut acc = p.to_projective();
                for _ in 0..self.table_entries() {
                    row.push(acc);
                    acc = acc.add_mixed(p);
                }
                batch_to_affine(&row)
            })
            .collect();

        let mut acc = Projective::<C>::identity();
        for t in (0..windows).rev() {
            for _ in 0..k {
                acc = acc.double();
            }
            for (i, table) in tables.iter().enumerate() {
                let d = scalars.window(i, t, k);
                if d != 0 {
                    acc = acc.add_mixed(&table[(d - 1) as usize]);
                }
            }
        }
        let report = self.stage::<C>(n, windows);
        MsmRun {
            result: acc,
            report,
            stats: Default::default(),
        }
    }

    fn plan(&self, scalars: &ScalarVec) -> StageReport {
        // Straus does not skip empty windows (the accumulator doublings are
        // unconditional), so the plan only depends on n and window count —
        // exactly why it handles sparse workloads poorly.
        self.stage::<C>(scalars.len(), scalars.num_windows(self.window))
    }

    fn plan_dense(&self, n: usize) -> StageReport {
        let bits = <C::Scalar as PrimeField>::MODULUS_BITS;
        self.stage::<C>(n, bits.div_ceil(self.window) as usize)
    }

    fn memory_bytes(&self, n: usize) -> u64 {
        let cost = CurveCost::of::<C>();
        let bits = <C::Scalar as PrimeField>::MODULUS_BITS as u64;
        // Input points + scalars + the per-point digit tables.
        n as u64 * (cost.affine_bytes() + bits.div_ceil(64) * 8)
            + n as u64 * self.table_entries() * cost.affine_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::naive_msm;
    use gzkp_curves::bn254::{Fr, G1Config};
    use gzkp_curves::random_points;
    use gzkp_ff::Field;
    use gzkp_gpu_sim::device::v100;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_naive_oracle() {
        let mut rng = StdRng::seed_from_u64(31);
        let n = 40;
        let pts = random_points::<G1Config, _>(n, &mut rng);
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let sv = ScalarVec::from_field(&scalars);
        let run = StrausMsm::new(v100()).msm(&pts, &sv);
        assert_eq!(run.result, naive_msm(&pts, &sv));
    }

    #[test]
    fn memory_explodes_with_scale() {
        // The Table 7 OOM behaviour: 753-bit Straus exceeds 32 GB at 2^24.
        let e = StrausMsm::new(v100());
        let m_t753 = MsmEngine::<gzkp_curves::t753::G1Config>::memory_bytes(&e, 1 << 24);
        assert!(m_t753 > v100().global_mem_bytes);
        let m_small = MsmEngine::<gzkp_curves::t753::G1Config>::memory_bytes(&e, 1 << 18);
        assert!(m_small < v100().global_mem_bytes);
    }

    #[test]
    fn plan_ignores_sparsity() {
        let n = 256;
        let dense: Vec<Fr> = {
            let mut rng = StdRng::seed_from_u64(32);
            (0..n).map(|_| Fr::random(&mut rng)).collect()
        };
        let sparse = vec![Fr::one(); n];
        let e = StrausMsm::new(v100());
        let td = MsmEngine::<G1Config>::plan(&e, &ScalarVec::from_field(&dense)).total_ns();
        let ts = MsmEngine::<G1Config>::plan(&e, &ScalarVec::from_field(&sparse)).total_ns();
        assert!((td - ts).abs() / td < 1e-9);
    }
}
