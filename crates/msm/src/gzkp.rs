//! GZKP's MSM design (paper §4): computation consolidation across windows,
//! checkpoint-based preprocessing (Algorithm 1), bucket-granular task
//! partitioning with load-balanced fine-grained warp mapping, and a
//! parallel-prefix bucket reduction.
//!
//! The key idea: precompute window-weighted copies `2^{t·k}·Pᵢ` of the
//! (fixed) proving-key points so the same-digit buckets of *all* windows
//! merge into a single set of `2^k − 1` buckets. This removes the
//! window-reduction step entirely and turns one PMUL per (window, sub-MSM,
//! digit) into one per digit. The checkpoint interval `M` stores only every
//! `M`-th weight level; intermediate weights cost `(t mod M)·k` on-the-fly
//! doublings (Algorithm 1), trading memory for PADDs — which is how GZKP's
//! memory curve stays flat past 2²² in Figure 9.

use crate::batch_affine::{accumulate_batch_affine, BatchAffineStats};
use crate::engine::{bucket_reduce, bucket_reduce_range, CurveCost, MsmEngine, MsmRun, MsmStats};
use crate::scalars::{default_window_size, ScalarVec};
use crate::store::{PreKey, PreprocessStore};
use gzkp_curves::{batch_to_affine, Affine, CurveParams, Projective};
use gzkp_ff::PrimeField;
use gzkp_gpu_sim::device::{Backend, DeviceConfig};
use gzkp_gpu_sim::kernel::{simulate_kernel, BlockCost, KernelSpec, StageReport};
use gzkp_gpu_sim::stream::DeviceTimeline;
use gzkp_gpu_sim::transfer::HostMem;
use rayon::prelude::*;
use std::any::Any;
use std::sync::{Arc, Mutex, OnceLock};

/// Fixed per-MSM host-side cost (driver synchronization, scalar transfer,
/// result readback) shared by all simulated GPU MSM engines. Calibration
/// anchor: the paper's smallest GZKP MSM latencies (~4 ms at 2^14).
pub const MSM_HOST_OVERHEAD_NS: f64 = 3.0e6;

/// Execution-efficiency derate of the point-merging kernel relative to
/// pure operation counts: cooperative-group synchronization between the
/// lanes sharing one PADD (§4.1), warp divergence on bucket boundaries,
/// and gather stalls on the scattered preprocessed-point reads.
/// Calibration anchor: the paper's absolute GZKP MSM times (Table 7,
/// e.g. 381-bit 2²⁴ ≈ 1.1 s; 256-bit 2²² ≈ 0.17 s).
pub const MERGE_CG_OVERHEAD: f64 = 4.5;

/// Fraction of the on-the-fly doubling work (Algorithm 1) that shows up as
/// extra latency: the doubling chains of the streamed weight vector execute
/// while the warp waits on its scattered point gathers, so most of their
/// cost is hidden. Anchor: the paper's 753-bit column stays scale-linear
/// across the checkpoint-interval transition (Table 7, 2²⁰ → 2²⁶).
pub const DOUBLING_HIDE_FACTOR: f64 = 0.15;

/// The GZKP MSM engine.
#[derive(Debug, Clone)]
pub struct GzkpMsm {
    /// Simulated device.
    pub device: DeviceConfig,
    /// Finite-field backend (GZKP ships its optimized library; set
    /// `Integer` for the "GZKP-no-LB" / "w/o lib" ablations).
    pub backend: Backend,
    /// Window size `k`; `None` = profiling default.
    pub window: Option<u32>,
    /// Checkpoint interval `M`; `None` = auto-sized to device memory.
    pub checkpoint_interval: Option<u32>,
    /// Load-balanced task grouping + fine-grained warp mapping (§4.2);
    /// `false` reproduces the "GZKP-no-LB" ablation of Figure 10.
    pub load_balance: bool,
    /// Thread-parallel bucket accumulation across load-grouped bucket
    /// ranges (the multi-core realization of the paper's bucket tasks).
    pub parallel: bool,
    /// Batch-affine bucket accumulation (Montgomery-batched inversions);
    /// `false` falls back to mixed Jacobian additions.
    pub batch_affine: bool,
    /// Reuse the checkpoint tables across MSMs over the same point
    /// vector (the paper treats preprocessing as per-application setup).
    pub cache_preprocess: bool,
    /// Optional shared, byte-budgeted LRU table store. When set it
    /// replaces the process-wide FIFO cache, letting a proving service
    /// bound table memory across many proving keys explicitly.
    pub store: Option<Arc<PreprocessStore>>,
    /// Proof-system tag folded into preprocess-cache keys
    /// (`ProofSystemKind::cache_tag()`: 0 = Groth16, 1 = PLONK), so mixed
    /// backend streams sharing one store never alias each other's tables.
    pub system_tag: u8,
}

/// Process-wide store for checkpoint tables, keyed by the point
/// vector's identity and the `(k, M, windows)` shape: proving-key
/// vectors are fixed per application, so every engine instance reuses
/// the same tables (the paper's setup/execution split).
type PreCacheEntries = Vec<(PreKey, Arc<dyn Any + Send + Sync>)>;
static PRE_CACHE: OnceLock<Mutex<PreCacheEntries>> = OnceLock::new();

fn pre_cache() -> &'static Mutex<PreCacheEntries> {
    PRE_CACHE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Tables for at most this many distinct point vectors are retained
/// (FIFO): a Groth16 proving key has four G1 vectors plus one G2.
const PRE_CACHE_CAP: usize = 8;

impl GzkpMsm {
    /// Full GZKP configuration on a device.
    pub fn new(device: DeviceConfig) -> Self {
        Self {
            device,
            backend: Backend::FpLib,
            window: None,
            checkpoint_interval: None,
            load_balance: true,
            parallel: true,
            batch_affine: true,
            cache_preprocess: true,
            store: None,
            system_tag: 0,
        }
    }

    /// Attaches a shared [`PreprocessStore`], replacing the process-wide
    /// FIFO cache for this engine instance.
    pub fn with_store(mut self, store: Arc<PreprocessStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Sets the proof-system cache tag (see [`GzkpMsm::system_tag`]).
    pub fn with_system_tag(mut self, tag: u8) -> Self {
        self.system_tag = tag;
        self
    }

    /// The pre-optimization serial reference: single-threaded mixed
    /// Jacobian accumulation, no table reuse. The determinism test and
    /// the e2e bench baseline pin the original execution against it.
    pub fn serial_reference(device: DeviceConfig) -> Self {
        Self {
            parallel: false,
            batch_affine: false,
            cache_preprocess: false,
            ..Self::new(device)
        }
    }

    /// The "GZKP-no-LB" ablation: bucket-based consolidation without load
    /// balancing, integer backend.
    pub fn no_load_balance(device: DeviceConfig) -> Self {
        Self {
            load_balance: false,
            backend: Backend::Integer,
            ..Self::new(device)
        }
    }

    /// The "GZKP-no-LB w. lib" ablation.
    pub fn no_load_balance_with_lib(device: DeviceConfig) -> Self {
        Self {
            load_balance: false,
            ..Self::new(device)
        }
    }

    fn k_for(&self, n: usize) -> u32 {
        self.window.unwrap_or_else(|| default_window_size(n))
    }

    /// Auto-sizes the checkpoint interval `M` so the preprocessed point
    /// levels fit in (80% of) device memory alongside the inputs.
    pub fn interval_for<C: CurveParams>(&self, n: usize, windows: usize) -> u32 {
        if let Some(m) = self.checkpoint_interval {
            return m.max(1);
        }
        let cost = CurveCost::of::<C>();
        let budget = (self.device.global_mem_bytes as f64 * 0.8) as u64;
        let inputs = n as u64
            * (cost.affine_bytes()
                + <C::Scalar as PrimeField>::MODULUS_BITS.div_ceil(64) as u64 * 8)
            + n as u64 * 8; // p_index (built per window batch, streamed)
        let left = budget.saturating_sub(inputs).max(1);
        // Level 0 is the input vector itself; only extra levels cost memory.
        let max_levels = 1 + left / (n as u64 * cost.affine_bytes()).max(1);
        (windows as u64).div_ceil(max_levels).max(1) as u32
    }

    /// Number of stored checkpoint levels (level 0 is the input itself).
    fn levels(windows: usize, m: u32) -> usize {
        (windows as u64).div_ceil(m as u64) as usize
    }

    /// Computes the checkpoint tables: `pre[c][i] = 2^{c·M·k} · Pᵢ`.
    ///
    /// This corresponds to the paper's setup-time preprocessing (the point
    /// vector is fixed per application); its cost is reported separately by
    /// [`Self::plan_preprocess`] and excluded from MSM stage time, matching
    /// the paper's accounting.
    pub fn preprocess<C: CurveParams>(
        &self,
        points: &[Affine<C>],
        k: u32,
        m: u32,
        windows: usize,
    ) -> Vec<Vec<Affine<C>>> {
        let levels = Self::levels(windows, m);
        let mut out = Vec::with_capacity(levels);
        out.push(points.to_vec());
        let mut current: Vec<Projective<C>> = points.iter().map(|p| p.to_projective()).collect();
        for _ in 1..levels {
            for p in current.iter_mut() {
                for _ in 0..(m * k) {
                    *p = p.double();
                }
            }
            out.push(batch_to_affine(&current));
        }
        out
    }

    /// [`Self::preprocess`] through the cross-run cache: proving-key
    /// point vectors are fixed, so repeated proofs reuse the checkpoint
    /// tables instead of redoing `levels·M·k` doublings per point —
    /// the paper's setup/execution split realized on the CPU path.
    fn preprocess_cached<C: CurveParams>(
        &self,
        points: &[Affine<C>],
        k: u32,
        m: u32,
        windows: usize,
    ) -> Arc<Vec<Vec<Affine<C>>>> {
        if !self.cache_preprocess {
            return Arc::new(self.preprocess(points, k, m, windows));
        }
        if let Some(store) = &self.store {
            let key = PreKey::of(points, k, m, windows, self.system_tag);
            let levels = Self::levels(windows, m) as u64;
            let bytes = levels * points.len() as u64 * CurveCost::of::<C>().affine_bytes();
            return store.get_or_insert(key, bytes, || self.preprocess(points, k, m, windows));
        }
        let key = PreKey::of(points, k, m, windows, self.system_tag);
        {
            let entries = pre_cache().lock().unwrap();
            for (k2, tables) in entries.iter() {
                if *k2 == key {
                    if let Ok(hit) = Arc::downcast::<Vec<Vec<Affine<C>>>>(tables.clone()) {
                        return hit;
                    }
                }
            }
        }
        let tables = Arc::new(self.preprocess(points, k, m, windows));
        let mut entries = pre_cache().lock().unwrap();
        if entries.len() >= PRE_CACHE_CAP {
            entries.remove(0);
        }
        entries.push((key, tables.clone()));
        tables
    }

    /// Splits the bucket index space into up to `tasks` contiguous
    /// ranges of roughly equal *entry load* (§4.2's load-grouped bucket
    /// tasks, with a range granularity suited to CPU threads). Returns
    /// half-open `(lo, hi)` ranges covering `0..loads.len()`.
    fn balanced_ranges(loads: &[(u64, u64)], tasks: usize) -> Vec<(usize, usize)> {
        let nb = loads.len();
        if nb == 0 {
            return vec![(0, 0)];
        }
        let tasks = tasks.clamp(1, nb);
        let total: u64 = loads.iter().map(|l| l.0).sum();
        let target = total.div_ceil(tasks as u64).max(1);
        let mut ranges = Vec::with_capacity(tasks);
        let mut lo = 0usize;
        let mut acc = 0u64;
        for (b, l) in loads.iter().enumerate() {
            acc += l.0;
            if acc >= target && ranges.len() + 1 < tasks && b + 1 < nb {
                ranges.push((lo, b + 1));
                lo = b + 1;
                acc = 0;
            }
        }
        ranges.push((lo, nb));
        ranges
    }

    /// Per-bucket load profile: `(entries, on_the_fly_doublings)` for each
    /// bucket 1..2^k — the data behind Figure 6 and the load balancer.
    ///
    /// With the streamed realization, a non-checkpoint window costs `k`
    /// shared doublings per point (charged to the entries it produces).
    fn bucket_loads(scalars: &ScalarVec, k: u32, m: u32) -> Vec<(u64, u64)> {
        let windows = scalars.num_windows(k);
        let mut loads = vec![(0u64, 0u64); (1usize << k) - 1];
        for i in 0..scalars.len() {
            for t in 0..windows {
                let d = scalars.window(i, t, k);
                if d != 0 {
                    let e = &mut loads[(d - 1) as usize];
                    e.0 += 1;
                    if !(t as u32).is_multiple_of(m) {
                        e.1 += k as u64;
                    }
                }
            }
        }
        loads
    }

    /// Builds the warp-granular point-merging kernel from bucket loads.
    pub(crate) fn merge_kernel<C: CurveParams>(&self, loads: &[(u64, u64)]) -> KernelSpec {
        let cost = CurveCost::of::<C>();
        let dev = &self.device;
        let task_macs: Vec<f64> = loads
            .iter()
            .map(|&(entries, dbls)| {
                (entries as f64 * cost.padd_mixed()
                    + dbls as f64 * cost.pdbl() * DOUBLING_HIDE_FACTOR)
                    * MERGE_CG_OVERHEAD
            })
            .collect();
        let task_sectors: Vec<u64> = loads
            .iter()
            .map(|&(entries, _)| {
                // Scattered reads of preprocessed points (×2 gather
                // amplification) + coalesced p_index reads.
                (entries * cost.affine_bytes() * 2 + entries * 8) / dev.sector_bytes
            })
            .collect();

        let mut blocks: Vec<BlockCost> = if self.load_balance {
            // §4.2: group tasks by load, schedule heaviest first, give big
            // tasks proportionally more warps.
            let total: f64 = task_macs.iter().sum();
            let warp_budget = (dev.num_sms as f64) * 64.0;
            let target = (total / warp_budget).max(1.0);
            let mut blocks = Vec::new();
            for (i, &macs) in task_macs.iter().enumerate() {
                if macs == 0.0 {
                    continue;
                }
                let warps = ((macs / target).ceil() as u64).clamp(1, 64);
                for w in 0..warps {
                    blocks.push(BlockCost {
                        mac_ops: macs / warps as f64,
                        dram_sectors: task_sectors[i] / warps
                            + u64::from(w == 0) * (task_sectors[i] % warps),
                        shared_bytes: cost.jacobian_bytes() * 2,
                    });
                }
            }
            // Heaviest first so no straggler is left for the final wave.
            blocks.sort_by(|a, b| b.mac_ops.total_cmp(&a.mac_ops));
            blocks
        } else {
            // Ablation: one warp per bucket, natural order.
            task_macs
                .iter()
                .zip(&task_sectors)
                .filter(|(m, _)| **m > 0.0)
                .map(|(&macs, &sectors)| BlockCost {
                    mac_ops: macs,
                    dram_sectors: sectors,
                    shared_bytes: cost.jacobian_bytes() * 2,
                })
                .collect()
        };
        if blocks.is_empty() {
            blocks.push(BlockCost::default());
        }
        KernelSpec {
            name: format!(
                "gzkp.point-merge({} tasks{})",
                loads.iter().filter(|l| l.0 > 0).count(),
                if self.load_balance { ", LB" } else { "" }
            ),
            threads_per_block: 32, // warp-granular tasks
            shared_mem_per_block: 0,
            backend: self.backend,
            limbs: cost.speedup_limbs(),
            blocks,
        }
    }

    /// Cost stage: p_index build, cross-window point-merging, prefix-sum
    /// bucket reduction.
    pub(crate) fn stage<C: CurveParams>(
        &self,
        n: usize,
        k: u32,
        windows: usize,
        loads: &[(u64, u64)],
    ) -> StageReport {
        let cost = CurveCost::of::<C>();
        let dev = &self.device;
        let mut stage = StageReport::new("msm-gzkp");
        stage.add_fixed("host-sync+transfer", MSM_HOST_OVERHEAD_NS);

        // Bucket-info construction: windows·n digit extracts + scatter.
        let entries = (windows * n) as u64;
        let idx_blocks = (entries / 4096).max(1) as usize;
        stage.run(
            dev,
            &KernelSpec::uniform(
                "gzkp.p_index",
                256,
                0,
                self.backend,
                cost.speedup_limbs(),
                idx_blocks,
                BlockCost {
                    mac_ops: 4096.0 * 2.0,
                    dram_sectors: 4096 * 16 / dev.sector_bytes.max(1),
                    shared_bytes: 0,
                },
            ),
        );

        // Point-merging (90% of MSM time per §4.1).
        stage.run(dev, &self.merge_kernel::<C>(loads));

        // Parallel-prefix bucket reduction over 2^k buckets.
        let buckets = (1u64 << k) - 1;
        let red_blocks = (buckets / 256).max(1) as usize;
        stage.run(
            dev,
            &KernelSpec::uniform(
                format!("gzkp.bucket-reduce(2^{k})"),
                256,
                16 * 1024,
                self.backend,
                cost.speedup_limbs(),
                red_blocks,
                BlockCost {
                    mac_ops: 2.0 * (buckets / red_blocks as u64) as f64 * cost.padd(),
                    dram_sectors: (buckets / red_blocks as u64) * cost.jacobian_bytes()
                        / dev.sector_bytes,
                    shared_bytes: 256 * cost.jacobian_bytes(),
                },
            ),
        );
        stage
    }

    /// Cost of the one-time checkpoint preprocessing (setup phase; excluded
    /// from the MSM stage, like the paper's).
    pub fn plan_preprocess<C: CurveParams>(&self, n: usize) -> StageReport {
        let cost = CurveCost::of::<C>();
        let k = self.k_for(n);
        let bits = <C::Scalar as PrimeField>::MODULUS_BITS;
        let windows = bits.div_ceil(k) as usize;
        let m = self.interval_for::<C>(n, windows);
        let levels = Self::levels(windows, m);
        let mut stage = StageReport::new("msm-gzkp-preprocess");
        if levels <= 1 {
            return stage;
        }
        let blocks = (n / 256).max(1);
        stage.run(
            &self.device,
            &KernelSpec::uniform(
                format!("gzkp.preprocess({levels} levels, M={m})"),
                256,
                0,
                self.backend,
                cost.speedup_limbs(),
                blocks,
                BlockCost {
                    mac_ops: 256.0 * ((levels - 1) as f64) * (m * k) as f64 * cost.pdbl(),
                    dram_sectors: 256 * (levels as u64) * cost.affine_bytes()
                        / self.device.sector_bytes,
                    shared_bytes: 0,
                },
            ),
        );
        stage
    }

    /// Cross-window batch-affine accumulation of the bucket slots
    /// `base..base + buckets.len()` (absolute slot indices; slot `j` holds
    /// digit `j+1`), carved into the absolute half-open `ranges` (which
    /// must tile the slice in order) for the parallel bucket tasks.
    /// Algorithm 1's streamed weight vector is advanced window by window
    /// exactly as in the whole-task path, so a single range covering all
    /// slots reproduces the unsharded computation bit for bit.
    #[allow(clippy::too_many_arguments)]
    fn fold_bucket_ranges<C: CurveParams>(
        &self,
        pre: &[Vec<Affine<C>>],
        scalars: &ScalarVec,
        k: u32,
        m: u32,
        windows: usize,
        ranges: &[(usize, usize)],
        buckets: &mut [Affine<C>],
        base: usize,
    ) -> MsmStats {
        let n = scalars.len();
        let mut stats = MsmStats::default();
        let mut temp: Vec<Projective<C>> = Vec::new();
        let mut temp_aff: Vec<Affine<C>> = Vec::new();
        for t in 0..windows {
            let level = (t as u32 / m) as usize;
            let rem = t as u32 % m;
            if m > 1 {
                if rem == 0 {
                    temp.clear();
                } else {
                    if temp.is_empty() {
                        temp = pre[level].iter().map(|p| p.to_projective()).collect();
                    }
                    temp.par_iter_mut().for_each(|p| {
                        for _ in 0..k {
                            *p = p.double();
                        }
                    });
                    temp_aff = batch_to_affine(&temp);
                }
            }
            let sources: &[Affine<C>] = if rem == 0 { &pre[level] } else { &temp_aff };

            // Carve the bucket slice into the task ranges and let every
            // task scan the digit stream for its own buckets.
            let mut parts: Vec<(usize, &mut [Affine<C>])> = Vec::with_capacity(ranges.len());
            let mut rest = &mut buckets[..];
            let mut off = base;
            for &(lo, hi) in ranges {
                let (head, tail) = rest.split_at_mut(hi - off);
                parts.push((lo, head));
                rest = tail;
                off = hi;
            }
            let window_stats: Vec<BatchAffineStats> = parts
                .into_par_iter()
                .map(|(lo, slice)| {
                    let hi = lo + slice.len();
                    let mut entries: Vec<(u32, u32)> = Vec::new();
                    for i in 0..n {
                        let d = scalars.window(i, t, k) as usize;
                        if d != 0 && (lo + 1..=hi).contains(&d) {
                            entries.push(((d - 1 - lo) as u32, i as u32));
                        }
                    }
                    let mut s = BatchAffineStats::default();
                    accumulate_batch_affine(slice, sources, &entries, &mut s);
                    s
                })
                .collect();
            for s in &window_stats {
                stats.batch_padds += s.padds;
                stats.batch_inversions += s.inversions;
            }
        }
        stats
    }

    /// Serial mixed-Jacobian accumulation of the bucket slots `lo..hi`
    /// (the non-batch-affine fallback), returning the bucket sums of
    /// digits `lo+1..=hi`.
    #[allow(clippy::too_many_arguments)]
    fn fold_projective_range<C: CurveParams>(
        &self,
        pre: &[Vec<Affine<C>>],
        scalars: &ScalarVec,
        k: u32,
        m: u32,
        windows: usize,
        lo: usize,
        hi: usize,
    ) -> Vec<Projective<C>> {
        let n = scalars.len();
        let mut buckets = vec![Projective::<C>::identity(); hi - lo];
        let mut temp: Vec<Projective<C>> = Vec::new();
        for t in 0..windows {
            let level = (t as u32 / m) as usize;
            let rem = t as u32 % m;
            if m > 1 {
                if rem == 0 {
                    temp = pre[level].iter().map(|p| p.to_projective()).collect();
                } else {
                    for p in temp.iter_mut() {
                        for _ in 0..k {
                            *p = p.double();
                        }
                    }
                }
            }
            for i in 0..n {
                let d = scalars.window(i, t, k) as usize;
                if d == 0 || !(lo + 1..=hi).contains(&d) {
                    continue;
                }
                let slot = &mut buckets[d - 1 - lo];
                if m == 1 {
                    *slot = slot.add_mixed(&pre[level][i]);
                } else {
                    *slot = slot.add(&temp[i]);
                }
            }
        }
        buckets
    }

    /// Device-resident footprint of one bucket-range pass when the task
    /// is split into `shards` passes: each pass streams the level
    /// sources, scalars, `p_index` and weight workspace through
    /// double-buffered chunks of `n/shards` points, and keeps only its
    /// own bucket range resident.
    pub fn sharded_memory_bytes<C: CurveParams>(&self, n: usize, shards: usize) -> u64 {
        let cost = CurveCost::of::<C>();
        let shards = shards.max(1) as u64;
        let bits = <C::Scalar as PrimeField>::MODULUS_BITS as u64;
        let chunk = (n as u64).div_ceil(shards);
        let per_point = cost.affine_bytes() + bits.div_ceil(64) * 8 + 8 + cost.jacobian_bytes();
        let nb = (1u64 << self.k_for(n)) - 1;
        2 * chunk * per_point + nb.div_ceil(shards) * cost.jacobian_bytes()
    }

    /// Memory plan for an MSM of size `n`: 1 when checkpoint tables +
    /// point vectors fit [`DeviceConfig::global_mem_bytes`] whole,
    /// otherwise the smallest shard count whose per-pass footprint
    /// ([`Self::sharded_memory_bytes`]) fits. A task that exceeds device
    /// memory is always split at least once so that pass `i+1`'s uploads
    /// can double-buffer under pass `i`'s merge kernel.
    pub fn shard_plan<C: CurveParams>(&self, n: usize) -> usize {
        let mem = self.device.global_mem_bytes;
        if MsmEngine::<C>::memory_bytes(self, n) <= mem {
            return 1;
        }
        let nb = (1usize << self.k_for(n)) - 1;
        let mut shards = 2usize;
        while shards < nb && self.sharded_memory_bytes::<C>(n, shards) > mem {
            shards += 1;
        }
        shards
    }

    /// Functional MSM split into `shards` bucket-range partials, each
    /// locally reduced ([`bucket_reduce_range`]) and merged on the host
    /// by projective addition. Partials are exact group elements, so the
    /// merged result is bit-identical to the unsharded run for every
    /// shard count (proptested across both curves).
    pub fn msm_sharded<C: CurveParams>(
        &self,
        points: &[Affine<C>],
        scalars: &ScalarVec,
        shards: usize,
    ) -> MsmRun<C> {
        assert_eq!(points.len(), scalars.len());
        let n = points.len();
        let k = self.k_for(n);
        let windows = scalars.num_windows(k);
        let m = self.interval_for::<C>(n, windows);
        let pre = self.preprocess_cached(points, k, m, windows);
        let loads = Self::bucket_loads(scalars, k, m);
        let shard_ranges = Self::balanced_ranges(&loads, shards.max(1));

        let mut stats = MsmStats {
            shards: shard_ranges.len() as u64,
            ..MsmStats::default()
        };
        let mut result = Projective::<C>::identity();
        for &(lo, hi) in &shard_ranges {
            let partial = if self.batch_affine {
                let tasks = if self.parallel {
                    rayon::current_num_threads().max(1)
                } else {
                    1
                };
                let sub = Self::balanced_ranges(&loads[lo..hi], tasks);
                let abs: Vec<(usize, usize)> = sub.iter().map(|&(a, b)| (lo + a, lo + b)).collect();
                let mut buckets = vec![Affine::<C>::identity(); hi - lo];
                let s =
                    self.fold_bucket_ranges(&pre, scalars, k, m, windows, &abs, &mut buckets, lo);
                stats.batch_padds += s.batch_padds;
                stats.batch_inversions += s.batch_inversions;
                let projective: Vec<Projective<C>> =
                    buckets.iter().map(Affine::to_projective).collect();
                bucket_reduce_range(&projective, lo as u64)
            } else {
                let buckets = self.fold_projective_range(&pre, scalars, k, m, windows, lo, hi);
                bucket_reduce_range(&buckets, lo as u64)
            };
            result = result.add(&partial);
        }
        let report = self.stage_sharded::<C>(n, k, m, windows, &loads, &shard_ranges);
        MsmRun {
            result,
            report,
            stats,
        }
    }

    /// Cost stage of a sharded run: per-pass merge kernels scheduled on a
    /// [`DeviceTimeline`] so pass `i+1`'s level-stream upload overlaps
    /// pass `i`'s kernel; only the copy time compute cannot hide shows up
    /// as a fixed "exposed" item. With a single range this is exactly the
    /// whole-task [`Self::stage`].
    #[allow(clippy::too_many_arguments)]
    fn stage_sharded<C: CurveParams>(
        &self,
        n: usize,
        k: u32,
        m: u32,
        windows: usize,
        loads: &[(u64, u64)],
        shard_ranges: &[(usize, usize)],
    ) -> StageReport {
        if shard_ranges.len() <= 1 {
            return self.stage::<C>(n, k, windows, loads);
        }
        let cost = CurveCost::of::<C>();
        let dev = &self.device;
        let mut stage = StageReport::new(format!("msm-gzkp-sharded(x{})", shard_ranges.len()));
        stage.add_fixed("host-sync+transfer", MSM_HOST_OVERHEAD_NS);

        // Digit extraction once; its p_index is reused by every pass.
        let entries = (windows * n) as u64;
        let idx_blocks = (entries / 4096).max(1) as usize;
        stage.run(
            dev,
            &KernelSpec::uniform(
                "gzkp.p_index",
                256,
                0,
                self.backend,
                cost.speedup_limbs(),
                idx_blocks,
                BlockCost {
                    mac_ops: 4096.0 * 2.0,
                    dram_sectors: 4096 * 16 / dev.sector_bytes.max(1),
                    shared_bytes: 0,
                },
            ),
        );

        // Every pass re-streams the stored levels + scalars + p_index;
        // that S-fold transfer amplification is the price of fitting, and
        // the double-buffered schedule is what hides most of it.
        let levels = Self::levels(windows, m) as u64;
        let sbytes = <C::Scalar as PrimeField>::MODULUS_BITS.div_ceil(64) as u64 * 8;
        let pass_bytes = n as u64 * (cost.affine_bytes() * levels + sbytes + 8);
        let mut tl = DeviceTimeline::new(dev.clone());
        let copy = tl.stream();
        let exec = tl.stream();
        let mut kernel_ns = 0.0;
        for (i, &(lo, hi)) in shard_ranges.iter().enumerate() {
            let ev = tl.h2d(copy, &format!("shard{i}.h2d"), pass_bytes, HostMem::Pinned);
            tl.wait(exec, ev);
            let mut spec = self.merge_kernel::<C>(&loads[lo..hi]);
            spec.name = format!("shard{i}.{}", spec.name);
            let rep = simulate_kernel(dev, &spec);
            tl.kernel_ns(exec, &spec.name, rep.time_ns);
            kernel_ns += rep.time_ns;
            stage.kernels.push(rep);
            tl.d2h(
                exec,
                &format!("shard{i}.partial"),
                cost.jacobian_bytes(),
                HostMem::Pinned,
            );
        }
        let exposed = (tl.elapsed_ns() - kernel_ns).max(0.0);
        stage.add_fixed(
            format!("h2d+d2h exposed ({} passes, pipelined)", shard_ranges.len()),
            exposed,
        );

        // Per-pass local reductions sum to the same running-sum work as
        // the whole-task reduction kernel; host-side partial merging is
        // a handful of PADDs, folded into host-sync.
        let buckets = (1u64 << k) - 1;
        let red_blocks = (buckets / 256).max(1) as usize;
        stage.run(
            dev,
            &KernelSpec::uniform(
                format!("gzkp.bucket-reduce(2^{k}, sharded)"),
                256,
                16 * 1024,
                self.backend,
                cost.speedup_limbs(),
                red_blocks,
                BlockCost {
                    mac_ops: 2.0 * (buckets / red_blocks as u64) as f64 * cost.padd(),
                    dram_sectors: (buckets / red_blocks as u64) * cost.jacobian_bytes()
                        / dev.sector_bytes,
                    shared_bytes: 256 * cost.jacobian_bytes(),
                },
            ),
        );
        stage
    }

    /// Freezes one MSM into a [`ShardTask`] of `shards` bucket-range
    /// partials for cross-device execution. The window size `k` and
    /// checkpoint interval `M` are fixed by *this* (reference) engine, so
    /// every device computes against the same digit decomposition and
    /// checkpoint tables — which is what makes the merged result
    /// bit-identical to this engine's own single-device run regardless of
    /// how many devices execute the ranges or in what order.
    pub fn shard_task<C: CurveParams>(
        &self,
        points: &[Affine<C>],
        scalars: &ScalarVec,
        shards: usize,
    ) -> ShardTask<C> {
        assert_eq!(points.len(), scalars.len());
        let n = points.len();
        let k = self.k_for(n);
        let windows = scalars.num_windows(k);
        let m = self.interval_for::<C>(n, windows);
        let pre = self.preprocess_cached(points, k, m, windows);
        let loads = Self::bucket_loads(scalars, k, m);
        let ranges = Self::balanced_ranges(&loads, shards.max(1));
        ShardTask {
            pre,
            loads,
            ranges,
            k,
            m,
            windows,
            n,
        }
    }

    /// Dense-uniform bucket load synthesis at scale `n` (Tables 7/8 sweeps).
    fn dense_loads(&self, n: usize, k: u32, windows: usize, m: u32) -> Vec<(u64, u64)> {
        let buckets = (1usize << k) - 1;
        let entries_total = (n as f64) * (windows as f64) * (1.0 - 1.0 / (1u64 << k) as f64);
        let per_bucket = (entries_total / buckets as f64) as u64;
        // Streamed realization: k shared doublings per entry of every
        // non-checkpoint window ((M−1)/M of windows).
        let avg_dbl = k as f64 * (m as f64 - 1.0) / m as f64;
        vec![(per_bucket, (per_bucket as f64 * avg_dbl) as u64); buckets]
    }
}

impl<C: CurveParams> MsmEngine<C> for GzkpMsm {
    fn name(&self) -> String {
        match (self.load_balance, self.backend) {
            (true, _) => "GZKP".into(),
            (false, Backend::Integer) => "GZKP-no-LB".into(),
            (false, Backend::FpLib) => "GZKP-no-LB w. lib".into(),
        }
    }

    fn msm(&self, points: &[Affine<C>], scalars: &ScalarVec) -> MsmRun<C> {
        assert_eq!(points.len(), scalars.len());
        let n = points.len();
        let planned = self.shard_plan::<C>(n);
        if planned > 1 {
            // Checkpoint tables + point vectors exceed device memory:
            // run device-sized bucket-range passes merged on the host.
            return self.msm_sharded(points, scalars, planned);
        }
        let k = self.k_for(n);
        let windows = scalars.num_windows(k);
        let m = self.interval_for::<C>(n, windows);
        let pre = self.preprocess_cached(points, k, m, windows);
        let loads = Self::bucket_loads(scalars, k, m);

        // Cross-window point-merging into 2^k − 1 consolidated buckets.
        // Algorithm 1 realized with a streamed weight vector: inside each
        // checkpoint span the whole vector is advanced by k doublings per
        // window (shared across that window's entries), so the on-the-fly
        // work is k doublings per point per non-aligned window instead of
        // `(t mod M)·k` per entry — same results, the time/space tradeoff
        // the checkpoint interval is for.
        let nb = (1usize << k) - 1;
        let mut stats = MsmStats {
            shards: 1,
            ..MsmStats::default()
        };
        let result = if self.batch_affine {
            // Bucket-task partitioning across threads: each task owns a
            // contiguous bucket range of roughly equal entry load and
            // folds its entries with Montgomery-batched affine adds.
            // Affine intermediates are exact group elements, so the
            // result is bit-identical at every thread count.
            let tasks = if self.parallel {
                rayon::current_num_threads().max(1)
            } else {
                1
            };
            let ranges = Self::balanced_ranges(&loads, tasks);
            let mut buckets = vec![Affine::<C>::identity(); nb];
            let s = self.fold_bucket_ranges(&pre, scalars, k, m, windows, &ranges, &mut buckets, 0);
            stats.batch_padds = s.batch_padds;
            stats.batch_inversions = s.batch_inversions;
            let projective: Vec<Projective<C>> =
                buckets.iter().map(Affine::to_projective).collect();
            bucket_reduce(&projective)
        } else {
            // One bucket reduction; no window reduction remains (§4.1).
            let buckets = self.fold_projective_range(&pre, scalars, k, m, windows, 0, nb);
            bucket_reduce(&buckets)
        };

        let report = self.stage::<C>(n, k, windows, &loads);
        MsmRun {
            result,
            report,
            stats,
        }
    }

    fn emit_msm_telemetry(
        &self,
        points: &[Affine<C>],
        scalars: &ScalarVec,
        run: &MsmRun<C>,
        sink: &dyn gzkp_telemetry::TelemetrySink,
    ) {
        if sink.enabled() {
            gzkp_telemetry::emit_stage(sink, &run.report);
            // The engine's internal bucket-load profile gives the exact
            // point-operation counts and the Figure 6 occupancy shape.
            let n = points.len();
            let k = self.k_for(n);
            let windows = scalars.num_windows(k);
            let m = self.interval_for::<C>(n, windows);
            let loads = Self::bucket_loads(scalars, k, m);
            let entries: u64 = loads.iter().map(|l| l.0).sum();
            let dbls: u64 = loads.iter().map(|l| l.1).sum();
            let buckets = loads.len() as u64;
            use gzkp_telemetry::counters;
            // One mixed PADD per merged entry + the running-sum reduction's
            // 2(m−1) full PADDs over 2^k − 1 buckets.
            sink.counter(counters::MSM_PADD, (entries + 2 * (buckets - 1)) as f64);
            sink.counter(counters::MSM_PDBL, dbls as f64);
            sink.counter(
                counters::MSM_OCCUPIED_BUCKETS,
                loads.iter().filter(|l| l.0 > 0).count() as f64,
            );
            if self.batch_affine {
                sink.counter(
                    counters::MSM_BATCH_INVERSIONS,
                    run.stats.batch_inversions as f64,
                );
                sink.counter(
                    counters::MSM_BATCH_INV_SAVED,
                    run.stats.inversions_saved() as f64,
                );
            }
            if run.stats.shards > 1 {
                sink.counter(counters::RUNTIME_SHARDS, run.stats.shards as f64);
            }
            sink.histogram(
                "bucket_occupancy",
                &gzkp_telemetry::log2_histogram(loads.iter().map(|l| l.0)),
            );
            sink.value(
                counters::PEAK_DEVICE_BYTES,
                MsmEngine::<C>::memory_bytes(self, n) as f64,
            );
        }
    }

    fn plan(&self, scalars: &ScalarVec) -> StageReport {
        let n = scalars.len();
        let k = self.k_for(n);
        let windows = scalars.num_windows(k);
        let m = self.interval_for::<C>(n, windows);
        let loads = Self::bucket_loads(scalars, k, m);
        self.stage::<C>(n, k, windows, &loads)
    }

    fn plan_dense(&self, n: usize) -> StageReport {
        let k = self.k_for(n);
        let bits = <C::Scalar as PrimeField>::MODULUS_BITS;
        let windows = bits.div_ceil(k) as usize;
        let m = self.interval_for::<C>(n, windows);
        let loads = self.dense_loads(n, k, windows, m);
        self.stage::<C>(n, k, windows, &loads)
    }

    fn memory_bytes(&self, n: usize) -> u64 {
        let cost = CurveCost::of::<C>();
        let k = self.k_for(n);
        let bits = <C::Scalar as PrimeField>::MODULUS_BITS;
        let windows = bits.div_ceil(k) as usize;
        let m = self.interval_for::<C>(n, windows);
        let levels = Self::levels(windows, m) as u64;
        n as u64 * (cost.affine_bytes() + (bits as u64).div_ceil(64) * 8) // inputs
            + (levels - 1) * n as u64 * cost.affine_bytes() // extra checkpoint levels
            // Streamed weight vector: points are processed in segments (the
            // merge order is commutative), so the resident workspace is
            // bounded regardless of n.
            + u64::from(m > 1) * (n as u64 * cost.jacobian_bytes()).min(2 << 30)
            + n as u64 * 8 // p_index (per window batch)
            + ((1u64 << k) - 1) * cost.jacobian_bytes() // buckets
    }
}

/// One MSM frozen into bucket-range partials that distinct devices can
/// execute independently (the cross-device realization of the paper's
/// multi-GPU split, Table 4 / SZKP's cross-chip partitioning).
///
/// All parameters — window size, checkpoint interval, checkpoint tables,
/// bucket loads, range boundaries — are fixed at construction by the
/// reference engine ([`GzkpMsm::shard_task`]); executing engines only
/// contribute their device for kernel pricing and their thread pool for
/// the fold. Each [`Self::partial`] is an exact group element, and
/// merging the partials in range order ([`Self::merge`]) reproduces the
/// reference engine's single-device result bit for bit.
pub struct ShardTask<C: CurveParams> {
    pre: Arc<Vec<Vec<Affine<C>>>>,
    loads: Vec<(u64, u64)>,
    ranges: Vec<(usize, usize)>,
    k: u32,
    m: u32,
    windows: usize,
    n: usize,
}

impl<C: CurveParams> ShardTask<C> {
    /// The bucket-index ranges, one per shard, in merge order.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// Number of bucket-range shards.
    pub fn num_ranges(&self) -> usize {
        self.ranges.len()
    }

    /// Window size `k` frozen by the reference engine.
    pub fn window(&self) -> u32 {
        self.k
    }

    /// Checkpoint interval `M` frozen by the reference engine.
    pub fn checkpoint_interval(&self) -> u32 {
        self.m
    }

    /// Bytes a device must stream to execute one range: every pass reads
    /// all checkpoint levels, the scalars, and the `p_index` (bucket
    /// ranges filter by digit value, not point index, so the full point
    /// stream is needed regardless of the range).
    pub fn pass_bytes(&self) -> u64 {
        let cost = CurveCost::of::<C>();
        let levels = GzkpMsm::levels(self.windows, self.m) as u64;
        let sbytes = <C::Scalar as PrimeField>::MODULUS_BITS.div_ceil(64) as u64 * 8;
        self.n as u64 * (cost.affine_bytes() * levels + sbytes + 8)
    }

    /// Bytes shipped to the device owning range `index` when the host
    /// pre-partitions the entry stream by bucket range (the cross-device
    /// schedule): only the checkpoint rows whose digit lands in the range
    /// travel, so the upload scales with the range's share of the total
    /// entry load. This asymmetry with [`Self::pass_bytes`] is
    /// deliberate — a *single* device running every pass cannot hold the
    /// partition and must re-stream everything, while distinct devices
    /// each hold exactly their slice. Never less than the scalars +
    /// `p_index` (every device needs the digit stream to index its
    /// slice).
    pub fn pass_bytes_for(&self, index: usize) -> u64 {
        if self.ranges.len() <= 1 {
            return self.pass_bytes();
        }
        let (lo, hi) = self.ranges[index];
        let total: u64 = self.loads.iter().map(|&(e, _)| e).sum();
        let share: u64 = self.loads[lo..hi].iter().map(|&(e, _)| e).sum();
        let cost = CurveCost::of::<C>();
        let levels = GzkpMsm::levels(self.windows, self.m) as u64;
        let sbytes = <C::Scalar as PrimeField>::MODULUS_BITS.div_ceil(64) as u64 * 8;
        let full = self.n as u128 * (cost.affine_bytes() * levels) as u128;
        let points = (full * share as u128 / total.max(1) as u128) as u64;
        points + self.n as u64 * (sbytes + 8)
    }

    /// Bytes of one merged partial (a single Jacobian point): the payload
    /// of the device→device partial-sum merge.
    pub fn partial_bytes(&self) -> u64 {
        CurveCost::of::<C>().jacobian_bytes()
    }

    /// Simulated kernel time of range `index` on `engine`'s device:
    /// the point-merge over the range's bucket loads plus the local
    /// prefix reduction of its buckets. This is the scheduling cost the
    /// fleet overlaps uploads and P2P merges against.
    pub fn range_kernel_ns(&self, engine: &GzkpMsm, index: usize) -> f64 {
        let (lo, hi) = self.ranges[index];
        let cost = CurveCost::of::<C>();
        let merge = simulate_kernel(
            &engine.device,
            &engine.merge_kernel::<C>(&self.loads[lo..hi]),
        );
        let buckets = (hi - lo).max(1) as u64;
        let red_blocks = (buckets / 256).max(1) as usize;
        let reduce = simulate_kernel(
            &engine.device,
            &KernelSpec::uniform(
                format!("gzkp.bucket-reduce({lo}..{hi})"),
                256,
                16 * 1024,
                engine.backend,
                cost.speedup_limbs(),
                red_blocks,
                BlockCost {
                    mac_ops: 2.0 * (buckets / red_blocks as u64) as f64 * cost.padd(),
                    dram_sectors: (buckets / red_blocks as u64) * cost.jacobian_bytes()
                        / engine.device.sector_bytes,
                    shared_bytes: 256 * cost.jacobian_bytes(),
                },
            ),
        );
        merge.time_ns + reduce.time_ns
    }

    /// Executes range `index` with `engine`'s fold configuration
    /// (batch-affine / parallel), returning the exact partial group
    /// element and its operation stats. Deterministic at every thread
    /// count: affine intermediates are exact, so the partial bytes do not
    /// depend on how the fold was parallelized.
    pub fn partial(
        &self,
        engine: &GzkpMsm,
        scalars: &ScalarVec,
        index: usize,
    ) -> (Projective<C>, MsmStats) {
        let (lo, hi) = self.ranges[index];
        let mut stats = MsmStats::default();
        let partial = if engine.batch_affine {
            let tasks = if engine.parallel {
                rayon::current_num_threads().max(1)
            } else {
                1
            };
            let sub = GzkpMsm::balanced_ranges(&self.loads[lo..hi], tasks);
            let abs: Vec<(usize, usize)> = sub.iter().map(|&(a, b)| (lo + a, lo + b)).collect();
            let mut buckets = vec![Affine::<C>::identity(); hi - lo];
            let s = engine.fold_bucket_ranges(
                &self.pre,
                scalars,
                self.k,
                self.m,
                self.windows,
                &abs,
                &mut buckets,
                lo,
            );
            stats.batch_padds += s.batch_padds;
            stats.batch_inversions += s.batch_inversions;
            let projective: Vec<Projective<C>> =
                buckets.iter().map(Affine::to_projective).collect();
            bucket_reduce_range(&projective, lo as u64)
        } else {
            let buckets = engine.fold_projective_range(
                &self.pre,
                scalars,
                self.k,
                self.m,
                self.windows,
                lo,
                hi,
            );
            bucket_reduce_range(&buckets, lo as u64)
        };
        (partial, stats)
    }

    /// Merges per-range partials in range order — the same left fold
    /// [`GzkpMsm::msm_sharded`] performs, hence the same bytes.
    pub fn merge(&self, partials: &[Projective<C>]) -> Projective<C> {
        assert_eq!(partials.len(), self.ranges.len());
        let mut result = Projective::<C>::identity();
        for partial in partials {
            result = result.add(partial);
        }
        result
    }
}

/// Profiling-based window configuration (§4.1): evaluates the dense-load
/// plan for a range of window sizes and returns the fastest.
pub fn profile_window_size<C: CurveParams>(device: &DeviceConfig, n: usize) -> u32 {
    let mut best = (f64::INFINITY, default_window_size(n));
    for k in 6..=18u32 {
        let engine = GzkpMsm {
            window: Some(k),
            ..GzkpMsm::new(device.clone())
        };
        let t = MsmEngine::<C>::plan_dense(&engine, n).total_ns();
        if t < best.0 {
            best = (t, k);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::naive_msm;
    use gzkp_curves::bn254::{Fr, G1Config};
    use gzkp_curves::random_points;
    use gzkp_ff::Field;
    use gzkp_gpu_sim::device::v100;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, seed: u64) -> (Vec<Affine<G1Config>>, ScalarVec) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = random_points::<G1Config, _>(n, &mut rng);
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        (pts, ScalarVec::from_field(&scalars))
    }

    #[test]
    fn matches_naive_oracle() {
        let (pts, sv) = setup(80, 41);
        let run = GzkpMsm::new(v100()).msm(&pts, &sv);
        assert_eq!(run.result, naive_msm(&pts, &sv));
    }

    #[test]
    fn checkpoint_interval_invariance() {
        // Algorithm 1 must give the same result for every M.
        let (pts, sv) = setup(24, 42);
        let expect = naive_msm(&pts, &sv);
        for m in [1u32, 2, 3, 5, 64] {
            let e = GzkpMsm {
                checkpoint_interval: Some(m),
                window: Some(8),
                ..GzkpMsm::new(v100())
            };
            assert_eq!(e.msm(&pts, &sv).result, expect, "M={m}");
        }
    }

    #[test]
    fn sharded_matches_unsharded() {
        let (pts, sv) = setup(96, 46);
        let engine = GzkpMsm::new(v100());
        let whole = engine.msm(&pts, &sv);
        assert_eq!(whole.stats.shards, 1);
        for shards in [1usize, 2, 3, 7, 31] {
            let run = engine.msm_sharded(&pts, &sv, shards);
            assert_eq!(run.result, whole.result, "shards={shards}");
            assert_eq!(
                gzkp_curves::compress(&run.result.to_affine()),
                gzkp_curves::compress(&whole.result.to_affine()),
                "shards={shards}"
            );
            assert!(run.stats.shards >= 1 && run.stats.shards <= shards as u64);
        }
    }

    #[test]
    fn sharded_matches_without_batch_affine() {
        let (pts, sv) = setup(48, 47);
        let engine = GzkpMsm {
            batch_affine: false,
            parallel: false,
            ..GzkpMsm::new(v100())
        };
        let whole = engine.msm(&pts, &sv).result;
        for shards in [2usize, 5] {
            assert_eq!(engine.msm_sharded(&pts, &sv, shards).result, whole);
        }
    }

    #[test]
    fn shard_task_partials_merge_bit_identically() {
        // The cross-device contract: partials computed by *different*
        // engine instances (different devices, different fold configs)
        // against one frozen task merge to the reference engine's exact
        // single-device bytes.
        let (pts, sv) = setup(96, 49);
        let reference = GzkpMsm::new(v100());
        let whole = reference.msm(&pts, &sv);
        for shards in [2usize, 3, 4] {
            let task = reference.shard_task::<G1Config>(&pts, &sv, shards);
            assert_eq!(task.num_ranges(), shards);
            let other = GzkpMsm {
                parallel: false,
                ..GzkpMsm::new(gzkp_gpu_sim::gtx1080ti())
            };
            let partials: Vec<_> = (0..task.num_ranges())
                .map(|i| {
                    let engine = if i % 2 == 0 { &reference } else { &other };
                    task.partial(engine, &sv, i).0
                })
                .collect();
            let merged = task.merge(&partials);
            assert_eq!(
                gzkp_curves::compress(&merged.to_affine()),
                gzkp_curves::compress(&whole.result.to_affine()),
                "shards={shards}"
            );
            assert!(task.range_kernel_ns(&reference, 0) > 0.0);
            assert!(task.pass_bytes() > 0 && task.partial_bytes() > 0);
        }
    }

    #[test]
    fn tiny_device_auto_shards_bit_identically() {
        // A device too small to hold the task whole: `msm` must detect it,
        // take the sharded path, and still produce the exact bytes the
        // big-memory run does.
        let (pts, sv) = setup(256, 48);
        let big = GzkpMsm::new(v100()).msm(&pts, &sv);
        let tiny_dev = DeviceConfig {
            global_mem_bytes: 48 * 1024,
            ..v100()
        };
        let tiny = GzkpMsm::new(tiny_dev.clone());
        let planned = tiny.shard_plan::<G1Config>(256);
        assert!(planned > 1, "plan should shard, got {planned}");
        let run = tiny.msm(&pts, &sv);
        assert_eq!(run.stats.shards, planned as u64);
        assert_eq!(
            gzkp_curves::compress(&run.result.to_affine()),
            gzkp_curves::compress(&big.result.to_affine())
        );
        // The sharded pass must actually fit where the whole task did not.
        assert!(MsmEngine::<G1Config>::memory_bytes(&tiny, 256) > tiny_dev.global_mem_bytes);
        assert!(tiny.sharded_memory_bytes::<G1Config>(256, planned) <= tiny_dev.global_mem_bytes);
    }

    #[test]
    fn sharded_memory_monotone_and_planned() {
        let e = GzkpMsm::new(gzkp_gpu_sim::gtx1080ti());
        let n = 1 << 20;
        let mut prev = u64::MAX;
        for s in [1usize, 2, 4, 8, 16] {
            let b = e.sharded_memory_bytes::<gzkp_curves::t753::G1Config>(n, s);
            assert!(b <= prev, "shards={s}");
            prev = b;
        }
    }

    #[test]
    fn past_1080ti_memory_completes_via_sharding_plan() {
        // Acceptance shape: a 753-bit MSM at 2^25 exceeds a single
        // 1080 Ti even at the maximum checkpoint interval (the Algorithm 1
        // knob is exhausted), so before the planner existed it could only
        // run whole — i.e. OOM. The plan now splits it into passes that
        // each fit.
        let dev = gzkp_gpu_sim::gtx1080ti();
        let e = GzkpMsm::new(dev.clone());
        let n = 1usize << 25;
        type C753 = gzkp_curves::t753::G1Config;
        assert!(
            MsmEngine::<C753>::memory_bytes(&e, n) > dev.global_mem_bytes,
            "whole task should exceed the 1080 Ti"
        );
        let shards = e.shard_plan::<C753>(n);
        assert!(shards > 1);
        assert!(e.sharded_memory_bytes::<C753>(n, shards) <= dev.global_mem_bytes);
        // The sharded cost stage prices the S-fold re-streaming with
        // copy/compute overlap: it must be dearer than the (infeasible)
        // whole-task plan, but not by anywhere near the un-pipelined
        // transfer amplification.
        let loads = e.dense_loads(n, e.k_for(n), 94, 1);
        let whole_ns = e.stage::<C753>(n, e.k_for(n), 94, &loads).total_ns();
        let ranges = GzkpMsm::balanced_ranges(&loads, shards);
        let sharded_ns = e
            .stage_sharded::<C753>(n, e.k_for(n), 1, 94, &loads, &ranges)
            .total_ns();
        assert!(sharded_ns > whole_ns);
        assert!(sharded_ns < whole_ns * shards as f64);
    }

    #[test]
    fn no_lb_variant_is_functionally_identical() {
        let (pts, sv) = setup(40, 43);
        let a = GzkpMsm::new(v100()).msm(&pts, &sv).result;
        let b = GzkpMsm::no_load_balance(v100()).msm(&pts, &sv).result;
        assert_eq!(a, b);
    }

    #[test]
    fn sparse_workload_load_balance_wins() {
        // Figure 10's sparse story: with skewed bucket loads, the
        // load-balanced plan beats the naive bucket order.
        let n = 1 << 12;
        let mut rng = StdRng::seed_from_u64(44);
        // Heavy skew: 80% of scalars are tiny (0/1/2), rest random.
        let scalars: Vec<Fr> = (0..n)
            .map(|i| {
                if i % 5 != 0 {
                    Fr::from_u64((i % 3) as u64)
                } else {
                    Fr::random(&mut rng)
                }
            })
            .collect();
        let sv = ScalarVec::from_field(&scalars);
        let lb = GzkpMsm {
            backend: Backend::Integer,
            ..GzkpMsm::new(v100())
        };
        let no_lb = GzkpMsm::no_load_balance(v100());
        let t_lb = MsmEngine::<G1Config>::plan(&lb, &sv).total_ns();
        let t_no = MsmEngine::<G1Config>::plan(&no_lb, &sv).total_ns();
        assert!(t_lb < t_no, "LB {t_lb} should beat no-LB {t_no}");
    }

    #[test]
    fn memory_adapts_to_budget() {
        // Figure 9: auto-M keeps GZKP's footprint under the device limit
        // even at scales where full preprocessing would not fit.
        let e = GzkpMsm::new(v100());
        for log_n in [18u32, 20, 22, 24, 26] {
            let m = MsmEngine::<gzkp_curves::t753::G1Config>::memory_bytes(&e, 1 << log_n);
            assert!(
                m <= v100().global_mem_bytes,
                "2^{log_n}: {m} bytes exceeds device"
            );
        }
    }

    #[test]
    fn beats_submsm_baseline_dense() {
        // Headline Table 7 shape: GZKP several × faster than bellperson.
        let e = GzkpMsm::new(v100());
        let b = crate::submsm::SubMsmPippenger::new(v100());
        let t_g = MsmEngine::<G1Config>::plan_dense(&e, 1 << 20).total_ns();
        let t_b = MsmEngine::<G1Config>::plan_dense(&b, 1 << 20).total_ns();
        assert!(t_g * 2.0 < t_b, "GZKP {t_g} vs BG {t_b}");
    }

    #[test]
    fn profiled_window_is_sane() {
        let k = profile_window_size::<G1Config>(&v100(), 1 << 16);
        assert!((6..=18).contains(&k));
    }

    #[test]
    fn works_on_g2_and_t753() {
        use gzkp_curves::bn254::G2Config;
        let mut rng = StdRng::seed_from_u64(45);
        let pts = random_points::<G2Config, _>(16, &mut rng);
        let scalars: Vec<Fr> = (0..16).map(|_| Fr::random(&mut rng)).collect();
        let sv = ScalarVec::from_field(&scalars);
        assert_eq!(
            GzkpMsm::new(v100()).msm(&pts, &sv).result,
            naive_msm(&pts, &sv)
        );

        use gzkp_curves::t753;
        let pts = random_points::<t753::G1Config, _>(8, &mut rng);
        let scalars: Vec<t753::Fr> = (0..8).map(|_| t753::Fr::random(&mut rng)).collect();
        let sv = ScalarVec::from_field(&scalars);
        assert_eq!(
            GzkpMsm::new(v100()).msm(&pts, &sv).result,
            naive_msm(&pts, &sv)
        );
    }
}
