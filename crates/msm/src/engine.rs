//! The common MSM engine interface and shared cost-model helpers.

use crate::scalars::ScalarVec;
use gzkp_curves::{Affine, CurveParams, Projective};
use gzkp_ff::Field;
use gzkp_gpu_sim::device::{field_add_macs, field_mul_macs};
use gzkp_gpu_sim::kernel::StageReport;
use gzkp_telemetry::{emit_stage, TelemetrySink};

/// Result of a functional MSM run: the inner product and the simulated
/// execution report.
#[derive(Debug)]
pub struct MsmRun<C: CurveParams> {
    /// `Σ sᵢ ⊗ Pᵢ`.
    pub result: Projective<C>,
    /// Simulated time breakdown.
    pub report: StageReport,
    /// Work counters from the run (zero for engines without batch-affine
    /// accumulation).
    pub stats: MsmStats,
}

/// Aggregate work counters an engine collects while running, surfaced
/// through telemetry by [`MsmEngine::emit_msm_telemetry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MsmStats {
    /// Affine PADDs performed through Montgomery-batched rounds.
    pub batch_padds: u64,
    /// Field inversions actually executed by the batch accumulator.
    pub batch_inversions: u64,
    /// Bucket-range shards the task was split into by the memory planner
    /// (0 for engines without a sharded path, 1 for a whole-task run).
    pub shards: u64,
}

impl MsmStats {
    /// Field inversions amortized away by batching (each batched PADD
    /// would otherwise need its own inversion).
    pub fn inversions_saved(&self) -> u64 {
        self.batch_padds.saturating_sub(self.batch_inversions)
    }
}

/// A multi-scalar-multiplication engine.
///
/// Every engine computes the same inner product (cross-validated in tests);
/// they differ in algorithm and execution structure, which the cost model
/// prices per DESIGN.md.
pub trait MsmEngine<C: CurveParams>: Send + Sync {
    /// Engine label for reports ("BG", "MINA", "GZKP", …).
    fn name(&self) -> String;

    /// Functional MSM plus simulated cost.
    ///
    /// # Panics
    ///
    /// Panics if `points.len() != scalars.len()`.
    fn msm(&self, points: &[Affine<C>], scalars: &ScalarVec) -> MsmRun<C>;

    /// Cost model driven by the actual scalar digits (captures sparsity and
    /// load imbalance) without touching any points.
    fn plan(&self, scalars: &ScalarVec) -> StageReport;

    /// Cost model for dense uniform scalars at scale `n` (the Tables 7/8
    /// microbenchmark sweeps, where running 2²⁶ functionally is pointless).
    fn plan_dense(&self, n: usize) -> StageReport;

    /// Device-memory footprint at scale `n` in bytes (Figure 9). Includes
    /// input points/scalars plus all engine-private structures.
    fn memory_bytes(&self, n: usize) -> u64;

    /// Whether the engine fits in device memory at scale `n` (Table 7's
    /// "-" rows are MINA exceeding V100 memory).
    fn fits_in_memory(&self, n: usize, device_mem: u64) -> bool {
        self.memory_bytes(n) <= device_mem
    }

    /// Emits the telemetry for a finished [`Self::msm`] run: per-kernel
    /// reports, rolled-up MAC/DRAM counters, and the engine's peak
    /// simulated device memory. Engines with richer internal state
    /// (e.g. [`crate::GzkpMsm`]'s bucket loads) override this to add
    /// PADD/PDBL counts and occupancy histograms.
    ///
    /// Split from [`Self::msm_traced`] so concurrent MSMs can compute in
    /// parallel and emit into the (single-span-path) recorder
    /// sequentially once they are all joined.
    fn emit_msm_telemetry(
        &self,
        points: &[Affine<C>],
        scalars: &ScalarVec,
        run: &MsmRun<C>,
        sink: &dyn TelemetrySink,
    ) {
        let _ = scalars;
        if sink.enabled() {
            emit_stage(sink, &run.report);
            sink.value(
                gzkp_telemetry::counters::PEAK_DEVICE_BYTES,
                self.memory_bytes(points.len()) as f64,
            );
        }
    }

    /// [`Self::msm`] plus [`Self::emit_msm_telemetry`]. With a disabled
    /// sink (`gzkp_telemetry::NoopSink`) this is one branch on top of
    /// `msm`.
    fn msm_traced(
        &self,
        points: &[Affine<C>],
        scalars: &ScalarVec,
        sink: &dyn TelemetrySink,
    ) -> MsmRun<C> {
        let run = self.msm(points, scalars);
        self.emit_msm_telemetry(points, scalars, &run, sink);
        run
    }
}

/// Per-curve arithmetic pricing, extension-degree aware.
#[derive(Debug, Clone, Copy)]
pub struct CurveCost {
    /// 64-bit limbs of the prime subfield.
    pub base_limbs: usize,
    /// Extension degree of the coordinate field (1 = G1, 2 = G2).
    pub ext_degree: usize,
}

impl CurveCost {
    /// Pricing for curve `C`.
    pub fn of<C: CurveParams>() -> Self {
        Self {
            base_limbs: <C::Base as Field>::base_limbs(),
            ext_degree: <C::Base as Field>::extension_degree(),
        }
    }

    /// MACs per coordinate-field multiplication (Karatsuba for Fp2: 3 muls).
    pub fn field_mul(&self) -> f64 {
        let base = field_mul_macs(self.base_limbs);
        match self.ext_degree {
            1 => base,
            2 => 3.0 * base + 5.0 * field_add_macs(self.base_limbs),
            d => (d * d) as f64 * base, // generic (unused in practice)
        }
    }

    /// MACs per coordinate-field addition.
    pub fn field_add(&self) -> f64 {
        self.ext_degree as f64 * field_add_macs(self.base_limbs)
    }

    /// MACs per full Jacobian PADD (11M + 5S ≈ 16 muls).
    pub fn padd(&self) -> f64 {
        16.0 * self.field_mul() + 7.0 * self.field_add()
    }

    /// MACs per mixed (Jacobian + affine) addition (7M + 4S ≈ 11 muls).
    pub fn padd_mixed(&self) -> f64 {
        11.0 * self.field_mul() + 7.0 * self.field_add()
    }

    /// MACs per Jacobian doubling (2M + 5S ≈ 7 muls).
    pub fn pdbl(&self) -> f64 {
        7.0 * self.field_mul() + 11.0 * self.field_add()
    }

    /// Bytes of one affine point.
    pub fn affine_bytes(&self) -> u64 {
        (2 * self.ext_degree * self.base_limbs * 8) as u64
    }

    /// Bytes of one Jacobian point.
    pub fn jacobian_bytes(&self) -> u64 {
        (3 * self.ext_degree * self.base_limbs * 8) as u64
    }

    /// Equivalent "limbs" key for the backend-speedup table (an Fq2 element
    /// behaves like a wider integer for throughput purposes).
    pub fn speedup_limbs(&self) -> usize {
        self.base_limbs
    }
}

/// Ground-truth oracle: the definitionally correct `Σ sᵢ ⊗ Pᵢ` by plain
/// double-and-add per element. O(N·l) PADDs — tests only.
pub fn naive_msm<C: CurveParams>(points: &[Affine<C>], scalars: &ScalarVec) -> Projective<C> {
    assert_eq!(points.len(), scalars.len());
    let mut acc = Projective::<C>::identity();
    for (i, p) in points.iter().enumerate() {
        acc = acc.add(&p.to_projective().mul_limbs(scalars.scalar_limbs(i)));
    }
    acc
}

/// The running-sum ("bucket reduction") identity: given bucket sums
/// `B_1..B_m`, computes `Σ j·B_j` with `2(m−1)` PADDs instead of `m` PMULs.
pub fn bucket_reduce<C: CurveParams>(buckets: &[Projective<C>]) -> Projective<C> {
    let mut running = Projective::<C>::identity();
    let mut total = Projective::<C>::identity();
    for b in buckets.iter().rev() {
        running = running.add(b);
        total = total.add(&running);
    }
    total
}

/// Bucket reduction of a *shifted* bucket slice: given the sums of buckets
/// `lo+1..lo+len` (so `buckets[i]` holds bucket `lo+1+i`), computes
/// `Σ_j (lo+1+i)·B_{lo+1+i}` via the identity
/// `Σ (lo+i)·Bᵢ = lo·ΣBᵢ + Σ i·Bᵢ` — the running sum over the slice plus
/// one `lo`-weighted PMUL of the slice total. This is what lets a
/// bucket-range shard reduce locally and hand the host an exact partial.
pub fn bucket_reduce_range<C: CurveParams>(buckets: &[Projective<C>], lo: u64) -> Projective<C> {
    let local = bucket_reduce(buckets);
    if lo == 0 {
        return local;
    }
    let mut sum = Projective::<C>::identity();
    for b in buckets {
        sum = sum.add(b);
    }
    local.add(&sum.mul_u64(lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gzkp_curves::bn254::{Fr, G1Config};
    use gzkp_curves::random_points;
    use gzkp_ff::Field;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bucket_reduce_matches_definition() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = random_points::<G1Config, _>(5, &mut rng);
        let buckets: Vec<Projective<G1Config>> = pts.iter().map(|p| p.to_projective()).collect();
        let reduced = bucket_reduce(&buckets);
        let mut expect = Projective::<G1Config>::identity();
        for (j, b) in buckets.iter().enumerate() {
            expect = expect.add(&b.mul_u64(j as u64 + 1));
        }
        assert_eq!(reduced, expect);
    }

    #[test]
    fn bucket_range_partials_recompose() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts = random_points::<G1Config, _>(9, &mut rng);
        let buckets: Vec<Projective<G1Config>> = pts.iter().map(|p| p.to_projective()).collect();
        let whole = bucket_reduce(&buckets);
        for splits in [vec![0usize, 9], vec![0, 4, 9], vec![0, 1, 2, 5, 9]] {
            let mut acc = Projective::<G1Config>::identity();
            for w in splits.windows(2) {
                acc = acc.add(&bucket_reduce_range(&buckets[w[0]..w[1]], w[0] as u64));
            }
            assert_eq!(acc, whole, "splits {splits:?}");
        }
    }

    #[test]
    fn naive_msm_linear_in_scalars() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = random_points::<G1Config, _>(4, &mut rng);
        let s1: Vec<Fr> = (0..4).map(|_| Fr::random(&mut rng)).collect();
        let doubled: Vec<Fr> = s1.iter().map(|s| *s + *s).collect();
        let r1 = naive_msm(&pts, &crate::scalars::ScalarVec::from_field(&s1));
        let r2 = naive_msm(&pts, &crate::scalars::ScalarVec::from_field(&doubled));
        assert_eq!(r1.double(), r2);
    }

    #[test]
    fn curve_cost_g2_heavier_than_g1() {
        let g1 = CurveCost::of::<G1Config>();
        let g2 = CurveCost::of::<gzkp_curves::bn254::G2Config>();
        assert!(g2.padd() > 2.0 * g1.padd());
        assert_eq!(g2.affine_bytes(), 2 * g1.affine_bytes());
    }
}
