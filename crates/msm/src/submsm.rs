//! The window-parallel sub-MSM GPU baseline ("BG" — bellperson-like, §2.3).
//!
//! Figure 3's decomposition: the MSM splits horizontally into sub-MSMs of
//! `chunk` points; each sub-MSM maps to a GPU block where *different
//! windows are processed by different threads*, each thread owning a
//! private `2^k` bucket array in global memory. Every thread then reduces
//! its own buckets with the running-sum trick; partial window sums are
//! combined, and the final window-reduction runs on the CPU.
//!
//! Weaknesses the paper exploits (emergent in the cost model):
//!
//! * every window thread walks the whole chunk, so points are effectively
//!   read `⌈l/k⌉` times, and bucket updates are read-modify-write traffic
//!   against global memory;
//! * dependent global-memory bucket updates serialize: consecutive adds to
//!   the same bucket cannot pipeline. [`BUCKET_RMW_PENALTY`] prices this
//!   (calibrated so the Fig. 10 "BG → GZKP-no-LB = 3.25×" step holds);
//! * the per-thread bucket reduction (`2·2^k` PADDs per window thread per
//!   sub-MSM) is paid *unconditionally* — with sparse real-world scalars
//!   whole windows are empty yet still pay it, which is why bellperson
//!   cannot exploit sparsity (§4.2);
//! * no cross-window consolidation: each sub-MSM re-merges the same
//!   digits.

use crate::engine::{bucket_reduce, CurveCost, MsmEngine, MsmRun};
use crate::scalars::{default_window_size, window_loads, ScalarVec};
use gzkp_curves::{Affine, CurveParams, Projective};
use gzkp_ff::PrimeField;
use gzkp_gpu_sim::device::{Backend, DeviceConfig};
use gzkp_gpu_sim::kernel::{BlockCost, KernelSpec, StageReport};

/// Serialization penalty on dependent global-memory bucket updates
/// (read-modify-write chains that the hardware cannot coalesce or
/// pipeline). Calibration anchor: Figure 10's BG → GZKP-no-LB = 3.25×.
pub const BUCKET_RMW_PENALTY: f64 = 1.3;

/// The bellperson-like GPU MSM baseline.
#[derive(Debug, Clone)]
pub struct SubMsmPippenger {
    /// Simulated device.
    pub device: DeviceConfig,
    /// Finite-field backend (Integer = stock; FpLib = "w. lib" ablations).
    pub backend: Backend,
    /// Window size; `None` = a bellperson-ish default (smaller than
    /// optimal, to bound the per-thread global bucket arrays).
    pub window: Option<u32>,
    /// Points per sub-MSM; `None` sizes sub-MSMs so the grid gives ~2
    /// blocks per SM.
    pub chunk: Option<usize>,
}

impl SubMsmPippenger {
    /// Stock configuration.
    pub fn new(device: DeviceConfig) -> Self {
        Self {
            device,
            backend: Backend::Integer,
            window: None,
            chunk: None,
        }
    }

    fn k_for(&self, n: usize) -> u32 {
        // bellperson keeps windows below optimal so each window thread's
        // global bucket array stays bounded.
        self.window
            .unwrap_or_else(|| (default_window_size(n).saturating_sub(1)).clamp(4, 10))
    }

    fn chunk_for(&self, n: usize) -> usize {
        self.chunk
            .unwrap_or_else(|| n.div_ceil((self.device.num_sms as usize * 2).max(1)).max(1))
    }

    /// Cost stage. `unit_loads[sub][t]` = non-zero digits of window `t`
    /// within sub-MSM `sub`.
    fn stage<C: CurveParams>(
        &self,
        n: usize,
        k: u32,
        windows: usize,
        unit_loads: &[Vec<u64>],
    ) -> StageReport {
        let cost = CurveCost::of::<C>();
        let dev = &self.device;
        let mut stage = StageReport::new("msm-submsm");
        stage.add_fixed("host-sync+transfer", crate::gzkp::MSM_HOST_OVERHEAD_NS);
        let buckets = (1u64 << k) - 1;
        let chunk = self.chunk_for(n) as u64;
        let blocks: Vec<BlockCost> = unit_loads
            .iter()
            .map(|loads| {
                let nz: u64 = loads.iter().sum();
                BlockCost {
                    // Accumulation with serialized global-bucket RMW, plus
                    // the unconditional per-window bucket reductions.
                    mac_ops: nz as f64 * cost.padd_mixed() * BUCKET_RMW_PENALTY
                        + windows as f64 * 2.0 * buckets as f64 * cost.padd(),
                    // Each window thread streams the chunk's points and
                    // scalars, and RMWs its buckets in global memory.
                    dram_sectors: (windows as u64 * chunk * cost.affine_bytes()
                        + nz * 2 * cost.jacobian_bytes()
                        + chunk * 8 * 4)
                        / dev.sector_bytes,
                    shared_bytes: 0,
                }
            })
            .collect();
        stage.run(
            dev,
            &KernelSpec {
                name: format!("submsm(k={k},w={windows})"),
                // One thread per window inside the block (Figure 3).
                threads_per_block: (windows as u32).max(dev.warp_size),
                shared_mem_per_block: 0, // buckets live in global memory
                backend: self.backend,
                limbs: cost.speedup_limbs(),
                blocks,
            },
        );
        // Host-side window reduction: windows·k doublings + adds, serial.
        let host_ns = (windows as f64) * (k as f64 * cost.pdbl() + cost.padd()) * 2.5;
        stage.add_fixed("window-reduction(host)", host_ns);
        stage
    }

    fn dense_unit_loads(&self, n: usize, k: u32, windows: usize) -> Vec<Vec<u64>> {
        let chunk = self.chunk_for(n);
        let subs = n.div_ceil(chunk);
        let nz = ((chunk as f64) * (1.0 - 1.0 / (1u64 << k) as f64)) as u64;
        vec![vec![nz; windows]; subs]
    }
}

impl<C: CurveParams> MsmEngine<C> for SubMsmPippenger {
    fn name(&self) -> String {
        match self.backend {
            Backend::Integer => "BG".into(),
            Backend::FpLib => "BG w. lib".into(),
        }
    }

    fn msm(&self, points: &[Affine<C>], scalars: &ScalarVec) -> MsmRun<C> {
        assert_eq!(points.len(), scalars.len());
        let n = points.len();
        let k = self.k_for(n);
        let windows = scalars.num_windows(k);
        let chunk = self.chunk_for(n);

        // Functional: per-(sub-MSM, window) bucket accumulation — exactly
        // the Figure 3 work decomposition.
        let mut unit_loads = Vec::new();
        let mut window_sums = vec![Projective::<C>::identity(); windows];
        for lo in (0..n).step_by(chunk) {
            let hi = (lo + chunk).min(n);
            let mut loads = vec![0u64; windows];
            for (t, load) in loads.iter_mut().enumerate() {
                let mut buckets = vec![Projective::<C>::identity(); (1usize << k) - 1];
                for (i, point) in points.iter().enumerate().take(hi).skip(lo) {
                    let d = scalars.window(i, t, k);
                    if d != 0 {
                        buckets[(d - 1) as usize] = buckets[(d - 1) as usize].add_mixed(point);
                        *load += 1;
                    }
                }
                window_sums[t] = window_sums[t].add(&bucket_reduce(&buckets));
            }
            unit_loads.push(loads);
        }
        // Host window reduction.
        let mut acc = Projective::<C>::identity();
        for w in window_sums.iter().rev() {
            for _ in 0..k {
                acc = acc.double();
            }
            acc = acc.add(w);
        }
        let report = self.stage::<C>(n, k, windows, &unit_loads);
        MsmRun {
            result: acc,
            report,
            stats: Default::default(),
        }
    }

    fn plan(&self, scalars: &ScalarVec) -> StageReport {
        let n = scalars.len();
        let k = self.k_for(n);
        let windows = scalars.num_windows(k);
        let chunk = self.chunk_for(n);
        let subs = n.div_ceil(chunk);
        // Split each window's load evenly across sub-MSMs (digits are
        // homogeneous across the index range for our workloads).
        let loads = window_loads(scalars, k);
        let unit_loads: Vec<Vec<u64>> = (0..subs)
            .map(|_| loads.iter().map(|&l| l / subs as u64).collect())
            .collect();
        self.stage::<C>(n, k, windows, &unit_loads)
    }

    fn plan_dense(&self, n: usize) -> StageReport {
        let k = self.k_for(n);
        let bits = <C::Scalar as PrimeField>::MODULUS_BITS;
        let windows = bits.div_ceil(k) as usize;
        let unit_loads = self.dense_unit_loads(n, k, windows);
        self.stage::<C>(n, k, windows, &unit_loads)
    }

    fn memory_bytes(&self, n: usize) -> u64 {
        let cost = CurveCost::of::<C>();
        let k = self.k_for(n);
        let bits = <C::Scalar as PrimeField>::MODULUS_BITS;
        let windows = bits.div_ceil(k) as u64;
        let subs = n.div_ceil(self.chunk_for(n)) as u64;
        // Inputs + per-(sub, window) bucket arrays + window partials.
        n as u64 * (cost.affine_bytes() + (bits as u64).div_ceil(64) * 8)
            + windows * subs * ((1u64 << k) - 1) * cost.jacobian_bytes()
            + windows * cost.jacobian_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::naive_msm;
    use gzkp_curves::bn254::{Fr, G1Config};
    use gzkp_curves::random_points;
    use gzkp_ff::Field;
    use gzkp_gpu_sim::device::v100;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_naive_oracle() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 200;
        let pts = random_points::<G1Config, _>(n, &mut rng);
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let sv = ScalarVec::from_field(&scalars);
        let run = SubMsmPippenger::new(v100()).msm(&pts, &sv);
        assert_eq!(run.result, naive_msm(&pts, &sv));
    }

    #[test]
    fn chunking_invariance() {
        let mut rng = StdRng::seed_from_u64(22);
        let n = 65;
        let pts = random_points::<G1Config, _>(n, &mut rng);
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let sv = ScalarVec::from_field(&scalars);
        let expect = naive_msm(&pts, &sv);
        for chunk in [1usize, 7, 64, 65, 1000] {
            let mut e = SubMsmPippenger::new(v100());
            e.chunk = Some(chunk);
            assert_eq!(e.msm(&pts, &sv).result, expect, "chunk={chunk}");
        }
    }

    #[test]
    fn sparse_scalars_leave_reduction_cost() {
        // With 0/1 scalars only window 0 has accumulation work, but the
        // per-window bucket reductions are unconditional: the sparse plan
        // must stay a large fraction of the dense plan — bellperson cannot
        // exploit sparsity (§4.2).
        let n = 1 << 12;
        let scalars: Vec<Fr> = vec![Fr::one(); n];
        let sv = ScalarVec::from_field(&scalars);
        let e = SubMsmPippenger::new(v100());
        let sparse_t = MsmEngine::<G1Config>::plan(&e, &sv).total_ns();
        let dense_t = MsmEngine::<G1Config>::plan_dense(&e, n).total_ns();
        assert!(sparse_t < dense_t);
        assert!(
            sparse_t > dense_t * 0.25,
            "sparse {sparse_t} vs dense {dense_t}: reduction cost must remain"
        );
    }
}
