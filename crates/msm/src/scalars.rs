//! Scalar-vector preparation: flat limb storage, window extraction and
//! bucket-occupancy histograms (the inputs to every MSM engine and to the
//! Figure-6 load analysis).

use gzkp_ff::PrimeField;

/// A vector of scalars in canonical (non-Montgomery) representation,
/// stored as one flat little-endian limb buffer — the column-friendly
/// layout GPU MSM kernels consume.
#[derive(Debug, Clone)]
pub struct ScalarVec {
    limbs: Vec<u64>,
    per_scalar: usize,
    bits: u32,
    n: usize,
}

impl ScalarVec {
    /// Converts field elements out of Montgomery form into the flat buffer.
    pub fn from_field<F: PrimeField>(scalars: &[F]) -> Self {
        let per_scalar = F::NUM_LIMBS;
        let mut limbs = Vec::with_capacity(scalars.len() * per_scalar);
        for s in scalars {
            limbs.extend(s.to_limbs());
        }
        Self {
            limbs,
            per_scalar,
            bits: F::MODULUS_BITS,
            n: scalars.len(),
        }
    }

    /// Builds directly from raw canonical limbs (testing, synthetic data).
    ///
    /// # Panics
    ///
    /// Panics if `limbs.len()` is not a multiple of `per_scalar`.
    pub fn from_raw(limbs: Vec<u64>, per_scalar: usize, bits: u32) -> Self {
        assert_eq!(limbs.len() % per_scalar, 0);
        let n = limbs.len() / per_scalar;
        Self {
            limbs,
            per_scalar,
            bits,
            n,
        }
    }

    /// Number of scalars.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Scalar bit width (`l` in the paper's notation).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Limbs per scalar.
    pub fn limbs_per_scalar(&self) -> usize {
        self.per_scalar
    }

    /// Raw limbs of scalar `i`.
    pub fn scalar_limbs(&self, i: usize) -> &[u64] {
        &self.limbs[i * self.per_scalar..(i + 1) * self.per_scalar]
    }

    /// The whole flat limb buffer, scalar-major little-endian — the
    /// serialization surface of proof checkpoints. Round-trips through
    /// [`ScalarVec::from_raw`] with [`ScalarVec::limbs_per_scalar`] and
    /// [`ScalarVec::bits`].
    pub fn raw_limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Extracts the `k`-bit window `t` of scalar `i` (window `t` covers bits
    /// `[t·k, (t+1)·k)`).
    #[inline]
    pub fn window(&self, i: usize, t: usize, k: u32) -> u64 {
        let limbs = self.scalar_limbs(i);
        let start = t * k as usize;
        if start >= 64 * self.per_scalar {
            return 0;
        }
        let limb = start / 64;
        let shift = start % 64;
        let mut v = limbs[limb] >> shift;
        if shift != 0 && limb + 1 < self.per_scalar {
            v |= limbs[limb + 1] << (64 - shift);
        }
        v & ((1u64 << k) - 1)
    }

    /// Number of `k`-bit windows covering the scalar width
    /// (`⌈l/k⌉` in the paper).
    pub fn num_windows(&self, k: u32) -> usize {
        self.bits.div_ceil(k) as usize
    }

    /// Fraction of scalars equal to 0 or 1 — the sparsity signature of
    /// real-world workloads (§4.2).
    pub fn sparsity(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let trivial = (0..self.n)
            .filter(|&i| {
                let l = self.scalar_limbs(i);
                l[0] <= 1 && l[1..].iter().all(|&x| x == 0)
            })
            .count();
        trivial as f64 / self.n as f64
    }
}

/// Bucket-occupancy histogram of the *cross-window* point-merging step
/// (GZKP's consolidation, §4.1): bucket `d` (1 ≤ d < 2^k) counts every
/// `(i, t)` pair whose window digit equals `d`. Figure 6 plots exactly this.
pub fn bucket_histogram(scalars: &ScalarVec, k: u32) -> Vec<u64> {
    let mut hist = vec![0u64; 1 << k];
    let windows = scalars.num_windows(k);
    for i in 0..scalars.len() {
        for t in 0..windows {
            let d = scalars.window(i, t, k);
            hist[d as usize] += 1;
        }
    }
    hist
}

/// Per-window non-zero digit counts — the load profile of window-parallel
/// (sub-MSM) engines. Sparse workloads concentrate work in low windows.
pub fn window_loads(scalars: &ScalarVec, k: u32) -> Vec<u64> {
    let windows = scalars.num_windows(k);
    let mut loads = vec![0u64; windows];
    for i in 0..scalars.len() {
        for (t, l) in loads.iter_mut().enumerate() {
            if scalars.window(i, t, k) != 0 {
                *l += 1;
            }
        }
    }
    loads
}

/// The paper's recommended window size for a given MSM scale: larger
/// windows cut Pippenger work but explode the task count (§4.1); this is
/// the standard `log2(n) − 3` heuristic clamped to sane bounds, used as the
/// starting point for profiling-based configuration.
pub fn default_window_size(n: usize) -> u32 {
    if n <= 1 {
        return 1;
    }
    (n.ilog2() as i64 - 3).clamp(4, 16) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use gzkp_ff::fields::Fr254;
    use gzkp_ff::Field;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn window_reconstruction() {
        // Sum of windows × weights reconstructs the scalar.
        let mut rng = StdRng::seed_from_u64(3);
        let s = Fr254::random(&mut rng);
        let sv = ScalarVec::from_field(&[s]);
        for k in [4u32, 7, 13, 16] {
            let mut acc = [0u64; 5];
            for t in (0..sv.num_windows(k)).rev() {
                // acc = acc * 2^k + digit
                let mut carry = 0u128;
                let d = sv.window(0, t, k);
                for limb in acc.iter_mut() {
                    let v = ((*limb as u128) << k) | carry;
                    *limb = v as u64;
                    carry = v >> 64;
                }
                let (lo, c) = acc[0].overflowing_add(d);
                acc[0] = lo;
                if c {
                    acc[1] += 1;
                }
            }
            assert_eq!(&acc[..4], sv.scalar_limbs(0), "k={k}");
            assert_eq!(acc[4], 0);
        }
    }

    #[test]
    fn histogram_totals() {
        let mut rng = StdRng::seed_from_u64(4);
        let scalars: Vec<Fr254> = (0..100).map(|_| Fr254::random(&mut rng)).collect();
        let sv = ScalarVec::from_field(&scalars);
        let k = 8;
        let hist = bucket_histogram(&sv, k);
        let total: u64 = hist.iter().sum();
        assert_eq!(total, 100 * sv.num_windows(k) as u64);
    }

    #[test]
    fn sparsity_detection() {
        let scalars = vec![
            Fr254::zero(),
            Fr254::one(),
            Fr254::from_u64(12345),
            Fr254::zero(),
        ];
        let sv = ScalarVec::from_field(&scalars);
        assert!((sv.sparsity() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sparse_scalars_concentrate_in_low_windows() {
        // 0/1 scalars: only window 0 can be non-zero.
        let scalars = vec![Fr254::one(); 64];
        let sv = ScalarVec::from_field(&scalars);
        let loads = window_loads(&sv, 8);
        assert_eq!(loads[0], 64);
        assert!(loads[1..].iter().all(|&l| l == 0));
    }

    #[test]
    fn default_window_reasonable() {
        assert_eq!(default_window_size(1 << 14), 11);
        assert_eq!(default_window_size(1 << 20), 16);
        assert_eq!(default_window_size(1 << 26), 16); // clamped
        assert_eq!(default_window_size(16), 4); // clamped low
    }
}
