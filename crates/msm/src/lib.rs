//! # gzkp-msm — the MSM stage
//!
//! Multi-scalar multiplication `Σ sᵢ ⊗ Pᵢ`, the dominant cost of zkSNARK
//! proof generation (>70% on CPU systems, §2.3), in four engine families
//! that all compute the identical inner product (cross-validated against a
//! naive double-and-add oracle):
//!
//! * [`cpu::CpuMsm`] — serial/parallel Pippenger ("Best-CPU");
//! * [`submsm::SubMsmPippenger`] — window-parallel sub-MSM GPU baseline
//!   (bellperson-like, "BG");
//! * [`straus::StrausMsm`] — per-point precompute tables (MINA-like), with
//!   the memory blow-up that OOMs past 2²² at 753-bit (Table 7, Fig. 9);
//! * [`gzkp::GzkpMsm`] — the paper's §4 design: cross-window consolidation,
//!   checkpoint preprocessing (Algorithm 1), load-balanced bucket tasks,
//!   parallel-prefix bucket reduction.
//!
//! ## Example
//!
//! ```
//! use gzkp_msm::{GzkpMsm, MsmEngine, ScalarVec};
//! use gzkp_curves::bn254::{Fr, G1Config};
//! use gzkp_curves::random_points;
//! use gzkp_ff::Field;
//! use gzkp_gpu_sim::v100;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let points = random_points::<G1Config, _>(64, &mut rng);
//! let scalars: Vec<Fr> = (0..64).map(|_| Fr::random(&mut rng)).collect();
//! let run = GzkpMsm::new(v100()).msm(&points, &ScalarVec::from_field(&scalars));
//! println!("simulated MSM time: {:.3} ms", run.report.total_ms());
//! ```

#![warn(missing_docs)]

pub mod batch_affine;
pub mod cpu;
pub mod engine;
pub mod gzkp;
pub mod scalars;
pub mod signed;
pub mod store;
pub mod straus;
pub mod submsm;

pub use batch_affine::{accumulate_batch_affine, BatchAffineStats};
pub use cpu::CpuMsm;
pub use engine::{
    bucket_reduce, bucket_reduce_range, naive_msm, CurveCost, MsmEngine, MsmRun, MsmStats,
};
pub use gzkp::{profile_window_size, GzkpMsm, ShardTask};
pub use scalars::{bucket_histogram, default_window_size, window_loads, ScalarVec};
pub use signed::SignedGzkpMsm;
pub use store::PreprocessStore;
pub use straus::StrausMsm;
pub use submsm::SubMsmPippenger;
