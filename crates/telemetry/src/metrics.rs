//! Live metrics: a lock-free registry, periodic snapshots (JSON +
//! Prometheus text exposition), SLO tracking with burn-rate alerts, and
//! the `zkserve top` dashboard rendering.
//!
//! The existing [`crate::TraceRecorder`] answers "where did the time go"
//! *after* a run; this module answers "how is the fleet doing *right
//! now*" while it runs. Design points:
//!
//! * **Registration is locked, recording is not.** Creating a series
//!   takes a registry mutex once; the returned handle ([`Counter`],
//!   [`Gauge`], [`LatencyHistogram`]) is an `Arc` around plain atomics,
//!   so the hot path is `fetch_add`/`store` with relaxed ordering — no
//!   lock, no allocation, no syscall. Re-registering an existing
//!   `(name, label)` returns a handle to the *same* cells, which is what
//!   makes totals exact when many workers record into one series.
//! * **Histograms are fixed 64-bucket log2.** Bucket `b` counts values in
//!   `[2^b, 2^{b+1})` (zeros fold into bucket 0, `u64::MAX` lands in
//!   bucket 63), plus exact `count` and `sum` cells. Percentile
//!   extraction walks the cumulative counts and reports the bucket's
//!   upper bound — a ≤2× overestimate by construction, never an invented
//!   value, and total on every edge case (empty → `None`).
//! * **Snapshots are plain serde structs.** [`MetricsSnapshot`] is the
//!   wire form: versioned, JSON round-trippable, convertible to the
//!   Prometheus text exposition format, and the input the
//!   [`SloTracker`] and dashboards evaluate — so a snapshot written by a
//!   run and one scraped live are the same thing.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::names;

/// Version of the snapshot wire format. [`MetricsSnapshot::from_json`]
/// rejects mismatches the same way traces do.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Fixed bucket count of every latency histogram: one bucket per power
/// of two across the full `u64` range.
const BUCKETS: usize = 64;

/// Log2 bucket index of a value: `v ∈ [2^b, 2^{b+1})`, zeros in bucket 0,
/// `u64::MAX` in bucket 63. Total on all of `u64`.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `b` — the value percentile extraction
/// reports for samples in the bucket. Saturates at `u64::MAX` for the
/// top bucket.
fn bucket_upper(b: u64) -> u64 {
    if b >= 63 {
        u64::MAX
    } else {
        (1u64 << (b + 1)) - 1
    }
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// Lock-free monotonic counter handle. Cheap to clone; clones share the
/// same cell.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Lock-free `f64` gauge handle (value stored as bits in an atomic).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (peak tracking).
    pub fn set_max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }

    /// Adds `delta` to the gauge (CAS loop; gauges are f64).
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared cells of one latency histogram: 64 log2 buckets plus exact
/// count and sum.
struct HistogramCells {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCells {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Lock-free latency histogram handle. `record` is three relaxed atomic
/// adds; percentiles come from snapshots, not the handle.
#[derive(Clone)]
pub struct LatencyHistogram(Arc<HistogramCells>);

impl LatencyHistogram {
    /// Records one sample (nanoseconds by convention; any `u64` works).
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Identity of one series: a name from [`crate::names`] plus an optional
/// `(key, value)` label (`("device", "dev0")`, `("stage", "msm")`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    label: Option<(String, String)>,
}

#[derive(Default)]
struct RegistryState {
    counters: Vec<(MetricKey, Arc<AtomicU64>)>,
    gauges: Vec<(MetricKey, Arc<AtomicU64>)>,
    histograms: Vec<(MetricKey, Arc<HistogramCells>)>,
}

/// The live metrics registry: series registration (locked, rare) and
/// snapshotting on one side, lock-free handles on the other.
pub struct MetricsRegistry {
    state: Mutex<RegistryState>,
    start: Instant,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Empty registry; uptime counts from here.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(RegistryState::default()),
            start: Instant::now(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers (or re-attaches to) an unlabeled counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_key(MetricKey {
            name: name.to_string(),
            label: None,
        })
    }

    /// Registers (or re-attaches to) a labeled counter, e.g.
    /// `("device", "dev0")`.
    pub fn counter_with(&self, name: &str, label_key: &str, label_value: &str) -> Counter {
        self.counter_key(MetricKey {
            name: name.to_string(),
            label: Some((label_key.to_string(), label_value.to_string())),
        })
    }

    fn counter_key(&self, key: MetricKey) -> Counter {
        let mut st = self.lock();
        if let Some((_, cell)) = st.counters.iter().find(|(k, _)| *k == key) {
            return Counter(cell.clone());
        }
        let cell = Arc::new(AtomicU64::new(0));
        st.counters.push((key, cell.clone()));
        Counter(cell)
    }

    /// Registers (or re-attaches to) an unlabeled gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_key(MetricKey {
            name: name.to_string(),
            label: None,
        })
    }

    /// Registers (or re-attaches to) a labeled gauge.
    pub fn gauge_with(&self, name: &str, label_key: &str, label_value: &str) -> Gauge {
        self.gauge_key(MetricKey {
            name: name.to_string(),
            label: Some((label_key.to_string(), label_value.to_string())),
        })
    }

    fn gauge_key(&self, key: MetricKey) -> Gauge {
        let mut st = self.lock();
        if let Some((_, cell)) = st.gauges.iter().find(|(k, _)| *k == key) {
            return Gauge(cell.clone());
        }
        let cell = Arc::new(AtomicU64::new(0f64.to_bits()));
        st.gauges.push((key, cell.clone()));
        Gauge(cell)
    }

    /// Registers (or re-attaches to) an unlabeled latency histogram.
    pub fn histogram(&self, name: &str) -> LatencyHistogram {
        self.histogram_key(MetricKey {
            name: name.to_string(),
            label: None,
        })
    }

    /// Registers (or re-attaches to) a labeled latency histogram, e.g.
    /// `("stage", "msm")`.
    pub fn histogram_with(
        &self,
        name: &str,
        label_key: &str,
        label_value: &str,
    ) -> LatencyHistogram {
        self.histogram_key(MetricKey {
            name: name.to_string(),
            label: Some((label_key.to_string(), label_value.to_string())),
        })
    }

    fn histogram_key(&self, key: MetricKey) -> LatencyHistogram {
        let mut st = self.lock();
        if let Some((_, cell)) = st.histograms.iter().find(|(k, _)| *k == key) {
            return LatencyHistogram(cell.clone());
        }
        let cell = Arc::new(HistogramCells::new());
        st.histograms.push((key, cell.clone()));
        LatencyHistogram(cell)
    }

    /// Nanoseconds since the registry was created.
    pub fn uptime_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Samples every series into a serializable [`MetricsSnapshot`],
    /// sorted by `(name, label)` so output is deterministic.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.snapshot_with(None)
    }

    /// [`MetricsRegistry::snapshot`] with an SLO evaluation attached.
    pub fn snapshot_with(&self, tracker: Option<&SloTracker>) -> MetricsSnapshot {
        let st = self.lock();
        let mut counters: Vec<CounterSample> = st
            .counters
            .iter()
            .map(|(k, cell)| CounterSample {
                name: k.name.clone(),
                label: k.label.clone(),
                value: cell.load(Ordering::Relaxed),
            })
            .collect();
        counters.sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
        let mut gauges: Vec<GaugeSample> = st
            .gauges
            .iter()
            .map(|(k, cell)| GaugeSample {
                name: k.name.clone(),
                label: k.label.clone(),
                value: f64::from_bits(cell.load(Ordering::Relaxed)),
            })
            .collect();
        gauges.sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
        let mut histograms: Vec<HistogramSample> = st
            .histograms
            .iter()
            .map(|(k, cell)| HistogramSample {
                name: k.name.clone(),
                label: k.label.clone(),
                count: cell.count.load(Ordering::Relaxed),
                sum: cell.sum.load(Ordering::Relaxed),
                buckets: cell
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(b, c)| {
                        let c = c.load(Ordering::Relaxed);
                        (c > 0).then_some((b as u64, c))
                    })
                    .collect(),
            })
            .collect();
        histograms.sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
        drop(st);
        let mut snap = MetricsSnapshot {
            schema_version: METRICS_SCHEMA_VERSION,
            uptime_ns: self.uptime_ns(),
            counters,
            gauges,
            histograms,
            slo: None,
        };
        if let Some(tracker) = tracker {
            snap.slo = Some(tracker.evaluate(&snap));
        }
        snap
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.lock();
        f.debug_struct("MetricsRegistry")
            .field("counters", &st.counters.len())
            .field("gauges", &st.gauges.len())
            .field("histograms", &st.histograms.len())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Snapshot (wire form)
// ---------------------------------------------------------------------------

/// One counter series in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Series name (see [`crate::names`]).
    pub name: String,
    /// Optional `(key, value)` label.
    pub label: Option<(String, String)>,
    /// Sampled value.
    pub value: u64,
}

/// One gauge series in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Series name.
    pub name: String,
    /// Optional `(key, value)` label.
    pub label: Option<(String, String)>,
    /// Sampled value.
    pub value: f64,
}

/// One histogram series in a snapshot: sparse log2 buckets plus exact
/// count and sum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Series name.
    pub name: String,
    /// Optional `(key, value)` label.
    pub label: Option<(String, String)>,
    /// Exact sample count.
    pub count: u64,
    /// Exact sample sum (wrapping on overflow).
    pub sum: u64,
    /// Sparse `(log2_bucket, count)` pairs, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSample {
    /// The value at quantile `q ∈ [0, 1]`, reported as the containing
    /// log2 bucket's upper bound (≤2× overestimate, never an invented
    /// value). Total on edge cases: empty histograms return `None`, a
    /// single sample answers every quantile, out-of-range or NaN `q`
    /// clamps to the nearest valid rank, and samples of `u64::MAX`
    /// report `u64::MAX`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(b, c) in &self.buckets {
            cum = cum.saturating_add(c);
            if cum >= rank {
                return Some(bucket_upper(b));
            }
        }
        // Bucket counts should cover `count`; if a racing snapshot left
        // them short, answer with the top recorded bucket.
        self.buckets.last().map(|&(b, _)| bucket_upper(b))
    }

    /// Median (see [`HistogramSample::quantile`]).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Exact mean of the recorded samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

/// A point-in-time sample of every series in a [`MetricsRegistry`] —
/// the JSON wire form, the Prometheus exposition source, and the input
/// to SLO evaluation and dashboards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Wire-format version; see [`METRICS_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Nanoseconds the registry had been alive when sampled.
    pub uptime_ns: u64,
    /// Counter series, sorted by `(name, label)`.
    pub counters: Vec<CounterSample>,
    /// Gauge series, sorted by `(name, label)`.
    pub gauges: Vec<GaugeSample>,
    /// Histogram series, sorted by `(name, label)`.
    pub histograms: Vec<HistogramSample>,
    /// SLO evaluation attached by the exporter, when configured.
    pub slo: Option<SloReport>,
}

impl MetricsSnapshot {
    /// Value of an unlabeled counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && c.label.is_none())
            .map(|c| c.value)
    }

    /// Sum of a counter over all its labels (and the unlabeled series).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Value of a labeled counter.
    pub fn counter_labeled(&self, name: &str, key: &str, value: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| {
                c.name == name
                    && c.label
                        .as_ref()
                        .is_some_and(|(k, v)| k == key && v == value)
            })
            .map(|c| c.value)
    }

    /// Value of an unlabeled gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && g.label.is_none())
            .map(|g| g.value)
    }

    /// Value of a labeled gauge.
    pub fn gauge_labeled(&self, name: &str, key: &str, value: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| {
                g.name == name
                    && g.label
                        .as_ref()
                        .is_some_and(|(k, v)| k == key && v == value)
            })
            .map(|g| g.value)
    }

    /// An unlabeled histogram series.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms
            .iter()
            .find(|h| h.name == name && h.label.is_none())
    }

    /// A labeled histogram series.
    pub fn histogram_labeled(
        &self,
        name: &str,
        key: &str,
        value: &str,
    ) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| {
            h.name == name
                && h.label
                    .as_ref()
                    .is_some_and(|(k, v)| k == key && v == value)
        })
    }

    /// Distinct values of `label_key` across all series, sorted —
    /// e.g. the device set of a fleet snapshot.
    pub fn label_values(&self, label_key: &str) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut push = |label: &Option<(String, String)>| {
            if let Some((k, v)) = label {
                if k == label_key && !out.contains(v) {
                    out.push(v.clone());
                }
            }
        };
        self.counters.iter().for_each(|c| push(&c.label));
        self.gauges.iter().for_each(|g| push(&g.label));
        self.histograms.iter().for_each(|h| push(&h.label));
        out.sort();
        out
    }

    /// Pretty JSON wire form.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization is infallible")
    }

    /// Parses and version-checks a snapshot.
    ///
    /// # Errors
    ///
    /// A description of the parse failure or version mismatch.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = serde_json::parse_value(text).map_err(|e| e.to_string())?;
        let found = value
            .get("schema_version")
            .and_then(|v| v.as_u64())
            .ok_or("missing schema_version")?;
        if found != METRICS_SCHEMA_VERSION as u64 {
            return Err(format!(
                "metrics schema version {found} is not supported (expected {METRICS_SCHEMA_VERSION})"
            ));
        }
        serde::from_value(value).map_err(|e| e.0)
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// `gzkp_`-prefixed underscored names, one `# TYPE` line per metric,
    /// cumulative `le` buckets with `+Inf`, `_sum` and `_count` for
    /// histograms.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE gzkp_uptime_ns gauge");
        let _ = writeln!(out, "gzkp_uptime_ns {}", self.uptime_ns);
        let mut last_type_line = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {name} {kind}");
            if line != last_type_line {
                let _ = writeln!(out, "{line}");
                last_type_line = line;
            }
        };
        for c in &self.counters {
            let name = prom_name(&c.name);
            type_line(&mut out, &name, "counter");
            let _ = writeln!(out, "{name}{} {}", prom_labels(&c.label, None), c.value);
        }
        for g in &self.gauges {
            let name = prom_name(&g.name);
            type_line(&mut out, &name, "gauge");
            let _ = writeln!(
                out,
                "{name}{} {}",
                prom_labels(&g.label, None),
                prom_f64(g.value)
            );
        }
        for h in &self.histograms {
            let name = prom_name(&h.name);
            type_line(&mut out, &name, "histogram");
            let mut cum = 0u64;
            for &(b, c) in &h.buckets {
                cum = cum.saturating_add(c);
                let le = if b >= 63 {
                    "+Inf".to_string()
                } else {
                    bucket_upper(b).to_string()
                };
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cum}",
                    prom_labels(&h.label, Some(&le))
                );
            }
            if h.buckets.last().map(|&(b, _)| b < 63).unwrap_or(true) {
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cum}",
                    prom_labels(&h.label, Some("+Inf"))
                );
            }
            let _ = writeln!(out, "{name}_sum{} {}", prom_labels(&h.label, None), h.sum);
            let _ = writeln!(
                out,
                "{name}_count{} {}",
                prom_labels(&h.label, None),
                h.count
            );
        }
        out
    }
}

/// `service.queue_wait_ns` → `gzkp_service_queue_wait_ns`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("gzkp_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a label set: the series label plus an optional `le` bound.
fn prom_labels(label: &Option<(String, String)>, le: Option<&str>) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some((k, v)) = label {
        parts.push(format!("{k}=\"{v}\""));
    }
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Prometheus float formatting: integral values print bare, others with
/// enough precision to round-trip.
fn prom_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

// ---------------------------------------------------------------------------
// SLO tracking
// ---------------------------------------------------------------------------

/// Thresholds the [`SloTracker`] evaluates a snapshot against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloPolicy {
    /// Max fraction of resolved jobs that may miss their deadline.
    pub max_deadline_miss_rate: f64,
    /// Max acceptable queue-wait p99 (wall-clock nanoseconds).
    pub max_queue_wait_p99_ns: u64,
    /// Max fraction of a device's timeline it may spend quarantined.
    pub max_quarantine_frac: f64,
    /// Min compute utilization expected of a device that ran at least
    /// one stage; `0.0` disables the check.
    pub min_device_util: f64,
    /// Max jobs a cluster run may lose (admitted but neither resolved
    /// nor still queued/in-flight anywhere). Only evaluated when the
    /// snapshot carries cluster counters; the default budget is zero —
    /// a host kill must never lose work.
    pub max_cluster_lost_jobs: u64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        Self {
            max_deadline_miss_rate: 0.01,
            max_queue_wait_p99_ns: 5_000_000_000,
            max_quarantine_frac: 0.25,
            min_device_util: 0.0,
            max_cluster_lost_jobs: 0,
        }
    }
}

/// One fired alert: which SLO, what was observed, the threshold, and the
/// burn rate (how many times over budget the observation is; `inf` when
/// the budget is zero).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloAlert {
    /// SLO identifier (`"deadline_miss_rate"`,
    /// `"quarantine_frac[dev1]"`, …).
    pub slo: String,
    /// Observed value.
    pub observed: f64,
    /// Policy threshold it breached.
    pub threshold: f64,
    /// `observed / threshold` (for lower-bound SLOs,
    /// `threshold / observed`); `inf` when the denominator is zero.
    pub burn_rate: f64,
}

/// Per-device row of an SLO report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSloRow {
    /// Device label (`"dev0"`).
    pub device: String,
    /// Stages the device executed.
    pub stages: u64,
    /// Compute-engine utilization (`busy_ns / elapsed_ns`, 0 when idle).
    pub busy_frac: f64,
    /// Fraction of the device's timeline spent quarantined.
    pub quarantine_frac: f64,
    /// Times the device's circuit breaker tripped.
    pub quarantines: u64,
}

/// Cluster-level section of an SLO report, present when the snapshot
/// carries cluster counters (`cluster.admitted` et al.).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSloRow {
    /// Jobs admitted past the cluster front door.
    pub admitted: u64,
    /// Jobs that produced a proof.
    pub completed: u64,
    /// Jobs that failed permanently (including deadline misses).
    pub failed: u64,
    /// Checkpointed resumes after host kills.
    pub resumes: u64,
    /// Chaos host kills fired.
    pub host_kills: u64,
    /// Jobs unaccounted for: admitted minus resolved minus still
    /// queued/in-flight. Non-zero at rest means a kill lost work.
    pub lost: u64,
    /// Hosts currently up.
    pub hosts_up: u64,
}

/// The SLO evaluation of one snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// Jobs with a terminal outcome (completed + missed + cancelled +
    /// failed + drained).
    pub resolved: u64,
    /// Jobs that missed their deadline.
    pub deadline_missed: u64,
    /// `deadline_missed / resolved` (0 when nothing resolved).
    pub deadline_miss_rate: f64,
    /// Queue-wait p99 in wall-clock nanoseconds (`None` before any job
    /// was scheduled).
    pub queue_wait_p99_ns: Option<u64>,
    /// Per-device utilization/quarantine rows, sorted by device.
    pub devices: Vec<DeviceSloRow>,
    /// Cluster accounting, when the snapshot has cluster counters.
    pub cluster: Option<ClusterSloRow>,
    /// Fired alerts, in evaluation order.
    pub alerts: Vec<SloAlert>,
    /// `alerts.is_empty()` — the one-bit summary CI gates on.
    pub healthy: bool,
}

impl SloReport {
    /// One-line-per-fact text form for CLI output.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "slo: {}  resolved {}  deadline-miss-rate {:.4}  queue-wait p99 {}",
            if self.healthy { "OK" } else { "ALERT" },
            self.resolved,
            self.deadline_miss_rate,
            match self.queue_wait_p99_ns {
                Some(ns) => format!("{:.3} ms", ns as f64 / 1e6),
                None => "n/a".to_string(),
            }
        );
        if let Some(c) = &self.cluster {
            let _ = writeln!(
                out,
                "slo: cluster admitted {}  completed {}  failed {}  resumes {}  \
                 host-kills {}  lost {}  hosts-up {}",
                c.admitted, c.completed, c.failed, c.resumes, c.host_kills, c.lost, c.hosts_up
            );
        }
        for a in &self.alerts {
            let _ = writeln!(
                out,
                "slo: ALERT {}  observed {:.4}  threshold {:.4}  burn {:.2}x",
                a.slo, a.observed, a.threshold, a.burn_rate
            );
        }
        out
    }
}

/// Evaluates snapshots against an [`SloPolicy`].
#[derive(Debug, Clone, Default)]
pub struct SloTracker {
    /// The thresholds applied on every evaluation.
    pub policy: SloPolicy,
}

/// `observed / threshold`, `inf` when over a zero budget, 0 otherwise.
fn burn_rate(observed: f64, threshold: f64) -> f64 {
    if threshold > 0.0 {
        observed / threshold
    } else if observed > 0.0 {
        f64::INFINITY
    } else {
        0.0
    }
}

impl SloTracker {
    /// Tracker with the given thresholds.
    pub fn new(policy: SloPolicy) -> Self {
        Self { policy }
    }

    /// Computes the SLO report for one snapshot (live or deserialized —
    /// CI re-evaluates written snapshots with this same code path).
    pub fn evaluate(&self, snap: &MetricsSnapshot) -> SloReport {
        let completed = snap.counter(names::SERVICE_COMPLETED).unwrap_or(0);
        let missed = snap.counter(names::SERVICE_DEADLINE_MISSED).unwrap_or(0);
        let cancelled = snap.counter(names::SERVICE_CANCELLED).unwrap_or(0);
        let failed = snap.counter(names::SERVICE_FAILED).unwrap_or(0);
        let drained = snap.counter(names::SERVICE_DRAINED).unwrap_or(0);
        let resolved = completed + missed + cancelled + failed + drained;
        let miss_rate = if resolved > 0 {
            missed as f64 / resolved as f64
        } else {
            0.0
        };
        let queue_p99 = snap
            .histogram(names::SERVICE_QUEUE_WAIT_NS)
            .and_then(|h| h.p99());

        let mut alerts = Vec::new();
        if miss_rate > self.policy.max_deadline_miss_rate {
            alerts.push(SloAlert {
                slo: "deadline_miss_rate".to_string(),
                observed: miss_rate,
                threshold: self.policy.max_deadline_miss_rate,
                burn_rate: burn_rate(miss_rate, self.policy.max_deadline_miss_rate),
            });
        }
        if let Some(p99) = queue_p99 {
            if p99 > self.policy.max_queue_wait_p99_ns {
                alerts.push(SloAlert {
                    slo: "queue_wait_p99_ns".to_string(),
                    observed: p99 as f64,
                    threshold: self.policy.max_queue_wait_p99_ns as f64,
                    burn_rate: burn_rate(p99 as f64, self.policy.max_queue_wait_p99_ns as f64),
                });
            }
        }

        let mut devices = Vec::new();
        for dev in snap.label_values("device") {
            let stages = snap
                .counter_labeled(names::DEVICE_STAGES, "device", &dev)
                .unwrap_or(0);
            let busy = snap
                .gauge_labeled(names::DEVICE_BUSY_NS, "device", &dev)
                .unwrap_or(0.0);
            let elapsed = snap
                .gauge_labeled(names::DEVICE_ELAPSED_NS, "device", &dev)
                .unwrap_or(0.0);
            let quarantine_ns = snap
                .gauge_labeled(names::DEVICE_QUARANTINE_NS, "device", &dev)
                .unwrap_or(0.0);
            let quarantines = snap
                .counter_labeled(names::QUARANTINE_EVENTS, "device", &dev)
                .unwrap_or(0);
            let busy_frac = if elapsed > 0.0 { busy / elapsed } else { 0.0 };
            let quarantine_frac = if elapsed > 0.0 {
                quarantine_ns / elapsed
            } else {
                0.0
            };
            if quarantine_frac > self.policy.max_quarantine_frac {
                alerts.push(SloAlert {
                    slo: format!("quarantine_frac[{dev}]"),
                    observed: quarantine_frac,
                    threshold: self.policy.max_quarantine_frac,
                    burn_rate: burn_rate(quarantine_frac, self.policy.max_quarantine_frac),
                });
            }
            if self.policy.min_device_util > 0.0
                && stages > 0
                && busy_frac < self.policy.min_device_util
            {
                alerts.push(SloAlert {
                    slo: format!("device_util[{dev}]"),
                    observed: busy_frac,
                    threshold: self.policy.min_device_util,
                    burn_rate: burn_rate(self.policy.min_device_util, busy_frac),
                });
            }
            devices.push(DeviceSloRow {
                device: dev,
                stages,
                busy_frac,
                quarantine_frac,
                quarantines,
            });
        }

        let cluster = self.evaluate_cluster(snap, &mut alerts);

        SloReport {
            resolved,
            deadline_missed: missed,
            deadline_miss_rate: miss_rate,
            queue_wait_p99_ns: queue_p99,
            devices,
            cluster,
            healthy: alerts.is_empty(),
            alerts,
        }
    }

    /// Cluster lost-job accounting: a job the front door admitted must
    /// be resolved (completed or failed) or still held somewhere (the
    /// fair queue or a host's in-flight set). Anything else was lost to
    /// a kill — the one failure mode checkpointed resume exists to
    /// prevent — and burns the (default zero) budget.
    fn evaluate_cluster(
        &self,
        snap: &MetricsSnapshot,
        alerts: &mut Vec<SloAlert>,
    ) -> Option<ClusterSloRow> {
        let admitted = snap.counter(names::CLUSTER_ADMITTED)?;
        let completed = snap.counter(names::CLUSTER_COMPLETED).unwrap_or(0);
        let failed = snap.counter(names::CLUSTER_FAILED).unwrap_or(0);
        let queued = snap.gauge(names::CLUSTER_QUEUE_DEPTH).unwrap_or(0.0) as u64;
        let inflight: u64 = snap
            .label_values(names::LABEL_HOST)
            .iter()
            .map(|h| {
                snap.gauge_labeled(names::HOST_INFLIGHT, names::LABEL_HOST, h)
                    .unwrap_or(0.0) as u64
            })
            .sum();
        let lost = admitted.saturating_sub(completed + failed + queued + inflight);
        if lost > self.policy.max_cluster_lost_jobs {
            alerts.push(SloAlert {
                slo: "cluster_lost_jobs".to_string(),
                observed: lost as f64,
                threshold: self.policy.max_cluster_lost_jobs as f64,
                burn_rate: burn_rate(lost as f64, self.policy.max_cluster_lost_jobs as f64),
            });
        }
        Some(ClusterSloRow {
            admitted,
            completed,
            failed,
            resumes: snap.counter(names::CLUSTER_RESUMES).unwrap_or(0),
            host_kills: snap.counter(names::CLUSTER_HOST_KILLS).unwrap_or(0),
            lost,
            hosts_up: snap.gauge(names::CLUSTER_HOSTS_UP).unwrap_or(0.0) as u64,
        })
    }
}

// ---------------------------------------------------------------------------
// Periodic exporter
// ---------------------------------------------------------------------------

/// Background thread that periodically snapshots a registry to disk —
/// JSON always, Prometheus text alongside when a path is given — and
/// writes one final snapshot on [`SnapshotExporter::stop`] (or drop).
/// `zkserve top` follows the JSON file; a scrape target would read the
/// `.prom` file.
pub struct SnapshotExporter {
    shared: Arc<ExporterShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

struct ExporterShared {
    registry: Arc<MetricsRegistry>,
    tracker: Option<SloTracker>,
    json_path: std::path::PathBuf,
    prom_path: Option<std::path::PathBuf>,
    stop: Mutex<bool>,
    cv: Condvar,
}

impl ExporterShared {
    fn write_once(&self) -> std::io::Result<MetricsSnapshot> {
        let snap = self.registry.snapshot_with(self.tracker.as_ref());
        std::fs::write(&self.json_path, snap.to_json())?;
        if let Some(prom) = &self.prom_path {
            std::fs::write(prom, snap.to_prometheus())?;
        }
        Ok(snap)
    }
}

impl SnapshotExporter {
    /// Starts the exporter thread. `interval` is the export period; the
    /// first snapshot is written after one interval, and a final one at
    /// stop time regardless of phase.
    pub fn start(
        registry: Arc<MetricsRegistry>,
        tracker: Option<SloTracker>,
        json_path: impl Into<std::path::PathBuf>,
        prom_path: Option<std::path::PathBuf>,
        interval: Duration,
    ) -> Self {
        let shared = Arc::new(ExporterShared {
            registry,
            tracker,
            json_path: json_path.into(),
            prom_path,
            stop: Mutex::new(false),
            cv: Condvar::new(),
        });
        let thread_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("gzkp-metrics-exporter".to_string())
            .spawn(move || {
                let mut stopped = thread_shared
                    .stop
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                loop {
                    let (guard, timeout) = thread_shared
                        .cv
                        .wait_timeout(stopped, interval)
                        .unwrap_or_else(PoisonError::into_inner);
                    stopped = guard;
                    if *stopped {
                        return;
                    }
                    if timeout.timed_out() {
                        let _ = thread_shared.write_once();
                    }
                }
            })
            .expect("spawn metrics exporter");
        Self {
            shared,
            handle: Some(handle),
        }
    }

    /// Stops the thread and writes the final snapshot, returning it.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error of the final write.
    pub fn stop(mut self) -> std::io::Result<MetricsSnapshot> {
        self.shutdown();
        self.shared.write_once()
    }

    fn shutdown(&mut self) {
        *self
            .shared
            .stop
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = true;
        self.shared.cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SnapshotExporter {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.shutdown();
            let _ = self.shared.write_once();
        }
    }
}

// ---------------------------------------------------------------------------
// `zkserve top` dashboard rendering
// ---------------------------------------------------------------------------

/// Renders one frame of the `zkserve top` dashboard from a snapshot:
/// job-flow header, stage-latency percentiles, SLO status, and one
/// utilization lane per device.
pub fn render_top(snap: &MetricsSnapshot) -> String {
    use std::fmt::Write as _;
    const BAR: usize = 24;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "gzkp top — uptime {:8.2} s   queue depth {:>4}",
        snap.uptime_ns as f64 / 1e9,
        snap.gauge(names::SERVICE_QUEUE_DEPTH).unwrap_or(0.0) as u64,
    );
    let _ = writeln!(
        out,
        "jobs: accepted {:>5}  completed {:>5}  missed {:>3}  failed {:>3}  \
         rejected {:>3}  retries {:>3}",
        snap.counter(names::SERVICE_ACCEPTED).unwrap_or(0),
        snap.counter(names::SERVICE_COMPLETED).unwrap_or(0),
        snap.counter(names::SERVICE_DEADLINE_MISSED).unwrap_or(0),
        snap.counter(names::SERVICE_FAILED).unwrap_or(0),
        snap.counter(names::SERVICE_REJECTED).unwrap_or(0),
        snap.counter(names::SERVICE_RETRIES).unwrap_or(0),
    );
    let ms = |v: Option<u64>| match v {
        Some(ns) => format!("{:9.3}", ns as f64 / 1e6),
        None => format!("{:>9}", "-"),
    };
    let mut latency_rows: Vec<(String, &HistogramSample)> = Vec::new();
    if let Some(h) = snap.histogram(names::SERVICE_QUEUE_WAIT_NS) {
        latency_rows.push(("queue_wait".to_string(), h));
    }
    for h in &snap.histograms {
        if h.name == names::STAGE_LATENCY_NS {
            if let Some((_, stage)) = &h.label {
                latency_rows.push((format!("stage {stage}"), h));
            }
        }
    }
    if let Some(h) = snap.histogram(names::SERVICE_JOB_LATENCY_NS) {
        latency_rows.push(("job e2e".to_string(), h));
    }
    if !latency_rows.is_empty() {
        let _ = writeln!(
            out,
            "{:<14} {:>9} {:>9} {:>9} {:>7}",
            "latency (ms)", "p50", "p95", "p99", "count"
        );
        for (label, h) in latency_rows {
            let _ = writeln!(
                out,
                "  {label:<12} {} {} {} {:>7}",
                ms(h.p50()),
                ms(h.p95()),
                ms(h.p99()),
                h.count
            );
        }
    }
    if let Some(hosts_up) = snap.gauge(names::CLUSTER_HOSTS_UP) {
        let _ = writeln!(
            out,
            "cluster: hosts up {:>2}  admitted {:>5}  completed {:>5}  failed {:>3}  \
             resumes {:>3}  kills {:>3}  shed {:>3}",
            hosts_up as u64,
            snap.counter(names::CLUSTER_ADMITTED).unwrap_or(0),
            snap.counter(names::CLUSTER_COMPLETED).unwrap_or(0),
            snap.counter(names::CLUSTER_FAILED).unwrap_or(0),
            snap.counter(names::CLUSTER_RESUMES).unwrap_or(0),
            snap.counter(names::CLUSTER_HOST_KILLS).unwrap_or(0),
            snap.counter(names::CLUSTER_REJECTED_RATE).unwrap_or(0)
                + snap.counter(names::CLUSTER_REJECTED_SATURATED).unwrap_or(0),
        );
        let mut hosts = snap.label_values(names::LABEL_HOST);
        hosts.sort();
        if !hosts.is_empty() {
            let _ = writeln!(
                out,
                "{:<6} {:<8} {:>8} {:>9}",
                "host", "state", "inflight", "completed"
            );
            for h in &hosts {
                let state = match snap
                    .gauge_labeled(names::HOST_STATE, names::LABEL_HOST, h)
                    .unwrap_or(3.0) as u64
                {
                    0 => "warming",
                    1 => "up",
                    2 => "drain",
                    _ => "dead",
                };
                let _ = writeln!(
                    out,
                    "{:<6} {:<8} {:>8} {:>9}",
                    h,
                    state,
                    snap.gauge_labeled(names::HOST_INFLIGHT, names::LABEL_HOST, h)
                        .unwrap_or(0.0) as u64,
                    snap.counter_labeled(names::HOST_COMPLETED, names::LABEL_HOST, h)
                        .unwrap_or(0),
                );
            }
        }
    }
    match &snap.slo {
        Some(slo) => {
            let _ = write!(out, "{}", slo.render());
            if !slo.devices.is_empty() {
                let _ = writeln!(
                    out,
                    "{:<6} {:>6} {:<w$} {:>6} {:>5} {:>5}",
                    "device",
                    "stages",
                    "utilization",
                    "util",
                    "quar%",
                    "trips",
                    w = BAR + 2
                );
                for d in &slo.devices {
                    let filled = ((d.busy_frac * BAR as f64).round() as usize).min(BAR);
                    let bar: String = "#".repeat(filled) + &" ".repeat(BAR - filled);
                    let _ = writeln!(
                        out,
                        "{:<6} {:>6} [{bar}] {:>5.0}% {:>5.1} {:>5}",
                        d.device,
                        d.stages,
                        d.busy_frac * 100.0,
                        d.quarantine_frac * 100.0,
                        d.quarantines
                    );
                }
            }
        }
        None => {
            let _ = writeln!(out, "slo: (no tracker attached)");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math_is_total() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(10), 2047);
        assert_eq!(bucket_upper(63), u64::MAX);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn counters_and_gauges_record() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c");
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
        // Re-registration attaches to the same cell.
        reg.counter("c").add(6);
        assert_eq!(c.get(), 10);
        let g = reg.gauge("g");
        g.set(2.5);
        g.set_max(1.0);
        assert_eq!(g.get(), 2.5);
        g.set_max(7.25);
        assert_eq!(g.get(), 7.25);
        g.add(0.75);
        assert_eq!(g.get(), 8.0);
        // Labeled series are distinct from unlabeled ones.
        reg.counter_with("c", "device", "dev0").add(100);
        assert_eq!(c.get(), 10);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), Some(10));
        assert_eq!(snap.counter_labeled("c", "device", "dev0"), Some(100));
        assert_eq!(snap.counter_total("c"), 110);
        assert_eq!(snap.gauge("g"), Some(8.0));
    }

    #[test]
    fn histogram_percentiles_are_total_on_edges() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h");
        // Empty: every quantile is None.
        let empty = reg.snapshot();
        let hs = empty.histogram("h").unwrap();
        assert_eq!(hs.quantile(0.0), None);
        assert_eq!(hs.p50(), None);
        assert_eq!(hs.p99(), None);
        assert_eq!(hs.mean(), None);
        // Single sample answers every quantile with its bucket bound.
        h.record(100);
        let one = reg.snapshot();
        let hs = one.histogram("h").unwrap();
        assert_eq!(hs.count, 1);
        assert_eq!(hs.sum, 100);
        let bound = bucket_upper(bucket_of(100) as u64);
        for q in [-1.0, 0.0, 0.5, 0.99, 1.0, 2.0, f64::NAN] {
            assert_eq!(hs.quantile(q), Some(bound), "q={q}");
        }
        assert_eq!(hs.mean(), Some(100.0));
        // u64::MAX lands in the top bucket and reports u64::MAX.
        h.record(u64::MAX);
        h.record(0);
        let snap = reg.snapshot();
        let hs = snap.histogram("h").unwrap();
        assert_eq!(hs.count, 3);
        assert_eq!(hs.quantile(1.0), Some(u64::MAX));
        assert_eq!(hs.quantile(0.0), Some(1), "rank clamps to the zero sample");
    }

    #[test]
    fn histogram_percentiles_order() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        for i in 1..=1000u64 {
            h.record(i * 1000);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("lat").unwrap();
        let (p50, p95, p99) = (hs.p50().unwrap(), hs.p95().unwrap(), hs.p99().unwrap());
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // The bucket upper bound over-estimates by at most 2x.
        assert!((500_000..=1_048_575).contains(&p50), "{p50}");
        assert!(p99 >= 990_000, "{p99}");
        assert_eq!(hs.sum, (1..=1000u64).map(|i| i * 1000).sum::<u64>());
    }

    #[test]
    fn concurrent_recording_totals_exact() {
        // N threads hammer shared counter/gauge/histogram handles; the
        // snapshot must account for every single event.
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let reg = Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                // Half the threads re-register (exercising the dedup
                // path under contention), half clone idiomatically.
                let c = reg.counter("ops");
                let h = reg.histogram_with("lat", "stage", "msm");
                let g = reg.gauge("peak");
                for i in 0..PER_THREAD {
                    c.add(1);
                    h.record(t * PER_THREAD + i + 1);
                    g.set_max((t * PER_THREAD + i) as f64);
                }
            }));
        }
        for th in handles {
            th.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("ops"), Some(THREADS * PER_THREAD));
        let h = snap.histogram_labeled("lat", "stage", "msm").unwrap();
        assert_eq!(h.count, THREADS * PER_THREAD);
        let expect_sum: u64 = (1..=THREADS * PER_THREAD).sum();
        assert_eq!(h.sum, expect_sum);
        assert_eq!(h.buckets.iter().map(|&(_, c)| c).sum::<u64>(), h.count);
        assert_eq!(snap.gauge("peak"), Some((THREADS * PER_THREAD - 1) as f64));
    }

    #[test]
    fn snapshot_json_round_trip() {
        let reg = MetricsRegistry::new();
        reg.counter(names::SERVICE_ACCEPTED).add(12);
        reg.counter_with(names::DEVICE_STAGES, "device", "dev0")
            .add(7);
        reg.gauge(names::SERVICE_QUEUE_DEPTH).set(3.0);
        let h = reg.histogram(names::SERVICE_QUEUE_WAIT_NS);
        h.record(1500);
        h.record(0);
        h.record(u64::MAX);
        let snap = reg.snapshot_with(Some(&SloTracker::default()));
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        // Version check fires before field decoding.
        let future = json.replacen(
            &format!("\"schema_version\": {METRICS_SCHEMA_VERSION}"),
            "\"schema_version\": 999",
            1,
        );
        assert_ne!(future, json);
        assert!(MetricsSnapshot::from_json(&future)
            .unwrap_err()
            .contains("999"));
        assert!(MetricsSnapshot::from_json("{").is_err());
    }

    #[test]
    fn prometheus_exposition_golden() {
        let reg = MetricsRegistry::new();
        reg.counter(names::SERVICE_ACCEPTED).add(12);
        reg.counter_with(names::DEVICE_STAGES, "device", "dev0")
            .add(7);
        reg.gauge(names::SERVICE_QUEUE_DEPTH).set(3.0);
        let h = reg.histogram_with(names::STAGE_LATENCY_NS, "stage", "msm");
        h.record(3); // bucket 1, le 3
        h.record(3);
        h.record(1000); // bucket 9, le 1023
        let mut snap = reg.snapshot();
        snap.uptime_ns = 5_000_000; // pin the only nondeterministic field
        let expected = "\
# TYPE gzkp_uptime_ns gauge
gzkp_uptime_ns 5000000
# TYPE gzkp_device_stages counter
gzkp_device_stages{device=\"dev0\"} 7
# TYPE gzkp_service_accepted counter
gzkp_service_accepted 12
# TYPE gzkp_service_queue_depth gauge
gzkp_service_queue_depth 3
# TYPE gzkp_stage_latency_ns histogram
gzkp_stage_latency_ns_bucket{stage=\"msm\",le=\"3\"} 2
gzkp_stage_latency_ns_bucket{stage=\"msm\",le=\"1023\"} 3
gzkp_stage_latency_ns_bucket{stage=\"msm\",le=\"+Inf\"} 3
gzkp_stage_latency_ns_sum{stage=\"msm\"} 1006
gzkp_stage_latency_ns_count{stage=\"msm\"} 3
";
        assert_eq!(snap.to_prometheus(), expected);
    }

    #[test]
    fn prometheus_top_bucket_is_inf() {
        let reg = MetricsRegistry::new();
        reg.histogram("h").record(u64::MAX);
        let text = reg.snapshot().to_prometheus();
        // The 2^63.. bucket renders as +Inf, and is not duplicated.
        assert_eq!(text.matches("le=\"+Inf\"").count(), 1, "{text}");
    }

    #[test]
    fn slo_tracker_clean_run_is_healthy() {
        let reg = MetricsRegistry::new();
        reg.counter(names::SERVICE_COMPLETED).add(10);
        reg.histogram(names::SERVICE_QUEUE_WAIT_NS)
            .record(1_000_000);
        reg.counter_with(names::DEVICE_STAGES, "device", "dev0")
            .add(10);
        reg.gauge_with(names::DEVICE_BUSY_NS, "device", "dev0")
            .set(8e6);
        reg.gauge_with(names::DEVICE_ELAPSED_NS, "device", "dev0")
            .set(1e7);
        let report = SloTracker::default().evaluate(&reg.snapshot());
        assert!(report.healthy, "{report:?}");
        assert_eq!(report.resolved, 10);
        assert_eq!(report.deadline_miss_rate, 0.0);
        assert_eq!(report.devices.len(), 1);
        assert!((report.devices[0].busy_frac - 0.8).abs() < 1e-9);
        assert!(report.render().contains("slo: OK"));
    }

    #[test]
    fn slo_tracker_fires_burn_rate_alerts() {
        let reg = MetricsRegistry::new();
        reg.counter(names::SERVICE_COMPLETED).add(5);
        reg.counter(names::SERVICE_DEADLINE_MISSED).add(5);
        reg.gauge_with(names::DEVICE_ELAPSED_NS, "device", "dev1")
            .set(1e9);
        reg.gauge_with(names::DEVICE_QUARANTINE_NS, "device", "dev1")
            .set(5e8);
        let tracker = SloTracker::new(SloPolicy {
            max_deadline_miss_rate: 0.1,
            max_quarantine_frac: 0.25,
            ..SloPolicy::default()
        });
        let report = tracker.evaluate(&reg.snapshot());
        assert!(!report.healthy);
        assert_eq!(report.alerts.len(), 2, "{report:?}");
        let miss = &report.alerts[0];
        assert_eq!(miss.slo, "deadline_miss_rate");
        assert!((miss.observed - 0.5).abs() < 1e-9);
        assert!((miss.burn_rate - 5.0).abs() < 1e-9);
        let quar = &report.alerts[1];
        assert_eq!(quar.slo, "quarantine_frac[dev1]");
        assert!((quar.burn_rate - 2.0).abs() < 1e-9);
        assert!(report.render().contains("burn 5.00x"));
        // Zero-budget SLOs burn at infinity.
        let strict = SloTracker::new(SloPolicy {
            max_deadline_miss_rate: 0.0,
            ..SloPolicy::default()
        });
        let report = strict.evaluate(&reg.snapshot());
        assert!(report.alerts[0].burn_rate.is_infinite());
    }

    #[test]
    fn slo_evaluation_works_on_deserialized_snapshots() {
        let reg = MetricsRegistry::new();
        reg.counter(names::SERVICE_COMPLETED).add(4);
        let snap = reg.snapshot();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        let report = SloTracker::default().evaluate(&back);
        assert_eq!(report.resolved, 4);
        assert!(report.healthy);
    }

    #[test]
    fn exporter_writes_periodic_and_final_snapshots() {
        let dir = std::env::temp_dir().join("gzkp-metrics-exporter-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("metrics.json");
        let prom = dir.join("metrics.prom");
        std::fs::remove_file(&json).ok();
        std::fs::remove_file(&prom).ok();
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter(names::SERVICE_ACCEPTED);
        let exporter = SnapshotExporter::start(
            reg.clone(),
            Some(SloTracker::default()),
            &json,
            Some(prom.clone()),
            Duration::from_millis(5),
        );
        c.add(42);
        // Wait for at least one periodic export.
        let deadline = Instant::now() + Duration::from_secs(5);
        while !json.exists() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let final_snap = exporter.stop().unwrap();
        assert_eq!(final_snap.counter(names::SERVICE_ACCEPTED), Some(42));
        assert!(final_snap.slo.is_some(), "exporter attaches SLO");
        let from_disk =
            MetricsSnapshot::from_json(&std::fs::read_to_string(&json).unwrap()).unwrap();
        assert_eq!(from_disk.counter(names::SERVICE_ACCEPTED), Some(42));
        let prom_text = std::fs::read_to_string(&prom).unwrap();
        assert!(prom_text.contains("gzkp_service_accepted 42"));
        std::fs::remove_file(&json).ok();
        std::fs::remove_file(&prom).ok();
    }

    #[test]
    fn render_top_shows_queue_latency_and_devices() {
        let reg = MetricsRegistry::new();
        reg.counter(names::SERVICE_ACCEPTED).add(9);
        reg.counter(names::SERVICE_COMPLETED).add(7);
        reg.gauge(names::SERVICE_QUEUE_DEPTH).set(2.0);
        reg.histogram(names::SERVICE_QUEUE_WAIT_NS)
            .record(2_000_000);
        reg.histogram_with(names::STAGE_LATENCY_NS, "stage", "poly")
            .record(5_000_000);
        reg.histogram_with(names::STAGE_LATENCY_NS, "stage", "msm")
            .record(9_000_000);
        reg.counter_with(names::DEVICE_STAGES, "device", "dev0")
            .add(7);
        reg.gauge_with(names::DEVICE_BUSY_NS, "device", "dev0")
            .set(5e8);
        reg.gauge_with(names::DEVICE_ELAPSED_NS, "device", "dev0")
            .set(1e9);
        let snap = reg.snapshot_with(Some(&SloTracker::default()));
        let text = render_top(&snap);
        assert!(text.contains("queue depth    2"), "{text}");
        assert!(text.contains("accepted     9"), "{text}");
        assert!(text.contains("stage poly"), "{text}");
        assert!(text.contains("stage msm"), "{text}");
        assert!(text.contains("slo: OK"), "{text}");
        assert!(text.contains("dev0"), "{text}");
        assert!(text.contains('#'), "utilization bar renders: {text}");
        // Without a tracker the dashboard says so instead of panicking.
        let bare = render_top(&reg.snapshot());
        assert!(bare.contains("no tracker"), "{bare}");
    }
}
