//! # gzkp-telemetry — structured prover observability
//!
//! The GZKP reproduction's engines already compute detailed cost models
//! ([`gzkp_gpu_sim::KernelReport`]); until now they only surfaced them as
//! return values and ad-hoc text tables. This crate adds a structured
//! telemetry layer on top:
//!
//! * [`TelemetrySink`] — the hook trait engines and the prover accept.
//!   The default implementation ([`NoopSink`]) does nothing and costs one
//!   `enabled()` branch per stage, so un-instrumented runs stay free.
//! * [`TraceRecorder`] — a sink that builds a span *tree*
//!   (`prove → poly → ntt[i]`, `prove → msm → {a, b_g1, b_g2, h, l}`)
//!   with per-span kernels, counters (field muls, PADD/PDBL, DRAM
//!   sectors), value gauges (peak device memory), and histograms
//!   (bucket occupancy).
//! * [`Trace`] — the versioned, serde-serializable form written to
//!   `gzkp-trace.json`; [`Trace::from_json`] rejects schema mismatches.
//! * [`diff`] — span-tree comparison with a regression threshold, the
//!   engine behind `zkprof diff`.
//!
//! No external tracing framework is used — spans here measure *simulated*
//! nanoseconds from the cost model, not wall clock, so a recorder is just
//! a tree builder behind a mutex.

#![warn(missing_docs)]

pub mod diff;
pub mod flame;
pub mod metrics;
pub mod names;
pub mod trace;

pub use diff::{diff_traces, StageDelta, TraceDiff};
pub use flame::folded_stacks;
pub use metrics::{
    render_top, ClusterSloRow, Counter, Gauge, HistogramSample, LatencyHistogram, MetricsRegistry,
    MetricsSnapshot, SloAlert, SloPolicy, SloReport, SloTracker, SnapshotExporter,
    METRICS_SCHEMA_VERSION,
};
pub use trace::{
    render_timeline, render_trace, Histogram, Trace, TraceError, TraceNode, SCHEMA_VERSION,
};

use gzkp_gpu_sim::kernel::{KernelReport, StageReport};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Sink trait + no-op default
// ---------------------------------------------------------------------------

/// Receiver of telemetry events from engines and the prover.
///
/// All methods have no-op defaults; implementors override what they
/// consume. Instrumented call sites must guard non-trivial event
/// preparation with [`TelemetrySink::enabled`] so disabled sinks cost a
/// single predictable branch.
pub trait TelemetrySink: Send + Sync {
    /// Whether this sink records anything. Call sites skip event
    /// construction when `false`.
    fn enabled(&self) -> bool {
        false
    }

    /// Opens a nested span; subsequent events attach to it until the
    /// matching [`TelemetrySink::span_end`].
    fn span_start(&self, _name: &str) {}

    /// Closes the innermost span (the name is advisory, for debugging).
    fn span_end(&self, _name: &str) {}

    /// Adds `delta` to the named counter of the current span.
    fn counter(&self, _name: &str, _delta: f64) {}

    /// Records a gauge on the current span; repeated reports keep the max
    /// (used for peaks, e.g. simulated device memory).
    fn value(&self, _name: &str, _v: f64) {}

    /// Attaches a named histogram (`(bucket_label, count)` pairs) to the
    /// current span.
    fn histogram(&self, _name: &str, _buckets: &[(u64, u64)]) {}

    /// Attaches one simulated kernel execution to the current span.
    fn kernel(&self, _report: &KernelReport) {}

    /// Adds `ns` of directly-measured time to the current span. Spans
    /// normally derive their time from the kernels they record; this hook
    /// is for spans that measure something with no kernel behind it —
    /// e.g. the proving service's wall-clock `queue_wait`.
    fn span_time(&self, _ns: f64) {}
}

/// The zero-cost default sink: records nothing, reports `enabled() ==
/// false` so call sites skip event preparation entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {}

/// RAII guard that closes a span on drop, keeping start/end balanced even
/// on early returns.
pub struct SpanGuard<'a> {
    sink: &'a dyn TelemetrySink,
    name: &'a str,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.sink.span_end(self.name);
    }
}

/// Opens a span and returns the guard that closes it.
pub fn span<'a>(sink: &'a dyn TelemetrySink, name: &'a str) -> SpanGuard<'a> {
    sink.span_start(name);
    SpanGuard { sink, name }
}

// ---------------------------------------------------------------------------
// Shared emit helpers
// ---------------------------------------------------------------------------

/// Compatibility alias for [`names`] — counter constants were originally
/// published under `telemetry::counters`; new code should use
/// `telemetry::names`.
pub use self::names as counters;

/// Feeds one simulated stage into the sink: every kernel report, plus the
/// rolled-up [`counters::MAC_OPS`] and [`counters::DRAM_SECTORS`].
pub fn emit_stage(sink: &dyn TelemetrySink, stage: &StageReport) {
    let mut macs = 0.0;
    let mut sectors = 0u64;
    for k in &stage.kernels {
        sink.kernel(k);
        macs += k.mac_ops;
        sectors += k.dram_sectors;
    }
    sink.counter(counters::MAC_OPS, macs);
    sink.counter(counters::DRAM_SECTORS, sectors as f64);
}

/// Builds a power-of-two histogram of `values`: bucket label `b` counts
/// values in `[2^b, 2^{b+1})`; label 0 additionally counts zeros.
pub fn log2_histogram(values: impl Iterator<Item = u64>) -> Vec<(u64, u64)> {
    let mut counts: Vec<u64> = Vec::new();
    for v in values {
        let bucket = if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        if counts.len() <= bucket {
            counts.resize(bucket + 1, 0);
        }
        counts[bucket] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .filter(|&(_, c)| c > 0)
        .map(|(b, c)| (b as u64, c))
        .collect()
}

// ---------------------------------------------------------------------------
// The recording sink
// ---------------------------------------------------------------------------

/// A [`TelemetrySink`] that builds the span tree of one prover run and
/// produces a [`Trace`].
///
/// Interior mutability (a `std::sync::Mutex`) keeps the sink usable
/// through `&dyn TelemetrySink`; events are tree edits, so contention is
/// negligible next to the work being traced.
pub struct TraceRecorder {
    inner: Mutex<RecorderState>,
    device: String,
}

struct RecorderState {
    root: TraceNode,
    /// Child-index path from the root to the currently open span.
    path: Vec<usize>,
}

impl TraceRecorder {
    /// Fresh recorder; `device` labels the trace (e.g. `"V100"`).
    pub fn new(device: impl Into<String>) -> Self {
        Self {
            inner: Mutex::new(RecorderState {
                root: TraceNode::new("root"),
                path: Vec::new(),
            }),
            device: device.into(),
        }
    }

    fn with_current<R>(&self, f: impl FnOnce(&mut TraceNode) -> R) -> R {
        let mut st = self.inner.lock().unwrap();
        let st = &mut *st;
        let mut node = &mut st.root;
        for &i in &st.path {
            node = &mut node.children[i];
        }
        f(node)
    }

    /// Consumes the recorder into a versioned [`Trace`], filling every
    /// span's `time_ns` from its kernels and children (plus any time the
    /// span recorded directly via [`TelemetrySink::span_time`]).
    pub fn finish(self) -> Trace {
        let mut st = self.inner.into_inner().unwrap();
        fn fixup(node: &mut TraceNode) -> f64 {
            let own: f64 = node.kernels.iter().map(|k| k.time_ns).sum();
            let children: f64 = node.children.iter_mut().map(fixup).sum();
            node.time_ns += own + children;
            node.time_ns
        }
        fixup(&mut st.root);
        Trace {
            schema_version: SCHEMA_VERSION,
            tool: "gzkp".to_string(),
            device: self.device,
            root: st.root,
        }
    }
}

impl TelemetrySink for TraceRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&self, name: &str) {
        let mut st = self.inner.lock().unwrap();
        let st = &mut *st;
        let mut node = &mut st.root;
        for &i in &st.path {
            node = &mut node.children[i];
        }
        node.children.push(TraceNode::new(name));
        let idx = node.children.len() - 1;
        st.path.push(idx);
    }

    fn span_end(&self, _name: &str) {
        let mut st = self.inner.lock().unwrap();
        st.path.pop();
    }

    fn counter(&self, name: &str, delta: f64) {
        self.with_current(|n| {
            if let Some(c) = n.counters.iter_mut().find(|(k, _)| k == name) {
                c.1 += delta;
            } else {
                n.counters.push((name.to_string(), delta));
            }
        });
    }

    fn value(&self, name: &str, v: f64) {
        self.with_current(|n| {
            if let Some(c) = n.values.iter_mut().find(|(k, _)| k == name) {
                c.1 = c.1.max(v);
            } else {
                n.values.push((name.to_string(), v));
            }
        });
    }

    fn histogram(&self, name: &str, buckets: &[(u64, u64)]) {
        self.with_current(|n| {
            n.histograms.push(Histogram {
                name: name.to_string(),
                buckets: buckets.to_vec(),
            });
        });
    }

    fn kernel(&self, report: &KernelReport) {
        self.with_current(|n| n.kernels.push(report.clone()));
    }

    fn span_time(&self, ns: f64) {
        self.with_current(|n| n.time_ns += ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gzkp_gpu_sim::device::{v100, Backend};
    use gzkp_gpu_sim::kernel::{simulate_kernel, BlockCost, KernelSpec};

    fn sample_kernel(name: &str) -> KernelReport {
        let dev = v100();
        let spec = KernelSpec::uniform(
            name,
            256,
            0,
            Backend::Integer,
            4,
            80,
            BlockCost {
                mac_ops: 1e5,
                dram_sectors: 64,
                shared_bytes: 0,
            },
        );
        simulate_kernel(&dev, &spec)
    }

    #[test]
    fn recorder_builds_span_tree() {
        let rec = TraceRecorder::new("V100");
        {
            let _prove = span(&rec, "prove");
            {
                let _poly = span(&rec, "poly");
                for i in 0..3 {
                    let name = format!("ntt[{i}]");
                    let _ntt = span(&rec, &name);
                    rec.kernel(&sample_kernel("butterfly.0"));
                    rec.counter(counters::MAC_OPS, 1e5 * 80.0);
                }
            }
            {
                let _msm = span(&rec, "msm");
                let _a = span(&rec, "a");
                rec.kernel(&sample_kernel("gzkp.point-merge"));
                rec.value(counters::PEAK_DEVICE_BYTES, 1e9);
                rec.value(counters::PEAK_DEVICE_BYTES, 5e8); // max is kept
                rec.histogram("bucket_occupancy", &[(0, 10), (3, 5)]);
            }
        }
        let trace = rec.finish();
        let poly = trace.find(&["prove", "poly"]).unwrap();
        assert_eq!(poly.children.len(), 3);
        assert!(poly.time_ns > 0.0);
        let ntt1 = trace.find(&["prove", "poly", "ntt[1]"]).unwrap();
        assert_eq!(ntt1.counter(counters::MAC_OPS), Some(8e6));
        let a = trace.find(&["prove", "msm", "a"]).unwrap();
        assert_eq!(a.value(counters::PEAK_DEVICE_BYTES), Some(1e9));
        assert_eq!(a.histograms.len(), 1);
        // Parent time aggregates children.
        let prove = trace.find(&["prove"]).unwrap();
        assert!((prove.time_ns - (poly.time_ns + a.time_ns)).abs() < 1e-6);
    }

    #[test]
    fn counters_accumulate_and_values_max() {
        let rec = TraceRecorder::new("d");
        rec.counter("x", 1.0);
        rec.counter("x", 2.5);
        rec.value("peak", 3.0);
        rec.value("peak", 2.0);
        let t = rec.finish();
        assert_eq!(t.root.counter("x"), Some(3.5));
        assert_eq!(t.root.value("peak"), Some(3.0));
    }

    #[test]
    fn emit_stage_rolls_up() {
        let rec = TraceRecorder::new("d");
        let mut stage = gzkp_gpu_sim::kernel::StageReport::new("s");
        stage.kernels.push(sample_kernel("k1"));
        stage.kernels.push(sample_kernel("k2"));
        emit_stage(&rec, &stage);
        let t = rec.finish();
        assert_eq!(t.root.kernels.len(), 2);
        assert_eq!(t.root.counter(counters::MAC_OPS), Some(2.0 * 80.0 * 1e5));
        assert_eq!(
            t.root.counter(counters::DRAM_SECTORS),
            Some(2.0 * 80.0 * 64.0)
        );
    }

    #[test]
    fn log2_histogram_buckets() {
        let h = log2_histogram([0u64, 1, 1, 2, 3, 8, 9, 1024].into_iter());
        // zeros+ones land in bucket 0; 2..3 in bucket 1; 8..9 in 3; 1024 in 10.
        assert_eq!(h, vec![(0, 3), (1, 2), (3, 2), (10, 1)]);
    }

    #[test]
    fn log2_histogram_edge_cases_are_total() {
        // Empty input: an empty (not panicking) histogram.
        assert_eq!(log2_histogram(std::iter::empty()), vec![]);
        // Single sample: exactly one bucket with count 1.
        assert_eq!(log2_histogram([7u64].into_iter()), vec![(2, 1)]);
        assert_eq!(log2_histogram([0u64].into_iter()), vec![(0, 1)]);
        // u64::MAX has zero leading zeros and must land in bucket 63
        // without shifting out of range.
        assert_eq!(log2_histogram([u64::MAX].into_iter()), vec![(63, 1)]);
        assert_eq!(
            log2_histogram([0, 1, u64::MAX, u64::MAX].into_iter()),
            vec![(0, 2), (63, 2)]
        );
    }

    #[test]
    fn noop_sink_is_disabled() {
        assert!(!NoopSink.enabled());
        // And all events are accepted without effect.
        NoopSink.span_start("x");
        NoopSink.counter("c", 1.0);
        NoopSink.span_end("x");
    }
}
