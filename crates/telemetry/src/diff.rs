//! Trace comparison: walks two span trees in parallel and flags stages
//! whose simulated time regressed beyond a threshold — and, on matched
//! spans, gates the recorded work counters (PADD counts, batch-inversion
//! savings, …) and histograms (bucket occupancy) the same way. Counters
//! measure work performed, so an *increase* is a regression; a counter
//! that vanishes from the new trace is flagged too (lost instrumentation
//! must not read as a win), while a brand-new counter is informational —
//! except the *recovery* counters ([`STRICT_COUNTERS`]): retries and
//! verify rejects appearing in a trace whose baseline had none mean the
//! system started failing and recovering where it used to run clean, so
//! they gate as regressions even though the baseline never emitted them.
//! This is the logic behind `zkprof diff`; it lives here so it is
//! unit-testable without the CLI.

use crate::counters;
use crate::trace::{Trace, TraceNode};
use std::fmt::Write as _;

/// Counters gated strictly: a non-zero value appearing on the new side of
/// a matched span regresses even when the baseline never emitted the
/// counter (`base` is taken as 0, so any occurrence is infinite growth).
pub const STRICT_COUNTERS: &[&str] = &[counters::SERVICE_RETRIES, counters::VERIFY_REJECTS];

/// Time delta of one span present in both traces.
#[derive(Debug, Clone)]
pub struct StageDelta {
    /// Slash-joined span path (`"prove/msm/b_g2"`).
    pub path: String,
    /// Simulated ns in the baseline trace.
    pub base_ns: f64,
    /// Simulated ns in the candidate trace.
    pub new_ns: f64,
}

impl StageDelta {
    /// `new / base`; 1.0 when the baseline is zero-time.
    pub fn ratio(&self) -> f64 {
        if self.base_ns <= 0.0 {
            1.0
        } else {
            self.new_ns / self.base_ns
        }
    }

    /// Whether this span slowed down more than `threshold` (fractional:
    /// 0.05 = 5%).
    pub fn regressed(&self, threshold: f64) -> bool {
        self.ratio() > 1.0 + threshold
    }
}

/// Work-counter delta on one span present in both traces.
#[derive(Debug, Clone)]
pub struct CounterDelta {
    /// Slash-joined span path of the owning span.
    pub path: String,
    /// Counter name (`"msm.padd"`, `"serial [ms]"`, …).
    pub name: String,
    /// Baseline value.
    pub base: f64,
    /// Candidate value.
    pub new: f64,
}

impl CounterDelta {
    /// `new / base`; 1.0 when both are zero, `+inf` when work appeared
    /// on a previously zero counter.
    pub fn ratio(&self) -> f64 {
        if self.base == 0.0 {
            if self.new == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.new / self.base
        }
    }

    /// Counters count work, so *growing* beyond the threshold regresses.
    pub fn regressed(&self, threshold: f64) -> bool {
        self.ratio() > 1.0 + threshold
    }
}

/// Histogram comparison on one span present in both traces: the worst
/// per-bucket count growth across the union of bucket labels (a label
/// missing on one side counts as zero there).
#[derive(Debug, Clone)]
pub struct HistogramDelta {
    /// Slash-joined span path of the owning span.
    pub path: String,
    /// Histogram name (`"bucket_occupancy"`, …).
    pub name: String,
    /// Max over buckets of `new_count / base_count`.
    pub max_ratio: f64,
}

impl HistogramDelta {
    /// Whether any bucket's count grew beyond the threshold.
    pub fn regressed(&self, threshold: f64) -> bool {
        self.max_ratio > 1.0 + threshold
    }
}

/// Full comparison of two traces.
#[derive(Debug)]
pub struct TraceDiff {
    /// Per-span deltas, pre-order.
    pub deltas: Vec<StageDelta>,
    /// Span paths present in exactly one trace (path, in_baseline).
    pub unmatched: Vec<(String, bool)>,
    /// Per-counter deltas of matched spans.
    pub counter_deltas: Vec<CounterDelta>,
    /// Per-histogram deltas of matched spans.
    pub histogram_deltas: Vec<HistogramDelta>,
    /// Counters/histograms present on exactly one side of a matched
    /// span (`"path: name"`, in_baseline). `in_baseline == true` means
    /// instrumentation vanished — gated as a regression.
    pub counter_unmatched: Vec<(String, bool)>,
    /// The regression threshold the diff was taken at.
    pub threshold: f64,
}

impl TraceDiff {
    /// Spans that slowed down beyond the threshold.
    pub fn regressions(&self) -> Vec<&StageDelta> {
        self.deltas
            .iter()
            .filter(|d| d.regressed(self.threshold))
            .collect()
    }

    /// Counters whose work grew beyond the threshold.
    pub fn counter_regressions(&self) -> Vec<&CounterDelta> {
        self.counter_deltas
            .iter()
            .filter(|d| d.regressed(self.threshold))
            .collect()
    }

    /// Histograms with a bucket count growing beyond the threshold.
    pub fn histogram_regressions(&self) -> Vec<&HistogramDelta> {
        self.histogram_deltas
            .iter()
            .filter(|d| d.regressed(self.threshold))
            .collect()
    }

    /// True when any span or counter regressed, the trees have different
    /// shapes, or instrumentation vanished (neither must read as a win).
    pub fn is_regression(&self) -> bool {
        !self.regressions().is_empty()
            || !self.unmatched.is_empty()
            || !self.counter_regressions().is_empty()
            || !self.histogram_regressions().is_empty()
            || self.counter_unmatched.iter().any(|(_, in_base)| *in_base)
    }

    /// Human-readable table, one line per span.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<32} {:>12} {:>12} {:>8}  status",
            "span", "base(ms)", "new(ms)", "ratio"
        );
        for d in &self.deltas {
            let status = if d.regressed(self.threshold) {
                "REGRESSED"
            } else if d.ratio() < 1.0 - self.threshold {
                "improved"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "{:<32} {:>12.3} {:>12.3} {:>8.3}  {}",
                d.path,
                d.base_ns / 1e6,
                d.new_ns / 1e6,
                d.ratio(),
                status
            );
        }
        for (path, in_base) in &self.unmatched {
            let _ = writeln!(
                out,
                "{:<32} {:>47}",
                path,
                if *in_base {
                    "MISSING in new trace"
                } else {
                    "ONLY in new trace"
                }
            );
        }
        // Counters/histograms: print only the interesting ones (the
        // prover emits hundreds that stay flat).
        for d in &self.counter_deltas {
            if d.regressed(self.threshold) || d.ratio() < 1.0 - self.threshold {
                let status = if d.regressed(self.threshold) {
                    "REGRESSED"
                } else {
                    "improved"
                };
                let _ = writeln!(
                    out,
                    "{:<32} {:>12.0} {:>12.0} {:>8.3}  {} [counter {}]",
                    d.path,
                    d.base,
                    d.new,
                    d.ratio(),
                    status,
                    d.name
                );
            }
        }
        for d in &self.histogram_deltas {
            if d.regressed(self.threshold) {
                let _ = writeln!(
                    out,
                    "{:<32} {:>26} {:>8.3}  REGRESSED [histogram {}]",
                    d.path, "", d.max_ratio, d.name
                );
            }
        }
        for (what, in_base) in &self.counter_unmatched {
            let _ = writeln!(
                out,
                "{:<32} {:>47}",
                what,
                if *in_base {
                    "counter MISSING in new trace"
                } else {
                    "counter ONLY in new trace"
                }
            );
        }
        let regs = self.regressions().len();
        let _ = writeln!(
            out,
            "{} spans compared, {} regressed; {} counters compared, {} regressed (threshold {:.1}%)",
            self.deltas.len(),
            regs,
            self.counter_deltas.len() + self.histogram_deltas.len(),
            self.counter_regressions().len() + self.histogram_regressions().len(),
            self.threshold * 100.0
        );
        out
    }
}

/// Compares two traces with a fractional regression `threshold`
/// (0.05 = a span may be up to 5% slower before it counts).
pub fn diff_traces(base: &Trace, new: &Trace, threshold: f64) -> TraceDiff {
    let mut diff = TraceDiff {
        deltas: Vec::new(),
        unmatched: Vec::new(),
        counter_deltas: Vec::new(),
        histogram_deltas: Vec::new(),
        counter_unmatched: Vec::new(),
        threshold,
    };
    walk(&base.root, &new.root, "", &mut diff);
    diff
}

fn walk(base: &TraceNode, new: &TraceNode, prefix: &str, out: &mut TraceDiff) {
    for b_child in &base.children {
        let path = if prefix.is_empty() {
            b_child.name.clone()
        } else {
            format!("{prefix}/{}", b_child.name)
        };
        match new.child(&b_child.name) {
            Some(n_child) => {
                out.deltas.push(StageDelta {
                    path: path.clone(),
                    base_ns: b_child.time_ns,
                    new_ns: n_child.time_ns,
                });
                compare_metrics(b_child, n_child, &path, out);
                walk(b_child, n_child, &path, out);
            }
            None => out.unmatched.push((path, true)),
        }
    }
    for n_child in &new.children {
        if new
            .children
            .iter()
            .filter(|c| c.name == n_child.name)
            .count()
            > 1
        {
            continue; // duplicate names matched positionally above is out of scope
        }
        if base.child(&n_child.name).is_none() {
            let path = if prefix.is_empty() {
                n_child.name.clone()
            } else {
                format!("{prefix}/{}", n_child.name)
            };
            out.unmatched.push((path, false));
        }
    }
}

/// Compares the counters and histograms of one matched span pair.
fn compare_metrics(base: &TraceNode, new: &TraceNode, path: &str, out: &mut TraceDiff) {
    for (name, base_v) in &base.counters {
        match new.counter(name) {
            Some(new_v) => out.counter_deltas.push(CounterDelta {
                path: path.to_string(),
                name: name.clone(),
                base: *base_v,
                new: new_v,
            }),
            None => out
                .counter_unmatched
                .push((format!("{path}: {name}"), true)),
        }
    }
    for (name, new_v) in &new.counters {
        if new.counters.iter().filter(|(k, _)| k == name).count() > 1 {
            continue;
        }
        if base.counter(name).is_none() {
            if STRICT_COUNTERS.contains(&name.as_str()) && *new_v > 0.0 {
                // Recovery work appeared where the baseline had none:
                // treat the absent baseline as 0 so it gates.
                out.counter_deltas.push(CounterDelta {
                    path: path.to_string(),
                    name: name.clone(),
                    base: 0.0,
                    new: *new_v,
                });
            } else {
                out.counter_unmatched
                    .push((format!("{path}: {name}"), false));
            }
        }
    }
    for b_hist in &base.histograms {
        match new.histograms.iter().find(|h| h.name == b_hist.name) {
            Some(n_hist) => {
                let mut max_ratio: f64 = if b_hist.buckets.is_empty() && n_hist.buckets.is_empty() {
                    1.0
                } else {
                    0.0
                };
                let labels: std::collections::BTreeSet<u64> = b_hist
                    .buckets
                    .iter()
                    .chain(&n_hist.buckets)
                    .map(|(l, _)| *l)
                    .collect();
                for label in labels {
                    let get = |h: &crate::trace::Histogram| {
                        h.buckets
                            .iter()
                            .find(|(l, _)| *l == label)
                            .map_or(0, |(_, c)| *c)
                    };
                    let (b, n) = (get(b_hist), get(n_hist));
                    let r = if b == 0 {
                        if n == 0 {
                            1.0
                        } else {
                            f64::INFINITY
                        }
                    } else {
                        n as f64 / b as f64
                    };
                    max_ratio = max_ratio.max(r);
                }
                out.histogram_deltas.push(HistogramDelta {
                    path: path.to_string(),
                    name: b_hist.name.clone(),
                    max_ratio,
                });
            }
            None => out
                .counter_unmatched
                .push((format!("{path}: {}", b_hist.name), true)),
        }
    }
    for n_hist in &new.histograms {
        if !base.histograms.iter().any(|h| h.name == n_hist.name) {
            out.counter_unmatched
                .push((format!("{path}: {}", n_hist.name), false));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SCHEMA_VERSION;

    fn leaf(name: &str, ns: f64) -> TraceNode {
        TraceNode {
            time_ns: ns,
            ..TraceNode::new(name)
        }
    }

    fn trace_with(times: &[(&str, f64)]) -> Trace {
        let mut root = TraceNode::new("root");
        let mut prove = TraceNode::new("prove");
        for (name, ns) in times {
            prove.children.push(leaf(name, *ns));
        }
        prove.time_ns = times.iter().map(|(_, ns)| ns).sum();
        root.time_ns = prove.time_ns;
        root.children.push(prove);
        Trace {
            schema_version: SCHEMA_VERSION,
            tool: "gzkp".into(),
            device: "V100".into(),
            root,
        }
    }

    #[test]
    fn identical_traces_have_no_regressions() {
        let t = trace_with(&[("poly", 1e6), ("msm", 5e6)]);
        let d = diff_traces(&t, &t, 0.05);
        assert!(!d.is_regression());
        assert_eq!(d.deltas.len(), 3); // prove, poly, msm
        assert!(d.deltas.iter().all(|x| (x.ratio() - 1.0).abs() < 1e-12));
    }

    #[test]
    fn slowdown_beyond_threshold_regresses() {
        let base = trace_with(&[("poly", 1e6), ("msm", 5e6)]);
        let slow = trace_with(&[("poly", 1e6), ("msm", 5.6e6)]);
        let d = diff_traces(&base, &slow, 0.05);
        assert!(d.is_regression());
        let regs = d.regressions();
        // Both "prove" (aggregate) and "msm" regressed.
        assert!(regs.iter().any(|r| r.path == "prove/msm"));
        assert!(d.render().contains("REGRESSED"));
    }

    #[test]
    fn slowdown_within_threshold_passes() {
        let base = trace_with(&[("msm", 5e6)]);
        let slow = trace_with(&[("msm", 5.2e6)]);
        assert!(!diff_traces(&base, &slow, 0.05).is_regression());
        // The same delta fails a tighter threshold.
        assert!(diff_traces(&base, &slow, 0.01).is_regression());
    }

    #[test]
    fn shape_mismatch_is_flagged() {
        let base = trace_with(&[("poly", 1e6), ("msm", 5e6)]);
        let missing = trace_with(&[("poly", 1e6)]);
        let d = diff_traces(&base, &missing, 0.5);
        assert!(d.is_regression());
        assert!(d
            .unmatched
            .iter()
            .any(|(p, in_base)| p == "prove/msm" && *in_base));
        let d2 = diff_traces(&missing, &base, 0.5);
        assert!(d2
            .unmatched
            .iter()
            .any(|(p, in_base)| p == "prove/msm" && !in_base));
    }

    fn trace_with_counter(ns: f64, counters: &[(&str, f64)]) -> Trace {
        let mut t = trace_with(&[("msm", ns)]);
        t.root.children[0].children[0].counters =
            counters.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        t
    }

    #[test]
    fn counter_growth_beyond_threshold_regresses() {
        let base = trace_with_counter(5e6, &[("msm.padd", 1000.0)]);
        let grown = trace_with_counter(5e6, &[("msm.padd", 1300.0)]);
        let d = diff_traces(&base, &grown, 0.25);
        assert!(d.is_regression());
        assert_eq!(d.counter_regressions().len(), 1);
        assert!(d.render().contains("counter msm.padd"));
        // Within threshold passes; shrinking work is an improvement.
        assert!(!diff_traces(&base, &grown, 0.5).is_regression());
        assert!(!diff_traces(&grown, &base, 0.25).is_regression());
    }

    #[test]
    fn vanished_counter_regresses_new_counter_is_informational() {
        let base = trace_with_counter(5e6, &[("msm.padd", 1000.0)]);
        let bare = trace_with_counter(5e6, &[]);
        let d = diff_traces(&base, &bare, 0.25);
        assert!(d.is_regression(), "lost instrumentation must not pass");
        assert!(d.render().contains("counter MISSING"));
        let d2 = diff_traces(&bare, &base, 0.25);
        assert!(!d2.is_regression(), "a brand-new counter is fine");
        assert!(d2.render().contains("counter ONLY in new trace"));
    }

    #[test]
    fn recovery_counters_gate_even_when_new() {
        use crate::counters;
        let base = trace_with_counter(5e6, &[]);
        // Retries appearing where the baseline ran clean is a regression…
        let retried = trace_with_counter(5e6, &[(counters::SERVICE_RETRIES, 2.0)]);
        let d = diff_traces(&base, &retried, 0.25);
        assert!(d.is_regression(), "new retry.count must gate");
        assert!(d
            .counter_regressions()
            .iter()
            .any(|c| c.name == counters::SERVICE_RETRIES && c.ratio() == f64::INFINITY));
        // …and so are verify rejects.
        let rejected = trace_with_counter(5e6, &[(counters::VERIFY_REJECTS, 1.0)]);
        assert!(diff_traces(&base, &rejected, 0.25).is_regression());
        // A zero-valued strict counter stays informational.
        let clean = trace_with_counter(5e6, &[(counters::SERVICE_RETRIES, 0.0)]);
        assert!(!diff_traces(&base, &clean, 0.25).is_regression());
        // Matched on both sides, the normal growth threshold applies.
        let b2 = trace_with_counter(5e6, &[(counters::SERVICE_RETRIES, 4.0)]);
        let n2 = trace_with_counter(5e6, &[(counters::SERVICE_RETRIES, 4.0)]);
        assert!(!diff_traces(&b2, &n2, 0.25).is_regression());
    }

    #[test]
    fn histogram_bucket_growth_regresses() {
        use crate::trace::Histogram;
        let mut base = trace_with(&[("msm", 5e6)]);
        let mut grown = trace_with(&[("msm", 5e6)]);
        base.root.children[0].children[0].histograms = vec![Histogram {
            name: "bucket_occupancy".into(),
            buckets: vec![(1, 100), (2, 50)],
        }];
        grown.root.children[0].children[0].histograms = vec![Histogram {
            name: "bucket_occupancy".into(),
            buckets: vec![(1, 100), (2, 80)],
        }];
        let d = diff_traces(&base, &grown, 0.25);
        assert!(d.is_regression());
        assert_eq!(d.histogram_regressions().len(), 1);
        // Identical histograms pass.
        assert!(!diff_traces(&base, &base, 0.25).is_regression());
        // A count appearing in a previously empty bucket is flagged too.
        grown.root.children[0].children[0].histograms[0]
            .buckets
            .push((7, 1));
        let d3 = diff_traces(&base, &grown, 10.0);
        assert!(d3.is_regression());
    }

    #[test]
    fn improvement_is_not_a_regression() {
        let base = trace_with(&[("msm", 5e6)]);
        let fast = trace_with(&[("msm", 2e6)]);
        let d = diff_traces(&base, &fast, 0.05);
        assert!(!d.is_regression());
        assert!(d.render().contains("improved"));
    }
}
