//! Trace comparison: walks two span trees in parallel and flags stages
//! whose simulated time regressed beyond a threshold. This is the logic
//! behind `zkprof diff`; it lives here so it is unit-testable without the
//! CLI.

use crate::trace::{Trace, TraceNode};
use std::fmt::Write as _;

/// Time delta of one span present in both traces.
#[derive(Debug, Clone)]
pub struct StageDelta {
    /// Slash-joined span path (`"prove/msm/b_g2"`).
    pub path: String,
    /// Simulated ns in the baseline trace.
    pub base_ns: f64,
    /// Simulated ns in the candidate trace.
    pub new_ns: f64,
}

impl StageDelta {
    /// `new / base`; 1.0 when the baseline is zero-time.
    pub fn ratio(&self) -> f64 {
        if self.base_ns <= 0.0 {
            1.0
        } else {
            self.new_ns / self.base_ns
        }
    }

    /// Whether this span slowed down more than `threshold` (fractional:
    /// 0.05 = 5%).
    pub fn regressed(&self, threshold: f64) -> bool {
        self.ratio() > 1.0 + threshold
    }
}

/// Full comparison of two traces.
#[derive(Debug)]
pub struct TraceDiff {
    /// Per-span deltas, pre-order.
    pub deltas: Vec<StageDelta>,
    /// Span paths present in exactly one trace (path, in_baseline).
    pub unmatched: Vec<(String, bool)>,
    /// The regression threshold the diff was taken at.
    pub threshold: f64,
}

impl TraceDiff {
    /// Spans that slowed down beyond the threshold.
    pub fn regressions(&self) -> Vec<&StageDelta> {
        self.deltas
            .iter()
            .filter(|d| d.regressed(self.threshold))
            .collect()
    }

    /// True when any span regressed or the trees have different shapes
    /// (a vanished stage must not read as a win).
    pub fn is_regression(&self) -> bool {
        !self.regressions().is_empty() || !self.unmatched.is_empty()
    }

    /// Human-readable table, one line per span.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<32} {:>12} {:>12} {:>8}  status",
            "span", "base(ms)", "new(ms)", "ratio"
        );
        for d in &self.deltas {
            let status = if d.regressed(self.threshold) {
                "REGRESSED"
            } else if d.ratio() < 1.0 - self.threshold {
                "improved"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "{:<32} {:>12.3} {:>12.3} {:>8.3}  {}",
                d.path,
                d.base_ns / 1e6,
                d.new_ns / 1e6,
                d.ratio(),
                status
            );
        }
        for (path, in_base) in &self.unmatched {
            let _ = writeln!(
                out,
                "{:<32} {:>47}",
                path,
                if *in_base {
                    "MISSING in new trace"
                } else {
                    "ONLY in new trace"
                }
            );
        }
        let regs = self.regressions().len();
        let _ = writeln!(
            out,
            "{} spans compared, {} regressed (threshold {:.1}%)",
            self.deltas.len(),
            regs,
            self.threshold * 100.0
        );
        out
    }
}

/// Compares two traces with a fractional regression `threshold`
/// (0.05 = a span may be up to 5% slower before it counts).
pub fn diff_traces(base: &Trace, new: &Trace, threshold: f64) -> TraceDiff {
    let mut diff = TraceDiff {
        deltas: Vec::new(),
        unmatched: Vec::new(),
        threshold,
    };
    walk(&base.root, &new.root, "", &mut diff);
    diff
}

fn walk(base: &TraceNode, new: &TraceNode, prefix: &str, out: &mut TraceDiff) {
    for b_child in &base.children {
        let path = if prefix.is_empty() {
            b_child.name.clone()
        } else {
            format!("{prefix}/{}", b_child.name)
        };
        match new.child(&b_child.name) {
            Some(n_child) => {
                out.deltas.push(StageDelta {
                    path: path.clone(),
                    base_ns: b_child.time_ns,
                    new_ns: n_child.time_ns,
                });
                walk(b_child, n_child, &path, out);
            }
            None => out.unmatched.push((path, true)),
        }
    }
    for n_child in &new.children {
        if new
            .children
            .iter()
            .filter(|c| c.name == n_child.name)
            .count()
            > 1
        {
            continue; // duplicate names matched positionally above is out of scope
        }
        if base.child(&n_child.name).is_none() {
            let path = if prefix.is_empty() {
                n_child.name.clone()
            } else {
                format!("{prefix}/{}", n_child.name)
            };
            out.unmatched.push((path, false));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SCHEMA_VERSION;

    fn leaf(name: &str, ns: f64) -> TraceNode {
        TraceNode {
            time_ns: ns,
            ..TraceNode::new(name)
        }
    }

    fn trace_with(times: &[(&str, f64)]) -> Trace {
        let mut root = TraceNode::new("root");
        let mut prove = TraceNode::new("prove");
        for (name, ns) in times {
            prove.children.push(leaf(name, *ns));
        }
        prove.time_ns = times.iter().map(|(_, ns)| ns).sum();
        root.time_ns = prove.time_ns;
        root.children.push(prove);
        Trace {
            schema_version: SCHEMA_VERSION,
            tool: "gzkp".into(),
            device: "V100".into(),
            root,
        }
    }

    #[test]
    fn identical_traces_have_no_regressions() {
        let t = trace_with(&[("poly", 1e6), ("msm", 5e6)]);
        let d = diff_traces(&t, &t, 0.05);
        assert!(!d.is_regression());
        assert_eq!(d.deltas.len(), 3); // prove, poly, msm
        assert!(d.deltas.iter().all(|x| (x.ratio() - 1.0).abs() < 1e-12));
    }

    #[test]
    fn slowdown_beyond_threshold_regresses() {
        let base = trace_with(&[("poly", 1e6), ("msm", 5e6)]);
        let slow = trace_with(&[("poly", 1e6), ("msm", 5.6e6)]);
        let d = diff_traces(&base, &slow, 0.05);
        assert!(d.is_regression());
        let regs = d.regressions();
        // Both "prove" (aggregate) and "msm" regressed.
        assert!(regs.iter().any(|r| r.path == "prove/msm"));
        assert!(d.render().contains("REGRESSED"));
    }

    #[test]
    fn slowdown_within_threshold_passes() {
        let base = trace_with(&[("msm", 5e6)]);
        let slow = trace_with(&[("msm", 5.2e6)]);
        assert!(!diff_traces(&base, &slow, 0.05).is_regression());
        // The same delta fails a tighter threshold.
        assert!(diff_traces(&base, &slow, 0.01).is_regression());
    }

    #[test]
    fn shape_mismatch_is_flagged() {
        let base = trace_with(&[("poly", 1e6), ("msm", 5e6)]);
        let missing = trace_with(&[("poly", 1e6)]);
        let d = diff_traces(&base, &missing, 0.5);
        assert!(d.is_regression());
        assert!(d
            .unmatched
            .iter()
            .any(|(p, in_base)| p == "prove/msm" && *in_base));
        let d2 = diff_traces(&missing, &base, 0.5);
        assert!(d2
            .unmatched
            .iter()
            .any(|(p, in_base)| p == "prove/msm" && !in_base));
    }

    #[test]
    fn improvement_is_not_a_regression() {
        let base = trace_with(&[("msm", 5e6)]);
        let fast = trace_with(&[("msm", 2e6)]);
        let d = diff_traces(&base, &fast, 0.05);
        assert!(!d.is_regression());
        assert!(d.render().contains("improved"));
    }
}
