//! Folded-stack export: turns a [`Trace`] span tree into the
//! flamegraph-compatible "folded" text format (`frame;frame;frame count`
//! per line) consumed by `flamegraph.pl`, inferno, speedscope, and the
//! like.
//!
//! Each line carries one stack's *self* time — the span's time minus its
//! children's — in integer nanoseconds, so the flamegraph's widths sum
//! to the trace's total simulated time. Identical stacks (repeated
//! sibling spans, per-job service spans sharing names) are merged by
//! summing their counts, as the format requires. Zero-self-time interior
//! spans are omitted (their time lives in their children); every frame
//! still appears as a prefix of its descendants' stacks.

use crate::trace::{Trace, TraceNode};

/// Renders `trace` in folded-stack format, root spans first,
/// lexicographically sorted for deterministic output. Frame separators
/// (`;`) inside span names are rewritten to `:` so stacks stay
/// unambiguous.
pub fn folded_stacks(trace: &Trace) -> String {
    let mut stacks: Vec<(String, u64)> = Vec::new();
    let mut prefix = String::new();
    for child in &trace.root.children {
        walk(child, &mut prefix, &mut stacks);
    }
    stacks.sort();
    let mut out = String::new();
    for (stack, count) in stacks {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&count.to_string());
        out.push('\n');
    }
    out
}

fn frame_name(name: &str) -> String {
    name.replace(';', ":")
}

fn walk(node: &TraceNode, prefix: &mut String, stacks: &mut Vec<(String, u64)>) {
    let saved = prefix.len();
    if !prefix.is_empty() {
        prefix.push(';');
    }
    prefix.push_str(&frame_name(&node.name));
    let child_ns: f64 = node.children.iter().map(|c| c.time_ns).sum();
    // Negative self time can only come from float error; clamp to zero.
    let self_ns = (node.time_ns - child_ns).max(0.0).round() as u64;
    if self_ns > 0 {
        if let Some(entry) = stacks.iter_mut().find(|(s, _)| *s == *prefix) {
            entry.1 += self_ns;
        } else {
            stacks.push((prefix.clone(), self_ns));
        }
    }
    for child in &node.children {
        walk(child, prefix, stacks);
    }
    prefix.truncate(saved);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceNode;

    fn node(name: &str, time_ns: f64, children: Vec<TraceNode>) -> TraceNode {
        let mut n = TraceNode::new(name);
        n.time_ns = time_ns;
        n.children = children;
        n
    }

    fn sample() -> Trace {
        // prove(100) -> poly(60: self 10 + ntt 50), msm(30), self 10
        let root = node(
            "root",
            100.0,
            vec![node(
                "prove",
                100.0,
                vec![
                    node("poly", 60.0, vec![node("ntt[0]", 50.0, vec![])]),
                    node("msm", 30.0, vec![]),
                ],
            )],
        );
        Trace::new("gzkp", "V100", root)
    }

    #[test]
    fn folded_format_self_times_sum_to_total() {
        let text = folded_stacks(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "prove 10",
                "prove;msm 30",
                "prove;poly 10",
                "prove;poly;ntt[0] 50",
            ]
        );
        // Every line is `stack count` with non-empty `;`-separated frames.
        let mut total = 0u64;
        for line in &lines {
            let (stack, count) = line.rsplit_once(' ').expect("stack count");
            assert!(!stack.is_empty() && stack.split(';').all(|f| !f.is_empty()));
            total += count.parse::<u64>().expect("integer count");
        }
        assert_eq!(total, 100, "self times sum to the root total");
    }

    #[test]
    fn repeated_stacks_merge() {
        // Two sibling spans with the same name (per-job service spans).
        let root = node(
            "root",
            50.0,
            vec![node("service", 20.0, vec![]), node("service", 30.0, vec![])],
        );
        let text = folded_stacks(&Trace::new("gzkp", "svc", root));
        assert_eq!(text, "service 50\n");
    }

    #[test]
    fn separator_in_names_is_rewritten() {
        let root = node("root", 5.0, vec![node("a;b", 5.0, vec![])]);
        let text = folded_stacks(&Trace::new("gzkp", "d", root));
        assert_eq!(text, "a:b 5\n");
    }

    #[test]
    fn empty_and_zero_time_traces_render_empty() {
        let empty = Trace::new("gzkp", "d", TraceNode::new("root"));
        assert_eq!(folded_stacks(&empty), "");
        let zero = node("root", 0.0, vec![node("prove", 0.0, vec![])]);
        assert_eq!(folded_stacks(&Trace::new("gzkp", "d", zero)), "");
    }
}
