//! The single registry of telemetry name strings: span names, counter and
//! gauge names, histogram/metric names, and device-lane labels.
//!
//! Every emit site in the workspace references these constants instead of
//! repeating string literals, so a typo'd name is a compile error rather
//! than a silently-empty `zkprof diff` column or a metrics series nobody
//! scrapes. `zkprof`, the SLO tracker, and the dashboards consume the
//! same constants, which is what keeps producer and consumer agreeing on
//! the wire names.
//!
//! Naming convention: dot-separated lowercase (`service.queue_wait_ns`);
//! the Prometheus exposition rewrites dots to underscores and prefixes
//! `gzkp_`. Duration-valued series end in `_ns` (simulated or wall-clock
//! nanoseconds; the doc comment says which).

// -- span names (trace tree) ------------------------------------------------

/// Root span of one proof, any backend (per-backend series carry the
/// `system=` label instead of renaming the span).
pub const SPAN_PROVE: &str = "prove";
/// Polynomial stage (NTTs + coefficient work) of a proof.
pub const SPAN_POLY: &str = "poly";
/// Multi-scalar-multiplication stage of a proof.
pub const SPAN_MSM: &str = "msm";
/// Per-job service envelope span (`service → queue_wait/execute`).
pub const SPAN_SERVICE: &str = "service";
/// Wall-clock span a job spent queued before first schedule.
pub const SPAN_QUEUE_WAIT: &str = "queue_wait";
/// Span covering a job's on-worker execution.
pub const SPAN_EXECUTE: &str = "execute";
/// Span recorded for each fault-recovery re-execution.
pub const SPAN_RETRY: &str = "retry";
/// Root span of a fleet trace (`runtime → dev{n} → lanes`).
pub const SPAN_RUNTIME: &str = "runtime";
/// Device-health event lane in a fleet trace (fault/quarantine markers).
pub const SPAN_HEALTH: &str = "health";

// -- per-backend stage names ------------------------------------------------
//
// The MSM stage's child spans are backend-specific: `zkprof render/diff`
// and `zkserve top` look stage names up through `msm_stage_spans` keyed by
// the `system=` label, so a PLONK trace is never mislabeled with Groth16
// query names (and vice versa).

/// `system=` label value for Groth16 series.
pub const SYSTEM_GROTH16: &str = "groth16";
/// `system=` label value for PLONK series.
pub const SYSTEM_PLONK: &str = "plonk";
/// Label key of per-proof-system series.
pub const LABEL_SYSTEM: &str = "system";

/// Child spans of the Groth16 `msm` span, in execution order: the five
/// query MSMs.
pub const GROTH16_MSM_STAGES: [&str; 5] = ["a", "b_g1", "h", "l", "b_g2"];
/// Child spans of the PLONK `msm` span, in execution order: the KZG
/// commitments of the three wire polynomials, the permutation
/// accumulator, the three quotient chunks, and the two opening proofs.
pub const PLONK_MSM_STAGES: [&str; 9] = [
    "wires_a", "wires_b", "wires_c", "perm_z", "t_lo", "t_mid", "t_hi", "open_z", "open_zw",
];

/// MSM-stage child span names for a `system=` label value, defaulting to
/// Groth16 for unlabeled (pre-multi-backend) traces.
pub fn msm_stage_spans(system: &str) -> &'static [&'static str] {
    if system == SYSTEM_PLONK {
        &PLONK_MSM_STAGES
    } else {
        &GROTH16_MSM_STAGES
    }
}

// -- device-lane names ------------------------------------------------------
//
// These mirror `gzkp_gpu_sim::EngineKind::label()`; a telemetry unit test
// asserts they stay equal (gpu-sim sits below this crate and cannot
// reference it).

/// Host→device copy-engine lane.
pub const LANE_H2D: &str = "h2d";
/// Compute-engine lane.
pub const LANE_KERNEL: &str = "kernel";
/// Device→host copy-engine lane.
pub const LANE_D2H: &str = "d2h";
/// Device→device copy-engine lane (NVLink P2P or host-staged merges).
pub const LANE_P2P: &str = "p2p";

// -- engine counters --------------------------------------------------------

/// 64-bit multiply-accumulate equivalents (the simulator's compute
/// unit; field multiplications dominate it).
pub const MAC_OPS: &str = "mac_ops";
/// DRAM sectors moved.
pub const DRAM_SECTORS: &str = "dram_sectors";
/// Field multiplications performed by NTT butterflies.
pub const NTT_FIELD_MULS: &str = "ntt.field_muls";
/// Point additions in the MSM (mixed + full).
pub const MSM_PADD: &str = "msm.padd";
/// Point doublings in the MSM (on-the-fly checkpoint weights).
pub const MSM_PDBL: &str = "msm.pdbl";
/// Peak simulated device memory, bytes (a gauge, kept as max).
pub const PEAK_DEVICE_BYTES: &str = "device.peak_bytes";
/// Non-empty buckets in the MSM's consolidated bucket space.
pub const MSM_OCCUPIED_BUCKETS: &str = "msm.occupied_buckets";
/// Field inversions performed by the batch-affine accumulator (one
/// per Montgomery-batched reduction round).
pub const MSM_BATCH_INVERSIONS: &str = "msm.batch_inversions";
/// Field inversions amortized away by Montgomery batching: affine
/// PADDs that shared a batched inversion instead of paying their own.
pub const MSM_BATCH_INV_SAVED: &str = "msm.batch_inv_saved";

// -- proving-service counters -----------------------------------------------

/// Jobs the proving service accepted into its queue.
pub const SERVICE_ACCEPTED: &str = "service.accepted";
/// Jobs the proving service rejected at submit (queue full).
pub const SERVICE_REJECTED: &str = "service.rejected";
/// Jobs that ran to completion through the proving service.
pub const SERVICE_COMPLETED: &str = "service.completed";
/// Jobs completed per proof system (counter, labeled
/// `system=groth16|plonk`).
pub const SERVICE_COMPLETED_BY_SYSTEM: &str = "service.completed_by_system";
/// Jobs dropped because their deadline expired before/between stages.
pub const SERVICE_DEADLINE_MISSED: &str = "service.deadline_missed";
/// Jobs cancelled cooperatively via their handle.
pub const SERVICE_CANCELLED: &str = "service.cancelled";
/// Jobs that exhausted their retry budget and surfaced an error.
pub const SERVICE_FAILED: &str = "service.failed";
/// Jobs abandoned because the service shut down before running them.
pub const SERVICE_DRAINED: &str = "service.drained";
/// Stages re-placed on the host CPU after every device quarantined.
pub const SERVICE_CPU_FALLBACKS: &str = "service.cpu_fallbacks";
/// Wall-clock nanoseconds a job waited in the service queue.
pub const SERVICE_QUEUE_WAIT_NS: &str = "service.queue_wait_ns";
/// Wall-clock nanoseconds from job accept to terminal outcome
/// (latency histogram).
pub const SERVICE_JOB_LATENCY_NS: &str = "service.job_latency_ns";
/// Jobs currently queued or executing (live gauge).
pub const SERVICE_QUEUE_DEPTH: &str = "service.queue_depth";
/// Wall-clock nanoseconds one pipeline stage spent executing (histogram,
/// labeled `stage=poly|msm`).
pub const STAGE_LATENCY_NS: &str = "stage.latency_ns";

// -- fleet-runtime counters -------------------------------------------------

/// Simulated bytes uploaded host→device by the fleet runtime.
pub const RUNTIME_H2D_BYTES: &str = "runtime.h2d_bytes";
/// Simulated bytes downloaded device→host by the fleet runtime.
pub const RUNTIME_D2H_BYTES: &str = "runtime.d2h_bytes";
/// Bucket-range shards the memory planner split MSMs into.
pub const RUNTIME_SHARDS: &str = "runtime.shards";
/// Jobs a fleet worker stole from another device's queue.
pub const RUNTIME_STEALS: &str = "runtime.steals";
/// Simulated bytes moved device→device by the fleet runtime.
pub const RUNTIME_P2P_BYTES: &str = "runtime.p2p_bytes";
/// Device→device transfers the fleet runtime routed (NVLink P2P or
/// host-staged).
pub const RUNTIME_P2P_TRANSFERS: &str = "runtime.p2p_transfers";
/// Stages a device executed (per-device counter, labeled `device=devN`).
pub const DEVICE_STAGES: &str = "device.stages";
/// Simulated nanoseconds a device's compute engine was busy (gauge,
/// labeled `device=devN`).
pub const DEVICE_BUSY_NS: &str = "device.busy_ns";
/// Simulated nanoseconds elapsed on a device's timeline (gauge, labeled
/// `device=devN`; `busy/elapsed` is the utilization the SLO tracker
/// reports).
pub const DEVICE_ELAPSED_NS: &str = "device.elapsed_ns";
/// Simulated nanoseconds a device has spent quarantined (gauge, labeled
/// `device=devN`).
pub const DEVICE_QUARANTINE_NS: &str = "device.quarantine_ns";

// -- fault / recovery counters ----------------------------------------------

/// Faults the chaos injector fired into this job/run.
pub const FAULT_INJECTED: &str = "fault.injected";
/// Stage re-executions the service performed recovering from faults.
pub const SERVICE_RETRIES: &str = "retry.count";
/// Times a device entered quarantine (circuit breaker tripped).
pub const QUARANTINE_EVENTS: &str = "quarantine.events";
/// Proofs the verify-before-return guard rejected as corrupted.
pub const VERIFY_REJECTS: &str = "verify.rejects";
/// Proof executions cast as votes by the error-correcting re-execution
/// path (each verified run after a reject counts one vote).
pub const VERIFY_VOTES: &str = "verify.votes";

// -- cluster counters / gauges ----------------------------------------------

/// Jobs the cluster front door admitted past fair-share + rate limiting.
pub const CLUSTER_ADMITTED: &str = "cluster.admitted";
/// Jobs rejected by a tenant's token-bucket rate limit.
pub const CLUSTER_REJECTED_RATE: &str = "cluster.rejected.rate_limited";
/// Jobs rejected because the cluster-wide pending queue was saturated.
pub const CLUSTER_REJECTED_SATURATED: &str = "cluster.rejected.saturated";
/// Jobs the cluster completed with a proof.
pub const CLUSTER_COMPLETED: &str = "cluster.completed";
/// Jobs the cluster gave up on (factory errors, resume cap exhausted).
pub const CLUSTER_FAILED: &str = "cluster.failed";
/// Checkpointed resumes: jobs restarted on a surviving host after their
/// host died mid-proof.
pub const CLUSTER_RESUMES: &str = "cluster.resumes";
/// Simulated host-kill faults the cluster chaos plan fired.
pub const CLUSTER_HOST_KILLS: &str = "cluster.host_kills";
/// Jobs waiting in the front door's fair-share queue (gauge).
pub const CLUSTER_QUEUE_DEPTH: &str = "cluster.queue_depth";
/// Hosts currently accepting work (gauge).
pub const CLUSTER_HOSTS_UP: &str = "cluster.hosts_up";
/// End-to-end cluster job latency, admission to proof (histogram, ns).
pub const CLUSTER_JOB_LATENCY_NS: &str = "cluster.job_latency_ns";
/// Jobs a host completed (per-host counter, labeled `host=hN`).
pub const HOST_COMPLETED: &str = "host.completed";
/// Jobs in flight on a host (per-host gauge, labeled `host=hN`).
pub const HOST_INFLIGHT: &str = "host.inflight";
/// Host lifecycle state as a number (per-host gauge, labeled `host=hN`):
/// 0 warming, 1 up, 2 draining, 3 dead.
pub const HOST_STATE: &str = "host.state";
/// Label key of per-host series.
pub const LABEL_HOST: &str = "host";

// -- trace-structure gauges -------------------------------------------------

/// Gauge on device-lane spans: simulated start offset of the span's
/// operation within its fleet timeline (what the timeline renderer
/// aligns lanes by).
pub const SPAN_START_NS: &str = "start_ns";

#[cfg(test)]
mod tests {
    use gzkp_gpu_sim::EngineKind;

    /// gpu-sim cannot depend on this crate, so its lane labels are pinned
    /// here instead: `EngineKind::label()` and the `LANE_*` constants are
    /// the same wire names.
    #[test]
    fn lane_names_match_engine_labels() {
        assert_eq!(EngineKind::H2d.label(), super::LANE_H2D);
        assert_eq!(EngineKind::Compute.label(), super::LANE_KERNEL);
        assert_eq!(EngineKind::D2h.label(), super::LANE_D2H);
        assert_eq!(EngineKind::P2p.label(), super::LANE_P2P);
    }
}
