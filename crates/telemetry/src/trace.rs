//! The versioned machine-readable trace: the span tree a
//! [`crate::TraceRecorder`] produces, its JSON form (`gzkp-trace.json`),
//! and the text rendering `zkprof render` prints.

use gzkp_gpu_sim::kernel::{KernelReport, StageReport};
use gzkp_gpu_sim::report::{render_stage, utilization};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Version of the on-disk trace schema. Bump when [`Trace`]/[`TraceNode`]
/// change shape; [`Trace::from_json`] rejects mismatches so stale traces
/// fail loudly instead of mis-parsing.
pub const SCHEMA_VERSION: u32 = 1;

/// A named histogram attached to a span (e.g. MSM bucket occupancy:
/// label = log2 bucket-size class, count = buckets in that class).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Histogram name.
    pub name: String,
    /// `(bucket_label, count)` pairs, sparse.
    pub buckets: Vec<(u64, u64)>,
}

/// One span in the trace tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceNode {
    /// Span name (`"prove"`, `"poly"`, `"ntt[3]"`, `"b_g2"`, …).
    pub name: String,
    /// Simulated nanoseconds covered by this span (own kernels plus all
    /// children; filled by [`crate::TraceRecorder::finish`]).
    pub time_ns: f64,
    /// Kernel executions recorded directly on this span.
    pub kernels: Vec<KernelReport>,
    /// Additive counters (`mac_ops`, `msm.padd`, …).
    pub counters: Vec<(String, f64)>,
    /// Max-kept gauges (`device.peak_bytes`, …).
    pub values: Vec<(String, f64)>,
    /// Histograms attached to this span.
    pub histograms: Vec<Histogram>,
    /// Nested spans, in open order.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Fresh empty span.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            time_ns: 0.0,
            kernels: Vec::new(),
            counters: Vec::new(),
            values: Vec::new(),
            histograms: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Looks up an additive counter by name.
    pub fn counter(&self, name: &str) -> Option<f64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.values.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// First child with the given name.
    pub fn child(&self, name: &str) -> Option<&TraceNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Sums a counter over this span and all descendants.
    pub fn counter_deep(&self, name: &str) -> f64 {
        self.counter(name).unwrap_or(0.0)
            + self
                .children
                .iter()
                .map(|c| c.counter_deep(name))
                .sum::<f64>()
    }

    /// This span's kernels as a [`StageReport`] (for the text tables).
    pub fn as_stage(&self) -> StageReport {
        StageReport {
            name: self.name.clone(),
            kernels: self.kernels.clone(),
        }
    }
}

/// Errors loading a trace from JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The JSON did not parse or did not match the trace shape.
    Parse(String),
    /// The trace was written by a different schema version.
    SchemaVersion {
        /// Version found in the file.
        found: u64,
        /// Version this build expects.
        expected: u32,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Parse(e) => write!(f, "trace parse error: {e}"),
            TraceError::SchemaVersion { found, expected } => write!(
                f,
                "trace schema version {found} is not supported (expected {expected}); \
                 re-generate the trace with this build"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// A complete prover trace: the versioned envelope around the span tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// On-disk schema version; see [`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Producing tool (`"gzkp"`).
    pub tool: String,
    /// Device label the run simulated (e.g. `"V100"`).
    pub device: String,
    /// The span tree. The root itself is synthetic; real spans start at
    /// its children.
    pub root: TraceNode,
}

impl Trace {
    /// Wraps a finished span tree in the current-schema envelope.
    pub fn new(tool: impl Into<String>, device: impl Into<String>, root: TraceNode) -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            tool: tool.into(),
            device: device.into(),
            root,
        }
    }

    /// Walks the span tree by child names from the root.
    pub fn find(&self, path: &[&str]) -> Option<&TraceNode> {
        let mut node = &self.root;
        for name in path {
            node = node.child(name)?;
        }
        Some(node)
    }

    /// Pretty JSON for `gzkp-trace.json`.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serialization is infallible")
    }

    /// Parses and version-checks a trace.
    ///
    /// # Errors
    ///
    /// [`TraceError::SchemaVersion`] when the file was written by another
    /// schema version; [`TraceError::Parse`] for malformed input. The
    /// version is checked *before* full decoding so a future schema fails
    /// with the right message rather than a field error.
    pub fn from_json(text: &str) -> Result<Self, TraceError> {
        let value = serde_json::parse_value(text).map_err(|e| TraceError::Parse(e.to_string()))?;
        let found = value
            .get("schema_version")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| TraceError::Parse("missing schema_version".into()))?;
        if found != SCHEMA_VERSION as u64 {
            return Err(TraceError::SchemaVersion {
                found,
                expected: SCHEMA_VERSION,
            });
        }
        serde::from_value(value).map_err(|e| TraceError::Parse(e.0))
    }

    /// Writes `self` as pretty JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads and parses a trace file.
    ///
    /// # Errors
    ///
    /// I/O errors are reported as [`TraceError::Parse`].
    pub fn read_from(path: impl AsRef<std::path::Path>) -> Result<Self, TraceError> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| TraceError::Parse(format!("{}: {e}", path.as_ref().display())))?;
        Self::from_json(&text)
    }
}

/// Renders a trace as indented span lines plus, for spans that executed
/// kernels, the existing per-kernel text tables of
/// [`gzkp_gpu_sim::report::render_stage`].
pub fn render_trace(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: tool={} device={} schema=v{}",
        trace.tool, trace.device, trace.schema_version
    );
    for (child, label) in trace
        .root
        .children
        .iter()
        .zip(sibling_labels(&trace.root.children))
    {
        render_node(&mut out, child, &label, 0);
    }
    out
}

/// Renders the per-device stream lanes of a fleet trace (`runtime →
/// dev{n} → {h2d,kernel,d2h}`) as ASCII timeline rows on one shared time
/// axis: every lane is a fixed-width row whose filled cells mark when its
/// ops ran in simulated time, so upload/compute/download overlap — and
/// gaps — line up visually across devices. Lane glyphs: `=` for H2D
/// copies, `#` for kernels, `-` for D2H copies, `^` for device↔device
/// P2P copies (NVLink or host-staged partial-sum merges) on the `p2p`
/// lane, and `!` for health events (faults, quarantines, recoveries) on
/// the `health` marker lane the fleet emits when a device degraded
/// during the run.
///
/// Returns `None` when the trace has no `runtime` node with device lanes
/// (i.e. it is not a fleet trace).
pub fn render_timeline(trace: &Trace) -> Option<String> {
    const COLS: usize = 64;
    let runtime = trace.root.child(crate::names::SPAN_RUNTIME)?;
    let devices: Vec<&TraceNode> = runtime
        .children
        .iter()
        .filter(|c| c.name.starts_with("dev"))
        .collect();
    let op_window = |op: &TraceNode| {
        let start = op.value(crate::counters::SPAN_START_NS).unwrap_or(0.0);
        (start, start + op.time_ns)
    };
    let end = devices
        .iter()
        .flat_map(|d| &d.children)
        .flat_map(|lane| &lane.children)
        .map(|op| op_window(op).1)
        .fold(0.0f64, f64::max);
    if devices.is_empty() || end <= 0.0 {
        return None;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "timeline: device={} 0 .. {:.3} ms  (1 col = {:.3} ms)",
        trace.device,
        end / 1e6,
        end / 1e6 / COLS as f64
    );
    for dev in devices {
        for (li, lane) in dev.children.iter().enumerate() {
            let glyph = match lane.name.as_str() {
                crate::names::LANE_H2D => '=',
                crate::names::LANE_D2H => '-',
                crate::names::LANE_P2P => '^',
                crate::names::SPAN_HEALTH => '!',
                _ => '#',
            };
            let mut row = [' '; COLS];
            for op in &lane.children {
                let (start, stop) = op_window(op);
                let lo = ((start / end) * COLS as f64).floor() as usize;
                let hi = ((stop / end) * COLS as f64).ceil() as usize;
                let lo = lo.min(COLS - 1);
                let hi = hi.clamp(lo + 1, COLS);
                for cell in &mut row[lo..hi] {
                    *cell = glyph;
                }
            }
            let label = if li == 0 { dev.name.as_str() } else { "" };
            let _ = writeln!(
                out,
                "{label:>6} {:>6} |{}| {:>3} op(s) {:>10.3} ms busy",
                lane.name,
                row.iter().collect::<String>(),
                lane.children.len(),
                lane.time_ns / 1e6
            );
        }
    }
    Some(out)
}

/// Display labels for one sibling list, in recorded order. A name that
/// repeats among siblings (five concurrent MSM spans, per-job spans in a
/// service trace) gets a stable 1-based `#k` occurrence ordinal, so the
/// rendering identifies each span by position rather than relying on
/// emit order alone; unique names render unchanged.
fn sibling_labels(children: &[TraceNode]) -> Vec<String> {
    let mut counts: Vec<(&str, usize)> = Vec::new();
    for c in children {
        if let Some(e) = counts.iter_mut().find(|(n, _)| *n == c.name) {
            e.1 += 1;
        } else {
            counts.push((&c.name, 1));
        }
    }
    let mut seen: Vec<(&str, usize)> = Vec::new();
    children
        .iter()
        .map(|c| {
            let total = counts
                .iter()
                .find(|(n, _)| *n == c.name)
                .expect("counted")
                .1;
            if total == 1 {
                return c.name.clone();
            }
            let occ = if let Some(e) = seen.iter_mut().find(|(n, _)| *n == c.name) {
                e.1 += 1;
                e.1
            } else {
                seen.push((&c.name, 1));
                1
            };
            format!("{} #{occ}", c.name)
        })
        .collect()
}

fn render_node(out: &mut String, node: &TraceNode, label: &str, depth: usize) {
    let indent = "  ".repeat(depth);
    let _ = writeln!(out, "{indent}{label:<24} {:>12.3} ms", node.time_ns / 1e6);
    for (name, v) in &node.counters {
        let _ = writeln!(out, "{indent}  · {name} = {v:.0}");
    }
    for (name, v) in &node.values {
        let _ = writeln!(out, "{indent}  · {name} = {v:.0} (peak)");
    }
    for h in &node.histograms {
        let total: u64 = h.buckets.iter().map(|(_, c)| c).sum();
        let _ = writeln!(out, "{indent}  · histogram {} ({total} items):", h.name);
        for (bucket, count) in &h.buckets {
            let _ = writeln!(out, "{indent}      2^{bucket:<2} {count:>8}");
        }
    }
    if !node.kernels.is_empty() {
        let stage = node.as_stage();
        let u = utilization(&stage);
        for line in render_stage(&stage).lines() {
            let _ = writeln!(out, "{indent}  {line}");
        }
        let _ = writeln!(
            out,
            "{indent}  bound: compute {:.0}%  dram {:.0}%  shared {:.0}%  overhead {:.0}%",
            u.compute * 100.0,
            u.dram * 100.0,
            u.shared * 100.0,
            u.overhead * 100.0
        );
    }
    for (child, label) in node.children.iter().zip(sibling_labels(&node.children)) {
        render_node(out, child, &label, depth + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{counters, emit_stage, span, TelemetrySink, TraceRecorder};
    use gzkp_gpu_sim::device::{v100, Backend};
    use gzkp_gpu_sim::kernel::{BlockCost, KernelSpec};

    fn sample_trace() -> Trace {
        let rec = TraceRecorder::new("V100");
        let dev = v100();
        let _p = span(&rec, "prove");
        {
            let _poly = span(&rec, "poly");
            let mut stage = StageReport::new("POLY");
            stage.run(
                &dev,
                &KernelSpec::uniform(
                    "butterfly.0",
                    256,
                    0,
                    Backend::FpLib,
                    4,
                    160,
                    BlockCost {
                        mac_ops: 5e4,
                        dram_sectors: 128,
                        shared_bytes: 1024,
                    },
                ),
            );
            emit_stage(&rec, &stage);
            rec.counter(counters::NTT_FIELD_MULS, 1e6);
        }
        {
            let _msm = span(&rec, "msm");
            rec.histogram("bucket_occupancy", &[(0, 7), (4, 2)]);
            rec.value(counters::PEAK_DEVICE_BYTES, 2.5e9);
        }
        drop(_p);
        rec.finish()
    }

    #[test]
    fn json_roundtrip_preserves_trace() {
        let t = sample_trace();
        let json = t.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.device, t.device);
        let (a, b) = (
            t.find(&["prove", "poly"]).unwrap(),
            back.find(&["prove", "poly"]).unwrap(),
        );
        assert_eq!(a.kernels.len(), b.kernels.len());
        assert_eq!(a.kernels[0].name, b.kernels[0].name);
        assert_eq!(a.kernels[0].time_ns, b.kernels[0].time_ns);
        assert_eq!(a.kernels[0].dram_sectors, b.kernels[0].dram_sectors);
        assert_eq!(a.counters, b.counters);
        let (ma, mb) = (
            t.find(&["prove", "msm"]).unwrap(),
            back.find(&["prove", "msm"]).unwrap(),
        );
        assert_eq!(ma.histograms, mb.histograms);
        assert_eq!(ma.values, mb.values);
        assert_eq!(ma.time_ns, mb.time_ns);
    }

    #[test]
    fn schema_version_mismatch_is_rejected() {
        let t = sample_trace();
        let json = t.to_json();
        let future = json.replacen(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            "\"schema_version\": 999",
            1,
        );
        assert_ne!(json, future, "version field must be present in the JSON");
        match Trace::from_json(&future) {
            Err(TraceError::SchemaVersion {
                found: 999,
                expected,
            }) => {
                assert_eq!(expected, SCHEMA_VERSION);
            }
            other => panic!("expected schema-version error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        assert!(matches!(Trace::from_json("{"), Err(TraceError::Parse(_))));
        assert!(matches!(
            Trace::from_json("{\"no_version\": true}"),
            Err(TraceError::Parse(_))
        ));
    }

    #[test]
    fn render_shows_spans_and_tables() {
        let t = sample_trace();
        let text = render_trace(&t);
        assert!(text.contains("prove"));
        assert!(text.contains("poly"));
        assert!(text.contains("butterfly.0"));
        assert!(text.contains("bucket_occupancy"));
        assert!(text.contains("ntt.field_muls"));
        assert!(text.contains("bound:"));
    }

    #[test]
    fn render_repeated_sibling_spans_in_recorded_order() {
        // Five same-named sibling spans (the concurrent-MSM shape) each
        // carrying a distinguishing counter and a child span: the render
        // must keep recorded order, number the repeats, and indent every
        // child exactly one level under its own parent.
        let rec = TraceRecorder::new("V100");
        {
            let _m = span(&rec, "msm");
            for i in 0..5 {
                let _j = span(&rec, "part");
                rec.counter("ordinal", i as f64);
                let _inner = span(&rec, "kernels");
                rec.counter("inner", 10.0 + i as f64);
            }
        }
        let text = render_trace(&rec.finish());
        let lines: Vec<&str> = text.lines().collect();
        // Recorded order: part #1 .. part #5, each followed by its own
        // counter and its child before the next sibling starts.
        let starts: Vec<usize> = (1..=5)
            .map(|k| {
                lines
                    .iter()
                    .position(|l| l.trim_start().starts_with(&format!("part #{k}")))
                    .unwrap_or_else(|| panic!("part #{k} missing in:\n{text}"))
            })
            .collect();
        assert!(starts.windows(2).all(|w| w[0] < w[1]), "order: {starts:?}");
        for (k, &s) in starts.iter().enumerate() {
            let end = *starts.get(k + 1).unwrap_or(&lines.len());
            let block = &lines[s..end];
            assert!(
                block.iter().any(|l| l.contains(&format!("ordinal = {k}"))),
                "part #{} lost its counter:\n{text}",
                k + 1
            );
            // Child indentation is stable: "part" sits at depth 1
            // (2 spaces), its "kernels" child at depth 2 (4 spaces).
            let child = block
                .iter()
                .find(|l| l.trim_start().starts_with("kernels"))
                .unwrap_or_else(|| panic!("part #{} lost its child:\n{text}", k + 1));
            assert!(
                lines[s].starts_with("  part"),
                "parent indent: {:?}",
                lines[s]
            );
            assert!(child.starts_with("    kernels"), "child indent: {child:?}");
        }
        // Unique names stay unadorned.
        assert!(text.contains("msm "));
        assert!(!text.contains("msm #"));
    }

    #[test]
    fn span_time_feeds_span_without_kernels() {
        let rec = TraceRecorder::new("svc");
        {
            let _s = span(&rec, "service");
            {
                let _w = span(&rec, "queue_wait");
                rec.span_time(2.5e6);
            }
        }
        let t = rec.finish();
        let wait = t.find(&["service", "queue_wait"]).unwrap();
        assert_eq!(wait.time_ns, 2.5e6);
        // The parent aggregates the directly-recorded child time.
        assert_eq!(t.find(&["service"]).unwrap().time_ns, 2.5e6);
    }

    #[test]
    fn file_roundtrip() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join("gzkp-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        t.write_to(&path).unwrap();
        let back = Trace::read_from(&path).unwrap();
        assert_eq!(back.root.children.len(), t.root.children.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn timeline_renders_device_lanes_on_shared_axis() {
        // Hand-build a fleet-shaped trace: two devices, ops placed via the
        // start_ns gauge so the rows expose (or refute) overlap visually.
        let op = |name: &str, start: f64, dur: f64| {
            let mut n = TraceNode::new(name);
            n.time_ns = dur;
            n.values
                .push((crate::counters::SPAN_START_NS.to_string(), start));
            n
        };
        let lane = |name: &str, ops: Vec<TraceNode>| {
            let mut n = TraceNode::new(name);
            n.time_ns = ops.iter().map(|o| o.time_ns).sum();
            n.children = ops;
            n
        };
        let mut dev0 = TraceNode::new("dev0");
        dev0.children = vec![
            lane("h2d", vec![op("a.h2d", 0.0, 1e6), op("b.h2d", 2e6, 1e6)]),
            lane("kernel", vec![op("a.kernel", 1e6, 2e6)]),
            lane("d2h", vec![op("a.d2h", 3e6, 1e6)]),
        ];
        let mut dev1 = TraceNode::new("dev1");
        dev1.children = vec![
            lane("h2d", Vec::new()),
            lane("kernel", vec![op("c.kernel", 0.0, 4e6)]),
            lane("d2h", Vec::new()),
        ];
        let mut runtime = TraceNode::new("runtime");
        runtime.time_ns = 4e6;
        runtime.children = vec![dev0, dev1];
        let mut root = TraceNode::new("root");
        root.children = vec![runtime];
        let trace = Trace::new("gzkp", "2xV100", root);

        let text = render_timeline(&trace).expect("fleet trace renders");
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("timeline: device=2xV100 0 .. 4.000 ms"));
        // 6 lane rows after the header, all with axis bars in one column.
        assert_eq!(lines.len(), 7);
        let bars: Vec<usize> = lines[1..].iter().map(|l| l.find('|').unwrap()).collect();
        assert!(
            bars.iter().all(|b| *b == bars[0]),
            "lanes misaligned: {text}"
        );
        // dev0 h2d fills the first quarter, is empty in the second, and
        // dev1's kernel spans the full axis.
        assert!(lines[1].contains("h2d"));
        assert!(lines[1].contains('='));
        assert!(lines[5].contains("kernel") && lines[5].matches('#').count() == 64);

        // A non-fleet trace has no timeline.
        assert!(render_timeline(&sample_trace()).is_none());
    }
}
