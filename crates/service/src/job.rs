//! Job-side types: the type-erased [`ProofTask`] the queue schedules, the
//! standard Groth16 implementation, and the [`JobHandle`] callers hold.

use gzkp_curves::pairing::PairingConfig;
use gzkp_curves::{CoordField, CurveParams};
use gzkp_gpu_sim::device::DeviceConfig;
use gzkp_groth16::prove::{prove_msm, prove_poly, PolyArtifacts, ProveReport, ProverEngines};
use gzkp_groth16::r1cs::ConstraintSystem;
use gzkp_groth16::{proof_to_bytes, verify_proof_bytes, ProvingKey, VerifyingKey};
use gzkp_msm::{GzkpMsm, MsmEngine, PreprocessStore};
use gzkp_ntt::gpu::GzkpNtt;
use gzkp_runtime::{CrossDeviceMsm, FleetRuntime};
use gzkp_telemetry::{TelemetrySink, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::TypeId;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A proof request the service can schedule, split along the prover's two
/// stages so the scheduler can interleave stages of different jobs.
///
/// Implementations own everything their stages need (circuit, key,
/// engines); the service only moves the box between queues and worker
/// threads. The type erasure is what lets one queue serve jobs over
/// different curves.
pub trait ProofTask: Send {
    /// Stable identity of the proving key this job uses; the scheduler's
    /// key-affinity preference groups jobs by it to keep checkpoint
    /// tables hot in the shared store.
    fn key_id(&self) -> u64;

    /// Stage 1 — POLY: witness reduction and the seven NTTs. Must leave
    /// the task ready for [`ProofTask::msm`].
    fn poly(&mut self, sink: &dyn TelemetrySink) -> Result<(), String>;

    /// Stage 2 — the five multi-scalar multiplications, producing the
    /// serialized proof.
    fn msm(&mut self, sink: &dyn TelemetrySink) -> Result<TaskOutput, String>;

    /// Rebinds the task's engines to `device` before its next stage runs.
    /// Fleet placement and work stealing move stages between
    /// heterogeneous devices; every engine must produce the identical
    /// functional result on any device (only simulated cost changes).
    /// Tasks without device-specific state ignore the call. Must also
    /// drop any cross-device binding from an earlier
    /// [`ProofTask::bind_fleet`].
    fn bind_device(&mut self, device: &DeviceConfig) {
        let _ = device;
    }

    /// Binds the task's MSM stage to several fleet devices at once
    /// (`devices[0]` is the primary; partial sums merge toward it over
    /// the P2P path and the task's MSM engines record directly onto
    /// `fleet`'s timelines). Returns `false` — the default — when the
    /// task cannot split its MSMs, in which case the scheduler falls
    /// back to single-device placement.
    fn bind_fleet(&mut self, fleet: &Arc<FleetRuntime>, devices: &[usize], job_id: u64) -> bool {
        let _ = (fleet, devices, job_id);
        false
    }

    /// Modeled simulated cost of the task's MSM stage on its current
    /// device, for deadline-urgency placement. Zero (the default) opts
    /// the task out of cross-device escalation.
    fn msm_cost_estimate_ns(&self) -> f64 {
        0.0
    }

    /// Transfer/compute profile of the POLY stage that just ran, for the
    /// fleet runtime's per-device command streams. Valid after a
    /// successful [`ProofTask::poly`]. The zero default is for tasks that
    /// don't model device transfers.
    fn poly_profile(&self) -> StageProfile {
        StageProfile::default()
    }

    /// Transfer/compute profile of the finished MSM stage (`output` is
    /// what [`ProofTask::msm`] returned). Zero default as above.
    fn msm_profile(&self, output: &TaskOutput) -> StageProfile {
        let _ = output;
        StageProfile::default()
    }

    /// Verify-before-return guard: checks the finished proof before the
    /// service publishes it. `Some(false)` marks the output corrupt — the
    /// scheduler re-executes the job once and surfaces
    /// [`JobError::Failed`] if the re-run's proof is rejected too.
    /// `None` (the default) means the task cannot self-verify and the
    /// output is returned as-is.
    fn verify_output(&self, output: &TaskOutput) -> Option<bool> {
        let _ = output;
        None
    }
}

/// Simulated transfer/compute footprint of one scheduled stage, consumed
/// by the fleet runtime to build the device's H2D → kernel → D2H command
/// sequence (uploads of the next stage pipeline under this one's kernels).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageProfile {
    /// Host→device bytes the stage uploads before compute.
    pub h2d_bytes: u64,
    /// Simulated kernel time of the stage.
    pub kernel_ns: f64,
    /// Device→host bytes the stage downloads after compute.
    pub d2h_bytes: u64,
    /// Bucket-range shards the memory planner split the stage's MSMs
    /// into (0 when every MSM ran whole).
    pub shards: u64,
}

/// What a completed task hands back.
#[derive(Debug, Clone)]
pub struct TaskOutput {
    /// The proof, serialized with [`gzkp_groth16::proof_to_bytes`]
    /// (curve-generic so the type-erased queue can carry it).
    pub proof: Vec<u8>,
    /// The prover's simulated-time stage report, when the task produces
    /// one.
    pub report: Option<ProveReport>,
}

/// The standard [`ProofTask`]: a Groth16 proof over one of the workspace
/// curves, using the GZKP NTT and MSM engines.
///
/// The blinding factors come from a seeded `StdRng` drawn in the MSM
/// stage, exactly where the direct prover draws them — a `Groth16Task`
/// with seed `s` produces bytes identical to `gzkp_groth16::prove` with
/// `StdRng::seed_from_u64(s)`.
pub struct Groth16Task<P: PairingConfig> {
    cs: Arc<ConstraintSystem<P::Fr>>,
    pk: Arc<ProvingKey<P>>,
    /// Verify-before-return: when present, the finished proof is checked
    /// against this key (public inputs from the constraint system) before
    /// the service publishes it.
    vk: Option<Arc<VerifyingKey<P>>>,
    ntt: GzkpNtt,
    msm_g1: GzkpMsm,
    msm_g2: GzkpMsm,
    /// Cross-device MSM engines, present while the job is fleet-bound
    /// ([`ProofTask::bind_fleet`]); cleared by any single-device rebind.
    cross_g1: Option<CrossDeviceMsm>,
    cross_g2: Option<CrossDeviceMsm>,
    seed: u64,
    poly_out: Option<PolyArtifacts<P>>,
    /// Scalar bytes the MSM stage will upload; captured at the end of
    /// POLY because the artifacts are consumed by the MSM stage itself.
    msm_h2d_bytes: u64,
}

impl<P: PairingConfig> Groth16Task<P> {
    /// Builds a task proving `cs` under `pk` on the given simulated
    /// device. `store` wires the MSM engines to the service's shared
    /// checkpoint-table cache (pass [`crate::ProvingService::store`]);
    /// `None` leaves them on the process-wide default cache. `seed` feeds
    /// the blinding-factor rng.
    pub fn new(
        cs: Arc<ConstraintSystem<P::Fr>>,
        pk: Arc<ProvingKey<P>>,
        device: DeviceConfig,
        store: Option<Arc<PreprocessStore>>,
        seed: u64,
    ) -> Self {
        let mut msm_g1 = GzkpMsm::new(device.clone());
        let mut msm_g2 = GzkpMsm::new(device.clone());
        if let Some(store) = store {
            msm_g1 = msm_g1.with_store(store.clone());
            msm_g2 = msm_g2.with_store(store);
        }
        Self {
            cs,
            pk,
            vk: None,
            ntt: GzkpNtt::auto::<P::Fr>(device),
            msm_g1,
            msm_g2,
            cross_g1: None,
            cross_g2: None,
            seed,
            poly_out: None,
            msm_h2d_bytes: 0,
        }
    }

    /// Enables the verify-before-return guard: the finished proof is
    /// checked against `vk` (with the task's public inputs) before the
    /// service returns it, catching silent corruption between the MSM
    /// kernels and the response buffer.
    pub fn with_verifying_key(mut self, vk: Arc<VerifyingKey<P>>) -> Self {
        self.vk = Some(vk);
        self
    }
}

impl<P: PairingConfig> ProofTask for Groth16Task<P>
where
    <P::G1 as CurveParams>::Base: CoordField,
    <P::G2 as CurveParams>::Base: CoordField,
    <P::Fq12C as gzkp_ff::ext::Fp12Config>::Fp6C: gzkp_ff::ext::Fp6Config<Fp2C = P::Fq2C>,
    P::Fq2C: gzkp_ff::ext::Fp2Config,
{
    fn key_id(&self) -> u64 {
        let mut h = DefaultHasher::new();
        TypeId::of::<P>().hash(&mut h);
        (Arc::as_ptr(&self.pk) as usize).hash(&mut h);
        h.finish()
    }

    fn poly(&mut self, sink: &dyn TelemetrySink) -> Result<(), String> {
        let artifacts = prove_poly::<P>(&self.cs, &self.pk, &self.ntt, sink)
            .map_err(|e| format!("poly stage failed: {e:?}"))?;
        self.msm_h2d_bytes = artifacts.scalar_bytes();
        self.poly_out = Some(artifacts);
        Ok(())
    }

    fn msm(&mut self, sink: &dyn TelemetrySink) -> Result<TaskOutput, String> {
        let poly = self
            .poly_out
            .take()
            .ok_or_else(|| "msm stage scheduled before poly stage".to_string())?;
        let engines = ProverEngines::<P> {
            ntt: &self.ntt,
            msm_g1: self
                .cross_g1
                .as_ref()
                .map_or(&self.msm_g1 as &dyn MsmEngine<P::G1>, |c| c),
            msm_g2: self
                .cross_g2
                .as_ref()
                .map_or(&self.msm_g2 as &dyn MsmEngine<P::G2>, |c| c),
        };
        let mut rng = StdRng::seed_from_u64(self.seed);
        let (proof, report) = prove_msm::<P, _>(&self.pk, &engines, poly, &mut rng, sink);
        Ok(TaskOutput {
            proof: proof_to_bytes(&proof),
            report: Some(report),
        })
    }

    fn bind_device(&mut self, device: &DeviceConfig) {
        // Engines carry device-tuned parameters (NTT radix from shared
        // memory, MSM windows from the cost tables), so rebuild them; the
        // functional results are exact group/field elements either way,
        // which keeps proofs byte-identical across placements.
        self.ntt = self.ntt.rebind::<P::Fr>(device.clone());
        self.msm_g1.device = device.clone();
        self.msm_g2.device = device.clone();
        self.cross_g1 = None;
        self.cross_g2 = None;
    }

    fn bind_fleet(&mut self, fleet: &Arc<FleetRuntime>, devices: &[usize], job_id: u64) -> bool {
        if devices.is_empty() {
            return false;
        }
        // The single-device engines stay the bit-identity reference: the
        // cross engines freeze their window/checkpoint parameters and use
        // the claimed devices only for kernel pricing and transfers.
        self.msm_g1.device = fleet.config(devices[0]).clone();
        self.msm_g2.device = fleet.config(devices[0]).clone();
        self.ntt = self.ntt.rebind::<P::Fr>(fleet.config(devices[0]).clone());
        self.cross_g1 = Some(CrossDeviceMsm::new(
            self.msm_g1.clone(),
            fleet.clone(),
            devices.to_vec(),
            format!("job{job_id}.msm_g1"),
        ));
        self.cross_g2 = Some(CrossDeviceMsm::new(
            self.msm_g2.clone(),
            fleet.clone(),
            devices.to_vec(),
            format!("job{job_id}.msm_g2"),
        ));
        true
    }

    fn msm_cost_estimate_ns(&self) -> f64 {
        let g1 = |n| MsmEngine::<P::G1>::plan_dense(&self.msm_g1, n).total_ns();
        g1(self.pk.a_query.len())
            + g1(self.pk.b_g1_query.len())
            + g1(self.pk.h_query.len())
            + g1(self.pk.l_query.len())
            + MsmEngine::<P::G2>::plan_dense(&self.msm_g2, self.pk.b_g2_query.len()).total_ns()
    }

    fn poly_profile(&self) -> StageProfile {
        use gzkp_ff::PrimeField;
        let fr_bytes = (P::Fr::NUM_LIMBS * 8) as u64;
        StageProfile {
            h2d_bytes: self.cs.num_variables() as u64 * fr_bytes,
            kernel_ns: self.poly_out.as_ref().map_or(0.0, |a| a.report.total_ns()),
            d2h_bytes: self.pk.h_query.len() as u64 * fr_bytes,
            shards: 0,
        }
    }

    fn msm_profile(&self, output: &TaskOutput) -> StageProfile {
        let mut shards = 0u64;
        for n in [
            self.pk.a_query.len(),
            self.pk.b_g1_query.len(),
            self.pk.h_query.len(),
            self.pk.l_query.len(),
        ] {
            let s = self.msm_g1.shard_plan::<P::G1>(n);
            if s > 1 {
                shards += s as u64;
            }
        }
        let s = self.msm_g2.shard_plan::<P::G2>(self.pk.b_g2_query.len());
        if s > 1 {
            shards += s as u64;
        }
        StageProfile {
            h2d_bytes: self.msm_h2d_bytes,
            kernel_ns: output.report.as_ref().map_or(0.0, |r| r.msm.total_ns()),
            d2h_bytes: output.proof.len() as u64,
            shards,
        }
    }

    fn verify_output(&self, output: &TaskOutput) -> Option<bool> {
        self.vk
            .as_ref()
            .map(|vk| verify_proof_bytes::<P>(vk, &output.proof, &self.cs.input_assignment))
    }
}

/// Why a job did not produce a proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The deadline passed before the job finished; it was dropped at a
    /// cooperative checkpoint (dequeue or stage boundary).
    DeadlineMissed,
    /// [`JobHandle::cancel`] was honored before completion.
    Cancelled,
    /// Shutdown arrived while the job was parked for a retry backoff (its
    /// device quarantined or its stage awaiting re-execution); the job is
    /// returned instead of silently dropped or waited out.
    Drained,
    /// A stage returned an error or panicked.
    Failed(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::DeadlineMissed => write!(f, "deadline missed"),
            JobError::Cancelled => write!(f, "cancelled"),
            JobError::Drained => write!(f, "drained at shutdown before retry"),
            JobError::Failed(msg) => write!(f, "failed: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Final record of one job.
#[derive(Debug)]
pub struct JobResult {
    /// Service-assigned job id (matches [`JobHandle::id`]).
    pub id: u64,
    /// The proof (and report) or the reason there is none.
    pub outcome: Result<TaskOutput, JobError>,
    /// Wall-clock time from submission to first being scheduled. Zero if
    /// the job never reached a worker.
    pub queue_wait: Duration,
    /// Wall-clock time from submission to resolution.
    pub latency: Duration,
    /// Per-job telemetry, when [`crate::JobOptions::trace`] was set.
    pub trace: Option<Trace>,
}

pub(crate) struct JobShared {
    result: Mutex<Option<JobResult>>,
    done: Condvar,
    cancelled: AtomicBool,
}

impl JobShared {
    pub(crate) fn new() -> Self {
        Self {
            result: Mutex::new(None),
            done: Condvar::new(),
            cancelled: AtomicBool::new(false),
        }
    }

    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    pub(crate) fn resolve(&self, result: JobResult) {
        *self.result.lock().unwrap() = Some(result);
        self.done.notify_all();
    }
}

/// Caller-side handle to a submitted job.
pub struct JobHandle {
    pub(crate) id: u64,
    pub(crate) shared: Arc<JobShared>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl JobHandle {
    /// The service-assigned job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cooperative cancellation: the job is dropped at its next
    /// checkpoint (dequeue or stage boundary) and resolves as
    /// [`JobError::Cancelled`]. A job already past its last checkpoint
    /// completes normally.
    pub fn cancel(&self) {
        self.shared.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the job has resolved (a [`JobHandle::wait`] would not
    /// block).
    pub fn is_finished(&self) -> bool {
        self.shared.result.lock().unwrap().is_some()
    }

    /// Blocks until the job resolves and returns its result.
    pub fn wait(self) -> JobResult {
        let mut slot = self.shared.result.lock().unwrap();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.shared.done.wait(slot).unwrap();
        }
    }
}
