//! Job-side types: the type-erased [`ProofTask`] the queue schedules, the
//! backend-generic [`SystemTask`] implementation, and the [`JobHandle`]
//! callers hold.

use gzkp_curves::pairing::PairingConfig;
use gzkp_gpu_sim::device::DeviceConfig;
use gzkp_msm::{GzkpMsm, MsmEngine, PreprocessStore};
use gzkp_ntt::gpu::GzkpNtt;
use gzkp_proof_system::{Engines, ProofSystem, ProveReport};
use gzkp_runtime::{CrossDeviceMsm, FleetRuntime};
use gzkp_telemetry::{TelemetrySink, Trace};
use std::any::TypeId;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A proof request the service can schedule, split along the prover's two
/// stages so the scheduler can interleave stages of different jobs.
///
/// Implementations own everything their stages need (circuit, key,
/// engines); the service only moves the box between queues and worker
/// threads. The type erasure is what lets one queue serve jobs over
/// different curves.
pub trait ProofTask: Send {
    /// Stable identity of the proving key this job uses; the scheduler's
    /// key-affinity preference groups jobs by it to keep checkpoint
    /// tables hot in the shared store.
    fn key_id(&self) -> u64;

    /// Stage 1 — POLY: witness reduction and the backend's NTT batch.
    /// Must leave the task ready for [`ProofTask::msm`].
    fn poly(&mut self, sink: &dyn TelemetrySink) -> Result<(), String>;

    /// Stage 2 — the backend's multi-scalar-multiplication steps,
    /// producing the serialized proof.
    fn msm(&mut self, sink: &dyn TelemetrySink) -> Result<TaskOutput, String>;

    /// Wire label of the proof system producing this job's proof
    /// (`"groth16"`, `"plonk"`), for per-backend service telemetry.
    fn system(&self) -> &'static str {
        "groth16"
    }

    /// Rebinds the task's engines to `device` before its next stage runs.
    /// Fleet placement and work stealing move stages between
    /// heterogeneous devices; every engine must produce the identical
    /// functional result on any device (only simulated cost changes).
    /// Tasks without device-specific state ignore the call. Must also
    /// drop any cross-device binding from an earlier
    /// [`ProofTask::bind_fleet`].
    fn bind_device(&mut self, device: &DeviceConfig) {
        let _ = device;
    }

    /// Binds the task's MSM stage to several fleet devices at once
    /// (`devices[0]` is the primary; partial sums merge toward it over
    /// the P2P path and the task's MSM engines record directly onto
    /// `fleet`'s timelines). Returns `false` — the default — when the
    /// task cannot split its MSMs, in which case the scheduler falls
    /// back to single-device placement.
    fn bind_fleet(&mut self, fleet: &Arc<FleetRuntime>, devices: &[usize], job_id: u64) -> bool {
        let _ = (fleet, devices, job_id);
        false
    }

    /// Modeled simulated cost of the task's MSM stage on its current
    /// device, for deadline-urgency placement. Zero (the default) opts
    /// the task out of cross-device escalation.
    fn msm_cost_estimate_ns(&self) -> f64 {
        0.0
    }

    /// Transfer/compute profile of the POLY stage that just ran, for the
    /// fleet runtime's per-device command streams. Valid after a
    /// successful [`ProofTask::poly`]. The zero default is for tasks that
    /// don't model device transfers.
    fn poly_profile(&self) -> StageProfile {
        StageProfile::default()
    }

    /// Transfer/compute profile of the finished MSM stage (`output` is
    /// what [`ProofTask::msm`] returned). Zero default as above.
    fn msm_profile(&self, output: &TaskOutput) -> StageProfile {
        let _ = output;
        StageProfile::default()
    }

    /// Verify-before-return guard: checks the finished proof before the
    /// service publishes it. `Some(false)` marks the output corrupt — the
    /// scheduler re-executes the job once and surfaces
    /// [`JobError::Failed`] if the re-run's proof is rejected too.
    /// `None` (the default) means the task cannot self-verify and the
    /// output is returned as-is.
    fn verify_output(&self, output: &TaskOutput) -> Option<bool> {
        let _ = output;
        None
    }
}

/// Simulated transfer/compute footprint of one scheduled stage, consumed
/// by the fleet runtime to build the device's H2D → kernel → D2H command
/// sequence (uploads of the next stage pipeline under this one's kernels).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageProfile {
    /// Host→device bytes the stage uploads before compute.
    pub h2d_bytes: u64,
    /// Simulated kernel time of the stage.
    pub kernel_ns: f64,
    /// Device→host bytes the stage downloads after compute.
    pub d2h_bytes: u64,
    /// Bucket-range shards the memory planner split the stage's MSMs
    /// into (0 when every MSM ran whole).
    pub shards: u64,
}

/// What a completed task hands back.
#[derive(Debug, Clone)]
pub struct TaskOutput {
    /// The proof in the backend's serialized encoding (curve- and
    /// system-generic so the type-erased queue can carry it).
    pub proof: Vec<u8>,
    /// The prover's simulated-time stage report, when the task produces
    /// one.
    pub report: Option<ProveReport>,
}

/// The standard [`ProofTask`]: one proof under any [`ProofSystem`]
/// backend, using the GZKP NTT and MSM engines.
///
/// The blinding factors come from seeded rngs drawn inside the backend's
/// MSM stage, exactly where its direct prover draws them — a task with
/// seed `s` produces bytes identical to the backend's monolithic prover
/// with the same seed.
pub struct SystemTask<S: ProofSystem> {
    circuit: Arc<S::Circuit>,
    pk: Arc<S::ProvingKey>,
    /// Verify-before-return: when present, the finished proof is checked
    /// against this key (public inputs from the circuit) before the
    /// service publishes it.
    vk: Option<Arc<S::VerifyingKey>>,
    ntt: GzkpNtt,
    msm_g1: GzkpMsm,
    msm_g2: GzkpMsm,
    /// Cross-device MSM engines, present while the job is fleet-bound
    /// ([`ProofTask::bind_fleet`]); cleared by any single-device rebind.
    cross_g1: Option<CrossDeviceMsm>,
    cross_g2: Option<CrossDeviceMsm>,
    seed: u64,
    poly_out: Option<S::PolyArtifacts>,
    /// Scalar bytes the MSM stage will upload; captured at the end of
    /// POLY because the artifacts are consumed by the MSM stage itself.
    msm_h2d_bytes: u64,
}

/// A Groth16 proof task over one of the workspace curves.
pub type Groth16Task<P> = SystemTask<gzkp_groth16::Groth16System<P>>;

/// A KZG/PLONK proof task over one of the workspace curves.
pub type PlonkTask<P> = SystemTask<gzkp_plonk::PlonkSystem<P>>;

impl<S: ProofSystem> SystemTask<S> {
    /// Builds a task proving `circuit` under `pk` on the given simulated
    /// device. `store` wires the MSM engines to the service's shared
    /// checkpoint-table cache (pass [`crate::ProvingService::store`]);
    /// `None` leaves them on the process-wide default cache — either way
    /// the entries are tagged with the backend's cache tag so Groth16 and
    /// PLONK preprocessing of the same points never alias. `seed` feeds
    /// the blinding-factor rng.
    pub fn new(
        circuit: Arc<S::Circuit>,
        pk: Arc<S::ProvingKey>,
        device: DeviceConfig,
        store: Option<Arc<PreprocessStore>>,
        seed: u64,
    ) -> Self {
        let tag = S::KIND.cache_tag();
        let mut msm_g1 = GzkpMsm::new(device.clone()).with_system_tag(tag);
        let mut msm_g2 = GzkpMsm::new(device.clone()).with_system_tag(tag);
        if let Some(store) = store {
            msm_g1 = msm_g1.with_store(store.clone());
            msm_g2 = msm_g2.with_store(store);
        }
        Self {
            circuit,
            pk,
            vk: None,
            ntt: GzkpNtt::auto::<<S::Pairing as PairingConfig>::Fr>(device),
            msm_g1,
            msm_g2,
            cross_g1: None,
            cross_g2: None,
            seed,
            poly_out: None,
            msm_h2d_bytes: 0,
        }
    }

    /// Enables the verify-before-return guard: the finished proof is
    /// checked against `vk` (with the task's public inputs) before the
    /// service returns it, catching silent corruption between the MSM
    /// kernels and the response buffer.
    pub fn with_verifying_key(mut self, vk: Arc<S::VerifyingKey>) -> Self {
        self.vk = Some(vk);
        self
    }
}

impl<S: ProofSystem> ProofTask for SystemTask<S> {
    fn key_id(&self) -> u64 {
        let mut h = DefaultHasher::new();
        TypeId::of::<S>().hash(&mut h);
        (Arc::as_ptr(&self.pk) as usize).hash(&mut h);
        h.finish()
    }

    fn poly(&mut self, sink: &dyn TelemetrySink) -> Result<(), String> {
        let artifacts = S::prove_poly(&self.circuit, &self.pk, &self.ntt, sink)
            .map_err(|e| format!("poly stage failed: {e}"))?;
        self.msm_h2d_bytes = S::poly_scalar_bytes(&artifacts);
        self.poly_out = Some(artifacts);
        Ok(())
    }

    fn msm(&mut self, sink: &dyn TelemetrySink) -> Result<TaskOutput, String> {
        let poly = self
            .poly_out
            .take()
            .ok_or_else(|| "msm stage scheduled before poly stage".to_string())?;
        let engines = Engines::<S::Pairing> {
            ntt: &self.ntt,
            msm_g1: self.cross_g1.as_ref().map_or(
                &self.msm_g1 as &dyn MsmEngine<<S::Pairing as PairingConfig>::G1>,
                |c| c,
            ),
            msm_g2: self.cross_g2.as_ref().map_or(
                &self.msm_g2 as &dyn MsmEngine<<S::Pairing as PairingConfig>::G2>,
                |c| c,
            ),
        };
        let (proof, report) = S::prove_msm(&self.pk, &engines, poly, self.seed, sink)?;
        Ok(TaskOutput {
            proof,
            report: Some(report),
        })
    }

    fn system(&self) -> &'static str {
        S::KIND.as_str()
    }

    fn bind_device(&mut self, device: &DeviceConfig) {
        // Engines carry device-tuned parameters (NTT radix from shared
        // memory, MSM windows from the cost tables), so rebuild them; the
        // functional results are exact group/field elements either way,
        // which keeps proofs byte-identical across placements.
        self.ntt = self
            .ntt
            .rebind::<<S::Pairing as PairingConfig>::Fr>(device.clone());
        self.msm_g1.device = device.clone();
        self.msm_g2.device = device.clone();
        self.cross_g1 = None;
        self.cross_g2 = None;
    }

    fn bind_fleet(&mut self, fleet: &Arc<FleetRuntime>, devices: &[usize], job_id: u64) -> bool {
        if devices.is_empty() {
            return false;
        }
        // The single-device engines stay the bit-identity reference: the
        // cross engines freeze their window/checkpoint parameters and use
        // the claimed devices only for kernel pricing and transfers.
        self.msm_g1.device = fleet.config(devices[0]).clone();
        self.msm_g2.device = fleet.config(devices[0]).clone();
        self.ntt = self
            .ntt
            .rebind::<<S::Pairing as PairingConfig>::Fr>(fleet.config(devices[0]).clone());
        self.cross_g1 = Some(CrossDeviceMsm::new(
            self.msm_g1.clone(),
            fleet.clone(),
            devices.to_vec(),
            format!("job{job_id}.msm_g1"),
        ));
        self.cross_g2 = Some(CrossDeviceMsm::new(
            self.msm_g2.clone(),
            fleet.clone(),
            devices.to_vec(),
            format!("job{job_id}.msm_g2"),
        ));
        true
    }

    fn msm_cost_estimate_ns(&self) -> f64 {
        let mut total = 0.0;
        for n in S::g1_msm_sizes(&self.pk) {
            total += MsmEngine::<<S::Pairing as PairingConfig>::G1>::plan_dense(&self.msm_g1, n)
                .total_ns();
        }
        for n in S::g2_msm_sizes(&self.pk) {
            total += MsmEngine::<<S::Pairing as PairingConfig>::G2>::plan_dense(&self.msm_g2, n)
                .total_ns();
        }
        total
    }

    fn poly_profile(&self) -> StageProfile {
        use gzkp_ff::PrimeField;
        let fr_bytes = (<S::Pairing as PairingConfig>::Fr::NUM_LIMBS * 8) as u64;
        StageProfile {
            h2d_bytes: S::witness_elems(&self.circuit) as u64 * fr_bytes,
            kernel_ns: self
                .poly_out
                .as_ref()
                .map_or(0.0, |a| S::poly_report(a).total_ns()),
            d2h_bytes: S::poly_d2h_elems(&self.pk) as u64 * fr_bytes,
            shards: 0,
        }
    }

    fn msm_profile(&self, output: &TaskOutput) -> StageProfile {
        let mut shards = 0u64;
        for n in S::g1_msm_sizes(&self.pk) {
            let s = self
                .msm_g1
                .shard_plan::<<S::Pairing as PairingConfig>::G1>(n);
            if s > 1 {
                shards += s as u64;
            }
        }
        for n in S::g2_msm_sizes(&self.pk) {
            let s = self
                .msm_g2
                .shard_plan::<<S::Pairing as PairingConfig>::G2>(n);
            if s > 1 {
                shards += s as u64;
            }
        }
        StageProfile {
            h2d_bytes: self.msm_h2d_bytes,
            kernel_ns: output.report.as_ref().map_or(0.0, |r| r.msm.total_ns()),
            d2h_bytes: output.proof.len() as u64,
            shards,
        }
    }

    fn verify_output(&self, output: &TaskOutput) -> Option<bool> {
        self.vk
            .as_ref()
            .map(|vk| S::verify_bytes(vk, &self.circuit, &output.proof))
    }
}

/// Why a job did not produce a proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The deadline passed before the job finished; it was dropped at a
    /// cooperative checkpoint (dequeue or stage boundary).
    DeadlineMissed,
    /// [`JobHandle::cancel`] was honored before completion.
    Cancelled,
    /// Shutdown arrived while the job was parked for a retry backoff (its
    /// device quarantined or its stage awaiting re-execution); the job is
    /// returned instead of silently dropped or waited out.
    Drained,
    /// A stage returned an error or panicked.
    Failed(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::DeadlineMissed => write!(f, "deadline missed"),
            JobError::Cancelled => write!(f, "cancelled"),
            JobError::Drained => write!(f, "drained at shutdown before retry"),
            JobError::Failed(msg) => write!(f, "failed: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Final record of one job.
#[derive(Debug)]
pub struct JobResult {
    /// Service-assigned job id (matches [`JobHandle::id`]).
    pub id: u64,
    /// The proof (and report) or the reason there is none.
    pub outcome: Result<TaskOutput, JobError>,
    /// Wall-clock time from submission to first being scheduled. Zero if
    /// the job never reached a worker.
    pub queue_wait: Duration,
    /// Wall-clock time from submission to resolution.
    pub latency: Duration,
    /// Per-job telemetry, when [`crate::JobOptions::trace`] was set.
    pub trace: Option<Trace>,
}

pub(crate) struct JobShared {
    result: Mutex<Option<JobResult>>,
    done: Condvar,
    cancelled: AtomicBool,
}

impl JobShared {
    pub(crate) fn new() -> Self {
        Self {
            result: Mutex::new(None),
            done: Condvar::new(),
            cancelled: AtomicBool::new(false),
        }
    }

    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    pub(crate) fn resolve(&self, result: JobResult) {
        *self.result.lock().unwrap() = Some(result);
        self.done.notify_all();
    }
}

/// Caller-side handle to a submitted job.
pub struct JobHandle {
    pub(crate) id: u64,
    pub(crate) shared: Arc<JobShared>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl JobHandle {
    /// The service-assigned job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cooperative cancellation: the job is dropped at its next
    /// checkpoint (dequeue or stage boundary) and resolves as
    /// [`JobError::Cancelled`]. A job already past its last checkpoint
    /// completes normally.
    pub fn cancel(&self) {
        self.shared.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the job has resolved (a [`JobHandle::wait`] would not
    /// block).
    pub fn is_finished(&self) -> bool {
        self.shared.result.lock().unwrap().is_some()
    }

    /// Blocks until the job resolves and returns its result.
    pub fn wait(self) -> JobResult {
        let mut slot = self.shared.result.lock().unwrap();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.shared.done.wait(slot).unwrap();
        }
    }
}
