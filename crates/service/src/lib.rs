//! # gzkp-service — the multi-proof proving service
//!
//! Everything below this crate proves one statement at a time; a proving
//! deployment (the paper's target setting: Zcash/Filecoin-class provers,
//! §5.1) faces a *stream* of heterogeneous requests. This crate adds the
//! serving layer:
//!
//! * a **bounded request queue** with backpressure — [`ProvingService::submit`]
//!   rejects with [`SubmitError::QueueFull`] instead of buffering without
//!   limit;
//! * a **worker pool pipelined across the prover's two stages**: each job
//!   runs POLY (the seven NTTs) and then its five MSMs as separate
//!   schedulable steps, so proof *i+1*'s POLY overlaps proof *i*'s MSM —
//!   the intra-proof pipelining of the paper's Figure 1 lifted to the
//!   inter-proof level;
//! * **priority classes and per-job deadlines** with cooperative
//!   cancellation: expiry and [`JobHandle::cancel`] are honored at
//!   dequeue and between stages, never by killing a thread mid-kernel;
//! * a **per-(curve, proving-key) preprocessing cache** — the service owns
//!   a byte-budgeted LRU [`gzkp_msm::PreprocessStore`] shared by every
//!   job's MSM engines, so checkpoint tables (Algorithm 1) are built once
//!   per key instead of once per proof;
//! * **graceful drain and shutdown**: [`ProvingService::drain`] waits for
//!   in-flight work, [`ProvingService::shutdown`] stops intake, drains,
//!   and joins the workers.
//!
//! Jobs are type-erased [`ProofTask`]s, so one queue serves proofs over
//! different curves; [`Groth16Task`] is the standard implementation.
//! Per-job telemetry (opt-in via [`JobOptions::trace`]) wraps the prover's
//! span tree in `service → {queue_wait, execute}` spans with the
//! `service.*` counters.
//!
//! ## Example
//!
//! ```
//! use gzkp_service::{Groth16Task, JobOptions, ProvingService, ServiceConfig};
//! use gzkp_curves::bn254::{Bn254, Fr};
//! use gzkp_groth16::{setup, verify, proof_from_bytes};
//! use gzkp_gpu_sim::v100;
//! use gzkp_workloads::synthetic::synthetic_circuit;
//! use rand::{rngs::StdRng, SeedableRng};
//! use std::sync::Arc;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let cs = Arc::new(synthetic_circuit::<Fr, _>(64, &mut rng));
//! let (pk, vk) = setup::<Bn254, _>(&cs, &mut rng).unwrap();
//! let (pk, inputs) = (Arc::new(pk), cs.input_assignment.clone());
//!
//! let service = ProvingService::start(ServiceConfig::default());
//! let task = Groth16Task::new(cs, pk, v100(), Some(service.store()), 7);
//! let handle = service.submit(Box::new(task), JobOptions::default()).unwrap();
//! let result = handle.wait();
//! let proof = proof_from_bytes::<Bn254>(&result.outcome.unwrap().proof).unwrap();
//! assert!(verify::<Bn254>(&vk, &proof, &inputs));
//! service.shutdown();
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod job;
pub mod replay;
pub mod service;

pub use checkpoint::{
    CheckpointSlot, CheckpointingGroth16Task, CheckpointingPlonkTask, CheckpointingTask,
};
pub use job::{
    Groth16Task, JobError, JobHandle, JobResult, PlonkTask, ProofTask, StageProfile, SystemTask,
    TaskOutput,
};
pub use replay::{prepare, run_sequential, run_service, PreparedWorkload, ReplayOutcome};
pub use service::{ProvingService, ServiceStats, VERIFY_VOTE_RUNS};

use std::time::Duration;

/// Scheduling class of a job. Within the queue, all [`Priority::High`]
/// work is picked before any [`Priority::Normal`] work, and so on;
/// key-affinity and FIFO order break ties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive: always scheduled first.
    High,
    /// The default class.
    Normal,
    /// Batch/backfill work: runs when nothing else is queued.
    Low,
}

/// Per-job submission options.
#[derive(Debug, Clone, Copy)]
pub struct JobOptions {
    /// Scheduling class.
    pub priority: Priority,
    /// Deadline measured from submission; `None` uses
    /// [`ServiceConfig::default_deadline`]. A job whose deadline passes
    /// before it finishes its last stage resolves as
    /// [`JobError::DeadlineMissed`] at the next cooperative check.
    pub deadline: Option<Duration>,
    /// Record a per-job [`gzkp_telemetry::Trace`] (span tree + `service.*`
    /// counters) into [`JobResult::trace`].
    pub trace: bool,
}

impl Default for JobOptions {
    fn default() -> Self {
        Self {
            priority: Priority::Normal,
            deadline: None,
            trace: false,
        }
    }
}

/// Why [`ProvingService::submit`] refused a job. Backpressure is the
/// caller's signal to slow down or shed load — the queue never buffers
/// beyond its configured capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity; retry later or shed the request.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// [`ProvingService::shutdown`] (or drop) already stopped intake.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "proof queue full (capacity {capacity})")
            }
            SubmitError::ShuttingDown => write!(f, "proving service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Stage-retry policy: how often and how patiently the service re-runs a
/// stage that an injected fault (or a verify reject) knocked out.
///
/// Retries apply only to *recoverable* failures — chaos-injected faults
/// and verify-before-return rejects. A stage returning a real error or
/// panicking still fails the job immediately: retrying a deterministic
/// bug burns fleet time without changing the outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-executions allowed per job (across both stages) before the job
    /// resolves as [`JobError::Failed`].
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub backoff: Duration,
    /// Upper bound on the doubling backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 8,
            backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
        }
    }
}

/// Proving-service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum jobs waiting in the queue (staged + not-yet-started);
    /// submissions beyond it get [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Worker threads executing job stages.
    pub workers: usize,
    /// Byte budget of the shared checkpoint-table store
    /// ([`gzkp_msm::PreprocessStore`]).
    pub prep_cache_bytes: u64,
    /// Deadline applied to jobs that don't set their own.
    pub default_deadline: Option<Duration>,
    /// Prefer queued work whose proving key matches the one most recently
    /// scheduled (keeps its checkpoint tables hot in the store).
    pub key_affinity: bool,
    /// Simulated device fleet. Empty (the default) keeps legacy
    /// single-device mode: [`ServiceConfig::workers`] threads, each task
    /// on whatever device it was built with. Non-empty switches to fleet
    /// mode — one worker pinned per device, stages placed on the
    /// least-loaded device (stealing across per-device queues when a
    /// device runs dry), stage transfers pipelined on each device's
    /// command streams, and per-device utilization available through
    /// [`ProvingService::fleet_utilization`].
    pub devices: Vec<gzkp_gpu_sim::device::DeviceConfig>,
    /// Cross-device single-proof MSM (fleet mode only): when a job's MSM
    /// stage is urgent — its deadline slack is under
    /// [`gzkp_runtime::URGENCY_MARGIN`]× the task's modeled remaining MSM
    /// cost — the scheduler claims several devices at once
    /// ([`gzkp_runtime::FleetRuntime::place_for_deadline`]) and the task
    /// executes each MSM as bucket-range shards across them with
    /// partial-sum merges over the device↔device P2P path. Proof bytes
    /// are identical to the single-device path; only the simulated
    /// schedule changes. Off by default.
    pub cross_device: bool,
    /// Chaos mode: a seeded [`gzkp_gpu_sim::FaultPlan`] injected into
    /// every stage execution. `None` (the default) runs fault-free.
    pub chaos: Option<gzkp_gpu_sim::FaultPlan>,
    /// Stage-retry policy for injected faults and verify rejects.
    pub retry: RetryPolicy,
    /// Circuit-breaker policy of the device fleet (fleet mode only).
    pub health: gzkp_runtime::HealthPolicy,
    /// Live metrics: when set, the service registers its counters,
    /// queue-depth gauge, and latency histograms in this registry (and
    /// attaches per-device fleet series in fleet mode). `None` (the
    /// default) records nothing — the hot path pays one branch per site.
    pub metrics: Option<std::sync::Arc<gzkp_telemetry::MetricsRegistry>>,
}

impl Default for ServiceConfig {
    /// Defaults: queue of 64, a 256 MiB table store, a 60 s deadline, and
    /// one worker per two available cores (stage pipelining needs spare
    /// cores to overlap into; on a single-core host extra workers only
    /// interleave proofs against each other and degrade locality).
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self {
            queue_capacity: 64,
            workers: (cores / 2).max(1),
            prep_cache_bytes: 256 << 20,
            default_deadline: Some(Duration::from_secs(60)),
            key_affinity: true,
            devices: Vec::new(),
            cross_device: false,
            chaos: None,
            retry: RetryPolicy::default(),
            health: gzkp_runtime::HealthPolicy::default(),
            metrics: None,
        }
    }
}
